// Package repro's root benchmark suite: one testing.B benchmark per
// experiment of DESIGN.md (E1–E12) plus the figure-level micro-benches
// (BenchmarkVLS for Figures 7/8, BenchmarkStorageCodec for Figure 9).
// `go test -bench=. -benchmem` regenerates every number behind
// EXPERIMENTS.md; cmd/hrdm-bench prints the corresponding tables.
package main

import (
	"fmt"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

func personnel(n, hist, change int, seed int64) *core.Relation {
	return workload.Personnel(workload.PersonnelConfig{
		NumEmployees: n, HistoryLen: hist, ChangeEvery: change,
		ReincarnationProb: 0.3, Seed: seed,
	})
}

func deptRel(names ...string) *core.Relation {
	full := lifespan.Interval(0, 199)
	s := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	for i, n := range names {
		r.MustInsert(core.NewTupleBuilder(s, full).
			Key("DNAME", value.String_(n)).
			SetConst("FLOOR", value.Int(int64(i+1))).
			MustBuild())
	}
	return r
}

var allDepts = []string{"Toys", "Shoes", "Books", "Tools", "Music"}

// BenchmarkVLS measures vls(t,A,R) = t.l ∩ ALS(A,R) (Figures 7/8), the
// innermost primitive of every operator.
func BenchmarkVLS(b *testing.B) {
	world := personnel(100, 400, 20, 1)
	s := world.Scheme()
	tuples := world.Tuples()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tuples[i%len(tuples)]
		_ = t.VLS(s, "SAL")
	}
}

// BenchmarkStorageCodec measures the Figure 9 physical-level round trip.
func BenchmarkStorageCodec(b *testing.B) {
	world := personnel(200, 200, 20, 1)
	blob, err := storage.EncodeBytes(world)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := storage.EncodeBytes(world); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := storage.DecodeBytes(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSetOps is experiment E1: the §4.1 operators across sizes.
func BenchmarkSetOps(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		world := personnel(n, 200, 20, 1)
		a, _ := core.TimesliceStatic(world, lifespan.Interval(0, 120))
		c, _ := core.TimesliceStatic(world, lifespan.Interval(80, 199))
		b.Run(fmt.Sprintf("UnionMerge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.UnionMerge(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("IntersectMerge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.IntersectMerge(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DiffMerge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DiffMerge(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProject is experiment E2: π across retained attribute sets.
func BenchmarkProject(b *testing.B) {
	world := personnel(1000, 200, 20, 2)
	cases := [][]string{{"NAME", "SAL", "DEPT"}, {"NAME", "SAL"}, {"NAME"}, {"DEPT"}}
	for _, attrs := range cases {
		b.Run(fmt.Sprintf("keep=%d/dropkey=%v", len(attrs), attrs[0] != "NAME"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Project(world, attrs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelect is experiment E3: both flavors, both quantifiers,
// across history lengths.
func BenchmarkSelect(b *testing.B) {
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(35000)}
	for _, hist := range []int{100, 400, 1600} {
		world := personnel(500, hist, 20, 3)
		b.Run(fmt.Sprintf("IfExists/hist=%d", hist), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectIf(world, p, core.Exists, lifespan.All()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("IfForAll/hist=%d", hist), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectIf(world, p, core.ForAll, lifespan.All()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("When/hist=%d", hist), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectWhen(world, p, lifespan.All()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeslice is experiment E4: static slices of varying width and
// the dynamic slice.
func BenchmarkTimeslice(b *testing.B) {
	world := personnel(1000, 400, 20, 4)
	for _, w := range []int{10, 50, 200, 400} {
		L := lifespan.Interval(0, chronon.Time(w-1))
		b.Run(fmt.Sprintf("Static/width=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TimesliceStatic(world, L); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	stock := workload.Stock(workload.StockConfig{NumStocks: 500, HistoryLen: 400, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 4})
	b.Run("Dynamic/EX_DIV", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TimesliceDynamic(stock, "EX_DIV"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUnionVsMergeUnion is experiment E5 / Figure 11.
func BenchmarkUnionVsMergeUnion(b *testing.B) {
	world := personnel(1000, 200, 20, 5)
	a, _ := core.TimesliceStatic(world, lifespan.Interval(0, 120))
	c, _ := core.TimesliceStatic(world, lifespan.Interval(80, 199))
	disjointA, _ := core.TimesliceStatic(world, lifespan.Interval(0, 99))
	empty := core.NewRelation(world.Scheme())
	b.Run("PlainUnionDisjoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Union(disjointA, empty); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MergeUnionOverlapping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.UnionMerge(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJoins is experiment E6: the §4.6 join family across sizes.
func BenchmarkJoins(b *testing.B) {
	dept := deptRel(allDepts...)
	for _, n := range []int{100, 400} {
		emp := personnel(n, 200, 20, 6)
		b.Run(fmt.Sprintf("EquiJoin/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.EquiJoin(emp, dept, "DEPT", "DNAME"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ThetaJoinGT/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ThetaJoin(emp, dept, "SAL", value.GT, "FLOOR"); err != nil {
					b.Fatal(err)
				}
			}
		})
		mgr := mgrRel(n)
		b.Run(fmt.Sprintf("NaturalJoin/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NaturalJoin(emp, mgr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mgrRel(n int) *core.Relation {
	full := lifespan.Interval(0, 199)
	s := schema.MustNew("MGR", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	for i := 0; i < n; i += 5 {
		r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, 150)).
			Key("NAME", value.String_(fmt.Sprintf("emp%04d", i))).
			Set("BONUS", 0, 150, value.Int(int64(100*i))).
			MustBuild())
	}
	return r
}

// BenchmarkTimeJoin is experiment E7.
func BenchmarkTimeJoin(b *testing.B) {
	dept := deptRel(allDepts...)
	for _, n := range []int{100, 400} {
		stock := workload.Stock(workload.StockConfig{NumStocks: n, HistoryLen: 200, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 7})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TimeJoin(stock, dept, "EX_DIV"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWhen is experiment E8: Ω and the Ω∘σ-WHEN∘T pipeline.
func BenchmarkWhen(b *testing.B) {
	world := personnel(1000, 200, 20, 8)
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	b.Run("When", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.When(world)
		}
	})
	b.Run("Pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := core.SelectWhen(world, p, lifespan.All())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.TimesliceStatic(world, core.When(sel)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotReducibility is experiment E9: classical ops vs HRDM
// ops on {now}-lifted relations.
func BenchmarkSnapshotReducibility(b *testing.B) {
	sr, hr := liftedPair(1000)
	pred := core.Predicate{Attr: "A", Theta: value.GE, Const: value.Int(500)}
	b.Run("ClassicalSelect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rel.Select(sr, "A", value.GE, value.Int(500), ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HRDMSelectAtNow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectWhen(hr, pred, lifespan.All()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ClassicalProject", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rel.Project(sr, "A"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HRDMProjectAtNow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Project(hr, "A"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func liftedPair(n int) (*rel.Relation, *core.Relation) {
	rs, err := rel.NewScheme("R", []string{"K"}, []string{"K", "A"},
		[]value.Domain{value.Ints, value.Ints})
	if err != nil {
		panic(err)
	}
	at := lifespan.Point(0)
	hs := schema.MustNew("R", []string{"K", "A"},
		schema.Attribute{Name: "K", Domain: value.Ints, Lifespan: at},
		schema.Attribute{Name: "A", Domain: value.Ints, Lifespan: at},
	)
	sr := rel.NewRelation(rs)
	hr := core.NewRelation(hs)
	for i := 0; i < n; i++ {
		k, a := value.Int(int64(i)), value.Int(int64((i*7919)%1000))
		sr.MustInsert(rel.Tuple{k, a})
		hr.MustInsert(core.NewTupleBuilder(hs, at).Key("K", k).Key("A", a).MustBuild())
	}
	return sr, hr
}

// BenchmarkStorageFootprint is experiment E10: bytes per representation
// (reported via b.ReportMetric; time measures the conversion itself).
func BenchmarkStorageFootprint(b *testing.B) {
	cases := []struct {
		name  string
		world *core.Relation
		hist  int
	}{
		{"narrow", personnel(200, 400, 20, 10), 400},
		{"wide8", workload.Wide(workload.WideConfig{NumObjects: 100, HistoryLen: 400, NumAttrs: 8, BaseChange: 5, Seed: 21}), 400},
	}
	for _, c := range cases {
		b.Run(c.name+"/HRDM", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				bytes = storage.SizeBytes(c.world)
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
		b.Run(c.name+"/TupleStamp", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				ts, err := workload.ToTupleStamp(c.world)
				if err != nil {
					b.Fatal(err)
				}
				bytes = ts.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
		b.Run(c.name+"/Cube", func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				cb, err := workload.ToCube(c.world, chronon.NewInterval(0, chronon.Time(c.hist-1)))
				if err != nil {
					b.Fatal(err)
				}
				bytes = cb.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkRepresentationQueries is experiment E11: the three motivating
// queries on the three representations.
func BenchmarkRepresentationQueries(b *testing.B) {
	hist := 400
	world := personnel(500, hist, 20, 11)
	ts, err := workload.ToTupleStamp(world)
	if err != nil {
		b.Fatal(err)
	}
	cb, err := workload.ToCube(world, chronon.NewInterval(0, chronon.Time(hist-1)))
	if err != nil {
		b.Fatal(err)
	}
	probe := value.String_("emp0042")
	at := chronon.Time(hist / 2)
	pred := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}

	b.Run("KeyHistory/HRDM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := world.Lookup(probe.String()); !ok {
				b.Fatal("probe missing")
			}
		}
	})
	b.Run("KeyHistory/TupleStamp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ts.KeyHistory(probe) == nil {
				b.Fatal("probe missing")
			}
		}
	})
	b.Run("KeyHistory/Cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cb.KeyHistory(probe) == nil {
				b.Fatal("probe missing")
			}
		}
	})
	b.Run("Snapshot/HRDM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Snapshot(world, at); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Snapshot/TupleStamp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ts.SnapshotAt(at)
		}
	})
	b.Run("Snapshot/Cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cb.SnapshotAt(at)
		}
	})
	b.Run("WhenPred/HRDM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := core.SelectWhen(world, pred, lifespan.All())
			if err != nil {
				b.Fatal(err)
			}
			_ = core.When(sel)
		}
	})
	b.Run("WhenPred/TupleStamp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ts.When("SAL", value.GE, value.Int(40000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WhenPred/Cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cb.When("SAL", value.GE, value.Int(40000)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgebraicLaws is experiment E12: both sides of the §5
// rewrites.
func BenchmarkAlgebraicLaws(b *testing.B) {
	world := personnel(1000, 200, 20, 12)
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	L := lifespan.Interval(50, 149)
	b.Run("SelectThenSlice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.SelectWhen(world, p, lifespan.All())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.TimesliceStatic(s, L); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SliceThenSelect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.TimesliceStatic(world, L)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.SelectWhen(s, p, lifespan.All()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCoalescing ablates the interval-coalesced
// representation level: the same 200-chronon history is generated with a
// value change every 1 chronon (steps ≈ chronons — the degenerate
// pointwise representation) versus every 50 chronons (a handful of steps
// per tuple). Operator cost must track steps, not chronons; the gap
// between the two rows is what the representation level buys.
func BenchmarkAblationCoalescing(b *testing.B) {
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(35000)}
	for _, change := range []int{1, 50} {
		world := personnel(500, 200, change, 13)
		steps := core.CoalesceValueLifespans(world)["SAL"]
		b.Run(fmt.Sprintf("changeEvery=%d/steps=%d", change, steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectWhen(world, p, lifespan.All()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOuterVsInnerJoin compares the §5 union-lifespan (outer) join
// against the intersection (inner) join — the null-handling tradeoff the
// paper's closing discussion weighs.
func BenchmarkOuterVsInnerJoin(b *testing.B) {
	emp := personnel(400, 200, 20, 14)
	dept := deptRel(allDepts...)
	b.Run("Inner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EquiJoin(emp, dept, "DEPT", "DNAME"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Outer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EquiJoinOuter(emp, dept, "DEPT", "DNAME"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaterialize measures the Figure 9 representation→model lift.
func BenchmarkMaterialize(b *testing.B) {
	world := personnel(500, 200, 20, 15)
	for i := 0; i < b.N; i++ {
		if _, err := core.Materialize(world); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizer measures the law-based plan rewrites of
// internal/hql: the same query evaluated as written vs optimized
// (σ pushdown below ∪o plus slice-before-select).
func BenchmarkOptimizer(b *testing.B) {
	world := personnel(800, 200, 20, 16)
	st := storage.NewStore()
	st.Put(world)
	q := `TIMESLICE (SELECT WHEN SAL >= 40000 FROM ((TIMESLICE EMP AT {[0,120]}) UNIONMERGE (TIMESLICE EMP AT {[80,199]}))) AT {[0,50]}`
	b.Run("AsWritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hql.Run(q, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hql.RunOptimized(q, st); err != nil {
				b.Fatal(err)
			}
		}
	})
}
