package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// benchResult is one machine-readable benchmark record.
type benchResult struct {
	Op          string `json:"op"`
	Variant     string `json:"variant"` // "naive" or "indexed"
	N           int    `json:"n"`       // workload size in tuples
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	ResultRows  int    `json:"result_rows"`
}

// benchFile is the BENCH_engine.json document.
type benchFile struct {
	Workload struct {
		Tuples     int `json:"tuples"`
		RefTuples  int `json:"ref_tuples"`
		HistoryLen int `json:"history_len"`
	} `json:"workload"`
	Results  []benchResult      `json:"results"`
	Speedups map[string]float64 `json:"speedups"`
	// ConcurrentClients records the served-over-TCP scaling scenario:
	// one record per client count (see benchConcurrentClients).
	ConcurrentClients []serverBenchResult `json:"concurrent_clients"`
	// ScenarioMetrics records, per scenario, the counter increments the
	// engine's metric registry saw while that scenario ran — plan-cache
	// traffic, pin retries, index maintenance, write-group commits. The
	// deltas are taken from live snapshots (no registry resets mid-run),
	// so they compose: summing them approaches the final totals.
	ScenarioMetrics map[string]map[string]uint64 `json:"scenario_metrics"`
	// Metrics is the full registry snapshot at the end of the run,
	// including gauges and latency histograms (see docs/OBSERVABILITY.md).
	Metrics obs.Snapshot `json:"metrics"`
}

// runEngineBench generates the workload, times each operation through
// the naive evaluator and the indexed engine, and writes the JSON file.
func runEngineBench(args []string) error {
	fs := flag.NewFlagSet("hrdm-bench -json", flag.ContinueOnError)
	n := fs.Int("n", 50000, "number of tuples in the generated workload")
	refN := fs.Int("ref", 200, "number of tuples in the join probe relation")
	out := fs.String("out", "BENCH_engine.json", "output path for the JSON results")
	workers := fs.Int("workers", 0, "default parallel degree for the indexed runs (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("-json mode takes no experiment arguments (got %q); run experiments without -json", fs.Args())
	}

	// Sparse shape: short employments scattered over a long clock, so a
	// narrow time window genuinely selects few objects — the regime every
	// served temporal database lives in.
	const historyLen, maxTenure = 100000, 40
	fmt.Printf("generating %d-tuple personnel workload (clock %d, tenure ≤%d)...\n", *n, historyLen, maxTenure)
	emp := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: *n, HistoryLen: historyLen, ChangeEvery: 25,
		ReincarnationProb: 0.2, MaxTenure: maxTenure, Seed: 7,
	})
	st := storage.NewStore()
	st.Put(emp)
	st.Put(benchRef(*refN, emp))
	st.RebuildIndexes()
	// Warm the non-key attribute index outside the timed region, as a
	// served database would.
	engine.Indexes(emp).Attr("DEPT")
	// The indexed variants run through the explicit Session API, exactly
	// like every other entry point (CLI, server); the naive variants call
	// hql.EvalNaive directly because the pre-index evaluator IS the
	// baseline under measurement, not a code path a client would use.
	ctx := context.Background()
	sess := engine.OpenDBOptions(st, engine.DBOptions{Workers: *workers}).NewSession()

	var doc benchFile
	doc.Workload.Tuples = *n
	doc.Workload.RefTuples = *refN
	doc.Workload.HistoryLen = historyLen
	doc.Speedups = make(map[string]float64)
	doc.ScenarioMetrics = make(map[string]map[string]uint64)

	// scenario brackets a benchmark scenario with registry snapshots and
	// records the counter deltas it caused under its name.
	scenario := func(name string, fn func()) {
		before := obs.Default.Snapshot()
		fn()
		doc.ScenarioMetrics[name] = obs.Default.Snapshot().CounterDelta(before)
	}

	bench := func(op, variant, query string, naive bool) benchResult {
		e, err := hql.Parse(query)
		if err != nil {
			panic(fmt.Sprintf("parse %q: %v", query, err))
		}
		rows := 0
		run := func() (hql.Result, error) {
			if naive {
				//lint:allow sessionapi the naive evaluator IS the measured baseline, not a served path
				return hql.EvalNaive(e, st)
			}
			return sess.Eval(ctx, e)
		}
		if res, err := run(); err != nil {
			panic(fmt.Sprintf("run %q: %v", query, err))
		} else if res.Relation != nil {
			rows = res.Relation.Cardinality()
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		r := benchResult{Op: op, Variant: variant, N: *n, Iters: br.N,
			NsPerOp: br.NsPerOp(), AllocsPerOp: br.AllocsPerOp(), BytesPerOp: br.AllocedBytesPerOp(),
			ResultRows: rows}
		fmt.Printf("  %-28s %-8s %14d ns/op %12d allocs/op %8d rows\n",
			op, variant, r.NsPerOp, r.AllocsPerOp, rows)
		return r
	}

	pair := func(op, query string) {
		scenario(op, func() {
			fmt.Printf("%s: %s\n", op, query)
			nv := bench(op, "naive", query, true)
			ix := bench(op, "indexed", query, false)
			doc.Results = append(doc.Results, nv, ix)
			if ix.NsPerOp > 0 {
				s := float64(nv.NsPerOp) / float64(ix.NsPerOp)
				doc.Speedups[op] = s
				fmt.Printf("  speedup: %.1f×\n", s)
			}
		})
	}

	pair("timeslice_when", `TIMESLICE EMP AT {[50000,50004]}`)
	keyName := fmt.Sprintf("emp%04d", *n/2)
	pair("select_key_eq", fmt.Sprintf(`SELECT WHEN NAME = '%s' FROM EMP`, keyName))
	pair("select_attr_eq", `SELECT WHEN DEPT = 'Toys' FROM EMP`)
	pair("select_during", `SELECT WHEN SAL > 30000 DURING {[50000,50019]} FROM EMP`)
	pair("equijoin_key", `REF JOIN EMP ON RNAME = NAME`)

	scenario("repeat_query", func() {
		benchRepeatedQuery(&doc, sess, "repeat_query",
			`SELECT WHEN SAL > 30000 DURING {[50000,50019]} FROM EMP`)
	})
	scenario("repeat_key_eq", func() {
		benchRepeatedQuery(&doc, sess, "repeat_key_eq",
			fmt.Sprintf(`SELECT WHEN NAME = '%s' FROM EMP`, keyName))
	})
	scenario("insert_query_mix", func() { benchInsertHeavy(&doc, *n) })
	scenario("bulk_load", func() { benchBulkLoad(&doc, *n) })
	scenario("multi_rel_race", func() { benchMultiRelRace(&doc) })
	scenario("write_group", func() { benchWriteGroup(&doc) })
	scenario("wal_commit", func() { benchWalCommit(&doc) })
	scenario("concurrent_clients", func() {
		benchConcurrentClients(&doc, st,
			fmt.Sprintf(`SELECT WHEN NAME = '%s' FROM EMP`, keyName))
	})
	scenario("parallel_speedup", func() { benchParallelSpeedup(&doc, *n, *refN) })
	doc.Metrics = obs.Default.Snapshot()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// benchRepeatedQuery measures the plan cache: the same query served
// cold (cache cleared every run, so each run pays parse + plan,
// including the plan-time index probes) versus cached (every run after
// the first skips straight to execution).
func benchRepeatedQuery(doc *benchFile, sess *engine.Session, op, q string) {
	fmt.Printf("%s: %s (cold plan-and-execute vs plan cache)\n", op, q)
	ctx := context.Background()
	rows := 0
	if res, err := sess.Query(ctx, q); err != nil {
		panic(fmt.Sprintf("run %q: %v", q, err))
	} else if res.Relation != nil {
		rows = res.Relation.Cardinality()
	}
	record := func(variant string, fn func() error) benchResult {
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		r := benchResult{Op: op, Variant: variant, N: doc.Workload.Tuples, Iters: br.N,
			NsPerOp: br.NsPerOp(), AllocsPerOp: br.AllocsPerOp(), BytesPerOp: br.AllocedBytesPerOp(),
			ResultRows: rows}
		fmt.Printf("  %-28s %-8s %14d ns/op %12d allocs/op %8d rows\n",
			op, variant, r.NsPerOp, r.AllocsPerOp, rows)
		doc.Results = append(doc.Results, r)
		return r
	}
	cold := record("cold", func() error {
		engine.ResetPlanCache()
		_, err := sess.Query(ctx, q)
		return err
	})
	engine.ResetPlanCache()
	if _, err := sess.Query(ctx, q); err != nil { // prime the cache
		panic(err)
	}
	cached := record("cached", func() error {
		_, err := sess.Query(ctx, q)
		return err
	})
	if cached.NsPerOp > 0 {
		s := float64(cold.NsPerOp) / float64(cached.NsPerOp)
		doc.Speedups[op+"_cached"] = s
		fmt.Printf("  speedup: %.1f×\n", s)
	}
	hits, misses, _ := engine.PlanCacheStats()
	fmt.Printf("  plan cache: %d hits / %d misses during the cached pass\n", hits, misses)
}

// benchInsertHeavy measures incremental index maintenance under an
// insert-interleaved query stream: every iteration inserts one fresh
// tuple into a warm-indexed relation and runs an indexed query against
// it. The "rebuild" variant drops the catalog entry after each insert —
// the engine's pre-incremental behavior, where any write forced the
// next query to rebuild every index — while "incremental" lets the
// change notifications maintain the indexes in place.
func benchInsertHeavy(doc *benchFile, n int) {
	base := n / 10
	if base < 500 {
		base = 500
	}
	const inserts = 300
	fmt.Printf("insert_query_mix: %d inserts into a %d-tuple relation, one indexed query per insert\n", inserts, base)
	run := func(variant string, invalidate bool) benchResult {
		emp := workload.Personnel(workload.PersonnelConfig{
			NumEmployees: base, HistoryLen: 100000, ChangeEvery: 25,
			ReincarnationProb: 0.2, MaxTenure: 40, Seed: 23,
		})
		st := storage.NewStore()
		st.Put(emp)
		st.RebuildIndexes()
		engine.Indexes(emp).Attr("DEPT")
		engine.ResetPlanCache()
		ctx := context.Background()
		sess := engine.OpenDB(st).NewSession()
		queries := []string{
			`TIMESLICE EMP AT {[50000,50004]}`,
			`SELECT WHEN DEPT = 'Toys' FROM EMP`,
		}
		ib0, ab0, inc0, _ := engine.IndexMetrics()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < inserts; i++ {
			lo := chronon.Time(10 * i % 99000)
			t := core.NewTupleBuilder(emp.Scheme(), lifespan.Interval(lo, lo+9)).
				Key("NAME", value.String_(fmt.Sprintf("fresh%05d", i))).
				Set("SAL", lo, lo+9, value.Int(32000)).
				Set("DEPT", lo, lo+9, value.String_("Fresh")).
				MustBuild()
			if err := emp.Insert(t); err != nil {
				panic(fmt.Sprintf("insert %d: %v", i, err))
			}
			if invalidate {
				engine.InvalidateIndexes(emp)
			}
			if _, err := sess.Query(ctx, queries[i%len(queries)]); err != nil {
				panic(fmt.Sprintf("query after insert %d: %v", i, err))
			}
		}
		total := time.Since(start)
		runtime.ReadMemStats(&m1)
		ib1, ab1, inc1, _ := engine.IndexMetrics()
		r := benchResult{Op: "insert_query_mix", Variant: variant, N: base, Iters: inserts,
			NsPerOp:     total.Nanoseconds() / inserts,
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / inserts,
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / inserts,
			ResultRows:  emp.Cardinality()}
		fmt.Printf("  %-28s %-8s %14d ns/op (full index builds %d, attr builds %d, incremental ops %d)\n",
			"insert_query_mix", variant, r.NsPerOp, ib1-ib0, ab1-ab0, inc1-inc0)
		doc.Results = append(doc.Results, r)
		return r
	}
	rebuild := run("rebuild", true)
	incr := run("incremental", false)
	if incr.NsPerOp > 0 {
		s := float64(rebuild.NsPerOp) / float64(incr.NsPerOp)
		doc.Speedups["insert_query_mix_incremental"] = s
		fmt.Printf("  speedup: %.1f×\n", s)
	}
}

// benchBulkLoad measures the batched bulk-load path against per-tuple
// insertion: n tuples loaded into an index-warm, store-registered
// relation either one Insert at a time (n publications, n observer
// notifications, n single-tuple index overlays with their compaction
// cascade) or via one InsertBatch (one publication, one coalesced
// index merge). Tuple construction is hoisted out of both timed
// regions, so the ratio isolates the write path itself.
func benchBulkLoad(doc *benchFile, n int) {
	fmt.Printf("bulk_load: %d tuples, per-tuple inserts vs one batch (warm indexes)\n", n)
	src := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: n, HistoryLen: 100000, ChangeEvery: 25,
		ReincarnationProb: 0.2, MaxTenure: 40, Seed: 99,
	})
	_, srcVers := core.Pin(src)
	tuples := srcVers[0].Tuples()

	run := func(variant string, load func(dst *core.Relation) error) benchResult {
		dst := core.NewRelation(src.Scheme())
		st := storage.NewStore()
		st.Put(dst)
		st.RebuildIndexes()
		engine.Indexes(dst).Attr("DEPT")
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := load(dst); err != nil {
			panic(fmt.Sprintf("bulk_load %s: %v", variant, err))
		}
		total := time.Since(start)
		runtime.ReadMemStats(&m1)
		engine.InvalidateIndexes(dst)
		r := benchResult{Op: "bulk_load", Variant: variant, N: n, Iters: n,
			NsPerOp:     total.Nanoseconds() / int64(n),
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(n),
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(n),
			ResultRows:  dst.Cardinality()}
		fmt.Printf("  %-28s %-8s %14d ns/op %12d allocs/op %8d rows (total %s)\n",
			"bulk_load", variant, r.NsPerOp, r.AllocsPerOp, r.ResultRows, total)
		doc.Results = append(doc.Results, r)
		return r
	}
	per := run("per_tuple", func(dst *core.Relation) error {
		for _, t := range tuples {
			if err := dst.Insert(t); err != nil {
				return err
			}
		}
		return nil
	})
	batch := run("batch", func(dst *core.Relation) error {
		return dst.InsertBatch(tuples)
	})
	if batch.NsPerOp > 0 {
		s := float64(per.NsPerOp) / float64(batch.NsPerOp)
		doc.Speedups["bulk_load"] = s
		fmt.Printf("  speedup: %.1f×\n", s)
	}
}

// benchMultiRelRace measures snapshot-pinned multi-relation querying
// under a concurrent batch writer — the scenario the epoch layer
// exists for. A writer batch-loads the same keys into A then B while
// readers run `B MINUS A` (empty at every epoch-consistent cut) and
// `A MINUS B` (whole batches only); the scenario records mean query
// latency under write pressure and counts consistency violations,
// which must be zero.
func benchMultiRelRace(doc *benchFile) {
	const rounds, batchN = 400, 50
	fmt.Printf("multi_rel_race: queries racing %d×%d-tuple batches across two relations\n",
		rounds, batchN)
	full := lifespan.Interval(0, 999)
	mkScheme := func(name string) *schema.Scheme {
		return schema.MustNew(name, []string{"K"},
			schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
			schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
		)
	}
	sa, sb := mkScheme("A"), mkScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st := storage.NewStore()
	st.Put(a)
	st.Put(b)
	st.RebuildIndexes()
	ctx := context.Background()
	sess := engine.OpenDB(st).NewSession()

	stop := make(chan struct{})
	var writerErr error
	go func() {
		defer close(stop)
		for i := 0; i < rounds; i++ {
			mk := func(s *schema.Scheme) []*core.Tuple {
				ts := make([]*core.Tuple, batchN)
				for j := range ts {
					ts[j] = core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
						Key("K", value.String_(fmt.Sprintf("k%06d", i*batchN+j))).
						Set("V", 0, 9, value.Int(int64(j))).
						MustBuild()
				}
				return ts
			}
			if writerErr = a.InsertBatch(mk(sa)); writerErr != nil {
				return
			}
			if writerErr = b.InsertBatch(mk(sb)); writerErr != nil {
				return
			}
		}
	}()

	// Query for as long as the writer is loading, so every measured
	// query races live publications rather than a quiesced store.
	violations, queries := 0, 0
	start := time.Now()
	for loading := true; loading; {
		select {
		case <-stop:
			loading = false
		default:
		}
		q := []string{`B MINUS A`, `A MINUS B`}[queries%2]
		res, err := sess.Query(ctx, q)
		if err != nil {
			panic(fmt.Sprintf("multi_rel_race %s: %v", q, err))
		}
		n := res.Relation.Cardinality()
		if (q == `B MINUS A` && n != 0) || (q == `A MINUS B` && n%batchN != 0) {
			violations++
		}
		queries++
	}
	total := time.Since(start)
	if writerErr != nil {
		panic(fmt.Sprintf("multi_rel_race writer: %v", writerErr))
	}
	r := benchResult{Op: "multi_rel_race", Variant: "snapshot", N: rounds * batchN, Iters: queries,
		NsPerOp:    total.Nanoseconds() / int64(queries),
		ResultRows: violations}
	fmt.Printf("  %-28s %-8s %14d ns/op %8d consistency violations (must be 0)\n",
		"multi_rel_race", "snapshot", r.NsPerOp, violations)
	if violations > 0 {
		panic(fmt.Sprintf("multi_rel_race: %d epoch-consistency violations", violations))
	}
	doc.Results = append(doc.Results, r)
}

// benchWriteGroup measures cross-relation atomic write groups. Two
// parts:
//
//  1. Cost: the same load — rounds of one batch into each of three
//     store-registered, index-warm relations — applied either as three
//     sequential InsertBatch publications per round or as one
//     WriteGroup commit per round. The group turns three publish-lock
//     rounds, three epoch ticks and three index merges per logical
//     update into one of each, so atomicity should come at (better
//     than) no cost; the recorded ratio proves it.
//  2. Atomicity: a writer commits groups inserting the same keys into
//     relations A and B while readers run `A MINUS B` and `B MINUS A`
//     through the engine. Sequential batches legitimately expose
//     windows where A runs ahead; a group must not — both differences
//     are empty at every cut, and any surviving tuple counts as a
//     torn-group violation (must be zero, mirroring multi_rel_race).
func benchWriteGroup(doc *benchFile) {
	const rounds, batchN, relsN = 200, 50, 3
	fmt.Printf("write_group: %d rounds × %d relations × %d tuples, sequential batches vs one group\n",
		rounds, relsN, batchN)
	full := lifespan.Interval(0, 999)
	mkScheme := func(name string) *schema.Scheme {
		return schema.MustNew(name, []string{"K"},
			schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
			schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
		)
	}
	mkBatch := func(s *schema.Scheme, round int) []*core.Tuple {
		ts := make([]*core.Tuple, batchN)
		for j := range ts {
			ts[j] = core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
				Key("K", value.String_(fmt.Sprintf("k%06d", round*batchN+j))).
				Set("V", 0, 9, value.Int(int64(j))).
				MustBuild()
		}
		return ts
	}

	run := func(variant string, apply func(rels []*core.Relation, batches [][]*core.Tuple) error) benchResult {
		schemes := make([]*schema.Scheme, relsN)
		rels := make([]*core.Relation, relsN)
		st := storage.NewStore()
		for i := range rels {
			schemes[i] = mkScheme(fmt.Sprintf("G%d", i))
			rels[i] = core.NewRelation(schemes[i])
			st.Put(rels[i])
		}
		st.RebuildIndexes()
		// Tuple construction is hoisted out of the timed region (like
		// bulk_load), and the heap is quiesced first, so the ratio
		// isolates the publication paths themselves.
		prebuilt := make([][][]*core.Tuple, rounds)
		for i := range prebuilt {
			prebuilt[i] = make([][]*core.Tuple, relsN)
			for j := range prebuilt[i] {
				prebuilt[i][j] = mkBatch(schemes[j], i)
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := apply(rels, prebuilt[i]); err != nil {
				panic(fmt.Sprintf("write_group %s round %d: %v", variant, i, err))
			}
		}
		total := time.Since(start)
		runtime.ReadMemStats(&m1)
		r := benchResult{Op: "write_group", Variant: variant, N: rounds * batchN * relsN, Iters: rounds,
			NsPerOp:     total.Nanoseconds() / rounds,
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / rounds,
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / rounds,
			ResultRows:  rels[0].Cardinality()}
		fmt.Printf("  %-28s %-8s %14d ns/op %12d allocs/op %8d rows/rel (total %s)\n",
			"write_group", variant, r.NsPerOp, r.AllocsPerOp, r.ResultRows, total)
		doc.Results = append(doc.Results, r)
		return r
	}
	seq := run("sequential", func(rels []*core.Relation, batches [][]*core.Tuple) error {
		for i, r := range rels {
			if err := r.InsertBatch(batches[i]); err != nil {
				return err
			}
		}
		return nil
	})
	grp := run("group", func(rels []*core.Relation, batches [][]*core.Tuple) error {
		g := core.NewWriteGroup()
		for i, r := range rels {
			g.InsertBatch(r, batches[i])
		}
		return g.Commit()
	})
	if grp.NsPerOp > 0 {
		s := float64(seq.NsPerOp) / float64(grp.NsPerOp)
		doc.Speedups["write_group"] = s
		fmt.Printf("  group vs sequential: %.2f× (atomicity at no extra publication cost)\n", s)
	}

	// Part 2 — torn-group detector under live read pressure.
	sa, sb := mkScheme("A"), mkScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st := storage.NewStore()
	st.Put(a)
	st.Put(b)
	st.RebuildIndexes()
	ctx := context.Background()
	sess := engine.OpenDB(st).NewSession()
	stop := make(chan struct{})
	var writerErr error
	go func() {
		defer close(stop)
		for i := 0; i < rounds; i++ {
			g := core.NewWriteGroup()
			g.InsertBatch(a, mkBatch(sa, i))
			g.InsertBatch(b, mkBatch(sb, i))
			if writerErr = g.Commit(); writerErr != nil {
				return
			}
		}
	}()
	violations, queries := 0, 0
	start := time.Now()
	for loading := true; loading; {
		select {
		case <-stop:
			loading = false
		default:
		}
		q := []string{`A MINUS B`, `B MINUS A`}[queries%2]
		res, err := sess.Query(ctx, q)
		if err != nil {
			panic(fmt.Sprintf("write_group %s: %v", q, err))
		}
		if res.Relation.Cardinality() != 0 {
			violations++
		}
		queries++
	}
	total := time.Since(start)
	if writerErr != nil {
		panic(fmt.Sprintf("write_group writer: %v", writerErr))
	}
	r := benchResult{Op: "write_group", Variant: "atomic", N: rounds * batchN, Iters: queries,
		NsPerOp:    total.Nanoseconds() / int64(max(queries, 1)),
		ResultRows: violations}
	fmt.Printf("  %-28s %-8s %14d ns/op %8d torn-group observations (must be 0)\n",
		"write_group", "atomic", r.NsPerOp, violations)
	if violations > 0 {
		panic(fmt.Sprintf("write_group: %d torn-group observations", violations))
	}
	doc.Results = append(doc.Results, r)
}

// benchRef builds the REF relation the equijoin probes: refN tuples
// keyed by existing employee names, each covering its employee's
// actual employment window so the join produces real output — the
// recorded speedup then measures index-accelerated joining, not the
// fast construction of an empty result.
func benchRef(refN int, emp *core.Relation) *core.Relation {
	empN := emp.Cardinality()
	if refN > empN/2 {
		// Names are drawn from empN distinct employees; drawing close to
		// (or past) all of them would spin forever on duplicate keys.
		refN = empN / 2
		fmt.Printf("  (capping -ref at %d, half the employee population)\n", refN)
	}
	full := lifespan.Interval(0, 99999)
	rs := schema.MustNew("REF", []string{"RNAME"},
		schema.Attribute{Name: "RNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "GRP", Domain: value.Strings, Lifespan: full},
	)
	ref := core.NewRelation(rs)
	rng := rand.New(rand.NewSource(17))
	_, empVers := core.Pin(emp)
	emps := empVers[0].Tuples()
	for ref.Cardinality() < refN {
		et := emps[rng.Intn(empN)]
		ls := et.Lifespan()
		// GRP is near-unique (mostly synthetic group names, every 25th a
		// real department): high-cardinality on the small side is what
		// makes the planner stream the big EMP side in the DEPT = GRP
		// join the parallel_speedup scenario measures, while the sprinkled
		// department names keep that join's output non-empty.
		grp := fmt.Sprintf("G%05d", ref.Cardinality())
		if ref.Cardinality()%25 == 0 {
			grp = []string{"Toys", "Shoes", "Books", "Tools", "Music"}[(ref.Cardinality()/25)%5]
		}
		b := core.NewTupleBuilder(rs, ls).
			Key("RNAME", value.String_(et.KeyValue("NAME").AsString())).
			SetConst("GRP", value.String_(grp))
		for _, iv := range ls.Intervals() {
			b.Set("BONUS", iv.Lo, iv.Hi, value.Int(int64(1000*rng.Intn(10))))
		}
		if err := ref.Insert(b.MustBuild()); err != nil {
			continue // duplicate name; draw again
		}
	}
	return ref
}

// benchWalCommit prices durability: the write_group "group" load — one
// WriteGroup of three 50-tuple batches per round — committed into an
// in-memory store, into a durable store with the per-commit fsync
// elided (framing, CRC and LSN bookkeeping only), and into a durable
// store under the production fsync-before-publish discipline. The
// recorded overhead ratios are what crash safety costs a group commit;
// the fsync variant is dominated by the disk's flush latency, which is
// exactly the point.
func benchWalCommit(doc *benchFile) {
	const rounds, batchN, relsN = 200, 50, 3
	fmt.Printf("wal_commit: %d group commits × %d relations × %d tuples, memory vs WAL(nosync) vs WAL(fsync)\n",
		rounds, relsN, batchN)
	full := lifespan.Interval(0, 999)
	mkScheme := func(name string) *schema.Scheme {
		return schema.MustNew(name, []string{"K"},
			schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
			schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
		)
	}
	mkBatch := func(s *schema.Scheme, round int) []*core.Tuple {
		ts := make([]*core.Tuple, batchN)
		for j := range ts {
			ts[j] = core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
				Key("K", value.String_(fmt.Sprintf("k%06d", round*batchN+j))).
				Set("V", 0, 9, value.Int(int64(j))).
				MustBuild()
		}
		return ts
	}

	run := func(variant string, open func() (*storage.Store, func(), error)) benchResult {
		st, done, err := open()
		if err != nil {
			panic(fmt.Sprintf("wal_commit %s: %v", variant, err))
		}
		defer done()
		schemes := make([]*schema.Scheme, relsN)
		rels := make([]*core.Relation, relsN)
		for i := range rels {
			schemes[i] = mkScheme(fmt.Sprintf("W%s%d", variant, i))
			rels[i] = core.NewRelation(schemes[i])
			st.Put(rels[i])
		}
		prebuilt := make([][][]*core.Tuple, rounds)
		for i := range prebuilt {
			prebuilt[i] = make([][]*core.Tuple, relsN)
			for j := range prebuilt[i] {
				prebuilt[i][j] = mkBatch(schemes[j], i)
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < rounds; i++ {
			g := core.NewWriteGroup()
			for j, r := range rels {
				g.InsertBatch(r, prebuilt[i][j])
			}
			if err := g.Commit(); err != nil {
				panic(fmt.Sprintf("wal_commit %s round %d: %v", variant, i, err))
			}
		}
		total := time.Since(start)
		runtime.ReadMemStats(&m1)
		r := benchResult{Op: "wal_commit", Variant: variant, N: rounds * batchN * relsN, Iters: rounds,
			NsPerOp:     total.Nanoseconds() / rounds,
			AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / rounds,
			BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / rounds,
			ResultRows:  rels[0].Cardinality()}
		fmt.Printf("  %-28s %-10s %14d ns/op %12d allocs/op %8d rows/rel (total %s)\n",
			"wal_commit", variant, r.NsPerOp, r.AllocsPerOp, r.ResultRows, total)
		doc.Results = append(doc.Results, r)
		return r
	}

	mem := run("memory", func() (*storage.Store, func(), error) {
		return storage.NewStore(), func() {}, nil
	})
	durable := func(opts storage.DurableOptions) func() (*storage.Store, func(), error) {
		return func() (*storage.Store, func(), error) {
			dir, err := os.MkdirTemp("", "hrdm-wal-bench-*")
			if err != nil {
				return nil, nil, err
			}
			st, _, err := storage.OpenDurableOptions(dir, opts)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			// Close (final checkpoint + log release) stays outside the
			// timed region; the temp dir goes with it.
			return st, func() { st.Close(); os.RemoveAll(dir) }, nil
		}
	}
	nosync := run("wal_nosync", durable(storage.DurableOptions{NoSync: true}))
	fsync := run("wal_fsync", durable(storage.DurableOptions{}))

	if mem.NsPerOp > 0 {
		no := float64(nosync.NsPerOp) / float64(mem.NsPerOp)
		fs := float64(fsync.NsPerOp) / float64(mem.NsPerOp)
		doc.Speedups["wal_commit_nosync_overhead"] = no
		doc.Speedups["wal_commit_fsync_overhead"] = fs
		fmt.Printf("  WAL overhead vs in-memory group commit: %.2f× without fsync, %.2f× with fsync\n", no, fs)
	}
}

// benchParallelSpeedup measures the partitioned parallel executor:
// scan, select and join plans at worker degrees 1/2/4/8, at the base
// workload size and at 10× it. The degree binds at snapshot-pin time
// from the query context — the plan is identical across degrees — so
// the w1 variant times the same partitioned plan run inline and the
// ratios isolate the worker pool itself. The recorded curve is honest
// for the machine it ran on: on a single-CPU host the w2..w8 variants
// measure coordination overhead, not speedup (the CPU count is in the
// output for exactly that reason). The partition threshold is lowered
// to size/8 for the scenario so CI-smoke sizes still plan parallel
// operators, then restored.
func benchParallelSpeedup(doc *benchFile, n, refN int) {
	degrees := []int{1, 2, 4, 8}
	fmt.Printf("parallel_speedup: scan/select/join at workers %v on %d and %d tuples (%d CPUs)\n",
		degrees, n, 10*n, runtime.NumCPU())
	for _, size := range []int{n, 10 * n} {
		thr := size / 8
		if thr < 64 {
			thr = 64
		}
		if thr > 4096 {
			thr = 4096
		}
		oldThr := engine.SetParallelThreshold(thr)
		engine.ResetPlanCache()

		emp := workload.Personnel(workload.PersonnelConfig{
			NumEmployees: size, HistoryLen: 100000, ChangeEvery: 25,
			ReincarnationProb: 0.2, MaxTenure: 40, Seed: 31,
		})
		st := storage.NewStore()
		st.Put(emp)
		st.Put(benchRef(refN, emp))
		st.RebuildIndexes()
		sess := engine.OpenDB(st).NewSession()

		ops := []struct{ op, query string }{
			// No equality conjunct and no DURING window on the selects, so
			// the planner has no index arm to prefer: both lower to a
			// (parallel) filter over the base scan. The join streams the big
			// EMP side (REF.GRP is near-unique, so probing its buckets is
			// far cheaper than streaming REF into EMP's fat DEPT buckets),
			// partitions of the stream probing REF's attribute index.
			{"scan", `SELECT WHEN SAL >= 0 FROM EMP`},
			{"select", `SELECT WHEN SAL > 30000 FROM EMP`},
			{"join", `EMP JOIN REF ON DEPT = GRP`},
		}
		for _, o := range ops {
			plan, err := sess.Explain(o.query)
			if err != nil {
				panic(fmt.Sprintf("explain %q: %v", o.query, err))
			}
			if !strings.Contains(plan, "parallel") {
				panic(fmt.Sprintf("parallel_speedup %s plan is not parallel at threshold %d:\n%s", o.op, thr, plan))
			}
			e, err := hql.Parse(o.query)
			if err != nil {
				panic(fmt.Sprintf("parse %q: %v", o.query, err))
			}
			var base int64
			for _, w := range degrees {
				ctxw := engine.WithWorkers(context.Background(), w)
				rows := 0
				if res, err := sess.Eval(ctxw, e); err != nil {
					panic(fmt.Sprintf("run %q at w=%d: %v", o.query, w, err))
				} else if res.Relation != nil {
					rows = res.Relation.Cardinality()
				}
				br := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := sess.Eval(ctxw, e); err != nil {
							b.Fatal(err)
						}
					}
				})
				r := benchResult{Op: "parallel_speedup_" + o.op, Variant: fmt.Sprintf("w%d", w), N: size,
					Iters: br.N, NsPerOp: br.NsPerOp(), AllocsPerOp: br.AllocsPerOp(),
					BytesPerOp: br.AllocedBytesPerOp(), ResultRows: rows}
				fmt.Printf("  %-28s %-8s %14d ns/op %12d allocs/op %8d rows (n=%d)\n",
					r.Op, r.Variant, r.NsPerOp, r.AllocsPerOp, rows, size)
				doc.Results = append(doc.Results, r)
				if w == 1 {
					base = r.NsPerOp
				} else if size == n && r.NsPerOp > 0 {
					doc.Speedups[fmt.Sprintf("parallel_speedup_%s_w%d", o.op, w)] =
						float64(base) / float64(r.NsPerOp)
				}
			}
		}
		engine.SetParallelThreshold(oldThr)
		engine.ResetPlanCache()
	}
}
