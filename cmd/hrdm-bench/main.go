// Command hrdm-bench runs the full experiment suite (E1–E12 of
// DESIGN.md) and prints every table recorded in EXPERIMENTS.md.
//
// Usage:
//
//	hrdm-bench            # run everything
//	hrdm-bench E5 E10     # run selected experiments
//	hrdm-bench -json      # benchmark the query engine (naive vs indexed)
//	                      # and write machine-readable results
//
// With -json the command generates a large personnel workload (-n
// tuples, default 50000), runs each engine benchmark through Go's
// testing.Benchmark against both the naive evaluator and the indexed
// physical plans, prints a table, and writes op/n/ns-per-op/allocs
// records plus indexed-vs-naive speedups to -out (default
// BENCH_engine.json) so the performance trajectory accumulates in the
// repository.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

var runners = map[string]func() experiment.Table{
	"E1": experiment.E1SetOps, "E2": experiment.E2Project,
	"E3": experiment.E3Select, "E4": experiment.E4Timeslice,
	"E5": experiment.E5UnionVsMerge, "E6": experiment.E6Joins,
	"E7": experiment.E7TimeJoin, "E8": experiment.E8When,
	"E9": experiment.E9Reduction, "E10": experiment.E10Storage,
	"E11": experiment.E11Queries, "E12": experiment.E12Laws,
}

var order = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}

func main() {
	// -json anywhere in the argument list switches to the engine
	// benchmark mode; the remaining arguments are its flags.
	var rest []string
	jsonMode := false
	for _, a := range os.Args[1:] {
		if a == "-json" || a == "--json" {
			jsonMode = true
			continue
		}
		rest = append(rest, a)
	}
	if jsonMode {
		if err := runEngineBench(rest); err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-bench:", err)
			os.Exit(1)
		}
		return
	}
	args := rest
	if len(args) == 0 {
		args = order
	}
	for _, id := range args {
		run, ok := runners[strings.ToUpper(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "hrdm-bench: unknown experiment %q (have %s)\n", id, strings.Join(order, " "))
			os.Exit(2)
		}
		fmt.Println(run())
	}
}
