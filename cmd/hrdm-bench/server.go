package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/hrdmerr"
	"repro/internal/server"
	"repro/internal/storage"
)

// serverBenchResult is one record of the concurrent_clients scenario:
// the same query stream served over TCP to a growing client population.
type serverBenchResult struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"` // completed queries (rejections excluded)
	Rejected int     `json:"rejected"` // typed overloaded rejections past admission
	QPS      float64 `json:"throughput_qps"`
	P50us    int64   `json:"p50_us"` // client-observed request latency percentiles
	P99us    int64   `json:"p99_us"`
}

// benchConcurrentClients measures the served path end to end: an
// in-process hrdm-server over the benchmark store, then 1/4/16/64
// concurrent TCP clients each issuing the same cached key-equality
// query in a closed loop. Recorded per client count: client-observed
// p50/p99 latency, aggregate throughput, and how many requests the
// admission controller shed with a typed overloaded error (MaxInflight
// is left at its default 16, so the 64-client round genuinely
// oversubscribes the executor). Every client runs its own session
// server-side; the plan is compiled once and shared.
func benchConcurrentClients(doc *benchFile, st *storage.Store, q string) {
	const perClient = 200
	fmt.Printf("concurrent_clients: %s ×%d per client over TCP\n", q, perClient)
	srv := server.New(engine.OpenDB(st), server.Config{
		Addr:     "127.0.0.1:0",
		MaxConns: 128, // admit every client; shed load at the executor
	})
	if err := srv.Start(); err != nil {
		panic(fmt.Sprintf("concurrent_clients: start server: %v", err))
	}
	defer srv.Shutdown(context.Background())

	req, err := json.Marshal(map[string]string{"op": "query", "q": q})
	if err != nil {
		panic(err)
	}
	req = append(req, '\n')

	for _, clients := range []int{1, 4, 16, 64} {
		lats := make([][]time.Duration, clients)
		rejected := make([]int, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					panic(fmt.Sprintf("concurrent_clients: dial: %v", err))
				}
				defer c.Close()
				r := bufio.NewReader(c)
				lats[i] = make([]time.Duration, 0, perClient)
				for j := 0; j < perClient; j++ {
					t0 := time.Now()
					if _, err := c.Write(req); err != nil {
						panic(fmt.Sprintf("concurrent_clients: write: %v", err))
					}
					line, err := r.ReadBytes('\n')
					if err != nil {
						panic(fmt.Sprintf("concurrent_clients: read: %v", err))
					}
					var resp struct {
						OK    bool `json:"ok"`
						Error *struct {
							Code int    `json:"code"`
							Msg  string `json:"msg"`
						} `json:"error"`
					}
					if err := json.Unmarshal(line, &resp); err != nil {
						panic(fmt.Sprintf("concurrent_clients: bad response %q: %v", line, err))
					}
					switch {
					case resp.OK:
						lats[i] = append(lats[i], time.Since(t0))
					case resp.Error != nil && resp.Error.Code == int(hrdmerr.CodeOverloaded):
						rejected[i]++
					default:
						panic(fmt.Sprintf("concurrent_clients: query failed: %s", line))
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var all []time.Duration
		shed := 0
		for i := range lats {
			all = append(all, lats[i]...)
			shed += rejected[i]
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		pct := func(p float64) int64 {
			if len(all) == 0 {
				return 0
			}
			idx := int(p * float64(len(all)-1))
			return all[idx].Microseconds()
		}
		r := serverBenchResult{
			Clients:  clients,
			Requests: len(all),
			Rejected: shed,
			QPS:      float64(len(all)) / elapsed.Seconds(),
			P50us:    pct(0.50),
			P99us:    pct(0.99),
		}
		doc.ConcurrentClients = append(doc.ConcurrentClients, r)
		fmt.Printf("  %3d clients %10.0f qps   p50 %6dµs   p99 %6dµs   %d rejected\n",
			clients, r.QPS, r.P50us, r.P99us, shed)
	}
}
