// Command hrdm-cli is an interactive HQL shell over a demo historical
// database (the paper's personnel domain plus stock-market and shipment
// relations).
//
// Usage:
//
//	hrdm-cli                        # interactive shell on the demo db
//	hrdm-cli -q 'QUERY'             # run one query and exit
//	hrdm-cli -db path.hrdm          # load a store saved with \save
//
// Shell commands: \l lists relations, \d NAME shows a scheme,
// \save PATH / \load PATH persist the store in the binary format,
// \loadtext PATH / \dumptext PATH use the human-editable text format
// (see internal/storage/text.go), \merge PATH stages a text file's
// relations into the current store and publishes them as one atomic
// cross-relation write group (see docs/ARCHITECTURE.md), \open DIR
// switches to a durable store backed by a write-ahead log — every
// committed write group is fsynced before it publishes, and opening
// replays whatever a crash left in the log, printing a recovery
// banner — and \checkpoint snapshots it and truncates the log (see
// docs/DURABILITY.md; -open DIR does the same at startup), \metrics
// [json] dumps the engine metrics registry, \slowlog [N] pages the
// slow-query log, \set slowlog_ms N tunes its threshold (see
// docs/OBSERVABILITY.md), \q quits.
// EXPLAIN QUERY prints the
// physical plan the engine would run — which indexes it probes, what
// falls back to the naive operators, the cost estimates, and the
// epoch snapshot a run would pin — without executing the plan
// (lifespan parameters, including WHEN sub-queries, are still
// resolved during planning); EXPLAIN ANALYZE QUERY executes the
// plan with a per-operator profiler attached and annotates the tree
// with actual rows, wall time, self time and index lookups (see
// docs/EXPLAIN.md). Anything else is parsed as an
// HQL query; see
// internal/hql for the grammar. Queries run through the cost-aware
// planner of internal/engine (lifespan interval indexes plus key and
// attribute hash indexes); \opt additionally toggles the law-based AST
// rewriter.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hrdmerr"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	query := flag.String("q", "", "run one query and exit")
	dbPath := flag.String("db", "", "load a saved store instead of the demo database")
	openDir := flag.String("open", "", "open a durable (write-ahead-logged) store directory instead of the demo database")
	optimize := flag.Bool("opt", true, "apply the law-based plan rewrites before evaluating")
	workers := flag.Int("workers", 0, "parallel degree for query execution (0 = number of CPUs)")
	flag.Parse()
	useOptimizer = *optimize

	var st *storage.Store
	switch {
	case *openDir != "":
		opened, stats, err := storage.OpenDurable(*openDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-cli:", err)
			os.Exit(1)
		}
		st = opened
		if banner := recoveryBanner(stats); banner != "" {
			fmt.Println(banner)
		}
	case *dbPath != "":
		loaded, err := storage.Load(*dbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-cli:", err)
			os.Exit(1)
		}
		st = loaded
	default:
		st = workload.Demo()
	}
	// The shell runs everything through an explicit engine.DB + Session
	// pair rather than poking the store into hql entry points directly:
	// the session owns the optimizer toggle and threads a context through
	// every query. \open/\load/\loadtext swap the store, so the DB and
	// session are rebuilt then; the deferred close (checkpoint + WAL
	// release for durable stores, no-op otherwise) covers whatever is
	// current at exit.
	db := engine.OpenDBOptions(st, engine.DBOptions{Workers: *workers})
	sess := db.NewSession()
	sess.SetOptimize(useOptimizer)
	defer func() { closeDB(db) }()
	attach := func(s *storage.Store) {
		st = s
		db = engine.OpenDBOptions(s, engine.DBOptions{Workers: *workers})
		sess = db.NewSession()
		sess.SetOptimize(useOptimizer)
	}

	if *query != "" {
		if err := runQuery(sess, *query); err != nil {
			closeDB(db)
			fmt.Fprintf(os.Stderr, "hrdm-cli: error[%d]: %s\n", hrdmerr.CodeOf(err), hrdmerr.Message(err))
			os.Exit(1)
		}
		return
	}

	fmt.Println("HRDM shell — historical relational algebra (Clifford & Croker 1987)")
	fmt.Println(`relations: ` + strings.Join(st.Names(), ", ") + `   try: SELECT WHEN SAL = 30000 FROM EMP   or: EXPLAIN SELECT ...   (\q quits, \l lists)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("hrdm> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q`, line == "quit", line == "exit":
			return
		case line == `\opt`:
			useOptimizer = !useOptimizer
			sess.SetOptimize(useOptimizer)
			fmt.Printf("  optimizer now %v\n", useOptimizer)
		case line == `\metrics`:
			fmt.Println(metricsReport(false))
		case line == `\metrics json`:
			fmt.Println(metricsReport(true))
		case line == `\slowlog` || strings.HasPrefix(line, `\slowlog `):
			n := 10
			if rest := strings.TrimSpace(strings.TrimPrefix(line, `\slowlog`)); rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v <= 0 {
					fmt.Printf("  usage: \\slowlog [N] — N a positive count, got %q\n", rest)
					continue
				}
				n = v
			}
			fmt.Println(slowlogReport(n))
		case strings.HasPrefix(line, `\set `):
			fields := strings.Fields(line[5:])
			if len(fields) != 2 {
				fmt.Println(`  usage: \set slowlog_ms N`)
				continue
			}
			msg, err := setOption(fields[0], fields[1])
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println(" ", msg)
			}
		case line == `\l`:
			// One atomic pin across the catalog, so the listing is a
			// consistent snapshot even while writers are publishing.
			names := st.Names()
			rels := make([]*core.Relation, len(names))
			for i, n := range names {
				rels[i], _ = st.Get(n)
			}
			_, vers := core.Pin(rels...)
			for i, n := range names {
				fmt.Printf("  %s (%d tuples, lifespan %s)\n", n, vers[i].Cardinality(), core.When(vers[i].View()))
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			if r, ok := st.Get(name); ok {
				fmt.Println(" ", r.Scheme())
			} else {
				fmt.Printf("  unknown relation %q\n", name)
			}
		case strings.HasPrefix(line, `\open `):
			dir := strings.TrimSpace(line[6:])
			opened, stats, err := storage.OpenDurable(dir)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			closeDB(db)
			attach(opened)
			engine.InvalidateStalePlans(st)
			if banner := recoveryBanner(stats); banner != "" {
				fmt.Println(banner)
			}
			if names := st.Names(); len(names) > 0 {
				fmt.Println("  opened durable store", dir, "—", strings.Join(names, ", "))
			} else {
				fmt.Println("  opened durable store", dir, "— empty")
			}
		case line == `\checkpoint`:
			if !st.Durable() {
				fmt.Println(`  error: current store is not durable — \open DIR first`)
				continue
			}
			if err := db.Checkpoint(); err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  checkpointed", st.Dir(), "(snapshot written, log truncated)")
			}
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(line[6:])
			if err := st.Save(path); err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  saved to", path)
			}
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(line[6:])
			loaded, err := storage.Load(path)
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				closeDB(db)
				attach(loaded)
				// Plans pinned to swapped-out relations can never validate
				// again; drop exactly those (they would otherwise pin the
				// old store's relations in memory until LRU overflow),
				// keeping any entry whose dependencies survived the swap.
				engine.InvalidateStalePlans(st)
				fmt.Println("  loaded", strings.Join(st.Names(), ", "))
			}
		case strings.HasPrefix(line, `\loadtext `):
			path := strings.TrimSpace(line[10:])
			f, err := os.Open(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			loaded, err := storage.ParseText(f)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				closeDB(db)
				attach(loaded)
				engine.InvalidateStalePlans(st)
				fmt.Println("  loaded", strings.Join(st.Names(), ", "))
			}
		case strings.HasPrefix(line, `\merge `):
			path := strings.TrimSpace(line[7:])
			f, err := os.Open(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			add, err := storage.ParseText(f)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			// One atomic write group across every relation in the file: a
			// concurrent reader (or a failed validation) sees either the
			// whole file merged or the store exactly as it was.
			if err := st.MergeStore(add); err != nil {
				fmt.Println("  error:", err, "(store unchanged)")
			} else {
				fmt.Println("  merged", strings.Join(add.Names(), ", "), "as one write group")
			}
		case strings.HasPrefix(line, `\dumptext `):
			path := strings.TrimSpace(line[10:])
			f, err := os.Create(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			err = storage.DumpText(f, st)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  dumped to", path)
			}
		default:
			if err := runQuery(sess, line); err != nil {
				// Stable error line: the numeric wire code from the hrdmerr
				// taxonomy plus the unprefixed message, matching the server's
				// JSON envelope (docs/SERVER.md).
				fmt.Printf("  error[%d]: %s\n", hrdmerr.CodeOf(err), hrdmerr.Message(err))
			}
		}
	}
}

// useOptimizer controls whether queries run through the Section 5
// law-based rewriter; toggle interactively with \opt.
var useOptimizer = true

// closeDB checkpoints and releases the DB's durable store (no-op for
// the in-memory demo/loaded stores), surfacing rather than swallowing a
// failed final checkpoint.
func closeDB(db *engine.DB) {
	if db == nil {
		return
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hrdm-cli: closing durable store:", err)
	}
}

// recoveryBanner renders what OpenDurable had to redo, or "" when the
// store came up clean.
func recoveryBanner(stats storage.RecoveryStats) string {
	if !stats.Recovered() {
		return ""
	}
	return fmt.Sprintf("  recovered: replayed %d write groups (%d tuples) past snapshot LSN %d; discarded %d torn log bytes",
		stats.ReplayedGroups, stats.ReplayedTuples, stats.SnapshotLSN, stats.TornBytes)
}

func runQuery(sess *engine.Session, q string) error {
	ctx := context.Background()
	if rest, ok := cutExplain(q); ok {
		rest, analyze := cutAnalyze(rest)
		if rest == "" {
			// A bare EXPLAIN used to fall through to the HQL parser and
			// surface as a cryptic parse error; hint at the verb instead.
			fmt.Println(`usage: EXPLAIN [ANALYZE] <QUERY> — e.g. EXPLAIN SELECT WHEN SAL = 30000 FROM EMP`)
			return nil
		}
		var out string
		var err error
		if analyze {
			out, err = sess.ExplainAnalyze(ctx, rest)
		} else {
			out, err = sess.Explain(rest)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	res, err := sess.Query(ctx, q)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

// cutExplain strips a leading EXPLAIN keyword (any case) and reports
// whether the line was an EXPLAIN request. A bare EXPLAIN is still an
// EXPLAIN request — it returns ("", true) so the caller can print a
// usage hint rather than a parse error.
func cutExplain(q string) (string, bool) {
	fields := strings.Fields(q)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "EXPLAIN") {
		return q, false
	}
	return strings.TrimSpace(strings.TrimSpace(q)[len(fields[0]):]), true
}

// cutAnalyze strips a leading ANALYZE keyword (any case) from the rest
// of an EXPLAIN line: EXPLAIN ANALYZE executes the query with the
// per-operator profiler attached and renders actual rows and timings
// next to the estimates.
func cutAnalyze(q string) (string, bool) {
	fields := strings.Fields(q)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "ANALYZE") {
		return q, false
	}
	return strings.TrimSpace(strings.TrimSpace(q)[len(fields[0]):]), true
}
