// Command hrdm-cli is an interactive HQL shell over a demo historical
// database (the paper's personnel domain plus stock-market and shipment
// relations).
//
// Usage:
//
//	hrdm-cli                        # interactive shell on the demo db
//	hrdm-cli -q 'QUERY'             # run one query and exit
//	hrdm-cli -db path.hrdm          # load a store saved with \save
//
// Shell commands: \l lists relations, \d NAME shows a scheme,
// \save PATH / \load PATH persist the store in the binary format,
// \loadtext PATH / \dumptext PATH use the human-editable text format
// (see internal/storage/text.go), \merge PATH stages a text file's
// relations into the current store and publishes them as one atomic
// cross-relation write group (see docs/ARCHITECTURE.md), \open DIR
// switches to a durable store backed by a write-ahead log — every
// committed write group is fsynced before it publishes, and opening
// replays whatever a crash left in the log, printing a recovery
// banner — and \checkpoint snapshots it and truncates the log (see
// docs/DURABILITY.md; -open DIR does the same at startup), \metrics
// [json] dumps the engine metrics registry, \slowlog [N] pages the
// slow-query log, \set slowlog_ms N tunes its threshold (see
// docs/OBSERVABILITY.md), \q quits.
// EXPLAIN QUERY prints the
// physical plan the engine would run — which indexes it probes, what
// falls back to the naive operators, the cost estimates, and the
// epoch snapshot a run would pin — without executing the plan
// (lifespan parameters, including WHEN sub-queries, are still
// resolved during planning); EXPLAIN ANALYZE QUERY executes the
// plan with a per-operator profiler attached and annotates the tree
// with actual rows, wall time, self time and index lookups (see
// docs/EXPLAIN.md). Anything else is parsed as an
// HQL query; see
// internal/hql for the grammar. Queries run through the cost-aware
// planner of internal/engine (lifespan interval indexes plus key and
// attribute hash indexes); \opt additionally toggles the law-based AST
// rewriter.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	query := flag.String("q", "", "run one query and exit")
	dbPath := flag.String("db", "", "load a saved store instead of the demo database")
	openDir := flag.String("open", "", "open a durable (write-ahead-logged) store directory instead of the demo database")
	optimize := flag.Bool("opt", true, "apply the law-based plan rewrites before evaluating")
	flag.Parse()
	useOptimizer = *optimize

	var st *storage.Store
	switch {
	case *openDir != "":
		opened, stats, err := storage.OpenDurable(*openDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-cli:", err)
			os.Exit(1)
		}
		st = opened
		if banner := recoveryBanner(stats); banner != "" {
			fmt.Println(banner)
		}
	case *dbPath != "":
		loaded, err := storage.Load(*dbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-cli:", err)
			os.Exit(1)
		}
		st = loaded
	default:
		st = demoStore()
	}
	// Durable stores close (checkpoint + WAL release) on every exit
	// path; for in-memory stores this is a no-op. The shell swaps st on
	// \open/\load, so close whatever is current then.
	defer func() { closeStore(st) }()

	if *query != "" {
		if err := runQuery(st, *query); err != nil {
			closeStore(st)
			fmt.Fprintln(os.Stderr, "hrdm-cli:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("HRDM shell — historical relational algebra (Clifford & Croker 1987)")
	fmt.Println(`relations: ` + strings.Join(st.Names(), ", ") + `   try: SELECT WHEN SAL = 30000 FROM EMP   or: EXPLAIN SELECT ...   (\q quits, \l lists)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("hrdm> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q`, line == "quit", line == "exit":
			return
		case line == `\opt`:
			useOptimizer = !useOptimizer
			fmt.Printf("  optimizer now %v\n", useOptimizer)
		case line == `\metrics`:
			fmt.Println(metricsReport(false))
		case line == `\metrics json`:
			fmt.Println(metricsReport(true))
		case line == `\slowlog` || strings.HasPrefix(line, `\slowlog `):
			n := 10
			if rest := strings.TrimSpace(strings.TrimPrefix(line, `\slowlog`)); rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v <= 0 {
					fmt.Printf("  usage: \\slowlog [N] — N a positive count, got %q\n", rest)
					continue
				}
				n = v
			}
			fmt.Println(slowlogReport(n))
		case strings.HasPrefix(line, `\set `):
			fields := strings.Fields(line[5:])
			if len(fields) != 2 {
				fmt.Println(`  usage: \set slowlog_ms N`)
				continue
			}
			msg, err := setOption(fields[0], fields[1])
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println(" ", msg)
			}
		case line == `\l`:
			// One atomic pin across the catalog, so the listing is a
			// consistent snapshot even while writers are publishing.
			names := st.Names()
			rels := make([]*core.Relation, len(names))
			for i, n := range names {
				rels[i], _ = st.Get(n)
			}
			_, vers := core.Pin(rels...)
			for i, n := range names {
				fmt.Printf("  %s (%d tuples, lifespan %s)\n", n, vers[i].Cardinality(), core.When(vers[i].View()))
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			if r, ok := st.Get(name); ok {
				fmt.Println(" ", r.Scheme())
			} else {
				fmt.Printf("  unknown relation %q\n", name)
			}
		case strings.HasPrefix(line, `\open `):
			dir := strings.TrimSpace(line[6:])
			opened, stats, err := storage.OpenDurable(dir)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			closeStore(st)
			st = opened
			engine.InvalidateStalePlans(st)
			if banner := recoveryBanner(stats); banner != "" {
				fmt.Println(banner)
			}
			if names := st.Names(); len(names) > 0 {
				fmt.Println("  opened durable store", dir, "—", strings.Join(names, ", "))
			} else {
				fmt.Println("  opened durable store", dir, "— empty")
			}
		case line == `\checkpoint`:
			if !st.Durable() {
				fmt.Println(`  error: current store is not durable — \open DIR first`)
				continue
			}
			if err := st.Checkpoint(); err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  checkpointed", st.Dir(), "(snapshot written, log truncated)")
			}
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(line[6:])
			if err := st.Save(path); err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  saved to", path)
			}
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(line[6:])
			loaded, err := storage.Load(path)
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				closeStore(st)
				st = loaded
				// Plans pinned to swapped-out relations can never validate
				// again; drop exactly those (they would otherwise pin the
				// old store's relations in memory until LRU overflow),
				// keeping any entry whose dependencies survived the swap.
				engine.InvalidateStalePlans(st)
				fmt.Println("  loaded", strings.Join(st.Names(), ", "))
			}
		case strings.HasPrefix(line, `\loadtext `):
			path := strings.TrimSpace(line[10:])
			f, err := os.Open(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			loaded, err := storage.ParseText(f)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				closeStore(st)
				st = loaded
				engine.InvalidateStalePlans(st)
				fmt.Println("  loaded", strings.Join(st.Names(), ", "))
			}
		case strings.HasPrefix(line, `\merge `):
			path := strings.TrimSpace(line[7:])
			f, err := os.Open(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			add, err := storage.ParseText(f)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			// One atomic write group across every relation in the file: a
			// concurrent reader (or a failed validation) sees either the
			// whole file merged or the store exactly as it was.
			if err := st.MergeStore(add); err != nil {
				fmt.Println("  error:", err, "(store unchanged)")
			} else {
				fmt.Println("  merged", strings.Join(add.Names(), ", "), "as one write group")
			}
		case strings.HasPrefix(line, `\dumptext `):
			path := strings.TrimSpace(line[10:])
			f, err := os.Create(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			err = storage.DumpText(f, st)
			f.Close()
			if err != nil {
				fmt.Println("  error:", err)
			} else {
				fmt.Println("  dumped to", path)
			}
		default:
			if err := runQuery(st, line); err != nil {
				fmt.Println("  error:", err)
			}
		}
	}
}

// useOptimizer controls whether queries run through the Section 5
// law-based rewriter; toggle interactively with \opt.
var useOptimizer = true

// closeStore checkpoints and releases a durable store (no-op for the
// in-memory demo/loaded stores), surfacing rather than swallowing a
// failed final checkpoint.
func closeStore(st *storage.Store) {
	if st == nil || !st.Durable() {
		return
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hrdm-cli: closing durable store:", err)
	}
}

// recoveryBanner renders what OpenDurable had to redo, or "" when the
// store came up clean.
func recoveryBanner(stats storage.RecoveryStats) string {
	if !stats.Recovered() {
		return ""
	}
	return fmt.Sprintf("  recovered: replayed %d write groups (%d tuples) past snapshot LSN %d; discarded %d torn log bytes",
		stats.ReplayedGroups, stats.ReplayedTuples, stats.SnapshotLSN, stats.TornBytes)
}

func runQuery(st *storage.Store, q string) error {
	if rest, ok := cutExplain(q); ok {
		rest, analyze := cutAnalyze(rest)
		if rest == "" {
			// A bare EXPLAIN used to fall through to the HQL parser and
			// surface as a cryptic parse error; hint at the verb instead.
			fmt.Println(`usage: EXPLAIN [ANALYZE] <QUERY> — e.g. EXPLAIN SELECT WHEN SAL = 30000 FROM EMP`)
			return nil
		}
		explain := engine.Explain
		if analyze {
			explain = engine.ExplainAnalyze
		}
		out, err := explain(rest, st, useOptimizer)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	run := hql.Run
	if useOptimizer {
		run = hql.RunOptimized
	}
	res, err := run(q, st)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

// cutExplain strips a leading EXPLAIN keyword (any case) and reports
// whether the line was an EXPLAIN request. A bare EXPLAIN is still an
// EXPLAIN request — it returns ("", true) so the caller can print a
// usage hint rather than a parse error.
func cutExplain(q string) (string, bool) {
	fields := strings.Fields(q)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "EXPLAIN") {
		return q, false
	}
	return strings.TrimSpace(strings.TrimSpace(q)[len(fields[0]):]), true
}

// cutAnalyze strips a leading ANALYZE keyword (any case) from the rest
// of an EXPLAIN line: EXPLAIN ANALYZE executes the query with the
// per-operator profiler attached and renders actual rows and timings
// next to the estimates.
func cutAnalyze(q string) (string, bool) {
	fields := strings.Fields(q)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "ANALYZE") {
		return q, false
	}
	return strings.TrimSpace(strings.TrimSpace(q)[len(fields[0]):]), true
}

// demoStore assembles the demo database: the paper's EMP example plus
// workload-generated STOCK and a small SHIP relation with a time-valued
// attribute for TIME-JOIN demos.
func demoStore() *storage.Store {
	st := storage.NewStore()

	full := lifespan.Interval(0, 99)
	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	emp := core.NewRelation(es)
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(0, 9)).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(3, 19)).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.MustParse("{[0,3],[8,14]}")).
		Key("NAME", value.String_("Ahmed")).
		Set("SAL", 0, 3, value.Int(30000)).
		Set("SAL", 8, 14, value.Int(31000)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Books")).
		MustBuild())
	st.Put(emp)

	ds := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	dept := core.NewRelation(ds)
	for i, n := range []string{"Toys", "Shoes", "Books"} {
		dept.MustInsert(core.NewTupleBuilder(ds, lifespan.Interval(0, 19)).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 19, value.Int(int64(i+1))).
			MustBuild())
	}
	st.Put(dept)

	st.Put(workload.Stock(workload.StockConfig{
		NumStocks: 5, HistoryLen: 60, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 42,
	}))

	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := core.NewRelation(ss)
	ship.MustInsert(core.NewTupleBuilder(ss, lifespan.Interval(0, 19)).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 19, value.TimeVal(7)).
		MustBuild())
	ship.MustInsert(core.NewTupleBuilder(ss, lifespan.Interval(5, 19)).
		Key("ID", value.Int(2)).
		Set("SHIPDATE", 5, 12, value.TimeVal(9)).
		Set("SHIPDATE", 13, 19, value.TimeVal(15)).
		MustBuild())
	st.Put(ship)
	return st
}
