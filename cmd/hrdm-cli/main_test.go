package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// demoSession builds the shell's default state: a session with the
// optimizer on over the demo database.
func demoSession() *engine.Session {
	sess := engine.OpenDB(workload.Demo()).NewSession()
	sess.SetOptimize(true)
	return sess
}

func TestCutExplain(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"EXPLAIN SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", true},
		{"explain   TIMESLICE EMP AT {[0,9]}", "TIMESLICE EMP AT {[0,9]}", true},
		{"EXPLAIN", "", true}, // bare EXPLAIN gets a usage hint, not a parse error
		{"  explain  ", "", true},
		{"EXPLAINX EMP", "EXPLAINX EMP", false},
		{"SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", false},
		{"", "", false},
	}
	for _, c := range cases {
		rest, ok := cutExplain(c.in)
		if rest != c.rest || ok != c.ok {
			t.Errorf("cutExplain(%q) = (%q, %v), want (%q, %v)", c.in, rest, ok, c.rest, c.ok)
		}
	}
}

// TestRunQueryBareExplain drives the full runQuery path: a bare EXPLAIN
// must succeed (printing a hint) instead of surfacing an HQL parse error.
func TestRunQueryBareExplain(t *testing.T) {
	sess := demoSession()
	if err := runQuery(sess, "EXPLAIN"); err != nil {
		t.Fatalf("bare EXPLAIN should print a usage hint, got error: %v", err)
	}
	if err := runQuery(sess, "EXPLAIN TIMESLICE EMP AT {[0,5]}"); err != nil {
		t.Fatalf("EXPLAIN with query: %v", err)
	}
}

func TestCutAnalyze(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"ANALYZE SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", true},
		{"analyze TIMESLICE EMP AT {[0,9]}", "TIMESLICE EMP AT {[0,9]}", true},
		{"ANALYZE", "", true}, // EXPLAIN ANALYZE alone still gets the usage hint
		{"ANALYZER EMP", "ANALYZER EMP", false},
		{"SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", false},
		{"", "", false},
	}
	for _, c := range cases {
		rest, ok := cutAnalyze(c.in)
		if rest != c.rest || ok != c.ok {
			t.Errorf("cutAnalyze(%q) = (%q, %v), want (%q, %v)", c.in, rest, ok, c.rest, c.ok)
		}
	}
}

// TestRunQueryExplainAnalyze drives EXPLAIN ANALYZE end to end through
// runQuery, both bare and with a query.
func TestRunQueryExplainAnalyze(t *testing.T) {
	sess := demoSession()
	if err := runQuery(sess, "EXPLAIN ANALYZE"); err != nil {
		t.Fatalf("bare EXPLAIN ANALYZE should print a usage hint, got error: %v", err)
	}
	if err := runQuery(sess, "EXPLAIN ANALYZE SELECT WHEN SAL = 30000 FROM EMP"); err != nil {
		t.Fatalf("EXPLAIN ANALYZE with query: %v", err)
	}
}

// TestMetricsReport checks both renderings of \metrics: the text form
// carries the engine counters, the JSON form parses and exposes the
// same keys under the snapshot's sections.
func TestMetricsReport(t *testing.T) {
	sess := demoSession()
	if err := runQuery(sess, "SELECT WHEN SAL = 30000 FROM EMP"); err != nil {
		t.Fatal(err)
	}
	text := metricsReport(false)
	for _, want := range []string{"engine.queries", "engine.plancache.", "core.epoch"} {
		if !strings.Contains(text, want) {
			t.Errorf("\\metrics output lacks %q:\n%s", want, text)
		}
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(metricsReport(true)), &snap); err != nil {
		t.Fatalf("\\metrics json is not valid JSON: %v", err)
	}
	if snap.Counters["engine.queries"] == 0 {
		t.Error("engine.queries missing or zero in JSON snapshot")
	}
	if _, ok := snap.Gauges["core.epoch"]; !ok {
		t.Error("core.epoch gauge missing in JSON snapshot")
	}
}

// TestSlowlogAndSetOption lowers the threshold to zero so every query
// records, then checks \slowlog renders the entry and \set validates
// its input.
func TestSlowlogAndSetOption(t *testing.T) {
	prev := obs.Default.SlowLog().Threshold()
	defer obs.Default.SlowLog().SetThreshold(prev)

	if _, err := setOption("slowlog_ms", "0"); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.SlowLog().Threshold(); got != 0 {
		t.Fatalf("threshold = %v after \\set slowlog_ms 0", got)
	}
	sess := demoSession()
	if err := runQuery(sess, "TIMESLICE EMP AT {[0,5]}"); err != nil {
		t.Fatal(err)
	}
	out := slowlogReport(5)
	if !strings.Contains(out, "TIMESLICE EMP AT {[0,5]}") {
		t.Errorf("slow log does not show the recorded query:\n%s", out)
	}
	if !strings.Contains(out, "stages:") {
		t.Errorf("slow log entry lacks stage breakdown:\n%s", out)
	}

	if _, err := setOption("slowlog_ms", "250"); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.SlowLog().Threshold(); got != 250*time.Millisecond {
		t.Fatalf("threshold = %v, want 250ms", got)
	}
	if _, err := setOption("slowlog_ms", "-1"); err == nil {
		t.Error("negative slowlog_ms accepted")
	}
	if _, err := setOption("nope", "1"); err == nil {
		t.Error("unknown option accepted")
	}
}
