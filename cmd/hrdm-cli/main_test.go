package main

import "testing"

func TestCutExplain(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"EXPLAIN SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", true},
		{"explain   TIMESLICE EMP AT {[0,9]}", "TIMESLICE EMP AT {[0,9]}", true},
		{"EXPLAIN", "", true}, // bare EXPLAIN gets a usage hint, not a parse error
		{"  explain  ", "", true},
		{"EXPLAINX EMP", "EXPLAINX EMP", false},
		{"SELECT WHEN SAL = 1 FROM EMP", "SELECT WHEN SAL = 1 FROM EMP", false},
		{"", "", false},
	}
	for _, c := range cases {
		rest, ok := cutExplain(c.in)
		if rest != c.rest || ok != c.ok {
			t.Errorf("cutExplain(%q) = (%q, %v), want (%q, %v)", c.in, rest, ok, c.rest, c.ok)
		}
	}
}

// TestRunQueryBareExplain drives the full runQuery path: a bare EXPLAIN
// must succeed (printing a hint) instead of surfacing an HQL parse error.
func TestRunQueryBareExplain(t *testing.T) {
	st := demoStore()
	if err := runQuery(st, "EXPLAIN"); err != nil {
		t.Fatalf("bare EXPLAIN should print a usage hint, got error: %v", err)
	}
	if err := runQuery(st, "EXPLAIN TIMESLICE EMP AT {[0,5]}"); err != nil {
		t.Fatalf("EXPLAIN with query: %v", err)
	}
}
