// Observability commands of the shell: \metrics renders the engine's
// metric registry (text or JSON), \slowlog pages the slow-query ring,
// and \set slowlog_ms tunes the recording threshold. The helpers
// return strings so main_test.go can assert on them without driving
// the interactive loop.
package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// metricsReport renders the process-wide registry: sorted text for
// human eyes, a JSON snapshot for scripts (`\metrics json`).
func metricsReport(asJSON bool) string {
	snap := obs.Default.Snapshot()
	if asJSON {
		var b strings.Builder
		if err := snap.WriteJSON(&b); err != nil {
			return "error: " + err.Error()
		}
		return b.String()
	}
	return snap.String()
}

// slowlogReport renders the n most recent slow queries, newest first,
// with their stage breakdowns and plan fingerprints.
func slowlogReport(n int) string {
	log := obs.Default.SlowLog()
	entries := log.Last(n)
	var b strings.Builder
	fmt.Fprintf(&b, "slow-query log: threshold %s, %d recorded, showing %d\n",
		log.Threshold(), log.Recorded(), len(entries))
	for i, e := range entries {
		fmt.Fprintf(&b, "[%d] %s  (epoch %d)\n    %s\n", i, time.Duration(e.TotalNs), e.Epoch, e.Query)
		if len(e.Stages) > 0 {
			parts := make([]string, len(e.Stages))
			for j, st := range e.Stages {
				parts[j] = fmt.Sprintf("%s=%s", st.Name, time.Duration(st.Ns))
			}
			fmt.Fprintf(&b, "    stages: %s\n", strings.Join(parts, " "))
		}
		if e.Fingerprint != "" {
			fmt.Fprintf(&b, "    plan: %s\n", e.Fingerprint)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// setOption handles `\set name value`. The only option today is
// slowlog_ms, the slow-query recording threshold in milliseconds
// (0 records every query — useful interactively).
func setOption(name, val string) (string, error) {
	switch name {
	case "slowlog_ms":
		ms, err := strconv.ParseInt(val, 10, 64)
		if err != nil || ms < 0 {
			return "", fmt.Errorf("slowlog_ms wants a non-negative integer, got %q", val)
		}
		obs.Default.SlowLog().SetThreshold(time.Duration(ms) * time.Millisecond)
		return fmt.Sprintf("slow-query threshold now %s", time.Duration(ms)*time.Millisecond), nil
	default:
		return "", fmt.Errorf("unknown option %q (known: slowlog_ms)", name)
	}
}
