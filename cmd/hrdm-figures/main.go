// Command hrdm-figures prints an executable reproduction of every figure
// in the paper (Figures 1–11), each computed with the library rather than
// drawn by hand: the lifespan-granularity hierarchy, the Figure 6
// evolving schema, the Figure 7/8 tuple×attribute lifespan interaction,
// the Figure 9 three-level architecture (via the interpolation and codec
// paths), the Figure 10 three dimensions (via the three unary reducers),
// and the Figure 11 union-vs-merge contrast.
package main

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tfunc"
	"repro/internal/value"
)

func section(n int, title string) {
	fmt.Printf("\n───── Figure %d — %s ─────\n", n, title)
}

func main() {
	figures1to5()
	figure6()
	figures7and8()
	figure9()
	figure10()
	figure11()
}

// figures1to5 demonstrates the lifespan-granularity choices of Figures
// 1–5: one lifespan per database / per relation / per tuple / per
// attribute, as successively finer assignments.
func figures1to5() {
	section(1, "relational database instance hierarchy (database → relations → tuples)")
	emp := demoEMP()
	dept := demoDEPT()
	fmt.Printf("database = {EMP (%d tuples), DEPTREL (%d tuples)}\n", emp.Cardinality(), dept.Cardinality())

	section(2, "one lifespan for the entire database (coarsest granularity)")
	dbLS := core.When(emp).Union(core.When(dept))
	fmt.Println("LS(database) =", dbLS, "— every relation and tuple would be forced to share it")

	section(3, "a lifespan per relation (Gadia-style homogeneity)")
	fmt.Println("LS(EMP)     =", core.When(emp))
	fmt.Println("LS(DEPTREL) =", core.When(dept))

	section(4, "a lifespan per tuple (heterogeneous objects — HRDM)")
	_, empVers := core.Pin(emp)
	for _, t := range empVers[0].Tuples() {
		fmt.Printf("  %-8s ls = %s\n", t.KeyValue("NAME"), t.Lifespan())
	}

	section(5, "the schema side: relation schemes and their attributes")
	fmt.Println(" ", emp.Scheme())
	fmt.Println(" ", dept.Scheme())
}

// figure6 reproduces the DAILY-TRADING-VOLUME lifespan: recorded on
// [t1,t2], dropped as too expensive, re-added from t3 through now.
func figure6() {
	section(6, "lifespan of attribute DAILY-TRADING-VOLUME (evolving schema)")
	t1, t2, t3, now := chronon.Time(10), chronon.Time(20), chronon.Time(30), chronon.Time(40)
	volLS := lifespan.Interval(t1, t2).Union(lifespan.Interval(t3, now))
	full := lifespan.Interval(0, now)
	s := schema.MustNew("STOCK", []string{"TICKER"},
		schema.Attribute{Name: "TICKER", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "VOLUME", Domain: value.Ints, Lifespan: volLS},
	)
	fmt.Println("ALS(VOLUME, STOCK) =", s.ALS("VOLUME"))
	fmt.Printf("defined at 15? %v   at 25 (gap)? %v   at 35? %v\n",
		volLS.Contains(15), volLS.Contains(25), volLS.Contains(35))
	fmt.Println("scheme lifespan (union of ALS) =", s.Lifespan())
}

// figures7and8 reproduce the tuple × attribute lifespan interaction: the
// value of attribute An in tuple_m is defined over X ∩ Y.
func figures7and8() {
	section(7, "tuple lifespan Y × attribute lifespan X → value defined on X ∩ Y")
	X := lifespan.MustParse("{[0,10],[20,30]}")
	Y := lifespan.MustParse("{[5,25]}")
	fmt.Println("ALS(An) = X =", X)
	fmt.Println("tuple.l = Y =", Y)
	fmt.Println("vls     = X ∩ Y =", X.Intersect(Y))

	section(8, "lifespans associated with both tuples and attributes (heterogeneous tuples)")
	emp := demoEMP()
	s := emp.Scheme()
	_, empVers := core.Pin(emp)
	for _, t := range empVers[0].Tuples() {
		fmt.Printf("  %-8s tuple ls %-14s", t.KeyValue("NAME"), t.Lifespan())
		for _, a := range s.Attrs {
			if !s.IsKey(a.Name) {
				fmt.Printf("  vls(%s)=%s", a.Name, t.VLS(s, a.Name))
			}
		}
		fmt.Println()
	}
}

// figure9 walks a value through the three levels: representation
// (sparse stored steps) → model (total function via interpolation) →
// physical (binary codec round trip).
func figure9() {
	section(9, "representation / model / physical levels")
	// Representation level: salary stored only at change points.
	repr := (&tfunc.Builder{}).
		SetAt(0, value.Int(30000)).
		SetAt(5, value.Int(34000)).
		Build()
	fmt.Println("representation level (stored):", repr)
	// Model level: the interpolation function I completes it.
	target := lifespan.Interval(0, 9)
	model, err := (tfunc.StepWise{}).Interpolate(repr, target)
	if err != nil {
		panic(err)
	}
	fmt.Println("model level (I applied)      :", model)
	// Physical level: encode/decode a relation holding the value.
	emp := demoEMP()
	blob, err := storage.EncodeBytes(emp)
	if err != nil {
		panic(err)
	}
	back, err := storage.DecodeBytes(blob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("physical level               : %d bytes on disk, lossless=%v\n", len(blob), back.Equal(emp))
}

// figure10 exercises the three dimensions with the three unary reducers.
func figure10() {
	section(10, "three dimensions: SELECT (value), PROJECT (attribute), TIME-SLICE (time)")
	emp := demoEMP()
	sel, _ := core.SelectIf(emp, core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(34000)}, core.Exists, lifespan.All())
	fmt.Printf("value dim:    σ-IF(SAL>=34000)  keeps %d of %d tuples\n", sel.Cardinality(), emp.Cardinality())
	proj, _ := core.Project(emp, "NAME", "SAL")
	fmt.Printf("attr dim:     π(NAME,SAL)       scheme %v → %v\n", emp.Scheme().AttrNames(), proj.Scheme().AttrNames())
	sliced, _ := core.TimesliceStatic(emp, lifespan.Interval(0, 4))
	fmt.Printf("time dim:     T_[0,4]            lifespan %s → %s\n", core.When(emp), core.When(sliced))
}

// figure11 contrasts plain union with the object-based merge union on
// split histories of the same objects.
func figure11() {
	section(11, "r1 ∪ r2 (counter-intuitive) vs r1 + r2 (object merge)")
	emp := demoEMP()
	r1, _ := core.TimesliceStatic(emp, lifespan.Interval(0, 8))
	r2, _ := core.TimesliceStatic(emp, lifespan.Interval(6, 19))
	fmt.Printf("r1 = T_[0,8](EMP): %d tuples, r2 = T_[6,19](EMP): %d tuples\n", r1.Cardinality(), r2.Cardinality())
	if _, err := core.Union(r1, r2); err != nil {
		fmt.Println("plain ∪ :", err)
	}
	merged, err := core.UnionMerge(r1, r2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("∪o      : %d tuples; restores EMP exactly: %v\n", merged.Cardinality(), merged.Equal(emp))
}

func demoEMP() *core.Relation {
	full := lifespan.Interval(0, 99)
	s := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(3, 19)).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(s, lifespan.MustParse("{[0,3],[8,14]}")).
		Key("NAME", value.String_("Ahmed")).
		Set("SAL", 0, 3, value.Int(30000)).
		Set("SAL", 8, 14, value.Int(31000)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Books")).
		MustBuild())
	return r
}

func demoDEPT() *core.Relation {
	full := lifespan.Interval(0, 99)
	s := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	for i, n := range []string{"Toys", "Shoes", "Books"} {
		r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, 19)).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 19, value.Int(int64(i+1))).
			MustBuild())
	}
	return r
}
