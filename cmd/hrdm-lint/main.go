// Command hrdm-lint is the repository's multichecker: it runs the
// custom invariant analyzers of internal/lint (snapshot pin
// discipline, lock ordering, span accounting, key encoding, metric
// naming) over the packages named on the command line, and optionally
// chains the standard `go vet` suite as an extended pass.
//
// Exit status follows the go/analysis multichecker convention:
//
//	0  no findings
//	1  findings reported
//	2  the checker itself failed (bad flags, unloadable packages)
//
// Usage:
//
//	hrdm-lint [-run name[,name...]] [-list] [-vet] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hrdm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	vet := fs.Bool("vet", false, "also run the standard `go vet` suite on the same patterns")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *runNames != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runNames, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "hrdm-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hrdm-lint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "hrdm-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}

	status := 0
	if len(diags) > 0 {
		status = 1
	}

	// The extended pass delegates to the toolchain's own vet suite
	// (the full standard analyzer set). The x/tools extras (nilness,
	// unusedwrite) need a module dependency this repository does not
	// take; docs/LINTING.md records that trade.
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); ok {
				if status == 0 {
					status = 1
				}
			} else {
				fmt.Fprintln(stderr, "hrdm-lint: go vet:", err)
				return 2
			}
		}
	}
	return status
}
