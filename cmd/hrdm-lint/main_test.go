package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles hrdm-lint once into a temp dir and returns the
// binary path plus the repository root.
func buildDriver(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "hrdm-lint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/hrdm-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building driver: %v\n%s", err, out)
	}
	return bin, root
}

// writeModule lays out a throwaway module that depends on repro via a
// local replace directive, so the driver's go-list loader resolves the
// engine's real packages without touching a network.
func writeModule(t *testing.T, root string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	// The module lives under the repro/ path prefix so Go's internal
	// visibility rule lets it import the engine's internal packages.
	gomod := fmt.Sprintf("module repro/lintfixture\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", root)
	files["go.mod"] = gomod
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runDriver(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("running driver: %v\n%s", err, out)
		}
	}
	return string(out), cmd.ProcessState.ExitCode()
}

// TestIntegrationFindings drives the built binary against a module
// containing one violation per line-pinned case and asserts the exit
// status and each diagnostic's position.
func TestIntegrationFindings(t *testing.T) {
	bin, root := buildDriver(t)
	dir := writeModule(t, root, map[string]string{
		"main.go": `package main

import (
	"strings"

	"repro/internal/obs"
)

var m = obs.Default.Counter("Not.A.Valid.Name.Either.Way")

func key(parts []string) string { return strings.Join(parts, "|") }

func main() {}
`,
	})

	out, code := runDriver(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("exit status = %d, want 1 (findings)\n%s", code, out)
	}
	for _, want := range []string{
		"main.go:9:29: metricname:",
		"main.go:11:42: rawkeyjoin:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestIntegrationClean asserts the zero-findings exit status on a
// compliant module, including an annotated exemption.
func TestIntegrationClean(t *testing.T) {
	bin, root := buildDriver(t)
	dir := writeModule(t, root, map[string]string{
		"main.go": `package main

import (
	"strings"

	"repro/internal/value"
)

func key(parts []string) string { return value.EncodeKey(parts) }

func display(parts []string) string {
	//lint:allow rawkeyjoin display-only rendering for a log line
	return strings.Join(parts, "|")
}

func main() {}
`,
	})

	out, code := runDriver(t, bin, dir, "./...")
	if code != 0 {
		t.Fatalf("exit status = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected no output, got:\n%s", out)
	}
}

// callRun invokes the driver entry point in-process, capturing its
// output through temp files (run writes to *os.File so main can hand
// it the real stdout/stderr).
func callRun(t *testing.T, args ...string) (string, int) {
	t.Helper()
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	stderr, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()
	code := run(args, stdout, stderr)
	outBytes, _ := os.ReadFile(stdout.Name())
	errBytes, _ := os.ReadFile(stderr.Name())
	return string(outBytes) + string(errBytes), code
}

// TestListFlag pins the -list output: every analyzer, with its doc line.
func TestListFlag(t *testing.T) {
	out, code := callRun(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d\n%s", code, out)
	}
	for _, name := range []string{"allow", "pindiscipline", "lockorder", "spanonce", "rawkeyjoin", "metricname"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestRunSubset runs a single analyzer over this package in-process;
// the driver's own source is clean, so the subset run reports nothing.
func TestRunSubset(t *testing.T) {
	out, code := callRun(t, "-run", "rawkeyjoin,metricname", ".")
	if code != 0 {
		t.Fatalf("subset run: exit %d\n%s", code, out)
	}
}

func TestUnknownAnalyzerFlag(t *testing.T) {
	if out, code := callRun(t, "-run", "nosuchanalyzer", "."); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2\n%s", code, out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, code := callRun(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestIntegrationBadFlag pins the checker-failure exit status.
func TestIntegrationBadFlag(t *testing.T) {
	bin, root := buildDriver(t)
	dir := writeModule(t, root, map[string]string{"main.go": "package main\n\nfunc main() {}\n"})

	if _, code := runDriver(t, bin, dir, "-run", "nosuchanalyzer", "./..."); code != 2 {
		t.Fatalf("unknown analyzer: exit status = %d, want 2", code)
	}
}
