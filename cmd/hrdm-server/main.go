// Command hrdm-server serves one historical database to many
// concurrent TCP clients with a line-oriented JSON protocol: one
// request object per line, one response per line (see docs/SERVER.md
// for the protocol spec, session semantics, error codes and drain
// behavior).
//
// Usage:
//
//	hrdm-server                          # demo database on 127.0.0.1:7373
//	hrdm-server -addr :0                 # ephemeral port (printed on stdout)
//	hrdm-server -open DIR                # durable write-ahead-logged store
//	hrdm-server -db path.hrdm            # store saved with the CLI's \save
//	hrdm-server -max-conns 64 -max-inflight 16 -query-deadline 30s
//
// Every connection gets its own session (snapshot-isolated reads, one
// staged write group, session-scoped optimizer toggle) over the shared
// store and plan cache. SIGTERM/SIGINT drains gracefully: accepting
// stops, in-flight queries finish within -drain-timeout, and a durable
// store is checkpointed before exit so restart replays an empty log.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7373", "listen address (use :0 for an ephemeral port)")
	dbPath := flag.String("db", "", "serve a saved store instead of the demo database")
	openDir := flag.String("open", "", "serve a durable (write-ahead-logged) store directory")
	maxConns := flag.Int("max-conns", 64, "max concurrent connections")
	maxInflight := flag.Int("max-inflight", 16, "max concurrently executing queries")
	queryDeadline := flag.Duration("query-deadline", 30*time.Second, "per-query deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight queries on shutdown")
	workers := flag.Int("workers", 0, "parallel degree for query execution (0 = number of CPUs)")
	flag.Parse()

	var st *storage.Store
	switch {
	case *openDir != "":
		opened, stats, err := storage.OpenDurable(*openDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-server:", err)
			os.Exit(1)
		}
		st = opened
		if stats.Recovered() {
			fmt.Printf("recovered: replayed %d write groups (%d tuples) past snapshot LSN %d; discarded %d torn log bytes\n",
				stats.ReplayedGroups, stats.ReplayedTuples, stats.SnapshotLSN, stats.TornBytes)
		}
	case *dbPath != "":
		loaded, err := storage.Load(*dbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrdm-server:", err)
			os.Exit(1)
		}
		st = loaded
	default:
		st = workload.Demo()
	}

	db := engine.OpenDBOptions(st, engine.DBOptions{Workers: *workers})
	srv := server.New(db, server.Config{
		Addr:          *addr,
		MaxConns:      *maxConns,
		MaxInflight:   *maxInflight,
		QueryDeadline: *queryDeadline,
		DrainTimeout:  *drainTimeout,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "hrdm-server:", err)
		os.Exit(1)
	}
	// The listening line is machine-read by smoke scripts (and humans);
	// keep the "listening on " prefix stable.
	fmt.Printf("listening on %s (%d relations, max-conns=%d, max-inflight=%d)\n",
		srv.Addr(), len(st.Names()), *maxConns, *maxInflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("received %s, draining\n", got)
	if err := srv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "hrdm-server: drain:", err)
		db.Close()
		os.Exit(1)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hrdm-server: close:", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
