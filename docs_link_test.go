package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRe matches inline markdown links [text](target).
var mdLinkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies that every relative link in the
// repository's documentation — README.md, ROADMAP.md and docs/ —
// points at a file that exists, so a rename or deletion cannot
// silently orphan the docs. External (scheme-qualified) links and
// pure in-page anchors are skipped; a `#fragment` suffix on a
// relative link is stripped before the existence check. CI runs this
// as its docs step.
func TestMarkdownLinks(t *testing.T) {
	var files []string
	for _, f := range []string{"README.md", "ROADMAP.md"} {
		if _, err := os.Stat(f); err == nil {
			files = append(files, f)
		}
	}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("documentation set looks incomplete: %v", files)
	}

	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; existence is not checkable offline
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page anchor
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}
