// Enrollment: the paper's referential-integrity motivation — "a student
// can only take a course at time t if both the student and the course
// exist in the database at time t" — plus NATURAL-JOIN across three
// historical relations and temporal FD checking.
package main

import (
	"fmt"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	students, courses, enrolls := workload.Enrollment(workload.DefaultEnrollment())
	fmt.Printf("STUDENT: %d, COURSE: %d, ENROLL: %d\n\n",
		students.Cardinality(), courses.Cardinality(), enrolls.Cardinality())

	// Temporal referential integrity: every enrollment's lifespan lies
	// inside both its student's and its course's lifespans.
	v1 := constraint.CheckRefIntegrity(enrolls, students,
		constraint.RefIntegrity{ChildAttrs: []string{"SNAME"}, ParentKey: []string{"SNAME"}})
	v2 := constraint.CheckRefIntegrity(enrolls, courses,
		constraint.RefIntegrity{ChildAttrs: []string{"CNAME"}, ParentKey: []string{"CNAME"}})
	fmt.Printf("referential-integrity violations: students=%d courses=%d\n\n", len(v1), len(v2))

	// Break it deliberately: extend one enrollment past its course's
	// death and watch the checker catch it.
	broken := core.NewRelation(enrolls.Scheme())
	first := enrolls.Tuples()[0]
	courseKey := first.KeyValue("CNAME")
	course, _ := courses.Lookup(courseKey.String())
	beyond := course.Lifespan().Max() + 10
	bad := core.NewTupleBuilder(enrolls.Scheme(),
		first.Lifespan().Union(lifespan.Interval(beyond, beyond+5))).
		Key("SNAME", first.KeyValue("SNAME")).
		Key("CNAME", courseKey).
		MustBuild()
	broken.MustInsert(bad)
	v3 := constraint.CheckRefIntegrity(broken, courses,
		constraint.RefIntegrity{ChildAttrs: []string{"CNAME"}, ParentKey: []string{"CNAME"}})
	fmt.Printf("after extending one enrollment beyond the course's life: %d violation(s)\n", len(v3))
	if len(v3) > 0 {
		fmt.Println("  ", clip(v3[0].String(), 100))
	}
	fmt.Println()

	// NATURAL-JOIN chains: ENROLL ⋈ STUDENT joins each enrollment with
	// its student's history over the times both exist (shared SNAME), and
	// a second join adds the course.
	es, err := core.NaturalJoin(enrolls, students)
	must(err)
	esc, err := core.NaturalJoin(es, courses)
	must(err)
	fmt.Printf("ENROLL ⋈ STUDENT ⋈ COURSE: %d joined histories; e.g.:\n", esc.Cardinality())
	for i, t := range esc.Tuples() {
		if i == 3 {
			break
		}
		major, _ := t.At("MAJOR", t.Lifespan().Min())
		room, _ := t.At("ROOM", t.Lifespan().Min())
		fmt.Printf("  %s (%s major) took %s in room %s during %s\n",
			t.KeyValue("SNAME"), major, t.KeyValue("CNAME"), room, clip(t.Lifespan().String(), 40))
	}
	fmt.Println()

	// Intra-state temporal FD on the join: at any single time, a course
	// name determines its room.
	viol := constraint.CheckIntraStateFD(esc, constraint.FD{X: []string{"CNAME"}, Y: []string{"ROOM"}})
	fmt.Printf("intra-state FD CNAME → ROOM on the join: %d violations\n", len(viol))

	// WHEN: over which periods was anyone enrolled in anything?
	fmt.Printf("Ω(ENROLL) = %s\n", clip(core.When(enrolls).String(), 80))

	// Who was enrolled while majoring in IS? SELECT-WHEN on the join.
	is, err := core.SelectWhen(esc,
		core.Predicate{Attr: "MAJOR", Theta: value.EQ, Const: value.String_("IS")},
		lifespan.All())
	must(err)
	fmt.Printf("enrollments while majoring in IS: %d\n\n", is.Cardinality())

	// Dependency theory (the §5 normalization program): mine the FDs the
	// course history satisfies under each temporal reading. Rooms move
	// between offerings, so CNAME → ROOM holds at every single instant
	// (intra-state) but not across all of time (trans-state) — the
	// distinction Section 5 motivates.
	intra := constraint.MineFDs(courses, 1, constraint.IntraState)
	trans := constraint.MineFDs(courses, 1, constraint.TransState)
	fmt.Printf("mined intra-state FDs over COURSE:\n%s\n", indent(constraint.FDString(intra)))
	fmt.Printf("CNAME→ROOM holds trans-state too? %v\n",
		constraint.Implies(trans, constraint.FD{X: []string{"CNAME"}, Y: []string{"ROOM"}}))
	keys := constraint.CandidateKeys(courses.Scheme().AttrNames(), intra)
	fmt.Printf("candidate keys of COURSE under the intra-state FDs: %v\n", keys)
	if v := constraint.BCNFViolations(courses.Scheme().AttrNames(), intra); len(v) == 0 {
		fmt.Println("COURSE is in BCNF under the mined dependencies")
	} else {
		fmt.Printf("BCNF violations: %v\n", v)
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
