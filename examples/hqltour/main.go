// HQL tour: every operator of the historical algebra exercised through
// the textual query language, against an in-memory personnel database.
// Run it to see the full surface of the language in one sitting.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func main() {
	st := buildStore()
	queries := []struct {
		caption string
		q       string
	}{
		{"the paper's signature query (composed σ-WHEN)",
			`SELECT WHEN SAL = 30000 FROM (SELECT WHEN NAME = "John" FROM EMP)`},
		{"SELECT-IF with universal quantification over a scoped lifespan",
			`SELECT IF SAL >= 31000 FORALL DURING {[5,9]} FROM EMP`},
		{"PROJECT along the attribute dimension",
			`PROJECT NAME, DEPT FROM EMP`},
		{"static TIME-SLICE with lifespan set algebra in the parameter",
			`TIMESLICE EMP AT {[0,9]} MINUS {[3,7]}`},
		{"WHEN as a first-class lifespan result",
			`WHEN (SELECT WHEN SAL >= 34000 FROM EMP)`},
		{"WHEN feeding TIME-SLICE (the §4.5 composition)",
			`TIMESLICE EMP AT WHEN (SELECT WHEN SAL >= 34000 FROM EMP)`},
		{"equijoin over histories",
			`EMP JOIN DEPTREL ON DEPT = DNAME`},
		{"outer (union-lifespan) join — §5's null-bearing variant",
			`EMP OUTERJOIN DEPTREL ON DEPT = DNAME`},
		{"self θ-join via RENAME: who out-earned whom, when",
			`EMP JOIN (RENAME EMP AS b) ON SAL > b.SAL`},
		{"dynamic TIME-SLICE over a time-valued attribute",
			`TIMESLICE SHIP BY SHIPDATE`},
		{"TIME-JOIN: shipments with the departments current at ship time",
			`SHIP TIMEJOIN DEPTREL ON SHIPDATE`},
		{"object-based set algebra: reassemble split histories",
			`(TIMESLICE EMP AT {[0,8]}) UNIONMERGE (TIMESLICE EMP AT {[6,19]})`},
		{"object-based difference: Mary's post-[0,9] history",
			`EMP MINUSMERGE (TIMESLICE EMP AT {[0,9]})`},
		{"MATERIALIZE: apply interpolators (identity on total data)",
			`MATERIALIZE EMP`},
		{"SNAPSHOT: the classical relation at time 7",
			`SNAPSHOT EMP AT 7`},
	}
	for i, qc := range queries {
		fmt.Printf("-- %d. %s\nhrdm> %s\n", i+1, qc.caption, qc.q)
		res, err := hql.Run(qc.q, st)
		if err != nil {
			panic(fmt.Sprintf("query %d failed: %v", i+1, err))
		}
		out := res.String()
		if lines := strings.Split(out, "\n"); len(lines) > 6 {
			out = strings.Join(lines[:6], "\n") + "\n  …"
		}
		fmt.Println(out)
		fmt.Println()
	}
}

func buildStore() *storage.Store {
	full := lifespan.Interval(0, 99)
	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	emp := core.NewRelation(es)
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(0, 9)).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(3, 19)).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, lifespan.MustParse("{[0,3],[8,14]}")).
		Key("NAME", value.String_("Ahmed")).
		Set("SAL", 0, 3, value.Int(30000)).
		Set("SAL", 8, 14, value.Int(31000)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Books")).
		MustBuild())

	ds := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	dept := core.NewRelation(ds)
	for i, n := range []string{"Toys", "Shoes", "Books"} {
		dept.MustInsert(core.NewTupleBuilder(ds, lifespan.Interval(0, 19)).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 19, value.Int(int64(i+1))).
			MustBuild())
	}

	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := core.NewRelation(ss)
	ship.MustInsert(core.NewTupleBuilder(ss, lifespan.Interval(0, 19)).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 9, value.TimeVal(7)).
		Set("SHIPDATE", 10, 19, value.TimeVal(12)).
		MustBuild())

	st := storage.NewStore()
	st.Put(emp)
	st.Put(dept)
	st.Put(ship)
	return st
}
