// Personnel: the paper's Section 1 motivations end to end —
// reincarnation (hire/fire/rehire), the SELECT-IF vs SELECT-WHEN
// distinction, the Figure 11 union-vs-merge contrast, the dynamic
// "salary never decreases" constraint, and a θ-join over histories.
package main

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	// A generated 200-chronon company history: ~50 employees, 30% of
	// whom are fired and later re-hired (gapped lifespans).
	emp := workload.Personnel(workload.DefaultPersonnel())
	fmt.Printf("EMP: %d employees over %s\n", emp.Cardinality(), core.When(emp))

	// Reincarnation: employees whose lifespan has more than one interval.
	rehired := 0
	for _, t := range emp.Tuples() {
		if t.Lifespan().NumIntervals() > 1 {
			rehired++
		}
	}
	fmt.Printf("re-hired employees (gapped lifespans): %d\n\n", rehired)

	// SELECT-IF vs SELECT-WHEN on the same predicate.
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	ifSel, err := core.SelectIf(emp, p, core.Exists, lifespan.All())
	must(err)
	whenSel, err := core.SelectWhen(emp, p, lifespan.All())
	must(err)
	fmt.Printf("σ-IF(SAL>=40000, ∃): %d whole tuples (lifespans unchanged)\n", ifSel.Cardinality())
	fmt.Printf("σ-WHEN(SAL>=40000): %d tuples restricted to matching times; Ω = %s\n\n",
		whenSel.Cardinality(), clip(core.When(whenSel).String(), 60))

	// Figure 11: split the history, then reassemble. Plain union refuses
	// (duplicate objects); merge-union restores the original.
	early, err := core.TimesliceStatic(emp, lifespan.Interval(0, 120))
	must(err)
	late, err := core.TimesliceStatic(emp, lifespan.Interval(80, 199))
	must(err)
	if _, err := core.Union(early, late); err != nil {
		fmt.Println("plain ∪ on split histories:", clip(err.Error(), 70))
	}
	merged, err := core.UnionMerge(early, late)
	must(err)
	fmt.Printf("∪o reassembles the history exactly: %v\n\n", merged.Equal(emp))

	// Dynamic constraint: does any generated employee's salary decrease?
	// (The generator only raises salaries, so the company is compliant.)
	violations := constraint.CheckMonotone(emp, "SAL", constraint.NonDecreasing)
	fmt.Printf("'salary never decreases' violations: %d\n\n", len(violations))

	// θ-join: who out-earned whom, and when? Self-join via rename.
	other, err := emp.Rename("b")
	must(err)
	richer, err := core.ThetaJoin(emp, other, "SAL", value.GT, "b.SAL")
	must(err)
	fmt.Printf("θ-join SAL > b.SAL: %d (a,b,period) facts; e.g.:\n", richer.Cardinality())
	for i, t := range richer.Tuples() {
		if i == 3 {
			break
		}
		fmt.Printf("  %s out-earned %s during %s\n",
			t.KeyValue("NAME"), t.KeyValue("b.NAME"), clip(t.Lifespan().String(), 50))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
