// Quickstart: build the paper's personnel history and run its signature
// query — σ-WHEN(NAME=John ∧ SAL=30K)(emp), "a relation (in this case
// with only 1 tuple, for key John) with a new lifespan, namely, just
// those times when John earned 30K".
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func main() {
	// 1. Declare the relation scheme R = <A, K, ALS, DOM>: attributes
	//    with value domains and attribute lifespans, plus the key.
	full := lifespan.Interval(0, 99)
	emp := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)

	// 2. Build historical tuples t = ⟨v, l⟩: a lifespan plus temporal
	//    functions for each attribute. John works [0,9] and got a raise
	//    at time 5.
	r := core.NewRelation(emp)
	r.MustInsert(core.NewTupleBuilder(emp, lifespan.Interval(0, 9)).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(emp, lifespan.Interval(3, 19)).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 19, value.String_("Shoes")).
		MustBuild())

	fmt.Println("EMP relation:")
	fmt.Println(r)

	// 3. The paper's query: first restrict to John, then to the times he
	//    earned 30000. SELECT-WHEN shrinks the lifespan to exactly the
	//    matching chronons.
	johns, err := core.SelectWhen(r,
		core.Predicate{Attr: "NAME", Theta: value.EQ, Const: value.String_("John")},
		lifespan.All())
	if err != nil {
		panic(err)
	}
	at30k, err := core.SelectWhen(johns,
		core.Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)},
		lifespan.All())
	if err != nil {
		panic(err)
	}
	fmt.Println("\nσ-WHEN(NAME=John, SAL=30K):")
	fmt.Println(at30k)

	// 4. WHEN extracts the purely temporal answer — a lifespan, usable as
	//    the parameter of TIME-SLICE.
	when := core.When(at30k)
	fmt.Println("\nWHEN did John earn 30K?", when)

	sliced, err := core.TimesliceStatic(r, when)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nThe whole database during those times, T_Ω(r):")
	fmt.Println(sliced)
}
