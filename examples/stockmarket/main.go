// Stockmarket: the paper's Figure 6 domain — an evolving schema whose
// DAILY-TRADING-VOLUME attribute was dropped and later re-added — plus
// interpolation between sampled prices, dynamic TIME-SLICE, and
// TIME-JOIN over a time-valued (TT) attribute.
package main

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultStock()
	stock := workload.Stock(cfg)
	s := stock.Scheme()

	// Figure 6: the VOLUME attribute's lifespan has a gap where the data
	// was too expensive to collect.
	fmt.Println("STOCK scheme:", s)
	fmt.Println("ALS(VOLUME) =", s.ALS("VOLUME"), "— the Figure 6 gap")

	// Snapshots inside and outside the gap differ in schema: VOLUME
	// disappears from the relation scheme mid-history.
	mid := chronon.Time(float64(cfg.HistoryLen) * (cfg.VolumeGapLo + cfg.VolumeGapHi) / 2)
	snapIn, err := core.Snapshot(stock, 5)
	must(err)
	snapGap, err := core.Snapshot(stock, mid)
	must(err)
	fmt.Printf("snapshot@5 attributes:  %v\n", snapIn.Scheme().Attrs)
	fmt.Printf("snapshot@%d attributes: %v (VOLUME gone)\n\n", mid, snapGap.Scheme().Attrs)

	// Interpolation: PRICE is stored as a step function at the
	// representation level; the linear interpolator I produces the model-
	// level total function (Figure 9).
	tick := stock.Tuples()[0]
	price := tick.Value("PRICE")
	sparse := sampleEvery(price, 10)
	full, err := (tfunc.Linear{}).Interpolate(sparse, tick.Lifespan())
	must(err)
	fmt.Printf("PRICE of %s: stored %d steps; sampled down to %d; I rebuilds a total function on %d chronons\n\n",
		tick.KeyValue("TICKER"), price.NumSteps(), sparse.NumSteps(), full.Domain().Duration())

	// Dynamic TIME-SLICE: restrict each stock to its own ex-dividend
	// dates — the slicing lifespan comes from the tuple itself.
	exdiv, err := core.TimesliceDynamic(stock, "EX_DIV")
	must(err)
	fmt.Printf("T@EX_DIV: %d stocks restricted to their ex-dividend dates; e.g. %s on %s\n\n",
		exdiv.Cardinality(),
		exdiv.Tuples()[0].KeyValue("TICKER"), exdiv.Tuples()[0].Lifespan())

	// TIME-JOIN: pair each stock with the market-regime relation current
	// at its ex-dividend dates.
	regime := regimeRelation(cfg.HistoryLen)
	joined, err := core.TimeJoin(stock, regime, "EX_DIV")
	must(err)
	fmt.Printf("STOCK [@EX_DIV] REGIME: %d (stock, regime) facts; e.g.:\n", joined.Cardinality())
	for i, t := range joined.Tuples() {
		if i == 3 {
			break
		}
		fmt.Printf("  %s went ex-dividend under the %s regime at %s\n",
			t.KeyValue("TICKER"), t.KeyValue("ERA"), t.Lifespan())
	}
}

// sampleEvery keeps one stored point per k chronons — simulating a
// representation-level ellipsis that interpolation must fill.
func sampleEvery(f tfunc.Func, k int) tfunc.Func {
	var b tfunc.Builder
	i := 0
	f.Steps(func(iv chronon.Interval, v value.Value) bool {
		if i%k == 0 {
			b.SetAt(iv.Lo, v)
		}
		i++
		return true
	})
	return b.Build()
}

// regimeRelation labels market eras: BULL then BEAR then BULL again.
func regimeRelation(historyLen int) *core.Relation {
	end := chronon.Time(historyLen - 1)
	full := lifespan.Interval(0, end)
	s := schema.MustNew("REGIME", []string{"ERA"},
		schema.Attribute{Name: "ERA", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "RATE", Domain: value.Floats, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	third := end / 3
	r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, third)).
		Key("ERA", value.String_("bull-1")).
		SetConst("RATE", value.Float(0.02)).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(third+1, 2*third)).
		Key("ERA", value.String_("bear")).
		SetConst("RATE", value.Float(0.07)).
		MustBuild())
	r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(2*third+1, end)).
		Key("ERA", value.String_("bull-2")).
		SetConst("RATE", value.Float(0.03)).
		MustBuild())
	return r
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
