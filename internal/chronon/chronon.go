package chronon

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is a single point of the time domain T. The order <_T is the
// ordinary integer order: ti <_T tj iff i < j, exactly as the paper
// assumes "for the sake of clarity".
type Time int64

// Distinguished time points.
//
// The paper's examples use a distinguished time "now" (Figure 6) and the
// reduction argument of Section 5 sets T = {now}. Min and Max bound the
// finite universe used by complement operations; they play the role of the
// conceptual -infinity/+infinity of a countable T in a finite machine.
const (
	Min Time = -1 << 62
	Max Time = 1<<62 - 1
)

// Now is the distinguished current time used by examples and by the
// snapshot-reduction theorem of Section 5 (T = {now}). It is a variable so
// tests can pin it.
var Now Time = 0

// Before reports t <_T u.
func (t Time) Before(u Time) bool { return t < u }

// After reports u <_T t.
func (t Time) After(u Time) bool { return t > u }

// Next returns the successor time point. T is isomorphic to the natural
// numbers, so every point has a discrete successor.
func (t Time) Next() Time {
	if t == Max {
		return Max
	}
	return t + 1
}

// Prev returns the predecessor time point.
func (t Time) Prev() Time {
	if t == Min {
		return Min
	}
	return t - 1
}

// String renders the time point. Min and Max render as -inf / +inf for
// readability in dumps of complemented lifespans.
func (t Time) String() string {
	switch t {
	case Min:
		return "-inf"
	case Max:
		return "+inf"
	}
	return strconv.FormatInt(int64(t), 10)
}

// ParseTime parses a time point as printed by Time.String.
func ParseTime(s string) (Time, error) {
	switch strings.TrimSpace(s) {
	case "-inf":
		return Min, nil
	case "+inf", "inf":
		return Max, nil
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("chronon: parse time %q: %w", s, err)
	}
	return Time(v), nil
}

// Interval is a closed interval [Lo,Hi] of T: the set {t | Lo <= t <= Hi}.
// An interval with Lo > Hi is empty; the canonical empty interval is
// returned by EmptyInterval.
type Interval struct {
	Lo, Hi Time
}

// EmptyInterval returns the canonical empty interval.
func EmptyInterval() Interval { return Interval{Lo: 1, Hi: 0} }

// NewInterval returns the closed interval [lo,hi]. If lo > hi the result
// is the canonical empty interval.
func NewInterval(lo, hi Time) Interval {
	if lo > hi {
		return EmptyInterval()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Point returns the singleton interval [t,t].
func Point(t Time) Interval { return Interval{Lo: t, Hi: t} }

// IsEmpty reports whether the interval denotes the empty set.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Contains reports whether t is a member of the interval.
func (iv Interval) Contains(t Time) bool { return iv.Lo <= t && t <= iv.Hi }

// Duration returns the number of chronons in the interval. The count
// saturates at the maximum int64 for intervals touching Min/Max.
func (iv Interval) Duration() int64 {
	if iv.IsEmpty() {
		return 0
	}
	d := uint64(iv.Hi) - uint64(iv.Lo) + 1
	if int64(d) < 0 {
		return 1<<63 - 1
	}
	return int64(d)
}

// Intersect returns the interval intersection iv ∩ ov.
func (iv Interval) Intersect(ov Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if ov.Lo > lo {
		lo = ov.Lo
	}
	if ov.Hi < hi {
		hi = ov.Hi
	}
	return NewInterval(lo, hi)
}

// Overlaps reports whether the two intervals share at least one chronon.
func (iv Interval) Overlaps(ov Interval) bool {
	return !iv.Intersect(ov).IsEmpty()
}

// Adjacent reports whether the two intervals are disjoint but abut, so
// that their union is a single interval (e.g. [1,3] and [4,7]).
func (iv Interval) Adjacent(ov Interval) bool {
	if iv.IsEmpty() || ov.IsEmpty() {
		return false
	}
	return (iv.Hi != Max && iv.Hi.Next() == ov.Lo) ||
		(ov.Hi != Max && ov.Hi.Next() == iv.Lo)
}

// Equal reports set equality of the two intervals.
func (iv Interval) Equal(ov Interval) bool {
	if iv.IsEmpty() || ov.IsEmpty() {
		return iv.IsEmpty() && ov.IsEmpty()
	}
	return iv.Lo == ov.Lo && iv.Hi == ov.Hi
}

// String renders the interval in the paper's closed-interval notation
// [lo,hi]; singletons render as the bare time point.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[]"
	}
	if iv.Lo == iv.Hi {
		return iv.Lo.String()
	}
	return fmt.Sprintf("[%s,%s]", iv.Lo, iv.Hi)
}

// ParseInterval parses "[lo,hi]", "[lo..hi]" or a bare point "t".
func ParseInterval(s string) (Interval, error) {
	s = strings.TrimSpace(s)
	if s == "[]" {
		return EmptyInterval(), nil
	}
	if !strings.HasPrefix(s, "[") {
		t, err := ParseTime(s)
		if err != nil {
			return Interval{}, err
		}
		return Point(t), nil
	}
	if !strings.HasSuffix(s, "]") {
		return Interval{}, fmt.Errorf("chronon: parse interval %q: missing ']'", s)
	}
	body := s[1 : len(s)-1]
	var parts []string
	switch {
	case strings.Contains(body, ".."):
		parts = strings.SplitN(body, "..", 2)
	case strings.Contains(body, ","):
		parts = strings.SplitN(body, ",", 2)
	default:
		return Interval{}, fmt.Errorf("chronon: parse interval %q: want [lo,hi]", s)
	}
	lo, err := ParseTime(parts[0])
	if err != nil {
		return Interval{}, err
	}
	hi, err := ParseTime(parts[1])
	if err != nil {
		return Interval{}, err
	}
	if lo > hi {
		return Interval{}, fmt.Errorf("chronon: parse interval %q: lo > hi", s)
	}
	return NewInterval(lo, hi), nil
}
