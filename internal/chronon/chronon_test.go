package chronon

import (
	"testing"
	"testing/quick"
)

func TestTimeOrder(t *testing.T) {
	if !Time(1).Before(2) {
		t.Error("1 should be before 2")
	}
	if Time(2).Before(1) {
		t.Error("2 should not be before 1")
	}
	if !Time(5).After(3) {
		t.Error("5 should be after 3")
	}
	if Time(3).Before(3) || Time(3).After(3) {
		t.Error("a time is neither before nor after itself")
	}
}

func TestNextPrev(t *testing.T) {
	if Time(4).Next() != 5 {
		t.Errorf("Next(4) = %v", Time(4).Next())
	}
	if Time(4).Prev() != 3 {
		t.Errorf("Prev(4) = %v", Time(4).Prev())
	}
	if Max.Next() != Max {
		t.Error("Next saturates at Max")
	}
	if Min.Prev() != Min {
		t.Error("Prev saturates at Min")
	}
}

func TestTimeStringParse(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0"}, {42, "42"}, {-7, "-7"}, {Min, "-inf"}, {Max, "+inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
		back, err := ParseTime(c.want)
		if err != nil {
			t.Fatalf("ParseTime(%q): %v", c.want, err)
		}
		if back != c.in {
			t.Errorf("ParseTime(%q) = %v, want %v", c.want, back, c.in)
		}
	}
	if _, err := ParseTime("xyz"); err == nil {
		t.Error("ParseTime should reject garbage")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(3, 7)
	if iv.IsEmpty() {
		t.Fatal("[3,7] is not empty")
	}
	if iv.Duration() != 5 {
		t.Errorf("Duration([3,7]) = %d, want 5", iv.Duration())
	}
	for _, in := range []Time{3, 4, 5, 6, 7} {
		if !iv.Contains(in) {
			t.Errorf("[3,7] should contain %v", in)
		}
	}
	for _, out := range []Time{2, 8, -1, 100} {
		if iv.Contains(out) {
			t.Errorf("[3,7] should not contain %v", out)
		}
	}
	if !NewInterval(5, 2).IsEmpty() {
		t.Error("inverted bounds give the empty interval")
	}
	if EmptyInterval().Duration() != 0 {
		t.Error("empty interval has zero duration")
	}
	if !Point(9).Equal(NewInterval(9, 9)) {
		t.Error("Point(9) == [9,9]")
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{NewInterval(1, 5), NewInterval(3, 9), NewInterval(3, 5)},
		{NewInterval(1, 5), NewInterval(5, 9), Point(5)},
		{NewInterval(1, 5), NewInterval(6, 9), EmptyInterval()},
		{NewInterval(1, 9), NewInterval(3, 4), NewInterval(3, 4)},
		{EmptyInterval(), NewInterval(3, 4), EmptyInterval()},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); !got.Equal(c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersect(c.a); !got.Equal(c.want) {
			t.Errorf("intersection must commute: %v ∩ %v = %v, want %v", c.b, c.a, got, c.want)
		}
		if c.a.Overlaps(c.b) != !c.want.IsEmpty() {
			t.Errorf("Overlaps(%v,%v) inconsistent with intersection", c.a, c.b)
		}
	}
}

func TestIntervalAdjacent(t *testing.T) {
	if !NewInterval(1, 3).Adjacent(NewInterval(4, 7)) {
		t.Error("[1,3] adjacent [4,7]")
	}
	if !NewInterval(4, 7).Adjacent(NewInterval(1, 3)) {
		t.Error("adjacency is symmetric")
	}
	if NewInterval(1, 3).Adjacent(NewInterval(5, 7)) {
		t.Error("[1,3] not adjacent [5,7]")
	}
	if NewInterval(1, 3).Adjacent(NewInterval(3, 7)) {
		t.Error("overlapping intervals are not adjacent")
	}
	if EmptyInterval().Adjacent(NewInterval(1, 2)) {
		t.Error("empty interval is adjacent to nothing")
	}
}

func TestIntervalStringParse(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{NewInterval(1, 5), "[1,5]"},
		{Point(7), "7"},
		{EmptyInterval(), "[]"},
		{NewInterval(Min, 3), "[-inf,3]"},
		{NewInterval(3, Max), "[3,+inf]"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.iv, got, c.want)
		}
		back, err := ParseInterval(c.want)
		if err != nil {
			t.Fatalf("ParseInterval(%q): %v", c.want, err)
		}
		if !back.Equal(c.iv) {
			t.Errorf("ParseInterval(%q) = %v, want %v", c.want, back, c.iv)
		}
	}
	// The two-dot form is accepted as well.
	iv, err := ParseInterval("[2..9]")
	if err != nil || !iv.Equal(NewInterval(2, 9)) {
		t.Errorf("ParseInterval([2..9]) = %v, %v", iv, err)
	}
	for _, bad := range []string{"[1,", "[a,b]", "[5]", "[9,2]"} {
		if _, err := ParseInterval(bad); err == nil {
			t.Errorf("ParseInterval(%q) should fail", bad)
		}
	}
}

func TestIntersectProperties(t *testing.T) {
	// Intersection is commutative, associative, and idempotent for any
	// (possibly empty) operands.
	mk := func(a, b int16) Interval { return NewInterval(Time(a), Time(b)) }
	comm := func(a1, a2, b1, b2 int16) bool {
		x, y := mk(a1, a2), mk(b1, b2)
		return x.Intersect(y).Equal(y.Intersect(x))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a1, a2, b1, b2, c1, c2 int16) bool {
		x, y, z := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		return x.Intersect(y).Intersect(z).Equal(x.Intersect(y.Intersect(z)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	idem := func(a1, a2 int16) bool {
		x := mk(a1, a2)
		return x.Intersect(x).Equal(x)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationSaturates(t *testing.T) {
	full := NewInterval(Min, Max)
	if full.Duration() != 1<<63-1 {
		t.Errorf("full-universe duration should saturate, got %d", full.Duration())
	}
}
