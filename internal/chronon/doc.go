// Package chronon implements the time domain T of the Historical
// Relational Data Model (HRDM).
//
// The paper defines T = {..., t0, t1, ...} as an at most countably
// infinite set of times with a linear (total) order <_T, and states that
// "the reader can assume that T is isomorphic to the natural numbers".
// We therefore model a time point (a chronon) as an int64 and closed
// intervals [t1,t2] as the set {t | t1 <= t <= t2}.
package chronon
