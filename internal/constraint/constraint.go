package constraint

import (
	"fmt"
	"strings"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/value"
)

// Violation describes one constraint violation; Check functions return
// all violations rather than stopping at the first, so loaders can report
// comprehensively.
type Violation struct {
	Constraint string
	Detail     string
}

// String renders the violation.
func (v Violation) String() string { return v.Constraint + ": " + v.Detail }

// CheckKey re-verifies the historical key condition of Section 3 on a
// relation built through unchecked channels (e.g. decoded from disk):
// distinct tuples never share key values at any pair of times, and keys
// are constant over their vls.
func CheckKey(r *core.Relation) []Violation {
	var out []Violation
	seen := make(map[string]bool)
	for _, t := range r.Tuples() {
		parts := make([]string, len(r.Scheme().Key))
		for i, k := range r.Scheme().Key {
			kv := t.KeyValue(k)
			if !kv.IsValid() {
				out = append(out, Violation{
					Constraint: "key",
					Detail:     fmt.Sprintf("tuple with lifespan %v: key attribute %s is not a constant function", t.Lifespan(), k),
				})
				continue
			}
			parts[i] = kv.String()
		}
		ks := value.EncodeKey(parts)
		if seen[ks] {
			out = append(out, Violation{Constraint: "key", Detail: "duplicate key " + ks})
		}
		seen[ks] = true
	}
	return out
}

// FD is a temporal functional dependency X → Y over a relation.
type FD struct {
	X, Y []string
}

// String renders the dependency.
func (fd FD) String() string {
	return strings.Join(fd.X, ",") + " -> " + strings.Join(fd.Y, ",")
}

// CheckIntraStateFD verifies that the FD holds at each single point in
// time: for every time s, the snapshot of r at s satisfies X → Y
// classically. This is the direct temporal lifting of the classical FD
// ("the 'meaning' of the traditional FD X → A can be captured ... in a
// straightforward way").
func CheckIntraStateFD(r *core.Relation, fd FD) []Violation {
	var out []Violation
	core.When(r).Each(func(s chronon.Time) bool {
		index := make(map[string]string)
		for _, t := range r.Tuples() {
			xs, ok := valuesAt(t, fd.X, s)
			if !ok {
				continue
			}
			ys, ok := valuesAt(t, fd.Y, s)
			if !ok {
				continue
			}
			if prev, dup := index[xs]; dup && prev != ys {
				out = append(out, Violation{
					Constraint: "fd " + fd.String(),
					Detail:     fmt.Sprintf("at time %v: X=%s maps to both %s and %s", s, xs, prev, ys),
				})
			}
			index[xs] = ys
		}
		return true
	})
	return out
}

// CheckTransStateFD verifies the stronger trans-state dependency: one
// X-value determines one Y-value across ALL points in time (not merely
// within each time point). E.g. "an employee's department determines the
// floor, and floors never move" would be trans-state; the intra-state
// version allows the floor to differ between times.
func CheckTransStateFD(r *core.Relation, fd FD) []Violation {
	var out []Violation
	index := make(map[string]string)
	when := make(map[string]chronon.Time)
	core.When(r).Each(func(s chronon.Time) bool {
		for _, t := range r.Tuples() {
			xs, ok := valuesAt(t, fd.X, s)
			if !ok {
				continue
			}
			ys, ok := valuesAt(t, fd.Y, s)
			if !ok {
				continue
			}
			if prev, dup := index[xs]; dup && prev != ys {
				out = append(out, Violation{
					Constraint: "trans-fd " + fd.String(),
					Detail: fmt.Sprintf("X=%s maps to %s at time %v but %s at time %v",
						xs, prev, when[xs], ys, s),
				})
			} else {
				index[xs] = ys
				when[xs] = s
			}
		}
		return true
	})
	return out
}

func valuesAt(t *core.Tuple, attrs []string, s chronon.Time) (string, bool) {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		v, ok := t.At(a, s)
		if !ok {
			return "", false
		}
		parts[i] = v.String()
	}
	return value.EncodeKey(parts), true
}

// Monotone direction for dynamic constraints.
type Monotone uint8

const (
	// NonDecreasing forbids any later value below an earlier one.
	NonDecreasing Monotone = iota
	// NonIncreasing forbids any later value above an earlier one.
	NonIncreasing
)

// CheckMonotone verifies a dynamic constraint on how an attribute's value
// changes over each tuple's lifespan — the paper's "salary must never
// decrease" example is CheckMonotone(r, "SAL", NonDecreasing). The
// constraint applies within each object's history (across lifespan gaps
// too: a re-hired employee may not return at a lower salary under
// NonDecreasing).
func CheckMonotone(r *core.Relation, attr string, dir Monotone) []Violation {
	var out []Violation
	for _, t := range r.Tuples() {
		var prev value.Value
		var prevAt chronon.Time
		first := true
		bad := false
		t.Value(attr).Steps(func(iv chronon.Interval, v value.Value) bool {
			if !first && !bad {
				c, err := v.Compare(prev)
				if err != nil {
					out = append(out, Violation{
						Constraint: "monotone " + attr,
						Detail:     fmt.Sprintf("incomparable values: %v", err),
					})
					bad = true
					return false
				}
				if (dir == NonDecreasing && c < 0) || (dir == NonIncreasing && c > 0) {
					out = append(out, Violation{
						Constraint: "monotone " + attr,
						Detail: fmt.Sprintf("key %s: value %s at %v regresses from %s at %v",
							keyOf(r, t), v, iv.Lo, prev, prevAt),
					})
					bad = true
					return false
				}
			}
			first = false
			prev, prevAt = v, iv.Lo
			return true
		})
	}
	return out
}

func keyOf(r *core.Relation, t *core.Tuple) string {
	parts := make([]string, len(r.Scheme().Key))
	for i, k := range r.Scheme().Key {
		parts[i] = t.KeyValue(k).String()
	}
	//lint:allow rawkeyjoin display-only rendering for Violation.Detail, never indexed
	return strings.Join(parts, "|")
}

// RefIntegrity describes a temporal inclusion dependency: for every tuple
// of Child, at every time of its lifespan, a tuple must exist in Parent
// whose ParentKey values (constant) equal the child's ChildAttrs values
// and whose lifespan covers that time.
type RefIntegrity struct {
	ChildAttrs []string // attributes of the child relation (constant-valued)
	ParentKey  []string // key attributes of the parent relation
}

// CheckRefIntegrity verifies the dependency: the child tuple's lifespan
// must be a subset of the referenced parent tuple's lifespan. This is the
// paper's student/course condition with ENROLL as child and STUDENT (or
// COURSE) as parent.
func CheckRefIntegrity(child, parent *core.Relation, ri RefIntegrity) []Violation {
	var out []Violation
	if len(ri.ChildAttrs) != len(ri.ParentKey) {
		return []Violation{{Constraint: "ref-integrity", Detail: "attribute count mismatch"}}
	}
	for _, ct := range child.Tuples() {
		keyVals := make([]string, len(ri.ChildAttrs))
		ok := true
		for i, a := range ri.ChildAttrs {
			v := ct.KeyValue(a)
			if !v.IsValid() {
				// Fall back to any constant value of the attribute.
				cv, has := ct.Value(a).ConstantValue()
				if !has {
					out = append(out, Violation{
						Constraint: "ref-integrity",
						Detail:     fmt.Sprintf("child tuple %s: referencing attribute %s is not constant", keyOf(child, ct), a),
					})
					ok = false
					break
				}
				v = cv
			}
			keyVals[i] = v.String()
		}
		if !ok {
			continue
		}
		pt, found := parent.Lookup(keyVals...)
		if !found {
			out = append(out, Violation{
				Constraint: "ref-integrity",
				//lint:allow rawkeyjoin display-only rendering for Violation.Detail, never indexed
				Detail: fmt.Sprintf("child %s references missing parent %s", keyOf(child, ct), strings.Join(keyVals, "|")),
			})
			continue
		}
		if !ct.Lifespan().SubsetOf(pt.Lifespan()) {
			out = append(out, Violation{
				Constraint: "ref-integrity",
				//lint:allow rawkeyjoin display-only rendering for Violation.Detail, never indexed
				Detail: fmt.Sprintf("child %s alive on %v but parent %s only on %v", keyOf(child, ct), ct.Lifespan(), strings.Join(keyVals, "|"), pt.Lifespan()),
			})
		}
	}
	return out
}
