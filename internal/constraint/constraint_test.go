package constraint

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func ls(s string) lifespan.Lifespan { return lifespan.MustParse(s) }

func empScheme() *schema.Scheme {
	full := ls("{[0,99]}")
	return schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

func TestCheckKeyClean(t *testing.T) {
	s := empScheme()
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, ls("{[0,4]}")).
		Key("NAME", value.String_("A")).
		Set("SAL", 0, 4, value.Int(1)).MustBuild())
	if v := CheckKey(r); len(v) != 0 {
		t.Errorf("clean relation reported violations: %v", v)
	}
}

func TestIntraStateFD(t *testing.T) {
	// DEPT → FLOOR at each time point: two employees in the same
	// department at the same time must be on the same floor.
	s := empScheme()
	good := core.NewRelation(s)
	good.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("A")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("FLOOR", 0, 4, value.Int(1)).
		Set("FLOOR", 5, 9, value.Int(2)). // floor moves over time — fine intra-state
		MustBuild())
	good.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("B")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("FLOOR", 0, 4, value.Int(1)).
		Set("FLOOR", 5, 9, value.Int(2)).
		MustBuild())
	if v := CheckIntraStateFD(good, FD{X: []string{"DEPT"}, Y: []string{"FLOOR"}}); len(v) != 0 {
		t.Errorf("consistent relation reported: %v", v)
	}
	// Now B disagrees at time 7.
	bad := core.NewRelation(s)
	bad.MustInsert(good.Tuples()[0])
	bad.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("B")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("FLOOR", 0, 9, value.Int(1)). // stays on 1 while A moved to 2
		MustBuild())
	v := CheckIntraStateFD(bad, FD{X: []string{"DEPT"}, Y: []string{"FLOOR"}})
	if len(v) == 0 {
		t.Fatal("violation not detected")
	}
	if !strings.Contains(v[0].String(), "fd DEPT -> FLOOR") {
		t.Errorf("violation text: %v", v[0])
	}
}

func TestTransStateFD(t *testing.T) {
	// The intra-state-legal "floor moves over time" violates the
	// trans-state reading of DEPT → FLOOR.
	s := empScheme()
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("A")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("FLOOR", 0, 4, value.Int(1)).
		Set("FLOOR", 5, 9, value.Int(2)).
		MustBuild())
	if v := CheckIntraStateFD(r, FD{X: []string{"DEPT"}, Y: []string{"FLOOR"}}); len(v) != 0 {
		t.Errorf("intra-state should pass: %v", v)
	}
	if v := CheckTransStateFD(r, FD{X: []string{"DEPT"}, Y: []string{"FLOOR"}}); len(v) == 0 {
		t.Error("trans-state must fail when the floor moves")
	}
	// A truly constant mapping passes both.
	r2 := core.NewRelation(s)
	r2.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("A")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("FLOOR", 0, 9, value.Int(1)).
		MustBuild())
	if v := CheckTransStateFD(r2, FD{X: []string{"DEPT"}, Y: []string{"FLOOR"}}); len(v) != 0 {
		t.Errorf("constant mapping should pass trans-state: %v", v)
	}
}

func TestMonotoneSalary(t *testing.T) {
	s := empScheme()
	ok := core.NewRelation(s)
	ok.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("A")).
		Set("SAL", 0, 4, value.Int(100)).
		Set("SAL", 5, 9, value.Int(150)).
		MustBuild())
	if v := CheckMonotone(ok, "SAL", NonDecreasing); len(v) != 0 {
		t.Errorf("raising salary should pass: %v", v)
	}
	if v := CheckMonotone(ok, "SAL", NonIncreasing); len(v) == 0 {
		t.Error("raising salary violates non-increasing")
	}
	// A re-hire at lower pay violates the non-decreasing constraint even
	// across the lifespan gap.
	rehire := core.NewRelation(s)
	rehire.MustInsert(core.NewTupleBuilder(s, ls("{[0,3],[8,12]}")).
		Key("NAME", value.String_("B")).
		Set("SAL", 0, 3, value.Int(200)).
		Set("SAL", 8, 12, value.Int(150)).
		MustBuild())
	v := CheckMonotone(rehire, "SAL", NonDecreasing)
	if len(v) != 1 {
		t.Fatalf("expected exactly one violation, got %v", v)
	}
	if !strings.Contains(v[0].Detail, "regresses") {
		t.Errorf("violation text: %v", v[0])
	}
}

func TestRefIntegrity(t *testing.T) {
	students, courses, enrolls := workload.Enrollment(workload.DefaultEnrollment())
	ri := RefIntegrity{ChildAttrs: []string{"SNAME"}, ParentKey: []string{"SNAME"}}
	if v := CheckRefIntegrity(enrolls, students, ri); len(v) != 0 {
		t.Errorf("generated enrollments must satisfy student integrity: %v", v[0])
	}
	ric := RefIntegrity{ChildAttrs: []string{"CNAME"}, ParentKey: []string{"CNAME"}}
	if v := CheckRefIntegrity(enrolls, courses, ric); len(v) != 0 {
		t.Errorf("generated enrollments must satisfy course integrity: %v", v[0])
	}
}

func TestRefIntegrityViolations(t *testing.T) {
	full := ls("{[0,99]}")
	ss := schema.MustNew("STUDENT", []string{"SNAME"},
		schema.Attribute{Name: "SNAME", Domain: value.Strings, Lifespan: full})
	es := schema.MustNew("ENROLL", []string{"SNAME", "CNAME"},
		schema.Attribute{Name: "SNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "CNAME", Domain: value.Strings, Lifespan: full})
	students := core.NewRelation(ss)
	students.MustInsert(core.NewTupleBuilder(ss, ls("{[0,9]}")).
		Key("SNAME", value.String_("ann")).MustBuild())
	ri := RefIntegrity{ChildAttrs: []string{"SNAME"}, ParentKey: []string{"SNAME"}}

	// Missing parent.
	e1 := core.NewRelation(es)
	e1.MustInsert(core.NewTupleBuilder(es, ls("{[0,5]}")).
		Key("SNAME", value.String_("bob")).Key("CNAME", value.String_("db")).MustBuild())
	if v := CheckRefIntegrity(e1, students, ri); len(v) != 1 || !strings.Contains(v[0].Detail, "missing parent") {
		t.Errorf("missing parent not reported: %v", v)
	}
	// Lifespan escape: enrollment outlives the student.
	e2 := core.NewRelation(es)
	e2.MustInsert(core.NewTupleBuilder(es, ls("{[5,20]}")).
		Key("SNAME", value.String_("ann")).Key("CNAME", value.String_("db")).MustBuild())
	if v := CheckRefIntegrity(e2, students, ri); len(v) != 1 || !strings.Contains(v[0].Detail, "alive on") {
		t.Errorf("lifespan escape not reported: %v", v)
	}
	// Arity mismatch.
	if v := CheckRefIntegrity(e2, students, RefIntegrity{ChildAttrs: []string{"A", "B"}, ParentKey: []string{"X"}}); len(v) != 1 {
		t.Error("arity mismatch not reported")
	}
}
