// Package constraint implements the temporal integrity constraints that
// HRDM's Section 5 sketches as extensions of the classical theory:
//
//   - the historical key constraint (restated from Section 3's relation
//     definition);
//   - temporal functional dependencies, both *intra-state* ("dependencies
//     that hold at each single point in time") and *trans-state*
//     ("dependencies ... that hold over all points in time");
//   - dynamic constraints "over the way that values change over time (as
//     in the familiar 'salary must never decrease' example)";
//   - temporal referential integrity from Section 1: "a student can only
//     take a course at time t if both the student and the course exist in
//     the database at time t".
package constraint
