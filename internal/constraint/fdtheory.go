package constraint

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// This file implements the dependency-theory machinery HRDM's Section 5
// points at ("the theory of normalization which has been developed for
// the traditional model ... can be expected to have a significant impact
// on design methodologies for historical databases"): attribute-set
// closure under a set of temporal FDs, implication testing, candidate-key
// enumeration, BCNF analysis, and FD mining from a historical instance
// under both the intra-state and trans-state readings.

// Closure computes the attribute closure X⁺ under fds: the largest set of
// attributes functionally determined by X. The classical algorithm
// applies unchanged — temporal FDs obey Armstrong's axioms under both
// readings, since each reading is an ordinary FD over a (per-instant or
// global) flattened relation.
func Closure(x []string, fds []FD) []string {
	closed := make(map[string]bool, len(x))
	for _, a := range x {
		closed[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			all := true
			for _, a := range fd.X {
				if !closed[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, a := range fd.Y {
				if !closed[a] {
					closed[a] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(closed))
	for a := range closed {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Implies reports whether fds logically imply the dependency fd.
func Implies(fds []FD, fd FD) bool {
	cl := Closure(fd.X, fds)
	in := make(map[string]bool, len(cl))
	for _, a := range cl {
		in[a] = true
	}
	for _, a := range fd.Y {
		if !in[a] {
			return false
		}
	}
	return true
}

// CandidateKeys enumerates the minimal attribute sets whose closure under
// fds covers all of attrs. Exponential in |attrs|; intended for the
// schema sizes of database design (≤ ~20 attributes).
func CandidateKeys(attrs []string, fds []FD) [][]string {
	n := len(attrs)
	var keys [][]string
	isSuperkey := func(mask int) bool {
		var x []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x = append(x, attrs[i])
			}
		}
		return len(Closure(x, fds)) >= n && covers(Closure(x, fds), attrs)
	}
	// Enumerate masks in order of popcount so minimality is a subset test
	// against already-found keys.
	masks := make([]int, 0, 1<<n)
	for m := 1; m < 1<<n; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return popcount(masks[i]) < popcount(masks[j]) })
	var keyMasks []int
	for _, m := range masks {
		minimal := true
		for _, km := range keyMasks {
			if km&m == km {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		if isSuperkey(m) {
			keyMasks = append(keyMasks, m)
			var k []string
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					k = append(k, attrs[i])
				}
			}
			keys = append(keys, k)
		}
	}
	return keys
}

func covers(have, want []string) bool {
	in := make(map[string]bool, len(have))
	for _, a := range have {
		in[a] = true
	}
	for _, a := range want {
		if !in[a] {
			return false
		}
	}
	return true
}

func popcount(m int) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// BCNFViolations returns the FDs in fds that violate BCNF over attrs:
// non-trivial dependencies whose left side is not a superkey. For
// historical schemes this is the per-reading analysis; a scheme in BCNF
// under the trans-state reading is also in BCNF under the intra-state
// one, but not conversely.
func BCNFViolations(attrs []string, fds []FD) []FD {
	var out []FD
	for _, fd := range fds {
		if trivial(fd) {
			continue
		}
		cl := Closure(fd.X, fds)
		if !covers(cl, attrs) {
			out = append(out, fd)
		}
	}
	return out
}

func trivial(fd FD) bool {
	in := make(map[string]bool, len(fd.X))
	for _, a := range fd.X {
		in[a] = true
	}
	for _, a := range fd.Y {
		if !in[a] {
			return false
		}
	}
	return true
}

// FDReading selects the temporal interpretation under which an FD is
// evaluated against an instance.
type FDReading uint8

const (
	// IntraState: X → Y must hold within each time point separately.
	IntraState FDReading = iota
	// TransState: one X-value maps to one Y-value across all time points.
	TransState
)

// MineFDs discovers all single-attribute-right FDs X → A (|X| ≤ maxLHS)
// that hold in the given historical relation under the chosen reading.
// Mining is instance-based: a discovered FD is a property of this
// history, not a guaranteed constraint. Useful for schema analysis and
// for seeding CandidateKeys/BCNFViolations.
func MineFDs(r *core.Relation, maxLHS int, reading FDReading) []FD {
	attrs := r.Scheme().AttrNames()
	var out []FD
	var lhsSets [][]string
	subsets(attrs, maxLHS, nil, 0, &lhsSets)
	for _, x := range lhsSets {
		inX := make(map[string]bool, len(x))
		for _, a := range x {
			inX[a] = true
		}
		for _, a := range attrs {
			if inX[a] {
				continue
			}
			fd := FD{X: x, Y: []string{a}}
			if holdsOn(r, fd, reading) {
				// Skip non-minimal discoveries implied by what we have.
				if !Implies(out, fd) {
					out = append(out, fd)
				}
			}
		}
	}
	return out
}

func subsets(attrs []string, maxLen int, cur []string, start int, out *[][]string) {
	if len(cur) > 0 {
		*out = append(*out, append([]string(nil), cur...))
	}
	if len(cur) == maxLen {
		return
	}
	for i := start; i < len(attrs); i++ {
		subsets(attrs, maxLen, append(cur, attrs[i]), i+1, out)
	}
}

func holdsOn(r *core.Relation, fd FD, reading FDReading) bool {
	switch reading {
	case IntraState:
		return len(CheckIntraStateFD(r, fd)) == 0
	default:
		return len(CheckTransStateFD(r, fd)) == 0
	}
}

// FDString renders a set of FDs compactly for diagnostics, one per line,
// in deterministic order.
func FDString(fds []FD) string {
	lines := make([]string, len(fds))
	for i, fd := range fds {
		lines[i] = fd.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
