package constraint

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/value"
)

func fd(x, y string) FD {
	return FD{X: split(x), Y: split(y)}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	cur := ""
	for _, c := range s {
		if c == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	return append(out, cur)
}

func TestClosure(t *testing.T) {
	fds := []FD{fd("A", "B"), fd("B", "C"), fd("C,D", "E")}
	cases := []struct {
		x    string
		want string
	}{
		{"A", "A,B,C"},
		{"B", "B,C"},
		{"D", "D"},
		{"A,D", "A,B,C,D,E"},
		{"E", "E"},
	}
	for _, c := range cases {
		got := Closure(split(c.x), fds)
		want := split(c.want)
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Closure(%s) = %v, want %v", c.x, got, want)
		}
	}
}

func TestImplies(t *testing.T) {
	fds := []FD{fd("A", "B"), fd("B", "C")}
	if !Implies(fds, fd("A", "C")) {
		t.Error("transitivity must be implied")
	}
	if !Implies(fds, fd("A,C", "B")) {
		t.Error("augmented LHS must be implied")
	}
	if Implies(fds, fd("C", "A")) {
		t.Error("reverse must not be implied")
	}
	if !Implies(nil, fd("A", "A")) {
		t.Error("reflexivity holds under no FDs")
	}
}

func TestCandidateKeys(t *testing.T) {
	attrs := split("A,B,C,D")
	fds := []FD{fd("A", "B"), fd("B", "C")}
	keys := CandidateKeys(attrs, fds)
	// Only {A,D} is a candidate key: closure(A,D) = all; nothing smaller
	// reaches D or A.
	if len(keys) != 1 || !reflect.DeepEqual(keys[0], split("A,D")) {
		t.Errorf("keys = %v, want [[A D]]", keys)
	}
	// Cyclic FDs produce multiple candidate keys.
	keys2 := CandidateKeys(split("A,B"), []FD{fd("A", "B"), fd("B", "A")})
	if len(keys2) != 2 {
		t.Errorf("cyclic keys = %v, want two singleton keys", keys2)
	}
	// No FDs: the only key is all attributes.
	keys3 := CandidateKeys(split("A,B"), nil)
	if len(keys3) != 1 || len(keys3[0]) != 2 {
		t.Errorf("no-FD keys = %v", keys3)
	}
}

func TestBCNFViolations(t *testing.T) {
	attrs := split("A,B,C")
	// A → B with key A,C: A is not a superkey → violation.
	fds := []FD{fd("A", "B")}
	v := BCNFViolations(attrs, fds)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	// A → B,C makes A a superkey → BCNF.
	fds2 := []FD{fd("A", "B,C")}
	if v := BCNFViolations(attrs, fds2); len(v) != 0 {
		t.Errorf("superkey LHS reported: %v", v)
	}
	// Trivial FDs never violate.
	if v := BCNFViolations(attrs, []FD{fd("A,B", "A")}); len(v) != 0 {
		t.Errorf("trivial FD reported: %v", v)
	}
}

func TestClosureProperties(t *testing.T) {
	// Closure is extensive, monotone and idempotent (a closure operator).
	attrs := []string{"A", "B", "C", "D", "E"}
	genFDs := func(seed int64) []FD {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		fds := make([]FD, 0, n)
		for i := 0; i < n; i++ {
			x := attrs[rng.Intn(len(attrs))]
			y := attrs[rng.Intn(len(attrs))]
			fds = append(fds, fd(x, y))
		}
		return fds
	}
	genX := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed ^ 0xabc))
		var x []string
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				x = append(x, a)
			}
		}
		return x
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(s1, s2 int64) bool {
		fds := genFDs(s1)
		x := genX(s2)
		cl := Closure(x, fds)
		// extensive
		if !covers(cl, x) {
			return false
		}
		// idempotent
		cl2 := Closure(cl, fds)
		return reflect.DeepEqual(cl, cl2)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestMineFDs(t *testing.T) {
	// Build a history where DEPT → FLOOR holds trans-state and NAME is
	// the key.
	s := empScheme()
	r := core.NewRelation(s)
	type row struct {
		name, dept string
		sal        int64
		floor      int64
	}
	rows := []row{
		{"A", "Toys", 100, 1},
		{"B", "Toys", 200, 1},
		{"C", "Shoes", 100, 2},
	}
	for _, rw := range rows {
		r.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
			Key("NAME", value.String_(rw.name)).
			Set("DEPT", 0, 9, value.String_(rw.dept)).
			Set("SAL", 0, 9, value.Int(rw.sal)).
			Set("FLOOR", 0, 9, value.Int(rw.floor)).
			MustBuild())
	}
	mined := MineFDs(r, 1, TransState)
	if !Implies(mined, fd("DEPT", "FLOOR")) {
		t.Errorf("DEPT→FLOOR should be mined; got:\n%s", FDString(mined))
	}
	if !Implies(mined, fd("NAME", "SAL")) {
		t.Errorf("key FDs should be mined; got:\n%s", FDString(mined))
	}
	if Implies(mined, fd("SAL", "NAME")) {
		t.Errorf("SAL does not determine NAME (A and C share 100):\n%s", FDString(mined))
	}
	// Candidate keys from mined FDs recover NAME.
	keys := CandidateKeys(s.AttrNames(), mined)
	foundName := false
	for _, k := range keys {
		if len(k) == 1 && k[0] == "NAME" {
			foundName = true
		}
	}
	if !foundName {
		t.Errorf("NAME should be a candidate key; got %v", keys)
	}
}

func TestMineFDsReadingsDiffer(t *testing.T) {
	// A floor that moves over time: DEPT → FLOOR holds intra-state but
	// not trans-state.
	s := empScheme()
	r := core.NewRelation(s)
	r.MustInsert(core.NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("A")).
		Set("DEPT", 0, 9, value.String_("Toys")).
		Set("SAL", 0, 9, value.Int(1)).
		Set("FLOOR", 0, 4, value.Int(1)).
		Set("FLOOR", 5, 9, value.Int(2)).
		MustBuild())
	intra := MineFDs(r, 1, IntraState)
	trans := MineFDs(r, 1, TransState)
	if !Implies(intra, fd("DEPT", "FLOOR")) {
		t.Error("intra-state reading should accept the moving floor")
	}
	if Implies(trans, fd("DEPT", "FLOOR")) {
		t.Error("trans-state reading must reject the moving floor")
	}
}
