package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// kvScheme is a minimal keyed scheme for batch and snapshot tests.
func kvScheme(name string) *schema.Scheme {
	full := ls("{[0,999]}")
	return schema.MustNew(name, []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

// kvTuple builds one tuple keyed k with value v alive on [lo,hi].
func kvTuple(s *schema.Scheme, k string, v int64, lo, hi chronon.Time) *Tuple {
	return NewTupleBuilder(s, lifespan.Interval(lo, hi)).
		Key("K", value.String_(k)).
		Set("V", lo, hi, value.Int(v)).
		MustBuild()
}

// batchRecorder collects change notifications.
type batchRecorder struct {
	mu      sync.Mutex
	changes []Change
}

func (b *batchRecorder) RelationChanged(_ *Relation, c Change) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.changes = append(b.changes, c)
}

func TestInsertBatchAtomicity(t *testing.T) {
	s := kvScheme("R")
	r := NewRelation(s)
	rec := &batchRecorder{}
	r.Observe(rec)

	batch := make([]*Tuple, 10)
	for i := range batch {
		batch[i] = kvTuple(s, fmt.Sprintf("k%02d", i), int64(i), 0, 9)
	}
	v0 := r.Version()
	if err := r.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := r.Cardinality(); got != 10 {
		t.Fatalf("cardinality = %d, want 10", got)
	}
	if got := r.Version(); got != v0+1 {
		t.Fatalf("version = %d, want one bump to %d", got, v0+1)
	}
	if len(rec.changes) != 1 {
		t.Fatalf("notifications = %d, want one coalesced ChangeBatch", len(rec.changes))
	}
	c := rec.changes[0]
	if c.Kind != ChangeBatch || c.Pos != 0 || len(c.Batch) != 10 || c.Version != v0+1 {
		t.Fatalf("unexpected change: %+v", c)
	}
	if _, ok := r.Lookup(`"k07"`); !ok {
		t.Fatal("batch tuple not resolvable by key")
	}
	if err := r.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	// A duplicate — against existing tuples or within the batch — fails
	// the whole call with nothing applied and nothing notified.
	for _, bad := range [][]*Tuple{
		{kvTuple(s, "fresh", 1, 0, 9), kvTuple(s, "k03", 2, 0, 9)},
		{kvTuple(s, "dup", 1, 0, 9), kvTuple(s, "dup", 2, 0, 9)},
	} {
		err := r.InsertBatch(bad)
		if err == nil || !strings.Contains(err.Error(), "duplicate key") {
			t.Fatalf("want duplicate-key error, got %v", err)
		}
		if r.Cardinality() != 10 || r.Version() != v0+1 || len(rec.changes) != 1 {
			t.Fatal("failed batch must leave the relation untouched")
		}
	}

	// Empty batches are free: no version bump, no notification.
	if err := r.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	if r.Version() != v0+1 || len(rec.changes) != 1 {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestEpochTicksOnlyForPublishedRelations(t *testing.T) {
	s := kvScheme("R")

	private := NewRelation(s)
	e0 := Epoch()
	private.MustInsert(kvTuple(s, "a", 1, 0, 9))
	if Epoch() != e0 {
		t.Fatal("unpublished mutation must not tick the epoch")
	}

	pub := NewRelation(s)
	pub.MarkPublished()
	e1 := Epoch()
	pub.MustInsert(kvTuple(s, "a", 1, 0, 9))
	if Epoch() != e1+1 {
		t.Fatalf("published insert: epoch %d, want %d", Epoch(), e1+1)
	}
	if err := pub.InsertBatch([]*Tuple{kvTuple(s, "b", 2, 0, 9), kvTuple(s, "c", 3, 0, 9)}); err != nil {
		t.Fatal(err)
	}
	if Epoch() != e1+2 {
		t.Fatalf("published batch: epoch %d, want one tick to %d", Epoch(), e1+2)
	}
}

func TestPinnedVersionAndView(t *testing.T) {
	s := kvScheme("R")
	r := NewRelation(s)
	r.MustInsert(kvTuple(s, "a", 1, 0, 9))
	r.MustInsert(kvTuple(s, "b", 2, 0, 9))

	_, vers := Pin(r)
	v := vers[0]
	if v.Cardinality() != 2 || v.Version() != r.Version() {
		t.Fatalf("pin: card %d version %d", v.Cardinality(), v.Version())
	}

	// Later mutations are invisible to the pin: inserts extend past the
	// pinned prefix, merges copy-on-write.
	r.MustInsert(kvTuple(s, "c", 3, 0, 9))
	if err := r.InsertMerging(kvTuple(s, "a", 1, 20, 29)); err != nil {
		t.Fatal(err)
	}
	if v.Cardinality() != 2 {
		t.Fatal("pinned version grew")
	}
	if _, ok := v.Lookup(`"c"`); ok {
		t.Fatal("pinned lookup sees a post-pin insert")
	}
	a, ok := v.Lookup(`"a"`)
	if !ok {
		t.Fatal("pinned lookup lost a pre-pin key")
	}
	if got := a.Lifespan(); !got.Equal(ls("{[0,9]}")) {
		t.Fatalf("pinned tuple reflects post-pin merge: lifespan %s", got)
	}

	// Resolve maps live successors back to pinned forms.
	liveA, _ := r.Lookup(`"a"`)
	if !liveA.Lifespan().Equal(ls("{[0,9],[20,29]}")) {
		t.Fatalf("live merge missing: %s", liveA.Lifespan())
	}
	if pt, ok := v.Resolve(liveA); !ok || pt != a {
		t.Fatal("Resolve must map the merged live tuple to its pinned form")
	}
	liveC, _ := r.Lookup(`"c"`)
	if _, ok := v.Resolve(liveC); ok {
		t.Fatal("Resolve must drop post-pin tuples")
	}

	// Views are O(1) read-only relations over the pinned state.
	view := v.View()
	if view.Cardinality() != 2 || view.Version() != v.Version() {
		t.Fatal("view state mismatch")
	}
	if _, ok := view.Lookup(`"c"`); ok {
		t.Fatal("view sees post-pin insert")
	}
	if vt, ok := view.Lookup(`"a"`); !ok || vt != a {
		t.Fatal("view lookup must answer from the pinned prefix")
	}
	for _, err := range []error{
		view.Insert(kvTuple(s, "z", 9, 0, 9)),
		view.InsertMerging(kvTuple(s, "z", 9, 0, 9)),
		view.InsertBatch([]*Tuple{kvTuple(s, "z", 9, 0, 9)}),
	} {
		if err == nil || !strings.Contains(err.Error(), "read-only") {
			t.Fatalf("mutating a frozen view must fail, got %v", err)
		}
	}
}

// TestPinConsistentCut pins two relations while a writer batches into
// them in sequence (first A, then B with the same keys): every pin
// must observe B ⊆ A and whole batches only — the epoch-consistency
// guarantee the engine's snapshots are built on. Run with -race.
func TestPinConsistentCut(t *testing.T) {
	sa, sb := kvScheme("A"), kvScheme("B")
	a, b := NewRelation(sa), NewRelation(sb)
	a.MarkPublished()
	b.MarkPublished()

	const rounds, batchN = 60, 7
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			mk := func(s *schema.Scheme) []*Tuple {
				ts := make([]*Tuple, batchN)
				for j := range ts {
					ts[j] = kvTuple(s, fmt.Sprintf("k%04d", i*batchN+j), int64(j), 0, 9)
				}
				return ts
			}
			if err := a.InsertBatch(mk(sa)); err != nil {
				done <- err
				return
			}
			if err := b.InsertBatch(mk(sb)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_, vers := Pin(a, b)
				ca, cb := vers[0].Cardinality(), vers[1].Cardinality()
				if ca%batchN != 0 || cb%batchN != 0 {
					t.Errorf("torn batch: |A|=%d |B|=%d", ca, cb)
					return
				}
				if cb > ca {
					t.Errorf("inconsistent cut: |B|=%d > |A|=%d", cb, ca)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
