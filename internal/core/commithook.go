package core

import "sync/atomic"

// CommitHook observes a validated write group just before it is
// applied. It runs inside Commit's critical section — the publish lock
// held shared, every touched relation's mutex held — after phase-1
// validation has succeeded and before anything mutates. Returning an
// error aborts the commit with nothing applied anywhere, exactly like
// a validation failure; returning nil lets the apply proceed.
//
// This is the seam the storage layer's write-ahead log hangs off: the
// hook serializes and fsyncs the group while the locks guarantee that
// (a) no Pin can interleave between the log append and the in-memory
// apply, and (b) groups touching a common relation reach the log in
// apply order. Core itself stays storage-agnostic.
//
// A hook must not stage into or commit write groups, pin, or otherwise
// take publish/relation locks — it already holds them.
type CommitHook func(*WriteGroup) error

var commitHook atomic.Pointer[CommitHook]

// SetCommitHook installs h as the process-wide commit hook and returns
// the previously installed hook (nil if none), so tests can restore
// it. Pass nil to uninstall.
func SetCommitHook(h CommitHook) CommitHook {
	var old *CommitHook
	if h == nil {
		old = commitHook.Swap(nil)
	} else {
		old = commitHook.Swap(&h)
	}
	if old == nil {
		return nil
	}
	return *old
}

// Ops walks the staged mutations in staging order grouped by relation
// (the same order Commit validates in), handing fn each tuple and
// whether it was staged with merging semantics. The callback must not
// mutate the group or the tuples.
func (g *WriteGroup) Ops(fn func(r *Relation, t *Tuple, merging bool)) {
	for _, r := range g.order {
		for _, op := range g.ops[r] {
			fn(r, op.tuple, op.merging)
		}
	}
}

// Rels returns the distinct relations the group touches, in staging
// order. The slice is the group's own — callers must not mutate it.
func (g *WriteGroup) Rels() []*Relation { return g.order }
