package core

import (
	"errors"
	"testing"
)

// TestCommitHookErrorAborts: a hook error must behave exactly like a
// validation failure — no tuples applied, no version bump, no epoch
// tick, and the group reported as aborted.
func TestCommitHookErrorAborts(t *testing.T) {
	s1, s2 := kvScheme("HookA"), kvScheme("HookB")
	a, b := NewRelation(s1), NewRelation(s2)
	a.MarkPublished()
	b.MarkPublished()

	hookErr := errors.New("durability layer said no")
	prev := SetCommitHook(func(g *WriteGroup) error { return hookErr })
	defer SetCommitHook(prev)

	e0 := Epoch()
	g := NewWriteGroup()
	g.Insert(a, kvTuple(s1, "k1", 1, 0, 9))
	g.Insert(b, kvTuple(s2, "k2", 2, 0, 9))
	if err := g.Commit(); !errors.Is(err, hookErr) {
		t.Fatalf("Commit error = %v, want the hook error", err)
	}
	if a.Cardinality() != 0 || b.Cardinality() != 0 {
		t.Fatalf("hook abort applied tuples: |a|=%d |b|=%d", a.Cardinality(), b.Cardinality())
	}
	if a.Version() != 0 || b.Version() != 0 {
		t.Fatalf("hook abort bumped versions: %d, %d", a.Version(), b.Version())
	}
	if Epoch() != e0 {
		t.Fatal("hook abort ticked the epoch")
	}

	// With the hook gone again the same group commits cleanly — the
	// abort left it re-commitable, like a corrected validation failure.
	SetCommitHook(prev)
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if a.Cardinality() != 1 || b.Cardinality() != 1 {
		t.Fatalf("recommit applied |a|=%d |b|=%d, want 1 and 1", a.Cardinality(), b.Cardinality())
	}
}

// TestCommitHookSeesStagedOps: the hook observes the full group via
// Ops/Rels in staging order, before anything applies.
func TestCommitHookSeesStagedOps(t *testing.T) {
	s1, s2 := kvScheme("HookC"), kvScheme("HookD")
	a, b := NewRelation(s1), NewRelation(s2)
	a.MarkPublished()
	b.MarkPublished()

	type seenOp struct {
		rel     string
		key     string
		merging bool
	}
	var seen []seenOp
	var rels []string
	var cardAtHook int
	prev := SetCommitHook(func(g *WriteGroup) error {
		for _, r := range g.Rels() {
			rels = append(rels, r.Scheme().Name)
		}
		g.Ops(func(r *Relation, tp *Tuple, merging bool) {
			seen = append(seen, seenOp{rel: r.Scheme().Name, key: tp.keyString(r.scheme), merging: merging})
		})
		// The hook runs pre-apply: the relations are still empty.
		cardAtHook = len(a.tuples) + len(b.tuples)
		return nil
	})
	defer SetCommitHook(prev)

	g := NewWriteGroup()
	g.Insert(a, kvTuple(s1, "x", 1, 0, 4))
	g.InsertMerging(b, kvTuple(s2, "y", 2, 0, 4))
	g.InsertMerging(a, kvTuple(s1, "x", 1, 5, 9))
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if cardAtHook != 0 {
		t.Fatalf("hook saw %d applied tuples, want 0", cardAtHook)
	}
	if len(rels) != 2 || rels[0] != "HookC" || rels[1] != "HookD" {
		t.Fatalf("Rels = %v, want staging order [HookC HookD]", rels)
	}
	want := []seenOp{
		{rel: "HookC", merging: false},
		{rel: "HookC", merging: true},
		{rel: "HookD", merging: true},
	}
	if len(seen) != len(want) {
		t.Fatalf("Ops walked %d mutations, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i].rel != w.rel || seen[i].merging != w.merging {
			t.Errorf("op %d = %+v, want rel %s merging %v", i, seen[i], w.rel, w.merging)
		}
	}
}
