package core

import (
	"fmt"
	"strings"

	"repro/internal/lifespan"
	"repro/internal/schema"
)

// Compound selection criteria. The paper's σ takes "a simple predicate
// over the attributes of the tuple"; compound conditions are expressible
// by composing operators (σ-WHEN p1 ∘ σ-WHEN p2 for conjunction), but
// only awkwardly for σ-IF — ∃s(p1 ∧ p2) is not ∃s p1 ∧ ∃s p2. Condition
// trees close the algebra over ∧, ∨ and ¬ by combining the satisfaction
// lifespans of the leaves with lifespan set algebra, which is exactly the
// semantics of the paper's time-indexed predicates.

// Condition is a boolean combination of simple predicates, evaluated to
// the set of times at which it holds for a tuple.
type Condition interface {
	fmt.Stringer
	// when returns the satisfaction lifespan of the condition for t
	// within scope. For ¬, undefined attribute values make the inner
	// predicate false, so negation can resurrect those times — matching
	// a closed-world reading of "the attribute does not equal a then".
	when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error)
	// check validates attribute references against a scheme.
	check(s *schema.Scheme) error
}

// Atom wraps a simple predicate as a condition.
type Atom struct{ Pred Predicate }

// And holds when every child holds.
type And struct{ Kids []Condition }

// Or holds when some child holds.
type Or struct{ Kids []Condition }

// Not holds when its child does not.
type Not struct{ Kid Condition }

// String renders the atom.
func (a Atom) String() string { return a.Pred.String() }

// String renders the conjunction.
func (c And) String() string { return renderKids(c.Kids, " AND ") }

// String renders the disjunction.
func (c Or) String() string { return renderKids(c.Kids, " OR ") }

// String renders the negation.
func (c Not) String() string { return "NOT (" + c.Kid.String() + ")" }

func renderKids(kids []Condition, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (a Atom) when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	return a.Pred.when(t, scope)
}

func (a Atom) check(s *schema.Scheme) error { return checkPredicate(s, a.Pred) }

func (c And) when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	acc := scope
	for _, k := range c.Kids {
		w, err := k.when(t, scope)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		acc = acc.Intersect(w)
		if acc.IsEmpty() {
			return acc, nil
		}
	}
	return acc, nil
}

func (c And) check(s *schema.Scheme) error { return checkKids(s, c.Kids) }

func (c Or) when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	acc := lifespan.Empty()
	for _, k := range c.Kids {
		w, err := k.when(t, scope)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		acc = acc.Union(w)
	}
	return acc.Intersect(scope), nil
}

func (c Or) check(s *schema.Scheme) error { return checkKids(s, c.Kids) }

func (c Not) when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	w, err := c.Kid.when(t, scope)
	if err != nil {
		return lifespan.Lifespan{}, err
	}
	return scope.Minus(w), nil
}

func (c Not) check(s *schema.Scheme) error { return c.Kid.check(s) }

func checkKids(s *schema.Scheme, kids []Condition) error {
	if len(kids) == 0 {
		return fmt.Errorf("core: empty boolean combination")
	}
	for _, k := range kids {
		if err := k.check(s); err != nil {
			return err
		}
	}
	return nil
}

// SelectIfCond is SELECT-IF generalized to condition trees: the tuple
// passes whole if the condition holds at some (∃) or every (∀) time of
// L ∩ t.l.
func SelectIfCond(r *Relation, c Condition, q Quantifier, L lifespan.Lifespan) (*Relation, error) {
	if err := c.check(r.scheme); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		scope := t.l.Intersect(L)
		holds, err := c.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-if %s: %w", c, err)
		}
		var keep bool
		if q == Exists {
			keep = !holds.IsEmpty()
		} else {
			keep = scope.Minus(holds).IsEmpty()
		}
		if keep {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SelectWhenCond is SELECT-WHEN generalized to condition trees: each
// tuple shrinks to exactly the times the condition holds.
func SelectWhenCond(r *Relation, c Condition, L lifespan.Lifespan) (*Relation, error) {
	if err := c.check(r.scheme); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		scope := t.l.Intersect(L)
		holds, err := c.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-when %s: %w", c, err)
		}
		nt := t.restrict(holds)
		if nt == nil {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}
