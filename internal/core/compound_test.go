package core

import (
	"testing"

	"repro/internal/lifespan"
	"repro/internal/value"
)

func atom(attr string, th value.Theta, v value.Value) Condition {
	return Atom{Pred: Predicate{Attr: attr, Theta: th, Const: v}}
}

func TestSelectWhenCondAnd(t *testing.T) {
	emp := empRelation(t)
	// The paper's conjunction, now in one operator:
	// σ-WHEN(NAME=John ∧ SAL=30K).
	c := And{Kids: []Condition{
		atom("NAME", value.EQ, value.String_("John")),
		atom("SAL", value.EQ, value.Int(30000)),
	}}
	got, err := SelectWhenCond(emp, c, lifespan.All())
	mustHold(t, err)
	tp := singleTuple(t, got)
	if !tp.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("lifespan = %v", tp.Lifespan())
	}
	// Conjunction equals composition for σ-WHEN.
	j1, err := SelectWhen(emp, Predicate{Attr: "NAME", Theta: value.EQ, Const: value.String_("John")}, lifespan.All())
	mustHold(t, err)
	j2, err := SelectWhen(j1, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, lifespan.All())
	mustHold(t, err)
	if !got.Equal(j2) {
		t.Error("AND must equal σ-WHEN composition")
	}
}

func TestSelectWhenCondOr(t *testing.T) {
	emp := empRelation(t)
	// SAL=30000 ∨ DEPT=Books: John matches early (salary), Ahmed both
	// phases (salary early, Books late), Mary only once in Books.
	c := Or{Kids: []Condition{
		atom("SAL", value.EQ, value.Int(30000)),
		atom("DEPT", value.EQ, value.String_("Books")),
	}}
	got, err := SelectWhenCond(emp, c, lifespan.All())
	mustHold(t, err)
	if got.Cardinality() != 3 {
		t.Fatalf("cardinality = %d\n%s", got.Cardinality(), got)
	}
	ahmed, _ := got.Lookup(`"Ahmed"`)
	if !ahmed.Lifespan().Equal(ls("{[0,3],[8,14]}")) {
		t.Errorf("Ahmed OR lifespan = %v", ahmed.Lifespan())
	}
	mary, _ := got.Lookup(`"Mary"`)
	if !mary.Lifespan().Equal(ls("{[10,19]}")) {
		t.Errorf("Mary OR lifespan = %v", mary.Lifespan())
	}
}

func TestSelectWhenCondNot(t *testing.T) {
	emp := empRelation(t)
	// NOT(SAL=30000): the complement within each tuple's lifespan.
	c := Not{Kid: atom("SAL", value.EQ, value.Int(30000))}
	got, err := SelectWhenCond(emp, c, lifespan.All())
	mustHold(t, err)
	john, _ := got.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[5,9]}")) {
		t.Errorf("John NOT lifespan = %v", john.Lifespan())
	}
	// Ahmed earns 30000 on [0,3] and 31000 on [8,14] → NOT keeps [8,14].
	ahmed, _ := got.Lookup(`"Ahmed"`)
	if !ahmed.Lifespan().Equal(ls("{[8,14]}")) {
		t.Errorf("Ahmed NOT lifespan = %v", ahmed.Lifespan())
	}
	// Double negation restores the original within the scope.
	nn := Not{Kid: Not{Kid: atom("SAL", value.EQ, value.Int(30000))}}
	back, err := SelectWhenCond(emp, nn, lifespan.All())
	mustHold(t, err)
	direct, err := SelectWhen(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, lifespan.All())
	mustHold(t, err)
	if !back.Equal(direct) {
		t.Error("¬¬p must equal p under σ-WHEN")
	}
}

func TestSelectIfCondExistsVsComposition(t *testing.T) {
	// ∃s (p1 ∧ p2) is strictly stronger than (∃s p1) ∧ (∃s p2): John
	// earns 30000 AND works in Toys simultaneously; Ahmed earns 31000 and
	// is in Books simultaneously; but "earns 30000" and "works in Books"
	// never hold at the same time for Ahmed.
	emp := empRelation(t)
	c := And{Kids: []Condition{
		atom("SAL", value.EQ, value.Int(30000)),
		atom("DEPT", value.EQ, value.String_("Books")),
	}}
	joint, err := SelectIfCond(emp, c, Exists, lifespan.All())
	mustHold(t, err)
	if joint.Cardinality() != 0 {
		t.Fatalf("nobody earned 30000 while in Books:\n%s", joint)
	}
	// The composed σ-IF route wrongly admits Ahmed.
	s1, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, Exists, lifespan.All())
	mustHold(t, err)
	s2, err := SelectIf(s1, Predicate{Attr: "DEPT", Theta: value.EQ, Const: value.String_("Books")}, Exists, lifespan.All())
	mustHold(t, err)
	if s2.Cardinality() == 0 {
		t.Fatal("composition should (incorrectly for the joint reading) keep Ahmed")
	}
}

func TestSelectIfCondForAll(t *testing.T) {
	emp := empRelation(t)
	// ∀s: SAL >= 30000 ∨ DEPT = Books — vacuously structured check over
	// compound condition.
	c := Or{Kids: []Condition{
		atom("SAL", value.GE, value.Int(30000)),
		atom("DEPT", value.EQ, value.String_("Books")),
	}}
	got, err := SelectIfCond(emp, c, ForAll, lifespan.All())
	mustHold(t, err)
	if got.Cardinality() != emp.Cardinality() {
		t.Errorf("everyone always earns ≥30000 here: %d", got.Cardinality())
	}
}

func TestCondErrors(t *testing.T) {
	emp := empRelation(t)
	if _, err := SelectWhenCond(emp, And{}, lifespan.All()); err == nil {
		t.Error("empty AND must fail")
	}
	if _, err := SelectWhenCond(emp, Or{Kids: []Condition{atom("NOPE", value.EQ, value.Int(1))}}, lifespan.All()); err == nil {
		t.Error("unknown attribute in kid must fail")
	}
	if _, err := SelectIfCond(emp, Not{Kid: atom("SAL", value.LT, value.String_("x"))}, Exists, lifespan.All()); err == nil {
		t.Error("incomparable kinds must fail")
	}
}

func TestCondDeMorganUnderSelectWhen(t *testing.T) {
	// σ-WHEN(¬(p1 ∨ p2)) = σ-WHEN(¬p1 ∧ ¬p2) on random histories.
	for seed := int64(0); seed < 30; seed++ {
		r := genHist(seed, 5)
		p1 := Atom{Pred: randomPredicate(seed)}
		p2 := Atom{Pred: randomPredicate(seed + 999)}
		lhs, err := SelectWhenCond(r, Not{Kid: Or{Kids: []Condition{p1, p2}}}, lifespan.All())
		mustHold(t, err)
		rhs, err := SelectWhenCond(r, And{Kids: []Condition{Not{Kid: p1}, Not{Kid: p2}}}, lifespan.All())
		mustHold(t, err)
		if !lhs.Equal(rhs) {
			t.Fatalf("seed %d: De Morgan fails under σ-WHEN:\n%s\nvs\n%s", seed, lhs, rhs)
		}
	}
}
