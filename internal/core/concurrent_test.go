package core

import (
	"fmt"

	"repro/internal/chronon"
	"sync"
	"testing"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// concScheme builds the fixture scheme for the concurrency tests.
func concScheme() *schema.Scheme {
	full := lifespan.Interval(0, 999)
	return schema.MustNew("CONC", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

func concTuple(rs *schema.Scheme, name string, lo, hi int, sal int64) *Tuple {
	clo, chi := chronon.Time(lo), chronon.Time(hi)
	return NewTupleBuilder(rs, lifespan.Interval(clo, chi)).
		Key("NAME", value.String_(name)).
		Set("SAL", clo, chi, value.Int(sal)).
		MustBuild()
}

// TestConcurrentReadersWithWriters hammers one relation with concurrent
// snapshot readers, lookups, operator evaluations and renderings while
// two writers interleave Insert (fresh keys) and InsertMerging (lifespan
// extensions of existing keys). Run under -race this exercises the
// relation's RWMutex write story: snapshot slices must stay immutable
// across appends and copy-on-write merges.
func TestConcurrentReadersWithWriters(t *testing.T) {
	rs := concScheme()
	r := NewRelation(rs)
	const seedTuples = 20
	for i := 0; i < seedTuples; i++ {
		r.MustInsert(concTuple(rs, fmt.Sprintf("w%04d", i), 0, 4, int64(1000*(i+1))))
	}

	const inserts, merges, readers = 150, 150, 6
	var wg sync.WaitGroup
	errs := make(chan error, 2+readers)

	// Writer 1: fresh keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			if err := r.Insert(concTuple(rs, fmt.Sprintf("n%04d", i), 10, 19, int64(i))); err != nil {
				errs <- fmt.Errorf("insert: %w", err)
				return
			}
		}
	}()
	// Writer 2: merges extending the seed tuples' histories over
	// disjoint chronons (no contradictions by construction).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < merges; i++ {
			name := fmt.Sprintf("w%04d", i%seedTuples)
			lo := 100 + 10*(i/seedTuples)
			if err := r.InsertMerging(concTuple(rs, name, lo, lo+4, int64(i))); err != nil {
				errs <- fmt.Errorf("insert-merging: %w", err)
				return
			}
		}
	}()
	// Readers: snapshots, lookups, algebra, rendering.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			L := lifespan.Interval(0, 50)
			for i := 0; i < 60; i++ {
				ts := r.Tuples()
				for _, tp := range ts {
					_ = tp.Lifespan()
				}
				if _, ok := r.Lookup(`"w0003"`); !ok {
					errs <- fmt.Errorf("reader %d: seed tuple w0003 vanished", g)
					return
				}
				if _, err := TimesliceStatic(r, L); err != nil {
					errs <- fmt.Errorf("reader %d: timeslice: %w", g, err)
					return
				}
				if i%17 == 0 {
					_ = r.String()
					_ = r.Lifespan()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got, want := r.Cardinality(), seedTuples+inserts; got != want {
		t.Fatalf("cardinality after writers = %d, want %d", got, want)
	}
	// Every merge landed: each seed tuple's history gained its extensions.
	tp, ok := r.Lookup(`"w0000"`)
	if !ok {
		t.Fatal("w0000 missing")
	}
	wantIvs := 1 + (merges+seedTuples-1)/seedTuples // seed interval plus one per merge round
	if got := tp.Lifespan().NumIntervals(); got != wantIvs {
		t.Fatalf("w0000 has %d lifespan intervals, want %d", got, wantIvs)
	}
	if err := r.checkInvariants(); err != nil {
		t.Fatalf("invariants after concurrent writes: %v", err)
	}
}

// TestSnapshotStableAcrossMerge pins the copy-on-write contract: a
// snapshot taken before a merge must keep serving the pre-merge tuple.
func TestSnapshotStableAcrossMerge(t *testing.T) {
	rs := concScheme()
	r := NewRelation(rs)
	r.MustInsert(concTuple(rs, "solo", 0, 4, 1000))
	snap := r.Tuples()
	before := snap[0]
	if err := r.InsertMerging(concTuple(rs, "solo", 10, 14, 2000)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if snap[0] != before {
		t.Fatal("snapshot mutated by merge; copy-on-write broken")
	}
	after := r.Tuples()
	if after[0] == before {
		t.Fatal("relation did not absorb the merge")
	}
	if got := after[0].Lifespan().NumIntervals(); got != 2 {
		t.Fatalf("merged tuple has %d intervals, want 2", got)
	}
}

// TestObserverNotifications checks the change-notification contract:
// consecutive versions, insert and merge kinds, positions, and that an
// unregistered observer goes quiet.
func TestObserverNotifications(t *testing.T) {
	rs := concScheme()
	r := NewRelation(rs)
	obs := &recordingObserver{}
	startV := r.Observe(obs)
	if startV != 0 {
		t.Fatalf("fresh relation version = %d, want 0", startV)
	}
	r.MustInsert(concTuple(rs, "a", 0, 4, 1))
	r.MustInsert(concTuple(rs, "b", 0, 4, 2))
	if err := r.InsertMerging(concTuple(rs, "a", 10, 14, 3)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got := obs.got
	if len(got) != 3 {
		t.Fatalf("observed %d changes, want 3", len(got))
	}
	if got[0].Kind != ChangeInsert || got[0].Pos != 0 || got[0].Version != 1 {
		t.Fatalf("change 0 = %+v", got[0])
	}
	if got[1].Kind != ChangeInsert || got[1].Pos != 1 || got[1].Version != 2 {
		t.Fatalf("change 1 = %+v", got[1])
	}
	if got[2].Kind != ChangeMerge || got[2].Pos != 0 || got[2].Version != 3 || got[2].Old == nil {
		t.Fatalf("change 2 = %+v", got[2])
	}
	r.Unobserve(obs)
	r.MustInsert(concTuple(rs, "c", 0, 4, 4))
	if len(obs.got) != 3 {
		t.Fatalf("unregistered observer still notified (%d changes)", len(obs.got))
	}
}

// recordingObserver captures every delivered change. Observers must be
// comparable (Unobserve removes by identity), hence the pointer type.
type recordingObserver struct{ got []Change }

func (o *recordingObserver) RelationChanged(_ *Relation, c Change) { o.got = append(o.got, c) }
