// Package core implements the structures and algebra of the Historical
// Relational Data Model (HRDM) — the primary contribution of Clifford &
// Croker (1987).
//
// A historical tuple t on scheme R is an ordered pair t = ⟨v, l⟩ where
// t.l is the tuple's lifespan and t.v assigns to each attribute A ∈ R a
// partial temporal function into DOM(A) defined on t.l ∩ ALS(A,R)
// (Section 3). A historical relation is a finite set of such tuples whose
// key values are pairwise distinct at every pair of time points. The
// algebra over these structures (Section 4) comprises the set-theoretic
// operators and their object-based variants, PROJECT, SELECT-IF,
// SELECT-WHEN, static and dynamic TIME-SLICE, WHEN, and the JOIN family.
//
// Beyond the paper, the package carries the repository's concurrency
// model (see docs/ARCHITECTURE.md): relations synchronize reads and
// writes with an RWMutex and hand out immutable tuple-slice snapshots;
// published relations participate in an epoch-based publication
// protocol (epoch.go) under which Pin captures transaction-consistent
// multi-relation cuts; and WriteGroup (writegroup.go) stages mutations
// across several relations and publishes them as one atomic unit — one
// publish-lock acquisition, one epoch tick, one coalesced change
// notification per relation — so a pinned snapshot can never observe a
// partially applied group.
package core
