package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file is the publication layer that gives multi-relation readers
// a transaction-consistent view of the database. The algebra of the
// paper (and every operator in this package) is defined over a single
// consistent database state; per-relation locks alone cannot provide
// that to a query touching several relations while writers run — the
// query could observe relation A before a writer's batch and relation
// B after it. The fix is epoch-based snapshot isolation:
//
//   - Every mutation of a *published* relation (one that is reachable
//     from a store, observed by an index catalog, or previously pinned)
//     runs under a process-wide publish lock in shared mode and ticks a
//     monotonically increasing database epoch. Writers to distinct
//     relations still run concurrently; the relation's own mutex
//     serializes same-relation writers as before.
//   - Pin captures, under the publish lock in exclusive mode, one
//     immutable version of each requested relation plus the epoch —
//     a consistent cut: every publication is entirely before or
//     entirely after the pin. The critical section is O(#relations)
//     pointer copies; execution afterwards reads the pinned tuple
//     slices with no locks at all (appends never touch a snapshot's
//     prefix, merges copy-on-write).
//   - Relations that were never published — operator intermediates,
//     single-goroutine builds — skip the publish lock entirely, so
//     result construction pays nothing for the isolation of base data.
//
// The polarity (writers shared, pins exclusive) is what makes
// PinAtomic deadlock-free: a writer blocked on the publish lock holds
// no other lock, so a pinner may freely read relation state (plan a
// query, build an index) while it holds publishes out.

// publish is the process-wide publication lock; epoch counts
// publications. The epoch only moves under publish.mu (shared side),
// so a Pin holding the exclusive side reads a stable value.
var publish struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
}

// Publish-lock contention metrics. Wait time is measured only on the
// contended path: the Try* fast path costs the same compare-and-swap
// the plain acquisition would, so uncontended pins and publications
// pay no clock read at all, while every acquisition that actually
// blocked records how long it waited. The epoch itself is exported as
// a snapshot-time gauge — zero hot-path cost.
var (
	mPinContended   = obs.Default.Counter("core.publish.pin_contended")
	mPinWait        = obs.Default.Histogram("core.publish.pin_wait_ns")
	mWriteContended = obs.Default.Counter("core.publish.write_contended")
	mWriteWait      = obs.Default.Histogram("core.publish.write_wait_ns")
)

func init() {
	obs.Default.GaugeFunc("core.epoch", func() int64 { return int64(Epoch()) })
}

// lockPublishExclusive acquires the exclusive (pin) side of the
// publish lock, recording wait time when the acquisition blocked.
func lockPublishExclusive() {
	if publish.mu.TryLock() {
		return
	}
	t0 := time.Now()
	publish.mu.Lock()
	mPinContended.Inc()
	mPinWait.ObserveSince(t0)
}

// lockPublishShared acquires the shared (writer) side of the publish
// lock, recording wait time when the acquisition blocked.
func lockPublishShared() {
	if publish.mu.TryRLock() {
		return
	}
	t0 := time.Now()
	publish.mu.RLock()
	mWriteContended.Inc()
	mWriteWait.ObserveSince(t0)
}

// Epoch returns the current database epoch: the number of publications
// (inserts, merges, batches) applied to published relations so far.
func Epoch() uint64 { return publish.epoch.Load() }

// RelVersion is one pinned, immutable version of a relation: the tuple
// prefix visible at the pin plus the mutation counter it reflects.
// All methods are lock-free over the pinned slice; key lookups consult
// the live relation's canonical-key map bounded by the pinned prefix
// (keys are never deleted and tuple positions are append-stable, so
// the live map answers exactly for every older version).
type RelVersion struct {
	rel     *Relation
	tuples  []*Tuple
	version uint64
}

// Rel returns the live relation this version was pinned from.
func (v RelVersion) Rel() *Relation { return v.rel }

// Tuples returns the pinned tuple slice; callers must not mutate it.
func (v RelVersion) Tuples() []*Tuple { return v.tuples }

// Version returns the relation mutation counter the version reflects.
func (v RelVersion) Version() uint64 { return v.version }

// Cardinality returns the number of tuples in the pinned version.
func (v RelVersion) Cardinality() int { return len(v.tuples) }

// Lookup resolves a key (one value per key attribute in scheme order,
// canonical rendering) within the pinned version.
func (v RelVersion) Lookup(keyVals ...string) (*Tuple, bool) {
	return v.lookupKS(encodeKey(keyVals))
}

func (v RelVersion) lookupKS(ks string) (*Tuple, bool) {
	i, ok := v.rel.keyPos(ks)
	if !ok || i >= len(v.tuples) {
		return nil, false
	}
	return v.tuples[i], true
}

// Resolve maps a tuple of the live relation (possibly newer than the
// pin: inserted later, or the merged successor of a pinned tuple) to
// its counterpart in this version. ok=false means the tuple's object
// did not exist at the pin. Index probes against live structures use
// it to restrict their candidates to the pinned state.
func (v RelVersion) Resolve(t *Tuple) (*Tuple, bool) {
	return v.lookupKS(t.keyString(v.rel.scheme))
}

// View wraps the pinned version as a read-only Relation, so the naive
// algebra operators (which take *Relation operands) can run against a
// consistent snapshot. Views share the pinned slice — construction is
// O(1) — and reject mutation; key lookups delegate through the origin
// relation bounded by the pinned prefix.
func (v RelVersion) View() *Relation {
	return &Relation{scheme: v.rel.scheme, tuples: v.tuples, version: v.version, origin: v.rel}
}

// Pin captures one consistent version of each relation plus the
// database epoch: publications are excluded for the duration of the
// capture, so the result is a cut of the global mutation order — no
// publication is half-visible, and for any writer that batches into
// several relations in sequence, the cut respects that sequence.
func Pin(rels ...*Relation) (epoch uint64, vers []RelVersion) {
	lockPublishExclusive()
	defer publish.mu.Unlock()
	return pinLocked(rels)
}

// PinAtomic runs prepare while publications are excluded and then pins
// the relations it returns, all under one critical section. A query
// engine uses it as the cannot-fail fallback when optimistic
// plan-then-pin keeps losing races to writers: planning inside the
// section is safe because blocked writers hold no relation locks.
// A prepare error aborts the pin and is returned as-is.
func PinAtomic(prepare func() ([]*Relation, error)) (epoch uint64, vers []RelVersion, err error) {
	lockPublishExclusive()
	defer publish.mu.Unlock()
	rels, err := prepare()
	if err != nil {
		return 0, nil, err
	}
	epoch, vers = pinLocked(rels)
	return epoch, vers, nil
}

// pinLocked captures the versions under the held publish lock. Each
// relation's own mutex is still taken in read mode: a relation being
// mutated right now on the unpublished fast path (its first pin is
// racing its last private write) must not be captured mid-append.
func pinLocked(rels []*Relation) (uint64, []RelVersion) {
	vers := make([]RelVersion, len(rels))
	for i, r := range rels {
		r.published.Store(true)
		r.mu.RLock()
		r.shared.Store(true)
		vers[i] = RelVersion{rel: r, tuples: r.tuples, version: r.version}
		r.mu.RUnlock()
	}
	return publish.epoch.Load(), vers
}

// MarkPublished flags r as shared database state: from now on every
// mutation publishes under the global lock and ticks the epoch.
// Stores call it when a relation is registered; Observe and Pin imply
// it. Relations never marked (operator intermediates) keep the cheap
// single-mutex write path.
func (r *Relation) MarkPublished() { r.published.Store(true) }

// beginPublish enters the publication critical section when r is
// published; the returned flag is handed back to endPublish. Writers
// hold the shared side, so distinct relations publish concurrently;
// the relation mutex (acquired after, never before) serializes
// same-relation writers. Lock order publish.mu → r.mu is what every
// pinner relies on.
func (r *Relation) beginPublish() bool {
	if !r.published.Load() {
		return false
	}
	lockPublishShared()
	return true
}

// endPublish leaves the critical section, ticking the epoch when a
// mutation was actually published.
func (r *Relation) endPublish(locked, mutated bool) {
	if !locked {
		return
	}
	if mutated {
		publish.epoch.Add(1)
	}
	publish.mu.RUnlock()
}
