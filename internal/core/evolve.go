package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// Schema evolution as operations. Figure 6 presents an evolving schema
// declaratively — ALS(VOLUME) already carries the gap. These functions
// realize the *events* that produce such lifespans: dropping an attribute
// as of a time (the "too expensive to collect" moment) and re-adding it
// later (the "cheap outside source" moment), migrating the stored
// relation in the process. Both return new relations; relations are
// immutable values.

// DropAttribute ends attribute attr's lifespan at time t: the new ALS is
// ALS ∩ [Min, t-1], and every tuple's value for attr is restricted
// accordingly. Dropping a key attribute is an error (the key must span
// the scheme lifespan). Dropping the attribute everywhere (t before the
// attribute's first definition) is an error — remove it with Project
// instead.
func DropAttribute(r *Relation, attr string, t chronon.Time) (*Relation, error) {
	a, ok := r.scheme.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("core: drop attribute: unknown attribute %s", attr)
	}
	if r.scheme.IsKey(attr) {
		return nil, fmt.Errorf("core: drop attribute: %s is a key attribute", attr)
	}
	keep := lifespan.Interval(chronon.Min, t.Prev())
	newLS := a.Lifespan.Intersect(keep)
	if newLS.IsEmpty() {
		return nil, fmt.Errorf("core: drop attribute: %s would have an empty lifespan; use Project to remove it entirely", attr)
	}
	return rewriteAttrLifespan(r, attr, newLS)
}

// AddAttributePeriod extends (or re-adds, after a drop) attribute attr's
// lifespan with [from,to]: the new ALS is ALS ∪ [from,to]. Tuples are
// unchanged — their values may now be extended into the new period with
// tuple updates or Materialize. Re-adding an unknown attribute is an
// error; introduce brand-new attributes with AddAttribute.
func AddAttributePeriod(r *Relation, attr string, from, to chronon.Time) (*Relation, error) {
	a, ok := r.scheme.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("core: add attribute period: unknown attribute %s", attr)
	}
	newLS := a.Lifespan.Union(lifespan.Interval(from, to))
	return rewriteAttrLifespan(r, attr, newLS)
}

// AddAttribute introduces a brand-new attribute with the given
// definition. Existing tuples get the nowhere-defined value for it.
func AddAttribute(r *Relation, a schema.Attribute) (*Relation, error) {
	if r.scheme.HasAttr(a.Name) {
		return nil, fmt.Errorf("core: add attribute: %s already in scheme", a.Name)
	}
	attrs := append(append([]schema.Attribute(nil), r.scheme.Attrs...), a)
	ns, err := schema.New(r.scheme.Name, r.scheme.Key, attrs...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(ns)
	for _, t := range r.Tuples() {
		nv := make(map[string]tfunc.Func, len(t.v))
		for n, f := range t.v {
			nv[n] = f
		}
		nt, err := NewTuple(ns, t.l, nv)
		if err != nil {
			return nil, err
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rewriteAttrLifespan rebuilds the relation under a scheme where attr's
// lifespan is newLS, restricting stored values that now fall outside it.
func rewriteAttrLifespan(r *Relation, attr string, newLS lifespan.Lifespan) (*Relation, error) {
	attrs := make([]schema.Attribute, len(r.scheme.Attrs))
	copy(attrs, r.scheme.Attrs)
	for i := range attrs {
		if attrs[i].Name == attr {
			attrs[i].Lifespan = newLS
		}
	}
	// Key lifespans must still equal the scheme lifespan; recompute and
	// widen keys if the scheme lifespan grew (AddAttributePeriod).
	ls := lifespan.Empty()
	for _, a := range attrs {
		ls = ls.Union(a.Lifespan)
	}
	for i := range attrs {
		for _, k := range r.scheme.Key {
			if attrs[i].Name == k {
				attrs[i].Lifespan = ls
			}
		}
	}
	ns, err := schema.New(r.scheme.Name, r.scheme.Key, attrs...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(ns)
	for _, t := range r.Tuples() {
		nv := make(map[string]tfunc.Func, len(t.v))
		for n, f := range t.v {
			if n == attr {
				f = f.Restrict(t.l.Intersect(newLS))
			}
			nv[n] = f
		}
		// Keys may need extending over a grown scheme lifespan.
		for _, k := range ns.Key {
			nv[k] = extendConstant(nv[k], t.l.Intersect(ns.ALS(k)))
		}
		nt, err := NewTuple(ns, t.l, nv)
		if err != nil {
			return nil, fmt.Errorf("core: evolve %s: %w", attr, err)
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UpdateValue appends or overwrites attribute attr of the tuple with the
// given key values over [from,to], extending the tuple lifespan if
// needed. This is the history-building write operation examples use to
// model "the salary changed at t". The updated period must lie within
// the attribute's ALS.
func UpdateValue(r *Relation, keyVals []string, attr string, from, to chronon.Time, v tfunc.Func) (*Relation, error) {
	if _, ok := r.scheme.Attr(attr); !ok {
		return nil, fmt.Errorf("core: update: unknown attribute %s", attr)
	}
	old, ok := r.Lookup(keyVals...)
	if !ok {
		return nil, fmt.Errorf("core: update: no tuple with key %v", keyVals)
	}
	period := lifespan.Interval(from, to)
	if !period.SubsetOf(r.scheme.ALS(attr)) {
		return nil, fmt.Errorf("core: update: period %v outside ALS(%s) = %v", period, attr, r.scheme.ALS(attr))
	}
	nl := old.l.Union(period)
	nv := make(map[string]tfunc.Func, len(old.v))
	for n, f := range old.v {
		nv[n] = f
	}
	// Layer the new value over the old via a builder.
	var b tfunc.Builder
	old.v[attr].Steps(func(iv chronon.Interval, val value.Value) bool {
		b.Set(iv.Lo, iv.Hi, val)
		return true
	})
	v.Restrict(period).Steps(func(iv chronon.Interval, val value.Value) bool {
		b.Set(iv.Lo, iv.Hi, val)
		return true
	})
	nv[attr] = b.Build()
	for _, k := range r.scheme.Key {
		nv[k] = extendConstant(nv[k], nl.Intersect(r.scheme.ALS(k)))
	}
	nt, err := NewTuple(r.scheme, nl, nv)
	if err != nil {
		return nil, fmt.Errorf("core: update: %w", err)
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		if t == old {
			t = nt
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}
