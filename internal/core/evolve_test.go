package core

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

func TestDropAttributeFigure6(t *testing.T) {
	// Replay Figure 6 as operations: VOLUME recorded from the start,
	// dropped at t2+1 = 21, re-added over [30,40].
	tickerLS := ls("{[0,40]}")
	s := schema.MustNew("STOCK", []string{"TICKER"},
		schema.Attribute{Name: "TICKER", Domain: value.Strings, Lifespan: tickerLS},
		schema.Attribute{Name: "VOLUME", Domain: value.Ints, Lifespan: tickerLS},
	)
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, tickerLS).
		Key("TICKER", value.String_("IBM")).
		Set("VOLUME", 0, 40, value.Int(500)).
		MustBuild())

	dropped, err := DropAttribute(r, "VOLUME", 21)
	mustHold(t, err)
	if !dropped.Scheme().ALS("VOLUME").Equal(ls("{[0,20]}")) {
		t.Errorf("ALS after drop = %v", dropped.Scheme().ALS("VOLUME"))
	}
	// Stored values beyond the drop point are gone.
	ibm := dropped.Tuples()[0]
	if _, ok := ibm.At("VOLUME", 25); ok {
		t.Error("value must vanish after the drop point")
	}
	if v, ok := ibm.At("VOLUME", 10); !ok || v.AsInt() != 500 {
		t.Error("pre-drop values must survive")
	}

	// Re-add over [30,40] — the Figure 6 lifespan appears.
	readded, err := AddAttributePeriod(dropped, "VOLUME", 30, 40)
	mustHold(t, err)
	if !readded.Scheme().ALS("VOLUME").Equal(ls("{[0,20],[30,40]}")) {
		t.Errorf("ALS after re-add = %v", readded.Scheme().ALS("VOLUME"))
	}
	// New-period values can now be written.
	updated, err := UpdateValue(readded, []string{`"IBM"`}, "VOLUME", 30, 40,
		tfunc.Constant(ls("{[30,40]}"), value.Int(900)))
	mustHold(t, err)
	ibm2 := updated.Tuples()[0]
	if v, ok := ibm2.At("VOLUME", 35); !ok || v.AsInt() != 900 {
		t.Error("post-re-add value missing")
	}
	if _, ok := ibm2.At("VOLUME", 25); ok {
		t.Error("gap must stay empty")
	}
}

func TestDropAttributeErrors(t *testing.T) {
	emp := empRelation(t)
	if _, err := DropAttribute(emp, "NOPE", 5); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := DropAttribute(emp, "NAME", 5); err == nil {
		t.Error("dropping the key must fail")
	}
	if _, err := DropAttribute(emp, "SAL", -1000); err == nil {
		t.Error("dropping everything must fail")
	}
	if _, err := AddAttributePeriod(emp, "NOPE", 0, 5); err == nil {
		t.Error("re-adding unknown attribute must fail")
	}
}

func TestAddAttribute(t *testing.T) {
	emp := empRelation(t)
	grown, err := AddAttribute(emp, schema.Attribute{
		Name: "OFFICE", Domain: value.Ints, Lifespan: ls("{[0,99]}"), Interp: "step",
	})
	mustHold(t, err)
	if !grown.Scheme().HasAttr("OFFICE") {
		t.Fatal("OFFICE missing")
	}
	// Existing tuples carry the nowhere-defined value.
	john, _ := grown.Lookup(`"John"`)
	if !john.Value("OFFICE").IsNowhereDefined() {
		t.Error("existing tuples have no OFFICE history yet")
	}
	// And can be filled in.
	updated, err := UpdateValue(grown, []string{`"John"`}, "OFFICE", 0, 9,
		tfunc.Constant(ls("{[0,9]}"), value.Int(42)))
	mustHold(t, err)
	j2, _ := updated.Lookup(`"John"`)
	if v, ok := j2.At("OFFICE", 5); !ok || v.AsInt() != 42 {
		t.Error("OFFICE update lost")
	}
	// Duplicate attribute fails.
	if _, err := AddAttribute(emp, schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[0,99]}")}); err == nil {
		t.Error("duplicate attribute must fail")
	}
}

func TestUpdateValueExtendsLifespan(t *testing.T) {
	emp := empRelation(t)
	// Extend John's employment: a raise period [50,60] beyond his current
	// lifespan [0,9] grows the tuple lifespan (a re-hire).
	updated, err := UpdateValue(emp, []string{`"John"`}, "SAL", 50, 60,
		tfunc.Constant(ls("{[50,60]}"), value.Int(50000)))
	mustHold(t, err)
	john, _ := updated.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[0,9],[50,60]}")) {
		t.Errorf("extended lifespan = %v", john.Lifespan())
	}
	if v, _ := john.At("SAL", 55); v.AsInt() != 50000 {
		t.Error("new period value missing")
	}
	if v, _ := john.At("SAL", 3); v.AsInt() != 30000 {
		t.Error("old values must survive")
	}
	// The key now covers the extended lifespan (invariants hold).
	if err := updated.checkInvariants(); err != nil {
		t.Fatalf("invariants after update: %v", err)
	}
	// Overwrite semantics within the existing lifespan.
	over, err := UpdateValue(emp, []string{`"John"`}, "SAL", 2, 6,
		tfunc.Constant(ls("{[2,6]}"), value.Int(99)))
	mustHold(t, err)
	j2, _ := over.Lookup(`"John"`)
	if v, _ := j2.At("SAL", 4); v.AsInt() != 99 {
		t.Error("overwrite failed")
	}
	if v, _ := j2.At("SAL", 8); v.AsInt() != 34000 {
		t.Error("unoverwritten tail damaged")
	}
}

func TestUpdateValueErrors(t *testing.T) {
	emp := empRelation(t)
	sal := tfunc.Constant(ls("{[0,5]}"), value.Int(1))
	if _, err := UpdateValue(emp, []string{`"Nobody"`}, "SAL", 0, 5, sal); err == nil {
		t.Error("unknown key must fail")
	}
	if _, err := UpdateValue(emp, []string{`"John"`}, "NOPE", 0, 5, sal); err == nil {
		t.Error("unknown attribute must fail")
	}
	// Period outside ALS.
	if _, err := UpdateValue(emp, []string{`"John"`}, "SAL", 500, 600,
		tfunc.Constant(ls("{[500,600]}"), value.Int(1))); err == nil {
		t.Error("period outside ALS must fail")
	}
}
