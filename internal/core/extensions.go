package core

import (
	"fmt"

	"repro/internal/lifespan"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// This file implements the two extensions the paper explicitly sketches
// but does not define:
//
// Section 5: "It would also be possible to define JOINs over the union of
// the tuple lifespans, essentially equivalent to a SELECT-IF of the
// Cartesian product; a resulting tuple will have null values for times
// outside of its contributing tuples' lifespans." — ThetaJoinOuter.
//
// Section 3 / Figure 9: the interpolation function I mapping
// "partially-represented functions" to total functions at the model
// level. Materialize applies each attribute's declared interpolator to
// complete every value over its vls.

// ThetaJoinOuter joins two relations over the UNION of the contributing
// tuples' lifespans: a pair joins if the θ condition holds at some shared
// time (the SELECT-IF reading), and the result tuple then spans
// t1.l ∪ t2.l, with each side's values left undefined — null — at times
// the other side contributed. Contrast ThetaJoin, whose result lifespan
// is exactly the agreement times and which therefore never contains
// nulls.
func ThetaJoinOuter(r1, r2 *Relation, attrA string, th value.Theta, attrB string) (*Relation, error) {
	if !r1.scheme.DisjointAttrs(r2.scheme) {
		return nil, fmt.Errorf("core: outer theta-join: schemes share attributes; rename first")
	}
	if !r1.scheme.HasAttr(attrA) {
		return nil, fmt.Errorf("core: outer theta-join: %s not in %s", attrA, r1.scheme.Name)
	}
	if !r2.scheme.HasAttr(attrB) {
		return nil, fmt.Errorf("core: outer theta-join: %s not in %s", attrB, r2.scheme.Name)
	}
	rs, err := joinScheme(r1, r2)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	ts2 := r2.Tuples()
	for _, t1 := range r1.Tuples() {
		f1 := t1.Value(attrA)
		if f1.IsNowhereDefined() {
			continue
		}
		for _, t2 := range ts2 {
			holds, err := thetaTimes(f1, t2.Value(attrB), th)
			if err != nil {
				return nil, fmt.Errorf("core: outer theta-join: %w", err)
			}
			if holds.IsEmpty() {
				continue // SELECT-IF ∃: no shared satisfying time, no pair
			}
			nl := t1.l.Union(t2.l)
			nv := make(map[string]tfunc.Func, len(t1.v)+len(t2.v))
			for a, f := range t1.v {
				nv[a] = f
			}
			for a, f := range t2.v {
				nv[a] = f
			}
			for _, k := range rs.Key {
				nv[k] = extendConstant(nv[k], nl.Intersect(rs.ALS(k)))
			}
			nt, err := NewTuple(rs, nl, nv)
			if err != nil {
				return nil, fmt.Errorf("core: outer theta-join: %w", err)
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Materialize lifts a relation from the representation level to the model
// level (Figure 9): for every tuple and every attribute, the attribute's
// declared interpolation function I completes the stored partial function
// to a total function on vls(t,A,R). Attributes with "discrete"
// interpolation must already be total on their vls; "step" carries values
// forward; "linear" interpolates numerics. An attribute that stores no
// value at all for a tuple stays nowhere-defined (there is nothing for I
// to extend).
func Materialize(r *Relation) (*Relation, error) {
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		nv := make(map[string]tfunc.Func, len(t.v))
		for _, a := range r.scheme.Attrs {
			f := t.v[a.Name]
			if f.IsNowhereDefined() {
				nv[a.Name] = f
				continue
			}
			interp := a.Interp
			if interp == "" {
				interp = "discrete"
			}
			ip, err := tfunc.ByName(interp)
			if err != nil {
				return nil, err
			}
			vls := t.VLS(r.scheme, a.Name)
			total, err := ip.Interpolate(f, vls)
			if err != nil {
				return nil, fmt.Errorf("core: materialize %s.%s: %w", r.scheme.Name, a.Name, err)
			}
			nv[a.Name] = total
		}
		nt, err := NewTuple(r.scheme, t.l, nv)
		if err != nil {
			return nil, fmt.Errorf("core: materialize: %w", err)
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CoalesceValueLifespans reports, for diagnostics and the storage
// experiments, how many representation-level steps each attribute of the
// relation stores in total — the size driver of Section 2's tradeoff
// discussion.
func CoalesceValueLifespans(r *Relation) map[string]int {
	out := make(map[string]int, len(r.scheme.Attrs))
	for _, t := range r.Tuples() {
		for _, a := range r.scheme.Attrs {
			out[a.Name] += t.v[a.Name].NumSteps()
		}
	}
	return out
}

// EquiJoinOuter is ThetaJoinOuter with θ = equality, the outer analogue
// of EquiJoin.
func EquiJoinOuter(r1, r2 *Relation, attrA, attrB string) (*Relation, error) {
	return ThetaJoinOuter(r1, r2, attrA, value.EQ, attrB)
}

// lifespanOfNulls returns, for a joined tuple, the set of times at which
// the named attribute is null — in the tuple's lifespan and the
// attribute's ALS but with no value. This is the paper's closing
// observation made queryable: outer joins introduce nulls, inner joins do
// not.
func lifespanOfNulls(r *Relation, t *Tuple, attr string) lifespan.Lifespan {
	vls := t.VLS(r.scheme, attr)
	return vls.Minus(t.v[attr].Domain())
}

// NullLifespan is the exported form of lifespanOfNulls.
func NullLifespan(r *Relation, t *Tuple, attr string) lifespan.Lifespan {
	return lifespanOfNulls(r, t, attr)
}
