package core

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestThetaJoinOuterLifespanUnion(t *testing.T) {
	emp := empRelation(t)
	dept := deptRelation(t)
	j, err := ThetaJoinOuter(emp, dept, "DEPT", value.EQ, "DNAME")
	mustHold(t, err)
	// Same pairs as the inner equijoin...
	inner, err := EquiJoin(emp, dept, "DEPT", "DNAME")
	mustHold(t, err)
	if j.Cardinality() != inner.Cardinality() {
		t.Fatalf("outer join pairs %d, inner %d", j.Cardinality(), inner.Cardinality())
	}
	// ...but over the union of lifespans, with nulls outside the
	// contributing tuples' lifespans.
	mb, ok := j.Lookup(`"Mary"`, `"Books"`)
	if !ok {
		t.Fatal("Mary-Books missing")
	}
	// Mary [3,19] ∪ Books [5,19] = [3,19].
	if !mb.Lifespan().Equal(ls("{[3,19]}")) {
		t.Errorf("outer join lifespan = %v, want union {[3,19]}", mb.Lifespan())
	}
	// FLOOR is null over [3,4] (before Books existed).
	if !NullLifespan(j, mb, "FLOOR").Equal(ls("{[3,4]}")) {
		t.Errorf("FLOOR null lifespan = %v", NullLifespan(j, mb, "FLOOR"))
	}
	// SAL is defined over all of Mary's life.
	if !NullLifespan(j, mb, "SAL").IsEmpty() {
		t.Errorf("SAL should have no nulls: %v", NullLifespan(j, mb, "SAL"))
	}
	// The inner join result has NO nulls anywhere (paper: "no nulls
	// result").
	for _, tp := range inner.Tuples() {
		for _, a := range inner.Scheme().Attrs {
			if !NullLifespan(inner, tp, a.Name).IsEmpty() {
				t.Fatalf("inner join introduced a null: %s on %v", a.Name, tp)
			}
		}
	}
}

func TestThetaJoinOuterRequiresSatisfyingTime(t *testing.T) {
	// A pair that never satisfies θ at a shared time does not appear even
	// though lifespans overlap.
	emp := empRelation(t)
	dept := deptRelation(t)
	j, err := ThetaJoinOuter(emp, dept, "DEPT", value.EQ, "DNAME")
	mustHold(t, err)
	if _, ok := j.Lookup(`"John"`, `"Books"`); ok {
		t.Error("John never worked in Books")
	}
	// Errors mirror the inner join's.
	if _, err := ThetaJoinOuter(emp, emp, "DEPT", value.EQ, "DEPT"); err == nil {
		t.Error("shared attributes must fail")
	}
	if _, err := ThetaJoinOuter(emp, dept, "NOPE", value.EQ, "DNAME"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := EquiJoinOuter(emp, dept, "DEPT", "NOPE"); err == nil {
		t.Error("unknown right attribute must fail")
	}
}

func TestOuterJoinEquivalentToSelectIfOfProduct(t *testing.T) {
	// Paper: outer join ≡ SELECT-IF of the Cartesian product.
	emp := empRelation(t)
	dept := deptRelation(t)
	outer, err := EquiJoinOuter(emp, dept, "DEPT", "DNAME")
	mustHold(t, err)
	prod, err := Product(emp, dept)
	mustHold(t, err)
	viaIf, err := SelectIf(prod, Predicate{Attr: "DEPT", Theta: value.EQ, OtherAttr: "DNAME"}, Exists, lifespan.All())
	mustHold(t, err)
	if outer.Cardinality() != viaIf.Cardinality() {
		t.Fatalf("outer join %d pairs, σ-IF(×) %d", outer.Cardinality(), viaIf.Cardinality())
	}
	for _, tp := range outer.Tuples() {
		u, ok := viaIf.lookupTuple(tp)
		if !ok {
			t.Fatalf("pair %s missing from σ-IF route", tp.keyString(outer.Scheme()))
		}
		if !tp.Lifespan().Equal(u.Lifespan()) {
			t.Errorf("lifespan mismatch: %v vs %v", tp.Lifespan(), u.Lifespan())
		}
	}
}

func TestMaterialize(t *testing.T) {
	// A relation stored sparsely at the representation level: SAL only at
	// change points, DEPT as constants.
	full := ls("{[0,99]}")
	s := schema.MustNew("EMPR", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "PRICE", Domain: value.Floats, Lifespan: full, Interp: "linear"},
	)
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("John")).
		SetAt("SAL", 0, value.Int(30000)).
		SetAt("SAL", 5, value.Int(34000)).
		SetAt("PRICE", 0, value.Float(10)).
		SetAt("PRICE", 8, value.Float(18)).
		MustBuild())

	m, err := Materialize(r)
	mustHold(t, err)
	john := m.Tuples()[0]
	// Step interpolation fills SAL.
	for tm, want := range map[int]int64{0: 30000, 3: 30000, 5: 34000, 9: 34000} {
		if v, ok := john.At("SAL", chronon.Time(tm)); !ok || v.AsInt() != want {
			t.Errorf("SAL at %d = %v, want %d", tm, v, want)
		}
	}
	// Linear interpolation fills PRICE.
	if v, ok := john.At("PRICE", 4); !ok || v.AsFloat() != 14 {
		t.Errorf("PRICE at 4 = %v, want 14", v)
	}
	if v, ok := john.At("PRICE", 9); !ok || v.AsFloat() != 18 {
		t.Errorf("PRICE at 9 = %v (carried forward), want 18", v)
	}
	// Total on vls.
	if !john.Value("SAL").Domain().Equal(ls("{[0,9]}")) {
		t.Errorf("materialized SAL domain = %v", john.Value("SAL").Domain())
	}
}

func TestMaterializeDiscreteRequiresTotal(t *testing.T) {
	full := ls("{[0,99]}")
	s := schema.MustNew("R", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full}, // discrete
	)
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, ls("{[0,9]}")).
		Key("K", value.String_("a")).
		SetAt("V", 3, value.Int(1)).
		MustBuild())
	if _, err := Materialize(r); err == nil {
		t.Error("discrete attribute with gaps must fail materialization")
	}
	// A nowhere-defined attribute is fine (nothing to extend).
	r2 := NewRelation(s)
	r2.MustInsert(NewTupleBuilder(s, ls("{[0,9]}")).
		Key("K", value.String_("b")).
		MustBuild())
	m, err := Materialize(r2)
	mustHold(t, err)
	if !m.Tuples()[0].Value("V").IsNowhereDefined() {
		t.Error("empty value must stay empty")
	}
}

func TestMaterializeIdempotentOnTotal(t *testing.T) {
	emp := empRelation(t) // already total step functions
	m, err := Materialize(emp)
	mustHold(t, err)
	if !m.Equal(emp) {
		t.Error("materializing a total relation is the identity")
	}
}

func TestCoalesceValueLifespans(t *testing.T) {
	emp := empRelation(t)
	counts := CoalesceValueLifespans(emp)
	// John: SAL 2 steps; Mary: 1; Ahmed: 2 → 5.
	if counts["SAL"] != 5 {
		t.Errorf("SAL steps = %d, want 5", counts["SAL"])
	}
	// NAME: constants over (possibly gapped) lifespans — John 1, Mary 1,
	// Ahmed 2 (two lifespan intervals).
	if counts["NAME"] != 4 {
		t.Errorf("NAME steps = %d, want 4", counts["NAME"])
	}
}
