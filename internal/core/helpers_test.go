package core

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func ls(s string) lifespan.Lifespan { return lifespan.MustParse(s) }

// empScheme is the paper's running example: EMP(NAME*, SAL, DEPT) over
// the period [0,99].
func empScheme() *schema.Scheme {
	full := ls("{[0,99]}")
	return schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
}

// empRelation builds a small personnel history:
//
//	John:  lifespan [0,9];  SAL 30000 on [0,4], 34000 on [5,9]; DEPT Toys.
//	Mary:  lifespan [3,19]; SAL 40000 throughout; DEPT Shoes then Books at 10.
//	Ahmed: lifespan [0,3] ∪ [8,14] (rehired); SAL 30000 then 31000 at rehire.
func empRelation(t testing.TB) *Relation {
	t.Helper()
	s := empScheme()
	r := NewRelation(s)

	john := NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild()
	mary := NewTupleBuilder(s, ls("{[3,19]}")).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild()
	ahmed := NewTupleBuilder(s, ls("{[0,3],[8,14]}")).
		Key("NAME", value.String_("Ahmed")).
		Set("SAL", 0, 3, value.Int(30000)).
		Set("SAL", 8, 14, value.Int(31000)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Books")).
		MustBuild()

	r.MustInsert(john)
	r.MustInsert(mary)
	r.MustInsert(ahmed)
	if err := r.checkInvariants(); err != nil {
		t.Fatalf("fixture violates invariants: %v", err)
	}
	return r
}

// deptScheme: DEPT relation keyed by DNAME with a FLOOR attribute.
func deptScheme() *schema.Scheme {
	full := ls("{[0,99]}")
	return schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

func deptRelation(t testing.TB) *Relation {
	t.Helper()
	s := deptScheme()
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, ls("{[0,19]}")).
		Key("DNAME", value.String_("Toys")).
		Set("FLOOR", 0, 19, value.Int(1)).
		MustBuild())
	r.MustInsert(NewTupleBuilder(s, ls("{[0,19]}")).
		Key("DNAME", value.String_("Shoes")).
		Set("FLOOR", 0, 9, value.Int(2)).
		Set("FLOOR", 10, 19, value.Int(3)).
		MustBuild())
	r.MustInsert(NewTupleBuilder(s, ls("{[5,19]}")).
		Key("DNAME", value.String_("Books")).
		Set("FLOOR", 5, 19, value.Int(4)).
		MustBuild())
	return r
}

// singleTuple extracts the only tuple of a relation, failing otherwise.
func singleTuple(t testing.TB, r *Relation) *Tuple {
	t.Helper()
	if r.Cardinality() != 1 {
		t.Fatalf("expected exactly one tuple, got %d:\n%s", r.Cardinality(), r)
	}
	return r.Tuples()[0]
}

// mustHold fails the test if err is non-nil.
func mustHold(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

var now = chronon.Time(0)
