package core

import (
	"fmt"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file exports the index-aware fast paths of the algebra. The
// operators in unary.go and join.go are faithful linear-scan
// transliterations of the paper's definitions; the entry points here
// compute the same results but accept an externally supplied candidate
// set (or probe function), so that a query engine holding lifespan or
// key indexes (internal/engine) can skip the tuples an index has already
// ruled out. Every function documents the soundness condition its
// candidate set must satisfy; the equivalence is property-tested against
// the naive operators in internal/engine.

// Restrict returns t|L — the tuple restricted to lifespan L, or nil when
// nothing of the tuple survives. It is the exported form of the
// restriction used by TIME-SLICE and SELECT-WHEN.
func (t *Tuple) Restrict(l lifespan.Lifespan) *Tuple { return t.restrict(l) }

// CondWhen evaluates a compound condition to its satisfaction lifespan
// for t within scope — the set of times at which the condition holds.
func CondWhen(c Condition, t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	return c.when(t, scope)
}

// CondCheck validates a condition's attribute references against a
// scheme before a plan begins streaming tuples through it.
func CondCheck(c Condition, s *schema.Scheme) error { return c.check(s) }

// JoinPair is the per-pair θ-join kernel: it computes the agreement
// lifespan of t1(attrA) θ t2(attrB) and, if non-empty, the concatenated
// tuple on the join scheme rs. Returns (nil, nil) when the pair does not
// join. Index lookup joins call this once per surviving candidate pair.
func JoinPair(rs *schema.Scheme, t1, t2 *Tuple, attrA string, th value.Theta, attrB string) (*Tuple, error) {
	nl, err := thetaTimes(t1.Value(attrA), t2.Value(attrB), th)
	if err != nil {
		return nil, err
	}
	return concatTuple(rs, t1, t2, nl)
}

// TimesliceStaticOver is TimesliceStatic computed over a candidate
// subset. Soundness: cand must contain every tuple of r whose lifespan
// overlaps L (tuples missing L entirely contribute nothing); a lifespan
// interval index provides exactly that set in O(log n + k).
func TimesliceStaticOver(r *Relation, L lifespan.Lifespan, cand []*Tuple) (*Relation, error) {
	out := make([]*Tuple, 0, len(cand))
	for _, t := range cand {
		if nt := t.restrict(L); nt != nil {
			out = append(out, nt)
		}
	}
	// Restriction keeps each tuple's (unique, constant) key, so the
	// coalesced construction cannot hit a duplicate.
	return NewRelationFromTuples(r.scheme, out)
}

// SelectWhenCondOver is SelectWhenCond computed over a candidate subset.
// Soundness: cand must contain every tuple for which the condition can
// hold at some time of L ∩ t.l — e.g. the tuples overlapping L (interval
// index), or the tuples whose indexed attribute can satisfy a required
// equality conjunct (attribute index plus its varying overflow).
func SelectWhenCondOver(r *Relation, c Condition, L lifespan.Lifespan, cand []*Tuple) (*Relation, error) {
	if err := c.check(r.scheme); err != nil {
		return nil, err
	}
	out := make([]*Tuple, 0, len(cand))
	for _, t := range cand {
		scope := t.l.Intersect(L)
		holds, err := c.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-when %s: %w", c, err)
		}
		if nt := t.restrict(holds); nt != nil {
			out = append(out, nt)
		}
	}
	return NewRelationFromTuples(r.scheme, out)
}

// SelectIfCondOver is SelectIfCond (existential form only) computed over
// a candidate subset. Soundness: as for SelectWhenCondOver. The
// universal (∀) form is deliberately absent: a tuple whose scope L ∩ t.l
// is empty satisfies ∀ vacuously and is returned whole, so no candidate
// pruning is sound for it — planners must scan.
func SelectIfCondOver(r *Relation, c Condition, L lifespan.Lifespan, cand []*Tuple) (*Relation, error) {
	if err := c.check(r.scheme); err != nil {
		return nil, err
	}
	out := make([]*Tuple, 0, len(cand))
	for _, t := range cand {
		scope := t.l.Intersect(L)
		holds, err := c.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-if %s: %w", c, err)
		}
		if !holds.IsEmpty() {
			out = append(out, t)
		}
	}
	return NewRelationFromTuples(r.scheme, out)
}

// EquiJoinProbe is EquiJoin evaluated as an index lookup join: instead
// of the nested loop over r2, probe(t1) supplies the r2 tuples whose
// attrB value could equal t1's attrA value at some time. Soundness:
// probe must return a superset of the r2 tuples t2 with a non-empty
// agreement lifespan for (t1, t2); pairs it omits must provably never
// agree (e.g. both values constant and unequal).
func EquiJoinProbe(r1, r2 *Relation, attrA, attrB string, probe func(t1 *Tuple) []*Tuple) (*Relation, error) {
	return EquiJoinProbeOver(r1, r2, attrA, attrB, r1.Tuples(), probe)
}

// EquiJoinProbeOver is EquiJoinProbe streaming an externally supplied
// tuple snapshot of r1 instead of its live state — the form a
// snapshot-pinned query plan uses so the streamed side reflects the
// pinned version even while writers append to r1. Soundness: ts must
// be a consistent snapshot of r1's tuples (e.g. core.RelVersion's
// pinned slice), and probe as for EquiJoinProbe.
func EquiJoinProbeOver(r1, r2 *Relation, attrA, attrB string, ts []*Tuple, probe func(t1 *Tuple) []*Tuple) (*Relation, error) {
	if !r1.scheme.DisjointAttrs(r2.scheme) {
		return nil, fmt.Errorf("core: equi-join probe: schemes share attributes; rename first")
	}
	if !r1.scheme.HasAttr(attrA) {
		return nil, fmt.Errorf("core: equi-join probe: %s not in %s", attrA, r1.scheme.Name)
	}
	if !r2.scheme.HasAttr(attrB) {
		return nil, fmt.Errorf("core: equi-join probe: %s not in %s", attrB, r2.scheme.Name)
	}
	rs, err := joinScheme(r1, r2)
	if err != nil {
		return nil, err
	}
	var out []*Tuple
	for _, t1 := range ts {
		f1 := t1.Value(attrA)
		if f1.IsNowhereDefined() {
			continue
		}
		for _, t2 := range probe(t1) {
			nt, err := JoinPair(rs, t1, t2, attrA, value.EQ, attrB)
			if err != nil {
				return nil, fmt.Errorf("core: equi-join probe: %w", err)
			}
			if nt != nil {
				out = append(out, nt)
			}
		}
	}
	// Each surviving pair concatenates two distinct keys, and probe
	// candidates are deduplicated per streamed tuple, so the joined keys
	// are unique; the coalesced construction still verifies it.
	return NewRelationFromTuples(rs, out)
}
