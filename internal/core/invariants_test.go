package core

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/rel"
	"repro/internal/value"
)

// Every algebra operator must produce relations satisfying the paper's
// structural conditions: unique constant keys covering their vls, values
// inside vls, non-empty tuple lifespans. These tests push randomized
// inputs through every operator and re-verify the invariants on the
// outputs — failure injection for the construction paths that bypass
// NewTuple's checks.

func checkedInvariants(t *testing.T, label string, r *Relation) {
	t.Helper()
	if err := r.checkInvariants(); err != nil {
		t.Fatalf("%s violates invariants: %v\n%s", label, err, r)
	}
}

func TestOperatorsPreserveInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		world := genHist(seed, 6)
		checkedInvariants(t, "generator", world)

		r1, r2 := genHistPair(seed)
		p := randomPredicate(seed)
		L := randomLS(seed)

		if out, err := UnionMerge(r1, r2); err == nil {
			checkedInvariants(t, "union-merge", out)
		} else {
			t.Fatalf("seed %d: union-merge of compatible slices failed: %v", seed, err)
		}
		if out, err := IntersectMerge(r1, r2); err == nil {
			checkedInvariants(t, "intersect-merge", out)
		}
		if out, err := DiffMerge(r1, r2); err == nil {
			checkedInvariants(t, "diff-merge", out)
		}
		if out, err := SelectIf(world, p, Exists, L); err == nil {
			checkedInvariants(t, "select-if", out)
		}
		if out, err := SelectWhen(world, p, L); err == nil {
			checkedInvariants(t, "select-when", out)
		}
		if out, err := TimesliceStatic(world, L); err == nil {
			checkedInvariants(t, "timeslice", out)
		}
		for _, attrs := range [][]string{{"NAME", "SAL"}, {"SAL"}, {"DEPT"}, {"SAL", "DEPT"}} {
			if out, err := Project(world, attrs...); err == nil {
				checkedInvariants(t, "project "+attrs[0], out)
			} else {
				t.Fatalf("seed %d: project %v failed: %v", seed, attrs, err)
			}
		}
		if rn, err := world.Rename("b"); err == nil {
			checkedInvariants(t, "rename", rn)
			if out, err := ThetaJoin(world, rn, "SAL", value.GT, "b.SAL"); err == nil {
				checkedInvariants(t, "theta-join", out)
			} else {
				t.Fatalf("seed %d: theta-join failed: %v", seed, err)
			}
			if out, err := ThetaJoinOuter(world, rn, "SAL", value.GT, "b.SAL"); err == nil {
				checkedInvariants(t, "outer theta-join", out)
			} else {
				t.Fatalf("seed %d: outer theta-join failed: %v", seed, err)
			}
			if out, err := Product(world, rn); err == nil {
				checkedInvariants(t, "product", out)
			} else {
				t.Fatalf("seed %d: product failed: %v", seed, err)
			}
		}
		if out, err := Materialize(world); err == nil {
			checkedInvariants(t, "materialize", out)
		} else {
			t.Fatalf("seed %d: materialize failed: %v", seed, err)
		}
	}
}

func TestProjectSnapshotwiseCorrect(t *testing.T) {
	// The duplicate-elimination semantics of key-dropping projection:
	// at every time s, Snapshot(π_X(r), s) = π_X(Snapshot(r, s)).
	for seed := int64(0); seed < 25; seed++ {
		world := genHist(seed, 5)
		proj, err := Project(world, "DEPT", "SAL")
		mustHold(t, err)
		When(world).Each(func(s chTime) bool {
			hs, err := Snapshot(proj, s)
			mustHold(t, err)
			ws, err := Snapshot(world, s)
			mustHold(t, err)
			// Classical projection of the world snapshot.
			cs, err := projectClassical(ws, "DEPT", "SAL")
			mustHold(t, err)
			if !hs.Equal(cs) {
				t.Fatalf("seed %d time %v: snapshot of projection differs from projection of snapshot:\n%s\nvs\n%s",
					seed, s, hs, cs)
			}
			return true
		})
	}
}

// chTime aliases chronon.Time for the Each callback above.
type chTime = chronon.Time

// projectClassical projects a classical snapshot relation, reusing the
// rel package.
func projectClassical(r *rel.Relation, attrs ...string) (*rel.Relation, error) {
	return rel.Project(r, attrs...)
}
