package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// joinScheme builds R3 = <A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>,
// the result scheme of every JOIN flavor (Section 4.6).
func joinScheme(r1, r2 *Relation) (*schema.Scheme, error) {
	return schema.ConcatScheme(r1.scheme, r2.scheme, r1.scheme.Name+"⋈"+r2.scheme.Name)
}

// concatTuple builds the joined tuple over lifespan nl: t1's attributes
// and t2's attributes, all restricted to nl, with constant keys extended
// to cover their vls in the result scheme. Shared attributes (natural
// join) take t1's restriction — the definitions guarantee t1 and t2 agree
// on them over nl. Returns nil if nl is empty.
func concatTuple(rs *schema.Scheme, t1, t2 *Tuple, nl lifespan.Lifespan) (*Tuple, error) {
	if nl.IsEmpty() {
		return nil, nil
	}
	nv := make(map[string]tfunc.Func, len(t1.v)+len(t2.v))
	for a, f := range t2.v {
		nv[a] = f.Restrict(nl)
	}
	for a, f := range t1.v {
		nv[a] = f.Restrict(nl)
	}
	// Keys of both operands identify the joined object; their constant
	// values must cover the joined tuple's whole key vls.
	for _, k := range rs.Key {
		nv[k] = extendConstant(nv[k], nl.Intersect(rs.ALS(k)))
	}
	return NewTuple(rs, nl, nv)
}

// ThetaJoin implements r1 JOIN r2 [A θ B] (Section 4.6):
//
//	t.l = { s | t_r1(A)(s) θ t_r2(B)(s) },
//	t.v(R1−A) = t_r1.v(R1−A)|t.l, t.v(R2−B) = t_r2.v(R2−B)|t.l,
//	t.v(A) = t_r1.v(A)|t.l, t.v(B) = t_r2.v(B)|t.l.
//
// Two tuples join over exactly those times at which their A and B values
// stand in the θ relationship; per the paper's closing discussion this is
// "equivalent to the appropriate SELECT-WHEN of the Cartesian product,
// and thus no nulls result". Operand schemes must have disjoint
// attribute sets (rename first if needed).
func ThetaJoin(r1, r2 *Relation, attrA string, th value.Theta, attrB string) (*Relation, error) {
	if !r1.scheme.DisjointAttrs(r2.scheme) {
		return nil, fmt.Errorf("core: theta-join: schemes share attributes; rename first")
	}
	if !r1.scheme.HasAttr(attrA) {
		return nil, fmt.Errorf("core: theta-join: %s not in %s", attrA, r1.scheme.Name)
	}
	if !r2.scheme.HasAttr(attrB) {
		return nil, fmt.Errorf("core: theta-join: %s not in %s", attrB, r2.scheme.Name)
	}
	rs, err := joinScheme(r1, r2)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	ts2 := r2.Tuples()
	for _, t1 := range r1.Tuples() {
		f1 := t1.Value(attrA)
		if f1.IsNowhereDefined() {
			continue
		}
		for _, t2 := range ts2 {
			nl, err := thetaTimes(f1, t2.Value(attrB), th)
			if err != nil {
				return nil, fmt.Errorf("core: theta-join: %w", err)
			}
			nt, err := concatTuple(rs, t1, t2, nl)
			if err != nil {
				return nil, fmt.Errorf("core: theta-join: %w", err)
			}
			if nt == nil {
				continue
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// thetaTimes computes { s | f(s) θ g(s) } over the joint domain of two
// temporal functions, walking step pairs rather than chronons.
func thetaTimes(f, g tfunc.Func, th value.Theta) (lifespan.Lifespan, error) {
	joint := f.Domain().Intersect(g.Domain())
	if joint.IsEmpty() {
		return lifespan.Empty(), nil
	}
	var ivs []chronon.Interval
	var evalErr error
	fr := f.Restrict(joint)
	fr.Steps(func(iv chronon.Interval, v value.Value) bool {
		gr := g.Restrict(lifespan.New(iv))
		gr.Steps(func(giv chronon.Interval, w value.Value) bool {
			ok, err := th.Apply(v, w)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				ivs = append(ivs, giv)
			}
			return true
		})
		return evalErr == nil
	})
	if evalErr != nil {
		return lifespan.Empty(), evalErr
	}
	return lifespan.New(ivs...), nil
}

// EquiJoin implements r1 [A = B] r2, the special case of θ-JOIN the paper
// simplifies to:
//
//	t.l = vls(t_r1,A,R1) ∩ vls(t_r2,B,R2) restricted to agreement,
//	t.v(A) = t.v(B) = t_r1.v(A) ∩ t_r2.v(B).
//
// Implemented as ThetaJoin with θ being equality.
func EquiJoin(r1, r2 *Relation, attrA, attrB string) (*Relation, error) {
	return ThetaJoin(r1, r2, attrA, value.EQ, attrB)
}

// NaturalJoin implements r1 NATURAL-JOIN r2 (Section 4.6): with X = A1 ∩
// A2 the common attributes,
//
//	t.l = vls(t_r1,X,R1) ∩ vls(t_r2,X,R2) at times of agreement on X,
//	t.v(R1) = t_r1.v(R1)|t.l, t.v(R2) = t_r2.v(R2)|t.l.
//
// "The natural join is just a projection of the equijoin": shared
// attributes appear once in the result.
func NaturalJoin(r1, r2 *Relation) (*Relation, error) {
	common := r1.scheme.CommonAttrs(r2.scheme)
	if len(common) == 0 {
		return nil, fmt.Errorf("core: natural-join: %s and %s share no attributes",
			r1.scheme.Name, r2.scheme.Name)
	}
	rs, err := joinScheme(r1, r2)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	ts2 := r2.Tuples()
	for _, t1 := range r1.Tuples() {
		for _, t2 := range ts2 {
			// Agreement lifespan: times where every common attribute is
			// defined in both and equal.
			nl := t1.l.Intersect(t2.l)
			for _, x := range common {
				agree, err := thetaTimes(t1.Value(x), t2.Value(x), value.EQ)
				if err != nil {
					return nil, fmt.Errorf("core: natural-join: %w", err)
				}
				nl = nl.Intersect(agree)
			}
			nt, err := concatTuple(rs, t1, t2, nl)
			if err != nil {
				return nil, fmt.Errorf("core: natural-join: %w", err)
			}
			if nt == nil {
				continue
			}
			if err := out.InsertMerging(nt); err != nil {
				return nil, fmt.Errorf("core: natural-join: %w", err)
			}
		}
	}
	return out, nil
}

// TimeJoin implements r1 [@A] r2 (Section 4.6), defined for a time-valued
// attribute A of R1 (DOM(A) ⊆ TT). "Essentially such a JOIN serves as a
// join of dynamic TIME-SLICEs of both relations": each r1 tuple's image
// of t(A) — the set of times its A attribute refers to — slices both the
// r1 tuple and each r2 tuple, and the pair joins over the intersection of
// the sliced lifespans.
func TimeJoin(r1, r2 *Relation, attr string) (*Relation, error) {
	a, ok := r1.scheme.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("core: time-join: unknown attribute %s", attr)
	}
	if !a.TimeValued() {
		return nil, fmt.Errorf("core: time-join: attribute %s is %s-valued, not time-valued",
			attr, a.Domain.Kind)
	}
	if !r1.scheme.DisjointAttrs(r2.scheme) {
		return nil, fmt.Errorf("core: time-join: schemes share attributes; rename first")
	}
	rs, err := joinScheme(r1, r2)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	ts2 := r2.Tuples()
	for _, t1 := range r1.Tuples() {
		img, err := t1.Value(attr).TimeImage()
		if err != nil {
			return nil, fmt.Errorf("core: time-join: %w", err)
		}
		if img.IsEmpty() {
			continue
		}
		for _, t2 := range ts2 {
			nl := img.Intersect(t1.l).Intersect(t2.l)
			nt, err := concatTuple(rs, t1, t2, nl)
			if err != nil {
				return nil, fmt.Errorf("core: time-join: %w", err)
			}
			if nt == nil {
				continue
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
