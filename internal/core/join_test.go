package core

import (
	"testing"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestEquiJoinEmpDept(t *testing.T) {
	// EMP ⋈ DEPTREL on DEPT = DNAME: each (employee, department) pair
	// joins over exactly the times the employee worked in that
	// department (and both tuples exist).
	emp := empRelation(t)
	dept := deptRelation(t)
	j, err := EquiJoin(emp, dept, "DEPT", "DNAME")
	mustHold(t, err)
	// Expected pairs: John-Toys [0,9], Mary-Shoes [3,9], Mary-Books
	// [10,19], Ahmed-Toys [0,3], Ahmed-Books [8,14].
	if j.Cardinality() != 5 {
		t.Fatalf("cardinality = %d, want 5\n%s", j.Cardinality(), j)
	}
	check := func(name, dname, want string) {
		t.Helper()
		tp, ok := j.Lookup(`"`+name+`"`, `"`+dname+`"`)
		if !ok {
			t.Fatalf("pair %s-%s missing", name, dname)
		}
		if !tp.Lifespan().Equal(ls(want)) {
			t.Errorf("%s-%s lifespan = %v, want %s", name, dname, tp.Lifespan(), want)
		}
	}
	check("John", "Toys", "{[0,9]}")
	check("Mary", "Shoes", "{[3,9]}")
	check("Mary", "Books", "{[10,19]}")
	check("Ahmed", "Toys", "{[0,3]}")
	check("Ahmed", "Books", "{[8,14]}")

	// Joined values restricted to the join lifespan — no nulls (paper
	// Section 5: JOIN ≡ SELECT-WHEN of the product, "thus no nulls
	// result").
	mb, _ := j.Lookup(`"Mary"`, `"Books"`)
	if _, ok := mb.At("FLOOR", 5); ok {
		t.Error("values before the join lifespan must be undefined")
	}
	if v, _ := mb.At("FLOOR", 12); v.AsInt() != 4 {
		t.Error("joined FLOOR value wrong")
	}
	if v, _ := mb.At("SAL", 12); v.AsInt() != 40000 {
		t.Error("joined SAL value wrong")
	}
}

func TestThetaJoinGT(t *testing.T) {
	// Join employees to employees: pairs (a,b) over times when a earned
	// strictly more than b.
	emp := empRelation(t)
	b, err := emp.Rename("b")
	mustHold(t, err)
	j, err := ThetaJoin(emp, b, "SAL", value.GT, "b.SAL")
	mustHold(t, err)
	// Mary (40000) out-earns everyone whenever both exist:
	//   Mary>John over [3,9], Mary>Ahmed over [3]∪[8,14]∩... = [3,3]∪[8,14]∩[3,19]
	mj, ok := j.Lookup(`"Mary"`, `"John"`)
	if !ok || !mj.Lifespan().Equal(ls("{[3,9]}")) {
		t.Errorf("Mary>John = %v", mj)
	}
	ma, ok := j.Lookup(`"Mary"`, `"Ahmed"`)
	if !ok || !ma.Lifespan().Equal(ls("{3,[8,14]}")) {
		t.Errorf("Mary>Ahmed = %v", ma)
	}
	// John>Ahmed over times both defined and 30000>30000 false, then
	// 34000>31000 on [8,9].
	ja, ok := j.Lookup(`"John"`, `"Ahmed"`)
	if !ok || !ja.Lifespan().Equal(ls("{[8,9]}")) {
		t.Errorf("John>Ahmed = %v", ja)
	}
	// Nobody out-earns Mary.
	if _, ok := j.Lookup(`"John"`, `"Mary"`); ok {
		t.Error("John never out-earns Mary")
	}
}

func TestThetaJoinErrors(t *testing.T) {
	emp := empRelation(t)
	dept := deptRelation(t)
	if _, err := ThetaJoin(emp, emp, "SAL", value.GT, "SAL"); err == nil {
		t.Error("shared attributes must fail")
	}
	if _, err := ThetaJoin(emp, dept, "NOPE", value.EQ, "DNAME"); err == nil {
		t.Error("unknown left attribute must fail")
	}
	if _, err := ThetaJoin(emp, dept, "DEPT", value.EQ, "NOPE"); err == nil {
		t.Error("unknown right attribute must fail")
	}
	if _, err := ThetaJoin(emp, dept, "SAL", value.LT, "DNAME"); err == nil {
		t.Error("incomparable kinds must fail")
	}
}

func TestNaturalJoin(t *testing.T) {
	// EMP(NAME,SAL,DEPT) ⋈ MGR(NAME,BONUS): common attribute NAME.
	full := ls("{[0,99]}")
	ms := schema.MustNew("MGR", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full},
	)
	mgr := NewRelation(ms)
	mgr.MustInsert(NewTupleBuilder(ms, ls("{[5,12]}")).
		Key("NAME", value.String_("John")).
		Set("BONUS", 5, 12, value.Int(500)).
		MustBuild())
	mgr.MustInsert(NewTupleBuilder(ms, ls("{[0,19]}")).
		Key("NAME", value.String_("Mary")).
		Set("BONUS", 0, 19, value.Int(900)).
		MustBuild())

	emp := empRelation(t)
	j, err := NaturalJoin(emp, mgr)
	mustHold(t, err)
	// John: emp [0,9] ∩ mgr [5,12] = [5,9]; Mary: [3,19] ∩ [0,19] = [3,19].
	if j.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2\n%s", j.Cardinality(), j)
	}
	john, _ := j.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[5,9]}")) {
		t.Errorf("John ⋈ lifespan = %v", john.Lifespan())
	}
	// NAME appears once; both sides' other attributes present.
	if len(j.Scheme().Attrs) != 4 {
		t.Errorf("natural join attrs = %v", j.Scheme().AttrNames())
	}
	if v, _ := john.At("SAL", 7); v.AsInt() != 34000 {
		t.Error("left value lost")
	}
	if v, _ := john.At("BONUS", 7); v.AsInt() != 500 {
		t.Error("right value lost")
	}
	if _, err := NaturalJoin(emp, deptRelation(t)); err == nil {
		t.Error("no shared attributes must fail")
	}
}

func TestNaturalJoinCommutes(t *testing.T) {
	// Section 5 claims "the commutativity of the natural join" carries
	// over to HRDM.
	full := ls("{[0,99]}")
	ms := schema.MustNew("MGR", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full},
	)
	mgr := NewRelation(ms)
	mgr.MustInsert(NewTupleBuilder(ms, ls("{[5,12]}")).
		Key("NAME", value.String_("John")).
		Set("BONUS", 5, 12, value.Int(500)).
		MustBuild())
	emp := empRelation(t)
	ab, err := NaturalJoin(emp, mgr)
	mustHold(t, err)
	ba, err := NaturalJoin(mgr, emp)
	mustHold(t, err)
	if !ab.Equal(ba) {
		t.Errorf("natural join must commute:\n%s\nvs\n%s", ab, ba)
	}
}

func TestTimeJoin(t *testing.T) {
	// SHIPMENT(ID*, SHIPDATE: time-valued) time-joined with DEPTREL:
	// pairs each shipment with department states current at the times the
	// shipment's SHIPDATE attribute refers to.
	full := ls("{[0,99]}")
	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := NewRelation(ss)
	// Shipment 1 exists [0,19]; its ship date attribute points at time 7.
	ship.MustInsert(NewTupleBuilder(ss, ls("{[0,19]}")).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 19, value.TimeVal(7)).
		MustBuild())
	// Shipment 2 refers to time 50 — outside DEPTREL lifespans.
	ship.MustInsert(NewTupleBuilder(ss, ls("{[0,19]}")).
		Key("ID", value.Int(2)).
		Set("SHIPDATE", 0, 19, value.TimeVal(50)).
		MustBuild())

	dept := deptRelation(t)
	j, err := TimeJoin(ship, dept, "SHIPDATE")
	mustHold(t, err)
	// Shipment 1 at time 7 joins all three departments alive at 7 (Toys,
	// Shoes, Books[5,19]); shipment 2 joins nothing.
	if j.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3\n%s", j.Cardinality(), j)
	}
	for _, dname := range []string{"Toys", "Shoes", "Books"} {
		tp, ok := j.Lookup("1", `"`+dname+`"`)
		if !ok {
			t.Fatalf("pair 1-%s missing", dname)
		}
		if !tp.Lifespan().Equal(ls("{7}")) {
			t.Errorf("1-%s lifespan = %v, want {7}", dname, tp.Lifespan())
		}
		if v, ok := tp.At("FLOOR", 7); !ok || !v.IsValid() {
			t.Errorf("1-%s FLOOR missing at 7", dname)
		}
	}
	// Errors.
	if _, err := TimeJoin(ship, dept, "NOPE"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := TimeJoin(dept, ship, "FLOOR"); err == nil {
		t.Error("non-time-valued attribute must fail")
	}
}

func TestJoinEquivalenceToSelectWhenOfProduct(t *testing.T) {
	// Paper Section 5: "we have defined the JOIN operations ... to be
	// equivalent to the appropriate SELECT-WHEN of the Cartesian
	// product". Verify θ-join = σ-WHEN_{AθB}(r1 × r2) on lifespans and
	// values, modulo the null-bearing product tuples that σ-WHEN trims.
	emp := empRelation(t)
	dept := deptRelation(t)
	viaJoin, err := EquiJoin(emp, dept, "DEPT", "DNAME")
	mustHold(t, err)
	prod, err := Product(emp, dept)
	mustHold(t, err)
	viaProduct, err := SelectWhen(prod, Predicate{Attr: "DEPT", Theta: value.EQ, OtherAttr: "DNAME"}, lifespan.All())
	mustHold(t, err)
	if viaJoin.Cardinality() != viaProduct.Cardinality() {
		t.Fatalf("join %d tuples, select-when of product %d", viaJoin.Cardinality(), viaProduct.Cardinality())
	}
	for _, tp := range viaJoin.Tuples() {
		u, ok := viaProduct.lookupTuple(tp)
		if !ok {
			t.Fatalf("pair %s missing from product route", tp.keyString(viaJoin.Scheme()))
		}
		if !tp.Lifespan().Equal(u.Lifespan()) {
			t.Errorf("lifespan mismatch for %s: %v vs %v", tp.keyString(viaJoin.Scheme()), tp.Lifespan(), u.Lifespan())
		}
	}
}

func TestTimeJoinEquivalesDynamicSliceJoin(t *testing.T) {
	// "Essentially such a JOIN serves as a join of dynamic TIME-SLICEs of
	// both relations": r1[@A]r2 has the same pairs and lifespans as
	// slicing r1 by A's image per tuple and intersecting with r2 tuples.
	full := ls("{[0,99]}")
	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := NewRelation(ss)
	ship.MustInsert(NewTupleBuilder(ss, ls("{[0,19]}")).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 9, value.TimeVal(7)).
		Set("SHIPDATE", 10, 19, value.TimeVal(12)).
		MustBuild())
	dept := deptRelation(t)
	tj, err := TimeJoin(ship, dept, "SHIPDATE")
	mustHold(t, err)
	// Image of SHIPDATE = {7,12}; Toys alive at both → lifespan {7,12}.
	tp, ok := tj.Lookup("1", `"Toys"`)
	if !ok || !tp.Lifespan().Equal(ls("{7,12}")) {
		t.Errorf("time-join Toys = %v", tp)
	}
	// Equivalent route: dynamic-slice ship, then product and restrict.
	sliced, err := TimesliceDynamic(ship, "SHIPDATE")
	mustHold(t, err)
	st := singleTuple(t, sliced)
	if !st.Lifespan().Equal(ls("{7,12}")) {
		t.Fatalf("dynamic slice lifespan = %v", st.Lifespan())
	}
	for _, dtp := range dept.Tuples() {
		wantLS := st.Lifespan().Intersect(dtp.Lifespan())
		got, ok := tj.Lookup("1", dtp.KeyValue("DNAME").String())
		if wantLS.IsEmpty() {
			if ok {
				t.Errorf("pair with empty intersection must not join: %v", got)
			}
			continue
		}
		if !ok || !got.Lifespan().Equal(wantLS) {
			t.Errorf("time-join pair lifespan = %v, want %v", got, wantLS)
		}
	}
}
