package core

import (
	"testing"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// pairScheme is a two-attribute string key scheme for collision tests.
func pairScheme() *schema.Scheme {
	full := lifespan.Interval(0, 99)
	return schema.MustNew("PAIR", []string{"A", "B"},
		schema.Attribute{Name: "A", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "B", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "PAYLOAD", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

// TestEncodeKeyInjective is the regression for the bare-'|' join: under
// the old encoding, raw parts ("a|b","c") and ("a","b|c") collapsed to
// the same canonical string. Tuple key values reach the encoder through
// strconv.Quote (which happened to keep the old join injective), but
// Relation.Lookup accepts arbitrary caller strings, and the injectivity
// of the index encoding should not lean on a rendering detail defined
// two packages away — it now holds for any parts by construction.
func TestEncodeKeyInjective(t *testing.T) {
	collisions := [][2][]string{
		{{`a|b`, `c`}, {`a`, `b|c`}},     // the motivating case
		{{`a`, `b|c|d`}, {`a|b`, `c|d`}}, // separator at different splits
		{{`a\`, `b`}, {`a`, `\b`}},       // escape char near the boundary
		{{`a\|b`, `c`}, {`a\`, `|b|c`}},  // escapes and separators mixed
		{{``, `|`}, {`|`, ``}},           // empty parts
	}
	for _, c := range collisions {
		if encodeKey(c[0]) == encodeKey(c[1]) {
			t.Errorf("encodeKey%v and encodeKey%v collide: %q", c[0], c[1], encodeKey(c[0]))
		}
	}
	// Same parts must keep encoding equal (determinism).
	if encodeKey([]string{`a|b`, `c`}) != encodeKey([]string{`a|b`, `c`}) {
		t.Fatal("encodeKey is not deterministic")
	}
}

// TestPipeBearingKeys drives the full relation path with '|'-bearing
// string keys: inserts that used to collide must coexist, and Lookup
// must distinguish them.
func TestPipeBearingKeys(t *testing.T) {
	rs := pairScheme()
	r := NewRelation(rs)
	mk := func(a, b string, pay int64) *Tuple {
		return NewTupleBuilder(rs, lifespan.Interval(0, 9)).
			Key("A", value.String_(a)).
			Key("B", value.String_(b)).
			Set("PAYLOAD", 0, 9, value.Int(pay)).
			MustBuild()
	}
	if err := r.Insert(mk(`x|y`, `z`, 1)); err != nil {
		t.Fatalf("insert (x|y, z): %v", err)
	}
	if err := r.Insert(mk(`x`, `y|z`, 2)); err != nil {
		t.Fatalf("insert (x, y|z) must not collide with (x|y, z): %v", err)
	}
	if err := r.Insert(mk(`x`, `y`, 3)); err != nil {
		t.Fatalf("insert (x, y): %v", err)
	}
	if r.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", r.Cardinality())
	}
	// Lookup takes each key value's canonical rendering separately and
	// must resolve each tuple to its own payload.
	for _, c := range []struct {
		a, b string
		pay  int64
	}{{`x|y`, `z`, 1}, {`x`, `y|z`, 2}, {`x`, `y`, 3}} {
		tp, ok := r.Lookup(value.String_(c.a).String(), value.String_(c.b).String())
		if !ok {
			t.Fatalf("Lookup(%q, %q) not found", c.a, c.b)
		}
		v, _ := tp.At("PAYLOAD", 0)
		if v.AsInt() != c.pay {
			t.Fatalf("Lookup(%q, %q) resolved payload %d, want %d", c.a, c.b, v.AsInt(), c.pay)
		}
	}
	// A genuine duplicate is still rejected.
	if err := r.Insert(mk(`x|y`, `z`, 9)); err == nil {
		t.Fatal("duplicate (x|y, z) accepted")
	}
	// And backslash-bearing keys round-trip too.
	if err := r.Insert(mk(`x\`, `y`, 4)); err != nil {
		t.Fatalf(`insert (x\, y): %v`, err)
	}
	if err := r.Insert(mk(`x`, `\y`, 5)); err != nil {
		t.Fatalf(`insert (x, \y) must not collide with (x\, y): %v`, err)
	}
}
