package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file property-checks the algebraic laws the paper claims carry
// over to the historical algebra (Section 5): commutativity of select,
// distribution of select over the binary set-theoretic operators,
// commutativity of TIME-SLICE with both flavors of SELECT, distribution
// of TIME-SLICE over the set operators, and commutativity of the natural
// join (tested in join_test.go on fixtures, here on random instances).

// genHist builds a random historical relation on the shared EMP-like
// scheme: up to n objects, each with a possibly gapped lifespan inside
// [0,29] and step-valued SAL/DEPT histories.
func genHist(seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	s := empScheme()
	r := NewRelation(s)
	for i := 0; i < n; i++ {
		// Lifespan: one or two intervals in [0,29].
		lo := chronon.Time(rng.Intn(15))
		hi := lo + chronon.Time(rng.Intn(8))
		ls := lifespan.Interval(lo, hi)
		if rng.Intn(2) == 0 {
			lo2 := hi + 2 + chronon.Time(rng.Intn(5))
			ls = ls.Union(lifespan.Interval(lo2, lo2+chronon.Time(rng.Intn(6))))
		}
		b := NewTupleBuilder(s, ls)
		b.Key("NAME", value.String_(fmt.Sprintf("emp%d", i)))
		// Piecewise SAL and DEPT over the lifespan intervals.
		for _, iv := range ls.Intervals() {
			t := iv.Lo
			for t <= iv.Hi {
				seg := chronon.Time(rng.Intn(4)) + 1
				end := t + seg - 1
				if end > iv.Hi {
					end = iv.Hi
				}
				b.Set("SAL", t, end, value.Int(int64(28000+1000*rng.Intn(5))))
				b.Set("DEPT", t, end, value.String_([]string{"Toys", "Shoes", "Books"}[rng.Intn(3)]))
				t = end + 1
			}
		}
		r.MustInsert(b.MustBuild())
	}
	return r
}

// genHistPair builds two merge-compatible random relations whose shared
// objects carry identical values on overlapping times (so merge variants
// are defined): both are slices of one "world" relation.
func genHistPair(seed int64) (*Relation, *Relation) {
	world := genHist(seed, 6)
	cutLo := chronon.Time(seed % 12)
	a, err := TimesliceStatic(world, lifespan.Interval(0, cutLo+8))
	if err != nil {
		panic(err)
	}
	b, err := TimesliceStatic(world, lifespan.Interval(cutLo+4, 29))
	if err != nil {
		panic(err)
	}
	return a, b
}

func randomPredicate(seed int64) Predicate {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	if rng.Intn(3) == 0 {
		return Predicate{Attr: "DEPT", Theta: value.EQ,
			Const: value.String_([]string{"Toys", "Shoes", "Books"}[rng.Intn(3)])}
	}
	ths := []value.Theta{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}
	return Predicate{Attr: "SAL", Theta: ths[rng.Intn(len(ths))],
		Const: value.Int(int64(28000 + 1000*rng.Intn(5)))}
}

func randomLS(seed int64) lifespan.Lifespan {
	rng := rand.New(rand.NewSource(seed ^ 0x51ab))
	lo := chronon.Time(rng.Intn(20))
	l := lifespan.Interval(lo, lo+chronon.Time(rng.Intn(10)))
	if rng.Intn(2) == 0 {
		lo2 := chronon.Time(rng.Intn(25))
		l = l.Union(lifespan.Interval(lo2, lo2+chronon.Time(rng.Intn(5))))
	}
	return l
}

const lawTrials = 60

func TestLawSelectWhenCommutes(t *testing.T) {
	// σ-WHEN_p1 ∘ σ-WHEN_p2 = σ-WHEN_p2 ∘ σ-WHEN_p1.
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 5)
		p1, p2 := randomPredicate(i), randomPredicate(i+1000)
		a1, err := SelectWhen(r, p1, lifespan.All())
		mustHold(t, err)
		a, err := SelectWhen(a1, p2, lifespan.All())
		mustHold(t, err)
		b1, err := SelectWhen(r, p2, lifespan.All())
		mustHold(t, err)
		b, err := SelectWhen(b1, p1, lifespan.All())
		mustHold(t, err)
		if !a.Equal(b) {
			t.Fatalf("seed %d: select-when does not commute for %s, %s:\n%s\nvs\n%s", i, p1, p2, a, b)
		}
	}
}

func TestLawSelectIfCommutes(t *testing.T) {
	// σ-IF_p1 ∘ σ-IF_p2 = σ-IF_p2 ∘ σ-IF_p1 (tuples are kept whole, so
	// the two filters commute for both quantifiers).
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 5)
		p1, p2 := randomPredicate(i), randomPredicate(i+1000)
		for _, q := range []Quantifier{Exists, ForAll} {
			a1, err := SelectIf(r, p1, q, lifespan.All())
			mustHold(t, err)
			a, err := SelectIf(a1, p2, q, lifespan.All())
			mustHold(t, err)
			b1, err := SelectIf(r, p2, q, lifespan.All())
			mustHold(t, err)
			b, err := SelectIf(b1, p1, q, lifespan.All())
			mustHold(t, err)
			if !a.Equal(b) {
				t.Fatalf("seed %d q=%v: select-if does not commute", i, q)
			}
		}
	}
}

func TestLawTimesliceCommutesWithSelect(t *testing.T) {
	// T_L ∘ σ-WHEN_p = σ-WHEN_p ∘ T_L: restricting then filtering equals
	// filtering then restricting, because σ-WHEN works pointwise.
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 5)
		p := randomPredicate(i)
		L := randomLS(i)
		a1, err := TimesliceStatic(r, L)
		mustHold(t, err)
		a, err := SelectWhen(a1, p, lifespan.All())
		mustHold(t, err)
		b1, err := SelectWhen(r, p, lifespan.All())
		mustHold(t, err)
		b, err := TimesliceStatic(b1, L)
		mustHold(t, err)
		if !a.Equal(b) {
			t.Fatalf("seed %d: T_L does not commute with σ-WHEN_%s:\n%s\nvs\n%s", i, p, a, b)
		}
	}
}

func TestLawTimesliceDistributesOverSetOps(t *testing.T) {
	// T_L(r1 ∪o r2) = T_L(r1) ∪o T_L(r2), and likewise for ∩o and −o...
	// with the caveat the paper's fine print implies: for difference,
	// slicing commutes because the slice applies to both operands.
	for i := int64(0); i < lawTrials; i++ {
		r1, r2 := genHistPair(i)
		L := randomLS(i)

		u, err := UnionMerge(r1, r2)
		mustHold(t, err)
		lhs, err := TimesliceStatic(u, L)
		mustHold(t, err)
		s1, err := TimesliceStatic(r1, L)
		mustHold(t, err)
		s2, err := TimesliceStatic(r2, L)
		mustHold(t, err)
		rhs, err := UnionMerge(s1, s2)
		mustHold(t, err)
		if !lhs.Equal(rhs) {
			t.Fatalf("seed %d: T_L does not distribute over ∪o:\n%s\nvs\n%s", i, lhs, rhs)
		}

		in, err := IntersectMerge(r1, r2)
		mustHold(t, err)
		lhsI, err := TimesliceStatic(in, L)
		mustHold(t, err)
		rhsI, err := IntersectMerge(s1, s2)
		mustHold(t, err)
		if !lhsI.Equal(rhsI) {
			t.Fatalf("seed %d: T_L does not distribute over ∩o:\n%s\nvs\n%s", i, lhsI, rhsI)
		}

		d, err := DiffMerge(r1, r2)
		mustHold(t, err)
		lhsD, err := TimesliceStatic(d, L)
		mustHold(t, err)
		rhsD, err := DiffMerge(s1, s2)
		mustHold(t, err)
		if !lhsD.Equal(rhsD) {
			t.Fatalf("seed %d: T_L does not distribute over −o:\n%s\nvs\n%s", i, lhsD, rhsD)
		}
	}
}

func TestLawSelectWhenDistributesOverSetOps(t *testing.T) {
	// σ-WHEN_p(r1 ∪o r2) = σ-WHEN_p(r1) ∪o σ-WHEN_p(r2), etc.
	for i := int64(0); i < lawTrials; i++ {
		r1, r2 := genHistPair(i)
		p := randomPredicate(i)

		u, err := UnionMerge(r1, r2)
		mustHold(t, err)
		lhs, err := SelectWhen(u, p, lifespan.All())
		mustHold(t, err)
		s1, err := SelectWhen(r1, p, lifespan.All())
		mustHold(t, err)
		s2, err := SelectWhen(r2, p, lifespan.All())
		mustHold(t, err)
		rhs, err := UnionMerge(s1, s2)
		mustHold(t, err)
		if !lhs.Equal(rhs) {
			t.Fatalf("seed %d: σ-WHEN does not distribute over ∪o for %s:\n%s\nvs\n%s", i, p, lhs, rhs)
		}
	}
}

func TestLawUnionMergeCommutesAndAssociates(t *testing.T) {
	for i := int64(0); i < lawTrials; i++ {
		r1, r2 := genHistPair(i)
		ab, err := UnionMerge(r1, r2)
		mustHold(t, err)
		ba, err := UnionMerge(r2, r1)
		mustHold(t, err)
		if !ab.Equal(ba) {
			t.Fatalf("seed %d: ∪o does not commute", i)
		}
		// Associativity with a third compatible slice.
		world := genHist(i, 6)
		r3, err := TimesliceStatic(world, randomLS(i))
		mustHold(t, err)
		if r3.Cardinality() == 0 {
			continue
		}
		l1, err := UnionMerge(ab, r3)
		mustHold(t, err)
		bc, err := UnionMerge(r2, r3)
		mustHold(t, err)
		l2, err := UnionMerge(r1, bc)
		mustHold(t, err)
		if !l1.Equal(l2) {
			t.Fatalf("seed %d: ∪o does not associate", i)
		}
	}
}

func TestLawSliceRestoresViaUnionMerge(t *testing.T) {
	// Complementary slices reassemble the original: T_L(r) ∪o T_{T−L}(r) = r.
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 6)
		L := randomLS(i)
		a, err := TimesliceStatic(r, L)
		mustHold(t, err)
		b, err := TimesliceStatic(r, L.Complement())
		mustHold(t, err)
		back, err := UnionMerge(a, b)
		mustHold(t, err)
		if !back.Equal(r) {
			t.Fatalf("seed %d: complementary slices do not reassemble:\n%s\nvs\n%s", i, back, r)
		}
	}
}

func TestLawTimesliceComposition(t *testing.T) {
	// T_L1(T_L2(r)) = T_{L1 ∩ L2}(r).
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 5)
		L1, L2 := randomLS(i), randomLS(i+500)
		a1, err := TimesliceStatic(r, L2)
		mustHold(t, err)
		a, err := TimesliceStatic(a1, L1)
		mustHold(t, err)
		b, err := TimesliceStatic(r, L1.Intersect(L2))
		mustHold(t, err)
		if !a.Equal(b) {
			t.Fatalf("seed %d: timeslice composition fails", i)
		}
	}
}

func TestLawWhenOfUnionMerge(t *testing.T) {
	// Ω(r1 ∪o r2) = Ω(r1) ∪ Ω(r2).
	for i := int64(0); i < lawTrials; i++ {
		r1, r2 := genHistPair(i)
		u, err := UnionMerge(r1, r2)
		mustHold(t, err)
		if !When(u).Equal(When(r1).Union(When(r2))) {
			t.Fatalf("seed %d: Ω does not distribute over ∪o", i)
		}
	}
}

func TestLawProjectCommutesWithTimeslice(t *testing.T) {
	// π_X(T_L(r)) = T_L(π_X(r)) when X retains the key.
	for i := int64(0); i < lawTrials; i++ {
		r := genHist(i, 5)
		L := randomLS(i)
		a1, err := TimesliceStatic(r, L)
		mustHold(t, err)
		a, err := Project(a1, "NAME", "SAL")
		mustHold(t, err)
		b1, err := Project(r, "NAME", "SAL")
		mustHold(t, err)
		b, err := TimesliceStatic(b1, L)
		mustHold(t, err)
		if !a.Equal(b) {
			t.Fatalf("seed %d: π does not commute with T_L", i)
		}
	}
}

func TestLawNaturalJoinCommutesRandom(t *testing.T) {
	// Natural join commutativity on random histories sharing DEPT.
	full := lifespan.Interval(0, 99)
	ds := schema.MustNew("D", []string{"DEPT"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full},
	)
	for i := int64(0); i < 30; i++ {
		rng := rand.New(rand.NewSource(i))
		emp := genHist(i, 4)
		d := NewRelation(ds)
		for _, name := range []string{"Toys", "Shoes", "Books"} {
			lo := chronon.Time(rng.Intn(10))
			d.MustInsert(NewTupleBuilder(ds, lifespan.Interval(lo, lo+chronon.Time(5+rng.Intn(15)))).
				Key("DEPT", value.String_(name)).
				SetConst("FLOOR", value.Int(int64(rng.Intn(5)))).
				MustBuild())
		}
		ab, err := NaturalJoin(emp, d)
		mustHold(t, err)
		ba, err := NaturalJoin(d, emp)
		mustHold(t, err)
		if !ab.Equal(ba) {
			t.Fatalf("seed %d: natural join does not commute:\n%s\nvs\n%s", i, ab, ba)
		}
	}
}
