package core

import (
	"fmt"
	"hash/maphash"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
)

// This file is the partitioning layer over pinned snapshots: it splits
// an immutable tuple slice — a RelVersion's pinned prefix, or a
// plan-time candidate set — into units a parallel executor can hand to
// workers. Two schemes are provided, matching the two natural axes of
// the temporal model:
//
//   - Range partitions (PartitionSlice): contiguous position chunks of
//     the slice, each annotated with the bounding interval of its
//     tuples' lifespans. Chunks preserve the slice's order, so a merge
//     that concatenates per-chunk results in chunk order reproduces the
//     sequential output exactly — the determinism the engine's ordered
//     merge relies on. The bounds support lifespan-range pruning: a
//     chunk whose bounding interval misses a query window holds no
//     tuple alive in it.
//   - Key-hash buckets (PartitionByKeyHash): tuples grouped by a hash
//     of their canonical key string. Buckets are key-disjoint — no two
//     buckets share a key value — so per-bucket work that builds keyed
//     structures (sub-relations, per-bucket maps) can proceed without
//     cross-bucket coordination. Bucket order does not preserve slice
//     order; consumers needing deterministic output must sort or use
//     range partitions instead.
//
// Both operate on immutable snapshots and allocate only the partition
// descriptors (and, for hash buckets, the bucket slices); the tuples
// themselves are shared, never copied.

// Partition is one contiguous chunk of a partitioned tuple slice.
type Partition struct {
	// Tuples is the chunk: a sub-slice of the partitioned snapshot,
	// sharing its backing array.
	Tuples []*Tuple
	// Pos is the chunk's starting offset in the partitioned slice.
	Pos int
	// Bounds is the bounding interval of the chunk's tuple lifespans —
	// the smallest interval containing every chronon any tuple covers.
	// Empty (Lo > Hi) only when the chunk is empty.
	Bounds chronon.Interval
}

// Overlaps reports whether any tuple of the partition could be alive
// during L: false guarantees every tuple's lifespan misses L entirely,
// so a TIME-SLICE or windowed selection may skip the chunk. The test
// compares L's intervals against the chunk's bounding interval, so it
// is conservative — true does not promise a surviving tuple.
func (p Partition) Overlaps(L lifespan.Lifespan) bool {
	if p.Bounds.IsEmpty() {
		return false
	}
	for _, iv := range L.Intervals() {
		if iv.Overlaps(p.Bounds) {
			return true
		}
	}
	return false
}

// PartitionSlice splits ts into contiguous chunks of at most chunk
// tuples (the final chunk may be shorter), computing each chunk's
// lifespan bounds. Chunk boundaries depend only on len(ts) and chunk —
// not on how many workers will consume them — so a fixed chunk size
// yields identical partitions at every degree of parallelism.
func PartitionSlice(ts []*Tuple, chunk int) []Partition {
	if chunk < 1 {
		chunk = 1
	}
	if len(ts) == 0 {
		return nil
	}
	parts := make([]Partition, 0, (len(ts)+chunk-1)/chunk)
	for pos := 0; pos < len(ts); pos += chunk {
		end := pos + chunk
		if end > len(ts) {
			end = len(ts)
		}
		p := Partition{Tuples: ts[pos:end], Pos: pos, Bounds: chronon.EmptyInterval()}
		for _, t := range p.Tuples {
			span := t.l.Span()
			if span.IsEmpty() {
				continue
			}
			if p.Bounds.IsEmpty() {
				p.Bounds = span
				continue
			}
			if span.Lo < p.Bounds.Lo {
				p.Bounds.Lo = span.Lo
			}
			if span.Hi > p.Bounds.Hi {
				p.Bounds.Hi = span.Hi
			}
		}
		parts = append(parts, p)
	}
	return parts
}

// partitionSeed fixes the key-hash function for the process: bucket
// assignment is stable within a run (what a parallel executor needs)
// without promising a cross-process layout.
var partitionSeed = maphash.MakeSeed()

// PartitionByKeyHash distributes ts into n buckets by a hash of each
// tuple's canonical key string under scheme s. Distinct tuples of one
// relation have distinct constant keys, so the buckets are
// key-disjoint: work that builds keyed structures per bucket needs no
// cross-bucket coordination. Within a bucket, slice order is preserved.
func PartitionByKeyHash(s *schema.Scheme, ts []*Tuple, n int) [][]*Tuple {
	if n < 1 {
		n = 1
	}
	buckets := make([][]*Tuple, n)
	for _, t := range ts {
		b := maphash.String(partitionSeed, t.keyString(s)) % uint64(n)
		buckets[b] = append(buckets[b], t)
	}
	return buckets
}

// NewRelationFromTuples builds a relation over s holding exactly ts, in
// one coalesced pass: the tuple slice is adopted as-is and the key map
// is allocated once at its final size, instead of the per-tuple
// Insert's repeated map growth and per-call lock round. It is the
// materialization step of a parallel executor — workers produce
// per-partition result slices, the ordered merge concatenates them, and
// this constructor turns the merged slice into a relation — and equally
// a fast path for any single-writer bulk construction. The key
// uniqueness invariant is still enforced; a duplicate fails the whole
// construction. The relation is private to the caller (unpublished, no
// observers) exactly as NewRelation's result is; ts must not be
// mutated afterwards.
func NewRelationFromTuples(s *schema.Scheme, ts []*Tuple) (*Relation, error) {
	r := &Relation{scheme: s, id: relIDs.Add(1)}
	r.byKey = make(map[string]int, len(ts))
	for i, t := range ts {
		ks := t.keyString(s)
		if _, dup := r.byKey[ks]; dup {
			return nil, fmt.Errorf("core: relation %s: duplicate key %s", s.Name, ks)
		}
		r.byKey[ks] = i
	}
	r.tuples = ts
	r.version = 1
	return r, nil
}
