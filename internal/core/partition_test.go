package core

import (
	"fmt"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// partitionFixture builds n EMP tuples whose lifespans march forward in
// time: tuple i lives on [i, i+4] (clamped to the scheme period), so
// chunk bounds are predictable and a narrow window prunes most chunks.
func partitionFixture(t testing.TB, n int) []*Tuple {
	t.Helper()
	s := empScheme()
	ts := make([]*Tuple, n)
	for i := range ts {
		lo := chronon.Time(i % 90)
		hi := lo + 4
		ts[i] = NewTupleBuilder(s, lifespan.Interval(lo, hi)).
			Key("NAME", value.String_(fmt.Sprintf("emp%04d", i))).
			Set("SAL", lo, hi, value.Int(int64(1000*i))).
			Set("DEPT", lo, hi, value.String_("Toys")).
			MustBuild()
	}
	return ts
}

func TestPartitionSliceShape(t *testing.T) {
	ts := partitionFixture(t, 25)
	parts := PartitionSlice(ts, 10)
	if len(parts) != 3 {
		t.Fatalf("25 tuples / chunk 10 = %d partitions, want 3", len(parts))
	}
	// Chunks are contiguous, order-preserving and cover the slice.
	pos := 0
	var flat []*Tuple
	for i, p := range parts {
		if p.Pos != pos {
			t.Fatalf("partition %d starts at %d, want %d", i, p.Pos, pos)
		}
		pos += len(p.Tuples)
		flat = append(flat, p.Tuples...)
	}
	if len(flat) != len(ts) {
		t.Fatalf("partitions cover %d tuples, want %d", len(flat), len(ts))
	}
	for i := range ts {
		if flat[i] != ts[i] {
			t.Fatalf("tuple %d reordered by partitioning", i)
		}
	}
	if got := len(parts[2].Tuples); got != 5 {
		t.Fatalf("final chunk holds %d tuples, want 5", got)
	}
	// Bounds are the min/max chronon of each chunk's lifespans: chunk 0
	// holds tuples living [0,4]..[9,13].
	if b := parts[0].Bounds; b.Lo != 0 || b.Hi != 13 {
		t.Fatalf("chunk 0 bounds = %v, want [0,13]", b)
	}

	if PartitionSlice(nil, 10) != nil {
		t.Fatal("empty input must produce no partitions")
	}
	// A non-positive chunk clamps to 1: one partition per tuple.
	if got := len(PartitionSlice(ts, 0)); got != len(ts) {
		t.Fatalf("chunk 0 produced %d partitions, want %d", got, len(ts))
	}
}

// TestPartitionSliceDegreeIndependence pins the determinism contract:
// chunk boundaries depend only on input length and chunk size, so the
// same slice partitions identically however many workers will consume
// it — re-partitioning is byte-for-byte stable.
func TestPartitionSliceDegreeIndependence(t *testing.T) {
	ts := partitionFixture(t, 103)
	a := PartitionSlice(ts, 16)
	b := PartitionSlice(ts, 16)
	if len(a) != len(b) {
		t.Fatalf("partition counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || len(a[i].Tuples) != len(b[i].Tuples) || a[i].Bounds != b[i].Bounds {
			t.Fatalf("partition %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionOverlaps(t *testing.T) {
	ts := partitionFixture(t, 10) // lifespans [0,4]..[9,13]
	p := PartitionSlice(ts, 10)[0]
	if p.Bounds.Lo != 0 || p.Bounds.Hi != 13 {
		t.Fatalf("bounds = %v, want [0,13]", p.Bounds)
	}
	if p.Overlaps(ls("{[20,30]}")) {
		t.Fatal("window beyond the bounds must not overlap")
	}
	if !p.Overlaps(ls("{[13,40]}")) {
		t.Fatal("window touching the bound's edge must overlap")
	}
	if p.Overlaps(ls("{}")) {
		t.Fatal("empty window overlaps nothing")
	}
	if (Partition{Bounds: chronon.EmptyInterval()}).Overlaps(ls("{[0,99]}")) {
		t.Fatal("empty partition overlaps nothing")
	}

	// Conservative by construction: a rehire gap inside the bounding
	// interval still reports overlap — false promises no survivor, true
	// promises nothing.
	s := empScheme()
	gap := NewTupleBuilder(s, ls("{[0,3],[8,14]}")).
		Key("NAME", value.String_("gapped")).
		Set("SAL", 0, 3, value.Int(1)).
		Set("SAL", 8, 14, value.Int(2)).
		Set("DEPT", 0, 3, value.String_("Toys")).
		Set("DEPT", 8, 14, value.String_("Toys")).
		MustBuild()
	gp := PartitionSlice([]*Tuple{gap}, 1)[0]
	if !gp.Overlaps(ls("{[4,7]}")) {
		t.Fatal("bounding-interval test is conservative: the gap window must still report overlap")
	}
}

func TestPartitionByKeyHash(t *testing.T) {
	s := empScheme()
	ts := partitionFixture(t, 64)
	buckets := PartitionByKeyHash(s, ts, 8)
	if len(buckets) != 8 {
		t.Fatalf("got %d buckets, want 8", len(buckets))
	}
	seen := make(map[string]int) // key → bucket
	total := 0
	for b, bucket := range buckets {
		last := -1
		for _, tp := range bucket {
			total++
			ks := tp.keyString(s)
			if prev, dup := seen[ks]; dup && prev != b {
				t.Fatalf("key %s appears in buckets %d and %d", ks, prev, b)
			}
			seen[ks] = b
			// Within a bucket, input order is preserved.
			idx := -1
			for i, orig := range ts {
				if orig == tp {
					idx = i
					break
				}
			}
			if idx <= last {
				t.Fatalf("bucket %d reorders tuples (%d after %d)", b, idx, last)
			}
			last = idx
		}
	}
	if total != len(ts) {
		t.Fatalf("buckets hold %d tuples, want %d", total, len(ts))
	}
	if got := len(PartitionByKeyHash(s, ts, 0)); got != 1 {
		t.Fatalf("n=0 clamps to one bucket, got %d", got)
	}
}

func TestNewRelationFromTuples(t *testing.T) {
	s := empScheme()
	ts := partitionFixture(t, 30)
	r, err := NewRelationFromTuples(s, ts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != len(ts) {
		t.Fatalf("cardinality %d, want %d", r.Cardinality(), len(ts))
	}
	// Equal to the incremental construction, key map included.
	inc := NewRelation(s)
	for _, tp := range ts {
		inc.MustInsert(tp)
	}
	if !r.Equal(inc) {
		t.Fatal("coalesced construction differs from incremental inserts")
	}
	if _, ok := r.lookupTuple(ts[17]); !ok {
		t.Fatal("key map misses a constructed tuple")
	}
	if err := r.checkInvariants(); err != nil {
		t.Fatalf("coalesced relation violates invariants: %v", err)
	}

	// A duplicate key fails the whole construction.
	if _, err := NewRelationFromTuples(s, append(ts[:5:5], ts[4])); err == nil {
		t.Fatal("duplicate key must fail the coalesced construction")
	}
}
