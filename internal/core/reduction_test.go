package core

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/value"
)

// This file machine-checks the paper's Section 5 claims:
//
//   "HRDM is a consistent extension of the traditional relational data
//    model ... each component C of the relational model has a
//    corresponding component C_H in the historical relational model with
//    the property that the definitions of C and C_H become equivalent in
//    the absence of a temporal dimension."
//
// We realize "the absence of a temporal dimension" exactly as the paper
// suggests: "consider the set of times T as the singleton set {now}, the
// lifespan of each tuple as T and the values of all tuples as constant
// functions." Random static relations are lifted to HRDM at T = {now},
// each operator runs on both sides, and the snapshot of the historical
// result must equal the classical result.

// staticGen produces pseudo-random classical relations over a fixed
// scheme, plus the corresponding HRDM lifting at {now}.
type staticGen struct {
	rng *rand.Rand
}

const genNow = chronon.Time(0)

var liftLS = lifespan.Point(genNow)

func (g *staticGen) scheme(name string, attrs ...string) (*rel.Scheme, *schema.Scheme) {
	doms := make([]value.Domain, len(attrs))
	hattrs := make([]schema.Attribute, len(attrs))
	for i, a := range attrs {
		doms[i] = value.Ints
		hattrs[i] = schema.Attribute{Name: a, Domain: value.Ints, Lifespan: liftLS}
	}
	rs, err := rel.NewScheme(name, attrs[:1], attrs, doms)
	if err != nil {
		panic(err)
	}
	// Classical relations are sets of whole tuples; HRDM relations are
	// key-disjoint. To make the two models agree we key the lifted scheme
	// on ALL attributes (whole-tuple identity), the faithful embedding of
	// a classical relation.
	hs := schema.MustNew(name, attrs, hattrs...)
	return rs, hs
}

// relation generates n random tuples over k attributes with small value
// range (to force collisions, joins and duplicates).
func (g *staticGen) relation(rs *rel.Scheme, hs *schema.Scheme, n int) (*rel.Relation, *Relation) {
	sr := rel.NewRelation(rs)
	hr := NewRelation(hs)
	for i := 0; i < n; i++ {
		t := make(rel.Tuple, len(rs.Attrs))
		for j := range t {
			t[j] = value.Int(int64(g.rng.Intn(4)))
		}
		if sr.Contains(t) {
			continue // set semantics
		}
		sr.MustInsert(t)
		b := NewTupleBuilder(hs, liftLS)
		for j, a := range rs.Attrs {
			b.Key(a, t[j]) // every attribute is a key attribute: constant at {now}
		}
		hr.MustInsert(b.MustBuild())
	}
	return sr, hr
}

// snapshotEq asserts the snapshot of hr at now equals sr.
func snapshotEq(t *testing.T, label string, hr *Relation, sr *rel.Relation) {
	t.Helper()
	got, err := Snapshot(hr, genNow)
	if err != nil {
		// An empty historical relation has no snapshot error path here;
		// surface anything else.
		if hr.Cardinality() == 0 && sr.Cardinality() == 0 {
			return
		}
		t.Fatalf("%s: snapshot: %v", label, err)
	}
	if got.Cardinality() != sr.Cardinality() {
		t.Fatalf("%s: snapshot cardinality %d, classical %d\nHRDM:\n%s\nclassical:\n%s",
			label, got.Cardinality(), sr.Cardinality(), hr, sr)
	}
	for _, tu := range sr.Tuples() {
		if !got.Contains(tu) {
			t.Fatalf("%s: classical tuple %v missing from snapshot\nHRDM:\n%s", label, tu, hr)
		}
	}
}

func TestReductionSetOps(t *testing.T) {
	g := &staticGen{rng: rand.New(rand.NewSource(7))}
	for trial := 0; trial < 50; trial++ {
		rs, hs := g.scheme("R", "A", "B")
		sr1, hr1 := g.relation(rs, hs, 6)
		sr2, hr2 := g.relation(rs, hs, 6)

		su, err := rel.Union(sr1, sr2)
		mustHold(t, err)
		hu, err := Union(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "union", hu, su)

		si, err := rel.Intersect(sr1, sr2)
		mustHold(t, err)
		hi, err := Intersect(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "intersect", hi, si)

		sd, err := rel.Diff(sr1, sr2)
		mustHold(t, err)
		hd, err := Diff(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "diff", hd, sd)

		// The object-based variants coincide with the plain ones at
		// T = {now} ("SELECT-IF and SELECT-WHEN reduce to one another";
		// the same collapsing applies to the merge variants since every
		// lifespan is the same singleton).
		huo, err := UnionMerge(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "union-merge", huo, su)
		hio, err := IntersectMerge(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "intersect-merge", hio, si)
		hdo, err := DiffMerge(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "diff-merge", hdo, sd)
	}
}

func TestReductionSelect(t *testing.T) {
	g := &staticGen{rng: rand.New(rand.NewSource(11))}
	thetas := []value.Theta{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}
	for trial := 0; trial < 50; trial++ {
		rs, hs := g.scheme("R", "A", "B")
		sr, hr := g.relation(rs, hs, 8)
		th := thetas[g.rng.Intn(len(thetas))]
		c := value.Int(int64(g.rng.Intn(4)))

		ss, err := rel.Select(sr, "A", th, c, "")
		mustHold(t, err)

		// Both SELECT flavors reduce to the traditional SELECT when
		// T = {now}.
		p := Predicate{Attr: "A", Theta: th, Const: c}
		hIf, err := SelectIf(hr, p, Exists, lifespan.All())
		mustHold(t, err)
		snapshotEq(t, "select-if ∃", hIf, ss)
		hIfAll, err := SelectIf(hr, p, ForAll, lifespan.All())
		mustHold(t, err)
		snapshotEq(t, "select-if ∀", hIfAll, ss)
		hWhen, err := SelectWhen(hr, p, lifespan.All())
		mustHold(t, err)
		snapshotEq(t, "select-when", hWhen, ss)

		// Attribute-vs-attribute predicates too.
		sa, err := rel.Select(sr, "A", th, value.Value{}, "B")
		mustHold(t, err)
		pa := Predicate{Attr: "A", Theta: th, OtherAttr: "B"}
		hWhenA, err := SelectWhen(hr, pa, lifespan.All())
		mustHold(t, err)
		snapshotEq(t, "select-when A θ B", hWhenA, sa)
	}
}

func TestReductionProject(t *testing.T) {
	g := &staticGen{rng: rand.New(rand.NewSource(13))}
	for trial := 0; trial < 50; trial++ {
		rs, hs := g.scheme("R", "A", "B", "C")
		sr, hr := g.relation(rs, hs, 8)
		sp, err := rel.Project(sr, "A", "B")
		mustHold(t, err)
		hp, err := Project(hr, "A", "B")
		mustHold(t, err)
		snapshotEq(t, "project", hp, sp)
	}
}

func TestReductionJoins(t *testing.T) {
	g := &staticGen{rng: rand.New(rand.NewSource(17))}
	for trial := 0; trial < 30; trial++ {
		rs1, hs1 := g.scheme("R", "A", "B")
		rs2, hs2 := g.scheme("S", "C", "D")
		sr1, hr1 := g.relation(rs1, hs1, 5)
		sr2, hr2 := g.relation(rs2, hs2, 5)

		sp, err := rel.Product(sr1, sr2)
		mustHold(t, err)
		hp, err := Product(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "product", hp, sp)

		sj, err := rel.ThetaJoin(sr1, sr2, "A", value.LE, "C")
		mustHold(t, err)
		hj, err := ThetaJoin(hr1, hr2, "A", value.LE, "C")
		mustHold(t, err)
		snapshotEq(t, "theta-join", hj, sj)

		se, err := rel.ThetaJoin(sr1, sr2, "B", value.EQ, "D")
		mustHold(t, err)
		he, err := EquiJoin(hr1, hr2, "B", "D")
		mustHold(t, err)
		snapshotEq(t, "equi-join", he, se)
	}
}

func TestReductionNaturalJoin(t *testing.T) {
	g := &staticGen{rng: rand.New(rand.NewSource(19))}
	for trial := 0; trial < 30; trial++ {
		rs1, hs1 := g.scheme("R", "A", "B")
		rs2, hs2 := g.scheme("S", "B", "C")
		sr1, hr1 := g.relation(rs1, hs1, 5)
		sr2, hr2 := g.relation(rs2, hs2, 5)
		sn, err := rel.NaturalJoin(sr1, sr2)
		mustHold(t, err)
		hn, err := NaturalJoin(hr1, hr2)
		mustHold(t, err)
		snapshotEq(t, "natural-join", hn, sn)
	}
}

func TestReductionWhenAndTimeslice(t *testing.T) {
	// "There are no direct analogs to WHEN or TIME-SLICE; however
	// TIME-SLICE can be viewed as the identity function defined only for
	// time now, and WHEN maps a relation either to now or to the empty
	// set, corresponding to either 'always' or 'never'."
	g := &staticGen{rng: rand.New(rand.NewSource(23))}
	rs, hs := g.scheme("R", "A", "B")
	_, hrEmpty := g.relation(rs, hs, 0)
	_, hr := g.relation(rs, hs, 6)

	if !When(hrEmpty).IsEmpty() {
		t.Error("WHEN of empty static relation = never (∅)")
	}
	if hr.Cardinality() > 0 && !When(hr).Equal(lifespan.Point(genNow)) {
		t.Errorf("WHEN of nonempty static relation = {now}, got %v", When(hr))
	}
	sliced, err := TimesliceStatic(hr, lifespan.Point(genNow))
	mustHold(t, err)
	if !sliced.Equal(hr) {
		t.Error("TIME-SLICE at {now} is the identity on static relations")
	}
	gone, err := TimesliceStatic(hr, lifespan.Point(genNow+1))
	mustHold(t, err)
	if gone.Cardinality() != 0 {
		t.Error("TIME-SLICE away from now empties a static relation")
	}
}

func TestSelectFlavorsCoincideAtNow(t *testing.T) {
	// "both SELECT-IF and SELECT-WHEN reduce to one another ... when
	// T = {now}" — as full historical relations, not just snapshots.
	g := &staticGen{rng: rand.New(rand.NewSource(29))}
	for trial := 0; trial < 30; trial++ {
		rs, hs := g.scheme("R", "A", "B")
		_, hr := g.relation(rs, hs, 8)
		_ = rs
		p := Predicate{Attr: "A", Theta: value.GE, Const: value.Int(2)}
		a, err := SelectIf(hr, p, Exists, lifespan.All())
		mustHold(t, err)
		b, err := SelectWhen(hr, p, lifespan.All())
		mustHold(t, err)
		if !a.Equal(b) {
			t.Fatalf("SELECT-IF ≠ SELECT-WHEN on static relation:\n%s\nvs\n%s", a, b)
		}
	}
}
