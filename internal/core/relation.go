package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lifespan"
	"repro/internal/schema"
)

// Relation is a historical relation r on scheme R: "a finite set of
// tuples t on scheme R such that if t1 and t2 are in r, ∀s ∈ t1.l and
// ∀s' ∈ t2.l, t1.v(K)(s) ≠ t2.v(K)(s')" (Section 3) — i.e. two distinct
// tuples never share a key value at any pair of times. Because key
// attributes are constant-valued, this reduces to: distinct tuples have
// distinct constant key values.
//
// Tuples are kept in insertion order; byKey indexes the canonical key
// string for the uniqueness check and merges.
type Relation struct {
	scheme *schema.Scheme
	tuples []*Tuple
	byKey  map[string]int
	// version counts mutations (Insert/InsertMerging); external index
	// caches use it to detect staleness, since tuples themselves are
	// immutable once inserted.
	version uint64
}

// NewRelation returns an empty relation on scheme r.
func NewRelation(r *schema.Scheme) *Relation {
	return &Relation{scheme: r, byKey: make(map[string]int)}
}

// Scheme returns the relation's scheme R.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Cardinality returns the number of tuples (objects).
func (r *Relation) Cardinality() int { return len(r.tuples) }

// Tuples returns the tuples in insertion order. The slice is shared;
// callers must not mutate it.
func (r *Relation) Tuples() []*Tuple { return r.tuples }

// Insert adds a tuple, enforcing the key-disjointness condition.
func (r *Relation) Insert(t *Tuple) error {
	ks := t.keyString(r.scheme)
	if _, dup := r.byKey[ks]; dup {
		return fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
	}
	r.byKey[ks] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.version++
	return nil
}

// Version returns the relation's mutation counter. Index structures
// built over the relation record it and rebuild when it moves.
func (r *Relation) Version() uint64 { return r.version }

// MustInsert is Insert that panics on error; for tests and examples.
func (r *Relation) MustInsert(t *Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// InsertMerging adds a tuple; if a tuple with the same key exists and is
// mergable, the two are merged (t + t'), mirroring history-building
// updates. If the existing tuple contradicts the new one, an error is
// returned.
func (r *Relation) InsertMerging(t *Tuple) error {
	ks := t.keyString(r.scheme)
	i, dup := r.byKey[ks]
	if !dup {
		return r.Insert(t)
	}
	old := r.tuples[i]
	if !old.Mergable(t, r.scheme) {
		return fmt.Errorf("core: relation %s: tuple with key %s contradicts existing history", r.scheme.Name, ks)
	}
	m, err := old.Merge(t)
	if err != nil {
		return err
	}
	r.tuples[i] = m
	r.version++
	return nil
}

// Lookup returns the tuple whose key string matches t's, if any.
func (r *Relation) Lookup(keyVals ...string) (*Tuple, bool) {
	ks := strings.Join(keyVals, "|")
	i, ok := r.byKey[ks]
	if !ok {
		return nil, false
	}
	return r.tuples[i], true
}

// lookupTuple finds the relation's tuple sharing o's key values.
func (r *Relation) lookupTuple(o *Tuple) (*Tuple, bool) {
	i, ok := r.byKey[o.keyString(r.scheme)]
	if !ok {
		return nil, false
	}
	return r.tuples[i], true
}

// Lifespan computes LS(r) = t1.l ∪ t2.l ∪ ... ∪ tn.l, "the lifespan of
// relation r" (Section 3). WHEN is defined directly from this.
func (r *Relation) Lifespan() lifespan.Lifespan {
	ls := lifespan.Empty()
	for _, t := range r.tuples {
		ls = ls.Union(t.l)
	}
	return ls
}

// Equal reports set equality of two relations: same scheme attributes and
// an equal tuple for every key, independent of insertion order.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.tuples) != len(o.tuples) {
		return false
	}
	if !r.scheme.SameAttrs(o.scheme) {
		return false
	}
	for _, t := range r.tuples {
		u, ok := o.lookupTuple(t)
		if !ok || !t.Equal(u) {
			return false
		}
	}
	return true
}

// sortedTuples returns the tuples sorted by key string — a canonical
// order for printing and deterministic iteration in experiments.
func (r *Relation) sortedTuples() []*Tuple {
	out := append([]*Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].keyString(r.scheme) < out[j].keyString(r.scheme)
	})
	return out
}

// String renders the relation: scheme header followed by one line per
// tuple in canonical key order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.scheme.String())
	for _, t := range r.sortedTuples() {
		b.WriteString("\n  ")
		b.WriteString(t.render(r.scheme))
	}
	return b.String()
}

// checkInvariants verifies the paper's structural conditions for every
// tuple. Operators call it in tests (via the invariant-checking helpers)
// rather than on every construction for performance.
func (r *Relation) checkInvariants() error {
	seen := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		ks := t.keyString(r.scheme)
		if seen[ks] {
			return fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
		}
		seen[ks] = true
		if t.l.IsEmpty() {
			return fmt.Errorf("core: relation %s: tuple %s has empty lifespan", r.scheme.Name, ks)
		}
		for _, a := range r.scheme.Attrs {
			f := t.v[a.Name]
			vls := t.VLS(r.scheme, a.Name)
			if !f.Domain().SubsetOf(vls) {
				return fmt.Errorf("core: relation %s: tuple %s: %s defined outside vls", r.scheme.Name, ks, a.Name)
			}
			if r.scheme.IsKey(a.Name) {
				if !f.IsConstant() || !f.Domain().Equal(vls) {
					return fmt.Errorf("core: relation %s: tuple %s: key %s not constant over vls", r.scheme.Name, ks, a.Name)
				}
			}
		}
	}
	return nil
}
