package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/lifespan"
	"repro/internal/schema"
)

// Relation is a historical relation r on scheme R: "a finite set of
// tuples t on scheme R such that if t1 and t2 are in r, ∀s ∈ t1.l and
// ∀s' ∈ t2.l, t1.v(K)(s) ≠ t2.v(K)(s')" (Section 3) — i.e. two distinct
// tuples never share a key value at any pair of times. Because key
// attributes are constant-valued, this reduces to: distinct tuples have
// distinct constant key values.
//
// Tuples are kept in insertion order; byKey indexes the canonical key
// string for the uniqueness check and merges.
//
// Concurrency: mutations (Insert, InsertMerging, InsertBatch) and
// reads are synchronized by an RWMutex, so any number of readers may
// run against a relation that writers are growing. Reads hand out the
// tuple slice as an immutable snapshot: appends never touch the prefix
// a snapshot covers, and a merge that would overwrite a slot copies
// the slice first when a snapshot is outstanding (the shared flag).
// Registered observers are notified of each mutation after the write
// lock is released, which lets external index structures absorb
// changes incrementally instead of rebuilding. Once a relation is
// published (stored, observed, or pinned — see epoch.go), mutations
// additionally run under the global publish lock and tick the database
// epoch, so multi-relation readers can pin a transaction-consistent
// snapshot across relations (Pin, RelVersion).
type Relation struct {
	scheme *schema.Scheme

	// id is a process-unique creation ticket. WriteGroup.Commit locks
	// the mutexes of every relation in a group in ascending id order,
	// so two groups over overlapping relation sets can never deadlock
	// however their callers staged them.
	id uint64

	mu     sync.RWMutex
	tuples []*Tuple
	byKey  map[string]int
	// version counts mutations (Insert/InsertMerging); external index
	// caches use it to detect staleness, since tuples themselves are
	// immutable once inserted.
	version uint64
	// observers receive one Change per mutation; the slice is
	// copy-on-append so a header read under the lock can be iterated
	// after release.
	observers []Observer
	// shared is set when a caller holds a snapshot of the tuples slice;
	// the next merge copies the slice instead of writing in place.
	shared atomic.Bool
	// published is set once the relation becomes shared database state
	// (registered in a store, observed, or pinned); from then on every
	// mutation runs under the global publish lock and ticks the
	// database epoch (see epoch.go). Unpublished relations — operator
	// intermediates, single-goroutine builds — skip both.
	published atomic.Bool
	// origin, when non-nil, marks this relation as a frozen read-only
	// view of a pinned version of origin: tuples is the immutable
	// pinned slice, and key lookups delegate to origin's live key map
	// bounded by the pinned prefix (keys are never deleted and
	// positions are append-stable, so the live map answers exactly for
	// every older version). Views reject mutation.
	origin *Relation
}

// ChangeKind discriminates the two mutations a relation supports.
type ChangeKind uint8

const (
	// ChangeInsert appended a new tuple at Pos.
	ChangeInsert ChangeKind = iota
	// ChangeMerge replaced the tuple at Pos (Old) with its merge with
	// an inserted tuple (New).
	ChangeMerge
	// ChangeBatch appended Batch starting at Pos under a single
	// version bump — one notification for the whole bulk load, so
	// observers can absorb it as one coalesced index merge instead of
	// len(Batch) single-tuple overlays. A batch published by a
	// WriteGroup may additionally carry Merges: slots the group
	// replaced with merged tuples, still under the same version bump.
	ChangeBatch
)

// MergeStep records one slot a coalesced batch replaced: the tuple at
// Pos was overwritten by its merge New (Old is the tuple it replaced).
type MergeStep struct {
	Pos int
	Old *Tuple
	New *Tuple
}

// Change describes one mutation of a relation. Version is the
// relation's mutation counter after the change; consecutive changes
// carry consecutive versions, so an observer can detect a missed
// notification and fall back to a full rebuild.
type Change struct {
	Kind    ChangeKind
	Pos     int         // tuple position affected (first position for batches)
	Old     *Tuple      // replaced tuple (merges only)
	New     *Tuple      // inserted or merged tuple now at Pos
	Batch   []*Tuple    // tuples appended at Pos (batches only)
	Merges  []MergeStep // slots replaced under the same bump (write groups only)
	Version uint64
}

// Observer is notified of every mutation of a relation it is registered
// on. Notifications are delivered outside the relation's lock (so the
// handler may read the relation) but possibly out of order under
// concurrent writers — handlers must use Change.Version to detect gaps.
type Observer interface {
	RelationChanged(r *Relation, c Change)
}

// relIDs issues the creation tickets WriteGroup.Commit orders its
// mutex acquisitions by. Frozen views (built as literals in epoch.go)
// carry id 0; they reject mutation, so they never enter a lock order.
var relIDs atomic.Uint64

// NewRelation returns an empty relation on scheme r.
func NewRelation(r *schema.Scheme) *Relation {
	return &Relation{scheme: r, byKey: make(map[string]int), id: relIDs.Add(1)}
}

// Scheme returns the relation's scheme R.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Cardinality returns the number of tuples (objects).
func (r *Relation) Cardinality() int {
	if r.origin != nil {
		return len(r.tuples)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Tuples returns a snapshot of the tuples in insertion order. The
// snapshot is stable under concurrent Insert/InsertMerging; callers
// must not mutate it.
func (r *Relation) Tuples() []*Tuple {
	if r.origin != nil {
		return r.tuples // frozen views are immutable
	}
	r.mu.RLock()
	r.shared.Store(true)
	ts := r.tuples
	r.mu.RUnlock()
	return ts
}

// SnapshotVersion returns a stable tuple snapshot together with the
// version it reflects — the atomic pair index builders need.
func (r *Relation) SnapshotVersion() ([]*Tuple, uint64) {
	if r.origin != nil {
		return r.tuples, r.version
	}
	r.mu.RLock()
	r.shared.Store(true)
	ts, v := r.tuples, r.version
	r.mu.RUnlock()
	return ts, v
}

// Observe registers o for mutation notifications and returns the
// relation version o's view of the relation should start from.
// Observing implies publication: an observed relation is shared state
// whose mutations must be visible to snapshot pins.
func (r *Relation) Observe(o Observer) uint64 {
	r.published.Store(true)
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := make([]Observer, len(r.observers), len(r.observers)+1)
	copy(obs, r.observers)
	r.observers = append(obs, o)
	return r.version
}

// Unobserve removes a registered observer.
func (r *Relation) Unobserve(o Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := make([]Observer, 0, len(r.observers))
	for _, x := range r.observers {
		if x != o {
			obs = append(obs, x)
		}
	}
	r.observers = obs
}

// Insert adds a tuple, enforcing the key-disjointness condition.
func (r *Relation) Insert(t *Tuple) error {
	if r.origin != nil {
		return errFrozen(r)
	}
	ks := t.keyString(r.scheme)
	pub := r.beginPublish()
	r.mu.Lock()
	c, err := r.insertLocked(ks, t)
	obs := r.observers
	r.mu.Unlock()
	r.endPublish(pub, err == nil)
	if err != nil {
		return err
	}
	notify(obs, r, c)
	return nil
}

// InsertBatch adds many tuples as one atomic publication: the whole
// batch is validated first (a duplicate key — within the batch or
// against existing tuples — fails the call with nothing applied),
// then appended under a single version bump and a single epoch tick,
// and observers receive one coalesced ChangeBatch notification. Bulk
// loading through it costs one index merge instead of len(ts)
// single-tuple overlays, and readers pinning snapshots see the batch
// entirely or not at all.
func (r *Relation) InsertBatch(ts []*Tuple) error {
	if r.origin != nil {
		return errFrozen(r)
	}
	if len(ts) == 0 {
		return nil
	}
	kss := make([]string, len(ts))
	for i, t := range ts {
		kss[i] = t.keyString(r.scheme)
	}
	pub := r.beginPublish()
	r.mu.Lock()
	inBatch := make(map[string]bool, len(kss))
	for _, ks := range kss {
		if _, dup := r.byKey[ks]; dup || inBatch[ks] {
			r.mu.Unlock()
			r.endPublish(pub, false)
			return fmt.Errorf("core: relation %s: duplicate key %s in batch", r.scheme.Name, ks)
		}
		inBatch[ks] = true
	}
	pos := len(r.tuples)
	// One append keeps the prefix property: outstanding snapshots cover
	// only [0,pos).
	r.tuples = append(r.tuples, ts...)
	for i, ks := range kss {
		r.byKey[ks] = pos + i
	}
	r.version++
	c := Change{Kind: ChangeBatch, Pos: pos, Batch: ts, Version: r.version}
	obs := r.observers
	r.mu.Unlock()
	r.endPublish(pub, true)
	notify(obs, r, c)
	return nil
}

// errFrozen reports a mutation attempt on a pinned-snapshot view.
func errFrozen(r *Relation) error {
	return fmt.Errorf("core: relation %s: frozen snapshot view is read-only", r.scheme.Name)
}

// insertLocked appends t under the write lock and returns the Change to
// deliver after release.
func (r *Relation) insertLocked(ks string, t *Tuple) (Change, error) {
	if _, dup := r.byKey[ks]; dup {
		return Change{}, fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
	}
	pos := len(r.tuples)
	r.byKey[ks] = pos
	// Appending is snapshot-safe without copying: outstanding snapshots
	// cover only the prefix [0,pos).
	r.tuples = append(r.tuples, t)
	r.version++
	return Change{Kind: ChangeInsert, Pos: pos, New: t, Version: r.version}, nil
}

// notify delivers c to every observer registered at mutation time.
func notify(obs []Observer, r *Relation, c Change) {
	for _, o := range obs {
		o.RelationChanged(r, c)
	}
}

// Version returns the relation's mutation counter. Index structures
// built over the relation record it and catch up (or rebuild) when it
// moves.
func (r *Relation) Version() uint64 {
	if r.origin != nil {
		return r.version
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// MustInsert is Insert that panics on error; for tests and examples.
func (r *Relation) MustInsert(t *Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// InsertMerging adds a tuple; if a tuple with the same key exists and is
// mergable, the two are merged (t + t'), mirroring history-building
// updates. If the existing tuple contradicts the new one, an error is
// returned.
func (r *Relation) InsertMerging(t *Tuple) error {
	if r.origin != nil {
		return errFrozen(r)
	}
	ks := t.keyString(r.scheme)
	pub := r.beginPublish()
	r.mu.Lock()
	i, dup := r.byKey[ks]
	if !dup {
		c, err := r.insertLocked(ks, t)
		obs := r.observers
		r.mu.Unlock()
		r.endPublish(pub, err == nil)
		if err != nil {
			return err
		}
		notify(obs, r, c)
		return nil
	}
	old := r.tuples[i]
	if !old.Mergable(t, r.scheme) {
		r.mu.Unlock()
		r.endPublish(pub, false)
		return fmt.Errorf("core: relation %s: tuple with key %s contradicts existing history", r.scheme.Name, ks)
	}
	m, err := old.Merge(t)
	if err != nil {
		r.mu.Unlock()
		r.endPublish(pub, false)
		return err
	}
	// A merge overwrites a slot an outstanding snapshot may cover; copy
	// the slice first so snapshots stay immutable. The flag clears after
	// the copy — merge-heavy construction of a private relation (no
	// snapshots taken) never pays for copies.
	if r.shared.Load() {
		r.tuples = append([]*Tuple(nil), r.tuples...)
		r.shared.Store(false)
	}
	r.tuples[i] = m
	r.version++
	c := Change{Kind: ChangeMerge, Pos: i, Old: old, New: m, Version: r.version}
	obs := r.observers
	r.mu.Unlock()
	r.endPublish(pub, true)
	notify(obs, r, c)
	return nil
}

// Lookup returns the tuple whose key matches the given key values, one
// per key attribute in scheme order, each in its value's canonical
// rendering (value.Value.String). Multi-attribute keys are combined
// with the same collision-free encoding the relation indexes by, so a
// key value containing the separator cannot alias a different key.
func (r *Relation) Lookup(keyVals ...string) (*Tuple, bool) {
	return r.lookupKS(encodeKey(keyVals))
}

// lookupTuple finds the relation's tuple sharing o's key values.
func (r *Relation) lookupTuple(o *Tuple) (*Tuple, bool) {
	return r.lookupKS(o.keyString(r.scheme))
}

// lookupKS resolves a canonical key string to the tuple holding it —
// in the pinned prefix for frozen views, in live state otherwise. The
// live path holds the read lock across map lookup and tuple fetch: a
// concurrent merge may overwrite the slot in place.
func (r *Relation) lookupKS(ks string) (*Tuple, bool) {
	if r.origin != nil {
		i, ok := r.keyPos(ks)
		if !ok {
			return nil, false
		}
		return r.tuples[i], true // pinned slice, immutable
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byKey[ks]
	if !ok {
		return nil, false
	}
	return r.tuples[i], true
}

// keyPos resolves a canonical key string to its tuple position. Frozen
// views delegate to their origin's live key map and bound the answer
// by the pinned prefix: keys are never deleted and a merge keeps its
// slot, so positions are exact for every older version.
func (r *Relation) keyPos(ks string) (int, bool) {
	if r.origin != nil {
		i, ok := r.origin.keyPos(ks)
		if !ok || i >= len(r.tuples) {
			return 0, false
		}
		return i, true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byKey[ks]
	return i, ok
}

// Lifespan computes LS(r) = t1.l ∪ t2.l ∪ ... ∪ tn.l, "the lifespan of
// relation r" (Section 3). WHEN is defined directly from this.
func (r *Relation) Lifespan() lifespan.Lifespan {
	ls := lifespan.Empty()
	for _, t := range r.Tuples() {
		ls = ls.Union(t.l)
	}
	return ls
}

// Equal reports set equality of two relations: same scheme attributes and
// an equal tuple for every key, independent of insertion order.
func (r *Relation) Equal(o *Relation) bool {
	ts, os := r.Tuples(), o.Tuples()
	if len(ts) != len(os) {
		return false
	}
	if !r.scheme.SameAttrs(o.scheme) {
		return false
	}
	for _, t := range ts {
		u, ok := o.lookupTuple(t)
		if !ok || !t.Equal(u) {
			return false
		}
	}
	return true
}

// sortedTuples returns the tuples sorted by key string — a canonical
// order for printing and deterministic iteration in experiments.
func (r *Relation) sortedTuples() []*Tuple {
	out := append([]*Tuple(nil), r.Tuples()...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].keyString(r.scheme) < out[j].keyString(r.scheme)
	})
	return out
}

// String renders the relation: scheme header followed by one line per
// tuple in canonical key order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.scheme.String())
	for _, t := range r.sortedTuples() {
		b.WriteString("\n  ")
		b.WriteString(t.render(r.scheme))
	}
	return b.String()
}

// checkInvariants verifies the paper's structural conditions for every
// tuple. Operators call it in tests (via the invariant-checking helpers)
// rather than on every construction for performance.
func (r *Relation) checkInvariants() error {
	ts := r.Tuples()
	seen := make(map[string]bool, len(ts))
	for _, t := range ts {
		ks := t.keyString(r.scheme)
		if seen[ks] {
			return fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
		}
		seen[ks] = true
		if t.l.IsEmpty() {
			return fmt.Errorf("core: relation %s: tuple %s has empty lifespan", r.scheme.Name, ks)
		}
		for _, a := range r.scheme.Attrs {
			f := t.v[a.Name]
			vls := t.VLS(r.scheme, a.Name)
			if !f.Domain().SubsetOf(vls) {
				return fmt.Errorf("core: relation %s: tuple %s: %s defined outside vls", r.scheme.Name, ks, a.Name)
			}
			if r.scheme.IsKey(a.Name) {
				if !f.IsConstant() || !f.Domain().Equal(vls) {
					return fmt.Errorf("core: relation %s: tuple %s: key %s not constant over vls", r.scheme.Name, ks, a.Name)
				}
			}
		}
	}
	return nil
}
