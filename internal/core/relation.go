package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/lifespan"
	"repro/internal/schema"
)

// Relation is a historical relation r on scheme R: "a finite set of
// tuples t on scheme R such that if t1 and t2 are in r, ∀s ∈ t1.l and
// ∀s' ∈ t2.l, t1.v(K)(s) ≠ t2.v(K)(s')" (Section 3) — i.e. two distinct
// tuples never share a key value at any pair of times. Because key
// attributes are constant-valued, this reduces to: distinct tuples have
// distinct constant key values.
//
// Tuples are kept in insertion order; byKey indexes the canonical key
// string for the uniqueness check and merges.
//
// Concurrency: mutations (Insert, InsertMerging) and reads are
// synchronized by an RWMutex, so any number of readers may run against
// a relation that writers are growing. Reads hand out the tuple slice
// as an immutable snapshot: appends never touch the prefix a snapshot
// covers, and a merge that would overwrite a slot copies the slice
// first when a snapshot is outstanding (the shared flag). Registered
// observers are notified of each mutation after the write lock is
// released, which lets external index structures absorb single-tuple
// changes incrementally instead of rebuilding.
type Relation struct {
	scheme *schema.Scheme

	mu     sync.RWMutex
	tuples []*Tuple
	byKey  map[string]int
	// version counts mutations (Insert/InsertMerging); external index
	// caches use it to detect staleness, since tuples themselves are
	// immutable once inserted.
	version uint64
	// observers receive one Change per mutation; the slice is
	// copy-on-append so a header read under the lock can be iterated
	// after release.
	observers []Observer
	// shared is set when a caller holds a snapshot of the tuples slice;
	// the next merge copies the slice instead of writing in place.
	shared atomic.Bool
}

// ChangeKind discriminates the two mutations a relation supports.
type ChangeKind uint8

const (
	// ChangeInsert appended a new tuple at Pos.
	ChangeInsert ChangeKind = iota
	// ChangeMerge replaced the tuple at Pos (Old) with its merge with
	// an inserted tuple (New).
	ChangeMerge
)

// Change describes one mutation of a relation. Version is the
// relation's mutation counter after the change; consecutive changes
// carry consecutive versions, so an observer can detect a missed
// notification and fall back to a full rebuild.
type Change struct {
	Kind    ChangeKind
	Pos     int    // tuple position affected
	Old     *Tuple // replaced tuple (merges only)
	New     *Tuple // inserted or merged tuple now at Pos
	Version uint64
}

// Observer is notified of every mutation of a relation it is registered
// on. Notifications are delivered outside the relation's lock (so the
// handler may read the relation) but possibly out of order under
// concurrent writers — handlers must use Change.Version to detect gaps.
type Observer interface {
	RelationChanged(r *Relation, c Change)
}

// NewRelation returns an empty relation on scheme r.
func NewRelation(r *schema.Scheme) *Relation {
	return &Relation{scheme: r, byKey: make(map[string]int)}
}

// Scheme returns the relation's scheme R.
func (r *Relation) Scheme() *schema.Scheme { return r.scheme }

// Cardinality returns the number of tuples (objects).
func (r *Relation) Cardinality() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Tuples returns a snapshot of the tuples in insertion order. The
// snapshot is stable under concurrent Insert/InsertMerging; callers
// must not mutate it.
func (r *Relation) Tuples() []*Tuple {
	r.mu.RLock()
	r.shared.Store(true)
	ts := r.tuples
	r.mu.RUnlock()
	return ts
}

// SnapshotVersion returns a stable tuple snapshot together with the
// version it reflects — the atomic pair index builders need.
func (r *Relation) SnapshotVersion() ([]*Tuple, uint64) {
	r.mu.RLock()
	r.shared.Store(true)
	ts, v := r.tuples, r.version
	r.mu.RUnlock()
	return ts, v
}

// Observe registers o for mutation notifications and returns the
// relation version o's view of the relation should start from.
func (r *Relation) Observe(o Observer) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := make([]Observer, len(r.observers), len(r.observers)+1)
	copy(obs, r.observers)
	r.observers = append(obs, o)
	return r.version
}

// Unobserve removes a registered observer.
func (r *Relation) Unobserve(o Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obs := make([]Observer, 0, len(r.observers))
	for _, x := range r.observers {
		if x != o {
			obs = append(obs, x)
		}
	}
	r.observers = obs
}

// Insert adds a tuple, enforcing the key-disjointness condition.
func (r *Relation) Insert(t *Tuple) error {
	ks := t.keyString(r.scheme)
	r.mu.Lock()
	c, err := r.insertLocked(ks, t)
	obs := r.observers
	r.mu.Unlock()
	if err != nil {
		return err
	}
	notify(obs, r, c)
	return nil
}

// insertLocked appends t under the write lock and returns the Change to
// deliver after release.
func (r *Relation) insertLocked(ks string, t *Tuple) (Change, error) {
	if _, dup := r.byKey[ks]; dup {
		return Change{}, fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
	}
	pos := len(r.tuples)
	r.byKey[ks] = pos
	// Appending is snapshot-safe without copying: outstanding snapshots
	// cover only the prefix [0,pos).
	r.tuples = append(r.tuples, t)
	r.version++
	return Change{Kind: ChangeInsert, Pos: pos, New: t, Version: r.version}, nil
}

// notify delivers c to every observer registered at mutation time.
func notify(obs []Observer, r *Relation, c Change) {
	for _, o := range obs {
		o.RelationChanged(r, c)
	}
}

// Version returns the relation's mutation counter. Index structures
// built over the relation record it and catch up (or rebuild) when it
// moves.
func (r *Relation) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// MustInsert is Insert that panics on error; for tests and examples.
func (r *Relation) MustInsert(t *Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// InsertMerging adds a tuple; if a tuple with the same key exists and is
// mergable, the two are merged (t + t'), mirroring history-building
// updates. If the existing tuple contradicts the new one, an error is
// returned.
func (r *Relation) InsertMerging(t *Tuple) error {
	ks := t.keyString(r.scheme)
	r.mu.Lock()
	i, dup := r.byKey[ks]
	if !dup {
		c, err := r.insertLocked(ks, t)
		obs := r.observers
		r.mu.Unlock()
		if err != nil {
			return err
		}
		notify(obs, r, c)
		return nil
	}
	old := r.tuples[i]
	if !old.Mergable(t, r.scheme) {
		r.mu.Unlock()
		return fmt.Errorf("core: relation %s: tuple with key %s contradicts existing history", r.scheme.Name, ks)
	}
	m, err := old.Merge(t)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	// A merge overwrites a slot an outstanding snapshot may cover; copy
	// the slice first so snapshots stay immutable. The flag clears after
	// the copy — merge-heavy construction of a private relation (no
	// snapshots taken) never pays for copies.
	if r.shared.Load() {
		r.tuples = append([]*Tuple(nil), r.tuples...)
		r.shared.Store(false)
	}
	r.tuples[i] = m
	r.version++
	c := Change{Kind: ChangeMerge, Pos: i, Old: old, New: m, Version: r.version}
	obs := r.observers
	r.mu.Unlock()
	notify(obs, r, c)
	return nil
}

// Lookup returns the tuple whose key matches the given key values, one
// per key attribute in scheme order, each in its value's canonical
// rendering (value.Value.String). Multi-attribute keys are combined
// with the same collision-free encoding the relation indexes by, so a
// key value containing the separator cannot alias a different key.
func (r *Relation) Lookup(keyVals ...string) (*Tuple, bool) {
	ks := encodeKey(keyVals)
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byKey[ks]
	if !ok {
		return nil, false
	}
	return r.tuples[i], true
}

// lookupTuple finds the relation's tuple sharing o's key values.
func (r *Relation) lookupTuple(o *Tuple) (*Tuple, bool) {
	ks := o.keyString(r.scheme)
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byKey[ks]
	if !ok {
		return nil, false
	}
	return r.tuples[i], true
}

// Lifespan computes LS(r) = t1.l ∪ t2.l ∪ ... ∪ tn.l, "the lifespan of
// relation r" (Section 3). WHEN is defined directly from this.
func (r *Relation) Lifespan() lifespan.Lifespan {
	ls := lifespan.Empty()
	for _, t := range r.Tuples() {
		ls = ls.Union(t.l)
	}
	return ls
}

// Equal reports set equality of two relations: same scheme attributes and
// an equal tuple for every key, independent of insertion order.
func (r *Relation) Equal(o *Relation) bool {
	ts, os := r.Tuples(), o.Tuples()
	if len(ts) != len(os) {
		return false
	}
	if !r.scheme.SameAttrs(o.scheme) {
		return false
	}
	for _, t := range ts {
		u, ok := o.lookupTuple(t)
		if !ok || !t.Equal(u) {
			return false
		}
	}
	return true
}

// sortedTuples returns the tuples sorted by key string — a canonical
// order for printing and deterministic iteration in experiments.
func (r *Relation) sortedTuples() []*Tuple {
	out := append([]*Tuple(nil), r.Tuples()...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].keyString(r.scheme) < out[j].keyString(r.scheme)
	})
	return out
}

// String renders the relation: scheme header followed by one line per
// tuple in canonical key order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.scheme.String())
	for _, t := range r.sortedTuples() {
		b.WriteString("\n  ")
		b.WriteString(t.render(r.scheme))
	}
	return b.String()
}

// checkInvariants verifies the paper's structural conditions for every
// tuple. Operators call it in tests (via the invariant-checking helpers)
// rather than on every construction for performance.
func (r *Relation) checkInvariants() error {
	ts := r.Tuples()
	seen := make(map[string]bool, len(ts))
	for _, t := range ts {
		ks := t.keyString(r.scheme)
		if seen[ks] {
			return fmt.Errorf("core: relation %s: duplicate key %s", r.scheme.Name, ks)
		}
		seen[ks] = true
		if t.l.IsEmpty() {
			return fmt.Errorf("core: relation %s: tuple %s has empty lifespan", r.scheme.Name, ks)
		}
		for _, a := range r.scheme.Attrs {
			f := t.v[a.Name]
			vls := t.VLS(r.scheme, a.Name)
			if !f.Domain().SubsetOf(vls) {
				return fmt.Errorf("core: relation %s: tuple %s: %s defined outside vls", r.scheme.Name, ks, a.Name)
			}
			if r.scheme.IsKey(a.Name) {
				if !f.IsConstant() || !f.Domain().Equal(vls) {
					return fmt.Errorf("core: relation %s: tuple %s: key %s not constant over vls", r.scheme.Name, ks, a.Name)
				}
			}
		}
	}
	return nil
}
