package core

import (
	"fmt"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
)

// Union implements r1 ∪ r2 (Section 4.1):
//
//	r1 ∪ r2 = { t on R3 | t ∈ r1 or t ∈ r2 },
//	R3 = <A1, K1, ALS1 ∪ ALS2, DOM1>.
//
// This is the plain set-theoretic union the paper shows to be
// counter-intuitive for historical relations (Figure 11): an object
// present in both operands with different histories would appear twice,
// violating the key condition — that case is reported as an error, and
// UnionMerge is the object-respecting alternative.
func Union(r1, r2 *Relation) (*Relation, error) {
	rs, err := schema.UnionScheme(r1.scheme, r2.scheme, r1.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	for _, t := range r1.Tuples() {
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	for _, t := range r2.Tuples() {
		if prev, ok := out.lookupTuple(t); ok {
			if !prev.Equal(t) {
				return nil, fmt.Errorf("core: union: key %s present in both operands with different histories; use UnionMerge",
					t.keyString(rs))
			}
			continue
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Intersect implements r1 ∩ r2 (Section 4.1): tuples present, as whole
// historical objects with identical histories, in both operands.
func Intersect(r1, r2 *Relation) (*Relation, error) {
	rs, err := schema.IntersectScheme(r1.scheme, r2.scheme, r1.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	for _, t := range r1.Tuples() {
		u, ok := r2.lookupTuple(t)
		if ok && t.Equal(u) {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Diff implements r1 − r2 (Section 4.1): { t on R1 | t ∈ r1 and t ∉ r2 },
// with tuple membership meaning an identical historical tuple.
func Diff(r1, r2 *Relation) (*Relation, error) {
	if !r1.scheme.UnionCompatible(r2.scheme) {
		return nil, fmt.Errorf("core: diff: %s and %s are not union-compatible", r1.scheme.Name, r2.scheme.Name)
	}
	out := NewRelation(r1.scheme)
	for _, t := range r1.Tuples() {
		if u, ok := r2.lookupTuple(t); ok && t.Equal(u) {
			continue
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnionMerge implements the object-based union r1 ∪o r2 (Section 4.1):
//
//	r1 ∪o r2 = { t | t ∈ r1 and t is not matched in r2
//	            ∨ t ∈ r2 and t is not matched in r1
//	            ∨ ∃t1 ∈ r1 ∃t2 ∈ r2 [t = t1 + t2] }
//
// "Merging" tuples of corresponding objects produces the r1 + r2 of
// Figure 11 rather than duplicating the object. Operands must be
// merge-compatible (same attributes, domains, and key). Matched tuples
// that are not mergable (contradicting histories) are an error.
func UnionMerge(r1, r2 *Relation) (*Relation, error) {
	if !r1.scheme.MergeCompatible(r2.scheme) {
		return nil, fmt.Errorf("core: union-merge: %s and %s are not merge-compatible", r1.scheme.Name, r2.scheme.Name)
	}
	rs, err := schema.UnionScheme(r1.scheme, r2.scheme, r1.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	for _, t1 := range r1.Tuples() {
		t2, ok := r2.lookupTuple(t1)
		if !ok {
			// Not matched in r2.
			if err := out.Insert(t1); err != nil {
				return nil, err
			}
			continue
		}
		if !t1.Mergable(t2, rs) {
			return nil, fmt.Errorf("core: union-merge: key %s has contradicting histories", t1.keyString(rs))
		}
		m, err := t1.Merge(t2)
		if err != nil {
			return nil, err
		}
		if err := out.Insert(m); err != nil {
			return nil, err
		}
	}
	for _, t2 := range r2.Tuples() {
		if _, ok := r1.lookupTuple(t2); !ok {
			if err := out.Insert(t2); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// IntersectMerge implements r1 ∩o r2 (Section 4.1):
//
//	r1 ∩o r2 = { t | ∃t1 ∈ r1 ∃t2 ∈ r2 [t1, t2 mergable ∧ t.l = t1.l ∩ t2.l
//	             ∧ ∀A ∀s ∈ t.l  t1.v(A)(s) = t2.v(A)(s) = t.v(A)(s)] }
//
// The result holds each shared object over the times both operands agree
// on it; objects whose lifespans do not intersect contribute nothing.
func IntersectMerge(r1, r2 *Relation) (*Relation, error) {
	if !r1.scheme.MergeCompatible(r2.scheme) {
		return nil, fmt.Errorf("core: intersect-merge: %s and %s are not merge-compatible", r1.scheme.Name, r2.scheme.Name)
	}
	rs, err := schema.IntersectScheme(r1.scheme, r2.scheme, r1.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	for _, t1 := range r1.Tuples() {
		t2, ok := r2.lookupTuple(t1)
		if !ok || !t1.Mergable(t2, r1.scheme) {
			continue
		}
		nt := t1.restrict(t2.l)
		if nt == nil {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DiffMerge implements r1 −o r2 (Section 4.1):
//
//	r1 −o r2 = { t | t ∈ r1 and t is not matched in r2
//	            ∨ ∃t1 ∈ r1 ∃t2 ∈ r2 [t1, t2 mergable ∧ t.l = t1.l − t2.l
//	              ∧ ∀A  t.v(A) = t1.v(A)|t.l] }
//
// Each object keeps the part of its history not covered by r2. Objects
// wholly covered (t1.l ⊆ t2.l) vanish.
func DiffMerge(r1, r2 *Relation) (*Relation, error) {
	if !r1.scheme.MergeCompatible(r2.scheme) {
		return nil, fmt.Errorf("core: diff-merge: %s and %s are not merge-compatible", r1.scheme.Name, r2.scheme.Name)
	}
	out := NewRelation(r1.scheme)
	for _, t1 := range r1.Tuples() {
		t2, ok := r2.lookupTuple(t1)
		if !ok || !t1.Mergable(t2, r1.scheme) {
			// Not matched in r2 (an unmergable same-key tuple is "not
			// matched" per the paper's definition of matched).
			if err := out.Insert(t1); err != nil {
				return nil, err
			}
			continue
		}
		nl := t1.l.Minus(t2.l)
		if nl.IsEmpty() {
			continue
		}
		nt := t1.restrict(nl)
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Product implements the Cartesian product r1 × r2 (Section 4.1) for
// schemes with disjoint attribute sets. Following the paper's closing
// discussion, the resulting tuple is "defined over the union of the
// lifespans of the participating tuples, and thus potentially contain[s]
// null values": t.l = t1.l ∪ t2.l, with each side's attribute values
// defined only on that side's original vls (undefined — null — elsewhere).
func Product(r1, r2 *Relation) (*Relation, error) {
	if !r1.scheme.DisjointAttrs(r2.scheme) {
		return nil, fmt.Errorf("core: product: schemes %s and %s share attributes; rename first",
			r1.scheme.Name, r2.scheme.Name)
	}
	rs, err := schema.ConcatScheme(r1.scheme, r2.scheme, r1.scheme.Name+"x"+r2.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	ts2 := r2.Tuples()
	for _, t1 := range r1.Tuples() {
		for _, t2 := range ts2 {
			nl := t1.l.Union(t2.l)
			nv := make(map[string]tfunc.Func, len(t1.v)+len(t2.v))
			for a, f := range t1.v {
				nv[a] = f
			}
			for a, f := range t2.v {
				nv[a] = f
			}
			// Key values must cover the combined lifespan: extend each
			// side's constant keys over the union lifespan (their constant
			// value identifies the object at all times; the paper's nulls
			// concern non-key values).
			for _, k := range r1.scheme.Key {
				nv[k] = extendConstant(nv[k], nl.Intersect(rs.ALS(k)))
			}
			for _, k := range r2.scheme.Key {
				nv[k] = extendConstant(nv[k], nl.Intersect(rs.ALS(k)))
			}
			nt, err := NewTuple(rs, nl, nv)
			if err != nil {
				return nil, fmt.Errorf("core: product: %w", err)
			}
			if err := out.Insert(nt); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// extendConstant widens a constant function to cover ls.
func extendConstant(f tfunc.Func, ls lifespan.Lifespan) tfunc.Func {
	v, ok := f.ConstantValue()
	if !ok {
		return f
	}
	return tfunc.Constant(ls, v)
}
