package core

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// splitEmp splits the EMP fixture into an early and a late epoch to
// exercise the set operators: r1 = T_{[0,9]}(emp), r2 = T_{[5,19]}(emp).
func splitEmp(t *testing.T) (r1, r2 *Relation) {
	emp := empRelation(t)
	var err error
	r1, err = TimesliceStatic(emp, ls("{[0,9]}"))
	mustHold(t, err)
	r2, err = TimesliceStatic(emp, ls("{[5,19]}"))
	mustHold(t, err)
	return r1, r2
}

func TestUnionDisjointObjects(t *testing.T) {
	emp := empRelation(t)
	early, err := TimesliceStatic(emp, ls("{[0,2]}"))
	mustHold(t, err)
	late, err := TimesliceStatic(emp, ls("{[15,19]}"))
	mustHold(t, err)
	// early has John and Ahmed; late has only Mary — no shared keys.
	u, err := Union(early, late)
	mustHold(t, err)
	if u.Cardinality() != 3 {
		t.Fatalf("union cardinality = %d, want 3\n%s", u.Cardinality(), u)
	}
}

func TestUnionIdenticalTuplesAbsorb(t *testing.T) {
	a := empRelation(t)
	b := empRelation(t)
	u, err := Union(a, b)
	mustHold(t, err)
	if !u.Equal(a) {
		t.Error("r ∪ r = r")
	}
}

func TestUnionConflictIsError(t *testing.T) {
	// Figure 11: plain union of two relations holding different periods
	// of the same object is counter-intuitive — our Union surfaces the
	// key violation rather than duplicating the object.
	r1, r2 := splitEmp(t)
	if _, err := Union(r1, r2); err == nil {
		t.Error("plain union with overlapping-key different-history tuples must error")
	} else if !strings.Contains(err.Error(), "UnionMerge") {
		t.Errorf("error should point at UnionMerge: %v", err)
	}
}

func TestUnionMergeFigure11(t *testing.T) {
	// The object-based union r1 ∪o r2 "merges tuples of corresponding
	// objects", rebuilding each object's full history.
	r1, r2 := splitEmp(t)
	emp := empRelation(t)
	u, err := UnionMerge(r1, r2)
	mustHold(t, err)
	if !u.Equal(emp) {
		t.Errorf("r1 ∪o r2 should restore the original relation:\ngot\n%s\nwant\n%s", u, emp)
	}
}

func TestUnionMergeKeepsUnmatched(t *testing.T) {
	emp := empRelation(t)
	onlyEarly, err := TimesliceStatic(emp, ls("{[0,2]}")) // John, Ahmed
	mustHold(t, err)
	onlyLate, err := TimesliceStatic(emp, ls("{[15,19]}")) // Mary
	mustHold(t, err)
	u, err := UnionMerge(onlyEarly, onlyLate)
	mustHold(t, err)
	if u.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", u.Cardinality())
	}
	mary, ok := u.Lookup(`"Mary"`)
	if !ok || !mary.Lifespan().Equal(ls("{[15,19]}")) {
		t.Error("unmatched tuple must pass through unchanged")
	}
}

func TestUnionMergeContradiction(t *testing.T) {
	s := empScheme()
	mk := func(sal int64) *Relation {
		r := NewRelation(s)
		r.MustInsert(NewTupleBuilder(s, ls("{[0,4]}")).
			Key("NAME", value.String_("Ed")).
			Set("SAL", 0, 4, value.Int(sal)).MustBuild())
		return r
	}
	if _, err := UnionMerge(mk(10), mk(20)); err == nil {
		t.Error("contradicting histories must fail union-merge")
	}
}

func TestIntersect(t *testing.T) {
	a := empRelation(t)
	b := empRelation(t)
	i, err := Intersect(a, b)
	mustHold(t, err)
	if !i.Equal(a) {
		t.Error("r ∩ r = r")
	}
	// Intersection with a sliced copy: tuples differ (restricted), so the
	// plain intersection is empty.
	r1, r2 := splitEmp(t)
	i2, err := Intersect(r1, r2)
	mustHold(t, err)
	if i2.Cardinality() != 0 {
		t.Errorf("plain intersection of sliced relations should be empty, got %d", i2.Cardinality())
	}
}

func TestIntersectMerge(t *testing.T) {
	// r1 ∩o r2: each shared object over the agreed intersection.
	r1, r2 := splitEmp(t)
	i, err := IntersectMerge(r1, r2)
	mustHold(t, err)
	// John: [0,9] ∩ [5,9] = [5,9]; Mary: [3,9] ∩ [5,19] = [5,9];
	// Ahmed: [0,3]∪[8,9] ∩ [8,14] = [8,9].
	if i.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3\n%s", i.Cardinality(), i)
	}
	john, _ := i.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[5,9]}")) {
		t.Errorf("John ∩o lifespan = %v", john.Lifespan())
	}
	ahmed, _ := i.Lookup(`"Ahmed"`)
	if !ahmed.Lifespan().Equal(ls("{[8,9]}")) {
		t.Errorf("Ahmed ∩o lifespan = %v", ahmed.Lifespan())
	}
	if v, _ := john.At("SAL", 7); v.AsInt() != 34000 {
		t.Error("values must survive intersect-merge")
	}
}

func TestIntersectMergeDropsDisjoint(t *testing.T) {
	emp := empRelation(t)
	a, err := TimesliceStatic(emp, ls("{[0,2]}"))
	mustHold(t, err)
	b, err := TimesliceStatic(emp, ls("{[15,19]}"))
	mustHold(t, err)
	i, err := IntersectMerge(a, b)
	mustHold(t, err)
	if i.Cardinality() != 0 {
		t.Errorf("disjoint epochs share no object-times, got %d tuples", i.Cardinality())
	}
}

func TestDiff(t *testing.T) {
	a := empRelation(t)
	b := empRelation(t)
	d, err := Diff(a, b)
	mustHold(t, err)
	if d.Cardinality() != 0 {
		t.Error("r − r = ∅")
	}
	empty := NewRelation(a.Scheme())
	d2, err := Diff(a, empty)
	mustHold(t, err)
	if !d2.Equal(a) {
		t.Error("r − ∅ = r")
	}
}

func TestDiffMerge(t *testing.T) {
	r1, r2 := splitEmp(t)
	d, err := DiffMerge(r1, r2)
	mustHold(t, err)
	// John: [0,9] − [5,9] = [0,4]; Mary: [3,9] − [5,19] = [3,4];
	// Ahmed: ([0,3]∪[8,9]) − [8,14] = [0,3].
	john, ok := d.Lookup(`"John"`)
	if !ok || !john.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("John −o = %v", john)
	}
	mary, ok := d.Lookup(`"Mary"`)
	if !ok || !mary.Lifespan().Equal(ls("{[3,4]}")) {
		t.Errorf("Mary −o = %v", mary)
	}
	ahmed, ok := d.Lookup(`"Ahmed"`)
	if !ok || !ahmed.Lifespan().Equal(ls("{[0,3]}")) {
		t.Errorf("Ahmed −o = %v", ahmed)
	}
	// Values restricted: John's post-raise salary is gone.
	if _, ok := john.At("SAL", 7); ok {
		t.Error("diff-merge must cut values outside the remaining lifespan")
	}
	if v, _ := john.At("SAL", 2); v.AsInt() != 30000 {
		t.Error("remaining values must survive")
	}
}

func TestDiffMergeWholeCoverVanishes(t *testing.T) {
	emp := empRelation(t)
	d, err := DiffMerge(emp, emp)
	mustHold(t, err)
	if d.Cardinality() != 0 {
		t.Errorf("r −o r = ∅, got %d tuples", d.Cardinality())
	}
}

func TestSetOpsCompatibilityErrors(t *testing.T) {
	emp := empRelation(t)
	dept := deptRelation(t)
	if _, err := Union(emp, dept); err == nil {
		t.Error("union of incompatible schemes must fail")
	}
	if _, err := Intersect(emp, dept); err == nil {
		t.Error("intersect of incompatible schemes must fail")
	}
	if _, err := Diff(emp, dept); err == nil {
		t.Error("diff of incompatible schemes must fail")
	}
	if _, err := UnionMerge(emp, dept); err == nil {
		t.Error("union-merge of incompatible schemes must fail")
	}
	if _, err := IntersectMerge(emp, dept); err == nil {
		t.Error("intersect-merge of incompatible schemes must fail")
	}
	if _, err := DiffMerge(emp, dept); err == nil {
		t.Error("diff-merge of incompatible schemes must fail")
	}
}

func TestProduct(t *testing.T) {
	emp := empRelation(t)
	dept := deptRelation(t)
	p, err := Product(emp, dept)
	mustHold(t, err)
	if p.Cardinality() != emp.Cardinality()*dept.Cardinality() {
		t.Fatalf("|r1 × r2| = %d, want %d", p.Cardinality(), emp.Cardinality()*dept.Cardinality())
	}
	// Product tuples live on the union of lifespans and may have nulls
	// (undefined values) where one side is absent.
	johnToys, ok := p.Lookup(`"John"`, `"Toys"`)
	if !ok {
		t.Fatal("John×Toys missing")
	}
	if !johnToys.Lifespan().Equal(ls("{[0,19]}")) {
		t.Errorf("product lifespan = %v, want union {[0,19]}", johnToys.Lifespan())
	}
	// John's SAL is null (undefined) during [10,19] — his side is absent.
	if _, ok := johnToys.At("SAL", 15); ok {
		t.Error("null expected for SAL outside John's lifespan")
	}
	if v, _ := johnToys.At("FLOOR", 15); v.AsInt() != 1 {
		t.Error("dept side value expected at 15")
	}
	// Shared attribute names must be rejected.
	if _, err := Product(emp, emp); err == nil {
		t.Error("product with shared attributes must fail")
	}
	r2, err := emp.Rename("b")
	mustHold(t, err)
	p2, err := Product(emp, r2)
	mustHold(t, err)
	if p2.Cardinality() != 9 {
		t.Errorf("self-product via rename = %d, want 9", p2.Cardinality())
	}
}
