package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/rel"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// Snapshot extracts the classical relation state at time s: one flat
// tuple per historical tuple alive at s whose every attribute (with
// lifespan covering s) is defined there. This realizes the paper's
// Section 5 reduction — "a traditional relation r is just a special case
// of an historical relation r_H" viewed at a single time — and is the
// "state at time t" query of experiment E11.
//
// Attributes whose ALS does not cover s are dropped from the snapshot
// scheme (the schema did not define them then); tuples alive at s but
// missing a value for a retained attribute are skipped, since classical
// relations have no nulls.
func Snapshot(r *Relation, s chronon.Time) (*rel.Relation, error) {
	var attrs []string
	var doms []value.Domain
	for _, a := range r.scheme.Attrs {
		if a.Lifespan.Contains(s) {
			attrs = append(attrs, a.Name)
			doms = append(doms, a.Domain)
		}
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: snapshot at %v: no attribute of %s is defined then", s, r.scheme.Name)
	}
	var key []string
	for _, k := range r.scheme.Key {
		for _, a := range attrs {
			if a == k {
				key = append(key, k)
			}
		}
	}
	rs, err := rel.NewScheme(r.scheme.Name+"@"+s.String(), key, attrs, doms)
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation(rs)
	for _, t := range r.Tuples() {
		if !t.l.Contains(s) {
			continue
		}
		nt := make(rel.Tuple, len(attrs))
		complete := true
		for i, a := range attrs {
			v, ok := t.At(a, s)
			if !ok {
				complete = false
				break
			}
			nt[i] = v
		}
		if !complete {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Rename returns a copy of r with every attribute prefixed "prefix.",
// used to disambiguate operands before Product, ThetaJoin and TimeJoin
// when schemes share attribute names.
func (r *Relation) Rename(prefix string) (*Relation, error) {
	rs, err := r.scheme.Rename(prefix, prefix+"_"+r.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	for _, t := range r.Tuples() {
		m := make(map[string]tfunc.Func, len(t.v))
		for a, f := range t.v {
			m[prefix+"."+a] = f
		}
		nt, err := NewTuple(rs, t.l, m)
		if err != nil {
			return nil, err
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}
