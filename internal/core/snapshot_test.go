package core

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func TestSnapshotBasics(t *testing.T) {
	emp := empRelation(t)
	// At time 2: John (30000,Toys) and Ahmed (30000,Toys); Mary not born.
	snap, err := Snapshot(emp, 2)
	mustHold(t, err)
	if snap.Cardinality() != 2 {
		t.Fatalf("snapshot@2 cardinality = %d, want 2\n%s", snap.Cardinality(), snap)
	}
	// At time 12: Mary (40000,Books) and Ahmed (31000,Books).
	snap12, err := Snapshot(emp, 12)
	mustHold(t, err)
	if snap12.Cardinality() != 2 {
		t.Fatalf("snapshot@12 cardinality = %d\n%s", snap12.Cardinality(), snap12)
	}
	// At time 50: nobody.
	snap50, err := Snapshot(emp, 50)
	mustHold(t, err)
	if snap50.Cardinality() != 0 {
		t.Error("snapshot outside all lifespans is empty")
	}
}

func TestSnapshotEvolvingSchema(t *testing.T) {
	// Figure 6: VOLUME defined on [10,20] ∪ [30,40] only. Snapshots in
	// the gap must drop the attribute from the scheme.
	tickerLS := ls("{[0,40]}")
	s := schema.MustNew("STOCK", []string{"TICKER"},
		schema.Attribute{Name: "TICKER", Domain: value.Strings, Lifespan: tickerLS},
		schema.Attribute{Name: "PRICE", Domain: value.Ints, Lifespan: tickerLS},
		schema.Attribute{Name: "VOLUME", Domain: value.Ints, Lifespan: ls("{[10,20],[30,40]}")},
	)
	r := NewRelation(s)
	b := NewTupleBuilder(s, tickerLS).
		Key("TICKER", value.String_("IBM")).
		Set("PRICE", 0, 40, value.Int(120))
	// VOLUME values only within its ALS.
	b.Set("VOLUME", 10, 20, value.Int(1000)).Set("VOLUME", 30, 40, value.Int(2000))
	r.MustInsert(b.MustBuild())

	in, err := Snapshot(r, 15)
	mustHold(t, err)
	if in.Scheme().Index("VOLUME") < 0 {
		t.Error("VOLUME defined at 15")
	}
	gap, err := Snapshot(r, 25)
	mustHold(t, err)
	if gap.Scheme().Index("VOLUME") >= 0 {
		t.Error("VOLUME must vanish from the scheme during the gap")
	}
	if gap.Cardinality() != 1 {
		t.Error("IBM still present during the gap (without VOLUME)")
	}
}

func TestSnapshotSkipsIncompleteTuples(t *testing.T) {
	// A tuple alive at s but with an undefined retained attribute is not
	// representable classically (no nulls) and is skipped.
	s := empScheme()
	r := NewRelation(s)
	b := NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("Ghost")).
		Set("SAL", 0, 4, value.Int(1))
	// no DEPT at all, no SAL after 4
	r.MustInsert(b.MustBuild())
	snap, err := Snapshot(r, 2)
	mustHold(t, err)
	if snap.Cardinality() != 0 {
		t.Error("tuple with undefined DEPT must be skipped at 2")
	}
}
