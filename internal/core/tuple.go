package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// Tuple is a historical tuple t = ⟨v, l⟩ on some scheme. Tuples are
// immutable once built; the algebra derives new tuples rather than
// mutating. Construct with TupleBuilder or NewTuple so the paper's
// structural conditions hold by construction.
type Tuple struct {
	l lifespan.Lifespan
	v map[string]tfunc.Func
}

// Lifespan returns t.l, "the periods of time during which the tuple
// bears information".
func (t *Tuple) Lifespan() lifespan.Lifespan { return t.l }

// Value returns t(A), the temporal function that is the tuple's value
// for attribute A. Unknown attributes yield the nowhere-defined function.
func (t *Tuple) Value(attr string) tfunc.Func { return t.v[attr] }

// At returns t(A)(s), the value of attribute A at time s; the boolean is
// false where the function is undefined ("the attribute is not relevant
// at such times, and thus does not exist").
func (t *Tuple) At(attr string, s chronon.Time) (value.Value, bool) {
	return t.v[attr].At(s)
}

// VLS computes vls(t,A,R) = t.l ∩ ALS(A,R): "the set of times over which
// the value is defined" (Section 3).
func (t *Tuple) VLS(r *schema.Scheme, attr string) lifespan.Lifespan {
	return t.l.Intersect(r.ALS(attr))
}

// VLSSet extends vls to a set of attributes X = {A1,...,An}: the paper
// defines vls(t,X,R) as the intersection over all attributes in X, the
// times at which the whole sub-tuple t(X) is defined.
func (t *Tuple) VLSSet(r *schema.Scheme, attrs []string) lifespan.Lifespan {
	ls := t.l
	for _, a := range attrs {
		ls = ls.Intersect(r.ALS(a))
	}
	return ls
}

// NewTuple validates and builds a tuple on scheme r from a lifespan and
// per-attribute temporal functions. It enforces the paper's conditions:
//
//  1. every scheme attribute has an entry in vals (possibly the
//     nowhere-defined function, for attributes whose vls is empty);
//  2. no extraneous attributes;
//  3. each value's kind matches VD(A);
//  4. each value's domain ⊆ t.l ∩ ALS(A,R) = vls(t,A,R);
//  5. key attribute values are constant functions (DOM(Ai) ∈ CD) defined
//     on all of vls — a key that is absent or varies cannot identify the
//     object across its lifespan.
func NewTuple(r *schema.Scheme, ls lifespan.Lifespan, vals map[string]tfunc.Func) (*Tuple, error) {
	if ls.IsEmpty() {
		return nil, fmt.Errorf("core: tuple on %s with empty lifespan", r.Name)
	}
	for name := range vals {
		if !r.HasAttr(name) {
			return nil, fmt.Errorf("core: tuple on %s: unknown attribute %s", r.Name, name)
		}
	}
	t := &Tuple{l: ls, v: make(map[string]tfunc.Func, len(r.Attrs))}
	for _, a := range r.Attrs {
		f := vals[a.Name]
		vls := ls.Intersect(a.Lifespan)
		if !f.Domain().SubsetOf(vls) {
			return nil, fmt.Errorf("core: tuple on %s: value of %s defined on %v outside vls %v",
				r.Name, a.Name, f.Domain(), vls)
		}
		bad := false
		f.Steps(func(_ chronon.Interval, v value.Value) bool {
			if !a.Domain.Contains(v) {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return nil, fmt.Errorf("core: tuple on %s: value of %s outside domain %s",
				r.Name, a.Name, a.Domain.Name)
		}
		if r.IsKey(a.Name) {
			if !f.IsConstant() || f.IsNowhereDefined() {
				return nil, fmt.Errorf("core: tuple on %s: key attribute %s must be a constant-valued function", r.Name, a.Name)
			}
			if !f.Domain().Equal(vls) {
				return nil, fmt.Errorf("core: tuple on %s: key attribute %s must be defined on all of vls %v, got %v",
					r.Name, a.Name, vls, f.Domain())
			}
		}
		t.v[a.Name] = f
	}
	return t, nil
}

// KeyValue returns the tuple's (constant) value for key attribute k.
func (t *Tuple) KeyValue(k string) value.Value {
	v, ok := t.v[k].ConstantValue()
	if !ok {
		return value.Value{}
	}
	return v
}

// keyString builds a canonical string of the tuple's key values in the
// scheme's key order, for relation indexing.
func (t *Tuple) keyString(r *schema.Scheme) string {
	parts := make([]string, len(r.Key))
	for i, k := range r.Key {
		parts[i] = t.KeyValue(k).String()
	}
	return encodeKey(parts)
}

// encodeKey combines the canonical renderings of a tuple's key values
// into the collision-free index string of value.EncodeKey (escaped
// parts joined with '|', injective even when a key value contains the
// separator). Relation.byKey and Relation.Lookup both index through
// this function.
func encodeKey(parts []string) string { return value.EncodeKey(parts) }

// restrict returns t|L: the tuple with lifespan t.l ∩ L and every value
// restricted accordingly. Returns nil when the restricted lifespan is
// empty (no tuple survives).
func (t *Tuple) restrict(l lifespan.Lifespan) *Tuple {
	nl := t.l.Intersect(l)
	if nl.IsEmpty() {
		return nil
	}
	nv := make(map[string]tfunc.Func, len(t.v))
	for a, f := range t.v {
		nv[a] = f.Restrict(nl)
	}
	return &Tuple{l: nl, v: nv}
}

// Equal reports structural equality of two tuples: same lifespan and
// extensionally equal value functions per attribute.
func (t *Tuple) Equal(o *Tuple) bool {
	if !t.l.Equal(o.l) || len(t.v) != len(o.v) {
		return false
	}
	for a, f := range t.v {
		g, ok := o.v[a]
		if !ok || !f.Equal(g) {
			return false
		}
	}
	return true
}

// Mergable implements the paper's mergability test for tuples t1, t2 on
// merge-compatible schemes:
//
//  2. ∀s ∈ t1.l ∀s' ∈ t2.l  t1.v(K1)(s) = t2.v(K2)(s')  (same key value)
//  3. ∀A ∈ A1 ∀s ∈ (t1.l ∩ t2.l)  t1.v(A)(s) = t2.v(A)(s)  (no contradiction)
//
// Key constancy reduces condition 2 to comparing the constant key values.
func (t *Tuple) Mergable(o *Tuple, r *schema.Scheme) bool {
	for _, k := range r.Key {
		if !t.KeyValue(k).Equal(o.KeyValue(k)) {
			return false
		}
	}
	shared := t.l.Intersect(o.l)
	if shared.IsEmpty() {
		return true
	}
	for _, a := range r.Attrs {
		if !t.v[a.Name].Restrict(shared).Equal(o.v[a.Name].Restrict(shared)) {
			return false
		}
	}
	return true
}

// Merge computes t1 + t2: "(t1+t2).l = t1.l ∪ t2.l and (t1+t2).v(A) =
// t1.v(A) ∪ t2.v(A) for all A ∈ A1". Callers must have established
// mergability; Merge returns an error on contradiction as a safeguard.
func (t *Tuple) Merge(o *Tuple) (*Tuple, error) {
	nl := t.l.Union(o.l)
	nv := make(map[string]tfunc.Func, len(t.v))
	for a, f := range t.v {
		m, err := f.Merge(o.v[a])
		if err != nil {
			return nil, fmt.Errorf("core: merge of attribute %s: %w", a, err)
		}
		nv[a] = m
	}
	return &Tuple{l: nl, v: nv}, nil
}

// String renders the tuple's lifespan and values in scheme order, e.g.
// "⟨ls={[0,9]} NAME=<{[0,9]},\"John\"> SAL={[0,4]→30000, [5,9]→34000}⟩".
func (t *Tuple) String() string { return t.render(nil) }

// render prints values in the order given by scheme (or sorted by name
// when scheme is nil).
func (t *Tuple) render(r *schema.Scheme) string {
	var names []string
	if r != nil {
		names = r.AttrNames()
	} else {
		for a := range t.v {
			names = append(names, a)
		}
		sort.Strings(names)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "⟨ls=%s", t.l)
	for _, a := range names {
		fmt.Fprintf(&b, " %s=%s", a, t.v[a])
	}
	b.WriteString("⟩")
	return b.String()
}

// TupleBuilder assembles a tuple attribute by attribute. It is the
// ergonomic construction path used by examples, generators and tests.
type TupleBuilder struct {
	r    *schema.Scheme
	ls   lifespan.Lifespan
	vals map[string]*tfunc.Builder
	errs []error
}

// NewTupleBuilder starts a tuple on scheme r with lifespan ls.
func NewTupleBuilder(r *schema.Scheme, ls lifespan.Lifespan) *TupleBuilder {
	return &TupleBuilder{r: r, ls: ls, vals: make(map[string]*tfunc.Builder)}
}

// Key sets a key attribute to the constant v over the whole vls of the
// attribute (key values must cover the tuple's lifespan).
func (b *TupleBuilder) Key(attr string, v value.Value) *TupleBuilder {
	a, ok := b.r.Attr(attr)
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("core: unknown attribute %s", attr))
		return b
	}
	vls := b.ls.Intersect(a.Lifespan)
	fb := b.builderFor(attr)
	for _, iv := range vls.Intervals() {
		fb.Set(iv.Lo, iv.Hi, v)
	}
	return b
}

// Set assigns attr = v over [lo,hi] (clipped to vls at Build time the
// hard way: out-of-vls assignments surface as construction errors, per
// the paper's structural conditions).
func (b *TupleBuilder) Set(attr string, lo, hi chronon.Time, v value.Value) *TupleBuilder {
	b.builderFor(attr).Set(lo, hi, v)
	return b
}

// SetAt assigns attr = v at the single chronon s.
func (b *TupleBuilder) SetAt(attr string, s chronon.Time, v value.Value) *TupleBuilder {
	return b.Set(attr, s, s, v)
}

// SetConst assigns attr = v over the attribute's entire vls.
func (b *TupleBuilder) SetConst(attr string, v value.Value) *TupleBuilder {
	return b.Key(attr, v) // same mechanics; key-ness checked at Build
}

func (b *TupleBuilder) builderFor(attr string) *tfunc.Builder {
	fb, ok := b.vals[attr]
	if !ok {
		fb = &tfunc.Builder{}
		b.vals[attr] = fb
	}
	return fb
}

// Build validates and returns the tuple.
func (b *TupleBuilder) Build() (*Tuple, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	vals := make(map[string]tfunc.Func, len(b.vals))
	for a, fb := range b.vals {
		vals[a] = fb.Build()
	}
	return NewTuple(b.r, b.ls, vals)
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *TupleBuilder) MustBuild() *Tuple {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
