package core

import (
	"strings"
	"testing"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

func TestNewTupleValidation(t *testing.T) {
	s := empScheme()
	full := ls("{[0,9]}")
	key := tfunc.Constant(full, value.String_("John"))
	sal := tfunc.Constant(full, value.Int(30000))

	// Valid tuple.
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": key, "SAL": sal}); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	// Empty lifespan.
	if _, err := NewTuple(s, lifespan.Empty(), nil); err == nil {
		t.Error("empty lifespan must fail")
	}
	// Unknown attribute.
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": key, "XYZ": sal}); err == nil {
		t.Error("unknown attribute must fail")
	}
	// Value outside vls.
	wide := tfunc.Constant(ls("{[0,50]}"), value.Int(1))
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": key, "SAL": wide}); err == nil {
		t.Error("value outside tuple lifespan must fail")
	}
	// Value outside domain.
	badKind := tfunc.Constant(full, value.String_("notanint"))
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": key, "SAL": badKind}); err == nil {
		t.Error("value outside attribute domain must fail")
	}
	// Non-constant key.
	varying := (&tfunc.Builder{}).
		Set(0, 4, value.String_("John")).
		Set(5, 9, value.String_("Johnny")).Build()
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": varying, "SAL": sal}); err == nil {
		t.Error("varying key must fail (DOM(K) ∈ CD)")
	}
	// Key not covering vls.
	partialKey := tfunc.Constant(ls("{[0,4]}"), value.String_("John"))
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": partialKey, "SAL": sal}); err == nil {
		t.Error("key undefined over part of vls must fail")
	}
	// Missing non-key attribute is fine (nowhere-defined value).
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"NAME": key}); err != nil {
		t.Errorf("missing non-key value should default to nowhere-defined: %v", err)
	}
	// Missing key attribute is not fine.
	if _, err := NewTuple(s, full, map[string]tfunc.Func{"SAL": sal}); err == nil {
		t.Error("missing key must fail")
	}
}

func TestVLS(t *testing.T) {
	// Figure 7 of the paper: the value of attribute An for tuple_m is
	// defined over X ∩ Y where X = ALS(An) and Y = tuple lifespan.
	attrLS := ls("{[0,10],[20,30]}") // X
	full := attrLS.Union(ls("{[11,19]}"))
	s := schema.MustNew("R", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "An", Domain: value.Ints, Lifespan: attrLS},
	)
	tupleLS := ls("{[5,25]}") // Y
	tp := NewTupleBuilder(s, tupleLS).
		Key("K", value.String_("obj")).
		Set("An", 5, 10, value.Int(1)).
		Set("An", 20, 25, value.Int(2)).
		MustBuild()
	want := ls("{[5,10],[20,25]}") // X ∩ Y
	if got := tp.VLS(s, "An"); !got.Equal(want) {
		t.Errorf("vls = %v, want %v", got, want)
	}
	// VLSSet intersects across attributes.
	if got := tp.VLSSet(s, []string{"K", "An"}); !got.Equal(want) {
		t.Errorf("vls set = %v, want %v", got, want)
	}
	if got := tp.VLSSet(s, []string{"K"}); !got.Equal(tupleLS) {
		t.Errorf("vls(K) = %v, want %v", got, tupleLS)
	}
}

func TestTupleAtUndefined(t *testing.T) {
	r := empRelation(t)
	john, ok := r.Lookup(`"John"`)
	if !ok {
		t.Fatal("John not found")
	}
	if v, ok := john.At("SAL", 3); !ok || v.AsInt() != 30000 {
		t.Errorf("SAL at 3 = %v, %v", v, ok)
	}
	if v, ok := john.At("SAL", 7); !ok || v.AsInt() != 34000 {
		t.Errorf("SAL at 7 = %v, %v", v, ok)
	}
	if _, ok := john.At("SAL", 50); ok {
		t.Error("SAL outside lifespan must be undefined")
	}
	if _, ok := john.At("NOPE", 3); ok {
		t.Error("unknown attribute is undefined")
	}
}

func TestTupleMergable(t *testing.T) {
	s := empScheme()
	early := NewTupleBuilder(s, ls("{[0,4]}")).
		Key("NAME", value.String_("Ed")).
		Set("SAL", 0, 4, value.Int(10)).
		MustBuild()
	late := NewTupleBuilder(s, ls("{[8,12]}")).
		Key("NAME", value.String_("Ed")).
		Set("SAL", 8, 12, value.Int(20)).
		MustBuild()
	if !early.Mergable(late, s) {
		t.Error("disjoint lifespans, same key: mergable")
	}
	m, err := early.Merge(late)
	mustHold(t, err)
	if !m.Lifespan().Equal(ls("{[0,4],[8,12]}")) {
		t.Errorf("merged lifespan = %v", m.Lifespan())
	}
	if v, _ := m.At("SAL", 2); v.AsInt() != 10 {
		t.Error("early value lost")
	}
	if v, _ := m.At("SAL", 10); v.AsInt() != 20 {
		t.Error("late value lost")
	}
	// Different key: not mergable.
	other := NewTupleBuilder(s, ls("{[8,12]}")).
		Key("NAME", value.String_("Sue")).
		Set("SAL", 8, 12, value.Int(20)).
		MustBuild()
	if early.Mergable(other, s) {
		t.Error("different keys are never mergable (condition 2)")
	}
	// Overlap with contradiction: not mergable.
	clash := NewTupleBuilder(s, ls("{[2,6]}")).
		Key("NAME", value.String_("Ed")).
		Set("SAL", 2, 6, value.Int(99)).
		MustBuild()
	if early.Mergable(clash, s) {
		t.Error("contradicting overlap violates condition 3")
	}
	// Overlap with agreement: mergable.
	agree := NewTupleBuilder(s, ls("{[2,6]}")).
		Key("NAME", value.String_("Ed")).
		Set("SAL", 2, 4, value.Int(10)).
		Set("SAL", 5, 6, value.Int(15)).
		MustBuild()
	if !early.Mergable(agree, s) {
		t.Error("agreeing overlap is mergable")
	}
}

func TestTupleEqual(t *testing.T) {
	s := empScheme()
	mk := func(sal int64) *Tuple {
		return NewTupleBuilder(s, ls("{[0,4]}")).
			Key("NAME", value.String_("Ed")).
			Set("SAL", 0, 4, value.Int(sal)).
			MustBuild()
	}
	if !mk(10).Equal(mk(10)) {
		t.Error("identical tuples must be equal")
	}
	if mk(10).Equal(mk(11)) {
		t.Error("different values must differ")
	}
	longer := NewTupleBuilder(s, ls("{[0,5]}")).
		Key("NAME", value.String_("Ed")).
		Set("SAL", 0, 5, value.Int(10)).
		MustBuild()
	if mk(10).Equal(longer) {
		t.Error("different lifespans must differ")
	}
}

func TestRelationKeyCondition(t *testing.T) {
	r := empRelation(t)
	s := r.Scheme()
	dup := NewTupleBuilder(s, ls("{[50,60]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 50, 60, value.Int(1)).
		MustBuild()
	if err := r.Insert(dup); err == nil {
		t.Error("duplicate key across any times must be rejected")
	}
	// InsertMerging merges instead.
	if err := r.InsertMerging(dup); err != nil {
		t.Errorf("InsertMerging of disjoint extension should merge: %v", err)
	}
	john, _ := r.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[0,9],[50,60]}")) {
		t.Errorf("merged John lifespan = %v", john.Lifespan())
	}
	// Contradicting InsertMerging fails.
	clash := NewTupleBuilder(s, ls("{[0,2]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 2, value.Int(77)).
		MustBuild()
	if err := r.InsertMerging(clash); err == nil {
		t.Error("contradicting history must be rejected")
	}
}

func TestRelationLifespanAndWhen(t *testing.T) {
	r := empRelation(t)
	// LS(r) = union of tuple lifespans = [0,19].
	want := ls("{[0,19]}")
	if !r.Lifespan().Equal(want) {
		t.Errorf("LS(r) = %v, want %v", r.Lifespan(), want)
	}
	if !When(r).Equal(want) {
		t.Errorf("Ω(r) = %v, want %v", When(r), want)
	}
	if !When(NewRelation(r.Scheme())).IsEmpty() {
		t.Error("Ω(∅) = ∅")
	}
}

func TestRelationEqualAndString(t *testing.T) {
	a := empRelation(t)
	b := empRelation(t)
	if !a.Equal(b) {
		t.Error("identically built relations must be equal")
	}
	// Insertion order must not matter.
	c := NewRelation(a.Scheme())
	tuples := a.Tuples()
	for i := len(tuples) - 1; i >= 0; i-- {
		c.MustInsert(tuples[i])
	}
	if !a.Equal(c) {
		t.Error("relation equality must ignore insertion order")
	}
	out := a.String()
	for _, frag := range []string{"EMP(", `"John"`, `"Mary"`, `"Ahmed"`, "30000"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q:\n%s", frag, out)
		}
	}
}

func TestLookup(t *testing.T) {
	r := empRelation(t)
	if _, ok := r.Lookup(`"John"`); !ok {
		t.Error("Lookup John failed")
	}
	if _, ok := r.Lookup(`"Nobody"`); ok {
		t.Error("Lookup of absent key must miss")
	}
}

func TestRename(t *testing.T) {
	r := empRelation(t)
	rn, err := r.Rename("e")
	mustHold(t, err)
	if !rn.Scheme().HasAttr("e.NAME") || rn.Scheme().HasAttr("NAME") {
		t.Errorf("renamed attrs = %v", rn.Scheme().AttrNames())
	}
	if rn.Cardinality() != r.Cardinality() {
		t.Error("rename must preserve cardinality")
	}
	john, ok := rn.Lookup(`"John"`)
	if !ok {
		t.Fatal("renamed John lost")
	}
	if v, _ := john.At("e.SAL", 3); v.AsInt() != 30000 {
		t.Error("renamed values lost")
	}
}

func TestTupleBuilderErrors(t *testing.T) {
	s := empScheme()
	if _, err := NewTupleBuilder(s, ls("{[0,4]}")).Key("NOPE", value.Int(1)).Build(); err == nil {
		t.Error("unknown attribute in builder must fail at Build")
	}
	// Set outside the tuple lifespan is a construction error.
	if _, err := NewTupleBuilder(s, ls("{[0,4]}")).
		Key("NAME", value.String_("X")).
		Set("SAL", 0, 50, value.Int(1)).Build(); err == nil {
		t.Error("value beyond lifespan must fail")
	}
}
