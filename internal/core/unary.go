package core

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// Project implements π_X(r) (Section 4.2): "removes from r all but a
// specified set of attributes ... It does not change the values of any of
// the remaining attributes."
//
// When X retains the key, each tuple simply loses the dropped attributes.
// When X drops the key, the projection must re-identify objects by the
// remaining values (the historical counterpart of classical duplicate
// elimination): each tuple is decomposed into maximal segments on which
// all projected attributes are constant and defined, and segments with
// equal values — within and across source tuples — merge into one result
// object whose lifespan is the union of the matching times. At every
// time s this yields exactly the classical π_X of the snapshot at s.
func Project(r *Relation, attrs ...string) (*Relation, error) {
	rs, err := schema.ProjectScheme(r.scheme, attrs, r.scheme.Name)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rs)
	keyKept := sameKey(rs.Key, r.scheme.Key)
	for _, t := range r.Tuples() {
		if keyKept {
			nv := make(map[string]tfunc.Func, len(attrs))
			for _, a := range attrs {
				nv[a] = t.v[a]
			}
			nt, err := NewTuple(rs, t.l, nv)
			if err != nil {
				return nil, fmt.Errorf("core: project: %w", err)
			}
			if err := out.InsertMerging(nt); err != nil {
				return nil, fmt.Errorf("core: project: %w", err)
			}
			continue
		}
		// Key dropped: duplicate-elimination path. Joint domain = times
		// where every projected attribute is defined (no partial
		// sub-tuples, matching the classical model's lack of nulls).
		joint := t.l
		for _, a := range attrs {
			joint = joint.Intersect(t.v[a].Domain())
		}
		if joint.IsEmpty() {
			continue
		}
		for _, seg := range constantSegments(t, attrs, joint) {
			nv := make(map[string]tfunc.Func, len(attrs))
			for i, a := range attrs {
				nv[a] = tfunc.Constant(seg.ls, seg.vals[i])
			}
			nt, err := NewTuple(rs, seg.ls, nv)
			if err != nil {
				return nil, fmt.Errorf("core: project: %w", err)
			}
			if err := out.InsertMerging(nt); err != nil {
				return nil, fmt.Errorf("core: project: %w", err)
			}
		}
	}
	return out, nil
}

// segment is a maximal run of chronons over which the projected
// attributes hold one combination of values. Segments with the same
// value combination are pre-merged (their lifespans unioned) before
// insertion, so each source tuple contributes each combination once.
type segment struct {
	ls   lifespan.Lifespan
	vals []value.Value
}

// constantSegments partitions joint into value-constant pieces of the
// projected attributes, grouping equal combinations.
func constantSegments(t *Tuple, attrs []string, joint lifespan.Lifespan) []segment {
	// Breakpoints: the start of every step of every projected attribute.
	breakSet := make(map[chronon.Time]bool)
	for _, a := range attrs {
		t.v[a].Steps(func(iv chronon.Interval, _ value.Value) bool {
			breakSet[iv.Lo] = true
			return true
		})
	}
	var segs []segment
	byKey := make(map[string]int)
	for _, iv := range joint.Intervals() {
		lo := iv.Lo
		for lo <= iv.Hi {
			hi := iv.Hi
			for b := range breakSet {
				if b > lo && b <= hi {
					hi = b - 1
				}
			}
			vals := make([]value.Value, len(attrs))
			keyParts := make([]string, len(attrs))
			for i, a := range attrs {
				v, _ := t.At(a, lo)
				vals[i] = v
				keyParts[i] = v.String()
			}
			k := encodeKey(keyParts)
			piece := lifespan.Interval(lo, hi)
			if i, ok := byKey[k]; ok {
				segs[i].ls = segs[i].ls.Union(piece)
			} else {
				byKey[k] = len(segs)
				segs = append(segs, segment{ls: piece, vals: vals})
			}
			lo = hi + 1
		}
	}
	return segs
}

func sameKey(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// Quantifier selects between the existential and universal readings of a
// selection criterion over a set of times (Section 4.3: "allowing either
// existential or universal quantification over a set of times").
type Quantifier uint8

const (
	// Exists requires the predicate to hold at some time of L ∩ t.l.
	Exists Quantifier = iota
	// ForAll requires the predicate to hold at every time of L ∩ t.l.
	ForAll
)

// String renders the quantifier symbol.
func (q Quantifier) String() string {
	if q == ForAll {
		return "∀"
	}
	return "∃"
}

// Predicate is the simple selection criterion "A θ a" of Section 4.3:
// attribute Attr stands in relation Theta to the right-hand side, which
// is either a constant (Const) or another attribute (OtherAttr).
type Predicate struct {
	Attr      string
	Theta     value.Theta
	Const     value.Value
	OtherAttr string // non-empty when the RHS is an attribute
}

// String renders the predicate, e.g. "SAL=30000" or "MGR=NAME".
func (p Predicate) String() string {
	rhs := p.Const.String()
	if p.OtherAttr != "" {
		rhs = p.OtherAttr
	}
	return fmt.Sprintf("%s%s%s", p.Attr, p.Theta, rhs)
}

// holdsAt evaluates the predicate on tuple t at time s. A predicate over
// an attribute undefined at s is false there (the object has no value to
// satisfy it with).
func (p Predicate) holdsAt(t *Tuple, s chronon.Time) (bool, error) {
	lv, ok := t.At(p.Attr, s)
	if !ok {
		return false, nil
	}
	rv := p.Const
	if p.OtherAttr != "" {
		rv, ok = t.At(p.OtherAttr, s)
		if !ok {
			return false, nil
		}
	}
	return p.Theta.Apply(lv, rv)
}

// when computes the set of times in scope at which the predicate holds
// for t, stepping through the representation-level pieces rather than
// individual chronons where possible.
func (p Predicate) when(t *Tuple, scope lifespan.Lifespan) (lifespan.Lifespan, error) {
	f := t.Value(p.Attr).Restrict(scope)
	if f.IsNowhereDefined() {
		return lifespan.Empty(), nil
	}
	var ivs []chronon.Interval
	var evalErr error
	if p.OtherAttr == "" {
		// Constant RHS: each step satisfies or fails as a whole.
		f.Steps(func(iv chronon.Interval, v value.Value) bool {
			ok, err := p.Theta.Apply(v, p.Const)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				ivs = append(ivs, iv)
			}
			return true
		})
	} else {
		// Attribute RHS: evaluate pointwise over the joint domain.
		g := t.Value(p.OtherAttr).Restrict(scope)
		joint := f.Domain().Intersect(g.Domain())
		joint.Each(func(s chronon.Time) bool {
			lv, _ := f.At(s)
			rv, _ := g.At(s)
			ok, err := p.Theta.Apply(lv, rv)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				ivs = append(ivs, chronon.Point(s))
			}
			return true
		})
	}
	if evalErr != nil {
		return lifespan.Empty(), evalErr
	}
	return lifespan.New(ivs...), nil
}

// SelectIf implements σ-IF(A θ a, Q, L)(r) (Section 4.3):
//
//	σ-IF(AθA', Q, L)(r) = { t ∈ r | Q(s ∈ (L ∩ t.l)) [t(A)(s) θ a] }
//
// "If the selection criterion is met by a tuple t, then the entire tuple
// t is returned, and its lifespan is unchanged." Pass lifespan.All() for
// L = T (then s ∈ (L ∩ t.l) ≡ s ∈ t.l).
func SelectIf(r *Relation, p Predicate, q Quantifier, L lifespan.Lifespan) (*Relation, error) {
	if err := checkPredicate(r.scheme, p); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		scope := t.l.Intersect(L)
		holds, err := p.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-if %s: %w", p, err)
		}
		var keep bool
		if q == Exists {
			keep = !holds.IsEmpty()
		} else {
			// ∀ quantification over an empty scope is vacuously true, in
			// line with bounded quantification Q(s ∈ S).
			keep = scope.Minus(holds).IsEmpty()
		}
		if keep {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SelectWhen implements σ-WHEN(A θ a, L)(r) (Section 4.3): "if the
// selection criterion is met by a tuple t at some time in its lifespan,
// what is returned is a new tuple t' whose lifespan is exactly those
// points in time WHEN the criterion is met, and whose value is the same
// as t for those points" — a hybrid reduction in both the value and
// temporal dimensions.
//
// The paper's example: σ-WHEN(NAME=John ∧ SAL=30K)(emp) yields the tuple
// for John restricted to just those times when John earned 30K; compose
// two SelectWhen calls to express the conjunction.
func SelectWhen(r *Relation, p Predicate, L lifespan.Lifespan) (*Relation, error) {
	if err := checkPredicate(r.scheme, p); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		scope := t.l.Intersect(L)
		holds, err := p.when(t, scope)
		if err != nil {
			return nil, fmt.Errorf("core: select-when %s: %w", p, err)
		}
		nt := t.restrict(holds)
		if nt == nil {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func checkPredicate(s *schema.Scheme, p Predicate) error {
	if !s.HasAttr(p.Attr) {
		return fmt.Errorf("core: predicate %s: unknown attribute %s", p, p.Attr)
	}
	if p.OtherAttr != "" {
		if !s.HasAttr(p.OtherAttr) {
			return fmt.Errorf("core: predicate %s: unknown attribute %s", p, p.OtherAttr)
		}
	} else if !p.Const.IsValid() {
		return fmt.Errorf("core: predicate %s: invalid constant", p)
	}
	return nil
}

// TimesliceStatic implements the static TIME-SLICE T_L(r) (Section 4.4):
//
//	T_L(r) = { t | ∃t' ∈ r [l = L ∩ t'.l ∧ t.l = l ∧ t.v = t'.v|l] }
//
// Each tuple is restricted to the externally specified lifespan L; tuples
// whose lifespans miss L entirely vanish.
func TimesliceStatic(r *Relation, L lifespan.Lifespan) (*Relation, error) {
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		nt := t.restrict(L)
		if nt == nil {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TimesliceDynamic implements the dynamic TIME-SLICE T@A(r) (Section
// 4.4), defined for time-valued attributes A with DOM(A) ⊆ TT:
//
//	T@A(r) = { t | ∃t' ∈ r [for L, the image of t'(A), t.l = L ∧ t = t'|L] }
//
// "The subset of the lifespan that is selected for each tuple is
// determined by the image of the value of a specified attribute for that
// tuple" — each tuple supplies its own slicing lifespan.
func TimesliceDynamic(r *Relation, attr string) (*Relation, error) {
	a, ok := r.scheme.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("core: dynamic timeslice: unknown attribute %s", attr)
	}
	if !a.TimeValued() {
		return nil, fmt.Errorf("core: dynamic timeslice: attribute %s is %s-valued, not time-valued",
			attr, a.Domain.Kind)
	}
	out := NewRelation(r.scheme)
	for _, t := range r.Tuples() {
		img, err := t.Value(attr).TimeImage()
		if err != nil {
			return nil, fmt.Errorf("core: dynamic timeslice: %w", err)
		}
		nt := t.restrict(img)
		if nt == nil {
			continue
		}
		if err := out.Insert(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// When implements the WHEN operator Ω(r) = LS(r) (Section 4.5): the only
// operator mapping relations to lifespans rather than relations.
// "Intuitively, the WHEN operator returns the set of times over which the
// relation is defined. Used in conjunction with other operators, for
// example SELECT, it provides the answer to when particular conditions
// are satisfied" — and since its result is a lifespan, it can serve as
// the parameter of TIME-SLICE or SELECT.
func When(r *Relation) lifespan.Lifespan { return r.Lifespan() }
