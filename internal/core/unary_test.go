package core

import (
	"testing"

	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestProjectKeepsKey(t *testing.T) {
	emp := empRelation(t)
	p, err := Project(emp, "NAME", "SAL")
	mustHold(t, err)
	if p.Cardinality() != 3 {
		t.Fatalf("cardinality = %d", p.Cardinality())
	}
	john, _ := p.Lookup(`"John"`)
	if john == nil {
		t.Fatal("John lost")
	}
	if !john.Lifespan().Equal(ls("{[0,9]}")) {
		t.Error("projection must not change lifespans")
	}
	if v, _ := john.At("SAL", 7); v.AsInt() != 34000 {
		t.Error("projection must not change values")
	}
	if p.Scheme().HasAttr("DEPT") {
		t.Error("DEPT must be projected away")
	}
}

func TestProjectUnknownAttr(t *testing.T) {
	emp := empRelation(t)
	if _, err := Project(emp, "NOPE"); err == nil {
		t.Error("projection onto unknown attribute must fail")
	}
}

func TestProjectDropKeyMerges(t *testing.T) {
	// Projecting away the key keys the result on the remaining
	// attributes; objects with identical projected histories merge.
	s := empScheme()
	r := NewRelation(s)
	for _, n := range []string{"A", "B"} {
		r.MustInsert(NewTupleBuilder(s, ls("{[0,4]}")).
			Key("NAME", value.String_(n)).
			Set("DEPT", 0, 4, value.String_("Toys")).
			MustBuild())
	}
	p, err := Project(r, "DEPT")
	mustHold(t, err)
	if p.Cardinality() != 1 {
		t.Fatalf("identical projected histories must merge, got %d:\n%s", p.Cardinality(), p)
	}
	toys := p.Tuples()[0]
	if !toys.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("merged lifespan = %v", toys.Lifespan())
	}
}

func TestSelectIfExists(t *testing.T) {
	emp := empRelation(t)
	// ∃s: SAL = 30000 — John (early) and Ahmed (early) qualify; their
	// whole tuples come back with lifespans unchanged.
	got, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, Exists, lifespan.All())
	mustHold(t, err)
	if got.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2\n%s", got.Cardinality(), got)
	}
	john, ok := got.Lookup(`"John"`)
	if !ok {
		t.Fatal("John must qualify")
	}
	if !john.Lifespan().Equal(ls("{[0,9]}")) {
		t.Error("SELECT-IF must not change tuple lifespans")
	}
	if v, _ := john.At("SAL", 7); v.AsInt() != 34000 {
		t.Error("SELECT-IF must keep the full history, including non-matching periods")
	}
}

func TestSelectIfForAll(t *testing.T) {
	emp := empRelation(t)
	// ∀s: SAL >= 31000 — only Mary (40000 throughout). Ahmed fails (30000
	// early), John fails (30000 early).
	got, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(31000)}, ForAll, lifespan.All())
	mustHold(t, err)
	if got.Cardinality() != 1 {
		t.Fatalf("cardinality = %d, want 1\n%s", got.Cardinality(), got)
	}
	if _, ok := got.Lookup(`"Mary"`); !ok {
		t.Error("Mary must qualify")
	}
}

func TestSelectIfScopedLifespan(t *testing.T) {
	emp := empRelation(t)
	// Within L = [5,9]: ∀s SAL >= 31000 holds for John (34000 on [5,9]),
	// Mary (40000), and Ahmed (31000 on [8,9]).
	got, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(31000)}, ForAll, ls("{[5,9]}"))
	mustHold(t, err)
	if got.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3\n%s", got.Cardinality(), got)
	}
	// Within L = [0,4]: ∃s SAL >= 31000 holds only for Mary.
	got2, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(31000)}, Exists, ls("{[0,4]}"))
	mustHold(t, err)
	if got2.Cardinality() != 1 {
		t.Fatalf("scoped ∃ cardinality = %d, want 1", got2.Cardinality())
	}
}

func TestSelectIfVacuousForAll(t *testing.T) {
	emp := empRelation(t)
	// L disjoint from every lifespan: ∀ over the empty scope is vacuously
	// true — all tuples qualify (bounded quantification semantics).
	got, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(-1)}, ForAll, ls("{[90,99]}"))
	mustHold(t, err)
	if got.Cardinality() != emp.Cardinality() {
		t.Errorf("vacuous ∀ must keep all tuples, got %d", got.Cardinality())
	}
	// while ∃ over the empty scope is false — none qualify.
	got2, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(-1)}, Exists, ls("{[90,99]}"))
	mustHold(t, err)
	if got2.Cardinality() != 0 {
		t.Errorf("empty-scope ∃ must drop all tuples, got %d", got2.Cardinality())
	}
}

func TestSelectWhenPaperExample(t *testing.T) {
	// The paper's example: σ-WHEN(NAME=John, SAL=30K)(emp) yields a
	// relation with only John's tuple, with lifespan exactly the times
	// when John earned 30K.
	emp := empRelation(t)
	johns, err := SelectWhen(emp, Predicate{Attr: "NAME", Theta: value.EQ, Const: value.String_("John")}, lifespan.All())
	mustHold(t, err)
	got, err := SelectWhen(johns, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, lifespan.All())
	mustHold(t, err)
	tp := singleTuple(t, got)
	if !tp.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("WHEN lifespan = %v, want {[0,4]}", tp.Lifespan())
	}
	if v, _ := tp.At("SAL", 2); v.AsInt() != 30000 {
		t.Error("values preserved over the matching period")
	}
	if _, ok := tp.At("SAL", 7); ok {
		t.Error("values outside the matching period must be cut")
	}
}

func TestSelectWhenDropsNonMatching(t *testing.T) {
	emp := empRelation(t)
	got, err := SelectWhen(emp, Predicate{Attr: "SAL", Theta: value.GT, Const: value.Int(35000)}, lifespan.All())
	mustHold(t, err)
	// Only Mary ever exceeds 35000.
	tp := singleTuple(t, got)
	if v := tp.KeyValue("NAME"); v.AsString() != "Mary" {
		t.Errorf("unexpected survivor %v", v)
	}
	if !tp.Lifespan().Equal(ls("{[3,19]}")) {
		t.Errorf("Mary matches over her whole lifespan, got %v", tp.Lifespan())
	}
}

func TestSelectWhenDisconnectedResult(t *testing.T) {
	// An attribute that oscillates produces a disconnected WHEN lifespan.
	s := empScheme()
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, ls("{[0,9]}")).
		Key("NAME", value.String_("Flip")).
		Set("SAL", 0, 2, value.Int(10)).
		Set("SAL", 3, 5, value.Int(20)).
		Set("SAL", 6, 9, value.Int(10)).
		MustBuild())
	got, err := SelectWhen(r, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(10)}, lifespan.All())
	mustHold(t, err)
	tp := singleTuple(t, got)
	if !tp.Lifespan().Equal(ls("{[0,2],[6,9]}")) {
		t.Errorf("oscillating WHEN lifespan = %v", tp.Lifespan())
	}
}

func TestSelectAttrVsAttr(t *testing.T) {
	// Predicate with attribute RHS: SAL = BONUS.
	full := ls("{[0,9]}")
	s := schema.MustNew("R", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full},
	)
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, full).
		Key("K", value.String_("x")).
		Set("SAL", 0, 9, value.Int(100)).
		Set("BONUS", 0, 4, value.Int(100)).
		Set("BONUS", 5, 9, value.Int(50)).
		MustBuild())
	got, err := SelectWhen(r, Predicate{Attr: "SAL", Theta: value.EQ, OtherAttr: "BONUS"}, lifespan.All())
	mustHold(t, err)
	tp := singleTuple(t, got)
	if !tp.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("SAL=BONUS holds on {[0,4]}, got %v", tp.Lifespan())
	}
}

func TestSelectErrors(t *testing.T) {
	emp := empRelation(t)
	if _, err := SelectIf(emp, Predicate{Attr: "NOPE", Theta: value.EQ, Const: value.Int(1)}, Exists, lifespan.All()); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := SelectWhen(emp, Predicate{Attr: "SAL", Theta: value.EQ, OtherAttr: "NOPE"}, lifespan.All()); err == nil {
		t.Error("unknown RHS attribute must fail")
	}
	if _, err := SelectIf(emp, Predicate{Attr: "SAL", Theta: value.EQ}, Exists, lifespan.All()); err == nil {
		t.Error("invalid constant must fail")
	}
	// Incomparable kinds surface as errors.
	if _, err := SelectWhen(emp, Predicate{Attr: "SAL", Theta: value.LT, Const: value.String_("x")}, lifespan.All()); err == nil {
		t.Error("ordering int against string must fail")
	}
}

func TestTimesliceStatic(t *testing.T) {
	emp := empRelation(t)
	sliced, err := TimesliceStatic(emp, ls("{[4,6]}"))
	mustHold(t, err)
	// John [0,9]→[4,6]; Mary [3,19]→[4,6]; Ahmed [0,3]∪[8,14]→∅ (gone).
	if sliced.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2\n%s", sliced.Cardinality(), sliced)
	}
	john, _ := sliced.Lookup(`"John"`)
	if !john.Lifespan().Equal(ls("{[4,6]}")) {
		t.Errorf("sliced lifespan = %v", john.Lifespan())
	}
	if v, _ := john.At("SAL", 4); v.AsInt() != 30000 {
		t.Error("pre-raise value expected at 4")
	}
	if v, _ := john.At("SAL", 6); v.AsInt() != 34000 {
		t.Error("post-raise value expected at 6")
	}
	if _, ok := john.At("SAL", 8); ok {
		t.Error("values outside the slice must be undefined")
	}
}

func TestTimesliceEmptyAndIdentity(t *testing.T) {
	emp := empRelation(t)
	empty, err := TimesliceStatic(emp, ls("{[90,99]}"))
	mustHold(t, err)
	if empty.Cardinality() != 0 {
		t.Error("slice outside all lifespans is empty")
	}
	ident, err := TimesliceStatic(emp, lifespan.All())
	mustHold(t, err)
	if !ident.Equal(emp) {
		t.Error("T_T(r) = r")
	}
}

func TestTimesliceDynamic(t *testing.T) {
	// A relation with a time-valued attribute REVIEW: each employee's
	// review dates. T@REVIEW(r) keeps each tuple only at the times its
	// REVIEW attribute refers to.
	full := ls("{[0,19]}")
	s := schema.MustNew("EMPREV", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "REVIEW", Domain: value.Times, Lifespan: full},
	)
	r := NewRelation(s)
	r.MustInsert(NewTupleBuilder(s, ls("{[0,10]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 10, value.Int(100)).
		Set("REVIEW", 0, 4, value.TimeVal(3)).  // review scheduled at 3
		Set("REVIEW", 5, 10, value.TimeVal(9)). // then at 9
		MustBuild())
	r.MustInsert(NewTupleBuilder(s, ls("{[0,10]}")).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 0, 10, value.Int(200)).
		Set("REVIEW", 0, 10, value.TimeVal(50)). // refers outside her lifespan
		MustBuild())
	got, err := TimesliceDynamic(r, "REVIEW")
	mustHold(t, err)
	// John survives at {3,9}; Mary's image {50} misses her lifespan.
	tp := singleTuple(t, got)
	if !tp.Lifespan().Equal(ls("{3,9}")) {
		t.Errorf("dynamic slice lifespan = %v, want {3,9}", tp.Lifespan())
	}
	// Errors: unknown attribute, non-time-valued attribute.
	if _, err := TimesliceDynamic(r, "NOPE"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := TimesliceDynamic(r, "SAL"); err == nil {
		t.Error("non-time-valued attribute must fail")
	}
}

func TestWhenFeedsTimeslice(t *testing.T) {
	// "since the result of WHEN is a lifespan, it can serve as the
	// parameter to those relational operators which require a lifespan":
	// slice EMP to the times when anyone earned 30000.
	emp := empRelation(t)
	low, err := SelectWhen(emp, Predicate{Attr: "SAL", Theta: value.EQ, Const: value.Int(30000)}, lifespan.All())
	mustHold(t, err)
	when := When(low) // John [0,4] ∪ Ahmed [0,3] = [0,4]
	if !when.Equal(ls("{[0,4]}")) {
		t.Fatalf("Ω = %v, want {[0,4]}", when)
	}
	sliced, err := TimesliceStatic(emp, when)
	mustHold(t, err)
	mary, _ := sliced.Lookup(`"Mary"`)
	if !mary.Lifespan().Equal(ls("{[3,4]}")) {
		t.Errorf("Mary during low-pay times = %v", mary.Lifespan())
	}
}
