package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Write-group metrics: committed/aborted group counts and the size
// distributions (staged tuples, touched relations) that tell an
// operator what the atomic commit unit actually looks like in
// production — the numbers a future WAL sizes its segments against.
var (
	mGroupCommits   = obs.Default.Counter("core.writegroup.commits")
	mGroupAborts    = obs.Default.Counter("core.writegroup.aborts")
	mGroupTuples    = obs.Default.Histogram("core.writegroup.tuples")
	mGroupRelations = obs.Default.Histogram("core.writegroup.relations")
)

// WriteGroup is a staged multi-relation mutation: any mix of inserts,
// history-merging inserts and batches, spanning any number of
// relations, published as one atomic unit. The model of the paper is a
// database of historical relations evolving *together*; per-relation
// batches alone still let a reader pin between two related
// publications and observe a cut the model never admits — relation A
// after a logical update, relation B before it. A write group closes
// that hole:
//
//	g := core.NewWriteGroup()
//	g.InsertBatch(orders, newOrders)
//	g.InsertMerging(customers, updatedHistory)
//	if err := g.Commit(); err != nil { ... } // nothing was applied
//
// Commit validates every staged mutation up front — duplicate keys
// (within the group or against existing tuples), non-mergable
// histories — and only then applies, so a failing group leaves every
// relation untouched. The apply runs under a single acquisition of the
// global publish lock with the mutexes of all touched relations held
// at once, bumps each relation's version once, ticks the database
// epoch once, and hands each relation's observers one coalesced
// ChangeBatch (appended tuples plus MergeSteps). Pin takes the publish
// lock exclusively, so a pinned snapshot sees a committed group either
// entirely or not at all — across however many relations it spans.
//
// A WriteGroup is a single-goroutine staging buffer: stage and commit
// from one goroutine, and discard it after Commit (successful or not).
// Distinct groups may commit concurrently; relation mutexes are taken
// in a global creation order, so overlapping groups serialize instead
// of deadlocking.
type WriteGroup struct {
	ops   map[*Relation][]groupOp
	order []*Relation // staging order, for deterministic validation errors
}

// groupOp is one staged mutation: append t, or merge it into an
// existing history (InsertMerging semantics) when merging is set.
type groupOp struct {
	tuple   *Tuple
	merging bool
}

// NewWriteGroup returns an empty staging buffer.
func NewWriteGroup() *WriteGroup {
	return &WriteGroup{ops: make(map[*Relation][]groupOp)}
}

func (g *WriteGroup) add(r *Relation, op groupOp) {
	if _, ok := g.ops[r]; !ok {
		g.order = append(g.order, r)
	}
	g.ops[r] = append(g.ops[r], op)
}

// Insert stages the append of t into r, enforcing key uniqueness at
// commit time (against both live tuples and earlier staged ones).
func (g *WriteGroup) Insert(r *Relation, t *Tuple) {
	g.add(r, groupOp{tuple: t})
}

// InsertMerging stages t into r with history-merging semantics: at
// commit time, a live or earlier-staged tuple sharing t's key is
// merged with it (t + t'), and a contradicting history fails the whole
// group.
func (g *WriteGroup) InsertMerging(r *Relation, t *Tuple) {
	g.add(r, groupOp{tuple: t, merging: true})
}

// InsertBatch stages the append of every tuple of ts into r. Staging
// an empty batch is a no-op, mirroring Relation.InsertBatch.
func (g *WriteGroup) InsertBatch(r *Relation, ts []*Tuple) {
	for _, t := range ts {
		g.add(r, groupOp{tuple: t})
	}
}

// Len reports the number of staged mutations across all relations.
func (g *WriteGroup) Len() int {
	n := 0
	for _, ops := range g.ops {
		n += len(ops)
	}
	return n
}

// Relations reports how many distinct relations the group touches.
func (g *WriteGroup) Relations() int { return len(g.order) }

// lockRelationsOrdered is the one sanctioned way to hold more than one
// relation mutex at a time: it write-locks the given relations in
// ascending creation-id order, so two overlapping groups always contend
// on their common relations in the same order and cannot deadlock. It
// returns its own sorted copy; release with unlockRelations.
func lockRelationsOrdered(rels []*Relation) []*Relation {
	sorted := append([]*Relation(nil), rels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	for _, r := range sorted {
		//lint:allow lockorder canonical ordered acquisition site; the sort above is the ordering argument
		r.mu.Lock()
	}
	return sorted
}

// unlockRelations releases locks taken by lockRelationsOrdered, in
// reverse acquisition order.
func unlockRelations(sorted []*Relation) {
	for i := len(sorted) - 1; i >= 0; i-- {
		sorted[i].mu.Unlock()
	}
}

// groupApply is one relation's validated outcome, computed under the
// relation's lock before anything mutates: the tuples to append (with
// their canonical key strings) and the live slots to overwrite.
type groupApply struct {
	rel      *Relation
	appended []*Tuple
	keys     []string
	merges   []MergeStep
}

// Commit validates and atomically publishes the staged group. On any
// validation error — a duplicate key, a contradicting merge — no
// relation is modified, no version moves and no observer is notified;
// the group may be corrected and committed again. On success each
// touched relation's version advances by exactly one, the database
// epoch ticks exactly once, and observers receive one coalesced
// ChangeBatch per relation after all locks are released. An empty
// group commits trivially: no locks, no epoch tick.
func (g *WriteGroup) Commit() error {
	if len(g.order) == 0 {
		return nil
	}
	// Frozen snapshot views are rejected before any lock is taken (and
	// validation errors below follow the same nothing-applied rule).
	for _, r := range g.order {
		if r.origin != nil {
			mGroupAborts.Inc()
			return errFrozen(r)
		}
	}
	// One publish-lock acquisition covers the whole group. Writers hold
	// the shared side (distinct groups and single-relation writers still
	// run concurrently); Pin holds the exclusive side, so no snapshot
	// can be captured between two relations of this group. Lock order is
	// publish.mu → r.mu everywhere; the relation mutexes themselves are
	// taken in ascending creation order so overlapping groups serialize.
	lockPublishShared()
	rels := lockRelationsOrdered(g.order)
	unlockAll := func() {
		unlockRelations(rels)
		publish.mu.RUnlock()
	}

	// Phase 1 — validate everything and precompute every outcome, in
	// staging order so the first error reported is the first one staged.
	applies := make([]groupApply, 0, len(g.order))
	for _, r := range g.order {
		ap, err := r.validateGroupLocked(g.ops[r])
		if err != nil {
			unlockAll()
			mGroupAborts.Inc()
			return err
		}
		applies = append(applies, ap)
	}

	// Between validation and apply, the commit hook gets one shot at
	// making the group durable (see CommitHook). It runs with every
	// lock still held, so a failure aborts with nothing applied and no
	// snapshot can have observed the group.
	if hp := commitHook.Load(); hp != nil {
		if err := (*hp)(g); err != nil {
			unlockAll()
			mGroupAborts.Inc()
			return err
		}
	}

	// Phase 2 — apply; nothing below can fail.
	published := false
	type delivery struct {
		rel *Relation
		obs []Observer
		c   Change
	}
	deliveries := make([]delivery, 0, len(applies))
	for _, ap := range applies {
		r := ap.rel
		if r.published.Load() {
			published = true
		}
		c, obs := r.applyGroupLocked(ap)
		deliveries = append(deliveries, delivery{rel: r, obs: obs, c: c})
	}
	unlockRelations(rels)
	if published {
		// One tick for the whole group: the epoch counts publications,
		// and the group is one. It moves under the shared side of the
		// publish lock, like every single-relation publication.
		publish.epoch.Add(1)
	}
	publish.mu.RUnlock()
	mGroupCommits.Inc()
	mGroupTuples.Observe(int64(g.Len()))
	mGroupRelations.Observe(int64(len(g.order)))
	for _, d := range deliveries {
		notify(d.obs, d.rel, d.c)
	}
	return nil
}

// validateGroupLocked simulates the relation's staged ops under its
// held mutex without mutating anything: key-uniqueness against live
// tuples and earlier staged ones, merge compatibility, and the merged
// tuples themselves. Ops apply in staging order, so a merging insert
// may land on a tuple appended (or already merged) earlier in the same
// group.
func (r *Relation) validateGroupLocked(ops []groupOp) (groupApply, error) {
	ap := groupApply{rel: r}
	pendingIdx := make(map[string]int, len(ops)) // key → index into ap.appended
	mergeIdx := make(map[int]int)                // live slot → index into ap.merges
	for _, op := range ops {
		ks := op.tuple.keyString(r.scheme)
		if j, ok := pendingIdx[ks]; ok {
			// Collides with a tuple appended earlier in this group.
			if !op.merging {
				return ap, fmt.Errorf("core: relation %s: duplicate key %s in write group", r.scheme.Name, ks)
			}
			m, err := mergeInto(r, ks, ap.appended[j], op.tuple)
			if err != nil {
				return ap, err
			}
			ap.appended[j] = m
			continue
		}
		if i, live := r.byKey[ks]; live {
			if !op.merging {
				return ap, fmt.Errorf("core: relation %s: duplicate key %s in write group", r.scheme.Name, ks)
			}
			cur := r.tuples[i]
			if mi, merged := mergeIdx[i]; merged {
				cur = ap.merges[mi].New
			}
			m, err := mergeInto(r, ks, cur, op.tuple)
			if err != nil {
				return ap, err
			}
			if mi, merged := mergeIdx[i]; merged {
				ap.merges[mi].New = m
			} else {
				mergeIdx[i] = len(ap.merges)
				ap.merges = append(ap.merges, MergeStep{Pos: i, Old: r.tuples[i], New: m})
			}
			continue
		}
		pendingIdx[ks] = len(ap.appended)
		ap.appended = append(ap.appended, op.tuple)
		ap.keys = append(ap.keys, ks)
	}
	return ap, nil
}

// mergeInto merges t into the existing history cur, surfacing the same
// contradiction error InsertMerging reports.
func mergeInto(r *Relation, ks string, cur, t *Tuple) (*Tuple, error) {
	if !cur.Mergable(t, r.scheme) {
		return nil, fmt.Errorf("core: relation %s: tuple with key %s contradicts existing history", r.scheme.Name, ks)
	}
	return cur.Merge(t)
}

// applyGroupLocked installs one relation's validated outcome under its
// held mutex: overwrite the merged slots (copy-on-write if a snapshot
// is outstanding), append the new tuples in one extension of the
// prefix, bump the version once, and return the coalesced Change to
// deliver after every lock in the group is released.
func (r *Relation) applyGroupLocked(ap groupApply) (Change, []Observer) {
	if len(ap.merges) > 0 && r.shared.Load() {
		r.tuples = append([]*Tuple(nil), r.tuples...)
		r.shared.Store(false)
	}
	for _, m := range ap.merges {
		r.tuples[m.Pos] = m.New
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, ap.appended...)
	for i, ks := range ap.keys {
		r.byKey[ks] = pos + i
	}
	r.version++
	c := Change{Kind: ChangeBatch, Pos: pos, Batch: ap.appended, Merges: ap.merges, Version: r.version}
	return c, r.observers
}
