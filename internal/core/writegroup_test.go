package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/schema"
)

// TestWriteGroupEmpty: committing an empty group is free — no error,
// no epoch tick, and a relation-less group never touches a lock.
func TestWriteGroupEmpty(t *testing.T) {
	e0 := Epoch()
	g := NewWriteGroup()
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if Epoch() != e0 {
		t.Fatal("empty group ticked the epoch")
	}
	// Staging an empty batch stages nothing.
	r := NewRelation(kvScheme("R"))
	r.MarkPublished()
	g2 := NewWriteGroup()
	g2.InsertBatch(r, nil)
	if g2.Len() != 0 || g2.Relations() != 0 {
		t.Fatalf("empty batch staged %d ops over %d relations", g2.Len(), g2.Relations())
	}
	if err := g2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.Version() != 0 || Epoch() != e0 {
		t.Fatal("empty-batch group mutated state")
	}
}

// TestWriteGroupSingleRelationEqualsInsertBatch: a group staging one
// batch into one relation must be observably identical to
// Relation.InsertBatch — same resulting tuples, one version bump, one
// epoch tick, one coalesced ChangeBatch of the same shape, and the
// same nothing-applied behavior on a duplicate key.
func TestWriteGroupSingleRelationEqualsInsertBatch(t *testing.T) {
	s := kvScheme("R")
	mkBatch := func() []*Tuple {
		ts := make([]*Tuple, 8)
		for i := range ts {
			ts[i] = kvTuple(s, fmt.Sprintf("k%02d", i), int64(i), 0, 9)
		}
		return ts
	}

	viaBatch, viaGroup := NewRelation(s), NewRelation(s)
	viaBatch.MarkPublished()
	viaGroup.MarkPublished()
	recB, recG := &batchRecorder{}, &batchRecorder{}
	viaBatch.Observe(recB)
	viaGroup.Observe(recG)

	if err := viaBatch.InsertBatch(mkBatch()); err != nil {
		t.Fatal(err)
	}
	e0 := Epoch()
	g := NewWriteGroup()
	g.InsertBatch(viaGroup, mkBatch())
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if Epoch() != e0+1 {
		t.Fatalf("group epoch delta %d, want exactly 1", Epoch()-e0)
	}

	if !viaBatch.Equal(viaGroup) {
		t.Fatal("group-loaded relation differs from batch-loaded relation")
	}
	if viaBatch.Version() != viaGroup.Version() {
		t.Fatalf("version %d vs %d", viaBatch.Version(), viaGroup.Version())
	}
	if len(recB.changes) != 1 || len(recG.changes) != 1 {
		t.Fatalf("notifications: batch %d, group %d, want 1 each", len(recB.changes), len(recG.changes))
	}
	cb, cg := recB.changes[0], recG.changes[0]
	if cg.Kind != cb.Kind || cg.Pos != cb.Pos || len(cg.Batch) != len(cb.Batch) ||
		cg.Version != cb.Version || len(cg.Merges) != 0 {
		t.Fatalf("change shape differs: batch %+v vs group %+v", cb, cg)
	}
	if err := viaGroup.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	// Duplicate key in the staged batch: error, nothing applied, nothing
	// notified — exactly like InsertBatch.
	bad := NewWriteGroup()
	bad.InsertBatch(viaGroup, []*Tuple{
		kvTuple(s, "fresh", 1, 0, 9),
		kvTuple(s, "k03", 2, 0, 9),
	})
	err := bad.Commit()
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("want duplicate-key error, got %v", err)
	}
	if viaGroup.Cardinality() != 8 || viaGroup.Version() != viaBatch.Version() || len(recG.changes) != 1 {
		t.Fatal("failed group must leave the relation untouched")
	}
}

// TestWriteGroupValidationFailureLeavesAllUntouched: a group spanning
// three relations whose last staged relation fails validation must
// apply nothing anywhere — versions, cardinalities, epoch and
// notifications all unchanged, for both duplicate-key and
// contradicting-merge failures.
func TestWriteGroupValidationFailureLeavesAllUntouched(t *testing.T) {
	sa, sb, sc := kvScheme("A"), kvScheme("B"), kvScheme("C")
	a, b, c := NewRelation(sa), NewRelation(sb), NewRelation(sc)
	for _, r := range []*Relation{a, b, c} {
		r.MarkPublished()
	}
	c.MustInsert(kvTuple(sc, "taken", 7, 0, 9))
	recs := make([]*batchRecorder, 3)
	for i, r := range []*Relation{a, b, c} {
		recs[i] = &batchRecorder{}
		r.Observe(recs[i])
	}

	check := func(wantErr string, stage func(g *WriteGroup)) {
		t.Helper()
		e0 := Epoch()
		va, vb, vc := a.Version(), b.Version(), c.Version()
		g := NewWriteGroup()
		stage(g)
		err := g.Commit()
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("want %q error, got %v", wantErr, err)
		}
		if a.Version() != va || b.Version() != vb || c.Version() != vc {
			t.Fatal("failed group moved a version")
		}
		if a.Cardinality() != 0 || b.Cardinality() != 0 || c.Cardinality() != 1 {
			t.Fatal("failed group applied tuples")
		}
		if Epoch() != e0 {
			t.Fatal("failed group ticked the epoch")
		}
		for _, rec := range recs {
			if len(rec.changes) != 0 {
				t.Fatal("failed group notified observers")
			}
		}
	}

	// Duplicate against an existing tuple in the last-staged relation.
	check("duplicate key", func(g *WriteGroup) {
		g.Insert(a, kvTuple(sa, "x", 1, 0, 9))
		g.InsertBatch(b, []*Tuple{kvTuple(sb, "y", 2, 0, 9)})
		g.Insert(c, kvTuple(sc, "taken", 3, 0, 9))
	})
	// Duplicate within the group itself.
	check("duplicate key", func(g *WriteGroup) {
		g.Insert(a, kvTuple(sa, "x", 1, 0, 9))
		g.Insert(b, kvTuple(sb, "dup", 2, 0, 9))
		g.Insert(b, kvTuple(sb, "dup", 3, 0, 9))
	})
	// Contradicting merge: same key, same chronon, different value.
	check("contradicts", func(g *WriteGroup) {
		g.Insert(a, kvTuple(sa, "x", 1, 0, 9))
		g.InsertMerging(c, kvTuple(sc, "taken", 8, 5, 9))
	})
}

// TestWriteGroupMerges: merging inserts inside a group — onto live
// tuples (twice onto the same slot) and onto a tuple appended earlier
// in the same group — apply correctly, notify one coalesced change
// carrying the MergeSteps, and copy-on-write under an outstanding pin.
func TestWriteGroupMerges(t *testing.T) {
	s := kvScheme("R")
	r := NewRelation(s)
	r.MarkPublished()
	r.MustInsert(kvTuple(s, "a", 1, 0, 9))
	rec := &batchRecorder{}
	r.Observe(rec)

	_, vers := Pin(r) // outstanding snapshot: merges must copy-on-write
	pinned := vers[0]

	g := NewWriteGroup()
	g.InsertMerging(r, kvTuple(s, "a", 1, 20, 29)) // merge onto live slot
	g.InsertMerging(r, kvTuple(s, "a", 1, 40, 49)) // second merge, same slot
	g.Insert(r, kvTuple(s, "b", 2, 0, 9))          // fresh append
	g.InsertMerging(r, kvTuple(s, "b", 2, 60, 69)) // merge onto the in-group append
	g.InsertMerging(r, kvTuple(s, "new", 3, 0, 9)) // merging insert of a fresh key
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := r.Cardinality(); got != 3 {
		t.Fatalf("cardinality %d, want 3", got)
	}
	a, _ := r.Lookup(`"a"`)
	if !a.Lifespan().Equal(ls("{[0,9],[20,29],[40,49]}")) {
		t.Fatalf("merged lifespan %s", a.Lifespan())
	}
	b, _ := r.Lookup(`"b"`)
	if !b.Lifespan().Equal(ls("{[0,9],[60,69]}")) {
		t.Fatalf("in-group merge lifespan %s", b.Lifespan())
	}
	if len(rec.changes) != 1 {
		t.Fatalf("notifications %d, want one coalesced change", len(rec.changes))
	}
	c := rec.changes[0]
	if c.Kind != ChangeBatch || len(c.Batch) != 2 || len(c.Merges) != 1 {
		t.Fatalf("change: %+v", c)
	}
	if m := c.Merges[0]; m.Pos != 0 || m.New != a || m.Old == a {
		t.Fatalf("merge step: %+v", m)
	}
	if err := r.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The pin predates the group: it must still see the original tuple.
	if pinned.Cardinality() != 1 {
		t.Fatal("pinned version grew past the group")
	}
	if pt, _ := pinned.Lookup(`"a"`); !pt.Lifespan().Equal(ls("{[0,9]}")) {
		t.Fatalf("pinned tuple reflects the group's merge: %s", pt.Lifespan())
	}

	// Frozen views reject group mutation before anything locks.
	gv := NewWriteGroup()
	gv.Insert(pinned.View(), kvTuple(s, "z", 9, 0, 9))
	if err := gv.Commit(); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("group on a frozen view must fail, got %v", err)
	}
}

// TestWriteGroupAtomicCut is the write-side extension of
// TestPinConsistentCut: a writer commits groups inserting the same
// keys into A and B in one atomic publication, so — unlike the
// sequential-batch writer, where pins legitimately observe B trailing
// A — every pin must see |A| equal to |B| exactly, at whole-batch
// granularity. Any inequality is a torn group. Run with -race.
func TestWriteGroupAtomicCut(t *testing.T) {
	sa, sb := kvScheme("A"), kvScheme("B")
	a, b := NewRelation(sa), NewRelation(sb)
	a.MarkPublished()
	b.MarkPublished()

	const rounds, batchN = 60, 7
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			mk := func(s *schema.Scheme) []*Tuple {
				ts := make([]*Tuple, batchN)
				for j := range ts {
					ts[j] = kvTuple(s, fmt.Sprintf("k%04d", i*batchN+j), int64(j), 0, 9)
				}
				return ts
			}
			g := NewWriteGroup()
			g.InsertBatch(a, mk(sa))
			g.InsertBatch(b, mk(sb))
			if err := g.Commit(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_, vers := Pin(a, b)
				ca, cb := vers[0].Cardinality(), vers[1].Cardinality()
				if ca != cb {
					t.Errorf("torn group: |A|=%d |B|=%d", ca, cb)
					return
				}
				if ca%batchN != 0 {
					t.Errorf("torn batch inside a group: |A|=%d", ca)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if a.Cardinality() != rounds*batchN || b.Cardinality() != rounds*batchN {
		t.Fatalf("final |A|=%d |B|=%d", a.Cardinality(), b.Cardinality())
	}
}

// TestWriteGroupConcurrentCommits drives two writers committing groups
// over the same two relations staged in opposite orders — the shape
// that deadlocks without a global lock order — plus a pinner. The test
// completing at all (under -race, with correct final state) is the
// assertion.
func TestWriteGroupConcurrentCommits(t *testing.T) {
	sa, sb := kvScheme("A"), kvScheme("B")
	a, b := NewRelation(sa), NewRelation(sb)
	a.MarkPublished()
	b.MarkPublished()

	const rounds = 120
	var wg sync.WaitGroup
	commit := func(prefix string, first, second *Relation, fs, ss *schema.Scheme) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			g := NewWriteGroup()
			g.Insert(first, kvTuple(fs, fmt.Sprintf("%s%04da", prefix, i), 1, 0, 9))
			g.Insert(second, kvTuple(ss, fmt.Sprintf("%s%04db", prefix, i), 2, 0, 9))
			if err := g.Commit(); err != nil {
				t.Errorf("%s round %d: %v", prefix, i, err)
				return
			}
		}
	}
	wg.Add(2)
	go commit("x", a, b, sa, sb)
	go commit("y", b, a, sb, sa)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			_, vers := Pin(a, b)
			if vers[0].Cardinality() != vers[1].Cardinality() {
				t.Errorf("torn group: |A|=%d |B|=%d", vers[0].Cardinality(), vers[1].Cardinality())
				return
			}
		}
	}()
	wg.Wait()
	if a.Cardinality() != 2*rounds || b.Cardinality() != 2*rounds {
		t.Fatalf("final |A|=%d |B|=%d, want %d each", a.Cardinality(), b.Cardinality(), 2*rounds)
	}

	// Conflicting concurrent groups: same fresh key from both sides —
	// exactly one must win, and the loser must leave no trace.
	ga, gb := NewWriteGroup(), NewWriteGroup()
	ga.Insert(a, kvTuple(sa, "contested", 1, 0, 9))
	gb.Insert(a, kvTuple(sa, "contested", 2, 0, 9))
	errs := make(chan error, 2)
	go func() { errs <- ga.Commit() }()
	go func() { errs <- gb.Commit() }()
	e1, e2 := <-errs, <-errs
	if (e1 == nil) == (e2 == nil) {
		t.Fatalf("want exactly one winner, got %v / %v", e1, e2)
	}
	if a.Cardinality() != 2*rounds+1 {
		t.Fatalf("contested commit left |A|=%d", a.Cardinality())
	}
}
