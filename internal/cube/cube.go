package cube

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// Scheme is a cube relation scheme: attribute names and domains, the
// first NumKey of which form the object key.
type Scheme struct {
	Name   string
	Attrs  []string
	Doms   []value.Domain
	NumKey int
}

// Row is one slice of the cube: the state of one object at one chronon.
type Row struct {
	Time   chronon.Time
	Exists bool
	Vals   []value.Value // in scheme attribute order; valid only if Exists
}

// Relation is the cube: for each object key, one Row per chronon of the
// database clock range [Clock.Lo, Clock.Hi].
type Relation struct {
	scheme *Scheme
	clock  chronon.Interval
	// rows maps the canonical key string to the object's dense timeline.
	rows map[string][]Row
	keys []string // insertion order, for deterministic iteration
}

// NewRelation returns an empty cube relation with the given database
// clock range; every recorded object carries a row for every chronon of
// this range.
func NewRelation(s *Scheme, clock chronon.Interval) *Relation {
	return &Relation{scheme: s, clock: clock, rows: make(map[string][]Row)}
}

// Scheme returns the cube's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// Clock returns the database clock range.
func (r *Relation) Clock() chronon.Interval { return r.clock }

// NumObjects returns the number of distinct objects.
func (r *Relation) NumObjects() int { return len(r.keys) }

// NumRows returns the total number of materialized rows — the cube's
// storage unit count: objects × clock length.
func (r *Relation) NumRows() int {
	return len(r.keys) * int(r.clock.Duration())
}

func keyString(vals []value.Value, numKey int) string {
	parts := make([]string, numKey)
	for i := 0; i < numKey; i++ {
		parts[i] = vals[i].String()
	}
	return value.EncodeKey(parts)
}

// RecordState writes the object's state at time t: a full row with
// EXISTS? = true. Vals must follow scheme attribute order. Times outside
// the clock range are an error.
func (r *Relation) RecordState(t chronon.Time, vals []value.Value) error {
	if len(vals) != len(r.scheme.Attrs) {
		return fmt.Errorf("cube: row arity %d, want %d", len(vals), len(r.scheme.Attrs))
	}
	if !r.clock.Contains(t) {
		return fmt.Errorf("cube: time %v outside clock %v", t, r.clock)
	}
	k := keyString(vals, r.scheme.NumKey)
	tl, ok := r.rows[k]
	if !ok {
		// Allocate the object's dense timeline: one row per chronon, all
		// non-existent until recorded.
		tl = make([]Row, r.clock.Duration())
		for i := range tl {
			tl[i] = Row{Time: r.clock.Lo + chronon.Time(i)}
		}
		r.rows[k] = tl
		r.keys = append(r.keys, k)
	}
	i := int(t - r.clock.Lo)
	tl[i] = Row{Time: t, Exists: true, Vals: append([]value.Value(nil), vals...)}
	return nil
}

// KeyHistory returns the existing rows for the object with the given key
// values, in time order — the "full history of one object" query of E11.
// The cube must scan the object's entire timeline to skip EXISTS?=false
// slices.
func (r *Relation) KeyHistory(keyVals ...value.Value) []Row {
	k := keyString(keyVals, len(keyVals))
	tl, ok := r.rows[k]
	if !ok {
		return nil
	}
	var out []Row
	for _, row := range tl {
		if row.Exists {
			out = append(out, row)
		}
	}
	return out
}

// SnapshotAt returns all rows existing at time t — "state of the
// database at t" (E11). One array index per object.
func (r *Relation) SnapshotAt(t chronon.Time) []Row {
	if !r.clock.Contains(t) {
		return nil
	}
	i := int(t - r.clock.Lo)
	var out []Row
	for _, k := range r.keys {
		row := r.rows[k][i]
		if row.Exists {
			out = append(out, row)
		}
	}
	return out
}

// When returns the set of times at which some existing row satisfies
// attr θ v — "when did P hold" (E11). The cube must scan every slice of
// every object.
func (r *Relation) When(attr string, th value.Theta, v value.Value) (lifespan.Lifespan, error) {
	ai := -1
	for i, a := range r.scheme.Attrs {
		if a == attr {
			ai = i
			break
		}
	}
	if ai < 0 {
		return lifespan.Lifespan{}, fmt.Errorf("cube: unknown attribute %s", attr)
	}
	var ivs []chronon.Interval
	for _, k := range r.keys {
		for _, row := range r.rows[k] {
			if !row.Exists {
				continue
			}
			ok, err := th.Apply(row.Vals[ai], v)
			if err != nil {
				return lifespan.Lifespan{}, err
			}
			if ok {
				ivs = append(ivs, chronon.Point(row.Time))
			}
		}
	}
	return lifespan.New(ivs...), nil
}

// SizeBytes estimates the storage footprint: every row of every object
// timeline, existing or not, at a fixed per-value cost. The estimate
// matches the accounting used for the other representations in E10
// (8 bytes per stored scalar, strings at length).
func (r *Relation) SizeBytes() int64 {
	var total int64
	perRowOverhead := int64(9) // time stamp + EXISTS? flag
	for _, k := range r.keys {
		for _, row := range r.rows[k] {
			total += perRowOverhead
			if row.Exists {
				for _, v := range row.Vals {
					total += valueBytes(v)
				}
			}
		}
	}
	return total
}

func valueBytes(v value.Value) int64 {
	if v.Kind() == value.KindString {
		return int64(len(v.AsString()))
	}
	return 8
}
