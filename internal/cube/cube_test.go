package cube

import (
	"testing"

	"repro/internal/chronon"
	"repro/internal/lifespan"
	"repro/internal/value"
)

func empCube(t *testing.T) *Relation {
	t.Helper()
	s := &Scheme{
		Name:   "EMP",
		Attrs:  []string{"NAME", "SAL", "DEPT"},
		Doms:   []value.Domain{value.Strings, value.Ints, value.Strings},
		NumKey: 1,
	}
	r := NewRelation(s, chronon.NewInterval(0, 19))
	rec := func(tm chronon.Time, name string, sal int64, dept string) {
		t.Helper()
		if err := r.RecordState(tm, []value.Value{value.String_(name), value.Int(sal), value.String_(dept)}); err != nil {
			t.Fatal(err)
		}
	}
	// John [0,9]: 30000 then 34000 at 5.
	for tm := chronon.Time(0); tm <= 9; tm++ {
		sal := int64(30000)
		if tm >= 5 {
			sal = 34000
		}
		rec(tm, "John", sal, "Toys")
	}
	// Ahmed [0,3] and rehired [8,14].
	for tm := chronon.Time(0); tm <= 3; tm++ {
		rec(tm, "Ahmed", 30000, "Toys")
	}
	for tm := chronon.Time(8); tm <= 14; tm++ {
		rec(tm, "Ahmed", 31000, "Books")
	}
	return r
}

func TestRecordValidation(t *testing.T) {
	r := empCube(t)
	if err := r.RecordState(5, []value.Value{value.String_("X")}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := r.RecordState(99, []value.Value{value.String_("X"), value.Int(1), value.String_("D")}); err == nil {
		t.Error("time outside clock must fail")
	}
}

func TestKeyHistory(t *testing.T) {
	r := empCube(t)
	hist := r.KeyHistory(value.String_("Ahmed"))
	if len(hist) != 11 { // 4 + 7 chronons
		t.Fatalf("Ahmed history rows = %d, want 11", len(hist))
	}
	if hist[0].Time != 0 || hist[len(hist)-1].Time != 14 {
		t.Error("history must be time-ordered")
	}
	// The gap [4,7] contributes nothing.
	for _, row := range hist {
		if row.Time >= 4 && row.Time <= 7 {
			t.Errorf("row at %v should not exist (fired period)", row.Time)
		}
	}
	if r.KeyHistory(value.String_("Nobody")) != nil {
		t.Error("unknown key yields nil history")
	}
}

func TestSnapshotAt(t *testing.T) {
	r := empCube(t)
	if got := len(r.SnapshotAt(2)); got != 2 {
		t.Errorf("snapshot@2 = %d rows, want 2", got)
	}
	if got := len(r.SnapshotAt(6)); got != 1 { // only John
		t.Errorf("snapshot@6 = %d rows, want 1", got)
	}
	if got := len(r.SnapshotAt(19)); got != 0 {
		t.Errorf("snapshot@19 = %d rows, want 0", got)
	}
	if r.SnapshotAt(99) != nil {
		t.Error("snapshot outside clock is nil")
	}
}

func TestWhen(t *testing.T) {
	r := empCube(t)
	ls, err := r.When("SAL", value.EQ, value.Int(30000))
	if err != nil {
		t.Fatal(err)
	}
	// John [0,4] ∪ Ahmed [0,3] = [0,4].
	if !ls.Equal(lifespan.MustParse("{[0,4]}")) {
		t.Errorf("when SAL=30000 = %v", ls)
	}
	if _, err := r.When("NOPE", value.EQ, value.Int(0)); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := r.When("SAL", value.LT, value.String_("x")); err == nil {
		t.Error("incomparable kinds must fail")
	}
}

func TestSizeAccounting(t *testing.T) {
	r := empCube(t)
	if r.NumObjects() != 2 {
		t.Errorf("objects = %d", r.NumObjects())
	}
	// 2 objects × 20 chronons of clock.
	if r.NumRows() != 40 {
		t.Errorf("rows = %d, want 40", r.NumRows())
	}
	sz := r.SizeBytes()
	// Lower bound: 40 rows × 9 bytes overhead.
	if sz < 360 {
		t.Errorf("size = %d, below overhead floor", sz)
	}
	// The cube pays for dead chronons: a clock twice as long doubles the
	// overhead even with the same data.
	r2 := NewRelation(r.Scheme(), chronon.NewInterval(0, 39))
	_ = r2.RecordState(0, []value.Value{value.String_("John"), value.Int(1), value.String_("D")})
	if r2.NumRows() != 40 {
		t.Errorf("one object on a 40-chronon clock = %d rows", r2.NumRows())
	}
}
