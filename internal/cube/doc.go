// Package cube implements the "three-dimensional cube" historical model
// that HRDM's introduction cites as the earliest approach
// ([Klopprogge 81], [Klopprogge 83], [Clifford 83]): "the incorporation
// of a time-stamp and a Boolean-valued EXISTS? attribute to each tuple
// ... The database was seen as a three-dimensional cube, wherein at any
// time t a tuple with EXISTS? = True was considered to be meaningful,
// otherwise it was to be ignored."
//
// Concretely, a cube relation materializes one flat row per (object,
// chronon) over the whole database clock range, with an EXISTS? flag.
// This is the baseline of experiments E10 (storage footprint — the cube
// pays for every chronon whether or not anything changed) and E11
// (query cost on the three representations).
package cube
