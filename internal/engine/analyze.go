package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/hql"
	"repro/internal/obs"
)

// EXPLAIN ANALYZE: execute the query with a per-operator profiler
// attached to its snapshot and render the plan tree annotated with
// actuals — rows produced, wall time, self time (wall minus children),
// index lookups — followed by the lifecycle stage breakdown, the
// result summary and the pinned snapshot. Unlike plain EXPLAIN, the
// query genuinely runs (and its side effects on the registry — query
// counts, histograms, slow-log entries — are real); like EXPLAIN, the
// plan cache is neither consulted nor populated, so the rendered tree
// always reflects a fresh compilation of the submitted text.

// analysis is one executed, profiled query — the data behind the
// rendered EXPLAIN ANALYZE output, kept separate so tests can assert
// on the numbers without parsing text.
type analysis struct {
	plan *Plan
	prof *profiler
	sp   obs.Span
	snap *Snapshot
	res  hql.Result
}

// ExplainAnalyze parses, plans, executes and profiles a query,
// returning the annotated plan rendering. When optimize is set the
// Section 5 rewriter runs first, matching what Run would execute.
func ExplainAnalyze(src string, env hql.Env, optimize bool) (string, error) {
	return ExplainAnalyzeContext(context.Background(), src, env, optimize)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context: the profiled
// execution honors cancellation and deadlines exactly as RunContext
// does, since EXPLAIN ANALYZE genuinely runs the query.
func ExplainAnalyzeContext(ctx context.Context, src string, env hql.Env, optimize bool) (string, error) {
	a, err := analyzeQuery(ctx, src, env, optimize)
	if err != nil {
		return "", err
	}
	return a.render(), nil
}

// analyzeQuery is the execution half of ExplainAnalyze. It mirrors the
// engine's plan-then-pin discipline — optimistic retries, then the
// exclusive fallback — so the profiled execution is the same
// snapshot-verified execution Run performs. Expressions the planner
// cannot compile surface their planning error: there is no naive
// fallback to attribute per-operator numbers to.
func analyzeQuery(ctx context.Context, src string, env hql.Env, optimize bool) (*analysis, error) {
	sp := obs.Begin()
	e, err := hql.Parse(src)
	if err != nil {
		finishQuery(&sp, src, nil, nil, err)
		return nil, err
	}
	sp.Mark(obs.StageParse)
	if optimize {
		e, _ = hql.Optimize(e)
	}
	var p *Plan
	var snap *Snapshot
	for try := 0; ; try++ {
		p, err = PlanQuery(e, env)
		sp.Mark(obs.StagePlan)
		if err != nil {
			finishQuery(&sp, src, nil, nil, err)
			return nil, err
		}
		var pinned bool
		if snap, pinned = pinPlan(ctx, p); pinned {
			sp.Mark(obs.StagePin)
			break
		}
		sp.Mark(obs.StagePin)
		mPinRetries.Inc()
		if try+1 >= pinRetries {
			mPinExclusive.Inc()
			p, snap, err = pinPlanExclusive(ctx, func() (*Plan, error) { return PlanQuery(e, env) })
			sp.Mark(obs.StagePin)
			if err != nil {
				finishQuery(&sp, src, nil, nil, err)
				return nil, err
			}
			break
		}
	}
	snap.prof = newProfiler()
	res, err := p.run(snap, &sp)
	finishQuery(&sp, "", p, snap, err)
	if err != nil {
		return nil, err
	}
	return &analysis{plan: p, prof: snap.prof, sp: sp, snap: snap, res: res}, nil
}

// rootStats returns the root operator's measured execution.
func (a *analysis) rootStats() *opStats {
	return a.prof.ops[a.plan.root]
}

// selfTime is wall time minus the children's wall time, clamped at
// zero (clock granularity can make the difference marginally
// negative). Iterator-profiled parents include every child pull in
// their own wall, and exec-profiled parents run their children inside
// their own measurement, so the subtraction is the operator's own
// work in both modes.
func (a *analysis) selfTime(n node) time.Duration {
	st := a.prof.ops[n]
	if st == nil {
		return 0
	}
	self := st.wall
	for _, k := range n.children() {
		if ks := a.prof.ops[k]; ks != nil {
			self -= ks.wall
		}
	}
	if self < 0 {
		return 0
	}
	return self
}

// render produces the annotated tree plus the stage, result and
// snapshot trailer lines.
func (a *analysis) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", a.plan.text)
	switch a.plan.kind {
	case planWhen:
		b.WriteString("when (lifespan of result)\n")
	case planSnapshot:
		fmt.Fprintf(&b, "snapshot at %s\n", a.plan.at)
	}
	depth := 0
	if a.plan.kind != planRelation {
		depth = 1
	}
	a.renderNode(a.plan.root, &b, depth)
	b.WriteString("stages:")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		fmt.Fprintf(&b, " %s=%s", obs.StageName(st), a.sp.StageDur(st))
	}
	fmt.Fprintf(&b, " total=%s\n", a.sp.Total())
	fmt.Fprintf(&b, "result: %s\n", a.resultSummary())
	fmt.Fprintf(&b, "snapshot: %s", a.snap)
	return b.String()
}

func (a *analysis) renderNode(n node, b *strings.Builder, depth int) {
	c := n.estimate()
	fmt.Fprintf(b, "%s%s  [rows≈%.0f cost≈%.0f]", strings.Repeat("  ", depth), n.describe(), c.rows, c.work)
	if st := a.prof.ops[n]; st != nil && !st.untouched() {
		fmt.Fprintf(b, "  (actual: rows=%d time=%s self=%s", st.rows, st.wall, a.selfTime(n))
		if lk := st.lookups.Load(); lk > 0 {
			fmt.Fprintf(b, " lookups=%d", lk)
		}
		if st.par != nil {
			fmt.Fprintf(b, " degree=%d partitions=%d scanned=%d pruned=%d",
				st.par.degree, st.par.parts, st.par.scanned, st.par.pruned)
		}
		b.WriteString(")")
	} else {
		// A node the execution never touched (e.g. pruned to an empty
		// candidate set before its child ran, or the sequential form an
		// executed parallel operator wraps).
		b.WriteString("  (actual: not executed)")
	}
	b.WriteString("\n")
	for _, k := range n.children() {
		a.renderNode(k, b, depth+1)
	}
}

// resultSummary describes whichever sort the result carries, with its
// cardinality where it has one.
func (a *analysis) resultSummary() string {
	switch {
	case a.res.Relation != nil:
		return fmt.Sprintf("relation %s (%d tuples)", a.res.Relation.Scheme().Name, a.res.Relation.Cardinality())
	case a.res.Lifespan != nil:
		return fmt.Sprintf("lifespan %s", a.res.Lifespan)
	case a.res.Snapshot != nil:
		return fmt.Sprintf("snapshot relation %s (%d tuples)", a.res.Snapshot.Scheme().Name, a.res.Snapshot.Cardinality())
	default:
		return "empty"
	}
}
