package engine

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// durRe masks wall-clock durations in EXPLAIN ANALYZE output: every
// decimal number immediately suffixed by a Go duration unit becomes
// <T>, so the golden files lock rows, lookups, tree shape and line
// format while letting timings vary run to run. Plain counts (rows=1,
// 40 tuples, {[100,139]}) carry no unit suffix and survive untouched.
var durRe = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)`)

// TestExplainAnalyzeGolden locks the annotated-tree rendering — per
// operator (actual: rows/time/self[/lookups]) trailers, the stage
// line, result summary and pinned snapshot — for representative plans,
// with volatile timings and the epoch masked. The line-by-line format
// is documented in docs/EXPLAIN.md; update it with any intentional
// change here. Regenerate with:
//
//	go test ./internal/engine -run TestExplainAnalyzeGolden -update
func TestExplainAnalyzeGolden(t *testing.T) {
	st := goldenStore(t)
	cases := []struct {
		name, query string
	}{
		{"analyze_key_eq", `SELECT WHEN NAME = 'aaemp' FROM EMP`},
		{"analyze_attr_index_select", `SELECT WHEN DEPT = 'Toys' FROM EMP`},
		{"analyze_index_time_slice", `TIMESLICE EMP AT {[100,139]}`},
		{"analyze_equijoin_key_probe", `REF JOIN EMP ON RNAME = NAME`},
		{"analyze_when_materialize", `WHEN (SELECT WHEN SAL = 30000 FROM EMP)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := ExplainAnalyze(c.query, st, false)
			if err != nil {
				t.Fatal(err)
			}
			got := epochRe.ReplaceAllString(out, "epoch <E>")
			got = durRe.ReplaceAllString(got, "<T>") + "\n"
			path := filepath.Join("testdata", "explain", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/engine -run TestExplainAnalyzeGolden -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestAnalyzeAccounting asserts the numbers behind the rendering on an
// indexed equality select and an index join: per-operator self times
// sum to the root's wall time, the root's wall time accounts for the
// execute stage within tolerance, and actual row counts equal the
// result's cardinality.
func TestAnalyzeAccounting(t *testing.T) {
	st := goldenStore(t)
	for _, q := range []string{
		`SELECT WHEN DEPT = 'Toys' FROM EMP`,
		`REF JOIN EMP ON RNAME = NAME`,
	} {
		a, err := analyzeQuery(context.Background(), q, st, false)
		if err != nil {
			t.Fatal(err)
		}
		root := a.rootStats()
		if root == nil {
			t.Fatalf("%s: root operator has no stats", q)
		}
		if a.res.Relation == nil || int64(a.res.Relation.Cardinality()) != root.rows {
			t.Fatalf("%s: root rows=%d, result cardinality=%v", q, root.rows, a.res.Relation)
		}
		var selfSum time.Duration
		var walk func(n node)
		var walked []node
		walk = func(n node) {
			selfSum += a.selfTime(n)
			walked = append(walked, n)
			for _, k := range n.children() {
				walk(k)
			}
		}
		walk(a.plan.root)
		// Self times partition the root's wall exactly (modulo the
		// clamp at zero, which only rounds up).
		if selfSum < root.wall || selfSum > root.wall+root.wall/10+time.Millisecond {
			t.Fatalf("%s: Σ self=%v vs root wall=%v", q, selfSum, root.wall)
		}
		// The root's wall accounts for the execute stage: the stage adds
		// only the profExec/span bookkeeping around the tree.
		exec := a.sp.StageDur(obs.StageExecute)
		if root.wall > exec {
			t.Fatalf("%s: root wall %v exceeds execute stage %v", q, root.wall, exec)
		}
		if slack := exec - root.wall; slack > exec/10+50*time.Microsecond {
			t.Fatalf("%s: execute stage %v vs root wall %v — unaccounted %v", q, exec, root.wall, slack)
		}
		// Every operator in the tree must have been measured.
		for _, n := range walked {
			if a.prof.ops[n] == nil {
				t.Fatalf("%s: operator %s not profiled", q, n.describe())
			}
		}
	}
}

// TestAnalyzeJoinLookups pins the join probe accounting: streaming the
// two REF tuples against EMP's key map is exactly two lookups.
func TestAnalyzeJoinLookups(t *testing.T) {
	st := goldenStore(t)
	a, err := analyzeQuery(context.Background(), `REF JOIN EMP ON RNAME = NAME`, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.rootStats().lookups.Load(); got != 2 {
		t.Fatalf("join lookups = %d, want 2", got)
	}
	if !strings.Contains(a.render(), "lookups=2") {
		t.Fatal("rendering does not surface the lookup count")
	}
}
