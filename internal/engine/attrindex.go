package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/value"
)

// AttrIndex is a hash index over one attribute of a relation. HRDM makes
// this unusually effective: key attributes are constant-valued functions
// by definition (the paper's CD domains), and in practice many non-key
// attributes are constant per tuple too (a stock's ticker, a student's
// major before any change). The index buckets the tuples whose value for
// the attribute is a constant function, keyed by the value's canonical
// string — the same rendering core.Relation.byKey uses — and keeps the
// tuples whose value varies over time in an overflow list that every
// probe must also consider. Tuples for which the attribute is nowhere
// defined can never satisfy an equality, so they are excluded entirely.
type AttrIndex struct {
	attr    string
	byVal   map[string][]*core.Tuple
	varying []*core.Tuple
	absent  int
	total   int
}

// NewAttrIndex builds the index over r's tuples for the named attribute.
func NewAttrIndex(r *core.Relation, attr string) *AttrIndex {
	ix := &AttrIndex{attr: attr, byVal: make(map[string][]*core.Tuple)}
	for _, t := range r.Tuples() {
		ix.total++
		f := t.Value(attr)
		switch {
		case f.IsNowhereDefined():
			ix.absent++
		case f.IsConstant():
			v, _ := f.ConstantValue()
			k := v.String()
			ix.byVal[k] = append(ix.byVal[k], t)
		default:
			ix.varying = append(ix.varying, t)
		}
	}
	return ix
}

// Probe returns the tuples whose attribute is constant and equal to v.
// Callers must also consider Varying(): a time-varying value can equal v
// over part of its domain without appearing in any bucket.
func (ix *AttrIndex) Probe(v value.Value) []*core.Tuple {
	return ix.byVal[v.String()]
}

// Varying returns the overflow list of tuples whose attribute value
// changes over time. Every equality probe unions these in.
func (ix *AttrIndex) Varying() []*core.Tuple { return ix.varying }

// DistinctValues returns the number of distinct constant values indexed.
func (ix *AttrIndex) DistinctValues() int { return len(ix.byVal) }

// AvgBucket estimates the number of candidates one equality probe
// returns: the mean constant bucket plus the whole varying overflow.
// The planner's cost model prices index lookup joins with it.
func (ix *AttrIndex) AvgBucket() float64 {
	b := float64(len(ix.varying))
	if n := len(ix.byVal); n > 0 {
		b += float64(ix.total-ix.absent-len(ix.varying)) / float64(n)
	}
	return b
}

// String summarizes the index shape for EXPLAIN output.
func (ix *AttrIndex) String() string {
	return fmt.Sprintf("attr-index(%s: %d values, %d varying, %d absent of %d)",
		ix.attr, len(ix.byVal), len(ix.varying), ix.absent, ix.total)
}
