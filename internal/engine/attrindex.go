package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/value"
)

// AttrIndex is a hash index over one attribute of a relation. HRDM makes
// this unusually effective: key attributes are constant-valued functions
// by definition (the paper's CD domains), and in practice many non-key
// attributes are constant per tuple too (a stock's ticker, a student's
// major before any change). The index buckets the tuples whose value for
// the attribute is a constant function, keyed by the value's canonical
// string — the same rendering core.Relation.byKey uses — and keeps the
// tuples whose value varies over time in an overflow list that every
// probe must also consider. Tuples for which the attribute is nowhere
// defined can never satisfy an equality, so they are excluded entirely.
//
// The index is incrementally maintainable: Add absorbs a single-tuple
// insert and Replace a merge, so the catalog keeps it fresh from
// relation change notifications instead of rebuilding. Reads and writes
// are synchronized internally; slices handed out by Probe/Varying are
// stable snapshots (appends extend behind them, removals copy first).
type AttrIndex struct {
	attr string

	mu      sync.RWMutex
	byVal   map[string][]*core.Tuple
	varying []*core.Tuple
	absent  int
	total   int
}

// NewAttrIndex builds the index over r's tuples for the named attribute.
func NewAttrIndex(r *core.Relation, attr string) *AttrIndex {
	//lint:allow pindiscipline index builds read the live relation by design; execution resolves probes back through Snapshot.resolve
	return newAttrIndexFrom(r.Tuples(), attr)
}

// newAttrIndexFrom builds the index from a stable tuple snapshot.
func newAttrIndexFrom(ts []*core.Tuple, attr string) *AttrIndex {
	idxMetrics.attrBuilds.Inc()
	ix := &AttrIndex{attr: attr, byVal: make(map[string][]*core.Tuple)}
	for _, t := range ts {
		ix.addLocked(t)
	}
	return ix
}

// Add absorbs a single inserted tuple.
func (ix *AttrIndex) Add(t *core.Tuple) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addLocked(t)
}

// AddBatch absorbs a bulk insert under one lock acquisition — the
// coalesced form of Add a relation's ChangeBatch notification feeds.
func (ix *AttrIndex) AddBatch(ts []*core.Tuple) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, t := range ts {
		ix.addLocked(t)
	}
}

// Replace absorbs a merge: the relation replaced old with new in place.
func (ix *AttrIndex) Replace(old, new *core.Tuple) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(old)
	ix.addLocked(new)
}

func (ix *AttrIndex) addLocked(t *core.Tuple) {
	ix.total++
	f := t.Value(ix.attr)
	switch {
	case f.IsNowhereDefined():
		ix.absent++
	case f.IsConstant():
		v, _ := f.ConstantValue()
		k := v.String()
		// Appending never disturbs a handed-out snapshot: holders read
		// only their own length.
		ix.byVal[k] = append(ix.byVal[k], t)
	default:
		ix.varying = append(ix.varying, t)
	}
}

func (ix *AttrIndex) removeLocked(t *core.Tuple) {
	ix.total--
	f := t.Value(ix.attr)
	switch {
	case f.IsNowhereDefined():
		ix.absent--
	case f.IsConstant():
		v, _ := f.ConstantValue()
		k := v.String()
		if nb := dropTuple(ix.byVal[k], t); len(nb) == 0 {
			delete(ix.byVal, k)
		} else {
			ix.byVal[k] = nb
		}
	default:
		ix.varying = dropTuple(ix.varying, t)
	}
}

// dropTuple returns s without t, copying first so outstanding snapshots
// of s are unaffected. Order is preserved.
func dropTuple(s []*core.Tuple, t *core.Tuple) []*core.Tuple {
	out := make([]*core.Tuple, 0, len(s))
	for _, x := range s {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// Probe returns the tuples whose attribute is constant and equal to v.
// Callers must also consider Varying(): a time-varying value can equal v
// over part of its domain without appearing in any bucket. The returned
// slice is a stable snapshot.
func (ix *AttrIndex) Probe(v value.Value) []*core.Tuple {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.byVal[v.String()]
}

// Varying returns the overflow list of tuples whose attribute value
// changes over time. Every equality probe unions these in. The returned
// slice is a stable snapshot.
func (ix *AttrIndex) Varying() []*core.Tuple {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.varying
}

// DistinctValues returns the number of distinct constant values indexed.
func (ix *AttrIndex) DistinctValues() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byVal)
}

// Stats summarizes the index's value distribution for the planner's
// selectivity estimates.
func (ix *AttrIndex) Stats() AttrStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return AttrStats{
		Rows:     ix.total,
		Distinct: len(ix.byVal),
		Varying:  len(ix.varying),
		Absent:   ix.absent,
	}
}

// AvgBucket estimates the number of candidates one equality probe
// returns: the mean constant bucket plus the whole varying overflow.
// The planner's cost model prices index lookup joins with it.
func (ix *AttrIndex) AvgBucket() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	b := float64(len(ix.varying))
	if n := len(ix.byVal); n > 0 {
		b += float64(ix.total-ix.absent-len(ix.varying)) / float64(n)
	}
	return b
}

// String summarizes the index shape for EXPLAIN output.
func (ix *AttrIndex) String() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return fmt.Sprintf("attr-index(%s: %d values, %d varying, %d absent of %d)",
		ix.attr, len(ix.byVal), len(ix.varying), ix.absent, ix.total)
}
