package engine

import (
	"sync"

	"repro/internal/core"
)

// RelIndexes is the index set of one relation: a lifespan interval index
// plus per-attribute hash indexes, each built lazily on first demand and
// cached until the relation's version counter moves. Relations are
// append-only and their tuples immutable, so a (pointer, version) pair
// identifies an index's validity exactly.
type RelIndexes struct {
	rel     *core.Relation
	version uint64

	mu       sync.Mutex
	interval *IntervalIndex
	attrs    map[string]*AttrIndex
}

// catalog is the process-wide index cache. Only base relations resolved
// from a query environment (i.e. stored relations) enter it — plan
// intermediates are never indexed — so its footprint tracks the
// database, not the query stream. maxCatalog bounds it so long-lived
// processes that reload stores (each \load creates fresh relation
// values) cannot pin every generation of relations in memory; eviction
// order is arbitrary, and an evicted relation is simply re-indexed on
// its next query.
var catalog struct {
	mu   sync.Mutex
	rels map[*core.Relation]*RelIndexes
}

const maxCatalog = 256

// Indexes returns the (possibly empty) index set for r, creating or
// invalidating the cache entry as needed. The individual indexes are
// built lazily by Interval and Attr.
func Indexes(r *core.Relation) *RelIndexes {
	catalog.mu.Lock()
	defer catalog.mu.Unlock()
	if catalog.rels == nil {
		catalog.rels = make(map[*core.Relation]*RelIndexes)
	}
	x, ok := catalog.rels[r]
	if !ok || x.version != r.Version() {
		if !ok && len(catalog.rels) >= maxCatalog {
			for victim := range catalog.rels {
				if victim != r {
					delete(catalog.rels, victim)
					break
				}
			}
		}
		x = &RelIndexes{rel: r, version: r.Version(), attrs: make(map[string]*AttrIndex)}
		catalog.rels[r] = x
	}
	return x
}

// Interval returns the relation's lifespan interval index, building it
// on first use.
func (x *RelIndexes) Interval() *IntervalIndex {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.interval == nil {
		x.interval = NewIntervalIndex(x.rel)
	}
	return x.interval
}

// Attr returns the hash index over the named attribute, building it on
// first use.
func (x *RelIndexes) Attr(name string) *AttrIndex {
	x.mu.Lock()
	defer x.mu.Unlock()
	ix, ok := x.attrs[name]
	if !ok {
		ix = NewAttrIndex(x.rel, name)
		x.attrs[name] = ix
	}
	return ix
}

// BuildIndexes eagerly constructs r's interval index and the hash index
// of every key attribute. Storage loading calls it so that a freshly
// opened database answers its first indexed query at full speed.
func BuildIndexes(r *core.Relation) {
	x := Indexes(r)
	x.Interval()
	for _, k := range r.Scheme().Key {
		x.Attr(k)
	}
}
