package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Index build and maintenance work is counted in the process-wide
// metrics registry (engine.index.*) so tests, the benchmark harness
// and `\metrics` can all assert that single-tuple inserts are absorbed
// incrementally instead of triggering full rebuilds.
var idxMetrics = struct {
	intervalBuilds *obs.Counter // full interval-tree (re)builds, incl. overlay compactions
	attrBuilds     *obs.Counter // full attribute-index (re)builds
	incremental    *obs.Counter // single-tuple changes absorbed in place
	resyncs        *obs.Counter // full catch-ups after a missed notification
}{
	intervalBuilds: obs.Default.Counter("engine.index.interval_builds"),
	attrBuilds:     obs.Default.Counter("engine.index.attr_builds"),
	incremental:    obs.Default.Counter("engine.index.incremental"),
	resyncs:        obs.Default.Counter("engine.index.resyncs"),
}

// IndexMetrics reports cumulative index-maintenance counters: full
// interval-index builds, full attribute-index builds, single-tuple
// changes absorbed incrementally, and full resyncs after missed
// notifications. It is a thin typed view over the registry's
// engine.index.* counters.
func IndexMetrics() (intervalBuilds, attrBuilds, incremental, resyncs uint64) {
	return idxMetrics.intervalBuilds.Load(), idxMetrics.attrBuilds.Load(),
		idxMetrics.incremental.Load(), idxMetrics.resyncs.Load()
}

// RelIndexes is the index set of one relation: a lifespan interval index
// plus per-attribute hash indexes, each built lazily on first demand,
// and the statistics object derived from them. The set registers itself
// as a change observer on the relation, so single-tuple inserts and
// merges are absorbed into the built indexes incrementally; a missed
// notification (detected by a version gap) marks the set stale and the
// next access rebuilds from a consistent snapshot.
type RelIndexes struct {
	rel *core.Relation

	mu       sync.Mutex
	version  uint64 // relation version every built structure reflects
	stale    bool   // a notification was missed; rebuild on next access
	interval *IntervalIndex
	attrs    map[string]*AttrIndex
	stats    *RelStats // cached statistics; nil = recompute on demand
}

// catalog is the process-wide index cache. Only base relations resolved
// from a query environment (i.e. stored relations) enter it — plan
// intermediates are never indexed — so its footprint tracks the
// database, not the query stream. maxCatalog bounds it so long-lived
// processes that reload stores (each \load creates fresh relation
// values) cannot pin every generation of relations in memory; eviction
// order is arbitrary, an evicted entry unregisters its observer, and an
// evicted relation is simply re-indexed on its next query.
var catalog struct {
	mu   sync.Mutex
	rels map[*core.Relation]*RelIndexes
}

const maxCatalog = 256

// Indexes returns the (possibly empty) index set for r, creating the
// cache entry — and registering it for change notifications — on first
// use. The individual indexes are built lazily by Interval and Attr and
// kept fresh incrementally thereafter.
func Indexes(r *core.Relation) *RelIndexes {
	catalog.mu.Lock()
	defer catalog.mu.Unlock()
	if catalog.rels == nil {
		catalog.rels = make(map[*core.Relation]*RelIndexes)
	}
	x, ok := catalog.rels[r]
	if !ok {
		if len(catalog.rels) >= maxCatalog {
			for victim, vx := range catalog.rels {
				if victim != r {
					victim.Unobserve(vx)
					delete(catalog.rels, victim)
					break
				}
			}
		}
		x = &RelIndexes{rel: r, attrs: make(map[string]*AttrIndex)}
		x.version = r.Observe(x)
		catalog.rels[r] = x
	}
	return x
}

// InvalidateIndexes drops r's catalog entry (unregistering its change
// observer), so the next query rebuilds every index from scratch. The
// benchmark harness uses it to simulate the pre-incremental maintenance
// behavior; it is also the escape hatch should an index ever be
// suspected stale.
func InvalidateIndexes(r *core.Relation) {
	catalog.mu.Lock()
	defer catalog.mu.Unlock()
	if x, ok := catalog.rels[r]; ok {
		r.Unobserve(x)
		delete(catalog.rels, r)
	}
}

// RelationChanged implements core.Observer: it absorbs one single-tuple
// change into every already-built index. Notifications are delivered
// outside the relation's lock and may therefore arrive out of order
// under concurrent writers; the consecutive-version check detects a gap
// and degrades to a full rebuild on next access instead of applying
// changes twice or out of order.
func (x *RelIndexes) RelationChanged(r *core.Relation, c core.Change) {
	// Before the per-relation index work: give the plan cache its one
	// chance per write epoch to sweep fenced-out entries. Runs outside
	// x.mu so the cache walk never nests inside an index lock.
	planCacheNoteWrite()
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stale || c.Version <= x.version {
		return // pending rebuild, or already absorbed by a resync
	}
	if c.Version != x.version+1 {
		x.stale = true
		return
	}
	x.version = c.Version
	x.stats = nil
	switch c.Kind {
	case core.ChangeInsert:
		if x.interval != nil {
			x.interval.Add(c.New, c.Pos)
		}
		for _, ix := range x.attrs {
			ix.Add(c.New)
		}
	case core.ChangeMerge:
		if x.interval != nil {
			x.interval.Replace(c.Old, c.New, c.Pos)
		}
		for _, ix := range x.attrs {
			ix.Replace(c.Old, c.New)
		}
	case core.ChangeBatch:
		// One coalesced merge per index for the whole batch — one lock
		// round and at most one overlay compaction, instead of
		// len(Batch) single-tuple overlays. A write-group batch may also
		// carry replaced slots; they absorb as in-place replacements
		// under the same version bump.
		for _, m := range c.Merges {
			if x.interval != nil {
				x.interval.Replace(m.Old, m.New, m.Pos)
			}
			for _, ix := range x.attrs {
				ix.Replace(m.Old, m.New)
			}
		}
		if len(c.Batch) > 0 {
			if x.interval != nil {
				x.interval.AddBatch(c.Batch, c.Pos)
			}
			for _, ix := range x.attrs {
				ix.AddBatch(c.Batch)
			}
		}
	}
	idxMetrics.incremental.Inc()
}

// freshSnapshotLocked brings every built structure up to the relation's
// current version when the set is stale or the caller is about to build
// a new structure at a version ahead of x.version. It returns a tuple
// snapshot consistent with x.version for the caller's own build.
func (x *RelIndexes) freshSnapshotLocked() []*core.Tuple {
	//lint:allow pindiscipline index resync deliberately reads the live atomic (tuples, version) pair; probes are version-bounded later
	ts, v := x.rel.SnapshotVersion()
	if x.stale || v != x.version {
		if x.interval != nil || len(x.attrs) > 0 {
			idxMetrics.resyncs.Inc()
			if x.interval != nil {
				x.interval = newIntervalIndexFrom(ts)
			}
			for name := range x.attrs {
				x.attrs[name] = newAttrIndexFrom(ts, name)
			}
		}
		x.version = v
		x.stale = false
		x.stats = nil
	}
	return ts
}

// Interval returns the relation's lifespan interval index, building it
// on first use.
func (x *RelIndexes) Interval() *IntervalIndex {
	x.mu.Lock()
	defer x.mu.Unlock()
	ts := x.freshSnapshotLocked()
	if x.interval == nil {
		x.interval = newIntervalIndexFrom(ts)
	}
	return x.interval
}

// Attr returns the hash index over the named attribute, building it on
// first use.
func (x *RelIndexes) Attr(name string) *AttrIndex {
	x.mu.Lock()
	defer x.mu.Unlock()
	ts := x.freshSnapshotLocked()
	ix, ok := x.attrs[name]
	if !ok {
		ix = newAttrIndexFrom(ts, name)
		x.attrs[name] = ix
	}
	return ix
}

// BuildIndexes eagerly constructs r's interval index and the hash index
// of every key attribute. Storage loading calls it so that a freshly
// opened database answers its first indexed query at full speed.
func BuildIndexes(r *core.Relation) {
	x := Indexes(r)
	x.Interval()
	for _, k := range r.Scheme().Key {
		x.Attr(k)
	}
}
