package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hrdmerr"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestCancelIterBatchBoundary pins the cancellation granularity
// contract: once the context is canceled, a streaming iterator aborts
// within one batch — at most cancelBatch further pulls — with the
// typed ErrCanceled, instead of draining its source.
func TestCancelIterBatchBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Snapshot{}
	s.attachCtx(ctx)
	pulls := 0
	it := s.cancelIter(func() (*core.Tuple, error) {
		pulls++
		return &core.Tuple{}, nil
	})
	for i := 0; i < 10; i++ {
		if _, err := it(); err != nil {
			t.Fatalf("pull %d before cancel: %v", i, err)
		}
	}
	cancel()
	var err error
	extra := 0
	for ; extra <= cancelBatch; extra++ {
		if _, err = it(); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatalf("iterator survived %d pulls after cancel (batch is %d)", extra, cancelBatch)
	}
	if !errors.Is(err, hrdmerr.ErrCanceled) {
		t.Fatalf("post-cancel pull error = %v, want ErrCanceled", err)
	}
	if pulls > 10+cancelBatch {
		t.Fatalf("source pulled %d times after cancel, want ≤ %d", pulls-10, cancelBatch)
	}
}

// TestCancelIterUncancellable checks the zero-cost fast path: a
// Background context never arms the snapshot, so iterators are
// returned unwrapped.
func TestCancelIterUncancellable(t *testing.T) {
	s := &Snapshot{}
	s.attachCtx(context.Background())
	if s.ctx != nil {
		t.Fatal("Background context armed the snapshot")
	}
	if err := s.checkCancel(); err != nil {
		t.Fatalf("checkCancel on unarmed snapshot: %v", err)
	}
}

// flipCtx is a context that reports canceled starting from its n-th
// Err() call: a deterministic stand-in for "the client cancels while
// the scan is mid-flight", without goroutine timing in the test.
type flipCtx struct {
	calls, after int
	done         chan struct{}
}

func newFlipCtx(after int) *flipCtx {
	return &flipCtx{after: after, done: make(chan struct{})}
}

func (c *flipCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *flipCtx) Done() <-chan struct{}       { return c.done }
func (c *flipCtx) Value(any) any               { return nil }
func (c *flipCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunContextCanceledMidScan is the end-to-end acceptance check: a
// query over a relation much larger than one iterator batch, whose
// context flips to canceled after execution has started, returns the
// typed ErrCanceled instead of completing the scan.
func TestRunContextCanceledMidScan(t *testing.T) {
	ResetPlanCache()
	st := storage.NewStore()
	st.Put(workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 4 * cancelBatch, HistoryLen: 40, ChangeEvery: 10, Seed: 7,
	}))
	// Survive the entry precheck and the first operator boundary, then
	// cancel: the abort must come from a mid-execution check.
	ctx := newFlipCtx(2)
	// No equality conjunct → no index candidates: the plan is a full
	// scan under a filter, so execution genuinely streams every tuple.
	_, err := RunContext(ctx, `SELECT WHEN SAL > 0 FROM EMP`, st)
	if err == nil {
		t.Fatal("canceled query completed")
	}
	if !errors.Is(err, hrdmerr.ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
	if hrdmerr.CodeOf(err) != hrdmerr.CodeCanceled {
		t.Fatalf("code = %v, want CodeCanceled", hrdmerr.CodeOf(err))
	}
	if ctx.calls < 3 {
		t.Fatalf("only %d context checks observed — cancellation never reached execution", ctx.calls)
	}
}

// TestRunContextPreCanceled: an already-canceled context fails fast
// with the typed error, before parsing or pinning anything.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := storage.NewStore()
	if _, err := RunContext(ctx, `not even valid HQL`, st); !errors.Is(err, hrdmerr.ErrCanceled) {
		t.Fatalf("pre-canceled RunContext error = %v, want ErrCanceled", err)
	}
	if _, err := EvalContext(ctx, nil, st); !errors.Is(err, hrdmerr.ErrCanceled) {
		t.Fatalf("pre-canceled EvalContext error = %v, want ErrCanceled", err)
	}
}

// TestRunContextDeadline: an expired deadline surfaces as ErrDeadline,
// distinct from plain cancellation.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	st := storage.NewStore()
	st.Put(workload.Personnel(workload.DefaultPersonnel()))
	_, err := RunContext(ctx, `SELECT WHEN SAL = 30000 FROM EMP`, st)
	if !errors.Is(err, hrdmerr.ErrDeadline) {
		t.Fatalf("expired-deadline error = %v, want ErrDeadline", err)
	}
}

// TestRunBackgroundUnchanged: the context-free wrappers still work and
// the cached fast path stays available to them.
func TestRunBackgroundUnchanged(t *testing.T) {
	ResetPlanCache()
	st := storage.NewStore()
	st.Put(workload.Personnel(workload.DefaultPersonnel()))
	q := `SELECT WHEN SAL = 30000 FROM EMP`
	r1, err := Run(q, st)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	r2, err := Run(q, st)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if r1.Relation == nil || r2.Relation == nil || !r1.Relation.Equal(r2.Relation) {
		t.Fatal("cached re-run differs from first run")
	}
}
