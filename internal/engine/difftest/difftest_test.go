// Package difftest is the differential equivalence harness for the
// parallel executor: golden and fuzz-generated HQL runs through three
// evaluation paths — the naive reference evaluator, the engine at
// workers=1 (sequential execution of the same plans), and the engine
// at workers 2/4/8 — and every path must agree exactly: same error
// presence, Equal results, and byte-identical canonical renderings at
// every degree. The package keeps the parallel planning threshold
// lowered for its whole binary so the small deterministic store plans
// parallel operators on every eligible shape.
package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// diffWorkers is the degree ladder every query runs at; 1 is the
// sequential baseline the parallel runs must match byte-for-byte.
var diffWorkers = []int{1, 2, 4, 8}

func TestMain(m *testing.M) {
	// Low threshold for the whole binary: eligible plans go parallel on
	// the ~100-tuple fixture. (Plans are cached per (query, versions),
	// and every store here is built fresh, so no cross-test staleness.)
	engine.SetParallelThreshold(8)
	engine.ResetPlanCache()
	os.Exit(m.Run())
}

// diffStore builds the deterministic fixture: the workload generators'
// EMP and STOCK histories plus a REF relation keyed by employee name,
// giving every eligible plan shape (candidate selects, time-slices,
// windowed filters, index joins) a parallel-sized input.
func diffStore(tb testing.TB, seed int64) *storage.Store {
	tb.Helper()
	st := storage.NewStore()
	st.Put(workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 60, HistoryLen: 200, ChangeEvery: 12, ReincarnationProb: 0.4, Seed: seed,
	}))
	st.Put(workload.Stock(workload.StockConfig{
		NumStocks: 15, HistoryLen: 120, VolumeGapLo: 0.3, VolumeGapHi: 0.6, Seed: seed + 1,
	}))

	full := lifespan.Interval(0, 199)
	rs := schema.MustNew("REF", []string{"RNAME"},
		schema.Attribute{Name: "RNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "GRP", Domain: value.Strings, Lifespan: full},
	)
	ref := core.NewRelation(rs)
	rng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < 25; i++ {
		n := rng.Intn(120)
		lo := chronon.Time(rng.Intn(150))
		hi := lo + chronon.Time(1+rng.Intn(49))
		b := core.NewTupleBuilder(rs, lifespan.Interval(lo, hi))
		b.Key("RNAME", value.String_(fmt.Sprintf("emp%04d", n)))
		b.Set("BONUS", lo, hi, value.Int(int64(1000*rng.Intn(10))))
		b.SetConst("GRP", value.String_([]string{"A", "B", "C"}[rng.Intn(3)]))
		t, err := b.Build()
		if err != nil {
			tb.Fatalf("build REF tuple: %v", err)
		}
		if err := ref.Insert(t); err != nil {
			continue // duplicate name; skip
		}
	}
	st.Put(ref)
	return st
}

// goldenQueries is the hand-picked battery: every parallel-eligible
// plan shape plus surrounding operators (unions, projections, WHEN,
// SNAPSHOT) that consume parallel sub-plans.
var goldenQueries = []string{
	`TIMESLICE EMP AT {[0,9]}`,
	`TIMESLICE EMP AT {[50,60],[150,160]}`,
	`TIMESLICE EMP AT {[0,190]}`,
	`TIMESLICE EMP AT {[-inf,+inf]}`,
	`SELECT WHEN NAME = 'emp0007' FROM EMP`,
	`SELECT WHEN DEPT = 'Toys' FROM EMP`,
	`SELECT IF DEPT = 'Toys' FORALL FROM EMP`,
	`SELECT IF DEPT = 'Toys' FORALL DURING {[20,40]} FROM EMP`,
	`SELECT WHEN SAL > 30000 AND DEPT = 'Books' FROM EMP`,
	`SELECT WHEN SAL > 28000 DURING {[100,110]} FROM EMP`,
	`SELECT IF SAL >= 34000 EXISTS DURING {[20,40]} FROM EMP`,
	`SELECT WHEN GRP = 'A' FROM REF`,
	`PROJECT NAME, SAL FROM (SELECT WHEN SAL > 26000 FROM EMP)`,
	`EMP JOIN REF ON NAME = RNAME`,
	`REF JOIN EMP ON RNAME = NAME`,
	`EMP JOIN REF ON DEPT = GRP`,
	`(TIMESLICE EMP AT {[0,49]}) JOIN REF ON NAME = RNAME`,
	`(SELECT WHEN DEPT = 'Toys' FROM EMP) UNIONMERGE (SELECT WHEN DEPT = 'Shoes' FROM EMP)`,
	`EMP MINUSMERGE (TIMESLICE EMP AT {[0,99]})`,
	`WHEN (SELECT WHEN SAL = 30000 FROM EMP)`,
	`SNAPSHOT EMP AT 42`,
	`TIMESLICE STOCK BY EX_DIV`,
}

// compareAll runs src through the naive evaluator and the engine at
// every degree, failing on any divergence. It reports (via bool)
// whether the query executed successfully, so the fuzz target can
// count interesting inputs.
func compareAll(t *testing.T, st *storage.Store, src string) bool {
	t.Helper()
	e, err := hql.Parse(src)
	if err != nil {
		return false
	}
	ctx := context.Background()
	nRes, nErr := hql.EvalNaiveContext(ctx, e, st)
	var baseline string
	for _, w := range diffWorkers {
		gRes, gErr := engine.EvalContext(engine.WithWorkers(ctx, w), e, st)
		if (nErr != nil) != (gErr != nil) {
			t.Fatalf("%q workers=%d: naive err=%v, engine err=%v", src, w, nErr, gErr)
		}
		if nErr != nil {
			return false
		}
		var render string
		switch {
		case nRes.Relation != nil:
			if gRes.Relation == nil || !nRes.Relation.Equal(gRes.Relation) {
				t.Fatalf("%q workers=%d: relations differ\nnaive:\n%s\nengine:\n%v", src, w, nRes.Relation, gRes.Relation)
			}
			render = gRes.Relation.String()
			if render != nRes.Relation.String() {
				t.Fatalf("%q workers=%d: canonical renderings differ from naive", src, w)
			}
		case nRes.Lifespan != nil:
			if gRes.Lifespan == nil || !nRes.Lifespan.Equal(*gRes.Lifespan) {
				t.Fatalf("%q workers=%d: lifespans differ: naive %v engine %v", src, w, nRes.Lifespan, gRes.Lifespan)
			}
			render = gRes.Lifespan.String()
		case nRes.Snapshot != nil:
			if gRes.Snapshot == nil || nRes.Snapshot.String() != gRes.Snapshot.String() {
				t.Fatalf("%q workers=%d: snapshots differ", src, w)
			}
			render = gRes.Snapshot.String()
		}
		// Byte-identical output across every degree: the ordered merge's
		// determinism contract.
		if w == diffWorkers[0] {
			baseline = render
		} else if render != baseline {
			t.Fatalf("%q: output at workers=%d differs from workers=%d\nw=%d:\n%s\nw=%d:\n%s",
				src, w, diffWorkers[0], diffWorkers[0], baseline, w, render)
		}
	}
	return true
}

// TestDifferentialGolden runs the full battery on two seeds.
func TestDifferentialGolden(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		st := diffStore(t, seed)
		for _, q := range goldenQueries {
			if !compareAll(t, st, q) {
				t.Errorf("seed %d: golden query failed to execute: %s", seed, q)
			}
		}
	}
}

// TestDifferentialRandomized drives generated queries over randomized
// windows, names and thresholds — the deterministic cousin of the fuzz
// target below, always on in plain `go test`.
func TestDifferentialRandomized(t *testing.T) {
	st := diffStore(t, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		lo := rng.Intn(220) - 10
		hi := lo + rng.Intn(90)
		name := fmt.Sprintf("emp%04d", rng.Intn(80))
		dept := []string{"Toys", "Shoes", "Books", "Tools", "Music"}[rng.Intn(5)]
		sal := 24000 + rng.Intn(30)*1000
		queries := []string{
			fmt.Sprintf(`TIMESLICE EMP AT {[%d,%d]}`, lo, hi),
			fmt.Sprintf(`SELECT WHEN NAME = '%s' FROM EMP`, name),
			fmt.Sprintf(`SELECT WHEN SAL > %d AND DEPT = '%s' FROM EMP`, sal, dept),
			fmt.Sprintf(`SELECT IF SAL > %d EXISTS DURING {[%d,%d]} FROM EMP`, sal, lo, hi),
			fmt.Sprintf(`SELECT IF DEPT = '%s' FORALL DURING {[%d,%d]} FROM EMP`, dept, lo, hi),
			fmt.Sprintf(`SELECT WHEN DEPT = '%s' DURING {[%d,%d]} FROM EMP`, dept, lo, hi),
			fmt.Sprintf(`(TIMESLICE EMP AT {[%d,%d]}) JOIN REF ON NAME = RNAME`, lo, hi),
			fmt.Sprintf(`SNAPSHOT EMP AT %d`, lo),
			fmt.Sprintf(`WHEN (SELECT WHEN DEPT = '%s' DURING {[%d,%d]} FROM EMP)`, dept, lo, hi),
		}
		compareAll(t, st, queries[i%len(queries)])
	}
}

// FuzzDifferential mutates HQL sources; any input that parses must
// evaluate identically on the naive, sequential and parallel paths.
// Registered in the CI fuzz smoke alongside the parser fuzzers.
func FuzzDifferential(f *testing.F) {
	for _, q := range goldenQueries {
		f.Add(q)
	}
	st := diffStore(f, 5)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return // keep pathological inputs from dominating the budget
		}
		compareAll(t, st, src)
	})
}
