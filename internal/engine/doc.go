// Package engine is the physical query-execution subsystem layered over
// the HRDM algebra of internal/core.
//
// The algebra operators are faithful linear scans — every TIME-SLICE,
// SELECT and JOIN walks all tuples and their chronon sets. This package
// adds the classic relational-engine machinery on top without touching
// the model semantics: a lifespan interval index (which tuples are alive
// over [t1,t2] in O(log n + k)), key/attribute hash indexes over the
// constant-valued functions the paper's CD domains guarantee, a
// cost-aware planner that lowers parsed HQL expressions into streaming
// iterator plans with selection and time-slice pushdown (falling back to
// the naive evaluator wherever no index applies), per-relation
// statistics feeding the planner's selectivity and join estimates, and
// a plan cache that lets repeated queries skip parse and plan entirely.
// Indexes absorb single-tuple inserts, merges and coalesced batches
// incrementally from relation change notifications instead of
// rebuilding. Every query executes against a pinned epoch snapshot of
// its relations (core.Pin), so multi-relation plans read one
// consistent database state with zero locks on the scan path even
// while writers publish. Importing the package installs the planner as
// internal/hql's evaluation hook; equivalence with the naive evaluator
// is property-tested over randomized workloads.
//
// The concurrency lifecycle — how plans, pins, write groups and the
// plan cache interlock — is documented in docs/ARCHITECTURE.md; the
// EXPLAIN output format is documented line by line in docs/EXPLAIN.md.
package engine
