package engine

import (
	"fmt"

	"repro/internal/hql"
	"repro/internal/storage"
)

// init installs the cost-aware planner as the HQL evaluation hook and
// the storage layer's index builder: any program that imports this
// package (the CLI, the benchmark harness, storage-loading services)
// transparently routes hql.Run / hql.Eval through indexed physical
// plans — memoized in the plan cache, so repeated queries skip
// planning — and stores rebuild their indexes on load. Planning
// failures fall back to the naive evaluator, which either runs the
// query or reports the definitive semantic error, so installation never
// changes observable behavior — only speed.
func init() {
	storage.IndexBuilder = BuildIndexes
	hql.SetPlanner(func(e hql.Expr, env hql.Env) (hql.Result, bool, error) {
		return planAndRun(e, env, "")
	})
}

// Run parses, plans and executes a query through the engine, falling
// back to the naive evaluator when the expression cannot be planned. A
// plan cached under the query's normalized text short-circuits before
// the parser runs.
func Run(src string, env hql.Env) (hql.Result, error) {
	srcKey := srcCacheKey(src)
	if p, ok := planCache.lookup(srcKey, env, false); ok {
		planCache.countHit()
		return p.Execute()
	}
	e, err := hql.Parse(src)
	if err != nil {
		return hql.Result{}, err
	}
	res, handled, err := planAndRun(e, env, srcKey)
	if handled || err != nil {
		return res, err
	}
	return hql.EvalNaive(e, env)
}

// Eval plans and executes a parsed expression, with plan caching and
// naive fallback.
func Eval(e hql.Expr, env hql.Env) (hql.Result, error) {
	res, handled, err := planAndRun(e, env, "")
	if handled || err != nil {
		return res, err
	}
	return hql.EvalNaive(e, env)
}

// planAndRun is the shared execution path behind Eval, Run and the hql
// planner hook: consult the plan cache under the expression's canonical
// rendering, else compile, cache and execute. srcKey, when non-empty,
// is additionally registered as an alias so the raw query text hits
// before its next parse. handled=false (with nil error) means the
// planner cannot compile the expression and the caller should fall back
// to the naive evaluator.
func planAndRun(e hql.Expr, env hql.Env, srcKey string) (hql.Result, bool, error) {
	key := astCacheKey(e)
	if p, ok := planCache.lookup(key, env, true); ok {
		planCache.addKey(p, srcKey)
		res, err := p.Execute()
		return res, true, err
	}
	p, err := PlanQuery(e, env)
	if err != nil {
		return hql.Result{}, false, nil
	}
	planCache.store([]string{srcKey, key}, p)
	res, err := p.Execute()
	return res, true, err
}

// Explain parses and plans a query and renders the chosen physical
// plan without executing the plan itself. Planning is not free of
// evaluation: lifespan parameters — literal or WHEN sub-queries in AT
// and DURING positions — are plan-time constants the planner must
// resolve to price its index probes, so a WHEN sub-query does run
// during EXPLAIN. When optimize is set, the Section 5 law-based
// rewriter runs first, so the output shows the plan of the rewritten
// expression — the same one Run would execute. The output ends with
// the statistics the planner consulted and the query's plan-cache
// status (EXPLAIN itself neither reads from nor populates the cache).
func Explain(src string, env hql.Env, optimize bool) (string, error) {
	e, err := hql.Parse(src)
	if err != nil {
		return "", err
	}
	if optimize {
		e, _ = hql.Optimize(e)
	}
	p, err := PlanQuery(e, env)
	if err != nil {
		return "", err
	}
	status := "miss (first run compiles and caches the plan)"
	if planCache.peek(astCacheKey(e), env) || planCache.peek(srcCacheKey(src), env) {
		status = "hit (repeated runs skip parse and plan)"
	}
	hits, misses, entries := PlanCacheStats()
	return fmt.Sprintf("query: %s\n%s\nplan-cache: %s [%d hits / %d misses, %d cached]",
		e.String(), p.Explain(), status, hits, misses, entries), nil
}
