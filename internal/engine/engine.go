package engine

import (
	"repro/internal/hql"
	"repro/internal/storage"
)

// init installs the cost-aware planner as the HQL evaluation hook and
// the storage layer's index builder: any program that imports this
// package (the CLI, the benchmark harness, storage-loading services)
// transparently routes hql.Run / hql.Eval through indexed physical
// plans, and stores rebuild their indexes on load. Planning failures
// fall back to the naive evaluator, which either runs the query or
// reports the definitive semantic error, so installation never changes
// observable behavior — only speed.
func init() {
	storage.IndexBuilder = BuildIndexes
	hql.SetPlanner(func(e hql.Expr, env hql.Env) (hql.Result, bool, error) {
		p, err := PlanQuery(e, env)
		if err != nil {
			return hql.Result{}, false, nil
		}
		res, err := p.Execute()
		if err != nil {
			return hql.Result{}, true, err
		}
		return res, true, nil
	})
}

// Run parses, plans and executes a query through the engine, falling
// back to the naive evaluator when the expression cannot be planned.
func Run(src string, env hql.Env) (hql.Result, error) {
	e, err := hql.Parse(src)
	if err != nil {
		return hql.Result{}, err
	}
	return Eval(e, env)
}

// Eval plans and executes a parsed expression, with naive fallback.
func Eval(e hql.Expr, env hql.Env) (hql.Result, error) {
	p, err := PlanQuery(e, env)
	if err != nil {
		return hql.EvalNaive(e, env)
	}
	return p.Execute()
}

// Explain parses and plans a query and renders the chosen physical
// plan without executing the plan itself. Planning is not free of
// evaluation: lifespan parameters — literal or WHEN sub-queries in AT
// and DURING positions — are plan-time constants the planner must
// resolve to price its index probes, so a WHEN sub-query does run
// during EXPLAIN. When optimize is set, the Section 5 law-based
// rewriter runs first, so the output shows the plan of the rewritten
// expression — the same one Run would execute.
func Explain(src string, env hql.Env, optimize bool) (string, error) {
	e, err := hql.Parse(src)
	if err != nil {
		return "", err
	}
	if optimize {
		e, _ = hql.Optimize(e)
	}
	p, err := PlanQuery(e, env)
	if err != nil {
		return "", err
	}
	return "query: " + e.String() + "\n" + p.Explain(), nil
}
