package engine

import (
	"context"
	"fmt"

	"repro/internal/hql"
	"repro/internal/hrdmerr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// init installs the cost-aware planner as the HQL evaluation hook and
// the storage layer's index builder: any program that imports this
// package (the CLI, the benchmark harness, storage-loading services)
// transparently routes hql.Run / hql.Eval through indexed physical
// plans — memoized in the plan cache, so repeated queries skip
// planning — and stores rebuild their indexes on load. Planning
// failures fall back to the naive evaluator, which either runs the
// query or reports the definitive semantic error, so installation never
// changes observable behavior — only speed.
func init() {
	storage.IndexBuilder = BuildIndexes
	hql.SetPlanner(func(ctx context.Context, e hql.Expr, env hql.Env) (hql.Result, bool, error) {
		sp := obs.Begin()
		res, handled, err := planAndRun(ctx, e, env, "", &sp)
		if handled || err != nil {
			return res, handled, err
		}
		// Unplannable expression: run the naive evaluator here rather
		// than deferring to hql's own fallback, so the span still lands
		// in finishQuery and naive queries are counted and slow-logged
		// like planned ones.
		res, err = hql.EvalNaiveContext(ctx, e, env)
		sp.Mark(obs.StageExecute)
		finishQuery(&sp, astCacheKey(e), nil, nil, err)
		return res, true, err
	})
}

// pinRetries bounds the optimistic plan-then-pin loop: each attempt
// compiles (or fetches) a plan and pins a snapshot of its
// dependencies; a writer publishing between the two forces a retry.
// After the budget is spent, the engine compiles and pins under the
// publish lock in one critical section, which cannot lose the race —
// so a query never livelocks behind a continuous writer.
const pinRetries = 3

// Run parses, plans and executes a query through the engine, falling
// back to the naive evaluator when the expression cannot be planned. A
// plan cached under the query's normalized text short-circuits before
// the parser runs. Execution is snapshot-isolated: the plan runs
// against a pinned database state matching its compile-time relation
// versions, however many relations it touches.
//
// Every path through Run carries an obs.Span and lands in finishQuery,
// so engine.queries / engine.query_total_ns count every query and the
// slow log sees every outlier. The cached fast path pays exactly three
// clock reads (span start, pin mark, execute mark) plus finishQuery's
// atomics — measured against BenchmarkRunCachedKeyEq to stay inside
// the ~3% overhead budget.
func Run(src string, env hql.Env) (hql.Result, error) {
	return RunContext(context.Background(), src, env)
}

// RunContext is Run under a context: cancellation and deadlines abort
// execution with a typed hrdmerr error (ErrCanceled / ErrDeadline)
// within one iterator batch (cancelBatch pulls) instead of running the
// scan to completion. A Background (uncancellable) context pays zero
// per-tuple checks, keeping the cached fast path inside its overhead
// budget.
func RunContext(ctx context.Context, src string, env hql.Env) (hql.Result, error) {
	if err := ctx.Err(); err != nil {
		return hql.Result{}, hrdmerr.FromContext(err)
	}
	sp := obs.Begin()
	srcKey := srcCacheKey(src)
	if p, ok := planCache.lookup(srcKey, env, false); ok {
		if snap, pinned := pinPlan(ctx, p); pinned {
			planCache.countHit()
			// One mark covers lookup + pin: splitting them would buy a
			// clock read for a sub-microsecond distinction.
			sp.Mark(obs.StagePin)
			res, err := p.run(snap, &sp)
			finishQuery(&sp, srcKey, p, snap, err)
			return res, err
		}
		// A writer moved a dependency between the fence check and the
		// pin; fall through to the parse path, whose own lookup will
		// drop the stale entry and replan.
		mPinRetries.Inc()
	}
	e, err := hql.Parse(src)
	sp.Mark(obs.StageParse)
	if err != nil {
		finishQuery(&sp, srcKey, nil, nil, err)
		return hql.Result{}, err
	}
	res, handled, err := planAndRun(ctx, e, env, srcKey, &sp)
	if handled || err != nil {
		return res, err
	}
	res, err = hql.EvalNaiveContext(ctx, e, env)
	sp.Mark(obs.StageExecute)
	finishQuery(&sp, srcKey, nil, nil, err)
	return res, err
}

// Eval plans and executes a parsed expression, with plan caching,
// snapshot pinning and naive fallback.
func Eval(e hql.Expr, env hql.Env) (hql.Result, error) {
	return EvalContext(context.Background(), e, env)
}

// EvalContext is Eval under a context (see RunContext for the
// cancellation contract).
func EvalContext(ctx context.Context, e hql.Expr, env hql.Env) (hql.Result, error) {
	if err := ctx.Err(); err != nil {
		return hql.Result{}, hrdmerr.FromContext(err)
	}
	sp := obs.Begin()
	res, handled, err := planAndRun(ctx, e, env, "", &sp)
	if handled || err != nil {
		return res, err
	}
	res, err = hql.EvalNaiveContext(ctx, e, env)
	sp.Mark(obs.StageExecute)
	finishQuery(&sp, astCacheKey(e), nil, nil, err)
	return res, err
}

// planAndRun is the shared execution path behind Eval, Run and the hql
// planner hook: consult the plan cache under the expression's canonical
// rendering, else compile and cache — then pin a snapshot of the plan's
// dependencies and execute only when the pinned versions match the
// versions the plan was compiled against, so plan-time constants
// (index candidate sets, WHEN sub-query lifespans) describe exactly
// the state the query reads. Lost races against writers retry, then
// resolve under the publish lock. srcKey, when non-empty, is
// additionally registered as an alias so the raw query text hits
// before its next parse. handled=false (with nil error) means the
// planner cannot compile the expression and the caller should fall
// back to the naive evaluator. When it handles the query it also
// finishes the span (metrics + slow log); on fallback the caller owns
// the span's ending, timing whatever evaluator it runs instead.
func planAndRun(ctx context.Context, e hql.Expr, env hql.Env, srcKey string, sp *obs.Span) (hql.Result, bool, error) {
	key := astCacheKey(e)
	for try := 0; try < pinRetries; try++ {
		if p, ok := planCache.lookup(key, env, try == 0); ok {
			sp.Mark(obs.StagePlan)
			if snap, pinned := pinPlan(ctx, p); pinned {
				sp.Mark(obs.StagePin)
				planCache.addKey(p, srcKey)
				res, err := p.run(snap, sp)
				finishQuery(sp, key, p, snap, err)
				return res, true, err
			}
			sp.Mark(obs.StagePin)
			mPinRetries.Inc()
			continue // dep moved between fence and pin: next lookup drops it
		}
		p, err := PlanQuery(e, env)
		sp.Mark(obs.StagePlan)
		if err != nil {
			mNaiveFallback.Inc()
			return hql.Result{}, false, nil
		}
		if snap, pinned := pinPlan(ctx, p); pinned {
			sp.Mark(obs.StagePin)
			planCache.store([]string{srcKey, key}, p)
			res, err := p.run(snap, sp)
			finishQuery(sp, key, p, snap, err)
			return res, true, err
		}
		sp.Mark(obs.StagePin)
		mPinRetries.Inc()
	}
	// A continuous writer kept publishing between plan and pin; compile
	// and pin in one critical section, which cannot fail.
	mPinExclusive.Inc()
	p, snap, err := pinPlanExclusive(ctx, func() (*Plan, error) { return PlanQuery(e, env) })
	sp.Mark(obs.StagePin)
	if err != nil {
		mNaiveFallback.Inc()
		return hql.Result{}, false, nil
	}
	planCache.store([]string{srcKey, key}, p)
	res, err := p.run(snap, sp)
	finishQuery(sp, key, p, snap, err)
	return res, true, err
}

// Explain parses and plans a query and renders the chosen physical
// plan without executing the plan itself. Planning is not free of
// evaluation: lifespan parameters — literal or WHEN sub-queries in AT
// and DURING positions — are plan-time constants the planner must
// resolve to price its index probes, so a WHEN sub-query does run
// during EXPLAIN. When optimize is set, the Section 5 law-based
// rewriter runs first, so the output shows the plan of the rewritten
// expression — the same one Run would execute. The output ends with
// the statistics the planner consulted, the snapshot a run of the plan
// would pin — the database epoch plus each dependency at its pinned
// version — and the query's plan-cache status (EXPLAIN itself neither
// reads from nor populates the cache).
func Explain(src string, env hql.Env, optimize bool) (string, error) {
	e, err := hql.Parse(src)
	if err != nil {
		return "", err
	}
	if optimize {
		e, _ = hql.Optimize(e)
	}
	p, err := PlanQuery(e, env)
	if err != nil {
		return "", err
	}
	status := "miss (first run compiles and caches the plan)"
	if planCache.peek(astCacheKey(e), env) || planCache.peek(srcCacheKey(src), env) {
		status = "hit (repeated runs skip parse and plan)"
	}
	hits, misses, entries := PlanCacheStats()
	return fmt.Sprintf("query: %s\n%s\nsnapshot: %s\nplan-cache: %s [%d hits / %d misses, %d cached]",
		e.String(), p.Explain(), describePin(p), status, hits, misses, entries), nil
}
