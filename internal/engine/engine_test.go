package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestPlanShapes asserts the planner actually picks the indexed
// operators — equivalence alone would pass even if every query fell
// back to a scan.
func TestPlanShapes(t *testing.T) {
	st := testStore(t, 3)
	cases := []struct {
		query, want string
	}{
		{`TIMESLICE EMP AT {[0,9]}`, "index-time-slice EMP"},
		{`SELECT WHEN NAME = 'emp0001' FROM EMP`, "key-index EMP.NAME"},
		{`SELECT WHEN GRP = 'A' FROM REF`, "attr-index(GRP"},
		{`SELECT WHEN SAL > 30000 DURING {[5,15]} FROM EMP`, "interval-index during"},
		{`EMP JOIN REF ON NAME = RNAME`, "index-lookup-join"},
		{`EMP JOIN REF ON NAME = RNAME`, "key-index"},
		{`SELECT IF SAL > 1 FORALL FROM EMP`, "filter if-forall"},
		{`PROJECT NAME, SAL FROM EMP`, "project NAME, SAL (key kept)"},
		{`PROJECT DEPT FROM EMP`, "project DEPT (naive)"},
		{`EMP NATJOIN EMP`, "natural-join (naive)"},
		{`TIMESLICE EMP AT {[-inf,+inf]}`, "time-slice at"},
	}
	for _, c := range cases {
		out, err := Explain(c.query, st, false)
		if err != nil {
			t.Fatalf("explain %q: %v", c.query, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("explain %q:\n%s\nwant substring %q", c.query, out, c.want)
		}
	}
}

// TestPlannerHookInstalled verifies that importing the engine routes
// hql.Run through the planner (the end-to-end wiring of the subsystem).
func TestPlannerHookInstalled(t *testing.T) {
	st := testStore(t, 5)
	res, err := hql.Run(`SELECT WHEN NAME = 'emp0002' FROM EMP`, st)
	if err != nil {
		t.Fatalf("hql.Run through hook: %v", err)
	}
	e, err := hql.Parse(`SELECT WHEN NAME = 'emp0002' FROM EMP`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	naive, err := hql.EvalNaive(e, st)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if !res.Relation.Equal(naive.Relation) {
		t.Fatalf("hooked Run differs from naive")
	}
}

// TestCatalogInvalidation checks that indexes rebuild when a relation
// grows — stale candidate sets would silently drop new tuples.
func TestCatalogInvalidation(t *testing.T) {
	r := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 10, HistoryLen: 100, ChangeEvery: 10, ReincarnationProb: 0, Seed: 21,
	})
	before := Indexes(r).Interval().Tuples()
	if before != 10 {
		t.Fatalf("indexed %d tuples, want 10", before)
	}
	more := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 11, HistoryLen: 100, ChangeEvery: 10, ReincarnationProb: 0, Seed: 22,
	})
	extra := more.Tuples()[10]
	// Re-key the extra tuple via a fresh builder path: just insert it
	// under its own (distinct) name.
	if err := r.Insert(extra); err != nil {
		t.Fatalf("insert: %v", err)
	}
	after := Indexes(r).Interval().Tuples()
	if after != 11 {
		t.Fatalf("after insert indexed %d tuples, want 11 (stale index served)", after)
	}
}

// TestAttrIndexBuckets sanity-checks the constant/varying split on a
// relation where both occur.
func TestAttrIndexBuckets(t *testing.T) {
	r := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 30, HistoryLen: 150, ChangeEvery: 10, ReincarnationProb: 0.3, Seed: 13,
	})
	ix := NewAttrIndex(r, "NAME") // key: every tuple constant
	if len(ix.Varying()) != 0 {
		t.Fatalf("NAME index has %d varying tuples, want 0", len(ix.Varying()))
	}
	if ix.DistinctValues() != r.Cardinality() {
		t.Fatalf("NAME index has %d values, want %d", ix.DistinctValues(), r.Cardinality())
	}
	got := ix.Probe(value.String_("emp0004"))
	if len(got) != 1 {
		t.Fatalf("probe emp0004 returned %d tuples, want 1", len(got))
	}
	dix := NewAttrIndex(r, "DEPT") // mostly varying
	if len(dix.Varying())+dix.DistinctValues() == 0 {
		t.Fatalf("DEPT index indexed nothing")
	}
}

// TestEquiJoinProbeDirect exercises core.EquiJoinProbe — the index
// lookup join fast path — against the naive nested-loop EquiJoin,
// with a hash-index probe including the varying overflow.
func TestEquiJoinProbeDirect(t *testing.T) {
	st := testStore(t, 31)
	emp, _ := st.Get("EMP")
	ref, _ := st.Get("REF")
	ix := NewAttrIndex(ref, "RNAME")
	fast, err := core.EquiJoinProbe(emp, ref, "NAME", "RNAME", func(t1 *core.Tuple) []*core.Tuple {
		f := t1.Value("NAME")
		if f.IsNowhereDefined() || !f.IsConstant() {
			return ref.Tuples() // cannot prune; check everything
		}
		v, _ := f.ConstantValue()
		return append(append([]*core.Tuple(nil), ix.Probe(v)...), ix.Varying()...)
	})
	if err != nil {
		t.Fatalf("EquiJoinProbe: %v", err)
	}
	naive, err := core.EquiJoin(emp, ref, "NAME", "RNAME")
	if err != nil {
		t.Fatalf("EquiJoin: %v", err)
	}
	if !fast.Equal(naive) || fast.String() != naive.String() {
		t.Fatalf("probe join differs from naive:\n%s\nvs\n%s", fast, naive)
	}
}

// TestIndexedFastPathsDirect exercises the core *Over entry points with
// index-derived candidate sets against the naive operators.
func TestIndexedFastPathsDirect(t *testing.T) {
	r := workload.Personnel(workload.DefaultPersonnel())
	L := lifespan.MustParse("{[30,55],[90,120]}")
	ix := NewIntervalIndex(r)

	fast, err := core.TimesliceStaticOver(r, L, ix.Overlapping(L))
	if err != nil {
		t.Fatalf("TimesliceStaticOver: %v", err)
	}
	naive, err := core.TimesliceStatic(r, L)
	if err != nil {
		t.Fatalf("TimesliceStatic: %v", err)
	}
	if !fast.Equal(naive) || fast.String() != naive.String() {
		t.Fatalf("indexed time-slice differs from naive:\n%s\nvs\n%s", fast, naive)
	}
}
