package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// testStore builds a store with the workload generators' relations plus
// a REF relation keyed by employee name, so equijoins have a disjoint
// second operand with both key and non-key indexable attributes.
func testStore(tb testing.TB, seed int64) *storage.Store {
	tb.Helper()
	st := storage.NewStore()
	emp := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 60, HistoryLen: 200, ChangeEvery: 12, ReincarnationProb: 0.4, Seed: seed,
	})
	st.Put(emp)
	st.Put(workload.Stock(workload.StockConfig{
		NumStocks: 15, HistoryLen: 120, VolumeGapLo: 0.3, VolumeGapHi: 0.6, Seed: seed + 1,
	}))

	full := lifespan.Interval(0, 199)
	rs := schema.MustNew("REF", []string{"RNAME"},
		schema.Attribute{Name: "RNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "GRP", Domain: value.Strings, Lifespan: full},
	)
	ref := core.NewRelation(rs)
	rng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < 25; i++ {
		// Half the names resolve to employees, half dangle.
		n := rng.Intn(120)
		lo := chronon.Time(rng.Intn(150))
		hi := lo + chronon.Time(1+rng.Intn(49))
		b := core.NewTupleBuilder(rs, lifespan.Interval(lo, hi))
		b.Key("RNAME", value.String_(fmt.Sprintf("emp%04d", n)))
		b.Set("BONUS", lo, hi, value.Int(int64(1000*rng.Intn(10))))
		b.SetConst("GRP", value.String_([]string{"A", "B", "C"}[rng.Intn(3)]))
		t, err := b.Build()
		if err != nil {
			tb.Fatalf("build REF tuple: %v", err)
		}
		if err := ref.Insert(t); err != nil {
			continue // duplicate name; skip
		}
	}
	st.Put(ref)
	return st
}

// compareQuery runs one query through the naive evaluator and the
// engine and requires identical outcomes — same error presence, and for
// successes an Equal relation/lifespan/snapshot AND an identical
// canonical rendering (byte-for-byte).
func compareQuery(t *testing.T, env hql.Env, q string) {
	t.Helper()
	e, err := hql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	nRes, nErr := hql.EvalNaive(e, env)
	gRes, gErr := Eval(e, env)
	if (nErr != nil) != (gErr != nil) {
		t.Fatalf("%q: naive err=%v, engine err=%v", q, nErr, gErr)
	}
	if nErr != nil {
		return
	}
	switch {
	case nRes.Relation != nil:
		if gRes.Relation == nil {
			t.Fatalf("%q: engine returned non-relation", q)
		}
		if !nRes.Relation.Equal(gRes.Relation) {
			t.Fatalf("%q: relations differ\nnaive:\n%s\nengine:\n%s", q, nRes.Relation, gRes.Relation)
		}
		if nRes.Relation.String() != gRes.Relation.String() {
			t.Fatalf("%q: canonical renderings differ\nnaive:\n%s\nengine:\n%s", q, nRes.Relation, gRes.Relation)
		}
	case nRes.Lifespan != nil:
		if gRes.Lifespan == nil || !nRes.Lifespan.Equal(*gRes.Lifespan) {
			t.Fatalf("%q: lifespans differ: naive %v engine %v", q, nRes.Lifespan, gRes.Lifespan)
		}
	case nRes.Snapshot != nil:
		if gRes.Snapshot == nil || nRes.Snapshot.String() != gRes.Snapshot.String() {
			t.Fatalf("%q: snapshots differ\nnaive:\n%s\nengine:\n%v", q, nRes.Snapshot, gRes.Snapshot)
		}
	}
}

// TestEquivalenceFixedBattery runs a hand-picked battery covering every
// plan node: index time-slice, index selects (key, attribute, interval),
// streaming filters/projections, index lookup joins, and the naive
// fallbacks.
func TestEquivalenceFixedBattery(t *testing.T) {
	st := testStore(t, 1)
	queries := []string{
		`TIMESLICE EMP AT {[0,9]}`,
		`TIMESLICE EMP AT {[50,60],[150,160]}`,
		`TIMESLICE EMP AT {}`,
		`TIMESLICE EMP AT {[-inf,+inf]}`,
		`TIMESLICE STOCK BY EX_DIV`,
		`SELECT WHEN NAME = 'emp0007' FROM EMP`,
		`SELECT IF NAME = 'emp0007' EXISTS FROM EMP`,
		`SELECT WHEN NAME = 'nobody' FROM EMP`,
		`SELECT WHEN DEPT = 'Toys' FROM EMP`,
		`SELECT IF DEPT = 'Toys' FORALL FROM EMP`,
		`SELECT WHEN SAL > 30000 AND DEPT = 'Books' FROM EMP`,
		`SELECT WHEN SAL > 30000 OR DEPT = 'Books' FROM EMP`,
		`SELECT WHEN NOT (DEPT = 'Books') FROM EMP`,
		`SELECT IF SAL >= 34000 EXISTS DURING {[20,40]} FROM EMP`,
		`SELECT IF SAL >= 34000 FORALL DURING {[20,40]} FROM EMP`,
		`SELECT WHEN SAL > 28000 DURING {[100,110]} FROM EMP`,
		`SELECT WHEN GRP = 'A' FROM REF`,
		`PROJECT NAME, SAL FROM EMP`,
		`PROJECT DEPT FROM EMP`,
		`PROJECT NAME FROM (TIMESLICE EMP AT {[10,30]})`,
		`SELECT WHEN SAL > 26000 FROM (TIMESLICE EMP AT {[5,25]})`,
		`TIMESLICE (SELECT WHEN DEPT = 'Shoes' FROM EMP) AT {[0,99]}`,
		`(TIMESLICE EMP AT {[0,80]}) UNIONMERGE (TIMESLICE EMP AT {[60,199]})`,
		`EMP MINUSMERGE (TIMESLICE EMP AT {[0,99]})`,
		`EMP INTERSECTMERGE (TIMESLICE EMP AT {[40,160]})`,
		`EMP JOIN REF ON NAME = RNAME`,
		`REF JOIN EMP ON RNAME = NAME`,
		`(TIMESLICE EMP AT {[0,49]}) JOIN REF ON NAME = RNAME`,
		`(SELECT WHEN DEPT = 'Toys' FROM EMP) JOIN REF ON NAME = RNAME`,
		`EMP JOIN REF ON DEPT = GRP`,
		`EMP JOIN REF ON SAL > BONUS`,
		`EMP OUTERJOIN REF ON NAME = RNAME`,
		`PROJECT NAME, RNAME, BONUS FROM (EMP JOIN REF ON NAME = RNAME)`,
		`WHEN (SELECT WHEN SAL = 30000 FROM EMP)`,
		`TIMESLICE EMP AT WHEN (SELECT WHEN DEPT = 'Toys' FROM EMP)`,
		`TIMESLICE EMP AT {[0,60]} INTERSECT {[30,90]}`,
		`SNAPSHOT EMP AT 42`,
		`SNAPSHOT (EMP JOIN REF ON NAME = RNAME) AT 42`,
		`MATERIALIZE (TIMESLICE STOCK AT {[10,20]})`,
		`RENAME EMP AS e`,
		`EMP NATJOIN EMP`,
	}
	for _, q := range queries {
		compareQuery(t, st, q)
	}
}

// TestEquivalenceRandomized drives randomized workloads and randomized
// queries — the property test the ISSUE's acceptance criteria name.
func TestEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		st := testStore(t, seed*100)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			lo := rng.Intn(220) - 10
			hi := lo + rng.Intn(80)
			name := fmt.Sprintf("emp%04d", rng.Intn(80))
			dept := []string{"Toys", "Shoes", "Books", "Tools", "Music"}[rng.Intn(5)]
			sal := 24000 + rng.Intn(30)*1000
			queries := []string{
				fmt.Sprintf(`TIMESLICE EMP AT {[%d,%d]}`, lo, hi),
				fmt.Sprintf(`SELECT WHEN NAME = '%s' FROM EMP`, name),
				fmt.Sprintf(`SELECT WHEN SAL > %d AND DEPT = '%s' FROM EMP`, sal, dept),
				fmt.Sprintf(`SELECT IF SAL > %d EXISTS DURING {[%d,%d]} FROM EMP`, sal, lo, hi),
				fmt.Sprintf(`SELECT IF DEPT = '%s' FORALL DURING {[%d,%d]} FROM EMP`, dept, lo, hi),
				fmt.Sprintf(`SELECT WHEN DEPT = '%s' DURING {[%d,%d]} FROM EMP`, dept, lo, hi),
				fmt.Sprintf(`(TIMESLICE EMP AT {[%d,%d]}) JOIN REF ON NAME = RNAME`, lo, hi),
				fmt.Sprintf(`SNAPSHOT EMP AT %d`, lo+rng.Intn(40)),
				fmt.Sprintf(`WHEN (SELECT WHEN DEPT = '%s' DURING {[%d,%d]} FROM EMP)`, dept, lo, hi),
			}
			compareQuery(t, st, queries[i%len(queries)])
		}
	}
}

// TestEngineConcurrentQueries hammers one shared store from several
// goroutines so `go test -race` exercises the catalog's lazy index
// builds and the planner hook.
func TestEngineConcurrentQueries(t *testing.T) {
	st := testStore(t, 9)
	queries := []string{
		`TIMESLICE EMP AT {[10,30]}`,
		`SELECT WHEN NAME = 'emp0003' FROM EMP`,
		`EMP JOIN REF ON NAME = RNAME`,
		`SELECT WHEN DEPT = 'Toys' DURING {[5,60]} FROM EMP`,
		`EMP JOIN REF ON DEPT = GRP`,
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				if _, err := Run(queries[(g+i)%len(queries)], st); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent query failed: %v", err)
		}
	}
}
