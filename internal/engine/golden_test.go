package engine

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// The EXPLAIN output these golden files lock — every line, from the
// plan tree and its cost estimates through the statistics, snapshot
// and plan-cache reports — is documented in docs/EXPLAIN.md; update
// that document whenever an intentional format change updates the
// golden files here.
var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files under testdata/explain")

// epochRe masks the database epoch in EXPLAIN output: it is a
// process-global counter, so its absolute value depends on which tests
// ran first. Relation versions and everything else are deterministic
// for the freshly built store.
var epochRe = regexp.MustCompile(`epoch \d+`)

// goldenStore builds a small fully deterministic database: a
// 40-tuple EMP with staggered lifespans (large enough that index plans
// win their costings), a two-tuple REF for joins, and TINY, a relation
// small enough that the time-slice costing short-circuits before
// consulting the interval index.
func goldenStore(t testing.TB) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	full := lifespan.Interval(0, 999)

	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	emp := core.NewRelation(es)
	depts := []string{"Toys", "Books", "Shoes", "Games"}
	for i := 0; i < 40; i++ {
		lo := chronon.Time(i * 20)
		hi := lo + 9
		name := string(rune('a'+i%26)) + string(rune('a'+i/26)) + "emp"
		emp.MustInsert(core.NewTupleBuilder(es, lifespan.Interval(lo, hi)).
			Key("NAME", value.String_(name)).
			Set("SAL", lo, hi, value.Int(int64(30000+100*i))).
			Set("DEPT", lo, hi, value.String_(depts[i%len(depts)])).
			MustBuild())
	}
	st.Put(emp)

	rs := schema.MustNew("REF", []string{"RNAME"},
		schema.Attribute{Name: "RNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	ref := core.NewRelation(rs)
	for i, name := range []string{"aaemp", "bbemp"} {
		lo := chronon.Time(i * 20)
		ref.MustInsert(core.NewTupleBuilder(rs, lifespan.Interval(lo, lo+9)).
			Key("RNAME", value.String_(name)).
			Set("BONUS", lo, lo+9, value.Int(int64(1000*(i+1)))).
			MustBuild())
	}
	st.Put(ref)

	ts := schema.MustNew("TINY", []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
	)
	tiny := core.NewRelation(ts)
	tiny.MustInsert(core.NewTupleBuilder(ts, lifespan.Interval(0, 9)).
		Key("K", value.String_("only")).
		MustBuild())
	st.Put(tiny)

	st.RebuildIndexes()
	Indexes(emp).Attr("DEPT")
	return st
}

// TestExplainGolden locks the full EXPLAIN rendering — plan shape,
// cost estimates, statistics, pinned snapshot, plan-cache status — for
// representative plans against golden files. Run with -update after an
// intentional planner or formatting change:
//
//	go test ./internal/engine -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	st := goldenStore(t)
	cases := []struct {
		name, query string
		prime       bool // run the query first, so EXPLAIN reports a cache hit
	}{
		{"index_scan_key_eq", `SELECT WHEN NAME = 'aaemp' FROM EMP`, false},
		{"attr_index_select", `SELECT WHEN DEPT = 'Toys' FROM EMP`, false},
		{"index_time_slice", `TIMESLICE EMP AT {[100,139]}`, false},
		{"time_slice_short_circuit", `TIMESLICE TINY AT {[0,5]}`, false},
		{"equijoin_key_probe", `REF JOIN EMP ON RNAME = NAME`, false},
		{"during_interval_index", `SELECT WHEN SAL > 30000 DURING {[100,139]} FROM EMP`, false},
		{"cache_hit", `SELECT WHEN NAME = 'bbemp' FROM EMP`, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Counter determinism: every case starts from an empty cache;
			// the prime run then yields exactly one miss before the hit.
			ResetPlanCache()
			if c.prime {
				if _, err := Run(c.query, st); err != nil {
					t.Fatal(err)
				}
			}
			out, err := Explain(c.query, st, false)
			if err != nil {
				t.Fatal(err)
			}
			got := epochRe.ReplaceAllString(out, "epoch <E>") + "\n"
			path := filepath.Join("testdata", "explain", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/engine -run TestExplainGolden -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
	ResetPlanCache()
}
