// Package engine is the physical query-execution subsystem layered over
// the HRDM algebra of internal/core.
//
// The algebra operators are faithful linear scans — every TIME-SLICE,
// SELECT and JOIN walks all tuples and their chronon sets. This package
// adds the classic relational-engine machinery on top without touching
// the model semantics: a lifespan interval index (which tuples are alive
// over [t1,t2] in O(log n + k)), key/attribute hash indexes over the
// constant-valued functions the paper's CD domains guarantee, and a
// cost-aware planner that lowers parsed HQL expressions into streaming
// iterator plans with selection and time-slice pushdown, falling back to
// the naive evaluator wherever no index applies. Importing the package
// installs the planner as internal/hql's evaluation hook; equivalence
// with the naive evaluator is property-tested over randomized workloads.
package engine

import (
	"sort"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
)

// ientry is one lifespan interval of one tuple. A tuple with a gapped
// lifespan (the paper's "reincarnation") contributes one entry per
// incarnation; ord is the tuple's insertion ordinal, used to de-duplicate
// multi-interval matches and keep candidate order deterministic.
type ientry struct {
	iv  chronon.Interval
	ord int
	t   *core.Tuple
}

// IntervalIndex is a static centered interval tree over the lifespan
// intervals of a relation's tuples. It answers "which tuples are alive
// at some time of L" in O(log n + k) against the naive O(n·|intervals|)
// scan. The index is immutable once built; the catalog rebuilds it when
// the relation's version moves.
type IntervalIndex struct {
	root     *inode
	tuples   int // tuples indexed
	entries  int // lifespan intervals indexed
	maxDepth int
}

// inode is one node of the centered tree: entries overlapping center are
// stored here (sorted two ways for one-sided queries), strictly earlier
// entries descend left, strictly later ones right.
type inode struct {
	center      chronon.Time
	left, right *inode
	byLo        []ientry // sorted by iv.Lo ascending
	byHi        []ientry // sorted by iv.Hi descending
}

// NewIntervalIndex builds the index over r's tuples.
func NewIntervalIndex(r *core.Relation) *IntervalIndex {
	ts := r.Tuples()
	var es []ientry
	for ord, t := range ts {
		for _, iv := range t.Lifespan().Intervals() {
			es = append(es, ientry{iv: iv, ord: ord, t: t})
		}
	}
	ix := &IntervalIndex{tuples: len(ts), entries: len(es)}
	ix.root = build(es, 1, &ix.maxDepth)
	return ix
}

// build recursively constructs the centered tree. The center is the
// median interval midpoint, which keeps the tree balanced for the
// clustered lifespans real histories produce.
func build(es []ientry, depth int, maxDepth *int) *inode {
	if len(es) == 0 {
		return nil
	}
	if depth > *maxDepth {
		*maxDepth = depth
	}
	mids := make([]chronon.Time, len(es))
	for i, e := range es {
		mids[i] = e.iv.Lo + (e.iv.Hi-e.iv.Lo)/2
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })
	n := &inode{center: mids[len(mids)/2]}
	var left, right []ientry
	for _, e := range es {
		switch {
		case e.iv.Hi < n.center:
			left = append(left, e)
		case e.iv.Lo > n.center:
			right = append(right, e)
		default:
			n.byLo = append(n.byLo, e)
		}
	}
	n.byHi = append([]ientry(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].iv.Lo < n.byLo[j].iv.Lo })
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].iv.Hi > n.byHi[j].iv.Hi })
	n.left = build(left, depth+1, maxDepth)
	n.right = build(right, depth+1, maxDepth)
	return n
}

// Tuples returns the number of tuples indexed.
func (ix *IntervalIndex) Tuples() int { return ix.tuples }

// Entries returns the number of lifespan intervals indexed.
func (ix *IntervalIndex) Entries() int { return ix.entries }

// visit walks every entry whose interval overlaps [qlo,qhi].
func (n *inode) visit(qlo, qhi chronon.Time, f func(ientry)) {
	if n == nil {
		return
	}
	switch {
	case qhi < n.center:
		// Node entries all reach center > qhi, so they overlap iff they
		// start by qhi.
		for _, e := range n.byLo {
			if e.iv.Lo > qhi {
				break
			}
			f(e)
		}
		n.left.visit(qlo, qhi, f)
	case qlo > n.center:
		// Node entries all start by center < qlo: overlap iff they reach qlo.
		for _, e := range n.byHi {
			if e.iv.Hi < qlo {
				break
			}
			f(e)
		}
		n.right.visit(qlo, qhi, f)
	default:
		// The query straddles the center: every node entry overlaps.
		for _, e := range n.byLo {
			f(e)
		}
		n.left.visit(qlo, qhi, f)
		n.right.visit(qlo, qhi, f)
	}
}

// collect walks the tree once and returns the deduplicated matches:
// the ord→tuple map and the (unsorted) ord list.
func (ix *IntervalIndex) collect(L lifespan.Lifespan) (map[int]*core.Tuple, []int) {
	if L.IsEmpty() || ix.root == nil {
		return nil, nil
	}
	seen := make(map[int]*core.Tuple)
	ords := make([]int, 0, 16)
	for _, qv := range L.Intervals() {
		ix.root.visit(qv.Lo, qv.Hi, func(e ientry) {
			if _, dup := seen[e.ord]; !dup {
				seen[e.ord] = e.t
				ords = append(ords, e.ord)
			}
		})
	}
	return seen, ords
}

// order sorts the collected ords and lays the tuples out in insertion
// order — the deterministic candidate order the plan nodes stream.
func order(seen map[int]*core.Tuple, ords []int) []*core.Tuple {
	if len(ords) == 0 {
		return nil
	}
	sort.Ints(ords)
	out := make([]*core.Tuple, len(ords))
	for i, o := range ords {
		out[i] = seen[o]
	}
	return out
}

// Overlapping returns, in insertion order, the tuples whose lifespan
// shares at least one chronon with L — exactly the candidate set the
// index-aware TIME-SLICE and DURING-pruned SELECT fast paths require.
func (ix *IntervalIndex) Overlapping(L lifespan.Lifespan) []*core.Tuple {
	return order(ix.collect(L))
}

// OverlappingWithin is the planner's pricing-plus-probe entry point:
// one tree traversal that materializes the ordered candidate set only
// when at most max tuples overlap L, and otherwise reports false
// without paying for the sort and slice an abandoned index plan would
// discard.
func (ix *IntervalIndex) OverlappingWithin(L lifespan.Lifespan, max int) ([]*core.Tuple, bool) {
	seen, ords := ix.collect(L)
	if len(ords) > max {
		return nil, false
	}
	return order(seen, ords), true
}

// CountOverlapping returns |Overlapping(L)| without materializing the
// candidate slice.
func (ix *IntervalIndex) CountOverlapping(L lifespan.Lifespan) int {
	_, ords := ix.collect(L)
	return len(ords)
}

// AliveAt returns the tuples alive at the single chronon s.
func (ix *IntervalIndex) AliveAt(s chronon.Time) []*core.Tuple {
	return ix.Overlapping(lifespan.Point(s))
}
