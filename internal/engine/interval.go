package engine

import (
	"sort"
	"sync"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
)

// ientry is one lifespan interval of one tuple. A tuple with a gapped
// lifespan (the paper's "reincarnation") contributes one entry per
// incarnation; ord is the tuple's insertion ordinal, used to de-duplicate
// multi-interval matches and keep candidate order deterministic.
type ientry struct {
	iv  chronon.Interval
	ord int
	t   *core.Tuple
}

// IntervalIndex is a centered interval tree over the lifespan intervals
// of a relation's tuples. It answers "which tuples are alive at some
// time of L" in O(log n + k) against the naive O(n·|intervals|) scan.
// The tree itself is static, but the index as a whole is incrementally
// maintainable: single-tuple inserts and merges land in a small overlay
// (extra entries plus a dead set for merged-away tuples) that queries
// scan linearly alongside the tree; when the overlay grows past a
// threshold it is compacted back into a fresh tree. The catalog feeds
// the overlay from relation change notifications.
type IntervalIndex struct {
	mu       sync.RWMutex
	root     *inode
	tuples   int // tuples indexed (logical, including overlay)
	entries  int // lifespan intervals indexed (logical)
	maxDepth int

	// overlay: entries added since the tree was built, and tree/overlay
	// entries whose tuple a merge replaced.
	extra []ientry
	dead  map[*core.Tuple]bool

	// lifespan geometry for the statistics object. covered is the
	// summed length of all live entries (in chronons, as float64 to
	// absorb the ±2^62 sentinels); lo/hi bound every entry ever added —
	// merges may leave them over-wide, which only softens estimates.
	covered float64
	lo, hi  chronon.Time
}

// NewIntervalIndex builds the index over r's tuples.
func NewIntervalIndex(r *core.Relation) *IntervalIndex {
	//lint:allow pindiscipline index builds read the live relation by design; execution resolves probes back through Snapshot.resolve
	return newIntervalIndexFrom(r.Tuples())
}

// newIntervalIndexFrom builds the index from a stable tuple snapshot.
func newIntervalIndexFrom(ts []*core.Tuple) *IntervalIndex {
	var es []ientry
	for ord, t := range ts {
		for _, iv := range t.Lifespan().Intervals() {
			es = append(es, ientry{iv: iv, ord: ord, t: t})
		}
	}
	ix := &IntervalIndex{tuples: len(ts)}
	ix.resetTreeLocked(es)
	return ix
}

// resetTreeLocked replaces the tree with one built from es and clears
// the overlay. Callers hold ix.mu (or own ix exclusively).
func (ix *IntervalIndex) resetTreeLocked(es []ientry) {
	idxMetrics.intervalBuilds.Inc()
	ix.entries = len(es)
	ix.maxDepth = 0
	ix.extra = nil
	ix.dead = nil
	ix.covered, ix.lo, ix.hi = 0, 0, 0
	for i, e := range es {
		ix.noteEntryLocked(e.iv, i == 0)
	}
	ix.root = build(es, 1, &ix.maxDepth)
}

// noteEntryLocked folds one entry into the geometry statistics.
func (ix *IntervalIndex) noteEntryLocked(iv chronon.Interval, first bool) {
	ix.covered += ivLen(iv)
	if first || iv.Lo < ix.lo {
		ix.lo = iv.Lo
	}
	if first || iv.Hi > ix.hi {
		ix.hi = iv.Hi
	}
}

// ivLen returns the length of a closed interval in chronons as a float
// (the ±2^62 infinity sentinels overflow int64 arithmetic).
func ivLen(iv chronon.Interval) float64 {
	return float64(iv.Hi) - float64(iv.Lo) + 1
}

// Add absorbs a single inserted tuple at position pos.
func (ix *IntervalIndex) Add(t *core.Tuple, pos int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addLocked(t, pos)
	ix.tuples++
	ix.maybeCompactLocked()
}

// AddBatch absorbs a bulk insert of tuples starting at position pos:
// one lock acquisition, one overlay append per entry, and at most one
// compaction at the end — the coalesced form of Add a relation's
// ChangeBatch notification feeds. A batch large relative to the tree
// folds into a single rebuild instead of the cascade of intermediate
// compactions per-tuple absorption would trigger.
func (ix *IntervalIndex) AddBatch(ts []*core.Tuple, pos int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, t := range ts {
		ix.addLocked(t, pos+i)
	}
	ix.tuples += len(ts)
	ix.maybeCompactLocked()
}

// Replace absorbs a merge: the relation replaced old with new at pos.
func (ix *IntervalIndex) Replace(old, new *core.Tuple, pos int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.dead == nil {
		ix.dead = make(map[*core.Tuple]bool)
	}
	ix.dead[old] = true
	ix.entries -= old.Lifespan().NumIntervals()
	for _, iv := range old.Lifespan().Intervals() {
		ix.covered -= ivLen(iv)
	}
	ix.addLocked(new, pos)
	ix.maybeCompactLocked()
}

func (ix *IntervalIndex) addLocked(t *core.Tuple, pos int) {
	for _, iv := range t.Lifespan().Intervals() {
		ix.extra = append(ix.extra, ientry{iv: iv, ord: pos, t: t})
		ix.noteEntryLocked(iv, ix.entries == 0 && len(ix.extra) == 1)
		ix.entries++
	}
}

// maybeCompactLocked folds a grown overlay back into the tree, keeping
// query cost O(log n + k + overlay) with a small bounded overlay.
func (ix *IntervalIndex) maybeCompactLocked() {
	load := len(ix.extra) + len(ix.dead)
	if load <= 64 || load <= ix.entries/8 {
		return
	}
	es := make([]ientry, 0, ix.entries)
	walk(ix.root, func(e ientry) {
		if !ix.dead[e.t] {
			es = append(es, e)
		}
	})
	for _, e := range ix.extra {
		if !ix.dead[e.t] {
			es = append(es, e)
		}
	}
	tuples := ix.tuples
	ix.resetTreeLocked(es)
	ix.tuples = tuples
}

// walk visits every entry stored in the tree.
func walk(n *inode, f func(ientry)) {
	if n == nil {
		return
	}
	for _, e := range n.byLo {
		f(e)
	}
	walk(n.left, f)
	walk(n.right, f)
}

// inode is one node of the centered tree: entries overlapping center are
// stored here (sorted two ways for one-sided queries), strictly earlier
// entries descend left, strictly later ones right.
type inode struct {
	center      chronon.Time
	left, right *inode
	byLo        []ientry // sorted by iv.Lo ascending
	byHi        []ientry // sorted by iv.Hi descending
}

// build recursively constructs the centered tree. The center is the
// median interval midpoint, which keeps the tree balanced for the
// clustered lifespans real histories produce.
func build(es []ientry, depth int, maxDepth *int) *inode {
	if len(es) == 0 {
		return nil
	}
	if depth > *maxDepth {
		*maxDepth = depth
	}
	mids := make([]chronon.Time, len(es))
	for i, e := range es {
		mids[i] = e.iv.Lo + (e.iv.Hi-e.iv.Lo)/2
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })
	n := &inode{center: mids[len(mids)/2]}
	var left, right []ientry
	for _, e := range es {
		switch {
		case e.iv.Hi < n.center:
			left = append(left, e)
		case e.iv.Lo > n.center:
			right = append(right, e)
		default:
			n.byLo = append(n.byLo, e)
		}
	}
	n.byHi = append([]ientry(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return n.byLo[i].iv.Lo < n.byLo[j].iv.Lo })
	sort.Slice(n.byHi, func(i, j int) bool { return n.byHi[i].iv.Hi > n.byHi[j].iv.Hi })
	n.left = build(left, depth+1, maxDepth)
	n.right = build(right, depth+1, maxDepth)
	return n
}

// Tuples returns the number of tuples indexed.
func (ix *IntervalIndex) Tuples() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tuples
}

// Entries returns the number of live lifespan intervals indexed.
func (ix *IntervalIndex) Entries() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.entries
}

// Geometry returns the summed covered chronons of all live entries and
// the bounding interval of everything ever indexed — the raw material
// for the statistics object's lifespan density.
func (ix *IntervalIndex) Geometry() (covered float64, span chronon.Interval) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.covered, chronon.Interval{Lo: ix.lo, Hi: ix.hi}
}

// visit walks every entry whose interval overlaps [qlo,qhi].
func (n *inode) visit(qlo, qhi chronon.Time, f func(ientry)) {
	if n == nil {
		return
	}
	switch {
	case qhi < n.center:
		// Node entries all reach center > qhi, so they overlap iff they
		// start by qhi.
		for _, e := range n.byLo {
			if e.iv.Lo > qhi {
				break
			}
			f(e)
		}
		n.left.visit(qlo, qhi, f)
	case qlo > n.center:
		// Node entries all start by center < qlo: overlap iff they reach qlo.
		for _, e := range n.byHi {
			if e.iv.Hi < qlo {
				break
			}
			f(e)
		}
		n.right.visit(qlo, qhi, f)
	default:
		// The query straddles the center: every node entry overlaps.
		for _, e := range n.byLo {
			f(e)
		}
		n.left.visit(qlo, qhi, f)
		n.right.visit(qlo, qhi, f)
	}
}

// collect walks the tree and overlay once and returns the deduplicated
// matches: the ord→tuple map and the (unsorted) ord list. Entries whose
// tuple a merge replaced are skipped; the merged tuple's overlay entries
// reuse the original ordinal, keeping candidate order deterministic.
func (ix *IntervalIndex) collect(L lifespan.Lifespan) (map[int]*core.Tuple, []int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if L.IsEmpty() || (ix.root == nil && len(ix.extra) == 0) {
		return nil, nil
	}
	seen := make(map[int]*core.Tuple)
	ords := make([]int, 0, 16)
	hit := func(e ientry) {
		if ix.dead[e.t] {
			return
		}
		if _, dup := seen[e.ord]; !dup {
			seen[e.ord] = e.t
			ords = append(ords, e.ord)
		}
	}
	for _, qv := range L.Intervals() {
		ix.root.visit(qv.Lo, qv.Hi, hit)
		for _, e := range ix.extra {
			if e.iv.Lo <= qv.Hi && e.iv.Hi >= qv.Lo {
				hit(e)
			}
		}
	}
	return seen, ords
}

// order sorts the collected ords and lays the tuples out in insertion
// order — the deterministic candidate order the plan nodes stream.
func order(seen map[int]*core.Tuple, ords []int) []*core.Tuple {
	if len(ords) == 0 {
		return nil
	}
	sort.Ints(ords)
	out := make([]*core.Tuple, len(ords))
	for i, o := range ords {
		out[i] = seen[o]
	}
	return out
}

// Overlapping returns, in insertion order, the tuples whose lifespan
// shares at least one chronon with L — exactly the candidate set the
// index-aware TIME-SLICE and DURING-pruned SELECT fast paths require.
func (ix *IntervalIndex) Overlapping(L lifespan.Lifespan) []*core.Tuple {
	return order(ix.collect(L))
}

// OverlappingWithin is the planner's pricing-plus-probe entry point:
// one tree traversal that materializes the ordered candidate set only
// when at most max tuples overlap L, and otherwise reports false
// without paying for the sort and slice an abandoned index plan would
// discard.
func (ix *IntervalIndex) OverlappingWithin(L lifespan.Lifespan, max int) ([]*core.Tuple, bool) {
	seen, ords := ix.collect(L)
	if len(ords) > max {
		return nil, false
	}
	return order(seen, ords), true
}

// CountOverlapping returns |Overlapping(L)| without materializing the
// candidate slice.
func (ix *IntervalIndex) CountOverlapping(L lifespan.Lifespan) int {
	_, ords := ix.collect(L)
	return len(ords)
}

// AliveAt returns the tuples alive at the single chronon s.
func (ix *IntervalIndex) AliveAt(s chronon.Time) []*core.Tuple {
	return ix.Overlapping(lifespan.Point(s))
}
