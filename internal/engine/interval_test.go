package engine

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/workload"
)

// naiveOverlapping is the O(n) reference the index must agree with.
func naiveOverlapping(r *core.Relation, L lifespan.Lifespan) []*core.Tuple {
	var out []*core.Tuple
	for _, t := range r.Tuples() {
		if t.Lifespan().Overlaps(L) {
			out = append(out, t)
		}
	}
	return out
}

func TestIntervalIndexMatchesLinearScan(t *testing.T) {
	r := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 120, HistoryLen: 300, ChangeEvery: 15, ReincarnationProb: 0.5, Seed: 7,
	})
	ix := NewIntervalIndex(r)
	if ix.Tuples() != r.Cardinality() {
		t.Fatalf("indexed %d tuples, want %d", ix.Tuples(), r.Cardinality())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		lo := chronon.Time(rng.Intn(320) - 10)
		hi := lo + chronon.Time(rng.Intn(60))
		L := lifespan.Interval(lo, hi)
		if i%3 == 0 { // gapped query lifespans too
			lo2 := hi + 2 + chronon.Time(rng.Intn(40))
			L = L.Union(lifespan.Interval(lo2, lo2+chronon.Time(rng.Intn(20))))
		}
		want := naiveOverlapping(r, L)
		got := ix.Overlapping(L)
		if len(got) != len(want) {
			t.Fatalf("L=%s: index found %d tuples, scan found %d", L, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("L=%s: candidate %d differs (order or identity)", L, j)
			}
		}
		if c := ix.CountOverlapping(L); c != len(want) {
			t.Fatalf("L=%s: CountOverlapping=%d, want %d", L, c, len(want))
		}
	}
}

func TestIntervalIndexPointAndEmpty(t *testing.T) {
	r := workload.Personnel(workload.DefaultPersonnel())
	ix := NewIntervalIndex(r)
	if got := ix.Overlapping(lifespan.Empty()); got != nil {
		t.Fatalf("empty lifespan should match nothing, got %d", len(got))
	}
	for _, s := range []chronon.Time{0, 50, 199, 500, -3} {
		want := naiveOverlapping(r, lifespan.Point(s))
		got := ix.AliveAt(s)
		if len(got) != len(want) {
			t.Fatalf("AliveAt(%d)=%d tuples, want %d", s, len(got), len(want))
		}
	}
}

func TestIntervalIndexEmptyRelation(t *testing.T) {
	r := core.NewRelation(workload.PersonnelScheme(10))
	ix := NewIntervalIndex(r)
	if got := ix.Overlapping(lifespan.All()); got != nil {
		t.Fatalf("empty relation should match nothing, got %d", len(got))
	}
}
