package engine

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Engine-side metric handles, resolved once against the process-wide
// registry. Everything the per-query hot path touches is an atomic
// counter or histogram; the budget is a handful of clock reads and
// atomic adds per query (see BenchmarkRunCachedKeyEq, which locks the
// cached-plan path the instrumentation must not tax).
var (
	mQueries       = obs.Default.Counter("engine.queries")
	mQueryErrors   = obs.Default.Counter("engine.query_errors")
	mNaiveFallback = obs.Default.Counter("engine.naive_fallbacks")
	mPinRetries    = obs.Default.Counter("engine.pin_retries")
	mPinExclusive  = obs.Default.Counter("engine.pin_exclusive")
	mSlowRecorded  = obs.Default.Counter("engine.slowlog.recorded")
	mQueryTotal    = obs.Default.Histogram("engine.query_total_ns")
	mEpochAge      = obs.Default.Histogram("engine.snapshot.epoch_age")
	slowLog        = obs.Default.SlowLog()
)

// stageHist holds one histogram per lifecycle stage, indexed by the
// obs.Stage constants. The names are spelled out (rather than derived
// from obs.StageName at init) so the full metric catalog is greppable
// and auditable against docs/OBSERVABILITY.md — the metricname analyzer
// enforces exactly this.
var stageHist = [obs.NumStages]*obs.Histogram{
	obs.StageParse:       obs.Default.Histogram("engine.stage.parse_ns"),
	obs.StagePlan:        obs.Default.Histogram("engine.stage.plan_ns"),
	obs.StagePin:         obs.Default.Histogram("engine.stage.pin_ns"),
	obs.StageExecute:     obs.Default.Histogram("engine.stage.execute_ns"),
	obs.StageMaterialize: obs.Default.Histogram("engine.stage.materialize_ns"),
}

// stageHistFloor gates per-stage histogram observation: queries
// cheaper than this contribute to engine.query_total_ns only. Below a
// few tens of microseconds the stage split is clock-read noise, and
// skipping the five observations keeps the cached-plan hot path inside
// its overhead budget; slow queries — the ones whose stage split
// matters — always record.
const stageHistFloor = 50 * time.Microsecond

// finishQuery closes a query's span into the registry: the total and
// (for non-trivial queries) per-stage histograms, the error and
// epoch-age accounting, and — past the slow-log threshold — a full
// slow-query record with normalized text, plan fingerprint, snapshot
// epoch and stage breakdown. text is used only when p is nil (parse
// errors, naive fallback); planned queries record the plan's canonical
// text. A "src:"/"ast:" cache-key prefix on text is stripped lazily,
// so hot callers can pass the key they already computed.
func finishQuery(sp *obs.Span, text string, p *Plan, snap *Snapshot, err error) {
	total := sp.Total()
	mQueries.Inc()
	if err != nil {
		mQueryErrors.Inc()
	}
	mQueryTotal.Observe(int64(total))
	if total >= stageHistFloor {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if d := sp.StageDur(st); d > 0 {
				stageHist[st].Observe(int64(d))
			}
		}
	}
	var epoch uint64
	if snap != nil {
		epoch = snap.Epoch
		if age := core.Epoch() - epoch; age > 0 {
			mEpochAge.Observe(int64(age))
		}
	}
	if slowLog.Qualifies(total) {
		fp := ""
		if p != nil {
			text = p.text
			fp = planFingerprint(p.text, p.deps)
		} else {
			text = strings.TrimPrefix(strings.TrimPrefix(text, "src:"), "ast:")
		}
		slowLog.Record(obs.SlowQuery{
			Query: text, Fingerprint: fp, Epoch: epoch,
			TotalNs: int64(total), Stages: sp.Stages(),
		})
		mSlowRecorded.Inc()
	}
}
