package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// TestObsCountersUnderRace hammers the metrics layer from the paths
// that feed it concurrently — queries through engine.Run (cached and
// cold), writers publishing inserts, EXPLAIN ANALYZE runs — and then
// checks the registry's books balance: every query is counted exactly
// once in both engine.queries and the engine.query_total_ns histogram,
// and the plan cache's hits and misses sum to at most the counted
// lookups. Run under -race: the assertions catch lost updates, the
// race detector catches unsynchronized ones.
func TestObsCountersUnderRace(t *testing.T) {
	s := raceScheme("OBSREL")
	r := core.NewRelation(s)
	st := storage.NewStore()
	st.Put(r)
	BuildIndexes(r)
	for i := 0; i < 16; i++ {
		if err := r.Insert(raceTuple(s, fmt.Sprintf("seed%02d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	before := obs.Default.Snapshot()

	const workers, perWorker, analyzeEvery = 6, 150, 25
	var wg sync.WaitGroup
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < 300; i++ {
			if err := r.Insert(raceTuple(s, fmt.Sprintf("w%05d", i), int64(i))); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()
	queries := []string{
		`SELECT WHEN K = 'seed03' FROM OBSREL`,
		`TIMESLICE OBSREL AT {[0,5]}`,
		`SELECT IF V > 4 FROM OBSREL`,
	}
	var analyzed int64
	var analyzedMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if i%analyzeEvery == 0 {
					if _, err := ExplainAnalyze(q, st, false); err != nil {
						t.Errorf("analyze %s: %v", q, err)
						return
					}
					analyzedMu.Lock()
					analyzed++
					analyzedMu.Unlock()
					continue
				}
				if _, err := Run(q, st); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	after := obs.Default.Snapshot()
	delta := after.CounterDelta(before)
	wantQueries := uint64(workers * perWorker) // Run and ExplainAnalyze both land in finishQuery
	if got := delta["engine.queries"]; got != wantQueries {
		t.Fatalf("engine.queries delta = %d, want %d", got, wantQueries)
	}
	histDelta := after.Histograms["engine.query_total_ns"].Count - before.Histograms["engine.query_total_ns"].Count
	if histDelta != wantQueries {
		t.Fatalf("query_total_ns observations = %d, want %d", histDelta, wantQueries)
	}
	if got := delta["engine.query_errors"]; got != 0 {
		t.Fatalf("unexpected query errors: %d", got)
	}
	// Cached Run calls count one lookup each; cold paths may add an AST
	// lookup after the raw-source miss, and ANALYZE never touches the
	// cache — so hits+misses is bounded by, not equal to, the query
	// count. Both counters must still have moved coherently.
	runs := wantQueries - uint64(analyzed)
	hitsMisses := delta["engine.plancache.hits"] + delta["engine.plancache.misses"]
	if hitsMisses < runs || hitsMisses > 2*runs {
		t.Fatalf("plan-cache hits+misses = %d, outside [%d, %d]", hitsMisses, runs, 2*runs)
	}
	// The writer published 300 inserts; the epoch gauge and write-group
	// counters live in the same registry and must be visible in the
	// snapshot (epoch is a gauge func, so it reflects the live value).
	if after.Gauges["core.epoch"] < before.Gauges["core.epoch"]+300 {
		t.Fatalf("core.epoch gauge did not advance: %d -> %d",
			before.Gauges["core.epoch"], after.Gauges["core.epoch"])
	}
}
