package engine

import "testing"

// BenchmarkRunCachedKeyEq times the cached-plan Run path end to end —
// the hot path the observability layer must not tax by more than ~3%.
func BenchmarkRunCachedKeyEq(b *testing.B) {
	st := goldenStore(b)
	q := `SELECT WHEN NAME = 'aaemp' FROM EMP`
	ResetPlanCache()
	if _, err := Run(q, st); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(q, st); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ResetPlanCache()
}
