package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hrdmerr"
	"repro/internal/lifespan"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/value"
)

// Partitioned parallel execution. A parallelNode wraps one leaf-shaped
// operator — index select, index time-slice, a time-slice or filter
// over a base scan, or an index lookup join streaming a base scan —
// and evaluates it by splitting the operator's input snapshot into
// contiguous range partitions (core.PartitionSlice), running the
// operator's per-tuple kernel over the partitions on a bounded worker
// pool, and concatenating the per-partition result slices in partition
// order. Because partitions are contiguous chunks of the input in
// input order and every kernel is order-preserving within its chunk,
// the concatenation reproduces the sequential operator's output order
// exactly, at any degree of parallelism — the ordered-merge
// determinism the differential harness locks byte-for-byte.
//
// Pin discipline: workers receive only the query's *Snapshot and the
// plan-time candidate slices. Every tuple a worker touches comes from
// a pinned slice (Snapshot.tuplesOf) or a plan-time candidate set
// fenced by the plan's (relation, version) deps, and join probes go
// through the snapshot-bounded accessors (lookupKey, resolve) — so a
// worker can never observe a torn write group, exactly as the
// sequential operators cannot. The pindiscipline analyzer extends into
// worker closures to keep it that way.

// Worker-pool and partition metrics. tasks counts helper executions
// dispatched to the pool; inline counts parallel operator runs that
// executed entirely on the query goroutine (single partition, degree
// clamped to one, or pool saturated); busy_workers is the number of
// goroutines currently running partition work (helpers plus query
// goroutines); partition_rows accumulates rows produced by partition
// kernels; partitions_scanned / partitions_pruned count chunks
// evaluated versus skipped by the lifespan-range prune.
var parMetrics = struct {
	tasks   *obs.Counter
	inline  *obs.Counter
	scanned *obs.Counter
	pruned  *obs.Counter
	rows    *obs.Counter
	busy    *obs.Gauge
}{
	tasks:   obs.Default.Counter("engine.parallel.tasks"),
	inline:  obs.Default.Counter("engine.parallel.inline"),
	scanned: obs.Default.Counter("engine.parallel.partitions_scanned"),
	pruned:  obs.Default.Counter("engine.parallel.partitions_pruned"),
	rows:    obs.Default.Counter("engine.parallel.partition_rows"),
	busy:    obs.Default.Gauge("engine.parallel.busy_workers"),
}

// ---------------------------------------------------------------------
// degree-of-parallelism plumbing

// defaultWorkers is the process-wide degree of parallelism queries use
// when their context does not carry an explicit setting. It starts at
// GOMAXPROCS; `-workers` flags (CLI, server, bench) override it.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetDefaultWorkers sets the process-wide default degree of
// parallelism (clamped to ≥ 1) and returns the previous value.
// Workers=1 disables parallel execution: plans keep their parallel
// operators, which then run their partitions sequentially inline.
func SetDefaultWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(defaultWorkers.Swap(int32(n)))
}

// DefaultWorkers reports the process-wide default degree.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// workersCtxKey carries a per-query degree override in a context.
type workersCtxKey struct{}

// WithWorkers returns a context whose queries execute parallel
// operators with degree n (n < 1 means the package default). The
// degree is an execution-time property of the snapshot, never part of
// the plan, so sessions with different settings share cached plans.
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, workersCtxKey{}, n)
}

// workersFrom resolves the degree a query pinned under ctx should use.
func workersFrom(ctx context.Context) int {
	if ctx != nil {
		if n, ok := ctx.Value(workersCtxKey{}).(int); ok && n >= 1 {
			return n
		}
	}
	return DefaultWorkers()
}

// parallelMinInput gates planning a parallel operator: inputs below it
// (tuples or candidates at plan time) keep the plain sequential node,
// so small stores — unit-test fixtures, golden files, the CI bench
// smoke — plan exactly as before. Variable for tests and tuning via
// SetParallelThreshold.
var parallelMinInput atomic.Int64

const defaultParallelThreshold = 4096

func init() { parallelMinInput.Store(defaultParallelThreshold) }

// SetParallelThreshold sets the minimum input size (tuples or plan-time
// candidates) at which the planner wraps an eligible operator in a
// parallel node, returning the previous threshold. Cached plans keep
// the shape they were compiled with; callers changing the threshold
// mid-process (tests) should ResetPlanCache.
func SetParallelThreshold(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelMinInput.Swap(int64(n)))
}

// parallelChunkSize is the partition granularity: half the engage
// threshold, so any input big enough to plan parallel splits into at
// least two chunks. Chunk boundaries depend only on the input length —
// never on the degree — which keeps partition layout (and therefore
// pruning counts and merged output) identical across worker counts.
func parallelChunkSize() int {
	c := int(parallelMinInput.Load()) / 2
	if c < 1 {
		c = 1
	}
	return c
}

// ---------------------------------------------------------------------
// bounded worker pool

// workerPool is the process-wide bounded pool parallel operators draw
// helpers from: GOMAXPROCS goroutines consuming a buffered task
// channel, started lazily on first use. Submission never blocks — a
// full queue falls back to the submitting query goroutine running the
// work itself — so a saturated pool degrades to inline execution
// instead of queueing unboundedly or deadlocking. Helper tasks hold no
// locks and always terminate (a query's partitions are finite), so
// every queued task eventually runs and every wg.Wait returns.
var workerPool struct {
	once  sync.Once
	tasks chan func()
}

func poolStart() {
	size := runtime.GOMAXPROCS(0)
	if size < 1 {
		size = 1
	}
	workerPool.tasks = make(chan func(), size)
	for i := 0; i < size; i++ {
		go func() {
			for f := range workerPool.tasks {
				f()
			}
		}()
	}
}

// poolSubmit enqueues f on the pool, reporting false when the queue is
// full (the caller then runs the work inline).
func poolSubmit(f func()) bool {
	workerPool.once.Do(poolStart)
	select {
	case workerPool.tasks <- f:
		return true
	default:
		return false
	}
}

// ---------------------------------------------------------------------
// cancellation for workers

// workerCancel is a per-worker cancellation checker. Each worker owns
// one — the shared Snapshot.pulls counter is single-goroutine state the
// parallel path must not touch — and checks the query context every
// cancelBatch tuples, matching the sequential iterators' granularity.
type workerCancel struct {
	ctx context.Context
	n   int
}

func (c *workerCancel) check() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n%cancelBatch == 0 {
		if err := c.ctx.Err(); err != nil {
			return hrdmerr.FromContext(err)
		}
	}
	return nil
}

func (s *Snapshot) newWorkerCancel() *workerCancel {
	if s == nil || s.ctx == nil {
		return nil
	}
	return &workerCancel{ctx: s.ctx}
}

// ---------------------------------------------------------------------
// the parallel operator

// tupleKernel is one operator's per-tuple work: it appends t's results
// (zero, one or several tuples) to out and returns the extended slice.
// Kernels must be order-preserving and per-tuple independent.
type tupleKernel func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error)

// parallelNode evaluates child's semantics by partitioned parallel
// execution. child itself never executes — it is kept for the plan
// tree (EXPLAIN, baseRel walks, estimate) — and src/mk re-express its
// work as an input slice plus a per-tuple kernel. window, when armed,
// prunes partitions whose lifespan bounds miss it entirely.
type parallelNode struct {
	child node
	rs    *schema.Scheme
	// src resolves the operator's input: a plan-time candidate slice or
	// the pinned tuples of a base relation.
	src func(s *Snapshot) []*core.Tuple
	// mk builds a fresh kernel per worker, so kernels may carry
	// per-worker state (the join's memoized candidate resolver).
	mk func(s *Snapshot) tupleKernel
	// window/windowed arm the lifespan-range partition prune; pruneSel
	// is the estimated fraction of partitions surviving it (from the
	// relation's lifespan-density statistics; 1 when unarmed).
	window   lifespan.Lifespan
	windowed bool
	pruneSel float64
}

func (n *parallelNode) scheme() *schema.Scheme { return n.rs }
func (n *parallelNode) children() []node       { return []node{n.child} }

func (n *parallelNode) estimate() cost {
	c := n.child.estimate()
	if n.windowed {
		// Density statistics bound how much of the scan the
		// lifespan-range prune can skip: partitions whose bounds miss
		// the window cost nothing.
		c.work *= n.pruneSel
	}
	return c
}

func (n *parallelNode) describe() string {
	d := fmt.Sprintf("parallel (chunk=%d", parallelChunkSize())
	if n.windowed {
		d += fmt.Sprintf(", prune-window %s", n.window)
	}
	return d + ")"
}

func (n *parallelNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		ts, err := n.runPartitions(s)
		if err != nil {
			return nil, err
		}
		return core.NewRelationFromTuples(n.rs, ts)
	})
}

func (n *parallelNode) open(s *Snapshot) (iterator, error) {
	// The partition run happens eagerly at open; under profiling its
	// cost is credited to this node up front so a streaming parent's
	// self time stays meaningful.
	t0 := time.Now()
	ts, err := n.runPartitions(s)
	if err != nil {
		return nil, err
	}
	if s != nil && s.prof != nil {
		s.prof.stats(n).wall += time.Since(t0)
	}
	return s.profIter(n, sliceIter(ts)), nil
}

// runPartitions is the parallel executor: partition the input, prune
// by lifespan bounds, fan the surviving chunks out over up to
// Snapshot.workers goroutines (the query goroutine always works;
// helpers come from the bounded pool), and concatenate the per-chunk
// results in chunk order.
func (n *parallelNode) runPartitions(s *Snapshot) ([]*core.Tuple, error) {
	if err := s.checkCancel(); err != nil {
		return nil, err
	}
	if s != nil && s.prof != nil {
		// Pre-create the stats entries workers may touch (profLookup on
		// the wrapped join): all map writes happen here, before the
		// fan-out, so workers only ever read the map.
		s.prof.stats(n)
		s.prof.stats(n.child)
	}
	parts := core.PartitionSlice(n.src(s), parallelChunkSize())
	degree := 1
	if s != nil && s.workers > degree {
		degree = s.workers
	}
	if degree > len(parts) {
		degree = len(parts)
	}

	results := make([][]*core.Tuple, len(parts))
	var next atomic.Int32
	var stop atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	var scanned, pruned, rows atomic.Int64

	workerBody := func() {
		parMetrics.busy.Add(1)
		defer parMetrics.busy.Add(-1)
		kern := n.mk(s)
		cancel := s.newWorkerCancel()
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= len(parts) {
				return
			}
			p := parts[i]
			if n.windowed && !p.Overlaps(n.window) {
				pruned.Add(1)
				continue
			}
			scanned.Add(1)
			var out []*core.Tuple
			var err error
			for _, t := range p.Tuples {
				if err = cancel.check(); err != nil {
					break
				}
				if out, err = kern(t, out); err != nil {
					break
				}
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				stop.Store(true)
				return
			}
			rows.Add(int64(len(out)))
			results[i] = out
		}
	}

	helpers := 0
	var wg sync.WaitGroup
	for w := 1; w < degree; w++ {
		wg.Add(1)
		submitted := poolSubmit(func() {
			defer wg.Done()
			workerBody()
		})
		if submitted {
			helpers++
			parMetrics.tasks.Inc()
		} else {
			wg.Done()
		}
	}
	if helpers == 0 {
		parMetrics.inline.Inc()
	}
	workerBody()
	wg.Wait()

	parMetrics.scanned.Add(uint64(scanned.Load()))
	parMetrics.pruned.Add(uint64(pruned.Load()))
	parMetrics.rows.Add(uint64(rows.Load()))
	if s != nil && s.prof != nil {
		s.prof.stats(n).par = &parStats{
			degree:  helpers + 1,
			parts:   len(parts),
			scanned: int(scanned.Load()),
			pruned:  int(pruned.Load()),
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	merged := make([]*core.Tuple, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	return merged, nil
}

// ---------------------------------------------------------------------
// planner wrappers

// maybeParallel wraps n in a parallel node when it has an eligible
// shape — a per-tuple kernel over a partitionable input — and its
// input is large enough to amortize the fan-out. Called after costing
// picked n, so parallelism never changes which logical strategy wins.
func maybeParallel(n node, lc *lowerCtx) node {
	th := int(parallelMinInput.Load())
	switch x := n.(type) {
	case *indexSelectNode:
		if len(x.cand) >= th {
			return parallelOverCandidates(x, x.cand, func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error) {
				nt, err := filterTuple(t, x.cond, x.when, false, x.L)
				if err != nil {
					return out, err
				}
				if nt != nil {
					out = append(out, nt)
				}
				return out, nil
			})
		}
	case *indexTimeSliceNode:
		if len(x.cand) >= th {
			return parallelOverCandidates(x, x.cand, func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error) {
				if nt := t.Restrict(x.L); nt != nil {
					out = append(out, nt)
				}
				return out, nil
			})
		}
	case *timeSliceNode:
		if sc, ok := x.child.(*scanNode); ok && sc.rel.Cardinality() >= th {
			p := parallelOverScan(x, sc, func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error) {
				if nt := t.Restrict(x.L); nt != nil {
					out = append(out, nt)
				}
				return out, nil
			})
			p.armWindow(x.L, timesliceSelectivity(lc.relStats(sc.name, sc.rel), x.L))
			return p
		}
	case *filterNode:
		if sc, ok := x.child.(*scanNode); ok && sc.rel.Cardinality() >= th {
			p := parallelOverScan(x, sc, func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error) {
				nt, err := filterTuple(t, x.cond, x.when, x.forAll, x.L)
				if err != nil {
					return out, err
				}
				if nt != nil {
					out = append(out, nt)
				}
				return out, nil
			})
			if !x.forAll {
				// ∀ keeps tuples with empty scope (vacuous truth), so
				// only the existential and WHEN forms may skip
				// partitions that miss the DURING window.
				p.armWindow(x.L, timesliceSelectivity(lc.relStats(sc.name, sc.rel), x.L))
			}
			return p
		}
	case *indexJoinNode:
		if sc, ok := x.stream.(*scanNode); ok && sc.rel.Cardinality() >= th {
			return parallelJoin(x, sc)
		}
	}
	return n
}

// parallelOverCandidates wraps a candidate-set operator: the input is
// the plan-time candidate slice, fenced like every other plan-time
// constant by the plan's (relation, version) deps.
func parallelOverCandidates(child node, cand []*core.Tuple, kern tupleKernel) *parallelNode {
	return &parallelNode{
		child:    child,
		rs:       child.scheme(),
		src:      func(*Snapshot) []*core.Tuple { return cand },
		mk:       func(*Snapshot) tupleKernel { return kern },
		pruneSel: 1,
	}
}

// parallelOverScan wraps a streaming operator over a base scan: the
// input is the scan's pinned tuple slice, resolved per execution.
func parallelOverScan(child node, sc *scanNode, kern tupleKernel) *parallelNode {
	return &parallelNode{
		child:    child,
		rs:       child.scheme(),
		src:      func(s *Snapshot) []*core.Tuple { return s.tuplesOf(sc.rel) },
		mk:       func(*Snapshot) tupleKernel { return kern },
		pruneSel: 1,
	}
}

// armWindow enables the lifespan-range partition prune for window L,
// with sel the density-statistics estimate of the surviving fraction.
func (n *parallelNode) armWindow(L lifespan.Lifespan, sel float64) {
	if L.Equal(lifespan.All()) {
		return
	}
	n.window = L
	n.windowed = true
	n.pruneSel = clamp01(sel)
	if n.pruneSel <= 0 {
		n.pruneSel = 1.0 / 256
	}
}

// parallelJoin wraps an index lookup join whose streamed side is a
// base scan: partitions of the pinned stream probe the indexed side
// concurrently. Each worker gets its own candidate resolver — the
// resolver memoizes the varying-overflow resolution, which is
// per-goroutine state — and probes run through the snapshot-bounded
// accessors exactly as the sequential join's do.
func parallelJoin(x *indexJoinNode, sc *scanNode) *parallelNode {
	return &parallelNode{
		child: x,
		rs:    x.rs,
		src:   func(s *Snapshot) []*core.Tuple { return s.tuplesOf(sc.rel) },
		mk: func(s *Snapshot) tupleKernel {
			candidates := x.candidateFn(s)
			return func(t *core.Tuple, out []*core.Tuple) ([]*core.Tuple, error) {
				for _, o := range candidates(t) {
					t1, t2 := t, o
					a, b := x.streamAttr, x.indexedAttr
					if !x.leftIsStream {
						t1, t2 = o, t
						a, b = x.indexedAttr, x.streamAttr
					}
					nt, err := core.JoinPair(x.rs, t1, t2, a, value.EQ, b)
					if err != nil {
						return out, err
					}
					if nt != nil {
						out = append(out, nt)
					}
				}
				return out, nil
			}
		},
		pruneSel: 1,
	}
}
