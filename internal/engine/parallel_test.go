package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// lowerParallelThreshold drops the parallel planning gate so the small
// test fixtures plan parallel operators, restoring the previous
// threshold (and flushing plans compiled at either setting) on cleanup.
func lowerParallelThreshold(t testing.TB, th int) {
	t.Helper()
	prev := SetParallelThreshold(th)
	ResetPlanCache()
	t.Cleanup(func() {
		SetParallelThreshold(prev)
		ResetPlanCache()
	})
}

// marchStore builds a store whose MARCH relation has n tuples with
// lifespans marching forward in insertion order — all but the last
// four live inside [0,60], the last four late in [95,99] — so
// contiguous partitions get narrow lifespan bounds, the final chunk
// lives entirely outside a [0,90] window, and that window overlaps so
// much of the relation that the interval index declines and the
// planner takes the scan path where the partition prune arms.
func marchStore(t testing.TB, n int) *storage.Store {
	t.Helper()
	full := lifespan.Interval(0, 99)
	s := schema.MustNew("MARCH", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	r := core.NewRelation(s)
	for i := 0; i < n; i++ {
		lo := chronon.Time(i % 56)
		if i >= n-4 {
			lo = 95
		}
		r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(lo, lo+4)).
			Key("ID", value.String_(fmt.Sprintf("m%04d", i))).
			Set("SAL", lo, lo+4, value.Int(int64(i))).
			MustBuild())
	}
	st := storage.NewStore()
	st.Put(r)
	return st
}

// parallelBattery is the set of queries whose plans take a parallel
// operator once the threshold admits the fixture: candidate-set
// selects, index and scan time-slices, windowed and ∀ filters, and the
// index lookup join streaming a base scan.
var parallelBattery = []string{
	`SELECT WHEN DEPT = 'Toys' FROM EMP`,
	`SELECT WHEN SAL > 30000 AND DEPT = 'Books' FROM EMP`,
	`SELECT WHEN SAL > 28000 DURING {[100,110]} FROM EMP`,
	`SELECT IF DEPT = 'Toys' FORALL DURING {[20,40]} FROM EMP`,
	`TIMESLICE EMP AT {[50,60],[150,160]}`,
	`EMP JOIN REF ON NAME = RNAME`,
	`REF JOIN EMP ON RNAME = NAME`,
	`EMP JOIN REF ON DEPT = GRP`,
}

// TestParallelPlanShape pins the planning gate: below the threshold
// plans stay sequential, above it the eligible shapes take a parallel
// operator.
func TestParallelPlanShape(t *testing.T) {
	st := testStore(t, 3)
	// Default threshold: the small fixture must plan exactly as before.
	out, err := Explain(`SELECT WHEN DEPT = 'Toys' FROM EMP`, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "parallel") {
		t.Fatalf("sub-threshold input planned parallel:\n%s", out)
	}

	lowerParallelThreshold(t, 8)
	for _, q := range parallelBattery {
		out, err := Explain(q, st, false)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !strings.Contains(out, "parallel (chunk=") {
			t.Errorf("%s: no parallel operator in plan:\n%s", q, out)
		}
	}
}

// TestParallelEquivalenceAcrossDegrees is the heart of the correctness
// story: every battery query, evaluated naively and by the engine at
// degrees 1, 2, 4 and 8, must produce Equal relations AND identical
// canonical renderings — the ordered merge reproduces the sequential
// output byte-for-byte at every degree.
func TestParallelEquivalenceAcrossDegrees(t *testing.T) {
	lowerParallelThreshold(t, 8)
	st := testStore(t, 5)
	for _, q := range parallelBattery {
		e, err := hql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		nRes, nErr := hql.EvalNaive(e, st)
		if nErr != nil {
			t.Fatalf("%q: naive: %v", q, nErr)
		}
		var first string
		for _, w := range []int{1, 2, 4, 8} {
			gRes, gErr := EvalContext(WithWorkers(context.Background(), w), e, st)
			if gErr != nil {
				t.Fatalf("%q workers=%d: %v", q, w, gErr)
			}
			if !nRes.Relation.Equal(gRes.Relation) {
				t.Fatalf("%q workers=%d: differs from naive\nnaive:\n%s\nengine:\n%s",
					q, w, nRes.Relation, gRes.Relation)
			}
			render := gRes.Relation.String()
			if w == 1 {
				first = render
			} else if render != first {
				t.Fatalf("%q: rendering at workers=%d differs from workers=1\nw=1:\n%s\nw=%d:\n%s",
					q, w, first, w, render)
			}
		}
	}
}

// TestParallelPartitionPruning checks the lifespan-range prune end to
// end. The [0,90] window overlaps 60 of 64 tuples, so the interval
// index declines (its budget is n − log n − 1) and TIMESLICE takes the
// scan path with the partition prune armed; the final chunk lives
// entirely in [95,99] and must be skipped, while the surviving
// partitions still produce exactly the sequential result.
func TestParallelPartitionPruning(t *testing.T) {
	lowerParallelThreshold(t, 8) // chunk = 4 → 16 partitions of 64 tuples
	st := marchStore(t, 64)
	q := `TIMESLICE MARCH AT {[0,90]}`

	out, err := Explain(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prune-window") {
		t.Fatalf("wide time-slice over the scan did not arm the prune:\n%s", out)
	}

	e, err := hql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	nRes, err := hql.EvalNaive(e, st)
	if err != nil {
		t.Fatal(err)
	}
	p0 := parMetrics.pruned.Load()
	s0 := parMetrics.scanned.Load()
	gRes, err := EvalContext(WithWorkers(context.Background(), 4), e, st)
	if err != nil {
		t.Fatal(err)
	}
	if !nRes.Relation.Equal(gRes.Relation) || nRes.Relation.String() != gRes.Relation.String() {
		t.Fatalf("pruned execution differs from naive\nnaive:\n%s\nengine:\n%s", nRes.Relation, gRes.Relation)
	}
	pruned, scanned := parMetrics.pruned.Load()-p0, parMetrics.scanned.Load()-s0
	if pruned == 0 {
		t.Fatal("the dead [95,99] chunk was not pruned")
	}
	if scanned+pruned != 16 {
		t.Fatalf("scanned %d + pruned %d != 16 partitions", scanned, pruned)
	}
}

// TestParallelForAllNoPrune pins the soundness carve-out: ∀-quantified
// selection keeps tuples whose scope misses the window entirely
// (vacuous truth), so its parallel form must never arm the partition
// prune — and must agree with the naive evaluator on a fixture where
// pruning would drop vacuous survivors.
func TestParallelForAllNoPrune(t *testing.T) {
	lowerParallelThreshold(t, 8)
	st := marchStore(t, 64)
	q := `SELECT IF SAL >= 0 FORALL DURING {[0,5]} FROM MARCH`
	out, err := Explain(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parallel") {
		t.Fatalf("forAll filter over a big scan should still parallelize:\n%s", out)
	}
	if strings.Contains(out, "prune-window") {
		t.Fatalf("forAll filter must not arm the partition prune:\n%s", out)
	}
	e, _ := hql.Parse(q)
	nRes, err := hql.EvalNaive(e, st)
	if err != nil {
		t.Fatal(err)
	}
	gRes, err := EvalContext(WithWorkers(context.Background(), 4), e, st)
	if err != nil {
		t.Fatal(err)
	}
	if !nRes.Relation.Equal(gRes.Relation) {
		t.Fatalf("forAll differs from naive\nnaive:\n%s\nengine:\n%s", nRes.Relation, gRes.Relation)
	}
}

// TestParallelWorkerMetrics checks the worker-pool observability: a
// multi-partition run at degree > 1 moves the task (or inline) and
// partition-row counters, and the busy gauge returns to zero.
func TestParallelWorkerMetrics(t *testing.T) {
	lowerParallelThreshold(t, 8)
	st := marchStore(t, 64)
	t0 := parMetrics.tasks.Load()
	i0 := parMetrics.inline.Load()
	r0 := parMetrics.rows.Load()
	if _, err := RunContext(WithWorkers(context.Background(), 4), `SELECT WHEN SAL >= 0 FROM MARCH`, st); err != nil {
		t.Fatal(err)
	}
	if parMetrics.tasks.Load() == t0 && parMetrics.inline.Load() == i0 {
		t.Fatal("neither pool tasks nor inline runs counted")
	}
	if parMetrics.rows.Load()-r0 != 64 {
		t.Fatalf("partition_rows moved by %d, want 64", parMetrics.rows.Load()-r0)
	}
	if got := parMetrics.busy.Load(); got != 0 {
		t.Fatalf("busy_workers=%d after the query drained, want 0", got)
	}
}

// TestParallelCancellation verifies workers honor the query context: an
// already-canceled context fails the parallel execution with the
// engine's canceled classification, not a partial result.
func TestParallelCancellation(t *testing.T) {
	lowerParallelThreshold(t, 8)
	st := marchStore(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(WithWorkers(ctx, 4), `SELECT WHEN SAL >= 0 FROM MARCH`, st); err == nil {
		t.Fatal("canceled context produced a result")
	}
}

// TestAnalyzeAccountingParallel extends the Σself ≈ root-wall identity
// to parallel plans: the parallel operator absorbs its partition work
// into its own wall, its wrapped child renders as not executed (so no
// self-time is double counted for concurrently-executing partition
// workers), and the partition accounting (degree, scanned, pruned) is
// rendered.
func TestAnalyzeAccountingParallel(t *testing.T) {
	lowerParallelThreshold(t, 8)
	st := marchStore(t, 64)
	for _, q := range []string{
		`SELECT WHEN SAL >= 0 FROM MARCH`,
		`TIMESLICE MARCH AT {[0,90]}`,
	} {
		a, err := analyzeQuery(WithWorkers(context.Background(), 4), q, st, false)
		if err != nil {
			t.Fatal(err)
		}
		root := a.rootStats()
		if root == nil || root.par == nil {
			t.Fatalf("%s: root is not a profiled parallel operator", q)
		}
		if root.par.degree < 1 || root.par.degree > 4 {
			t.Fatalf("%s: degree=%d outside [1,4]", q, root.par.degree)
		}
		if root.par.scanned+root.par.pruned != root.par.parts {
			t.Fatalf("%s: scanned %d + pruned %d != partitions %d",
				q, root.par.scanned, root.par.pruned, root.par.parts)
		}
		if a.res.Relation == nil || int64(a.res.Relation.Cardinality()) != root.rows {
			t.Fatalf("%s: root rows=%d vs result %v", q, root.rows, a.res.Relation)
		}
		// Σ self over the tree still partitions the root's wall: the
		// wrapped child never executes, so concurrent partition work is
		// counted once, in the parallel operator's own self time.
		var selfSum time.Duration
		var walk func(n node)
		walk = func(n node) {
			selfSum += a.selfTime(n)
			for _, k := range n.children() {
				walk(k)
			}
		}
		walk(a.plan.root)
		if selfSum < root.wall || selfSum > root.wall+root.wall/10+time.Millisecond {
			t.Fatalf("%s: Σ self=%v vs root wall=%v", q, selfSum, root.wall)
		}
		exec := a.sp.StageDur(obs.StageExecute)
		if root.wall > exec {
			t.Fatalf("%s: root wall %v exceeds execute stage %v", q, root.wall, exec)
		}
		out := a.render()
		if !strings.Contains(out, "degree=") || !strings.Contains(out, "partitions=") {
			t.Fatalf("%s: partition accounting missing from rendering:\n%s", q, out)
		}
		if !strings.Contains(out, "(actual: not executed)") {
			t.Fatalf("%s: wrapped sequential child should render as not executed:\n%s", q, out)
		}
	}
}

// TestParallelThresholdRestoredDefault guards against a test leaking a
// lowered threshold into the rest of the suite (the golden files and
// bench smoke depend on small stores planning sequentially).
func TestParallelThresholdRestoredDefault(t *testing.T) {
	if got := SetParallelThreshold(defaultParallelThreshold); got != defaultParallelThreshold {
		SetParallelThreshold(got) // put the odd value back for debugging
		t.Fatalf("parallel threshold leaked: %d, want %d", got, defaultParallelThreshold)
	}
}
