package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// TestParallelQueriesRaceWriteGroups drives the parallel executor
// against concurrent write-group commits and durable checkpoints, with
// a cardinality-parity torn-snapshot detector. Relations A and B hold
// key-disjoint tuples and start with equal cardinalities; every write
// group inserts exactly one tuple into each, so at every
// epoch-consistent cut |A| + |B| is even. The probe query unions two
// parallel-eligible selects over A and B inside one pinned snapshot —
// an odd cardinality means a partition worker observed one relation of
// a group without the other, i.e. a torn snapshot. A checkpointer
// races the same store to put the WAL/checkpoint path under the same
// pressure. Run under -race.
func TestParallelQueriesRaceWriteGroups(t *testing.T) {
	lowerParallelThreshold(t, 8)

	st, _, err := storage.OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := raceScheme("A"), raceScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	const seedN = 100
	for i := 0; i < seedN; i++ {
		a.MustInsert(raceTuple(sa, fmt.Sprintf("a%05d", i), int64(i)))
		b.MustInsert(raceTuple(sb, fmt.Sprintf("b%05d", i), int64(i)))
	}
	st.Put(a)
	st.Put(b)
	BuildIndexes(a)
	BuildIndexes(b)
	db := OpenDB(st)
	defer db.Close()

	const rounds = 60
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			g := core.NewWriteGroup()
			g.Insert(a, raceTuple(sa, fmt.Sprintf("a%05d", seedN+i), int64(i)))
			g.Insert(b, raceTuple(sb, fmt.Sprintf("b%05d", seedN+i), int64(i)))
			if err := g.Commit(); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	ckptDone := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if err := db.Checkpoint(); err != nil {
				ckptDone <- err
				return
			}
		}
		ckptDone <- nil
	}()

	// Both selects plan parallel filters over their base scans (V >= 0
	// has no equality conjunct to index), and the union on top sees both
	// relations through the one snapshot the whole plan pinned.
	const probe = `(SELECT WHEN V >= 0 FROM A) UNIONMERGE (SELECT WHEN V >= 0 FROM B)`
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				degree := []int{2, 4, 8}[(w+i)%3]
				res, err := RunContext(WithWorkers(context.Background(), degree), probe, st)
				if err != nil {
					t.Errorf("probe at degree %d: %v", degree, err)
					return
				}
				n := res.Relation.Cardinality()
				if n%2 != 0 {
					t.Errorf("torn snapshot: |A|+|B| = %d (odd) at degree %d", n, degree)
					return
				}
				if n < 2*seedN || n > 2*(seedN+rounds) {
					t.Errorf("cardinality %d outside [%d,%d]", n, 2*seedN, 2*(seedN+rounds))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}

	// Quiesced: every group fully visible, parity intact.
	res, err := RunContext(WithWorkers(context.Background(), 4), probe, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Cardinality(); got != 2*(seedN+rounds) {
		t.Fatalf("final cardinality %d, want %d", got, 2*(seedN+rounds))
	}
}
