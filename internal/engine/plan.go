package engine

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/tfunc"
	"repro/internal/value"
)

// cost is the planner's currency: estimated result cardinality and
// abstract work units (tuple touches). Estimates are heuristic — exact
// candidate counts where an index was consulted at plan time, coarse
// selectivity guesses elsewhere — which is enough to rank alternatives.
type cost struct {
	rows float64
	work float64
}

// iterator streams result tuples; it returns (nil, nil) when exhausted.
type iterator func() (*core.Tuple, error)

// node is one operator of a physical plan. Nodes with a statically known
// scheme stream tuple-at-a-time through open; exec materializes the
// node's full result relation. opNode (the naive fallback) only knows
// its scheme at execution time and reports nil from scheme. Both
// execution entry points take the query's pinned snapshot (nil = live
// reads): leaves read base-relation state through it, so one plan
// executes against one consistent database version no matter how many
// relations it touches or how writers race it.
type node interface {
	scheme() *schema.Scheme
	open(s *Snapshot) (iterator, error)
	exec(s *Snapshot) (*core.Relation, error)
	estimate() cost
	describe() string
	children() []node
}

// materialize drains an iterator into a fresh relation on scheme s,
// collecting the tuples first and building the relation in one
// coalesced pass (exact-size key map, no per-tuple lock rounds).
func materialize(s *schema.Scheme, it iterator) (*core.Relation, error) {
	var ts []*core.Tuple
	for {
		t, err := it()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return core.NewRelationFromTuples(s, ts)
		}
		ts = append(ts, t)
	}
}

// sliceIter streams a tuple slice.
func sliceIter(ts []*core.Tuple) iterator {
	i := 0
	return func() (*core.Tuple, error) {
		if i >= len(ts) {
			return nil, nil
		}
		t := ts[i]
		i++
		return t, nil
	}
}

// explain renders the plan tree, one node per line with cost estimates.
func explain(n node, b *strings.Builder, depth int) {
	c := n.estimate()
	fmt.Fprintf(b, "%s%s  [rows≈%.0f cost≈%.0f]\n", strings.Repeat("  ", depth), n.describe(), c.rows, c.work)
	for _, k := range n.children() {
		explain(k, b, depth+1)
	}
}

// ---------------------------------------------------------------------
// scan

// scanNode streams every tuple of a base relation — the plan leaf when
// no index applies.
type scanNode struct {
	name string
	rel  *core.Relation
}

func (n *scanNode) scheme() *schema.Scheme { return n.rel.Scheme() }
func (n *scanNode) children() []node       { return nil }
func (n *scanNode) open(s *Snapshot) (iterator, error) {
	return s.profIter(n, sliceIter(s.tuplesOf(n.rel))), nil
}

// exec returns the pinned version as a frozen O(1) view, so the naive
// operators consuming it read the snapshot, not the live relation.
func (n *scanNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) { return s.relOf(n.rel), nil })
}
func (n *scanNode) estimate() cost {
	r := float64(n.rel.Cardinality())
	return cost{rows: r, work: r}
}
func (n *scanNode) describe() string {
	return fmt.Sprintf("scan %s (%d tuples)", n.name, n.rel.Cardinality())
}

// ---------------------------------------------------------------------
// time-slice

// indexTimeSliceNode answers a static TIME-SLICE from the lifespan
// interval index: only the tuples whose lifespan overlaps L are touched,
// then each is restricted to L. Candidates are resolved at plan time —
// the index probe is the cheap part — so the cost estimate is exact.
type indexTimeSliceNode struct {
	name string
	rel  *core.Relation
	L    lifespan.Lifespan
	cand []*core.Tuple
}

func (n *indexTimeSliceNode) scheme() *schema.Scheme { return n.rel.Scheme() }
func (n *indexTimeSliceNode) children() []node       { return nil }
func (n *indexTimeSliceNode) open(s *Snapshot) (iterator, error) {
	i := 0
	return s.profIter(n, func() (*core.Tuple, error) {
		for i < len(n.cand) {
			t := n.cand[i]
			i++
			if nt := t.Restrict(n.L); nt != nil {
				return nt, nil
			}
		}
		return nil, nil
	}), nil
}
func (n *indexTimeSliceNode) exec(s *Snapshot) (*core.Relation, error) {
	// cand was resolved at plan time; the engine only executes a plan
	// against a snapshot pinned at the exact versions it was compiled
	// for, so the candidate set already describes the pinned state.
	return s.profExec(n, func() (*core.Relation, error) {
		return core.TimesliceStaticOver(n.rel, n.L, n.cand)
	})
}
func (n *indexTimeSliceNode) estimate() cost {
	k := float64(len(n.cand))
	return cost{rows: k, work: logN(n.rel.Cardinality()) + k}
}
func (n *indexTimeSliceNode) describe() string {
	return fmt.Sprintf("index-time-slice %s at %s (interval index: %d of %d tuples alive)",
		n.name, n.L, len(n.cand), n.rel.Cardinality())
}

// timeSliceNode restricts each tuple of its child to L — the pushdown
// residual used when the source is not a base relation, or when the
// interval index would touch nearly everything. sel is the estimated
// fraction of tuples surviving the restriction (interval-geometry
// statistics over base relations, 1 where unknown).
type timeSliceNode struct {
	child node
	L     lifespan.Lifespan
	sel   float64
}

func (n *timeSliceNode) scheme() *schema.Scheme { return n.child.scheme() }
func (n *timeSliceNode) children() []node       { return []node{n.child} }
func (n *timeSliceNode) open(s *Snapshot) (iterator, error) {
	it, err := n.child.open(s)
	if err != nil {
		return nil, err
	}
	return s.profIter(n, func() (*core.Tuple, error) {
		for {
			t, err := it()
			if err != nil || t == nil {
				return nil, err
			}
			if nt := t.Restrict(n.L); nt != nil {
				return nt, nil
			}
		}
	}), nil
}
func (n *timeSliceNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		it, err := n.open(s)
		if err != nil {
			return nil, err
		}
		return materialize(n.scheme(), it)
	})
}
func (n *timeSliceNode) estimate() cost {
	c := n.child.estimate()
	return cost{rows: c.rows * n.sel, work: c.work + c.rows}
}
func (n *timeSliceNode) describe() string {
	return fmt.Sprintf("time-slice at %s", n.L)
}

// ---------------------------------------------------------------------
// selection

// filterNode applies a SELECT-IF or SELECT-WHEN condition per child
// tuple, streaming. Semantics mirror core.SelectIfCond/SelectWhenCond
// exactly, including vacuous ∀ over an empty scope. sel is the
// condition's estimated selectivity — statistics-derived over base
// relations, comparator defaults otherwise.
type filterNode struct {
	child  node
	cond   core.Condition
	when   bool
	forAll bool
	L      lifespan.Lifespan
	sel    float64
}

func (n *filterNode) scheme() *schema.Scheme { return n.child.scheme() }
func (n *filterNode) children() []node       { return []node{n.child} }
func (n *filterNode) open(s *Snapshot) (iterator, error) {
	it, err := n.child.open(s)
	if err != nil {
		return nil, err
	}
	return s.profIter(n, func() (*core.Tuple, error) {
		for {
			t, err := it()
			if err != nil || t == nil {
				return nil, err
			}
			nt, err := filterTuple(t, n.cond, n.when, n.forAll, n.L)
			if err != nil {
				return nil, err
			}
			if nt != nil {
				return nt, nil
			}
		}
	}), nil
}
func (n *filterNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		it, err := n.open(s)
		if err != nil {
			return nil, err
		}
		return materialize(n.scheme(), it)
	})
}
func (n *filterNode) estimate() cost {
	c := n.child.estimate()
	return cost{rows: c.rows * n.sel, work: c.work + c.rows}
}
func (n *filterNode) describe() string {
	return fmt.Sprintf("filter %s %s%s", selKind(n.when, n.forAll), n.cond, duringSuffix(n.L))
}

// filterTuple evaluates one tuple against a selection: the restricted
// tuple for SELECT-WHEN, the whole tuple or nil for SELECT-IF.
func filterTuple(t *core.Tuple, c core.Condition, when, forAll bool, L lifespan.Lifespan) (*core.Tuple, error) {
	scope := t.Lifespan().Intersect(L)
	holds, err := core.CondWhen(c, t, scope)
	if err != nil {
		return nil, err
	}
	if when {
		return t.Restrict(holds), nil
	}
	keep := !holds.IsEmpty()
	if forAll {
		keep = scope.Minus(holds).IsEmpty()
	}
	if keep {
		return t, nil
	}
	return nil, nil
}

// indexSelectNode evaluates a selection over an index-pruned candidate
// set: either the tuples matching a required equality conjunct (hash
// index probe plus its varying overflow) or the tuples overlapping a
// DURING lifespan (interval index). The full condition still runs per
// candidate, so pruning is pure speedup, never semantics. The ∀ form is
// excluded by the planner — vacuously-true tuples live outside any
// candidate set.
type indexSelectNode struct {
	name  string
	rel   *core.Relation
	cond  core.Condition
	when  bool
	L     lifespan.Lifespan
	cand  []*core.Tuple
	prune string // how the candidates were found, for EXPLAIN
}

func (n *indexSelectNode) scheme() *schema.Scheme { return n.rel.Scheme() }
func (n *indexSelectNode) children() []node       { return nil }
func (n *indexSelectNode) open(s *Snapshot) (iterator, error) {
	i := 0
	return s.profIter(n, func() (*core.Tuple, error) {
		for i < len(n.cand) {
			t := n.cand[i]
			i++
			nt, err := filterTuple(t, n.cond, n.when, false, n.L)
			if err != nil {
				return nil, err
			}
			if nt != nil {
				return nt, nil
			}
		}
		return nil, nil
	}), nil
}
func (n *indexSelectNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		if n.when {
			return core.SelectWhenCondOver(n.rel, n.cond, n.L, n.cand)
		}
		return core.SelectIfCondOver(n.rel, n.cond, n.L, n.cand)
	})
}
func (n *indexSelectNode) estimate() cost {
	k := float64(len(n.cand))
	return cost{rows: k, work: k + 1}
}
func (n *indexSelectNode) describe() string {
	return fmt.Sprintf("index-select %s %s %s%s via %s (%d of %d candidates)",
		selKind(n.when, false), n.name, n.cond, duringSuffix(n.L), n.prune, len(n.cand), n.rel.Cardinality())
}

func selKind(when, forAll bool) string {
	switch {
	case when:
		return "when"
	case forAll:
		return "if-forall"
	default:
		return "if-exists"
	}
}

func duringSuffix(L lifespan.Lifespan) string {
	if L.Equal(lifespan.All()) {
		return ""
	}
	return " during " + L.String()
}

// ---------------------------------------------------------------------
// projection

// projectNode drops attributes tuple-at-a-time. The planner only emits
// it when the child's key survives the projection, so no historical
// duplicate elimination is needed; otherwise projection falls back to
// the naive operator.
type projectNode struct {
	child node
	attrs []string
	rs    *schema.Scheme
}

func (n *projectNode) scheme() *schema.Scheme { return n.rs }
func (n *projectNode) children() []node       { return []node{n.child} }
func (n *projectNode) open(s *Snapshot) (iterator, error) {
	it, err := n.child.open(s)
	if err != nil {
		return nil, err
	}
	return s.profIter(n, func() (*core.Tuple, error) {
		t, err := it()
		if err != nil || t == nil {
			return nil, err
		}
		nv := make(map[string]tfunc.Func, len(n.attrs))
		for _, a := range n.attrs {
			nv[a] = t.Value(a)
		}
		return core.NewTuple(n.rs, t.Lifespan(), nv)
	}), nil
}
func (n *projectNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		it, err := n.open(s)
		if err != nil {
			return nil, err
		}
		return materialize(n.rs, it)
	})
}
func (n *projectNode) estimate() cost {
	c := n.child.estimate()
	return cost{rows: c.rows, work: c.work + c.rows}
}
func (n *projectNode) describe() string {
	return "project " + strings.Join(n.attrs, ", ") + " (key kept)"
}

// ---------------------------------------------------------------------
// join

// indexJoinNode is the index lookup equijoin: it streams one side and
// probes the other side's hash index per tuple instead of nested-looping
// over it. A streamed tuple whose join value is constant costs one
// probe; a time-varying value probes once per distinct image value. The
// indexed side's varying overflow joins against every streamed tuple —
// the index cannot rule those pairs out — so the cost model charges for
// them and the planner picks the orientation that minimizes the total.
type indexJoinNode struct {
	stream       node
	streamAttr   string
	indexed      *core.Relation
	indexedName  string
	indexedAttr  string
	rs           *schema.Scheme
	leftIsStream bool // stream side is r1 of the result scheme
	// keyProbe probes the indexed relation's canonical key map; aix is
	// the attribute hash index probed otherwise. Probes run against
	// live structures at execution time and are restricted to the
	// query's pinned snapshot: key lookups bound by the pinned prefix,
	// attribute-index candidates resolved through it (live probes are
	// a superset of the pinned matches — value images only grow under
	// merges — and JoinPair re-checks every candidate, so restriction
	// is exact).
	keyProbe  bool
	aix       *AttrIndex
	probeDesc string
	avgBucket float64
}

func (n *indexJoinNode) scheme() *schema.Scheme { return n.rs }
func (n *indexJoinNode) children() []node       { return []node{n.stream} }

// probeVal returns the indexed-side tuples whose attribute could equal
// v, as of the pinned snapshot.
func (n *indexJoinNode) probeVal(s *Snapshot, v value.Value) []*core.Tuple {
	s.profLookup(n)
	if n.keyProbe {
		if t, ok := s.lookupKey(n.indexed, v.String()); ok {
			return []*core.Tuple{t}
		}
		return nil
	}
	return s.resolve(n.indexed, n.aix.Probe(v))
}

// candidateFn returns the per-tuple candidate resolver for one
// execution of the node. Under a snapshot, the varying overflow is
// re-read live for every streamed tuple — a pinned-constant tuple that
// a concurrent merge moves to varying mid-stream must still be found —
// and the resolved candidates are deduplicated by pinned identity: the
// same pinned object can surface through both a bucket probed before
// such a merge and the varying list read after it, and the join must
// not emit the pair twice. Without a snapshot (plan-time sub-query
// evaluation only), the varying overflow is captured once up front
// instead, which cannot alias any later bucket probe.
func (n *indexJoinNode) candidateFn(s *Snapshot) func(*core.Tuple) []*core.Tuple {
	var baseVarying []*core.Tuple
	if s == nil && n.aix != nil {
		baseVarying = n.aix.Varying()
	}
	// Memoized resolution of the live varying slice: Varying() hands out
	// stable snapshots (appends extend behind them, removals copy
	// first), so an unchanged (pointer, length) identity means unchanged
	// contents and the resolved set from the previous streamed tuple can
	// be reused — the per-tuple live re-read then only pays for actual
	// mid-stream merges instead of O(stream × varying) key computations.
	var lastVarying, lastResolved []*core.Tuple
	resolveVarying := func() []*core.Tuple {
		v := n.aix.Varying()
		if len(v) == 0 {
			return nil
		}
		if len(v) == len(lastVarying) && &v[0] == &lastVarying[0] {
			return lastResolved
		}
		lastVarying, lastResolved = v, s.resolve(n.indexed, v)
		return lastResolved
	}
	return func(t *core.Tuple) []*core.Tuple {
		f := t.Value(n.streamAttr)
		if f.IsNowhereDefined() {
			return nil
		}
		var out []*core.Tuple
		if f.IsConstant() {
			v, _ := f.ConstantValue()
			out = n.probeVal(s, v)
		} else {
			// Distinct image values hit disjoint buckets, so no pair repeats.
			for _, v := range f.Image() {
				out = append(out, n.probeVal(s, v)...)
			}
		}
		if n.aix == nil {
			return out
		}
		varying := baseVarying
		if s != nil {
			varying = resolveVarying()
		}
		if len(varying) == 0 {
			return out
		}
		merged := append(append(make([]*core.Tuple, 0, len(out)+len(varying)), out...), varying...)
		if s == nil {
			return merged
		}
		seen := make(map[*core.Tuple]bool, len(merged))
		dedup := merged[:0]
		for _, c := range merged {
			if !seen[c] {
				seen[c] = true
				dedup = append(dedup, c)
			}
		}
		return dedup
	}
}

func (n *indexJoinNode) open(s *Snapshot) (iterator, error) {
	it, err := n.stream.open(s)
	if err != nil {
		return nil, err
	}
	candidates := n.candidateFn(s)
	var t *core.Tuple
	var cand []*core.Tuple
	ci := 0
	return s.profIter(n, func() (*core.Tuple, error) {
		for {
			for ci < len(cand) {
				o := cand[ci]
				ci++
				t1, t2 := t, o
				a, b := n.streamAttr, n.indexedAttr
				if !n.leftIsStream {
					t1, t2 = o, t
					a, b = n.indexedAttr, n.streamAttr
				}
				nt, err := core.JoinPair(n.rs, t1, t2, a, value.EQ, b)
				if err != nil {
					return nil, err
				}
				if nt != nil {
					return nt, nil
				}
			}
			t, err = it()
			if err != nil || t == nil {
				return nil, err
			}
			cand, ci = candidates(t), 0
		}
	}), nil
}
func (n *indexJoinNode) exec(s *Snapshot) (*core.Relation, error) {
	// When the streamed side is itself a base relation, delegate to the
	// core fast path (same kernel, one fewer indirection layer),
	// streaming the pinned snapshot of the base. Under EXPLAIN ANALYZE
	// the generic path runs instead, so the streamed child reports its
	// own rows and time rather than vanishing into the kernel.
	if sc, ok := n.stream.(*scanNode); ok && n.leftIsStream && (s == nil || s.prof == nil) {
		return core.EquiJoinProbeOver(sc.rel, n.indexed, n.streamAttr, n.indexedAttr,
			s.tuplesOf(sc.rel), n.candidateFn(s))
	}
	return s.profExec(n, func() (*core.Relation, error) {
		it, err := n.open(s)
		if err != nil {
			return nil, err
		}
		return materialize(n.rs, it)
	})
}
func (n *indexJoinNode) estimate() cost {
	c := n.stream.estimate()
	probes := c.rows * (1 + n.avgBucket)
	return cost{rows: c.rows * maxf(n.avgBucket, 0.5), work: c.work + probes}
}
func (n *indexJoinNode) describe() string {
	side := "right"
	if !n.leftIsStream {
		side = "left"
	}
	return fmt.Sprintf("index-lookup-join %s=%s probing %s %s via %s",
		n.streamAttr, n.indexedAttr, side, n.indexedName, n.probeDesc)
}

// ---------------------------------------------------------------------
// naive fallback

// opNode materializes its children and applies one naive algebra
// operator — the planner's per-operator fallback. Children still run as
// plans, so an indexed scan below a naive operator keeps its speedup.
type opNode struct {
	name  string
	kids  []node
	est   cost
	apply func(rels []*core.Relation) (*core.Relation, error)
}

func (n *opNode) scheme() *schema.Scheme { return nil }
func (n *opNode) children() []node       { return n.kids }
func (n *opNode) exec(s *Snapshot) (*core.Relation, error) {
	return s.profExec(n, func() (*core.Relation, error) {
		rels := make([]*core.Relation, len(n.kids))
		for i, k := range n.kids {
			r, err := k.exec(s)
			if err != nil {
				return nil, err
			}
			rels[i] = r
		}
		return n.apply(rels)
	})
}

// open materializes via exec; the slice iterator is deliberately not
// profiled — exec already measured the node completely, and wrapping
// the re-stream would double count rows and time.
func (n *opNode) open(s *Snapshot) (iterator, error) {
	r, err := n.exec(s)
	if err != nil {
		return nil, err
	}
	//lint:allow pindiscipline r is the operator's own materialized result, private to this query, not a shared live relation
	return sliceIter(r.Tuples()), nil
}
func (n *opNode) estimate() cost { return n.est }
func (n *opNode) describe() string {
	return n.name + " (naive)"
}

func logN(n int) float64 {
	l := 0.0
	for m := 1; m < n; m *= 2 {
		l++
	}
	return l
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
