package engine

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/obs"
	"repro/internal/value"
)

// Plan-cache metrics live in the process-wide registry so `\metrics`,
// JSON snapshots and the benchmark harness see them alongside every
// other engine counter; PlanCacheStats below stays as a thin typed
// view over the same numbers. Invalidations count fence failures
// (a dependency relation mutated or was swapped), evictions count LRU
// overflow — the distinction tells an operator whether the cache is
// too small or the workload too write-heavy.
var (
	mPlanHits          = obs.Default.Counter("engine.plancache.hits")
	mPlanMisses        = obs.Default.Counter("engine.plancache.misses")
	mPlanStores        = obs.Default.Counter("engine.plancache.stores")
	mPlanInvalidations = obs.Default.Counter("engine.plancache.invalidations")
	mPlanEvictions     = obs.Default.Counter("engine.plancache.evictions")
	mPlanSweeps        = obs.Default.Counter("engine.plancache.sweeps")
)

func init() {
	obs.Default.GaugeFunc("engine.plancache.entries", func() int64 {
		planCache.mu.Lock()
		defer planCache.mu.Unlock()
		return int64(planCache.lru.Len())
	})
}

// The plan cache memoizes compiled physical plans so repeated queries
// skip parsing and planning — including the plan-time index probes that
// resolve candidate sets and the WHEN sub-queries evaluated for AT and
// DURING lifespans. An entry is keyed by normalized query text (the
// raw source via hql.NormalizeQuery, and the parsed expression's
// canonical rendering, so textual and structural repeats both hit) and
// fenced by the plan's (relation, version) dependencies: any insert or
// merge into a relation the plan touches moves that relation's version
// and the stale entry is dropped on its next lookup. Because plans pin
// relation pointers, a swapped environment (e.g. the CLI's \load)
// fails the same fence and replans rather than serving results from
// the old store.

// cacheEntry is one cached plan with the keys it is registered under
// and its fingerprint — the injective identity of the (normalized
// query, relation-version set) pair the plan answers for.
type cacheEntry struct {
	plan *Plan
	keys []string
	fp   string
	elem *list.Element
}

// planFingerprint builds the injective identity of a cached plan: the
// query's canonical text plus every dependency as (name, version),
// combined with value.EncodeKey's escaping so no two distinct
// (query, dep-set) pairs can collide — a query text that happens to
// embed "NAME|3" can never alias a dependency entry, and dependency
// names containing separators cannot bleed into their neighbors. The
// injectivity is property-tested in plancache_test.go.
func planFingerprint(text string, deps []planDep) string {
	parts := make([]string, 0, 1+2*len(deps))
	parts = append(parts, text)
	for _, d := range deps {
		parts = append(parts, d.name, strconv.FormatUint(d.version, 10))
	}
	return value.EncodeKey(parts)
}

type planCacheT struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // of *cacheEntry; front = most recently used
}

// maxPlanCache bounds the cache: an LRU of compiled plans, whose
// footprint tracks the distinct-query working set, not the database.
const maxPlanCache = 256

var planCache = &planCacheT{entries: make(map[string]*cacheEntry), lru: list.New()}

// lookup returns the cached, still-valid plan under key, dropping the
// entry (and counting a miss) when its dependency fence fails. count
// controls whether the hit/miss counters move — the raw-source alias
// lookup passes false so one query never counts twice.
func (pc *planCacheT) lookup(key string, env hql.Env, count bool) (*Plan, bool) {
	if key == "" {
		return nil, false
	}
	pc.mu.Lock()
	ent, ok := pc.entries[key]
	if ok {
		pc.lru.MoveToFront(ent.elem)
	}
	pc.mu.Unlock()
	if ok && !ent.plan.valid(env) {
		pc.mu.Lock()
		pc.removeLocked(ent)
		pc.mu.Unlock()
		mPlanInvalidations.Inc()
		ok = false
	}
	if count {
		if ok {
			mPlanHits.Inc()
		} else {
			mPlanMisses.Inc()
		}
	}
	if !ok {
		return nil, false
	}
	return ent.plan, true
}

// countHit records a hit found through an uncounted alias lookup.
func (pc *planCacheT) countHit() {
	mPlanHits.Inc()
}

// peek reports whether a valid entry exists under key without touching
// LRU order or the hit/miss counters — EXPLAIN's read-only probe.
func (pc *planCacheT) peek(key string, env hql.Env) bool {
	pc.mu.Lock()
	ent, ok := pc.entries[key]
	pc.mu.Unlock()
	return ok && ent.plan.valid(env)
}

// store registers p under every non-empty key (replacing older entries
// those keys pointed at) and evicts least-recently-used plans beyond
// the bound.
func (pc *planCacheT) store(keys []string, p *Plan) {
	clean := keys[:0:0]
	for _, k := range keys {
		if k != "" {
			clean = append(clean, k)
		}
	}
	if len(clean) == 0 {
		return
	}
	fp := planFingerprint(p.text, p.deps)
	mPlanStores.Inc()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.sweepStaleLocked()
	// Two goroutines racing the same cache miss compile the same plan
	// twice; the fingerprint identifies the duplicate, so the second
	// store keeps the incumbent entry (registering any missing alias
	// keys) instead of churning the LRU with an identical plan.
	for _, k := range clean {
		if old, ok := pc.entries[k]; ok && old.fp == fp {
			for _, k2 := range clean {
				if pc.entries[k2] != old && len(old.keys) < maxAliasKeys {
					if prev, ok := pc.entries[k2]; ok {
						pc.removeLocked(prev)
					}
					pc.entries[k2] = old
					old.keys = append(old.keys, k2)
				}
			}
			pc.lru.MoveToFront(old.elem)
			return
		}
	}
	ent := &cacheEntry{plan: p, keys: clean, fp: fp}
	ent.elem = pc.lru.PushFront(ent)
	for _, k := range clean {
		if old, ok := pc.entries[k]; ok && old != ent {
			pc.removeLocked(old)
		}
		pc.entries[k] = ent
	}
	for pc.lru.Len() > maxPlanCache {
		pc.removeLocked(pc.lru.Back().Value.(*cacheEntry))
		mPlanEvictions.Inc()
	}
}

// lastSweepEpoch coalesces write-driven sweeps to one per database
// epoch. A write group touching k catalogued relations delivers k
// change notifications, but the whole group moved the epoch exactly
// once — so the first notification CASes the epoch forward and sweeps,
// and the remaining k−1 observe the already-current epoch and return
// without touching the cache lock. Sweeping once per group instead of
// once per member relation is the difference between O(groups) and
// O(relations) full-cache walks under wide commits.
var lastSweepEpoch atomic.Uint64

// planCacheNoteWrite is called from the index catalog's change
// observer, after every relation/publish lock of the commit has been
// released. It runs at most one stale sweep per epoch; writes to
// unpublished relations (which never move the epoch) may coalesce into
// a neighboring sweep, but such relations cannot be plan dependencies —
// plans only pin relations resolved from a store, and stores publish.
func planCacheNoteWrite() {
	e := core.Epoch()
	old := lastSweepEpoch.Load()
	if old == e || !lastSweepEpoch.CompareAndSwap(old, e) {
		return // this epoch's sweep already ran (or another writer won the CAS)
	}
	mPlanSweeps.Inc()
	planCache.mu.Lock()
	planCache.sweepStaleLocked()
	planCache.mu.Unlock()
}

// sweepStaleLocked drops every entry one of whose pinned relations has
// mutated since planning. Versions are monotone, so such a fence can
// never pass again; without the sweep an invalidated entry is only
// evicted when its exact query text is looked up again (or by LRU
// overflow), retaining dead candidate slices and relation generations
// meanwhile. Runs on each store — i.e. once per compile — and once per
// write epoch via planCacheNoteWrite, over at most maxPlanCache
// entries each time. Entries from a swapped-out environment (same
// versions, different store) are not caught here; callers that swap
// environments run InvalidateStalePlans against the new one.
func (pc *planCacheT) sweepStaleLocked() {
	var next *list.Element
	for e := pc.lru.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		for _, d := range ent.plan.deps {
			if d.rel.Version() != d.version {
				pc.removeLocked(ent)
				mPlanInvalidations.Inc()
				break
			}
		}
	}
}

// maxAliasKeys bounds the spellings one entry may be registered under.
// Without it, a stream of whitespace-variant spellings of one query
// would grow the entries map without bound while the LRU stays at a
// compliant length; past the cap, variant spellings still hit through
// the canonical AST key after their parse.
const maxAliasKeys = 8

// addKey registers an additional alias key for an already-cached plan
// (e.g. the raw-source spelling of a query first seen pre-parsed).
func (pc *planCacheT) addKey(p *Plan, key string) {
	if key == "" {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for e := pc.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		if ent.plan == p {
			if len(ent.keys) >= maxAliasKeys {
				return
			}
			if old, ok := pc.entries[key]; ok && old != ent {
				pc.removeLocked(old)
			}
			pc.entries[key] = ent
			ent.keys = append(ent.keys, key)
			return
		}
	}
}

func (pc *planCacheT) removeLocked(ent *cacheEntry) {
	for _, k := range ent.keys {
		if pc.entries[k] == ent {
			delete(pc.entries, k)
		}
	}
	if ent.elem != nil {
		pc.lru.Remove(ent.elem)
		ent.elem = nil
	}
}

// PlanCacheStats reports the cache's cumulative hit and miss counts and
// its current size — a typed view over the registry counters
// engine.plancache.{hits,misses} plus the live entry count.
func PlanCacheStats() (hits, misses uint64, entries int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	return mPlanHits.Load(), mPlanMisses.Load(), planCache.lru.Len()
}

// InvalidateStalePlans drops every cached plan that no longer
// validates against env — one of its dependencies resolves to a
// different relation (a swapped store) or a moved version — and
// reports how many entries were dropped. Entries whose dependencies
// still resolve identically survive, so a store swap that shares
// relations with its predecessor (or a reload of unrelated relations)
// keeps the working set warm: the precise replacement for clearing
// the cache wholesale on swap.
func InvalidateStalePlans(env hql.Env) (dropped int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	var next *list.Element
	for e := planCache.lru.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		if !ent.plan.valid(env) {
			planCache.removeLocked(ent)
			mPlanInvalidations.Inc()
			dropped++
		}
	}
	return dropped
}

// ResetPlanCache empties the plan cache and zeroes its hit/miss
// counters (in the registry — the handles stay valid). The benchmark
// harness uses it to measure cold plan-and-execute against cached
// execution; tests use it for isolation, and EXPLAIN's plan-cache line
// depends on the zeroing for golden-file determinism.
func ResetPlanCache() {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	planCache.entries = make(map[string]*cacheEntry)
	planCache.lru = list.New()
	mPlanHits.Reset()
	mPlanMisses.Reset()
}

// srcCacheKey / astCacheKey build the two key namespaces: normalized
// raw source and canonical AST rendering.
func srcCacheKey(src string) string { return "src:" + hql.NormalizeQuery(src) }
func astCacheKey(e hql.Expr) string { return "ast:" + e.String() }
