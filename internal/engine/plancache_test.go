package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// fpInput is one (normalized query, relation-version set) identity for
// the injectivity property. Dependency names and the query text draw
// from an alphabet heavy in the encoding's separator and escape
// characters, digits and '@' — exactly the characters a naive
// "text|name@version|..." concatenation would collide on.
type fpInput struct {
	Text string
	Deps []fpDep
}

type fpDep struct {
	Name    string
	Version uint64
}

func (fpInput) Generate(r *rand.Rand, _ int) fpInput {
	const alphabet = `ab|\@0123456789 `
	randStr := func(n int) string {
		b := make([]byte, r.Intn(n)+1)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}
	in := fpInput{Text: randStr(12)}
	for i := r.Intn(4); i > 0; i-- {
		in.Deps = append(in.Deps, fpDep{Name: randStr(8), Version: uint64(r.Intn(100))})
	}
	return in
}

func (in fpInput) key() string {
	deps := make([]planDep, len(in.Deps))
	for i, d := range in.Deps {
		deps[i] = planDep{name: d.Name, version: d.Version}
	}
	return planFingerprint(in.Text, deps)
}

func (in fpInput) canon() string {
	parts := []string{in.Text}
	for _, d := range in.Deps {
		parts = append(parts, fmt.Sprintf("%s\x00%d", d.Name, d.Version))
	}
	return strings.Join(parts, "\x01")
}

// TestPlanFingerprintInjective is the property test of the plan
// cache's entry identity: two distinct (normalized query,
// relation-version set) pairs never produce the same fingerprint.
// value.EncodeKey's escaping is what carries the property — the test
// also pins a few handcrafted near-collisions that a plain join would
// conflate.
func TestPlanFingerprintInjective(t *testing.T) {
	if err := quick.Check(func(a, b fpInput) bool {
		if a.canon() == b.canon() {
			return a.key() == b.key()
		}
		return a.key() != b.key()
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}

	// Handcrafted near-collisions: separator bleeding between fields.
	pairs := [][2]fpInput{
		{{Text: "q|R", Deps: []fpDep{{"S", 1}}}, {Text: "q", Deps: []fpDep{{"R|S", 1}}}},
		{{Text: "q", Deps: []fpDep{{"R", 12}}}, {Text: "q", Deps: []fpDep{{"R|1", 2}}}},
		{{Text: "q", Deps: []fpDep{{"R", 1}, {"S", 2}}}, {Text: "q", Deps: []fpDep{{"R", 1}}}},
		{{Text: "q", Deps: []fpDep{{`R\`, 1}}}, {Text: "q", Deps: []fpDep{{`R\|1`, 1}}}},
		{{Text: "q", Deps: nil}, {Text: "q|", Deps: nil}},
	}
	for _, p := range pairs {
		if p[0].key() == p[1].key() {
			t.Errorf("collision: %+v vs %+v -> %q", p[0], p[1], p[0].key())
		}
	}
}

// swapStore builds a store with relations A and B holding one tuple
// each; sal differentiates generations of the same relation name.
func swapStore(t *testing.T, names []string, sal int64) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	full := lifespan.Interval(0, 99)
	for _, name := range names {
		s := schema.MustNew(name, []string{"K"},
			schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
			schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		)
		r := core.NewRelation(s)
		r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
			Key("K", value.String_("x")).
			Set("SAL", 0, 9, value.Int(sal)).
			MustBuild())
		st.Put(r)
	}
	return st
}

// TestPlanCacheSweepPerWriteGroup is the regression test for sweep
// coalescing: a write group spanning k catalogued relations delivers k
// change notifications but must trigger exactly one stale sweep (the
// group ticks the epoch once), while k independent single-relation
// inserts — k epochs — trigger k. It also checks the coalesced sweep
// actually works: every plan fenced on the group's relations is gone
// from the cache afterwards without any lookup or store happening.
func TestPlanCacheSweepPerWriteGroup(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()

	names := []string{"A", "B", "C"}
	st := swapStore(t, names, 100)
	rels := make([]*core.Relation, len(names))
	for i, n := range names {
		r, ok := st.Get(n)
		if !ok {
			t.Fatalf("relation %s missing", n)
		}
		rels[i] = r
		// Register the catalog observer (the sweep's delivery channel)
		// and cache one plan fenced on this relation.
		BuildIndexes(r)
		if _, err := Run(fmt.Sprintf(`SELECT WHEN SAL = 100 FROM %s`, n), st); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, entries := PlanCacheStats(); entries != len(names) {
		t.Fatalf("cached %d plans, want %d", entries, len(names))
	}

	tup := func(r *core.Relation, key string) *core.Tuple {
		return core.NewTupleBuilder(r.Scheme(), lifespan.Interval(10, 19)).
			Key("K", value.String_(key)).
			Set("SAL", 10, 19, value.Int(7)).
			MustBuild()
	}

	// One group over all three relations: three notifications, one epoch
	// tick, exactly one sweep — and it drops all three fenced plans.
	s0 := mPlanSweeps.Load()
	g := core.NewWriteGroup()
	for _, r := range rels {
		g.Insert(r, tup(r, "g"))
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mPlanSweeps.Load() - s0; got != 1 {
		t.Fatalf("write group over %d relations ran %d sweeps, want 1", len(rels), got)
	}
	if _, _, entries := PlanCacheStats(); entries != 0 {
		t.Fatalf("%d stale plans survived the group sweep, want 0", entries)
	}

	// Re-cache, then three independent inserts: three epochs, three
	// sweeps — the uncoalesced baseline the group must beat.
	for _, n := range names {
		if _, err := Run(fmt.Sprintf(`SELECT WHEN SAL = 100 FROM %s`, n), st); err != nil {
			t.Fatal(err)
		}
	}
	s1 := mPlanSweeps.Load()
	for _, r := range rels {
		r.MustInsert(tup(r, "i"))
	}
	if got := mPlanSweeps.Load() - s1; got != uint64(len(rels)) {
		t.Fatalf("%d single-relation inserts ran %d sweeps, want %d", len(rels), got, len(rels))
	}
}

// TestInvalidateStalePlansOnSwap is the regression test for the CLI's
// store-swap path: a plan cached against the old store must not serve
// results after the environment swaps to a new store with the same
// relation names — and, unlike the old wholesale cache reset, entries
// whose relations survived the swap must stay warm.
func TestInvalidateStalePlansOnSwap(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()

	st1 := swapStore(t, []string{"A", "B"}, 100)
	q := `SELECT WHEN SAL = 200 FROM A`
	res, err := Run(q, st1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 0 {
		t.Fatalf("old store: SAL=200 matched %d tuples, want 0", res.Relation.Cardinality())
	}

	// Swap: same names, different data (SAL=200 everywhere), keeping
	// st1's B relation object so one cached plan stays valid.
	st2 := swapStore(t, []string{"A"}, 200)
	b1, _ := st1.Get("B")
	st2.Put(b1)
	qb := `SELECT WHEN SAL = 100 FROM B`
	if _, err := Run(qb, st1); err != nil { // cache a plan that survives
		t.Fatal(err)
	}

	dropped := InvalidateStalePlans(st2)
	if dropped == 0 {
		t.Fatal("swap invalidation dropped nothing; the A-plan pins the old store")
	}

	// The stale-plan read: the swapped store's A has SAL=200.
	res, err = Run(q, st2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Cardinality(); got != 1 {
		t.Fatalf("stale plan served after swap: SAL=200 matched %d tuples, want 1", got)
	}

	// The B-plan survived the swap and hits.
	h0, _, _ := PlanCacheStats()
	if _, err := Run(qb, st2); err != nil {
		t.Fatal(err)
	}
	if h1, _, _ := PlanCacheStats(); h1 != h0+1 {
		t.Fatalf("surviving relation's plan did not hit after swap (hits %d -> %d)", h0, h1)
	}
}
