package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/value"
)

// Plan is a compiled query: a physical operator tree plus the result
// sort of the original expression (relation, lifespan or snapshot),
// the (relation, version) pairs the plan was compiled against — the
// plan cache's validity fence — and the statistics the planner
// consulted, for EXPLAIN.
type Plan struct {
	root  node
	kind  planKind
	at    chronon.Time // SNAPSHOT time
	text  string
	deps  []planDep
	notes []string
}

// planDep pins one relation the plan depends on — resolved from the
// environment during lowering (including WHEN sub-queries evaluated at
// plan time) — at the version the plan saw. A cached plan is reusable
// only while every dep still resolves to the same relation at the same
// version.
type planDep struct {
	name    string
	rel     *core.Relation
	version uint64
}

type planKind uint8

const (
	planRelation planKind = iota
	planWhen
	planSnapshot
)

// lowerCtx threads the environment through lowering while collecting
// the plan's relation dependencies and the statistics notes EXPLAIN
// reports.
type lowerCtx struct {
	env   hql.Env
	deps  map[string]planDep
	notes map[string]string
}

func newLowerCtx(env hql.Env) *lowerCtx {
	return &lowerCtx{env: env, deps: make(map[string]planDep), notes: make(map[string]string)}
}

// dep records that the plan depends on relation r (resolved as name) at
// its current version.
func (lc *lowerCtx) dep(name string, r *core.Relation) {
	if _, ok := lc.deps[name]; !ok {
		lc.deps[name] = planDep{name: name, rel: r, version: r.Version()}
	}
}

// relStats resolves and records the statistics object of a base
// relation for costing.
func (lc *lowerCtx) relStats(name string, r *core.Relation) RelStats {
	s := Indexes(r).Stats()
	lc.notes[name] = fmt.Sprintf("%s: %s", name, s)
	return s
}

// attrStats resolves and records per-attribute statistics of a base
// relation for costing, building the attribute's hash index if needed.
func (lc *lowerCtx) attrStats(name string, r *core.Relation, attr string) AttrStats {
	return lc.noteAttr(name, attr, Indexes(r).AttrStatsFor(attr))
}

// attrStatsCheap resolves per-attribute statistics without paying an
// O(n) index build the plan would not otherwise make: a
// single-attribute key synthesizes exact statistics from the
// canonical-key map the relation already maintains (keys are constant,
// everywhere defined and unique); other attributes answer only from an
// already-built index, unless willBuild says the plan is about to
// build it anyway (a required-equality probe on a base scan).
func (lc *lowerCtx) attrStatsCheap(name string, r *core.Relation, attr string, willBuild bool) (AttrStats, bool) {
	if key := r.Scheme().Key; len(key) == 1 && key[0] == attr {
		n := r.Cardinality()
		return lc.noteAttr(name, attr, AttrStats{Rows: n, Distinct: n}), true
	}
	if willBuild {
		return lc.attrStats(name, r, attr), true
	}
	if as, ok := Indexes(r).AttrStatsIfBuilt(attr); ok {
		return lc.noteAttr(name, attr, as), true
	}
	return AttrStats{}, false
}

// noteAttr records an attribute-statistics line for EXPLAIN.
func (lc *lowerCtx) noteAttr(name, attr string, as AttrStats) AttrStats {
	key := name + "." + attr
	lc.notes[key] = fmt.Sprintf("%s: %s", key, as)
	return as
}

func (lc *lowerCtx) depList() []planDep {
	out := make([]planDep, 0, len(lc.deps))
	for _, d := range lc.deps {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (lc *lowerCtx) noteList() []string {
	keys := make([]string, 0, len(lc.notes))
	for k := range lc.notes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = lc.notes[k]
	}
	return out
}

// PlanQuery lowers a parsed HQL expression into a physical plan. An
// error means the planner cannot (or should not) handle the expression;
// callers fall back to the naive evaluator, which either runs it or
// reports the definitive semantic error.
func PlanQuery(e hql.Expr, env hql.Env) (*Plan, error) {
	p := &Plan{text: e.String()}
	var src hql.Expr
	switch n := e.(type) {
	case *hql.WhenExpr:
		p.kind, src = planWhen, n.Source
	case *hql.SnapshotExpr:
		p.kind, src = planSnapshot, n.Source
		p.at = chronon.Time(n.At)
	default:
		p.kind, src = planRelation, e
	}
	lc := newLowerCtx(env)
	root, err := lower(src, lc)
	if err != nil {
		return nil, err
	}
	p.root = root
	p.deps = lc.depList()
	p.notes = lc.noteList()
	return p, nil
}

// run executes the plan against the given pinned snapshot and wraps
// the result in the query's sort. It is deliberately unexported: the
// engine's entry points (Run, Eval, the hql hook) are the only
// execution paths, and each pins a snapshot verified against the
// plan's compile-time versions before running — there is no
// best-effort execute-without-verify path. The snapshot is nil only
// for plan-time sub-query evaluation (evalLS), which runs under the
// version fence the plan's deps record. sp, when non-nil, receives the
// execute mark after the operator tree runs and — for WHEN and
// SNAPSHOT queries, whose result is derived from the tree's relation —
// a materialize mark after the wrap; plain relation results are
// returned as-is, so their materialize stage is legitimately zero.
func (p *Plan) run(s *Snapshot, sp *obs.Span) (hql.Result, error) {
	r, err := p.root.exec(s)
	if sp != nil {
		sp.Mark(obs.StageExecute)
	}
	if err != nil {
		return hql.Result{}, err
	}
	switch p.kind {
	case planWhen:
		ls := core.When(r)
		if sp != nil {
			sp.Mark(obs.StageMaterialize)
		}
		return hql.Result{Lifespan: &ls}, nil
	case planSnapshot:
		snap, err := core.Snapshot(r, p.at)
		if sp != nil {
			sp.Mark(obs.StageMaterialize)
		}
		if err != nil {
			return hql.Result{}, err
		}
		return hql.Result{Snapshot: snap}, nil
	default:
		return hql.Result{Relation: r}, nil
	}
}

// valid reports whether the plan's relation dependencies still resolve
// to the same relations at the versions the plan was compiled against.
func (p *Plan) valid(env hql.Env) bool {
	for _, d := range p.deps {
		r, ok := env.Get(d.name)
		if !ok || r != d.rel || r.Version() != d.version {
			return false
		}
	}
	return true
}

// Explain renders the physical plan — one operator per line with cost
// estimates — followed by the statistics the planner consulted.
func (p *Plan) Explain() string {
	var b strings.Builder
	switch p.kind {
	case planWhen:
		b.WriteString("when (lifespan of result)\n")
	case planSnapshot:
		fmt.Fprintf(&b, "snapshot at %s\n", p.at)
	}
	depth := 0
	if p.kind != planRelation {
		depth = 1
	}
	explain(p.root, &b, depth)
	if len(p.notes) > 0 {
		b.WriteString("statistics:\n")
		for _, n := range p.notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// lower translates a relation-valued expression into a plan node,
// choosing index-backed operators by cost where they apply and wrapping
// the naive algebra otherwise.
func lower(e hql.Expr, lc *lowerCtx) (node, error) {
	switch n := e.(type) {
	case *hql.RelName:
		r, ok := lc.env.Get(n.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", n.Name)
		}
		lc.dep(n.Name, r)
		return &scanNode{name: n.Name, rel: r}, nil

	case *hql.TimesliceExpr:
		child, err := lower(n.Source, lc)
		if err != nil {
			return nil, err
		}
		if n.By != "" {
			return naive1("dynamic-time-slice by "+n.By, child, func(r *core.Relation) (*core.Relation, error) {
				return core.TimesliceDynamic(r, n.By)
			}), nil
		}
		L, err := evalLS(n.At, lc)
		if err != nil {
			return nil, err
		}
		return maybeParallel(lowerTimeslice(child, L, lc), lc), nil

	case *hql.SelectExpr:
		return lowerSelect(n, lc)

	case *hql.ProjectExpr:
		child, err := lower(n.Source, lc)
		if err != nil {
			return nil, err
		}
		if cs := child.scheme(); cs != nil && keyKept(cs, n.Attrs) {
			rs, err := schema.ProjectScheme(cs, n.Attrs, cs.Name)
			if err == nil {
				return &projectNode{child: child, attrs: n.Attrs, rs: rs}, nil
			}
		}
		return naive1("project "+strings.Join(n.Attrs, ", "), child, func(r *core.Relation) (*core.Relation, error) {
			return core.Project(r, n.Attrs...)
		}), nil

	case *hql.RenameExpr:
		child, err := lower(n.Source, lc)
		if err != nil {
			return nil, err
		}
		return naive1("rename as "+n.Prefix, child, func(r *core.Relation) (*core.Relation, error) {
			return r.Rename(n.Prefix)
		}), nil

	case *hql.MaterializeExpr:
		child, err := lower(n.Source, lc)
		if err != nil {
			return nil, err
		}
		return naive1("materialize", child, core.Materialize), nil

	case *hql.BinaryExpr:
		return lowerBinary(n, lc)

	default:
		return nil, fmt.Errorf("engine: cannot plan %T", e)
	}
}

// lowerTimeslice picks between the interval index, a streaming restrict,
// and the naive operator for a static TIME-SLICE.
func lowerTimeslice(child node, L lifespan.Lifespan, lc *lowerCtx) node {
	if sc, ok := child.(*scanNode); ok {
		// One tree traversal prices the index and, only if it wins
		// (log n + k < n), materializes the candidate set.
		n := sc.rel.Cardinality()
		kmax := n - int(logN(n)) - 1
		if kmax <= 0 {
			// Relations of a couple of tuples can never beat a straight
			// restrict (the budget is already negative); don't traverse
			// an interval tree just to discard it.
			return &timeSliceNode{child: child, L: L, sel: 1}
		}
		if cand, ok := Indexes(sc.rel).Interval().OverlappingWithin(L, kmax); ok {
			return &indexTimeSliceNode{name: sc.name, rel: sc.rel, L: L, cand: cand}
		}
		// Index touches nearly everything; a plain scan restricts with
		// less overhead. The interval geometry still improves the output
		// estimate over the pessimistic "every tuple survives".
		return &timeSliceNode{child: child, L: L,
			sel: timesliceSelectivity(lc.relStats(sc.name, sc.rel), L)}
	}
	if child.scheme() != nil {
		return &timeSliceNode{child: child, L: L, sel: 1}
	}
	return naive1("time-slice at "+L.String(), child, func(r *core.Relation) (*core.Relation, error) {
		return core.TimesliceStatic(r, L)
	})
}

// lowerSelect plans SELECT IF/WHEN: index-pruned candidates where a
// required equality conjunct or a DURING lifespan permits, a streaming
// filter otherwise, the naive operator when the child's scheme is only
// known at execution time.
func lowerSelect(n *hql.SelectExpr, lc *lowerCtx) (node, error) {
	child, err := lower(n.Source, lc)
	if err != nil {
		return nil, err
	}
	cond, err := hql.BuildCond(n.Cond)
	if err != nil {
		return nil, err
	}
	L := lifespan.All()
	if n.During != nil {
		L, err = evalLS(n.During, lc)
		if err != nil {
			return nil, err
		}
	}
	cs := child.scheme()
	if cs == nil {
		return naiveSelect(n, cond, L, child), nil
	}
	if err := core.CondCheck(cond, cs); err != nil {
		return nil, err // surface via the naive evaluator's error path
	}
	sc, isScan := child.(*scanNode)
	// Selectivity: statistics-derived for base relations, comparator
	// defaults for derived inputs whose distribution the catalog cannot
	// see. Statistics come only from indexes the plan pays for anyway —
	// the key map, an already-built index, or the required-equality
	// probe index the index-select candidate is about to build.
	reqAttr, reqVal, hasReq := requiredEQ(n.Cond)
	var statsFor func(attr string) (AttrStats, bool)
	if rel, rname, ok := baseRel(child); ok {
		statsFor = func(attr string) (AttrStats, bool) {
			if !rel.Scheme().HasAttr(attr) {
				return AttrStats{}, false
			}
			// ∀ selects never prune candidates, so they build no probe
			// index either.
			willBuild := isScan && !(!n.When && n.ForAll) && hasReq && attr == reqAttr
			if willBuild {
				a, has := cs.Attr(attr)
				willBuild = has && a.Domain.Kind == reqVal.Kind()
			}
			return lc.attrStatsCheap(rname, rel, attr, willBuild)
		}
	}
	sel := condSelectivity(n.Cond, statsFor)
	filter := &filterNode{child: child, cond: cond, when: n.When, forAll: !n.When && n.ForAll, L: L, sel: sel}
	if !isScan || filter.forAll {
		// ∀ quantification keeps tuples whose scope is empty (vacuous
		// truth), so no candidate pruning is sound for it.
		return maybeParallel(filter, lc), nil
	}
	best := node(filter)
	// Candidate pruning via a required equality conjunct: key hash index
	// when the attribute is the relation's key, attribute index otherwise.
	if hasReq {
		if a, has := cs.Attr(reqAttr); has && a.Domain.Kind == reqVal.Kind() {
			cand, prune := eqCandidates(sc, reqAttr, reqVal)
			isel := &indexSelectNode{name: sc.name, rel: sc.rel, cond: cond, when: n.When, L: L, cand: cand, prune: prune}
			if isel.estimate().work < best.estimate().work {
				best = isel
			}
		}
	}
	// Candidate pruning via the lifespan interval index when DURING
	// bounds the scope: tuples missing L have empty scope and vanish.
	// One traversal; candidates materialize only under the current best
	// cost (index-select work is k+1, so the budget is best.work - 2).
	if n.During != nil {
		kmax := int(best.estimate().work) - 2
		if cand, ok := Indexes(sc.rel).Interval().OverlappingWithin(L, kmax); ok {
			best = &indexSelectNode{name: sc.name, rel: sc.rel, cond: cond, when: n.When, L: L,
				cand:  cand,
				prune: fmt.Sprintf("interval-index during %s", L)}
		}
	}
	return maybeParallel(best, lc), nil
}

// baseRel resolves a plan node to the base relation its tuples derive
// from, walking the tuple-preserving unary chain (time-slices, filters,
// projections keep the base's value distribution close enough for
// estimation).
func baseRel(n node) (*core.Relation, string, bool) {
	switch x := n.(type) {
	case *scanNode:
		return x.rel, x.name, true
	case *indexTimeSliceNode:
		return x.rel, x.name, true
	case *indexSelectNode:
		return x.rel, x.name, true
	case *timeSliceNode:
		return baseRel(x.child)
	case *filterNode:
		return baseRel(x.child)
	case *projectNode:
		return baseRel(x.child)
	case *parallelNode:
		return baseRel(x.child)
	}
	return nil, "", false
}

// eqCandidates resolves the candidate set for attr = v over a base
// relation: the byKey hash map when attr is the single-attribute key,
// the attribute hash index (constant bucket plus varying overflow)
// otherwise.
func eqCandidates(sc *scanNode, attr string, v value.Value) (cand []*core.Tuple, prune string) {
	key := sc.rel.Scheme().Key
	if len(key) == 1 && key[0] == attr {
		//lint:allow pindiscipline live probe feeds candidates only; Snapshot.resolve maps them back to the pinned version
		if t, ok := sc.rel.Lookup(v.String()); ok {
			cand = []*core.Tuple{t}
		}
		return cand, fmt.Sprintf("key-index %s.%s", sc.name, attr)
	}
	ix := Indexes(sc.rel).Attr(attr)
	cand = append(append(cand, ix.Probe(v)...), ix.Varying()...)
	return cand, ix.String()
}

// requiredEQ finds an `attr = constant` atom that is a required conjunct
// of the condition: the condition itself, or a conjunct of a (possibly
// nested) AND. Tuples failing such an atom cannot satisfy the whole
// condition, which is what makes index pruning on it sound.
func requiredEQ(c hql.CondExpr) (string, value.Value, bool) {
	if c.Pred != nil {
		p := c.Pred
		if p.Theta == value.EQ && p.OtherAttr == "" && p.Const.IsValid() {
			return p.Attr, p.Const, true
		}
		return "", value.Value{}, false
	}
	if c.Op == "AND" {
		for _, k := range c.Kids {
			if a, v, ok := requiredEQ(k); ok {
				return a, v, true
			}
		}
	}
	return "", value.Value{}, false
}

// naiveSelect wraps the naive SELECT operators over a materialized child.
func naiveSelect(n *hql.SelectExpr, cond core.Condition, L lifespan.Lifespan, child node) node {
	name := fmt.Sprintf("select-%s %s", selKind(n.When, !n.When && n.ForAll), cond)
	return naive1(name, child, func(r *core.Relation) (*core.Relation, error) {
		if n.When {
			return core.SelectWhenCond(r, cond, L)
		}
		q := core.Exists
		if n.ForAll {
			q = core.ForAll
		}
		return core.SelectIfCond(r, cond, q, L)
	})
}

// lowerBinary plans the set operators, product and the join family. The
// equijoin gets the index treatment; everything else wraps the naive
// operator over planned children. Output estimates use the algebraic
// bounds of the set operators and statistics-derived join selectivities
// in place of fixed guesses.
func lowerBinary(n *hql.BinaryExpr, lc *lowerCtx) (node, error) {
	left, err := lower(n.Left, lc)
	if err != nil {
		return nil, err
	}
	right, err := lower(n.Right, lc)
	if err != nil {
		return nil, err
	}
	if n.Op == "JOIN" && n.Theta == value.EQ {
		return maybeParallel(lowerEquiJoin(n, left, right, lc), lc), nil
	}
	le, re := left.estimate(), right.estimate()
	est := cost{rows: le.rows + re.rows, work: le.work + re.work + le.rows + re.rows}
	var apply func(l, r *core.Relation) (*core.Relation, error)
	name := strings.ToLower(n.Op)
	switch n.Op {
	case "UNION":
		apply = core.Union
	case "UNIONMERGE":
		apply = core.UnionMerge
	case "INTERSECT", "INTERSECTMERGE":
		// An intersection is bounded by its smaller operand, not the sum
		// — pricing it as l+r mis-ranked index joins against it.
		est.rows = minf(le.rows, re.rows)
		apply = core.Intersect
		if n.Op == "INTERSECTMERGE" {
			apply = core.IntersectMerge
		}
	case "MINUS", "MINUSMERGE":
		// A difference returns at most its left operand.
		est.rows = le.rows
		apply = core.Diff
		if n.Op == "MINUSMERGE" {
			apply = core.DiffMerge
		}
	case "TIMES":
		apply = core.Product
		est = cost{rows: le.rows * re.rows, work: le.work + re.work + le.rows*re.rows}
	case "JOIN":
		th := n.Theta
		name = fmt.Sprintf("theta-join %s %s %s", n.AttrA, th, n.AttrB)
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.ThetaJoin(l, r, n.AttrA, th, n.AttrB)
		}
		est = cost{rows: le.rows * re.rows * defaultCmpSel, work: le.work + re.work + le.rows*re.rows}
	case "OUTERJOIN":
		th := n.Theta
		name = fmt.Sprintf("outer-join %s %s %s", n.AttrA, th, n.AttrB)
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.ThetaJoinOuter(l, r, n.AttrA, th, n.AttrB)
		}
		sel := defaultCmpSel
		if th == value.EQ {
			sel = equiJoinSelectivity(n, left, right, lc)
		}
		est = cost{rows: le.rows * re.rows * sel, work: le.work + re.work + le.rows*re.rows}
	case "NATJOIN":
		name = "natural-join"
		apply = core.NaturalJoin
		// Natural joins here share key attributes, so output is bounded
		// by key containment: about the larger operand, not half the
		// cross product.
		est = cost{rows: maxf(le.rows, re.rows), work: le.work + re.work + le.rows*re.rows}
	case "TIMEJOIN":
		name = "time-join @" + n.AttrA
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.TimeJoin(l, r, n.AttrA)
		}
		est = cost{rows: le.rows * re.rows * defaultCmpSel, work: le.work + re.work + le.rows*re.rows}
	default:
		return nil, fmt.Errorf("engine: unknown operator %s", n.Op)
	}
	return &opNode{name: name, kids: []node{left, right}, est: est,
		apply: func(rels []*core.Relation) (*core.Relation, error) { return apply(rels[0], rels[1]) }}, nil
}

// equiJoinSelectivity estimates the fraction of the cross product an
// A = B equijoin keeps, using the classic containment assumption
// 1/max(distinct(A), distinct(B)) when either side's statistics are
// cheaply known (key maps or already-built indexes — estimation never
// forces an index build), and the comparator default otherwise.
func equiJoinSelectivity(n *hql.BinaryExpr, left, right node, lc *lowerCtx) float64 {
	d := 0.0
	if rel, name, ok := baseRel(left); ok && rel.Scheme().HasAttr(n.AttrA) {
		if as, ok := lc.attrStatsCheap(name, rel, n.AttrA, false); ok {
			d = maxf(d, float64(as.Distinct))
		}
	}
	if rel, name, ok := baseRel(right); ok && rel.Scheme().HasAttr(n.AttrB) {
		if as, ok := lc.attrStatsCheap(name, rel, n.AttrB, false); ok {
			d = maxf(d, float64(as.Distinct))
		}
	}
	if d < 1 {
		return defaultEqSel
	}
	return 1 / d
}

// lowerEquiJoin prices three physical forms of r1 JOIN r2 [A = B] — the
// naive nested loop, streaming the left side against an index on the
// right, and the mirror image — and picks the cheapest eligible one.
func lowerEquiJoin(n *hql.BinaryExpr, left, right node, lc *lowerCtx) node {
	le, re := left.estimate(), right.estimate()
	sel := equiJoinSelectivity(n, left, right, lc)
	best := node(&opNode{
		name: fmt.Sprintf("equi-join %s=%s", n.AttrA, n.AttrB),
		kids: []node{left, right},
		est:  cost{rows: le.rows * re.rows * sel, work: le.work + re.work + le.rows*re.rows},
		apply: func(rels []*core.Relation) (*core.Relation, error) {
			return core.EquiJoin(rels[0], rels[1], n.AttrA, n.AttrB)
		}})
	if j := indexJoin(left, n.AttrA, right, n.AttrB, true); j != nil && j.estimate().work < best.estimate().work {
		best = j
	}
	if j := indexJoin(right, n.AttrB, left, n.AttrA, false); j != nil && j.estimate().work < best.estimate().work {
		best = j
	}
	return best
}

// indexJoin builds an index-lookup-join candidate with stream as the
// streamed side and idx as the indexed side, or nil when the shape is
// ineligible (non-base indexed side, unknown stream scheme, shared
// attributes, mismatched value kinds).
func indexJoin(stream node, streamAttr string, idx node, idxAttr string, leftIsStream bool) *indexJoinNode {
	sc, ok := idx.(*scanNode)
	if !ok {
		return nil
	}
	ss := stream.scheme()
	is := sc.rel.Scheme()
	if ss == nil || !ss.DisjointAttrs(is) {
		return nil
	}
	sa, ok1 := ss.Attr(streamAttr)
	ia, ok2 := is.Attr(idxAttr)
	if !ok1 || !ok2 || sa.Domain.Kind != ia.Domain.Kind {
		return nil
	}
	ls, rs := ss, is
	if !leftIsStream {
		ls, rs = is, ss
	}
	joined, err := schema.ConcatScheme(ls, rs, ls.Name+"⋈"+rs.Name)
	if err != nil {
		return nil
	}
	j := &indexJoinNode{stream: stream, streamAttr: streamAttr,
		indexed: sc.rel, indexedName: sc.name, indexedAttr: idxAttr,
		rs: joined, leftIsStream: leftIsStream}
	key := is.Key
	if len(key) == 1 && key[0] == idxAttr {
		// The canonical-key map the relation already maintains is the
		// hash index; no separate structure needed. Execution probes it
		// through the query's snapshot, bounded by the pinned prefix.
		j.keyProbe = true
		j.avgBucket = 1
		j.probeDesc = fmt.Sprintf("key-index %s.%s (%d keys)", sc.name, idxAttr, sc.rel.Cardinality())
		return j
	}
	// Building the attribute index here is an O(n) scan, but the catalog
	// caches it per (relation, attribute) and maintains it incrementally:
	// every later query — either join orientation, or an index-select on
	// the same attribute — reuses it, so the build amortizes like any
	// index warm-up even when this particular candidate loses the costing.
	j.aix = Indexes(sc.rel).Attr(idxAttr)
	j.avgBucket = j.aix.AvgBucket()
	j.probeDesc = j.aix.String()
	return j
}

// naive1 wraps a unary naive operator over a planned child.
func naive1(name string, child node, apply func(*core.Relation) (*core.Relation, error)) *opNode {
	c := child.estimate()
	return &opNode{name: name, kids: []node{child},
		est:   cost{rows: c.rows, work: c.work + c.rows},
		apply: func(rels []*core.Relation) (*core.Relation, error) { return apply(rels[0]) }}
}

// keyKept reports whether a projection onto attrs retains every key
// attribute of s — the precondition for tuple-at-a-time projection.
func keyKept(s *schema.Scheme, attrs []string) bool {
	have := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		have[a] = true
	}
	for _, k := range s.Key {
		if !have[k] {
			return false
		}
	}
	return true
}

// evalLS evaluates a lifespan-valued expression at plan time, routing
// WHEN sub-queries through the planner so they benefit from indexes too
// (and recording their relation dependencies on the plan).
func evalLS(e *hql.LSExpr, lc *lowerCtx) (lifespan.Lifespan, error) {
	switch {
	case e.Literal != "":
		return lifespan.Parse(e.Literal)
	case e.When != nil:
		n, err := lower(e.When, lc)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		// Sub-queries run at plan time against live state; the resulting
		// lifespan is a plan-time constant, fenced by the plan's
		// (relation, version) deps like every other plan-time probe.
		r, err := n.exec(nil)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		return core.When(r), nil
	default:
		l, err := evalLS(e.Left, lc)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		r, err := evalLS(e.Right, lc)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		switch e.Op {
		case "UNION":
			return l.Union(r), nil
		case "INTERSECT":
			return l.Intersect(r), nil
		case "MINUS":
			return l.Minus(r), nil
		}
		return lifespan.Lifespan{}, fmt.Errorf("engine: unknown lifespan operator %s", e.Op)
	}
}
