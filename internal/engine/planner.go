package engine

import (
	"fmt"
	"strings"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// Plan is a compiled query: a physical operator tree plus the result
// sort of the original expression (relation, lifespan or snapshot).
type Plan struct {
	root node
	kind planKind
	at   chronon.Time // SNAPSHOT time
	text string
}

type planKind uint8

const (
	planRelation planKind = iota
	planWhen
	planSnapshot
)

// PlanQuery lowers a parsed HQL expression into a physical plan. An
// error means the planner cannot (or should not) handle the expression;
// callers fall back to the naive evaluator, which either runs it or
// reports the definitive semantic error.
func PlanQuery(e hql.Expr, env hql.Env) (*Plan, error) {
	p := &Plan{text: e.String()}
	var src hql.Expr
	switch n := e.(type) {
	case *hql.WhenExpr:
		p.kind, src = planWhen, n.Source
	case *hql.SnapshotExpr:
		p.kind, src = planSnapshot, n.Source
		p.at = chronon.Time(n.At)
	default:
		p.kind, src = planRelation, e
	}
	root, err := lower(src, env)
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

// Execute runs the plan and wraps the result in the query's sort.
func (p *Plan) Execute() (hql.Result, error) {
	r, err := p.root.exec()
	if err != nil {
		return hql.Result{}, err
	}
	switch p.kind {
	case planWhen:
		ls := core.When(r)
		return hql.Result{Lifespan: &ls}, nil
	case planSnapshot:
		snap, err := core.Snapshot(r, p.at)
		if err != nil {
			return hql.Result{}, err
		}
		return hql.Result{Snapshot: snap}, nil
	default:
		return hql.Result{Relation: r}, nil
	}
}

// Explain renders the physical plan, one operator per line with cost
// estimates, for the CLI's EXPLAIN verb.
func (p *Plan) Explain() string {
	var b strings.Builder
	switch p.kind {
	case planWhen:
		b.WriteString("when (lifespan of result)\n")
	case planSnapshot:
		fmt.Fprintf(&b, "snapshot at %s\n", p.at)
	}
	depth := 0
	if p.kind != planRelation {
		depth = 1
	}
	explain(p.root, &b, depth)
	return strings.TrimRight(b.String(), "\n")
}

// lower translates a relation-valued expression into a plan node,
// choosing index-backed operators by cost where they apply and wrapping
// the naive algebra otherwise.
func lower(e hql.Expr, env hql.Env) (node, error) {
	switch n := e.(type) {
	case *hql.RelName:
		r, ok := env.Get(n.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", n.Name)
		}
		return &scanNode{name: n.Name, rel: r}, nil

	case *hql.TimesliceExpr:
		child, err := lower(n.Source, env)
		if err != nil {
			return nil, err
		}
		if n.By != "" {
			return naive1("dynamic-time-slice by "+n.By, child, func(r *core.Relation) (*core.Relation, error) {
				return core.TimesliceDynamic(r, n.By)
			}), nil
		}
		L, err := evalLS(n.At, env)
		if err != nil {
			return nil, err
		}
		return lowerTimeslice(child, L), nil

	case *hql.SelectExpr:
		return lowerSelect(n, env)

	case *hql.ProjectExpr:
		child, err := lower(n.Source, env)
		if err != nil {
			return nil, err
		}
		if cs := child.scheme(); cs != nil && keyKept(cs, n.Attrs) {
			rs, err := schema.ProjectScheme(cs, n.Attrs, cs.Name)
			if err == nil {
				return &projectNode{child: child, attrs: n.Attrs, rs: rs}, nil
			}
		}
		return naive1("project "+strings.Join(n.Attrs, ", "), child, func(r *core.Relation) (*core.Relation, error) {
			return core.Project(r, n.Attrs...)
		}), nil

	case *hql.RenameExpr:
		child, err := lower(n.Source, env)
		if err != nil {
			return nil, err
		}
		return naive1("rename as "+n.Prefix, child, func(r *core.Relation) (*core.Relation, error) {
			return r.Rename(n.Prefix)
		}), nil

	case *hql.MaterializeExpr:
		child, err := lower(n.Source, env)
		if err != nil {
			return nil, err
		}
		return naive1("materialize", child, core.Materialize), nil

	case *hql.BinaryExpr:
		return lowerBinary(n, env)

	default:
		return nil, fmt.Errorf("engine: cannot plan %T", e)
	}
}

// lowerTimeslice picks between the interval index, a streaming restrict,
// and the naive operator for a static TIME-SLICE.
func lowerTimeslice(child node, L lifespan.Lifespan) node {
	if sc, ok := child.(*scanNode); ok {
		// One tree traversal prices the index and, only if it wins
		// (log n + k < n), materializes the candidate set.
		n := sc.rel.Cardinality()
		kmax := n - int(logN(n)) - 1
		if cand, ok := Indexes(sc.rel).Interval().OverlappingWithin(L, kmax); ok {
			return &indexTimeSliceNode{name: sc.name, rel: sc.rel, L: L, cand: cand}
		}
		// Index touches nearly everything; a plain scan restricts with
		// less overhead.
		return &timeSliceNode{child: child, L: L}
	}
	if child.scheme() != nil {
		return &timeSliceNode{child: child, L: L}
	}
	return naive1("time-slice at "+L.String(), child, func(r *core.Relation) (*core.Relation, error) {
		return core.TimesliceStatic(r, L)
	})
}

// lowerSelect plans SELECT IF/WHEN: index-pruned candidates where a
// required equality conjunct or a DURING lifespan permits, a streaming
// filter otherwise, the naive operator when the child's scheme is only
// known at execution time.
func lowerSelect(n *hql.SelectExpr, env hql.Env) (node, error) {
	child, err := lower(n.Source, env)
	if err != nil {
		return nil, err
	}
	cond, err := hql.BuildCond(n.Cond)
	if err != nil {
		return nil, err
	}
	L := lifespan.All()
	if n.During != nil {
		L, err = evalLS(n.During, env)
		if err != nil {
			return nil, err
		}
	}
	cs := child.scheme()
	if cs == nil {
		return naiveSelect(n, cond, L, child), nil
	}
	if err := core.CondCheck(cond, cs); err != nil {
		return nil, err // surface via the naive evaluator's error path
	}
	filter := &filterNode{child: child, cond: cond, when: n.When, forAll: !n.When && n.ForAll, L: L}
	sc, isScan := child.(*scanNode)
	if !isScan || filter.forAll {
		// ∀ quantification keeps tuples whose scope is empty (vacuous
		// truth), so no candidate pruning is sound for it.
		return filter, nil
	}
	best := node(filter)
	// Candidate pruning via a required equality conjunct: key hash index
	// when the attribute is the relation's key, attribute index otherwise.
	if attr, v, ok := requiredEQ(n.Cond); ok {
		if a, has := cs.Attr(attr); has && a.Domain.Kind == v.Kind() {
			cand, prune := eqCandidates(sc, attr, v)
			isel := &indexSelectNode{name: sc.name, rel: sc.rel, cond: cond, when: n.When, L: L, cand: cand, prune: prune}
			if isel.estimate().work < best.estimate().work {
				best = isel
			}
		}
	}
	// Candidate pruning via the lifespan interval index when DURING
	// bounds the scope: tuples missing L have empty scope and vanish.
	// One traversal; candidates materialize only under the current best
	// cost (index-select work is k+1, so the budget is best.work - 2).
	if n.During != nil {
		kmax := int(best.estimate().work) - 2
		if cand, ok := Indexes(sc.rel).Interval().OverlappingWithin(L, kmax); ok {
			best = &indexSelectNode{name: sc.name, rel: sc.rel, cond: cond, when: n.When, L: L,
				cand:  cand,
				prune: fmt.Sprintf("interval-index during %s", L)}
		}
	}
	return best, nil
}

// eqCandidates resolves the candidate set for attr = v over a base
// relation: the byKey hash map when attr is the single-attribute key,
// the attribute hash index (constant bucket plus varying overflow)
// otherwise.
func eqCandidates(sc *scanNode, attr string, v value.Value) (cand []*core.Tuple, prune string) {
	key := sc.rel.Scheme().Key
	if len(key) == 1 && key[0] == attr {
		if t, ok := sc.rel.Lookup(v.String()); ok {
			cand = []*core.Tuple{t}
		}
		return cand, fmt.Sprintf("key-index %s.%s", sc.name, attr)
	}
	ix := Indexes(sc.rel).Attr(attr)
	cand = append(append(cand, ix.Probe(v)...), ix.Varying()...)
	return cand, ix.String()
}

// requiredEQ finds an `attr = constant` atom that is a required conjunct
// of the condition: the condition itself, or a conjunct of a (possibly
// nested) AND. Tuples failing such an atom cannot satisfy the whole
// condition, which is what makes index pruning on it sound.
func requiredEQ(c hql.CondExpr) (string, value.Value, bool) {
	if c.Pred != nil {
		p := c.Pred
		if p.Theta == value.EQ && p.OtherAttr == "" && p.Const.IsValid() {
			return p.Attr, p.Const, true
		}
		return "", value.Value{}, false
	}
	if c.Op == "AND" {
		for _, k := range c.Kids {
			if a, v, ok := requiredEQ(k); ok {
				return a, v, true
			}
		}
	}
	return "", value.Value{}, false
}

// naiveSelect wraps the naive SELECT operators over a materialized child.
func naiveSelect(n *hql.SelectExpr, cond core.Condition, L lifespan.Lifespan, child node) node {
	name := fmt.Sprintf("select-%s %s", selKind(n.When, !n.When && n.ForAll), cond)
	return naive1(name, child, func(r *core.Relation) (*core.Relation, error) {
		if n.When {
			return core.SelectWhenCond(r, cond, L)
		}
		q := core.Exists
		if n.ForAll {
			q = core.ForAll
		}
		return core.SelectIfCond(r, cond, q, L)
	})
}

// lowerBinary plans the set operators, product and the join family. The
// equijoin gets the index treatment; everything else wraps the naive
// operator over planned children.
func lowerBinary(n *hql.BinaryExpr, env hql.Env) (node, error) {
	left, err := lower(n.Left, env)
	if err != nil {
		return nil, err
	}
	right, err := lower(n.Right, env)
	if err != nil {
		return nil, err
	}
	if n.Op == "JOIN" && n.Theta == value.EQ {
		return lowerEquiJoin(n, left, right), nil
	}
	lc, rc := left.estimate(), right.estimate()
	est := cost{rows: lc.rows + rc.rows, work: lc.work + rc.work + lc.rows + rc.rows}
	var apply func(l, r *core.Relation) (*core.Relation, error)
	name := strings.ToLower(n.Op)
	switch n.Op {
	case "UNION":
		apply = core.Union
	case "UNIONMERGE":
		apply = core.UnionMerge
	case "INTERSECT":
		apply = core.Intersect
	case "INTERSECTMERGE":
		apply = core.IntersectMerge
	case "MINUS":
		apply = core.Diff
	case "MINUSMERGE":
		apply = core.DiffMerge
	case "TIMES":
		apply = core.Product
		est = cost{rows: lc.rows * rc.rows, work: lc.work + rc.work + lc.rows*rc.rows}
	case "JOIN":
		th := n.Theta
		name = fmt.Sprintf("theta-join %s %s %s", n.AttrA, th, n.AttrB)
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.ThetaJoin(l, r, n.AttrA, th, n.AttrB)
		}
		est = cost{rows: lc.rows * rc.rows / 2, work: lc.work + rc.work + lc.rows*rc.rows}
	case "OUTERJOIN":
		th := n.Theta
		name = fmt.Sprintf("outer-join %s %s %s", n.AttrA, th, n.AttrB)
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.ThetaJoinOuter(l, r, n.AttrA, th, n.AttrB)
		}
		est = cost{rows: lc.rows * rc.rows / 2, work: lc.work + rc.work + lc.rows*rc.rows}
	case "NATJOIN":
		name = "natural-join"
		apply = core.NaturalJoin
		est = cost{rows: lc.rows * rc.rows / 2, work: lc.work + rc.work + lc.rows*rc.rows}
	case "TIMEJOIN":
		name = "time-join @" + n.AttrA
		apply = func(l, r *core.Relation) (*core.Relation, error) {
			return core.TimeJoin(l, r, n.AttrA)
		}
		est = cost{rows: lc.rows * rc.rows / 2, work: lc.work + rc.work + lc.rows*rc.rows}
	default:
		return nil, fmt.Errorf("engine: unknown operator %s", n.Op)
	}
	return &opNode{name: name, kids: []node{left, right}, est: est,
		apply: func(rels []*core.Relation) (*core.Relation, error) { return apply(rels[0], rels[1]) }}, nil
}

// lowerEquiJoin prices three physical forms of r1 JOIN r2 [A = B] — the
// naive nested loop, streaming the left side against an index on the
// right, and the mirror image — and picks the cheapest eligible one.
func lowerEquiJoin(n *hql.BinaryExpr, left, right node) node {
	lc, rc := left.estimate(), right.estimate()
	best := node(&opNode{
		name: fmt.Sprintf("equi-join %s=%s", n.AttrA, n.AttrB),
		kids: []node{left, right},
		est:  cost{rows: lc.rows * rc.rows / 4, work: lc.work + rc.work + lc.rows*rc.rows},
		apply: func(rels []*core.Relation) (*core.Relation, error) {
			return core.EquiJoin(rels[0], rels[1], n.AttrA, n.AttrB)
		}})
	if j := indexJoin(left, n.AttrA, right, n.AttrB, true); j != nil && j.estimate().work < best.estimate().work {
		best = j
	}
	if j := indexJoin(right, n.AttrB, left, n.AttrA, false); j != nil && j.estimate().work < best.estimate().work {
		best = j
	}
	return best
}

// indexJoin builds an index-lookup-join candidate with stream as the
// streamed side and idx as the indexed side, or nil when the shape is
// ineligible (non-base indexed side, unknown stream scheme, shared
// attributes, mismatched value kinds).
func indexJoin(stream node, streamAttr string, idx node, idxAttr string, leftIsStream bool) *indexJoinNode {
	sc, ok := idx.(*scanNode)
	if !ok {
		return nil
	}
	ss := stream.scheme()
	is := sc.rel.Scheme()
	if ss == nil || !ss.DisjointAttrs(is) {
		return nil
	}
	sa, ok1 := ss.Attr(streamAttr)
	ia, ok2 := is.Attr(idxAttr)
	if !ok1 || !ok2 || sa.Domain.Kind != ia.Domain.Kind {
		return nil
	}
	ls, rs := ss, is
	if !leftIsStream {
		ls, rs = is, ss
	}
	joined, err := schema.ConcatScheme(ls, rs, ls.Name+"⋈"+rs.Name)
	if err != nil {
		return nil
	}
	j := &indexJoinNode{stream: stream, streamAttr: streamAttr,
		indexed: sc.rel, indexedName: sc.name, indexedAttr: idxAttr,
		rs: joined, leftIsStream: leftIsStream}
	key := is.Key
	if len(key) == 1 && key[0] == idxAttr {
		// The canonical-key map the relation already maintains is the
		// hash index; no separate structure needed.
		rel := sc.rel
		j.probe = func(v value.Value) []*core.Tuple {
			if t, ok := rel.Lookup(v.String()); ok {
				return []*core.Tuple{t}
			}
			return nil
		}
		j.avgBucket = 1
		j.probeDesc = fmt.Sprintf("key-index %s.%s (%d keys)", sc.name, idxAttr, rel.Cardinality())
		return j
	}
	// Building the attribute index here is an O(n) scan, but the catalog
	// caches it per (relation, attribute, version): every later query —
	// either join orientation, or an index-select on the same attribute —
	// reuses it, so the build amortizes like any index warm-up even when
	// this particular candidate loses the costing.
	aix := Indexes(sc.rel).Attr(idxAttr)
	j.probe = aix.Probe
	j.varying = aix.Varying()
	j.avgBucket = aix.AvgBucket()
	j.probeDesc = aix.String()
	return j
}

// naive1 wraps a unary naive operator over a planned child.
func naive1(name string, child node, apply func(*core.Relation) (*core.Relation, error)) *opNode {
	c := child.estimate()
	return &opNode{name: name, kids: []node{child},
		est:   cost{rows: c.rows, work: c.work + c.rows},
		apply: func(rels []*core.Relation) (*core.Relation, error) { return apply(rels[0]) }}
}

// keyKept reports whether a projection onto attrs retains every key
// attribute of s — the precondition for tuple-at-a-time projection.
func keyKept(s *schema.Scheme, attrs []string) bool {
	have := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		have[a] = true
	}
	for _, k := range s.Key {
		if !have[k] {
			return false
		}
	}
	return true
}

// evalLS evaluates a lifespan-valued expression at plan time, routing
// WHEN sub-queries through the planner so they benefit from indexes too.
func evalLS(e *hql.LSExpr, env hql.Env) (lifespan.Lifespan, error) {
	switch {
	case e.Literal != "":
		return lifespan.Parse(e.Literal)
	case e.When != nil:
		n, err := lower(e.When, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		r, err := n.exec()
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		return core.When(r), nil
	default:
		l, err := evalLS(e.Left, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		r, err := evalLS(e.Right, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		switch e.Op {
		case "UNION":
			return l.Union(r), nil
		case "INTERSECT":
			return l.Intersect(r), nil
		case "MINUS":
			return l.Minus(r), nil
		}
		return lifespan.Lifespan{}, fmt.Errorf("engine: unknown lifespan operator %s", e.Op)
	}
}
