package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// empTuple builds a fresh personnel tuple on r's scheme.
func empTuple(rs *schema.Scheme, name string, lo, hi int, sal int64, dept string) *core.Tuple {
	clo, chi := chronon.Time(lo), chronon.Time(hi)
	return core.NewTupleBuilder(rs, lifespan.Interval(clo, chi)).
		Key("NAME", value.String_(name)).
		Set("SAL", clo, chi, value.Int(sal)).
		Set("DEPT", clo, chi, value.String_(dept)).
		MustBuild()
}

// TestIncrementalIndexMaintenance verifies the tentpole's third leg:
// single-tuple inserts and merges are absorbed into the built indexes
// via change notifications — no full rebuilds — and the maintained
// indexes keep answering exactly like a fresh scan.
func TestIncrementalIndexMaintenance(t *testing.T) {
	r := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 30, HistoryLen: 100, ChangeEvery: 10, ReincarnationProb: 0.3, Seed: 3,
	})
	x := Indexes(r)
	x.Interval()
	x.Attr("NAME")
	x.Attr("DEPT")
	ib0, ab0, inc0, rs0 := IndexMetrics()

	// Absorb 20 inserts and 5 merges.
	for i := 0; i < 20; i++ {
		if err := r.Insert(empTuple(r.Scheme(), fmt.Sprintf("new%04d", i), 5*i%90, 5*i%90+4, 30000, "Growth")); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		// Extend the fresh tuples over disjoint chronons.
		base := 5 * i % 90
		if err := r.InsertMerging(empTuple(r.Scheme(), fmt.Sprintf("new%04d", i), base+20, base+24, 31000, "Growth")); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
	}

	ib1, ab1, inc1, rs1 := IndexMetrics()
	if ib1 != ib0 || ab1 != ab0 {
		t.Fatalf("full rebuilds during single-tuple maintenance: interval %d→%d, attr %d→%d", ib0, ib1, ab0, ab1)
	}
	if rs1 != rs0 {
		t.Fatalf("resyncs during sequential maintenance: %d→%d", rs0, rs1)
	}
	if inc1-inc0 != 25 {
		t.Fatalf("incremental ops = %d, want 25", inc1-inc0)
	}

	// The maintained interval index answers exactly like a fresh scan.
	for _, L := range []lifespan.Lifespan{
		lifespan.Interval(0, 9), lifespan.Interval(40, 60), lifespan.MustParse("{[10,14],[80,99]}"),
	} {
		want := naiveOverlapping(r, L)
		got := x.Interval().Overlapping(L)
		if len(got) != len(want) {
			t.Fatalf("L=%s: maintained index found %d, scan %d", L, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("L=%s: candidate %d differs", L, i)
			}
		}
	}
	// The maintained attribute index sees the new department...
	if got := len(x.Attr("DEPT").Probe(value.String_("Growth"))) + len(x.Attr("DEPT").Varying()); got < 20 {
		t.Fatalf("DEPT index sees %d Growth candidates, want ≥ 20", got)
	}
	// ...and the merged tuples replaced their pre-merge versions.
	nt, ok := r.Lookup(`"new0000"`)
	if !ok {
		t.Fatal("new0000 missing")
	}
	found := false
	for _, c := range x.Attr("NAME").Probe(value.String_("new0000")) {
		if c == nt {
			found = true
		}
	}
	if !found {
		t.Fatal("NAME index still serves the pre-merge tuple")
	}
	// Statistics track the maintained indexes.
	if s := x.Stats(); s.Rows != r.Cardinality() {
		t.Fatalf("stats rows = %d, want %d", s.Rows, r.Cardinality())
	}
}

// TestIntervalOverlayCompaction drives enough inserts through the
// interval index to trip the overlay threshold and checks answers stay
// exact across the compaction.
func TestIntervalOverlayCompaction(t *testing.T) {
	r := workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 10, HistoryLen: 200, ChangeEvery: 10, ReincarnationProb: 0, Seed: 5,
	})
	x := Indexes(r)
	x.Interval()
	ib0, _, _, _ := IndexMetrics()
	for i := 0; i < 200; i++ {
		if err := r.Insert(empTuple(r.Scheme(), fmt.Sprintf("c%04d", i), i%190, i%190+5, 1000, "X")); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	ib1, _, _, _ := IndexMetrics()
	if ib1 == ib0 {
		t.Fatal("overlay never compacted across 200 inserts")
	}
	L := lifespan.Interval(50, 70)
	want := naiveOverlapping(r, L)
	got := x.Interval().Overlapping(L)
	if len(got) != len(want) {
		t.Fatalf("after compaction index found %d, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after compaction candidate %d differs", i)
		}
	}
}

// TestPlanCache covers the hit path (textual and structural repeats),
// dependency invalidation by inserts, and environment swaps.
func TestPlanCache(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	st := testStore(t, 77)
	q := `SELECT WHEN SAL > 30000 DURING {[5,60]} FROM EMP`

	res1, err := Run(q, st)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	h0, m0, n0 := PlanCacheStats()
	if m0 == 0 || n0 == 0 {
		t.Fatalf("cold run recorded no miss/entry (hits=%d misses=%d entries=%d)", h0, m0, n0)
	}

	res2, err := Run(q, st)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	h1, m1, _ := PlanCacheStats()
	if h1 != h0+1 || m1 != m0 {
		t.Fatalf("warm run: hits %d→%d misses %d→%d, want one new hit, no new miss", h0, h1, m0, m1)
	}
	if !res1.Relation.Equal(res2.Relation) {
		t.Fatal("cached result differs from cold result")
	}

	// A respaced spelling normalizes to the same source key.
	if _, err := Run("SELECT   WHEN SAL > 30000	DURING {[5,60]}  FROM EMP", st); err != nil {
		t.Fatalf("respaced run: %v", err)
	}
	h2, _, _ := PlanCacheStats()
	if h2 != h1+1 {
		t.Fatalf("respaced spelling missed the cache (hits %d→%d)", h1, h2)
	}

	// An insert into EMP moves its version: the fence must force a
	// replan, and the replanned result must see the new tuple.
	emp, _ := st.Get("EMP")
	if err := emp.Insert(empTuple(emp.Scheme(), "cachebuster", 10, 20, 99000, "Cache")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	res3, err := Run(q, st)
	if err != nil {
		t.Fatalf("post-insert run: %v", err)
	}
	_, m3, _ := PlanCacheStats()
	if m3 == m1 {
		t.Fatal("stale plan served after dependency version moved")
	}
	e, _ := hql.Parse(q)
	naive, err := hql.EvalNaive(e, st)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if !res3.Relation.Equal(naive.Relation) {
		t.Fatal("post-insert cached path diverges from naive evaluator")
	}

	// A different store under the same relation names must not be served
	// the first store's plan (relation pointers differ).
	st2 := testStore(t, 78)
	res4, err := Run(q, st2)
	if err != nil {
		t.Fatalf("second store: %v", err)
	}
	naive2, err := hql.EvalNaive(e, st2)
	if err != nil {
		t.Fatalf("naive on second store: %v", err)
	}
	if !res4.Relation.Equal(naive2.Relation) {
		t.Fatal("swapped environment served a stale cached plan")
	}
}

// TestPlanCacheSweepsStaleEntries pins the retention story: once a
// pinned relation mutates, the invalidated entry is purged on the next
// compile instead of lingering until its exact text is looked up again.
func TestPlanCacheSweepsStaleEntries(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	st := testStore(t, 41)
	if _, err := Run(`TIMESLICE EMP AT {[0,9]}`, st); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, _, n := PlanCacheStats(); n != 1 {
		t.Fatalf("entries after first query = %d, want 1", n)
	}
	emp, _ := st.Get("EMP")
	if err := emp.Insert(empTuple(emp.Scheme(), "sweeper", 0, 5, 1000, "X")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Compiling an unrelated query sweeps the now-unreachable entry.
	if _, err := Run(`SELECT WHEN GRP = 'A' FROM REF`, st); err != nil {
		t.Fatalf("second query: %v", err)
	}
	if _, _, n := PlanCacheStats(); n != 1 {
		t.Fatalf("entries after sweep = %d, want 1 (stale entry retained)", n)
	}
}

// TestExplainStatsAndCacheStatus asserts the EXPLAIN surface of the new
// machinery: the statistics block and the plan-cache status line.
func TestExplainStatsAndCacheStatus(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	st := testStore(t, 12)
	q := `SELECT WHEN DEPT = 'Toys' FROM EMP`
	out, err := Explain(q, st, false)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	for _, want := range []string{"statistics:", "EMP.DEPT: distinct=", "plan-cache: miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain lacks %q:\n%s", want, out)
		}
	}
	if _, err := Run(q, st); err != nil {
		t.Fatalf("run: %v", err)
	}
	out, err = Explain(q, st, false)
	if err != nil {
		t.Fatalf("explain after run: %v", err)
	}
	if !strings.Contains(out, "plan-cache: hit") {
		t.Errorf("explain after run should report a cache hit:\n%s", out)
	}
}

// TestTinyRelationTimeslice pins the kmax short-circuit: a relation of
// ≤2 tuples goes straight to the streaming restrict instead of
// traversing an interval tree it can never use.
func TestTinyRelationTimeslice(t *testing.T) {
	rs := schema.MustNew("TINY", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: lifespan.Interval(0, 99)},
	)
	r := core.NewRelation(rs)
	for i := 0; i < 2; i++ {
		r.MustInsert(core.NewTupleBuilder(rs, lifespan.Interval(chronon.Time(10*i), chronon.Time(10*i+5))).
			Key("NAME", value.String_(fmt.Sprintf("t%d", i))).MustBuild())
	}
	st := storage.NewStore()
	st.Put(r)
	out, err := Explain(`TIMESLICE TINY AT {[0,5]}`, st, false)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if strings.Contains(out, "index-time-slice") {
		t.Fatalf("tiny relation took the interval index:\n%s", out)
	}
	if !strings.Contains(out, "time-slice at") {
		t.Fatalf("tiny relation should stream-restrict:\n%s", out)
	}
	compareQuery(t, st, `TIMESLICE TINY AT {[0,5]}`)
}

// TestSetOpEstimateBounds pins the satellite fix: INTERSECT-family
// output is bounded by the smaller operand and MINUS-family by the left
// operand — not priced as l + r.
func TestSetOpEstimateBounds(t *testing.T) {
	st := testStore(t, 21)
	emp, _ := st.Get("EMP")
	n := emp.Cardinality()
	for _, c := range []struct{ q, want string }{
		{`EMP INTERSECTMERGE EMP`, fmt.Sprintf("intersectmerge (naive)  [rows≈%d ", n)},
		{`EMP MINUSMERGE EMP`, fmt.Sprintf("minusmerge (naive)  [rows≈%d ", n)},
	} {
		out, err := Explain(c.q, st, false)
		if err != nil {
			t.Fatalf("explain %q: %v", c.q, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("explain %q:\n%s\nwant substring %q", c.q, out, c.want)
		}
	}
}

// TestEngineConcurrentReadWrite interleaves engine queries with Insert
// and InsertMerging on the relations they scan — the ISSUE's -race
// satellite: the lock story plus incremental index maintenance under
// real contention, with a final equivalence sweep once writers settle.
func TestEngineConcurrentReadWrite(t *testing.T) {
	ResetPlanCache()
	defer ResetPlanCache()
	st := testStore(t, 31)
	emp, _ := st.Get("EMP")
	// Warm every index class so maintenance (not first builds) is on the
	// hot path.
	BuildIndexes(emp)
	Indexes(emp).Attr("DEPT")

	queries := []string{
		`TIMESLICE EMP AT {[10,30]}`,
		`SELECT WHEN NAME = 'emp0003' FROM EMP`,
		`SELECT WHEN DEPT = 'Toys' DURING {[5,60]} FROM EMP`,
		`EMP JOIN REF ON NAME = RNAME`,
		`SELECT IF SAL > 25000 EXISTS FROM EMP`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := Run(queries[(g+i)%len(queries)], st); err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := emp.Insert(empTuple(emp.Scheme(), fmt.Sprintf("live%04d", i), i%190, i%190+6, 27000, "Live")); err != nil {
				errs <- fmt.Errorf("writer insert: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			// Re-merge disjoint extensions of this goroutine's own keys.
			name := fmt.Sprintf("merge%04d", i%5)
			lo := 7 * i % 150
			if err := emp.InsertMerging(empTuple(emp.Scheme(), name, lo, lo+2, 31000, "Live")); err != nil {
				errs <- fmt.Errorf("writer merge: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Once quiescent, the maintained indexes and cached plans must agree
	// with the naive evaluator byte-for-byte.
	for _, q := range []string{
		`TIMESLICE EMP AT {[10,30]}`,
		`SELECT WHEN DEPT = 'Live' FROM EMP`,
		`SELECT WHEN NAME = 'live0007' FROM EMP`,
		`EMP JOIN REF ON NAME = RNAME`,
	} {
		compareQuery(t, st, q)
	}
}
