package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// profiler collects per-operator actuals for EXPLAIN ANALYZE: rows
// produced, wall time, and index lookups. It is attached to a single
// query's Snapshot (Snapshot.prof), so normal execution — where prof
// is nil — pays exactly one nil check per operator open/exec and zero
// per-tuple cost. A profiler is owned by one executing query and is
// not safe for concurrent use, which matches how snapshots are used.
type profiler struct {
	ops map[node]*opStats
}

// opStats is one operator's measured execution. rows and wall are
// written only by the query goroutine (profIter pulls, profExec
// assignment); lookups is atomic because a parallel join's workers
// probe — and count — concurrently. par carries the parallel
// executor's partition accounting, written once after the fan-in.
type opStats struct {
	rows    int64
	wall    time.Duration
	lookups atomic.Int64
	par     *parStats
}

// parStats is one parallel operator's partition accounting: the degree
// actually used (helpers + the query goroutine), total partitions, and
// how many were scanned versus pruned by the lifespan-range window.
type parStats struct {
	degree  int
	parts   int
	scanned int
	pruned  int
}

// untouched reports whether the entry was pre-created (so parallel
// workers can count probes without racing the stats map) but never
// actually measured — the renderer shows such nodes as not executed.
func (st *opStats) untouched() bool {
	return st.rows == 0 && st.wall == 0 && st.lookups.Load() == 0 && st.par == nil
}

func newProfiler() *profiler {
	return &profiler{ops: make(map[node]*opStats)}
}

func (pf *profiler) stats(n node) *opStats {
	st, ok := pf.ops[n]
	if !ok {
		st = &opStats{}
		pf.ops[n] = st
	}
	return st
}

// profIter wraps an operator's streaming iterator with per-pull timing
// and row counting. Wall time accumulates (+=) across pulls; a parent
// that streams its child therefore observes a wall time that includes
// every child pull, which is what makes self time (wall − Σ child
// wall) well defined at render time. Every node's iterator also passes
// through cancelIter here, so cancellation is checked at iterator
// batch boundaries on profiled and unprofiled executions alike.
func (s *Snapshot) profIter(n node, it iterator) iterator {
	it = s.cancelIter(it)
	if s == nil || s.prof == nil {
		return it
	}
	st := s.prof.stats(n)
	return func() (*core.Tuple, error) {
		t0 := time.Now()
		t, err := it()
		st.wall += time.Since(t0)
		if t != nil {
			st.rows++
		}
		return t, err
	}
}

// profExec wraps an operator's materializing execution. It assigns
// (not accumulates) wall and rows: exec is the outermost, complete
// measurement of the node, and when a node's own open-path iterator
// also ran inside f (exec via materialize), the assignment supersedes
// the partial per-pull accumulation instead of double counting it.
func (s *Snapshot) profExec(n node, f func() (*core.Relation, error)) (*core.Relation, error) {
	if err := s.checkCancel(); err != nil {
		return nil, err
	}
	if s == nil || s.prof == nil {
		return f()
	}
	st := s.prof.stats(n)
	t0 := time.Now()
	r, err := f()
	st.wall = time.Since(t0)
	st.rows = 0
	if r != nil {
		st.rows = int64(r.Cardinality())
	}
	return r, err
}

// profLookup counts one index probe against the node's indexed side.
// Safe from parallel workers: stats entries are created by the query
// goroutine before workers start (profExec/open precede the fan-out),
// and the count itself is atomic.
func (s *Snapshot) profLookup(n node) {
	if s != nil && s.prof != nil {
		s.prof.stats(n).lookups.Add(1)
	}
}
