package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/hrdmerr"
	"repro/internal/storage"
)

// DB is the explicit handle to one historical database: a storage.Store
// plus shared lifecycle (checkpoint, close). It replaces the old idiom
// of passing a bare *storage.Store (or any hql.Env) around cmd/ code:
// every entry point — CLI shell, benchmark harness, server — opens a DB
// once and creates one Session per client/loop from it. The process-
// wide pieces (planner hook, plan cache, metrics registry) stay shared
// underneath, which is exactly what a multi-session server wants: two
// sessions issuing the same query share one cached plan.
//
// DB methods are safe for concurrent use.
type DB struct {
	store *storage.Store
	// workers, when ≥ 1, is the degree of parallelism every session of
	// this DB executes parallel plan operators with; 0 defers to the
	// process default (SetDefaultWorkers / GOMAXPROCS).
	workers int

	mu     sync.Mutex
	closed bool
}

// DBOptions configures OpenDBOptions. The zero value matches OpenDB.
type DBOptions struct {
	// Workers is the degree of parallelism for this DB's queries:
	// 1 forces sequential execution, 0 defers to the process default.
	Workers int
}

// OpenDB wraps an existing store — in-memory or durable — as a DB.
func OpenDB(st *storage.Store) *DB {
	return &DB{store: st}
}

// OpenDBOptions is OpenDB with explicit options — the `-workers` flag
// of the CLI, server and bench harness lands here.
func OpenDBOptions(st *storage.Store, o DBOptions) *DB {
	w := o.Workers
	if w < 0 {
		w = 0
	}
	return &DB{store: st, workers: w}
}

// Store exposes the underlying store for administrative paths (save,
// merge, text dump); query and mutation traffic goes through Sessions.
func (db *DB) Store() *storage.Store { return db.store }

// NewSession returns a fresh session over this DB. Sessions are cheap;
// create one per connection or per worker goroutine.
func (db *DB) NewSession() *Session {
	return &Session{db: db}
}

// Checkpoint makes the durable image current (a no-op for in-memory
// stores), so a drain can bound recovery replay before exit.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return hrdmerr.New(hrdmerr.CodeState, "db is closed")
	}
	if !db.store.Durable() {
		return nil
	}
	return db.store.Checkpoint()
}

// Close checkpoints and closes a durable store; idempotent, and a
// no-op for in-memory stores.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if !db.store.Durable() {
		return nil
	}
	return db.store.Close()
}

// Session is one client's handle on a DB: queries with the engine's
// pinned-snapshot execution, session-scoped settings (the Section 5
// optimizer toggle), and an optional staged write group for atomic
// multi-relation mutations. Every error a Session returns carries an
// hrdmerr classification, so callers (the CLI's error[CODE] line, the
// server's wire envelope) never parse message strings.
//
// A Session is a single-goroutine object, like the core.WriteGroup it
// stages into: use one per connection. Distinct sessions over one DB
// may run fully concurrently — reads pin snapshots, commits serialize
// on the publish lock.
type Session struct {
	db       *DB
	optimize bool
	group    *core.WriteGroup
	staged   int
}

// DB returns the database this session was created from.
func (s *Session) DB() *DB { return s.db }

// SetOptimize toggles the Section 5 law-based rewriter for this
// session's queries. Off by default, matching engine.Run.
func (s *Session) SetOptimize(on bool) { s.optimize = on }

// Optimize reports the session's rewriter setting.
func (s *Session) Optimize() bool { return s.optimize }

// withDBWorkers applies the DB's workers option to a query context;
// contexts already carrying an explicit WithWorkers value keep it.
func (s *Session) withDBWorkers(ctx context.Context) context.Context {
	if s.db.workers < 1 {
		return ctx
	}
	if n, ok := ctx.Value(workersCtxKey{}).(int); ok && n >= 1 {
		return ctx
	}
	return WithWorkers(ctx, s.db.workers)
}

// Query parses, plans and executes src under ctx: cancellation and
// deadlines abort mid-scan with ErrCanceled/ErrDeadline (see
// RunContext). Results reflect one pinned snapshot of the store.
func (s *Session) Query(ctx context.Context, src string) (hql.Result, error) {
	ctx = s.withDBWorkers(ctx)
	if s.optimize {
		return hql.RunOptimizedContext(ctx, src, s.db.store)
	}
	return RunContext(ctx, src, s.db.store)
}

// Eval plans and executes an already-parsed expression, applying the
// session's optimizer setting first — the AST-level counterpart of
// Query for callers that parse once and run many times.
func (s *Session) Eval(ctx context.Context, e hql.Expr) (hql.Result, error) {
	if s.optimize {
		e, _ = hql.Optimize(e)
	}
	return EvalContext(s.withDBWorkers(ctx), e, s.db.store)
}

// Explain renders the chosen physical plan without executing it,
// honoring the session's optimizer setting.
func (s *Session) Explain(src string) (string, error) {
	return Explain(src, s.db.store, s.optimize)
}

// ExplainAnalyze executes src under ctx with per-operator profiling
// and renders the annotated plan.
func (s *Session) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	return ExplainAnalyzeContext(s.withDBWorkers(ctx), src, s.db.store, s.optimize)
}

// BeginGroup opens a staged write group. ErrState if one is already
// open — groups do not nest.
func (s *Session) BeginGroup() error {
	if s.group != nil {
		return hrdmerr.New(hrdmerr.CodeState, "write group already open (commit or abort it first)")
	}
	s.group = core.NewWriteGroup()
	s.staged = 0
	return nil
}

// Stage parses one tuple spec (storage.ParseTuple's format) against
// relation rel's scheme and stages it into the open group with
// history-merging semantics. Returns the number of tuples staged so
// far. ErrState without an open group; ErrBadRequest for an unknown
// relation or an unparsable spec.
func (s *Session) Stage(rel, spec string) (int, error) {
	if s.group == nil {
		return 0, hrdmerr.New(hrdmerr.CodeState, "no open write group (begin_group first)")
	}
	r, ok := s.db.store.Get(rel)
	if !ok {
		return s.staged, hrdmerr.New(hrdmerr.CodeBadRequest, "unknown relation %s", rel)
	}
	t, err := storage.ParseTuple(r.Scheme(), spec)
	if err != nil {
		return s.staged, hrdmerr.Wrap(hrdmerr.CodeBadRequest, err)
	}
	s.group.InsertMerging(r, t)
	s.staged++
	return s.staged, nil
}

// Commit atomically publishes the open group: every staged tuple
// lands, across however many relations, in one version bump and one
// epoch tick — or none of it does. Validation failures (duplicate
// keys, contradicting histories) surface as ErrConflict with the
// group discarded either way, matching core.WriteGroup's
// discard-after-commit contract. Returns the number of tuples
// committed.
func (s *Session) Commit(ctx context.Context) (int, error) {
	if s.group == nil {
		return 0, hrdmerr.New(hrdmerr.CodeState, "no open write group (begin_group first)")
	}
	if err := ctx.Err(); err != nil {
		return 0, hrdmerr.FromContext(err)
	}
	g, n := s.group, s.staged
	s.group, s.staged = nil, 0
	if err := g.Commit(); err != nil {
		return 0, hrdmerr.Wrap(hrdmerr.CodeConflict, err)
	}
	return n, nil
}

// Abort discards the open group without applying anything; reports
// whether there was a group to discard.
func (s *Session) Abort() bool {
	had := s.group != nil
	s.group, s.staged = nil, 0
	return had
}

// InGroup reports whether a write group is open.
func (s *Session) InGroup() bool { return s.group != nil }

// Staged reports how many tuples the open group holds.
func (s *Session) Staged() int { return s.staged }

// String identifies the session's store for diagnostics.
func (s *Session) String() string {
	kind := "mem"
	if s.db.store.Durable() {
		kind = "durable:" + s.db.store.Dir()
	}
	return fmt.Sprintf("session(%s, %d relations)", kind, len(s.db.store.Names()))
}
