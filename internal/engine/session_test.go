package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/hql"
	"repro/internal/hrdmerr"
	"repro/internal/storage"
	"repro/internal/workload"
)

func sessionDB(t *testing.T) *DB {
	t.Helper()
	st := storage.NewStore()
	st.Put(workload.Personnel(workload.PersonnelConfig{
		NumEmployees: 20, HistoryLen: 100, ChangeEvery: 10, Seed: 3,
	}))
	return OpenDB(st)
}

// TestSessionQuery: the session entry point runs the same planned,
// snapshot-pinned execution engine.Run does, with and without the
// session's optimizer toggle.
func TestSessionQuery(t *testing.T) {
	sess := sessionDB(t).NewSession()
	res, err := sess.Query(context.Background(), `SELECT WHEN NAME = 'emp0002' FROM EMP`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Relation == nil || res.Relation.Cardinality() != 1 {
		t.Fatalf("query result = %+v, want 1 tuple", res)
	}
	sess.SetOptimize(true)
	res2, err := sess.Query(context.Background(), `SELECT WHEN NAME = 'emp0002' FROM EMP`)
	if err != nil {
		t.Fatalf("optimized query: %v", err)
	}
	if !res.Relation.Equal(res2.Relation) {
		t.Fatal("optimized query differs from plain")
	}
	if _, err := sess.Explain(`SELECT WHEN NAME = 'emp0002' FROM EMP`); err != nil {
		t.Fatalf("explain: %v", err)
	}
}

// TestSessionQueryTypedErrors: parse failures come back as ErrParse
// through the session, canceled contexts as ErrCanceled.
func TestSessionQueryTypedErrors(t *testing.T) {
	sess := sessionDB(t).NewSession()
	if _, err := sess.Query(context.Background(), `SELECT garbage !!`); !errors.Is(err, hrdmerr.ErrParse) {
		t.Fatalf("parse error = %v, want ErrParse", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Query(ctx, `EMP`); !errors.Is(err, hrdmerr.ErrCanceled) {
		t.Fatalf("canceled query error = %v, want ErrCanceled", err)
	}
}

// TestSessionWriteGroup drives the full stage/commit lifecycle: state
// errors outside a group, staged tuples commit atomically and become
// visible to subsequent queries, and duplicate-key groups surface
// ErrConflict with nothing applied.
func TestSessionWriteGroup(t *testing.T) {
	db := sessionDB(t)
	sess := db.NewSession()
	ctx := context.Background()

	if _, err := sess.Stage("EMP", `tuple {[0,9]}`); !errors.Is(err, hrdmerr.ErrState) {
		t.Fatalf("stage outside group error = %v, want ErrState", err)
	}
	if _, err := sess.Commit(ctx); !errors.Is(err, hrdmerr.ErrState) {
		t.Fatalf("commit outside group error = %v, want ErrState", err)
	}

	if err := sess.BeginGroup(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := sess.BeginGroup(); !errors.Is(err, hrdmerr.ErrState) {
		t.Fatalf("nested begin error = %v, want ErrState", err)
	}
	if _, err := sess.Stage("NOPE", `tuple {[0,9]}`); !errors.Is(err, hrdmerr.ErrBadRequest) {
		t.Fatalf("unknown relation error = %v, want ErrBadRequest", err)
	}
	if _, err := sess.Stage("EMP", `this is not a tuple`); !errors.Is(err, hrdmerr.ErrBadRequest) {
		t.Fatalf("bad spec error = %v, want ErrBadRequest", err)
	}
	spec := `tuple {[0,9]}; NAME = "zz_new" @ {[0,9]}; SAL = 1234 @ {[0,9]}; DEPT = "Toys" @ {[0,9]}`
	n, err := sess.Stage("EMP", spec)
	if err != nil || n != 1 {
		t.Fatalf("stage = (%d, %v), want (1, nil)", n, err)
	}
	if !sess.InGroup() || sess.Staged() != 1 {
		t.Fatalf("session state = (%v, %d), want (true, 1)", sess.InGroup(), sess.Staged())
	}
	if n, err := sess.Commit(ctx); err != nil || n != 1 {
		t.Fatalf("commit = (%d, %v), want (1, nil)", n, err)
	}
	res, err := sess.Query(ctx, `SELECT WHEN NAME = 'zz_new' FROM EMP`)
	if err != nil || res.Relation == nil || res.Relation.Cardinality() != 1 {
		t.Fatalf("committed tuple not visible: res=%+v err=%v", res, err)
	}

	// A group colliding with an existing key on a contradicting history
	// must fail as ErrConflict and leave the store unchanged.
	if err := sess.BeginGroup(); err != nil {
		t.Fatalf("begin 2: %v", err)
	}
	if _, err := sess.Stage("EMP", `tuple {[0,9]}; NAME = "zz_new" @ {[0,9]}; SAL = 9 @ {[0,9]}; DEPT = "X" @ {[0,9]}`); err != nil {
		t.Fatalf("stage conflict tuple: %v", err)
	}
	if _, err := sess.Commit(ctx); !errors.Is(err, hrdmerr.ErrConflict) {
		t.Fatalf("conflicting commit error = %v, want ErrConflict", err)
	}
	if sess.InGroup() {
		t.Fatal("failed commit left the group open")
	}

	// Abort discards without applying.
	if err := sess.BeginGroup(); err != nil {
		t.Fatalf("begin 3: %v", err)
	}
	if _, err := sess.Stage("EMP", `tuple {[0,9]}; NAME = "zz_gone" @ {[0,9]}; SAL = 1 @ {[0,9]}; DEPT = "X" @ {[0,9]}`); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if !sess.Abort() {
		t.Fatal("abort reported no group")
	}
	res, err = sess.Query(ctx, `SELECT WHEN NAME = 'zz_gone' FROM EMP`)
	if err != nil || res.Relation == nil || res.Relation.Cardinality() != 0 {
		t.Fatalf("aborted tuple visible: res=%+v err=%v", res, err)
	}
}

// TestSessionEvalAndIntrospection: Eval runs a pre-parsed expression
// through the same pinned execution Query uses (honoring the session's
// optimizer setting), ExplainAnalyze renders an annotated plan, and
// the small accessors (DB, Store, Optimize, String) report the
// session's identity.
func TestSessionEvalAndIntrospection(t *testing.T) {
	db := sessionDB(t)
	sess := db.NewSession()
	ctx := context.Background()

	if sess.DB() != db {
		t.Fatal("DB() is not the opening DB")
	}
	if db.Store() == nil {
		t.Fatal("Store() is nil")
	}
	if sess.Optimize() {
		t.Fatal("optimizer on by default")
	}

	const src = `SELECT WHEN NAME = 'emp0002' FROM EMP`
	e, err := hql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, err := sess.Query(ctx, src)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	got, err := sess.Eval(ctx, e)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !want.Relation.Equal(got.Relation) {
		t.Fatal("Eval differs from Query on the same expression")
	}
	sess.SetOptimize(true)
	if !sess.Optimize() {
		t.Fatal("SetOptimize(true) did not stick")
	}
	got, err = sess.Eval(ctx, e)
	if err != nil {
		t.Fatalf("optimized eval: %v", err)
	}
	if !want.Relation.Equal(got.Relation) {
		t.Fatal("optimized Eval differs from plain Query")
	}

	out, err := sess.ExplainAnalyze(ctx, src)
	if err != nil || !strings.Contains(out, "rows") {
		t.Fatalf("ExplainAnalyze = (%q, %v), want an annotated plan", out, err)
	}

	if s := sess.String(); !strings.Contains(s, "session(mem") {
		t.Fatalf("String() = %q, want a mem-store session identity", s)
	}
}

// TestDBLifecycle: Checkpoint and Close are no-ops on in-memory
// stores, Close is idempotent, and a closed DB refuses checkpoints
// with ErrState.
func TestDBLifecycle(t *testing.T) {
	db := sessionDB(t)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint in-memory: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, hrdmerr.ErrState) {
		t.Fatalf("checkpoint after close error = %v, want ErrState", err)
	}
}
