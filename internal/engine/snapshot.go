package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hrdmerr"
)

// Snapshot is the consistent database state one query executes
// against: the epoch and one pinned version of every relation the
// plan depends on. It is captured by core.Pin under the global
// publish lock — a short exclusive section — after which execution
// reads the pinned tuple slices with zero locks: appends by
// concurrent writers never touch a pinned prefix and merges
// copy-on-write, so multi-relation plans (joins, set operators)
// cannot observe relation A before a writer's batch and relation B
// after it.
//
// A nil *Snapshot is valid everywhere and means "read live state". The
// only remaining nil-snapshot execution is plan-time sub-query
// evaluation (WHEN sub-queries in lifespan positions), whose results
// become plan-time constants fenced by the plan's (relation, version)
// deps; every query-time execution runs through a verified pin.
type Snapshot struct {
	Epoch uint64
	vers  map[*core.Relation]core.RelVersion
	// deps echoes the plan's dependency list (sorted by name) for
	// rendering; EXPLAIN prints it after the plan.
	deps []planDep
	// prof, when non-nil, collects per-operator actuals for EXPLAIN
	// ANALYZE; normal execution leaves it nil and pays one nil check
	// per operator.
	prof *profiler
	// ctx, when non-nil, is the query's cancellation context: iterator
	// pulls check it every cancelBatch pulls (see cancelIter) and exec
	// boundaries check it once per operator, so a canceled or
	// deadline-expired query aborts within one iterator batch instead
	// of running its scan to completion. It is nil for uncancellable
	// queries (context.Background callers), which then pay zero checks.
	ctx   context.Context
	pulls int
	// workers is the degree of parallelism the query's parallel
	// operators may use, resolved at pin time from the query context
	// (WithWorkers) or the process default. It is execution state, not
	// plan state: plans stay degree-agnostic so sessions with different
	// settings share cached plans. 0/1 means sequential.
	workers int
}

// cancelBatch is the iterator cancellation granularity: the number of
// pulls (summed across the plan's operators) between context checks.
// Small enough that a canceled scan stops within a few hundred tuple
// touches, large enough that the per-pull cost is one increment and a
// mask test.
const cancelBatch = 256

// cancelIter wraps an operator's streaming iterator with the batch-
// boundary cancellation check. The pull counter lives on the snapshot
// — one query, one counter — so stacked operators share the budget and
// the check fires every cancelBatch tuple movements through the whole
// plan, wherever they happen.
func (s *Snapshot) cancelIter(it iterator) iterator {
	if s == nil || s.ctx == nil {
		return it
	}
	return func() (*core.Tuple, error) {
		s.pulls++
		if s.pulls%cancelBatch == 0 {
			if err := s.ctx.Err(); err != nil {
				return nil, hrdmerr.FromContext(err)
			}
		}
		return it()
	}
}

// checkCancel is the exec-boundary check: one ctx read per operator
// materialization, nil when the query is uncancellable.
func (s *Snapshot) checkCancel() error {
	if s == nil || s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return hrdmerr.FromContext(err)
	}
	return nil
}

// pinPlan captures a snapshot of p's dependency relations and reports
// whether every pinned version matches the version the plan was
// compiled against. A false report means a writer published between
// planning (or the cache's validity fence) and the pin, so the
// plan-time constants — index candidate sets, WHEN sub-query
// lifespans — may not describe the pinned state; the caller replans.
func pinPlan(ctx context.Context, p *Plan) (*Snapshot, bool) {
	rels := make([]*core.Relation, len(p.deps))
	for i, d := range p.deps {
		rels[i] = d.rel
	}
	epoch, vers := core.Pin(rels...)
	s, ok := newSnapshot(p, epoch, vers)
	s.attachCtx(ctx)
	s.workers = workersFrom(ctx)
	return s, ok
}

// attachCtx arms the snapshot's cancellation checks. A context that
// can never be canceled (Background and friends report a nil Done
// channel) is dropped, so uncancellable queries keep the zero-check
// fast path.
func (s *Snapshot) attachCtx(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		s.ctx = ctx
	}
}

// pinPlanExclusive compiles a plan while publications are excluded and
// pins its dependencies in the same critical section, so the pin
// cannot lose the race: the fallback when optimistic plan-then-pin
// keeps colliding with a continuous writer. Planning under the
// exclusive lock is deadlock-free because blocked writers hold no
// relation locks (they acquire the publish lock first).
func pinPlanExclusive(ctx context.Context, compile func() (*Plan, error)) (*Plan, *Snapshot, error) {
	var p *Plan
	epoch, vers, err := core.PinAtomic(func() ([]*core.Relation, error) {
		var cerr error
		p, cerr = compile()
		if cerr != nil {
			return nil, cerr
		}
		rels := make([]*core.Relation, len(p.deps))
		for i, d := range p.deps {
			rels[i] = d.rel
		}
		return rels, nil
	})
	if err != nil {
		return nil, nil, err
	}
	snap, ok := newSnapshot(p, epoch, vers)
	if !ok {
		// Cannot happen: versions were read and pinned under one lock.
		return nil, nil, fmt.Errorf("engine: snapshot raced planning under the publish lock")
	}
	snap.attachCtx(ctx)
	snap.workers = workersFrom(ctx)
	return p, snap, nil
}

func newSnapshot(p *Plan, epoch uint64, vers []core.RelVersion) (*Snapshot, bool) {
	s := &Snapshot{Epoch: epoch, vers: make(map[*core.Relation]core.RelVersion, len(vers)), deps: p.deps}
	ok := true
	for i, d := range p.deps {
		s.vers[d.rel] = vers[i]
		if vers[i].Version() != d.version {
			ok = false
		}
	}
	return s, ok
}

// String renders the pinned state for EXPLAIN: the epoch and each
// dependency at its pinned version.
func (s *Snapshot) String() string {
	if s == nil {
		return "none (live reads)"
	}
	parts := make([]string, 0, len(s.deps))
	for _, d := range s.deps {
		parts = append(parts, fmt.Sprintf("%s@%d", d.name, s.vers[d.rel].Version()))
	}
	return fmt.Sprintf("epoch %d (%s)", s.Epoch, strings.Join(parts, ", "))
}

// describePin renders the snapshot a run of p would pin — the same
// line Snapshot.String produces — without actually pinning: EXPLAIN
// only displays the state, and a real Pin would set the shared flag on
// every dependency, taxing the next merge with a copy-on-write of the
// whole tuple slice for a snapshot nobody holds. The reads are not a
// consistent cut, which display does not need.
func describePin(p *Plan) string {
	parts := make([]string, 0, len(p.deps))
	for _, d := range p.deps {
		parts = append(parts, fmt.Sprintf("%s@%d", d.name, d.rel.Version()))
	}
	return fmt.Sprintf("epoch %d (%s)", core.Epoch(), strings.Join(parts, ", "))
}

// tuplesOf returns the pinned tuple slice of r, or its live snapshot
// when r is not part of the pin (or s is nil).
func (s *Snapshot) tuplesOf(r *core.Relation) []*core.Tuple {
	if s != nil {
		if v, ok := s.vers[r]; ok {
			return v.Tuples()
		}
	}
	//lint:allow pindiscipline documented live fallback for relations outside the pin (nil snapshot = unpinned execution)
	return r.Tuples()
}

// relOf returns the relation a naive operator should consume: a frozen
// O(1) view of the pinned version, or the live relation when unpinned.
func (s *Snapshot) relOf(r *core.Relation) *core.Relation {
	if s != nil {
		if v, ok := s.vers[r]; ok {
			return v.View()
		}
	}
	return r
}

// lookupKey probes r's canonical key map bounded by the pinned
// version — the snapshot-aware form of Relation.Lookup the key-index
// join probe uses at execution time.
func (s *Snapshot) lookupKey(r *core.Relation, key string) (*core.Tuple, bool) {
	if s != nil {
		if v, ok := s.vers[r]; ok {
			return v.Lookup(key)
		}
	}
	//lint:allow pindiscipline documented live fallback for relations outside the pin (nil snapshot = unpinned execution)
	return r.Lookup(key)
}

// resolve maps candidates probed from r's live index structures at
// execution time back to the pinned version: newer tuples drop out,
// merged successors map to their pinned forms. Live probes return a
// superset of the pinned matches (images only grow under merges), and
// the full join/selection predicate still runs per candidate, so the
// mapping is exact, never lossy.
func (s *Snapshot) resolve(r *core.Relation, cand []*core.Tuple) []*core.Tuple {
	if s == nil {
		return cand
	}
	v, ok := s.vers[r]
	if !ok {
		return cand
	}
	out := make([]*core.Tuple, 0, len(cand))
	for _, t := range cand {
		if pt, ok := v.Resolve(t); ok {
			out = append(out, pt)
		}
	}
	return out
}
