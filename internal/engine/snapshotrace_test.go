package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// raceScheme is a minimal keyed scheme shared (attribute-wise) by the
// two relations of the torn-read tests, so set operators apply.
func raceScheme(name string) *schema.Scheme {
	full := lifespan.Interval(0, 999)
	return schema.MustNew(name, []string{"K"},
		schema.Attribute{Name: "K", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "V", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

func raceTuple(s *schema.Scheme, k string, v int64) *core.Tuple {
	return core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
		Key("K", value.String_(k)).
		Set("V", chronon.Time(0), chronon.Time(9), value.Int(v)).
		MustBuild()
}

// TestSnapshotIsolationMultiRelation is the acceptance test of the
// snapshot layer: a writer batch-loads the same keys into relation A
// and then relation B, while concurrent readers run multi-relation
// plans (set difference and equijoin) through engine.Run. Every
// result must reflect one epoch-consistent database state:
//
//   - `B MINUS A` is empty at every consistent cut (B's keys always
//     trail A's), so any surviving tuple is a torn read — relation B
//     observed after a batch that A was observed before.
//   - `A MINUS B` holds exactly the batches A has received and B has
//     not; a cardinality that is not a multiple of the batch size
//     means a half-visible batch.
//
// Run under -race; the locking itself is exercised as hard as the
// semantics.
func TestSnapshotIsolationMultiRelation(t *testing.T) {
	sa, sb := raceScheme("A"), raceScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st := storage.NewStore()
	st.Put(a)
	st.Put(b)
	BuildIndexes(a)
	BuildIndexes(b)

	const rounds, batchN = 80, 5
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			mk := func(s *schema.Scheme) []*core.Tuple {
				ts := make([]*core.Tuple, batchN)
				for j := range ts {
					ts[j] = raceTuple(s, fmt.Sprintf("k%05d", i*batchN+j), int64(j))
				}
				return ts
			}
			if err := a.InsertBatch(mk(sa)); err != nil {
				writerDone <- err
				return
			}
			if err := b.InsertBatch(mk(sb)); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	queries := []string{
		`B MINUS A`,
		`A MINUS B`,
		`B INTERSECT A`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := Run(q, st)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				n := res.Relation.Cardinality()
				switch q {
				case `B MINUS A`:
					if n != 0 {
						t.Errorf("torn read: B MINUS A has %d tuples", n)
						return
					}
				case `A MINUS B`, `B INTERSECT A`:
					if n%batchN != 0 {
						t.Errorf("half-visible batch: %s has %d tuples (batch %d)", q, n, batchN)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	// Quiesced: everything visible, and the engine still answers.
	res, err := Run(`A MINUS B`, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 0 || a.Cardinality() != rounds*batchN {
		t.Fatalf("final state: |A|=%d |A−B|=%d", a.Cardinality(), res.Relation.Cardinality())
	}
}

// TestSnapshotIsolationIndexJoin is the sharpest torn-read detector:
// an index-lookup equijoin streams REF and probes EMP's key index at
// execution time — against live structures that a writer is growing
// mid-query. The writer adds each round's names to REF one tuple at a
// time, then the same names to EMP as one atomic batch, so at every
// consistent cut the join matches exactly the EMP side: a whole
// number of batches (REF runs ahead mid-round, but unmatched refs
// don't count). A query pinned while REF is mid-round that probes EMP
// live instead of at the pin will observe EMP batches published after
// the pin — including the one covering REF's partial round — and its
// match count stops dividing by the batch size. The snapshot layer
// bounds every probe to the pinned prefix, which is what this test
// proves under -race (disabling the bound makes it fail immediately).
func TestSnapshotIsolationIndexJoin(t *testing.T) {
	full := lifespan.Interval(0, 999)
	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	rs := schema.MustNew("REF", []string{"RNAME"},
		schema.Attribute{Name: "RNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	emp, ref := core.NewRelation(es), core.NewRelation(rs)
	st := storage.NewStore()
	st.Put(emp)
	st.Put(ref)

	const rounds, batchN, preN = 40, 50, 10000
	// Preload a large matched base (preN pairs) so every join streams
	// for milliseconds — a wide window for the writer's publications to
	// land mid-execution — plus EMP-only filler so EMP stays the larger
	// relation and the cost model streams REF and probes EMP's key
	// index: the orientation where the streamed side is the mid-round
	// pinned relation and the probed side is the one racing ahead,
	// which is exactly where an unbounded probe tears.
	mkOne := func(s *schema.Scheme, key, val, name string, v int) *core.Tuple {
		return core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
			Key(key, value.String_(name)).
			Set(val, chronon.Time(0), chronon.Time(9), value.Int(int64(v))).
			MustBuild()
	}
	preRef := make([]*core.Tuple, 0, preN)
	preEmp := make([]*core.Tuple, 0, preN+4000)
	for i := 0; i < preN; i++ {
		name := fmt.Sprintf("p%06d", i)
		preRef = append(preRef, mkOne(rs, "RNAME", "BONUS", name, i))
		preEmp = append(preEmp, mkOne(es, "NAME", "SAL", name, i))
	}
	for i := 0; i < 4000; i++ {
		preEmp = append(preEmp, mkOne(es, "NAME", "SAL", fmt.Sprintf("x%05d", i), i))
	}
	if err := ref.InsertBatch(preRef); err != nil {
		t.Fatal(err)
	}
	if err := emp.InsertBatch(preEmp); err != nil {
		t.Fatal(err)
	}
	BuildIndexes(emp)
	BuildIndexes(ref)
	mkBatch := func(s *schema.Scheme, key, val string, cycle, round int) []*core.Tuple {
		ts := make([]*core.Tuple, batchN)
		for j := range ts {
			i := round*batchN + j
			ts[j] = core.NewTupleBuilder(s, lifespan.Interval(0, 9)).
				Key(key, value.String_(fmt.Sprintf("c%03dn%05d", cycle, i))).
				Set(val, chronon.Time(0), chronon.Time(9), value.Int(int64(i))).
				MustBuild()
		}
		return ts
	}
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		// Cycle fresh key ranges until the readers finish, so every
		// query races an in-progress load, pinning REF mid-round.
		for cycle := 0; ; cycle++ {
			for i := 0; i < rounds; i++ {
				select {
				case <-stop:
					writerDone <- nil
					return
				default:
				}
				for _, rt := range mkBatch(rs, "RNAME", "BONUS", cycle, i) {
					if err := ref.Insert(rt); err != nil {
						writerDone <- err
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
				if err := emp.InsertBatch(mkBatch(es, "NAME", "SAL", cycle, i)); err != nil {
					writerDone <- err
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				res, err := Run(`REF JOIN EMP ON RNAME = NAME`, st)
				if err != nil {
					t.Errorf("join: %v", err)
					return
				}
				if n := res.Relation.Cardinality(); n%batchN != 0 {
					t.Errorf("torn probe: join matched %d rows, not a whole number of %d-tuple batches", n, batchN)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	res, err := Run(`REF JOIN EMP ON RNAME = NAME`, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Cardinality(); got%batchN != 0 {
		t.Fatalf("final join cardinality %d, not a multiple of %d", got, batchN)
	}
	if out, err := Explain(`REF JOIN EMP ON RNAME = NAME`, st, false); err != nil ||
		!strings.Contains(out, "key-index EMP.NAME") {
		t.Fatalf("test assumes the stream-REF/probe-EMP orientation, got plan:\n%s (%v)", out, err)
	}
}
