package engine

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/hql"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// RelStats is the per-relation statistics object the planner costs
// with: cardinality and lifespan geometry derived from the interval
// index. It is collected lazily into the catalog alongside the indexes
// it derives from and invalidated by the same change notifications, so
// estimates track the live relation without a separate ANALYZE step.
type RelStats struct {
	Rows    int              // tuples
	Entries int              // lifespan intervals (≥ Rows under reincarnation)
	Span    chronon.Interval // bounding interval of every indexed lifespan
	SpanLen float64          // length of Span in chronons
	AvgLen  float64          // mean covered chronons per tuple
	Density float64          // AvgLen / SpanLen: fraction of the span a tuple covers
}

// String renders the statistics for EXPLAIN output.
func (s RelStats) String() string {
	return fmt.Sprintf("rows=%d intervals=%d span=[%s,%s] density=%.3f",
		s.Rows, s.Entries, s.Span.Lo, s.Span.Hi, s.Density)
}

// AttrStats is the per-attribute statistics slice derived from the
// attribute hash index: how many tuples hold a constant value (and how
// many distinct constants), vary over time, or lack the attribute
// entirely.
type AttrStats struct {
	Rows     int
	Distinct int // distinct constant values
	Varying  int // tuples whose value changes over time
	Absent   int // tuples with the attribute nowhere defined
}

// String renders the statistics for EXPLAIN output.
func (as AttrStats) String() string {
	return fmt.Sprintf("distinct=%d varying=%d absent=%d of %d",
		as.Distinct, as.Varying, as.Absent, as.Rows)
}

// EqMatches estimates how many tuples an `attr = const` equality can
// match: one average constant bucket plus the whole varying overflow
// (any time-varying value may pass through the constant).
func (as AttrStats) EqMatches() float64 {
	constant := float64(as.Rows - as.Varying - as.Absent)
	m := float64(as.Varying)
	if as.Distinct > 0 {
		m += constant / float64(as.Distinct)
	}
	return m
}

// EqSelectivity is EqMatches as a fraction of the relation.
func (as AttrStats) EqSelectivity() float64 {
	if as.Rows == 0 {
		return 0
	}
	return clamp01(as.EqMatches() / float64(as.Rows))
}

// Stats returns the relation's statistics object, computing it on first
// use (building the interval index if needed) and caching it until the
// next mutation.
func (x *RelIndexes) Stats() RelStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	ts := x.freshSnapshotLocked()
	if x.stats == nil {
		if x.interval == nil {
			x.interval = newIntervalIndexFrom(ts)
		}
		covered, span := x.interval.Geometry()
		s := &RelStats{
			Rows:    x.interval.Tuples(),
			Entries: x.interval.Entries(),
			Span:    span,
		}
		if s.Rows > 0 {
			s.SpanLen = ivLen(span)
			s.AvgLen = covered / float64(s.Rows)
			if s.SpanLen > 0 {
				s.Density = clamp01(s.AvgLen / s.SpanLen)
			}
		}
		x.stats = s
	}
	return *x.stats
}

// AttrStatsFor returns the named attribute's statistics, building (and
// caching) its hash index on first use — the same lazy amortization as
// any index warm-up.
func (x *RelIndexes) AttrStatsFor(name string) AttrStats {
	return x.Attr(name).Stats()
}

// AttrStatsIfBuilt returns the named attribute's statistics only when
// its hash index already exists — the cheap statistics path for plans
// that would not otherwise build the index (an O(n) scan is a bad
// trade for reading four counters).
func (x *RelIndexes) AttrStatsIfBuilt(name string) (AttrStats, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.attrs[name]; !ok {
		return AttrStats{}, false
	}
	x.freshSnapshotLocked()
	return x.attrs[name].Stats(), true
}

// Default selectivities where no statistics apply (derived inputs whose
// value distribution the catalog cannot see). Chosen to order plans
// sensibly rather than to be accurate: equalities are selective,
// inequalities pass about a third.
const (
	defaultEqSel  = 0.1
	defaultCmpSel = 1.0 / 3
)

// condSelectivity estimates the fraction of tuples a selection
// condition retains. stats resolves an attribute to its statistics (nil
// or a false return falls back to the defaults). Conjunctions multiply
// (independence assumption), disjunctions complement-multiply, and
// negation complements.
func condSelectivity(c hql.CondExpr, stats func(attr string) (AttrStats, bool)) float64 {
	if c.Pred != nil {
		p := c.Pred
		if p.Theta != value.EQ && p.Theta != value.NE {
			return defaultCmpSel
		}
		eq := defaultEqSel
		if stats != nil {
			// Only equality-shaped predicates consult (and thereby
			// warm) the attribute index; range predicates would build
			// one without ever probing it.
			if as, ok := stats(p.Attr); ok && as.Rows > 0 {
				eq = as.EqSelectivity()
			}
		}
		if p.Theta == value.NE {
			return clamp01(1 - eq)
		}
		return eq
	}
	switch c.Op {
	case "AND":
		s := 1.0
		for _, k := range c.Kids {
			s *= condSelectivity(k, stats)
		}
		return s
	case "OR":
		miss := 1.0
		for _, k := range c.Kids {
			miss *= 1 - condSelectivity(k, stats)
		}
		return clamp01(1 - miss)
	case "NOT":
		if len(c.Kids) == 1 {
			return clamp01(1 - condSelectivity(c.Kids[0], stats))
		}
	}
	return 0.5
}

// timesliceSelectivity estimates the fraction of tuples whose lifespan
// overlaps the window L: a tuple of average length a overlaps a window
// of total length w within a span of length s with probability about
// (a + w) / s — the classic interval-overlap estimate, using the
// lifespan density the interval index maintains.
func timesliceSelectivity(s RelStats, L lifespan.Lifespan) float64 {
	if s.Rows == 0 || L.IsEmpty() {
		return 0
	}
	if s.SpanLen <= 0 {
		return 1
	}
	w := 0.0
	for _, iv := range L.Intervals() {
		w += ivLen(iv)
	}
	return clamp01((s.AvgLen + w) / s.SpanLen)
}

func clamp01(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	}
	return f
}
