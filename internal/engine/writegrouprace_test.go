package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hql"
	"repro/internal/schema"
	"repro/internal/storage"
)

// TestWriteGroupAtomicityMultiRelation extends the multi_rel_race
// methodology from sequential batch writers to atomic write groups: a
// writer commits one core.WriteGroup per round inserting the same keys
// into relation A and relation B, while concurrent readers run
// multi-relation plans through engine.Run. With sequential batches a
// reader may legitimately observe A ahead of B between publications;
// with write groups that window must not exist:
//
//   - `A MINUS B` and `B MINUS A` are both empty at every
//     epoch-consistent cut — any surviving tuple is a torn group, one
//     relation of the group observed and the other not.
//   - `A INTERSECT B` contains whole groups only: a cardinality that
//     is not a multiple of the group's batch size is a half-visible
//     publication.
//
// Run under -race; zero torn-group observations is the acceptance
// criterion of the write-group layer.
func TestWriteGroupAtomicityMultiRelation(t *testing.T) {
	sa, sb := raceScheme("A"), raceScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st := storage.NewStore()
	st.Put(a)
	st.Put(b)
	BuildIndexes(a)
	BuildIndexes(b)

	const rounds, batchN = 80, 5
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			mk := func(s *schema.Scheme) []*core.Tuple {
				ts := make([]*core.Tuple, batchN)
				for j := range ts {
					ts[j] = raceTuple(s, fmt.Sprintf("k%05d", i*batchN+j), int64(j))
				}
				return ts
			}
			g := core.NewWriteGroup()
			g.InsertBatch(a, mk(sa))
			g.InsertBatch(b, mk(sb))
			if err := g.Commit(); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	queries := []string{
		`A MINUS B`,
		`B MINUS A`,
		`A INTERSECT B`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := Run(q, st)
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				n := res.Relation.Cardinality()
				switch q {
				case `A MINUS B`, `B MINUS A`:
					if n != 0 {
						t.Errorf("torn group: %s has %d tuples", q, n)
						return
					}
				case `A INTERSECT B`:
					if n%batchN != 0 {
						t.Errorf("half-visible group: %s has %d tuples (batch %d)", q, n, batchN)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	// Quiesced: both relations hold every group in full.
	res, err := Run(`A MINUS B`, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 0 || a.Cardinality() != rounds*batchN || b.Cardinality() != rounds*batchN {
		t.Fatalf("final state: |A|=%d |B|=%d |A−B|=%d",
			a.Cardinality(), b.Cardinality(), res.Relation.Cardinality())
	}
}

// TestWriteGroupNaiveFallbackAtomicity drives the same torn-group
// detector through hql's naive evaluator — the planner's fallback —
// which since the snapshot-complete work pins its own consistent cut
// instead of reading live state. EvalNaive is called directly so no
// physical plan can mask a hole in the naive path. Run under -race.
func TestWriteGroupNaiveFallbackAtomicity(t *testing.T) {
	sa, sb := raceScheme("A"), raceScheme("B")
	a, b := core.NewRelation(sa), core.NewRelation(sb)
	st := storage.NewStore()
	st.Put(a)
	st.Put(b)

	const rounds, batchN = 60, 5
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			g := core.NewWriteGroup()
			for j := 0; j < batchN; j++ {
				k := fmt.Sprintf("k%05d", i*batchN+j)
				g.Insert(a, raceTuple(sa, k, int64(j)))
				g.Insert(b, raceTuple(sb, k, int64(j)))
			}
			if err := g.Commit(); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, q := range []string{`A MINUS B`, `B MINUS A`} {
					e, err := hql.Parse(q)
					if err != nil {
						t.Errorf("parse %s: %v", q, err)
						return
					}
					res, err := hql.EvalNaive(e, st)
					if err != nil {
						t.Errorf("%s: %v", q, err)
						return
					}
					if n := res.Relation.Cardinality(); n != 0 {
						t.Errorf("torn group on the naive path: %s has %d tuples", q, n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
}
