// Package experiment implements the measurable experiments E1–E12 of
// DESIGN.md. The paper under reproduction is a model-and-algebra paper
// with no empirical tables, so each experiment operationalizes one of its
// qualitative claims: operator scaling along the three dimensions of
// Figure 10 (E1–E8), the consistent-extension overhead (E9), the
// Section 2 storage/granularity tradeoff against the cube and
// tuple-timestamping representations (E10–E11), and the cost symmetry of
// the algebraic rewrites (E12). cmd/hrdm-bench prints every table;
// EXPERIMENTS.md records the results.
package experiment
