package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/rel"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// Table is one experiment's result: a titled grid with an explanatory
// note, printable as aligned text.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// timeIt runs f repeatedly for at least minReps and returns the mean
// duration. Experiments prioritize stable shape over benchmark-grade
// rigor; bench_test.go has the testing.B versions.
func timeIt(minReps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < minReps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(minReps)
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func personnel(n, hist, change int, seed int64) *core.Relation {
	return workload.Personnel(workload.PersonnelConfig{
		NumEmployees: n, HistoryLen: hist, ChangeEvery: change,
		ReincarnationProb: 0.3, Seed: seed,
	})
}

// E1SetOps measures the plain and object-based set operators against
// relation size (§4.1).
func E1SetOps() Table {
	t := Table{
		ID:     "E1",
		Title:  "set-theoretic operators vs relation size (history 200, change every 20)",
		Header: []string{"objects", "∪o", "∩o", "−o", "∪(disjoint)", "−(plain)"},
		Note:   "object-based variants pay a per-key merge; plain variants reject or pass tuples whole",
	}
	for _, n := range []int{100, 400, 1600} {
		world := personnel(n, 200, 20, 1)
		a, _ := core.TimesliceStatic(world, lifespan.Interval(0, 120))
		b, _ := core.TimesliceStatic(world, lifespan.Interval(80, 199))
		// Disjoint-key operands for the plain union.
		left, _ := core.TimesliceStatic(world, lifespan.Interval(0, 99))
		reps := 3
		row := []string{fmt.Sprint(n)}
		row = append(row, dur(timeIt(reps, func() { _, _ = core.UnionMerge(a, b) })))
		row = append(row, dur(timeIt(reps, func() { _, _ = core.IntersectMerge(a, b) })))
		row = append(row, dur(timeIt(reps, func() { _, _ = core.DiffMerge(a, b) })))
		empty := core.NewRelation(world.Scheme())
		row = append(row, dur(timeIt(reps, func() { _, _ = core.Union(left, empty) })))
		row = append(row, dur(timeIt(reps, func() { _, _ = core.Diff(a, b) })))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E2Project measures PROJECT against the number of retained attributes
// (§4.2, the attribute dimension of Figure 10).
func E2Project() Table {
	t := Table{
		ID:     "E2",
		Title:  "PROJECT vs retained attributes (1000 objects)",
		Header: []string{"attributes kept", "time", "result tuples"},
		Note:   "projection keeping the key is per-tuple copying; dropping the key adds merge work",
	}
	world := personnel(1000, 200, 20, 2)
	cases := [][]string{
		{"NAME", "SAL", "DEPT"},
		{"NAME", "SAL"},
		{"NAME"},
		{"DEPT"}, // drops the key: merge path
	}
	for _, attrs := range cases {
		var out *core.Relation
		d := timeIt(3, func() { out, _ = core.Project(world, attrs...) })
		t.Rows = append(t.Rows, []string{
			strings.Join(attrs, ","), dur(d), fmt.Sprint(out.Cardinality()),
		})
	}
	return t
}

// E3Select measures both SELECT flavors and quantifiers against history
// length (§4.3, the value dimension).
func E3Select() Table {
	t := Table{
		ID:     "E3",
		Title:  "SELECT flavors vs history length (500 objects)",
		Header: []string{"history", "σ-IF ∃", "σ-IF ∀", "σ-WHEN", "WHEN tuples"},
		Note:   "σ-WHEN builds restricted tuples; σ-IF only tests and passes whole tuples",
	}
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(35000)}
	for _, hist := range []int{100, 400, 1600} {
		world := personnel(500, hist, 20, 3)
		reps := 3
		var whenOut *core.Relation
		rIf := timeIt(reps, func() { _, _ = core.SelectIf(world, p, core.Exists, lifespan.All()) })
		rAll := timeIt(reps, func() { _, _ = core.SelectIf(world, p, core.ForAll, lifespan.All()) })
		rWhen := timeIt(reps, func() { whenOut, _ = core.SelectWhen(world, p, lifespan.All()) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(hist), dur(rIf), dur(rAll), dur(rWhen), fmt.Sprint(whenOut.Cardinality()),
		})
	}
	return t
}

// E4Timeslice measures static TIME-SLICE against slice width and the
// dynamic TIME-SLICE (§4.4, the temporal dimension).
func E4Timeslice() Table {
	t := Table{
		ID:     "E4",
		Title:  "TIME-SLICE vs slice width (1000 objects, history 400)",
		Header: []string{"slice width", "static slice", "surviving tuples"},
		Note:   "cost tracks surviving data, not the width parameter itself; dynamic slice measured separately",
	}
	world := personnel(1000, 400, 20, 4)
	for _, w := range []int{10, 50, 200, 400} {
		L := lifespan.Interval(0, chronon.Time(w-1))
		var out *core.Relation
		d := timeIt(3, func() { out, _ = core.TimesliceStatic(world, L) })
		t.Rows = append(t.Rows, []string{fmt.Sprint(w), dur(d), fmt.Sprint(out.Cardinality())})
	}
	stock := workload.Stock(workload.StockConfig{NumStocks: 500, HistoryLen: 400, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 4})
	d := timeIt(3, func() { _, _ = core.TimesliceDynamic(stock, "EX_DIV") })
	t.Rows = append(t.Rows, []string{"dynamic(EX_DIV)", dur(d), fmt.Sprint(stock.Cardinality())})
	return t
}

// E5UnionVsMerge contrasts plain union with merge-union on the Figure 11
// scenario: operands holding different periods of the same objects.
func E5UnionVsMerge() Table {
	t := Table{
		ID:     "E5",
		Title:  "Figure 11: plain ∪ vs object-based ∪o (overlapping objects)",
		Header: []string{"objects", "∪ outcome", "∪o tuples", "∪o time"},
		Note:   "plain ∪ on split histories violates the key condition (duplicated objects) and is rejected; ∪o merges them",
	}
	for _, n := range []int{100, 1000} {
		world := personnel(n, 200, 20, 5)
		a, _ := core.TimesliceStatic(world, lifespan.Interval(0, 120))
		b, _ := core.TimesliceStatic(world, lifespan.Interval(80, 199))
		_, err := core.Union(a, b)
		outcome := "ok"
		if err != nil {
			outcome = "rejected (duplicate objects)"
		}
		var u *core.Relation
		d := timeIt(3, func() { u, _ = core.UnionMerge(a, b) })
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), outcome, fmt.Sprint(u.Cardinality()), dur(d)})
	}
	return t
}

// E6Joins measures the join family against relation size (§4.6).
func E6Joins() Table {
	t := Table{
		ID:     "E6",
		Title:  "JOIN family vs size (emp ⋈ dept on DEPT)",
		Header: []string{"employees", "equijoin", "θ-join(>)", "natural join", "join tuples"},
		Note:   "nested-loop joins: cost grows with |r1|·|r2|; lifespan intersection prunes pairs",
	}
	dept := deptRelation()
	for _, n := range []int{100, 400, 1600} {
		emp := personnel(n, 200, 20, 6)
		reps := 2
		var out *core.Relation
		eq := timeIt(reps, func() { out, _ = core.EquiJoin(emp, dept, "DEPT", "DNAME") })
		th := timeIt(reps, func() { _, _ = core.ThetaJoin(emp, dept, "SAL", value.GT, "FLOOR") })
		mgr := mgrRelation(n)
		nj := timeIt(reps, func() { _, _ = core.NaturalJoin(emp, mgr) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(eq), dur(th), dur(nj), fmt.Sprint(out.Cardinality()),
		})
	}
	return t
}

// deptRelation builds a DEPTREL with the workload department names.
func deptRelation() *core.Relation {
	full := lifespan.Interval(0, 199)
	s := mustDeptScheme(full)
	r := core.NewRelation(s)
	for i, n := range []string{"Toys", "Shoes", "Books", "Tools", "Music"} {
		r.MustInsert(core.NewTupleBuilder(s, full).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 199, value.Int(int64(i+1))).
			MustBuild())
	}
	return r
}

// mgrRelation builds a MGR(NAME, BONUS) sharing NAME with EMP.
func mgrRelation(n int) *core.Relation {
	full := lifespan.Interval(0, 199)
	s := mustMgrScheme(full)
	r := core.NewRelation(s)
	for i := 0; i < n; i += 5 {
		r.MustInsert(core.NewTupleBuilder(s, lifespan.Interval(0, 150)).
			Key("NAME", value.String_(fmt.Sprintf("emp%04d", i))).
			Set("BONUS", 0, 150, value.Int(int64(100*i))).
			MustBuild())
	}
	return r
}

// E7TimeJoin measures TIME-JOIN on stock data against size.
func E7TimeJoin() Table {
	t := Table{
		ID:     "E7",
		Title:  "TIME-JOIN (stock [@EX_DIV] dept) vs size",
		Header: []string{"stocks", "time-join", "result tuples"},
		Note:   "each left tuple contributes its EX_DIV image; pairs survive on image ∩ lifespans",
	}
	dept := deptRelation()
	for _, n := range []int{100, 400, 1600} {
		stock := workload.Stock(workload.StockConfig{NumStocks: n, HistoryLen: 200, VolumeGapLo: 0.4, VolumeGapHi: 0.7, Seed: 7})
		var out *core.Relation
		d := timeIt(2, func() { out, _ = core.TimeJoin(stock, dept, "EX_DIV") })
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), dur(d), fmt.Sprint(out.Cardinality())})
	}
	return t
}

// E8When measures WHEN and the WHEN∘SELECT-WHEN∘TIME-SLICE pipeline
// (§4.5).
func E8When() Table {
	t := Table{
		ID:     "E8",
		Title:  "WHEN and the Ω∘σ-WHEN pipeline (history 200)",
		Header: []string{"objects", "Ω(r)", "T_{Ω(σ-WHEN(r))}(r)"},
		Note:   "WHEN is a union over tuple lifespans; the pipeline answers 'slice r to when P held'",
	}
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	for _, n := range []int{100, 1000} {
		world := personnel(n, 200, 20, 8)
		w := timeIt(5, func() { _ = core.When(world) })
		pipe := timeIt(3, func() {
			sel, _ := core.SelectWhen(world, p, lifespan.All())
			_, _ = core.TimesliceStatic(world, core.When(sel))
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), dur(w), dur(pipe)})
	}
	return t
}

// E9Reduction measures the consistent-extension overhead: classical ops
// vs HRDM ops on lifted static relations at T = {now} (§5).
func E9Reduction() Table {
	t := Table{
		ID:     "E9",
		Title:  "consistent extension: classical vs HRDM at T={now} (1000 tuples)",
		Header: []string{"operator", "classical", "HRDM@now", "ratio"},
		Note:   "HRDM pays per-attribute function machinery even for single-instant data; equivalence of results is property-tested in internal/core",
	}
	sr, hr := liftedPair(1000)
	sr2, hr2 := liftedPair(1000)
	type cs struct {
		name      string
		classical func()
		historic  func()
	}
	pred := core.Predicate{Attr: "A", Theta: value.GE, Const: value.Int(500)}
	cases := []cs{
		{"select", func() { _, _ = rel.Select(sr, "A", value.GE, value.Int(500), "") },
			func() { _, _ = core.SelectWhen(hr, pred, lifespan.All()) }},
		{"project", func() { _, _ = rel.Project(sr, "A") },
			func() { _, _ = core.Project(hr, "A") }},
		{"union", func() { _, _ = rel.Union(sr, sr2) },
			func() { _, _ = core.UnionMerge(hr, hr2) }},
	}
	for _, c := range cases {
		cd := timeIt(5, c.classical)
		hd := timeIt(5, c.historic)
		ratio := float64(hd) / float64(cd)
		t.Rows = append(t.Rows, []string{c.name, dur(cd), dur(hd), fmt.Sprintf("%.1fx", ratio)})
	}
	return t
}

// liftedPair builds a random classical relation and its HRDM lifting at
// {now}, with n tuples over two int attributes.
func liftedPair(n int) (*rel.Relation, *core.Relation) {
	doms := []value.Domain{value.Ints, value.Ints}
	rs, err := rel.NewScheme("R", []string{"K"}, []string{"K", "A"}, doms)
	if err != nil {
		panic(err)
	}
	hs := mustLiftScheme()
	sr := rel.NewRelation(rs)
	hr := core.NewRelation(hs)
	for i := 0; i < n; i++ {
		k, a := value.Int(int64(i)), value.Int(int64((i*7919)%1000))
		sr.MustInsert(rel.Tuple{k, a})
		hr.MustInsert(core.NewTupleBuilder(hs, lifespan.Point(0)).
			Key("K", k).Key("A", a).MustBuild())
	}
	return sr, hr
}

// E10Storage reports storage bytes for the three representations across
// schema width and change heterogeneity (§2's granularity tradeoff).
//
// Two workload families expose the crossover. "narrow": the 3-attribute
// personnel scheme whose attributes change in lockstep — there tuple
// timestamping can even undercut HRDM, since HRDM pays one interval per
// attribute step while a lockstep change costs the tuple model a single
// narrow version. "wide/N": N+1-attribute schemes whose attributes change
// at rates spread over a factor of 2^N — the paper's motivating shape,
// where one hot attribute forces the tuple model to re-store the whole
// wide tuple and HRDM wins increasingly with width. The cube pays per
// object-chronon regardless.
func E10Storage() Table {
	t := Table{
		ID:     "E10",
		Title:  "storage bytes: HRDM vs tuple-timestamping vs cube",
		Header: []string{"workload", "HRDM", "tuplestamp", "cube", "ts/HRDM", "cube/HRDM"},
		Note:   "HRDM stores one entry per attribute change; tuplestamp one full tuple per any change; cube one row per object-chronon",
	}
	add := func(label string, world *core.Relation, hist int) {
		hb := storage.SizeBytes(world)
		ts, err := workload.ToTupleStamp(world)
		if err != nil {
			panic(err)
		}
		cb, err := workload.ToCube(world, chronon.NewInterval(0, chronon.Time(hist-1)))
		if err != nil {
			panic(err)
		}
		tsb, cbb := ts.SizeBytes(), cb.SizeBytes()
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(hb), fmt.Sprint(tsb), fmt.Sprint(cbb),
			fmt.Sprintf("%.2fx", float64(tsb)/float64(hb)),
			fmt.Sprintf("%.2fx", float64(cbb)/float64(hb)),
		})
	}
	for _, change := range []int{5, 20, 80} {
		add(fmt.Sprintf("narrow chg=%d", change), personnel(200, 400, change, 10), 400)
	}
	for _, width := range []int{4, 8, 16} {
		cfg := workload.WideConfig{NumObjects: 100, HistoryLen: 400, NumAttrs: width, BaseChange: 5, Seed: 21}
		add(fmt.Sprintf("wide/%d", width), workload.Wide(cfg), 400)
	}
	return t
}

// E11Queries measures the three motivating queries on the three
// representations.
func E11Queries() Table {
	t := Table{
		ID:     "E11",
		Title:  "query cost by representation (500 objects, history 400)",
		Header: []string{"query", "HRDM", "tuplestamp", "cube"},
		Note:   "key-history: HRDM/tuplestamp index directly; cube scans its dense timeline. when-P: cube scans every chronon",
	}
	hist := 400
	world := personnel(500, hist, 20, 11)
	ts, err := workload.ToTupleStamp(world)
	if err != nil {
		panic(err)
	}
	cb, err := workload.ToCube(world, chronon.NewInterval(0, chronon.Time(hist-1)))
	if err != nil {
		panic(err)
	}
	probe := value.String_("emp0042")
	reps := 20
	// Key history.
	h1 := timeIt(reps, func() { _, _ = world.Lookup(probe.String()) })
	t1 := timeIt(reps, func() { _ = ts.KeyHistory(probe) })
	c1 := timeIt(reps, func() { _ = cb.KeyHistory(probe) })
	t.Rows = append(t.Rows, []string{"key history", dur(h1), dur(t1), dur(c1)})
	// Snapshot at t.
	at := chronon.Time(hist / 2)
	h2 := timeIt(reps, func() { _, _ = core.Snapshot(world, at) })
	t2 := timeIt(reps, func() { _ = ts.SnapshotAt(at) })
	c2 := timeIt(reps, func() { _ = cb.SnapshotAt(at) })
	t.Rows = append(t.Rows, []string{"snapshot@t", dur(h2), dur(t2), dur(c2)})
	// When did P hold.
	pred := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	h3 := timeIt(reps, func() {
		sel, _ := core.SelectWhen(world, pred, lifespan.All())
		_ = core.When(sel)
	})
	t3 := timeIt(reps, func() { _, _ = ts.When("SAL", value.GE, value.Int(40000)) })
	c3 := timeIt(reps, func() { _, _ = cb.When("SAL", value.GE, value.Int(40000)) })
	t.Rows = append(t.Rows, []string{"when SAL>=40000", dur(h3), dur(t3), dur(c3)})
	return t
}

// E12Laws measures both sides of the §5 rewrites; equality of results is
// property-tested in internal/core.
func E12Laws() Table {
	t := Table{
		ID:     "E12",
		Title:  "algebraic rewrites: cost of each side (1000 objects)",
		Header: []string{"law", "lhs", "rhs"},
		Note:   "σ-before-slice vs slice-before-σ: filtering first shrinks the slice input, and vice versa",
	}
	world := personnel(1000, 200, 20, 12)
	p := core.Predicate{Attr: "SAL", Theta: value.GE, Const: value.Int(40000)}
	L := lifespan.Interval(50, 149)
	lhs := timeIt(3, func() {
		s, _ := core.SelectWhen(world, p, lifespan.All())
		_, _ = core.TimesliceStatic(s, L)
	})
	rhs := timeIt(3, func() {
		s, _ := core.TimesliceStatic(world, L)
		_, _ = core.SelectWhen(s, p, lifespan.All())
	})
	t.Rows = append(t.Rows, []string{"T_L∘σ = σ∘T_L", dur(lhs), dur(rhs)})

	a, _ := core.TimesliceStatic(world, lifespan.Interval(0, 120))
	b, _ := core.TimesliceStatic(world, lifespan.Interval(80, 199))
	lhs2 := timeIt(3, func() {
		u, _ := core.UnionMerge(a, b)
		_, _ = core.SelectWhen(u, p, lifespan.All())
	})
	rhs2 := timeIt(3, func() {
		s1, _ := core.SelectWhen(a, p, lifespan.All())
		s2, _ := core.SelectWhen(b, p, lifespan.All())
		_, _ = core.UnionMerge(s1, s2)
	})
	t.Rows = append(t.Rows, []string{"σ(r1 ∪o r2) = σr1 ∪o σr2", dur(lhs2), dur(rhs2)})
	return t
}

// All runs every experiment in order.
func All() []Table {
	return []Table{
		E1SetOps(), E2Project(), E3Select(), E4Timeslice(), E5UnionVsMerge(),
		E6Joins(), E7TimeJoin(), E8When(), E9Reduction(), E10Storage(),
		E11Queries(), E12Laws(),
	}
}
