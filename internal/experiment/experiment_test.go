package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment functions are exercised at full scale by cmd/hrdm-bench;
// these tests verify structure and the qualitative claims ("shape") each
// table must exhibit, on the same code paths.

func TestTableString(t *testing.T) {
	tb := Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Note:   "hello",
	}
	out := tb.String()
	for _, frag := range []string{"== EX: demo ==", "long-column", "333", "note: hello"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q:\n%s", frag, out)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5UnionVsMerge()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.Contains(row[1], "rejected") {
			t.Errorf("plain union of overlapping objects must be rejected, got %q", row[1])
		}
		n, _ := strconv.Atoi(row[0])
		merged, _ := strconv.Atoi(row[2])
		if merged == 0 || merged > n {
			t.Errorf("∪o of split histories must restore ≤ %d objects, got %d", n, merged)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10Storage()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	bytesOf := func(row []string, col int) float64 {
		v, err := strconv.Atoi(row[col])
		if err != nil || v <= 0 {
			t.Fatalf("bad size cell %q in %v", row[col], row)
		}
		return float64(v)
	}
	for _, row := range tb.Rows {
		hrdm, ts, cube := bytesOf(row, 1), bytesOf(row, 2), bytesOf(row, 3)
		// The dense cube is always the most expensive by far.
		if cube < ts || cube < hrdm {
			t.Errorf("cube must dominate both: %v", row)
		}
		// On the wide heterogeneous workloads — the paper's motivating
		// shape — HRDM must beat tuple-timestamping.
		if strings.HasPrefix(row[0], "wide") && ts <= hrdm {
			t.Errorf("HRDM should win on wide schemas: %v", row)
		}
	}
	// The ts/HRDM ratio must grow with schema width (the redundancy of
	// re-storing the whole tuple grows with width).
	ratio := func(row []string) float64 { return bytesOf(row, 2) / bytesOf(row, 1) }
	if !(ratio(tb.Rows[5]) > ratio(tb.Rows[3])) {
		t.Errorf("ts/HRDM should grow with width: %v vs %v", tb.Rows[5], tb.Rows[3])
	}
	// The cube/HRDM ratio must grow with quieter narrow histories.
	cr := func(row []string) float64 { return bytesOf(row, 3) / bytesOf(row, 1) }
	if !(cr(tb.Rows[2]) > cr(tb.Rows[0])) {
		t.Errorf("cube/HRDM should grow with quieter histories: %v vs %v", tb.Rows[2], tb.Rows[0])
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9Reduction()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("ratio cell malformed: %v", row)
		}
	}
}

func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	// Smoke-run the remaining tables; structure only.
	for _, tb := range []Table{E2Project(), E8When(), E12Laws()} {
		if len(tb.Rows) == 0 || len(tb.Header) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: ragged row %v", tb.ID, row)
			}
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow; run without -short")
	}
	tables := All()
	if len(tables) != 12 {
		t.Fatalf("expected 12 experiment tables, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if seen[tb.ID] {
			t.Errorf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: ragged row %v vs header %v", tb.ID, row, tb.Header)
			}
			for i, cell := range row {
				if strings.TrimSpace(cell) == "" {
					t.Errorf("%s: empty cell %d in %v", tb.ID, i, row)
				}
			}
		}
		if !strings.Contains(tb.String(), tb.ID) {
			t.Errorf("%s: String() must carry the id", tb.ID)
		}
	}
}
