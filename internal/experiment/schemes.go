package experiment

import (
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/value"
)

// mustDeptScheme builds the DEPTREL scheme used by the join experiments.
func mustDeptScheme(full lifespan.Lifespan) *schema.Scheme {
	return schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

// mustMgrScheme builds a MGR scheme sharing NAME with the personnel
// scheme, for natural-join experiments.
func mustMgrScheme(full lifespan.Lifespan) *schema.Scheme {
	return schema.MustNew("MGR", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
}

// mustLiftScheme is the two-int-attribute scheme of the lifted static
// relations in E9; both attributes are key so whole-tuple identity
// matches classical set semantics.
func mustLiftScheme() *schema.Scheme {
	at := lifespan.Point(0)
	return schema.MustNew("R", []string{"K", "A"},
		schema.Attribute{Name: "K", Domain: value.Ints, Lifespan: at},
		schema.Attribute{Name: "A", Domain: value.Ints, Lifespan: at},
	)
}
