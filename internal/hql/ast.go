package hql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Expr is a parsed query expression. Relation-valued expressions
// evaluate to historical relations; WHEN expressions evaluate to
// lifespans; SNAPSHOT expressions evaluate to classical relations.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// RelName references a stored relation by name.
type RelName struct{ Name string }

// SelectExpr is SELECT IF/WHEN cond [FORALL|EXISTS] [DURING ls] FROM
// expr, where cond is a boolean combination (AND/OR/NOT, parentheses) of
// simple predicates.
type SelectExpr struct {
	When   bool // true: SELECT-WHEN; false: SELECT-IF
	Cond   CondExpr
	ForAll bool    // SELECT-IF only
	During *LSExpr // optional L parameter; nil means T
	Source Expr
}

// CondExpr is a parsed condition tree: either a leaf predicate or a
// boolean combination.
type CondExpr struct {
	Pred *PredExpr  // leaf
	Op   string     // "AND", "OR", "NOT"
	Kids []CondExpr // operands (one for NOT)
}

// String renders the condition.
func (c CondExpr) String() string {
	if c.Pred != nil {
		return c.Pred.String()
	}
	if c.Op == "NOT" {
		return "NOT (" + c.Kids[0].String() + ")"
	}
	parts := make([]string, len(c.Kids))
	for i, k := range c.Kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " "+c.Op+" ") + ")"
}

// ProjectExpr is PROJECT attrs FROM expr.
type ProjectExpr struct {
	Attrs  []string
	Source Expr
}

// TimesliceExpr is TIMESLICE expr AT ls (static) or TIMESLICE expr BY
// attr (dynamic).
type TimesliceExpr struct {
	Source Expr
	At     *LSExpr // static form
	By     string  // dynamic form (time-valued attribute)
}

// BinaryExpr covers the set-theoretic operators, product and joins.
type BinaryExpr struct {
	Op          string // UNION, UNIONMERGE, INTERSECT, INTERSECTMERGE, MINUS, MINUSMERGE, TIMES, JOIN, NATJOIN, TIMEJOIN
	Left, Right Expr
	// JOIN: ON AttrA theta AttrB. TIMEJOIN: ON AttrA.
	AttrA, AttrB string
	Theta        value.Theta
}

// RenameExpr is RENAME expr AS prefix.
type RenameExpr struct {
	Source Expr
	Prefix string
}

// MaterializeExpr is MATERIALIZE expr — lift the representation level to
// the model level by applying each attribute's interpolation function.
type MaterializeExpr struct{ Source Expr }

// WhenExpr is WHEN expr — relation to lifespan.
type WhenExpr struct{ Source Expr }

// SnapshotExpr is SNAPSHOT expr AT time — relation to classical relation.
type SnapshotExpr struct {
	Source Expr
	At     int64
}

// PredExpr is the selection criterion A θ rhs.
type PredExpr struct {
	Attr  string
	Theta value.Theta
	// Exactly one of Const/OtherAttr is set.
	Const     value.Value
	OtherAttr string
}

// LSExpr is a lifespan-valued expression: a literal, WHEN expr, or a
// set-theoretic combination.
type LSExpr struct {
	Literal string // "{...}" when a literal
	When    Expr   // WHEN sub-expression
	Op      string // UNION, INTERSECT, MINUS combining Left and Right
	Left    *LSExpr
	Right   *LSExpr
}

func (*RelName) exprNode()         {}
func (*SelectExpr) exprNode()      {}
func (*ProjectExpr) exprNode()     {}
func (*TimesliceExpr) exprNode()   {}
func (*BinaryExpr) exprNode()      {}
func (*RenameExpr) exprNode()      {}
func (*MaterializeExpr) exprNode() {}
func (*WhenExpr) exprNode()        {}
func (*SnapshotExpr) exprNode()    {}

func (e *RelName) String() string { return e.Name }

func (e *SelectExpr) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if e.When {
		b.WriteString("WHEN ")
	} else {
		b.WriteString("IF ")
	}
	b.WriteString(e.Cond.String())
	if !e.When {
		if e.ForAll {
			b.WriteString(" FORALL")
		} else {
			b.WriteString(" EXISTS")
		}
	}
	if e.During != nil {
		b.WriteString(" DURING " + e.During.String())
	}
	b.WriteString(" FROM " + e.Source.String())
	return b.String()
}

func (e *ProjectExpr) String() string {
	return "PROJECT " + strings.Join(e.Attrs, ", ") + " FROM " + e.Source.String()
}

func (e *TimesliceExpr) String() string {
	if e.By != "" {
		return "TIMESLICE " + e.Source.String() + " BY " + e.By
	}
	return "TIMESLICE " + e.Source.String() + " AT " + e.At.String()
}

func (e *BinaryExpr) String() string {
	s := "(" + e.Left.String() + " " + e.Op + " " + e.Right.String()
	switch e.Op {
	case "JOIN", "OUTERJOIN":
		s += " ON " + e.AttrA + " " + e.Theta.String() + " " + e.AttrB
	case "TIMEJOIN":
		s += " ON " + e.AttrA
	}
	return s + ")"
}

func (e *RenameExpr) String() string {
	return "RENAME " + e.Source.String() + " AS " + e.Prefix
}

func (e *MaterializeExpr) String() string { return "MATERIALIZE " + e.Source.String() }

func (e *WhenExpr) String() string { return "WHEN " + e.Source.String() }

func (e *SnapshotExpr) String() string {
	return fmt.Sprintf("SNAPSHOT %s AT %d", e.Source, e.At)
}

func (p PredExpr) String() string {
	rhs := p.OtherAttr
	if rhs == "" {
		rhs = p.Const.String()
	}
	return p.Attr + " " + p.Theta.String() + " " + rhs
}

func (l *LSExpr) String() string {
	switch {
	case l.Literal != "":
		return l.Literal
	case l.When != nil:
		return "WHEN (" + l.When.String() + ")"
	default:
		return "(" + l.Left.String() + " " + l.Op + " " + l.Right.String() + ")"
	}
}
