// Package hql implements a small textual query language over the HRDM
// algebra, used by the hrdm-cli shell and the examples. Every operator of
// the paper's algebra is reachable:
//
//	SELECT IF SAL >= 30000 FORALL DURING {[0,9]} FROM EMP
//	SELECT WHEN SAL = 30000 FROM EMP
//	SELECT WHEN SAL = 30000 AND DEPT = "Toys" FROM EMP
//	SELECT IF NOT (SAL < 20000) OR DEPT = "Books" FORALL FROM EMP
//	PROJECT NAME, SAL FROM EMP
//	TIMESLICE EMP AT {[0,9]}             -- static TIME-SLICE
//	TIMESLICE EMP AT WHEN (SELECT WHEN SAL=30000 FROM EMP)
//	TIMESLICE EMP BY REVIEW              -- dynamic TIME-SLICE
//	EMP UNION EMP2, EMP UNIONMERGE EMP2, INTERSECT[MERGE], MINUS[MERGE]
//	EMP TIMES DEPTREL                    -- Cartesian product
//	EMP JOIN DEPTREL ON DEPT = DNAME     -- θ-join / equijoin
//	EMP NATJOIN MGR                      -- natural join
//	SHIP TIMEJOIN DEPTREL ON SHIPDATE    -- TIME-JOIN
//	EMP OUTERJOIN DEPTREL ON DEPT = DNAME -- §5 union-lifespan join (nulls)
//	MATERIALIZE EMP                      -- apply interpolators (Figure 9)
//	WHEN EMP                             -- Ω, yields a lifespan
//	SNAPSHOT EMP AT 7                    -- classical snapshot
//
// Evaluation is snapshot-isolated on every path: the installed engine
// hook pins a verified snapshot per plan, and EvalNaive — the
// tree-walking reference evaluator and the planner's fallback — pins
// its own consistent cut of every referenced relation (pinenv.go)
// before walking, so even unplannable multi-relation queries read one
// database state while writers race.
package hql
