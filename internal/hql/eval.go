package hql

import (
	"context"
	"fmt"

	"repro/internal/chronon"
	"repro/internal/core"
	"repro/internal/hrdmerr"
	"repro/internal/lifespan"
	"repro/internal/rel"
	"repro/internal/value"
)

// chTime converts a parsed integer to a chronon.
func chTime(n int64) chronon.Time { return chronon.Time(n) }

// Env resolves relation names to historical relations.
type Env interface {
	Get(name string) (*core.Relation, bool)
}

// Result is the value of a query: exactly one field is set, mirroring the
// multi-sorted language of Section 4.5 (relations and lifespans; plus
// classical relations for SNAPSHOT).
type Result struct {
	Relation *core.Relation
	Lifespan *lifespan.Lifespan
	Snapshot *rel.Relation
}

// String renders whichever sort the result carries.
func (r Result) String() string {
	switch {
	case r.Relation != nil:
		return r.Relation.String()
	case r.Lifespan != nil:
		return r.Lifespan.String()
	case r.Snapshot != nil:
		return r.Snapshot.String()
	}
	return "<empty result>"
}

// Run parses and evaluates a query against env with a background
// context; RunContext is the primary entry point.
func Run(src string, env Env) (Result, error) {
	return RunContext(context.Background(), src, env)
}

// RunContext parses and evaluates a query against env. The context
// governs evaluation: cancellation or an expired deadline aborts the
// walk (and any installed planner's execution) with a typed
// hrdmerr.ErrCanceled / ErrDeadline error.
func RunContext(ctx context.Context, src string, env Env) (Result, error) {
	e, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	return EvalContext(ctx, e, env)
}

// Planner is an optional physical-plan hook. When installed (by
// importing internal/engine, whose init registers its cost-aware
// planner), Eval routes expressions through it; the hook reports
// handled=false to fall back to the naive tree-walking evaluator. The
// hook must not call Eval on the same expression, or evaluation would
// recurse; it composes with EvalNaive instead. The context carries the
// query's cancellation and deadline; hooks honor it at iterator batch
// boundaries.
type Planner func(ctx context.Context, e Expr, env Env) (res Result, handled bool, err error)

// planner is set once at init time (engine's package init) and read on
// every Eval; no locking is needed because installation happens before
// any query runs.
var planner Planner

// SetPlanner installs the physical planner hook. Passing nil restores
// the naive evaluator.
func SetPlanner(p Planner) { planner = p }

// Eval evaluates a parsed expression with a background context;
// EvalContext is the primary entry point.
func Eval(e Expr, env Env) (Result, error) {
	return EvalContext(context.Background(), e, env)
}

// EvalContext evaluates a parsed expression, routing through the
// installed physical planner when one is registered.
func EvalContext(ctx context.Context, e Expr, env Env) (Result, error) {
	if planner != nil {
		if res, handled, err := planner(ctx, e, env); handled || err != nil {
			return res, err
		}
	}
	return EvalNaiveContext(ctx, e, env)
}

// EvalNaive evaluates a parsed expression with the direct tree-walking
// evaluator — every operator a linear scan, exactly the paper's
// definitional semantics. It is the reference implementation the
// planner's indexed plans are property-tested against.
//
// Like the engine's physical plans, naive evaluation is
// snapshot-isolated: every base relation the expression references is
// pinned in one core.Pin cut before the walk starts, and the operators
// consume frozen views of the pinned versions. A multi-relation query
// racing a writer therefore reads one consistent database state on the
// naive path exactly as it does on the planned path.
func EvalNaive(e Expr, env Env) (Result, error) {
	return EvalNaiveContext(context.Background(), e, env)
}

// EvalNaiveContext is EvalNaive under a context: the walk checks for
// cancellation at every operator node, so a canceled or deadline-
// expired query aborts between operators with a typed error. Errors
// leaving the naive evaluator are classified — semantic failures
// (unknown relation, sort mismatch) match hrdmerr.ErrSemantic,
// cancellation matches ErrCanceled/ErrDeadline.
func EvalNaiveContext(ctx context.Context, e Expr, env Env) (Result, error) {
	env, err := pinExprEnv(e, env)
	if err != nil {
		return Result{}, hrdmerr.Wrap(hrdmerr.CodeSemantic, err)
	}
	res, err := evalNaivePinned(ctx, e, env)
	return res, hrdmerr.Wrap(hrdmerr.CodeSemantic, err)
}

// evalNaivePinned is the tree walk itself, over an environment whose
// relations are already one consistent cut.
func evalNaivePinned(ctx context.Context, e Expr, env Env) (Result, error) {
	switch n := e.(type) {
	case *WhenExpr:
		r, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return Result{}, err
		}
		ls := core.When(r)
		return Result{Lifespan: &ls}, nil
	case *SnapshotExpr:
		r, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return Result{}, err
		}
		snap, err := core.Snapshot(r, chronon.Time(n.At))
		if err != nil {
			return Result{}, err
		}
		return Result{Snapshot: snap}, nil
	default:
		r, err := evalRel(ctx, e, env)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: r}, nil
	}
}

// evalRel evaluates a relation-valued expression. The cancellation
// check at entry runs once per operator node: each operator is a full
// scan in the naive evaluator, so per-node is the natural abort
// granularity here (the engine's plans abort finer, at iterator batch
// boundaries).
func evalRel(ctx context.Context, e Expr, env Env) (*core.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, hrdmerr.FromContext(err)
	}
	switch n := e.(type) {
	case *RelName:
		r, ok := env.Get(n.Name)
		if !ok {
			return nil, fmt.Errorf("hql: unknown relation %q", n.Name)
		}
		return r, nil
	case *SelectExpr:
		src, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return nil, err
		}
		L := lifespan.All()
		if n.During != nil {
			L, err = evalLS(ctx, n.During, env)
			if err != nil {
				return nil, err
			}
		}
		cond, err := buildCond(n.Cond)
		if err != nil {
			return nil, err
		}
		if n.When {
			return core.SelectWhenCond(src, cond, L)
		}
		q := core.Exists
		if n.ForAll {
			q = core.ForAll
		}
		return core.SelectIfCond(src, cond, q, L)
	case *ProjectExpr:
		src, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return nil, err
		}
		return core.Project(src, n.Attrs...)
	case *TimesliceExpr:
		src, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return nil, err
		}
		if n.By != "" {
			return core.TimesliceDynamic(src, n.By)
		}
		L, err := evalLS(ctx, n.At, env)
		if err != nil {
			return nil, err
		}
		return core.TimesliceStatic(src, L)
	case *RenameExpr:
		src, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return nil, err
		}
		return src.Rename(n.Prefix)
	case *MaterializeExpr:
		src, err := evalRel(ctx, n.Source, env)
		if err != nil {
			return nil, err
		}
		return core.Materialize(src)
	case *BinaryExpr:
		left, err := evalRel(ctx, n.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := evalRel(ctx, n.Right, env)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "UNION":
			return core.Union(left, right)
		case "UNIONMERGE":
			return core.UnionMerge(left, right)
		case "INTERSECT":
			return core.Intersect(left, right)
		case "INTERSECTMERGE":
			return core.IntersectMerge(left, right)
		case "MINUS":
			return core.Diff(left, right)
		case "MINUSMERGE":
			return core.DiffMerge(left, right)
		case "TIMES":
			return core.Product(left, right)
		case "JOIN":
			if n.Theta == value.EQ {
				return core.EquiJoin(left, right, n.AttrA, n.AttrB)
			}
			return core.ThetaJoin(left, right, n.AttrA, n.Theta, n.AttrB)
		case "OUTERJOIN":
			return core.ThetaJoinOuter(left, right, n.AttrA, n.Theta, n.AttrB)
		case "NATJOIN":
			return core.NaturalJoin(left, right)
		case "TIMEJOIN":
			return core.TimeJoin(left, right, n.AttrA)
		}
		return nil, fmt.Errorf("hql: unknown operator %s", n.Op)
	case *WhenExpr, *SnapshotExpr:
		return nil, fmt.Errorf("hql: %s is not relation-valued here", e)
	}
	return nil, fmt.Errorf("hql: unhandled expression %T", e)
}

// BuildCond converts a parsed condition tree to the algebra's
// Condition; the planner lowers SELECT nodes through it.
func BuildCond(c CondExpr) (core.Condition, error) { return buildCond(c) }

// buildCond converts a parsed condition tree to the algebra's Condition.
func buildCond(c CondExpr) (core.Condition, error) {
	if c.Pred != nil {
		return core.Atom{Pred: core.Predicate{Attr: c.Pred.Attr, Theta: c.Pred.Theta,
			Const: c.Pred.Const, OtherAttr: c.Pred.OtherAttr}}, nil
	}
	kids := make([]core.Condition, len(c.Kids))
	for i, k := range c.Kids {
		kc, err := buildCond(k)
		if err != nil {
			return nil, err
		}
		kids[i] = kc
	}
	switch c.Op {
	case "AND":
		return core.And{Kids: kids}, nil
	case "OR":
		return core.Or{Kids: kids}, nil
	case "NOT":
		return core.Not{Kid: kids[0]}, nil
	}
	return nil, fmt.Errorf("hql: malformed condition %s", c)
}

// evalLS evaluates a lifespan-valued expression.
func evalLS(ctx context.Context, e *LSExpr, env Env) (lifespan.Lifespan, error) {
	switch {
	case e.Literal != "":
		return lifespan.Parse(e.Literal)
	case e.When != nil:
		r, err := evalRel(ctx, e.When, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		return core.When(r), nil
	default:
		l, err := evalLS(ctx, e.Left, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		r, err := evalLS(ctx, e.Right, env)
		if err != nil {
			return lifespan.Lifespan{}, err
		}
		switch e.Op {
		case "UNION":
			return l.Union(r), nil
		case "INTERSECT":
			return l.Intersect(r), nil
		case "MINUS":
			return l.Minus(r), nil
		}
		return lifespan.Lifespan{}, fmt.Errorf("hql: unknown lifespan operator %s", e.Op)
	}
}
