package hql

import (
	"testing"
	"unicode/utf8"
)

// fuzzSeeds spans the grammar: every operator family, quoting styles,
// comments-of-errors (malformed inputs that must fail cleanly), and
// whitespace variants the normalizer collapses.
var fuzzSeeds = []string{
	`SELECT WHEN SAL = 30000 FROM EMP`,
	`SELECT IF SAL > 1 FORALL FROM EMP`,
	`SELECT WHEN DEPT = 'Toys' AND SAL >= 30000 DURING {[5,15]} FROM EMP`,
	`TIMESLICE EMP AT {[0,9]}`,
	`TIMESLICE EMP AT WHEN (SELECT WHEN SAL = 1 FROM EMP)`,
	`TIMESLICE EMP BY SHIPDATE`,
	`PROJECT NAME, SAL FROM EMP`,
	`RENAME EMP AS E`,
	`EMP JOIN REF ON NAME = RNAME`,
	`EMP OUTERJOIN REF ON NAME /= RNAME`,
	`EMP NATJOIN DEPTREL`,
	`EMP TIMEJOIN SHIP AT SHIPDATE`,
	`(A UNION B) INTERSECT (C MINUS D)`,
	`A UNIONMERGE B`,
	`WHEN EMP`,
	`SNAPSHOT EMP AT 7`,
	`MATERIALIZE EMP`,
	`SELECT WHEN NAME = "dou\"ble" FROM EMP`,
	`SELECT WHEN NAME = 'sin\'gle' FROM EMP`,
	"SELECT\tWHEN \n SAL = 1\r\nFROM  EMP",
	`SELECT WHEN`,
	`{[`,
	`'unterminated`,
	`)( mismatched`,
	"\x00\xff\xfe",
	``,
}

// FuzzParse hardens the HQL lexer and parser against arbitrary input:
// any string must parse or return an error — never panic — and an
// accepted expression's canonical rendering must itself parse to the
// same canonical rendering (String is a fixpoint), which is what the
// engine's plan cache keys rely on.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is the expected path for junk
		}
		text := e.String()
		e2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical rendering does not re-parse:\n src: %q\ntext: %q\nerr: %v", src, text, err)
		}
		if got := e2.String(); got != text {
			t.Fatalf("String is not a fixpoint:\n src: %q\n 1st: %q\n 2nd: %q", src, text, got)
		}
	})
}

// FuzzNormalizeQuery checks the whitespace normalizer the plan cache
// keys raw query text by: idempotent on any input (normalizing twice
// equals normalizing once — two spellings that normalize equally must
// keep doing so), never grows the input, and preserves UTF-8 validity.
func FuzzNormalizeQuery(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n1 := NormalizeQuery(src)
		n2 := NormalizeQuery(n1)
		if n1 != n2 {
			t.Fatalf("NormalizeQuery not idempotent:\n src: %q\n  n1: %q\n  n2: %q", src, n1, n2)
		}
		if len(n1) > len(src) {
			t.Fatalf("NormalizeQuery grew its input: %q -> %q", src, n1)
		}
		if utf8.ValidString(src) && !utf8.ValidString(n1) {
			t.Fatalf("NormalizeQuery broke UTF-8: %q -> %q", src, n1)
		}
		// Normalization must never change what a query means: both
		// spellings parse to the same expression, or both fail.
		e1, err1 := Parse(src)
		e2, err2 := Parse(n1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("normalization changed parse outcome:\n src: %q (%v)\nnorm: %q (%v)", src, err1, n1, err2)
		}
		if err1 == nil && e1.String() != e2.String() {
			t.Fatalf("normalization changed the AST:\n src: %q -> %s\nnorm: %q -> %s", src, e1, n1, e2)
		}
	})
}
