package hql

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func ls(s string) lifespan.Lifespan { return lifespan.MustParse(s) }

// testEnv builds the EMP/DEPTREL/SHIP fixture store shared by the tests.
func testEnv(t testing.TB) *storage.Store {
	t.Helper()
	full := ls("{[0,99]}")
	es := schema.MustNew("EMP", []string{"NAME"},
		schema.Attribute{Name: "NAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "SAL", Domain: value.Ints, Lifespan: full, Interp: "step"},
		schema.Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: full, Interp: "step"},
	)
	emp := core.NewRelation(es)
	emp.MustInsert(core.NewTupleBuilder(es, ls("{[0,9]}")).
		Key("NAME", value.String_("John")).
		Set("SAL", 0, 4, value.Int(30000)).
		Set("SAL", 5, 9, value.Int(34000)).
		Set("DEPT", 0, 9, value.String_("Toys")).
		MustBuild())
	emp.MustInsert(core.NewTupleBuilder(es, ls("{[3,19]}")).
		Key("NAME", value.String_("Mary")).
		Set("SAL", 3, 19, value.Int(40000)).
		Set("DEPT", 3, 9, value.String_("Shoes")).
		Set("DEPT", 10, 19, value.String_("Books")).
		MustBuild())

	ds := schema.MustNew("DEPTREL", []string{"DNAME"},
		schema.Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: full},
		schema.Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: full, Interp: "step"},
	)
	dept := core.NewRelation(ds)
	for i, n := range []string{"Toys", "Shoes", "Books"} {
		dept.MustInsert(core.NewTupleBuilder(ds, ls("{[0,19]}")).
			Key("DNAME", value.String_(n)).
			Set("FLOOR", 0, 19, value.Int(int64(i+1))).
			MustBuild())
	}

	ss := schema.MustNew("SHIP", []string{"ID"},
		schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		schema.Attribute{Name: "SHIPDATE", Domain: value.Times, Lifespan: full},
	)
	ship := core.NewRelation(ss)
	ship.MustInsert(core.NewTupleBuilder(ss, ls("{[0,19]}")).
		Key("ID", value.Int(1)).
		Set("SHIPDATE", 0, 19, value.TimeVal(7)).
		MustBuild())

	st := storage.NewStore()
	st.Put(emp)
	st.Put(dept)
	st.Put(ship)
	return st
}

func runRel(t *testing.T, env Env, q string) *core.Relation {
	t.Helper()
	res, err := Run(q, env)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res.Relation == nil {
		t.Fatalf("query %q: expected a relation result, got %s", q, res)
	}
	return res.Relation
}

func TestRelName(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, "EMP")
	if r.Cardinality() != 2 {
		t.Errorf("EMP = %d tuples", r.Cardinality())
	}
	if _, err := Run("NOPE", env); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("unknown relation error missing: %v", err)
	}
}

func TestSelectWhenQuery(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, `SELECT WHEN SAL = 30000 FROM EMP`)
	if r.Cardinality() != 1 {
		t.Fatalf("got %d tuples", r.Cardinality())
	}
	tp := r.Tuples()[0]
	if !tp.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("lifespan = %v", tp.Lifespan())
	}
	// Composition: the paper's NAME=John ∧ SAL=30K example.
	r2 := runRel(t, env, `SELECT WHEN SAL = 30000 FROM (SELECT WHEN NAME = "John" FROM EMP)`)
	if r2.Cardinality() != 1 || !r2.Tuples()[0].Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("composed select-when: %s", r2)
	}
}

func TestSelectIfQuery(t *testing.T) {
	env := testEnv(t)
	// Existential, scoped.
	r := runRel(t, env, `SELECT IF SAL >= 34000 EXISTS DURING {[0,4]} FROM EMP`)
	if r.Cardinality() != 1 {
		t.Fatalf("∃ scoped: %d tuples", r.Cardinality())
	}
	if _, ok := r.Lookup(`"Mary"`); !ok {
		t.Error("Mary must qualify")
	}
	// Universal.
	r2 := runRel(t, env, `SELECT IF SAL >= 34000 FORALL FROM EMP`)
	if r2.Cardinality() != 1 {
		t.Fatalf("∀: %d tuples", r2.Cardinality())
	}
	// Attribute RHS.
	r3 := runRel(t, env, `SELECT WHEN NAME = DEPT FROM EMP`)
	if r3.Cardinality() != 0 {
		t.Error("nobody is named after their department")
	}
}

func TestProjectQuery(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, `PROJECT NAME, SAL FROM EMP`)
	if r.Scheme().HasAttr("DEPT") || !r.Scheme().HasAttr("SAL") {
		t.Errorf("projection scheme = %v", r.Scheme().AttrNames())
	}
}

func TestTimesliceQueries(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, `TIMESLICE EMP AT {[0,2]}`)
	if r.Cardinality() != 1 { // only John alive
		t.Fatalf("static slice: %d tuples", r.Cardinality())
	}
	// WHEN as lifespan parameter.
	r2 := runRel(t, env, `TIMESLICE EMP AT WHEN (SELECT WHEN SAL = 30000 FROM EMP)`)
	john, ok := r2.Lookup(`"John"`)
	if !ok || !john.Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("WHEN-parameterized slice: %s", r2)
	}
	// Lifespan set algebra in the AT clause.
	r3 := runRel(t, env, `TIMESLICE EMP AT {[0,9]} MINUS {[3,9]}`)
	j3, ok := r3.Lookup(`"John"`)
	if !ok || !j3.Lifespan().Equal(ls("{[0,2]}")) {
		t.Errorf("lifespan algebra slice: %s", r3)
	}
	// Dynamic slice.
	r4 := runRel(t, env, `TIMESLICE SHIP BY SHIPDATE`)
	if r4.Cardinality() != 1 || !r4.Tuples()[0].Lifespan().Equal(ls("{7}")) {
		t.Errorf("dynamic slice: %s", r4)
	}
}

func TestWhenQuery(t *testing.T) {
	env := testEnv(t)
	res, err := Run(`WHEN (SELECT WHEN SAL = 40000 FROM EMP)`, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifespan == nil || !res.Lifespan.Equal(ls("{[3,19]}")) {
		t.Errorf("WHEN result = %s", res)
	}
}

func TestJoinQueries(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, `EMP JOIN DEPTREL ON DEPT = DNAME`)
	if r.Cardinality() != 3 { // John-Toys, Mary-Shoes, Mary-Books
		t.Fatalf("equijoin: %d tuples\n%s", r.Cardinality(), r)
	}
	r2 := runRel(t, env, `SHIP TIMEJOIN DEPTREL ON SHIPDATE`)
	if r2.Cardinality() != 3 {
		t.Fatalf("timejoin: %d tuples", r2.Cardinality())
	}
	// θ-join with rename (self-join).
	r3 := runRel(t, env, `EMP JOIN (RENAME EMP AS b) ON SAL > b.SAL`)
	if r3.Cardinality() == 0 {
		t.Error("someone out-earns someone")
	}
	// Product.
	r4 := runRel(t, env, `EMP TIMES DEPTREL`)
	if r4.Cardinality() != 6 {
		t.Errorf("product: %d tuples", r4.Cardinality())
	}
}

func TestSetOpQueries(t *testing.T) {
	env := testEnv(t)
	r := runRel(t, env, `(TIMESLICE EMP AT {[0,8]}) UNIONMERGE (TIMESLICE EMP AT {[6,19]})`)
	emp, _ := env.Get("EMP")
	if !r.Equal(emp) {
		t.Error("slices must reassemble via UNIONMERGE")
	}
	r2 := runRel(t, env, `EMP MINUSMERGE (TIMESLICE EMP AT {[0,9]})`)
	mary, ok := r2.Lookup(`"Mary"`)
	if !ok || r2.Cardinality() != 1 || !mary.Lifespan().Equal(ls("{[10,19]}")) {
		t.Errorf("MINUSMERGE: %s", r2)
	}
	r3 := runRel(t, env, `EMP INTERSECTMERGE (TIMESLICE EMP AT {[0,5]})`)
	if r3.Cardinality() != 2 {
		t.Errorf("INTERSECTMERGE: %d tuples", r3.Cardinality())
	}
	r4 := runRel(t, env, `EMP MINUS EMP`)
	if r4.Cardinality() != 0 {
		t.Error("EMP MINUS EMP must be empty")
	}
}

func TestSnapshotQuery(t *testing.T) {
	env := testEnv(t)
	res, err := Run(`SNAPSHOT EMP AT 7`, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot == nil || res.Snapshot.Cardinality() != 2 {
		t.Errorf("snapshot = %s", res)
	}
	res2, err := Run(`SNAPSHOT EMP AT @50`, env)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Snapshot.Cardinality() != 0 {
		t.Error("snapshot at 50 is empty")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT SAL = 3 FROM EMP",          // missing IF/WHEN
		"SELECT IF SAL 30000 FROM EMP",     // missing comparator
		"SELECT IF SAL = FROM EMP",         // missing RHS
		"PROJECT FROM EMP",                 // no attributes
		"TIMESLICE EMP",                    // missing AT/BY
		"TIMESLICE EMP AT",                 // missing lifespan
		"TIMESLICE EMP AT {[0,",            // unterminated lifespan
		"EMP JOIN DEPTREL",                 // missing ON
		"EMP JOIN DEPTREL ON DEPT",         // missing comparator
		"EMP TIMEJOIN DEPTREL",             // missing ON
		"SNAPSHOT EMP AT x",                // bad time
		"EMP EXTRA",                        // trailing garbage
		"(EMP",                             // unbalanced paren
		`SELECT WHEN NAME = "unterminated`, // bad string
		"RENAME EMP",                       // missing AS
		"WHEN",                             // missing operand
	}
	env := testEnv(t)
	for _, q := range bad {
		if _, err := Run(q, env); err == nil {
			t.Errorf("query %q should fail to parse/evaluate", q)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := testEnv(t)
	bad := []string{
		`SELECT WHEN NOPE = 3 FROM EMP`,  // unknown attribute
		`EMP UNION DEPTREL`,              // union-incompatible
		`EMP JOIN EMP ON SAL = SAL`,      // shared attributes
		`TIMESLICE EMP BY SAL`,           // not time-valued
		`EMP TIMEJOIN DEPTREL ON ID`,     // attr not in left relation
		`SELECT WHEN SAL < "x" FROM EMP`, // incomparable
		`PROJECT NOPE FROM EMP`,          // unknown projection attr
		`EMP NATJOIN SHIP`,               // no shared attributes
	}
	for _, q := range bad {
		if _, err := Run(q, env); err == nil {
			t.Errorf("query %q should fail evaluation", q)
		}
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	// Parsing the String() rendering of a parsed query yields the same
	// String() — a stable pretty-printer.
	queries := []string{
		`SELECT WHEN SAL = 30000 FROM EMP`,
		`SELECT IF SAL >= 30000 FORALL DURING {[0,9]} FROM EMP`,
		`PROJECT NAME, SAL FROM EMP`,
		`TIMESLICE EMP AT {[0,9]}`,
		`TIMESLICE SHIP BY SHIPDATE`,
		`EMP JOIN DEPTREL ON DEPT = DNAME`,
		`EMP NATJOIN EMP`,
		`SHIP TIMEJOIN DEPTREL ON SHIPDATE`,
		`WHEN EMP`,
		`SNAPSHOT EMP AT 7`,
		`RENAME EMP AS b`,
		`EMP UNIONMERGE EMP`,
	}
	for _, q := range queries {
		e1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", e1.String(), q, err)
		}
		if e1.String() != e2.String() {
			t.Errorf("unstable printing: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	// Keywords are case-insensitive; relation and attribute names are not.
	env := testEnv(t)
	r := runRel(t, env, `select when SAL = 30000 from EMP`)
	if r.Cardinality() != 1 {
		t.Errorf("lower-case keywords: %d tuples", r.Cardinality())
	}
	if _, err := Run(`select when sal = 30000 from EMP`, env); err == nil {
		t.Error("attribute names must stay case-sensitive")
	}
}

func TestOuterJoinQuery(t *testing.T) {
	env := testEnv(t)
	outer := runRel(t, env, `EMP OUTERJOIN DEPTREL ON DEPT = DNAME`)
	inner := runRel(t, env, `EMP JOIN DEPTREL ON DEPT = DNAME`)
	if outer.Cardinality() != inner.Cardinality() {
		t.Fatalf("outer %d pairs, inner %d", outer.Cardinality(), inner.Cardinality())
	}
	// Outer join lifespans are unions, so at least as long as inner ones.
	for _, tp := range outer.Tuples() {
		in, ok := inner.Lookup(tp.KeyValue("NAME").String(), tp.KeyValue("DNAME").String())
		if !ok {
			t.Fatal("pair mismatch")
		}
		if !in.Lifespan().SubsetOf(tp.Lifespan()) {
			t.Errorf("outer lifespan %v should cover inner %v", tp.Lifespan(), in.Lifespan())
		}
	}
}

func TestMaterializeQuery(t *testing.T) {
	env := testEnv(t)
	// EMP values are already total step functions, so MATERIALIZE is the
	// identity here; the point is the operator parses and runs.
	m := runRel(t, env, `MATERIALIZE EMP`)
	emp, _ := env.Get("EMP")
	if !m.Equal(emp) {
		t.Error("MATERIALIZE of a total relation must be the identity")
	}
	// And composes.
	r := runRel(t, env, `SELECT WHEN SAL = 30000 FROM MATERIALIZE EMP`)
	if r.Cardinality() != 1 {
		t.Errorf("composed materialize: %d tuples", r.Cardinality())
	}
}

func TestCompoundConditions(t *testing.T) {
	env := testEnv(t)
	// The paper's conjunction as a single query.
	r := runRel(t, env, `SELECT WHEN NAME = "John" AND SAL = 30000 FROM EMP`)
	if r.Cardinality() != 1 || !r.Tuples()[0].Lifespan().Equal(ls("{[0,4]}")) {
		t.Errorf("AND query: %s", r)
	}
	// OR across attributes.
	r2 := runRel(t, env, `SELECT WHEN SAL = 30000 OR DEPT = "Books" FROM EMP`)
	if r2.Cardinality() != 2 {
		t.Errorf("OR query: %d tuples", r2.Cardinality())
	}
	// NOT with precedence: NOT binds tighter than AND, AND tighter than OR.
	r3 := runRel(t, env, `SELECT WHEN NOT SAL = 30000 AND DEPT = "Toys" FROM EMP`)
	john, ok := r3.Lookup(`"John"`)
	if !ok || !john.Lifespan().Equal(ls("{[5,9]}")) {
		t.Errorf("NOT/AND precedence: %s", r3)
	}
	// Parenthesized conditions.
	r4 := runRel(t, env, `SELECT IF (SAL = 30000 OR SAL = 34000) AND DEPT = "Toys" EXISTS FROM EMP`)
	if r4.Cardinality() != 1 {
		t.Errorf("parenthesized condition: %d tuples", r4.Cardinality())
	}
	// ∃ of a joint condition differs from composing two selects: nobody
	// earns 40000 in Toys simultaneously.
	r5 := runRel(t, env, `SELECT IF SAL = 40000 AND DEPT = "Toys" EXISTS FROM EMP`)
	if r5.Cardinality() != 0 {
		t.Errorf("joint ∃ should be empty: %s", r5)
	}
	// Errors inside conditions propagate.
	if _, err := Run(`SELECT WHEN NOPE = 3 OR SAL = 1 FROM EMP`, env); err == nil {
		t.Error("unknown attribute in OR must fail")
	}
	if _, err := Run(`SELECT WHEN SAL = 30000 AND FROM EMP`, env); err == nil {
		t.Error("dangling AND must fail")
	}
	// Round-trip printing of compound conditions.
	for _, q := range []string{
		`SELECT WHEN NAME = "John" AND SAL = 30000 FROM EMP`,
		`SELECT IF NOT (SAL < 20000) OR DEPT = "Books" FORALL FROM EMP`,
	} {
		e1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		e2, err := Parse(e1.String())
		if err != nil || e1.String() != e2.String() {
			t.Errorf("unstable printing for %q: %q vs %q, %v", q, e1.String(), e2.String(), err)
		}
	}
}
