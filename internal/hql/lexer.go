package hql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokTime     // @123
	tokLifespan // {...} literal, captured verbatim
	tokTheta    // = != < <= > >=
	tokComma
	tokLParen
	tokRParen
)

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords of the language, upper-cased. Identifiers matching these are
// lexed as keywords (case-insensitive).
var keywords = map[string]bool{
	"SELECT": true, "IF": true, "WHEN": true, "FROM": true,
	"FORALL": true, "EXISTS": true, "DURING": true,
	"PROJECT": true, "TIMESLICE": true, "AT": true, "BY": true,
	"UNION": true, "UNIONMERGE": true,
	"INTERSECT": true, "INTERSECTMERGE": true,
	"MINUS": true, "MINUSMERGE": true,
	"TIMES": true, "JOIN": true, "NATJOIN": true, "TIMEJOIN": true,
	"ON": true, "SNAPSHOT": true, "RENAME": true, "AS": true,
	"OUTERJOIN": true, "MATERIALIZE": true,
	"TRUE": true, "FALSE": true,
	"AND": true, "OR": true, "NOT": true,
}

// lexer turns a query string into tokens.
type lexer struct {
	src string
	pos int
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("hql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	// Skip whitespace rune-wise (in step with NormalizeQuery): judging
	// single bytes would skip the continuation bytes of multibyte runes
	// that alias Latin-1 whitespace. Invalid bytes decode to RuneError,
	// which is not a space, and fall through to the error below.
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		lx.pos += size
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '{':
		// Lifespan literal: capture through the matching brace.
		depth := 0
		for i := lx.pos; i < len(lx.src); i++ {
			switch lx.src[i] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					text := lx.src[lx.pos : i+1]
					lx.pos = i + 1
					return token{kind: tokLifespan, text: text, pos: start}, nil
				}
			}
		}
		return token{}, lx.errf(start, "unterminated lifespan literal")
	case c == '"' || c == '\'':
		quote := c
		i := lx.pos + 1
		var sb strings.Builder
		for i < len(lx.src) {
			if lx.src[i] == '\\' && i+1 < len(lx.src) {
				// Decode Go-style escape sequences (\n, \xHH, \uHHHH, …)
				// so the canonical rendering of a string constant —
				// strconv.Quote, which emits them for non-printable
				// bytes — lexes back to the same value; the plan
				// cache's AST keys depend on that round trip. Escapes
				// strconv does not recognize keep the historical
				// lenient meaning: the next byte, literally.
				if ch, multibyte, tail, err := strconv.UnquoteChar(lx.src[i:], quote); err == nil {
					if ch < 0x80 || !multibyte {
						sb.WriteByte(byte(ch))
					} else {
						sb.WriteRune(ch)
					}
					i = len(lx.src) - len(tail)
					continue
				}
				sb.WriteByte(lx.src[i+1])
				i += 2
				continue
			}
			if lx.src[i] == quote {
				lx.pos = i + 1
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(lx.src[i])
			i++
		}
		return token{}, lx.errf(start, "unterminated string literal")
	case c == '@':
		lx.pos++
		num, err := lx.number(start)
		if err != nil {
			return token{}, err
		}
		if num.kind != tokInt {
			return token{}, lx.errf(start, "time literal must be an integer")
		}
		return token{kind: tokTime, text: num.text, pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokTheta, text: "=", pos: start}, nil
	case c == '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tokTheta, text: "!=", pos: start}, nil
		}
		return token{}, lx.errf(start, "unexpected '!'")
	case c == '<':
		if lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == '=' || lx.src[lx.pos+1] == '>') {
			t := lx.src[lx.pos : lx.pos+2]
			lx.pos += 2
			if t == "<>" {
				t = "!="
			}
			return token{kind: tokTheta, text: t, pos: start}, nil
		}
		lx.pos++
		return token{kind: tokTheta, text: "<", pos: start}, nil
	case c == '>':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{kind: tokTheta, text: ">=", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokTheta, text: ">", pos: start}, nil
	case c == '-' || c >= '0' && c <= '9':
		return lx.number(start)
	case isIdentStart(c):
		i := lx.pos
		for i < len(lx.src) && isIdentPart(lx.src[i]) {
			i++
		}
		text := lx.src[lx.pos:i]
		lx.pos = i
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	}
	return token{}, lx.errf(start, "unexpected character %q", c)
}

func (lx *lexer) number(start int) (token, error) {
	i := lx.pos
	if i < len(lx.src) && lx.src[i] == '-' {
		i++
	}
	digits := 0
	for i < len(lx.src) && lx.src[i] >= '0' && lx.src[i] <= '9' {
		i++
		digits++
	}
	kind := tokInt
	if i < len(lx.src) && lx.src[i] == '.' {
		kind = tokFloat
		i++
		for i < len(lx.src) && lx.src[i] >= '0' && lx.src[i] <= '9' {
			i++
			digits++
		}
	}
	if digits == 0 {
		return token{}, lx.errf(start, "malformed number")
	}
	text := lx.src[lx.pos:i]
	lx.pos = i
	return token{kind: kind, text: text, pos: start}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}
