package hql

import (
	"reflect"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func texts(toks []token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.kind != tokEOF {
			out = append(out, t.text)
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`SELECT WHEN SAL >= 30000 FROM EMP`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tokKeyword, tokKeyword, tokIdent, tokTheta, tokInt, tokKeyword, tokIdent, tokEOF}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v, want %v", kinds(toks), want)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := lex(`select From tImEsLiCe`)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); !reflect.DeepEqual(got, []string{"SELECT", "FROM", "TIMESLICE"}) {
		t.Errorf("texts = %v", got)
	}
}

func TestLexLifespanLiteral(t *testing.T) {
	toks, err := lex(`{[0,9],[12,15]}`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokLifespan || toks[0].text != "{[0,9],[12,15]}" {
		t.Errorf("lifespan token = %v", toks[0])
	}
	if _, err := lex(`{[0,9]`); err == nil {
		t.Error("unterminated lifespan must fail")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex(`"hello" 'world' "es\"c"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); !reflect.DeepEqual(got, []string{"hello", "world", `es"c`}) {
		t.Errorf("strings = %v", got)
	}
	if _, err := lex(`"open`); err == nil {
		t.Error("unterminated string must fail")
	}
}

func TestLexNumbersAndTimes(t *testing.T) {
	toks, err := lex(`42 -7 3.5 @12`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tokInt, tokInt, tokFloat, tokTime, tokEOF}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v, want %v", kinds(toks), want)
	}
	if _, err := lex(`@3.5`); err == nil {
		t.Error("fractional time must fail")
	}
	if _, err := lex(`-`); err == nil {
		t.Error("bare minus must fail")
	}
}

func TestLexThetas(t *testing.T) {
	toks, err := lex(`= != < <= > >= <>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); !reflect.DeepEqual(got, []string{"=", "!=", "<", "<=", ">", ">=", "!="}) {
		t.Errorf("thetas = %v", got)
	}
	if _, err := lex(`!x`); err == nil {
		t.Error("bare ! must fail")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := lex(`SELECT #`); err == nil {
		t.Error("unexpected character must fail")
	}
}

func TestLexDottedIdent(t *testing.T) {
	// Renamed attributes like b.SAL lex as one identifier.
	toks, err := lex(`b.SAL`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "b.SAL" {
		t.Errorf("dotted ident = %v", toks[0])
	}
}
