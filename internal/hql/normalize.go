package hql

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// NormalizeQuery canonicalizes a query's insignificant whitespace:
// leading and trailing space is dropped and interior runs collapse to a
// single blank, while quoted string literals (either quote style, with
// backslash escapes, as the lexer accepts them) pass through verbatim.
// The result is a stable cache key for textually repeated queries —
// two spellings that normalize equally lex identically — letting the
// engine's plan cache skip parse and plan without understanding the
// grammar. It never changes query semantics: unbalanced quotes and
// other malformed input normalize conservatively and fail in the
// parser as before.
func NormalizeQuery(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	pending := false // a collapsed space waits to be emitted
	for i := 0; i < len(src); {
		c := src[i]
		if c == '\'' || c == '"' {
			if pending && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pending = false
			quote := c
			b.WriteByte(c)
			i++
			for i < len(src) {
				b.WriteByte(src[i])
				if src[i] == '\\' && i+1 < len(src) {
					b.WriteByte(src[i+1])
					i += 2
					continue
				}
				if src[i] == quote {
					i++
					break
				}
				i++
			}
			continue
		}
		// Whitespace is detected rune-wise, matching the lexer: deciding
		// byte-by-byte would mistake the continuation bytes of multibyte
		// runes (0xA0, 0x85 — NBSP and NEL in Latin-1) for whitespace
		// and corrupt valid UTF-8.
		r, size := utf8.DecodeRuneInString(src[i:])
		if unicode.IsSpace(r) {
			pending = true
			i += size
			continue
		}
		if pending && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pending = false
		b.WriteString(src[i : i+size])
		i += size
	}
	return b.String()
}
