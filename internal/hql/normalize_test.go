package hql

import "testing"

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  WHEN  SAL = 1  FROM EMP", "SELECT WHEN SAL = 1 FROM EMP"},
		{"  TIMESLICE EMP AT {[0, 9]} ", "TIMESLICE EMP AT {[0, 9]}"},
		{"a\t\nb", "a b"},
		{"SELECT WHEN DEPT = 'Toy  Shop' FROM EMP", "SELECT WHEN DEPT = 'Toy  Shop' FROM EMP"},
		{`SELECT WHEN DEPT = "a \' b" FROM EMP`, `SELECT WHEN DEPT = "a \' b" FROM EMP`},
		{"SELECT WHEN DEPT = 'esc \\' quote  ' FROM X", "SELECT WHEN DEPT = 'esc \\' quote  ' FROM X"},
		{"", ""},
		{"   ", ""},
		{"'unterminated   literal", "'unterminated   literal"},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.in); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Two spellings that normalize equally must lex identically — the
	// property the plan cache's source keys rely on.
	a := NormalizeQuery("SELECT   WHEN SAL =  30000 FROM EMP")
	b := NormalizeQuery("SELECT WHEN SAL = 30000  FROM  EMP")
	if a != b {
		t.Fatalf("equivalent spellings normalize differently: %q vs %q", a, b)
	}
}
