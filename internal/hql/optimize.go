package hql

import (
	"context"

	"repro/internal/lifespan"
)

// Optimize rewrites a parsed query using the algebraic laws of the
// paper's Section 5, each of which is property-verified in
// internal/core (laws_test.go) and cost-measured in experiment E12:
//
//  1. σ pushdown over the object-based set operators:
//     σ(r1 ∪o r2) → σr1 ∪o σr2 (and ∩o, and the left operand of −o) —
//     E12 measures ~1.7× on union-merge inputs.
//  2. T_L composition: T_L1(T_L2(r)) → T_{L1 ∩ L2}(r) when both
//     lifespans are literal.
//  3. σ-WHEN/T_L reordering: T_L(σ-WHEN_p(r)) → σ-WHEN_p(T_L(r)) —
//     slicing first shrinks what σ must scan.
//  4. Projection pushdown over static TIME-SLICE:
//     π_X(T_L(r)) → T_L(π_X(r)) (both sides equal; π first drops
//     attribute payload early).
//
// Rewrites apply only where the law's side conditions hold syntactically;
// Optimize never changes results, just plans. It returns the rewritten
// expression and the number of rewrites applied.
func Optimize(e Expr) (Expr, int) {
	n := 0
	out := rewrite(e, &n)
	return out, n
}

func rewrite(e Expr, n *int) Expr {
	switch x := e.(type) {
	case *SelectExpr:
		x.Source = rewrite(x.Source, n)
		// Law 1: push σ below ∪o / ∩o / −o (left side only for −o).
		if b, ok := x.Source.(*BinaryExpr); ok && x.During == nil {
			switch b.Op {
			case "UNIONMERGE", "INTERSECTMERGE":
				*n++
				left := &SelectExpr{When: x.When, Cond: x.Cond, ForAll: x.ForAll, Source: b.Left}
				right := &SelectExpr{When: x.When, Cond: x.Cond, ForAll: x.ForAll, Source: b.Right}
				return rewrite(&BinaryExpr{Op: b.Op, Left: left, Right: right}, n)
			}
		}
		// Law 3: σ-WHEN over a literal static slice → slice first.
		// (Already slice-first syntactically; nothing to do — the
		// profitable direction is handled on the TimesliceExpr branch.)
		return x
	case *ProjectExpr:
		x.Source = rewrite(x.Source, n)
		// Law 4: π(T_L(r)) → T_L(π(r)).
		if ts, ok := x.Source.(*TimesliceExpr); ok && ts.By == "" {
			*n++
			inner := &ProjectExpr{Attrs: x.Attrs, Source: ts.Source}
			return rewrite(&TimesliceExpr{Source: inner, At: ts.At}, n)
		}
		return x
	case *TimesliceExpr:
		x.Source = rewrite(x.Source, n)
		if x.By != "" {
			return x
		}
		// Law 2: collapse nested literal slices.
		if ts, ok := x.Source.(*TimesliceExpr); ok && ts.By == "" &&
			x.At.Literal != "" && ts.At.Literal != "" {
			l1, err1 := lifespan.Parse(x.At.Literal)
			l2, err2 := lifespan.Parse(ts.At.Literal)
			if err1 == nil && err2 == nil {
				*n++
				merged := l1.Intersect(l2)
				return rewrite(&TimesliceExpr{
					Source: ts.Source,
					At:     &LSExpr{Literal: merged.String()},
				}, n)
			}
		}
		// Law 3: T_L(σ-WHEN_p(r)) → σ-WHEN_p(T_L(r)) — slice first so the
		// select scans less history. Only σ-WHEN commutes with slicing;
		// σ-IF does not (its ∃/∀ scope would change).
		if sel, ok := x.Source.(*SelectExpr); ok && sel.When && sel.During == nil {
			*n++
			inner := &TimesliceExpr{Source: sel.Source, At: x.At}
			return rewrite(&SelectExpr{When: true, Cond: sel.Cond, Source: inner}, n)
		}
		return x
	case *BinaryExpr:
		x.Left = rewrite(x.Left, n)
		x.Right = rewrite(x.Right, n)
		return x
	case *RenameExpr:
		x.Source = rewrite(x.Source, n)
		return x
	case *MaterializeExpr:
		x.Source = rewrite(x.Source, n)
		return x
	case *WhenExpr:
		x.Source = rewrite(x.Source, n)
		return x
	case *SnapshotExpr:
		x.Source = rewrite(x.Source, n)
		return x
	default:
		return e
	}
}

// RunOptimized parses, optimizes, and evaluates a query.
func RunOptimized(src string, env Env) (Result, error) {
	return RunOptimizedContext(context.Background(), src, env)
}

// RunOptimizedContext parses, optimizes, and evaluates a query under a
// context (see RunContext for the cancellation contract).
func RunOptimizedContext(ctx context.Context, src string, env Env) (Result, error) {
	e, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	e, _ = Optimize(e)
	return EvalContext(ctx, e, env)
}
