package hql

import (
	"strings"
	"testing"
)

func TestOptimizeSelectPushdown(t *testing.T) {
	e, err := Parse(`SELECT WHEN SAL = 30000 FROM (EMP UNIONMERGE EMP)`)
	if err != nil {
		t.Fatal(err)
	}
	opt, n := Optimize(e)
	if n == 0 {
		t.Fatal("pushdown not applied")
	}
	s := opt.String()
	// The select must now sit under UNIONMERGE on both sides.
	if !strings.HasPrefix(s, "(SELECT") || strings.Count(s, "SELECT") != 2 {
		t.Errorf("optimized plan = %s", s)
	}
}

func TestOptimizeSliceComposition(t *testing.T) {
	e, err := Parse(`TIMESLICE (TIMESLICE EMP AT {[0,9]}) AT {[5,19]}`)
	if err != nil {
		t.Fatal(err)
	}
	opt, n := Optimize(e)
	if n != 1 {
		t.Fatalf("expected 1 rewrite, got %d", n)
	}
	if got := opt.String(); got != "TIMESLICE EMP AT {[5,9]}" {
		t.Errorf("optimized plan = %s", got)
	}
}

func TestOptimizeSliceBeforeSelect(t *testing.T) {
	e, err := Parse(`TIMESLICE (SELECT WHEN SAL = 30000 FROM EMP) AT {[0,4]}`)
	if err != nil {
		t.Fatal(err)
	}
	opt, n := Optimize(e)
	if n != 1 {
		t.Fatalf("expected 1 rewrite, got %d", n)
	}
	if got := opt.String(); got != "SELECT WHEN SAL = 30000 FROM TIMESLICE EMP AT {[0,4]}" {
		t.Errorf("optimized plan = %s", got)
	}
	// σ-IF must NOT be reordered.
	e2, err := Parse(`TIMESLICE (SELECT IF SAL = 30000 EXISTS FROM EMP) AT {[0,4]}`)
	if err != nil {
		t.Fatal(err)
	}
	_, n2 := Optimize(e2)
	if n2 != 0 {
		t.Error("σ-IF/slice reorder is unsound and must not fire")
	}
}

func TestOptimizeProjectionPushdown(t *testing.T) {
	e, err := Parse(`PROJECT NAME, SAL FROM (TIMESLICE EMP AT {[0,9]})`)
	if err != nil {
		t.Fatal(err)
	}
	opt, n := Optimize(e)
	if n != 1 {
		t.Fatalf("expected 1 rewrite, got %d", n)
	}
	if got := opt.String(); got != "TIMESLICE PROJECT NAME, SAL FROM EMP AT {[0,9]}" {
		t.Errorf("optimized plan = %s", got)
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	// Every law-rewritten query must return exactly the un-rewritten
	// query's result.
	env := testEnv(t)
	queries := []string{
		`SELECT WHEN SAL = 30000 FROM ((TIMESLICE EMP AT {[0,8]}) UNIONMERGE (TIMESLICE EMP AT {[6,19]}))`,
		`TIMESLICE (TIMESLICE EMP AT {[0,9]}) AT {[5,19]}`,
		`TIMESLICE (SELECT WHEN SAL >= 30000 FROM EMP) AT {[0,6]}`,
		`PROJECT NAME, SAL FROM (TIMESLICE EMP AT {[0,9]})`,
		`SELECT WHEN SAL = 30000 AND DEPT = "Toys" FROM ((TIMESLICE EMP AT {[0,8]}) INTERSECTMERGE (TIMESLICE EMP AT {[2,19]}))`,
		`WHEN (TIMESLICE (SELECT WHEN SAL = 40000 FROM EMP) AT {[0,10]})`,
	}
	for _, q := range queries {
		plain, err := Run(q, env)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		opt, err := RunOptimized(q, env)
		if err != nil {
			t.Fatalf("optimized query %q: %v", q, err)
		}
		switch {
		case plain.Relation != nil:
			if opt.Relation == nil || !plain.Relation.Equal(opt.Relation) {
				t.Errorf("query %q: optimization changed the result:\n%s\nvs\n%s", q, plain, opt)
			}
		case plain.Lifespan != nil:
			if opt.Lifespan == nil || !plain.Lifespan.Equal(*opt.Lifespan) {
				t.Errorf("query %q: optimization changed the lifespan: %s vs %s", q, plain, opt)
			}
		}
	}
}

func TestOptimizeNoOpOnSimpleQueries(t *testing.T) {
	for _, q := range []string{
		`EMP`,
		`SELECT WHEN SAL = 30000 FROM EMP`,
		`EMP JOIN DEPTREL ON DEPT = DNAME`,
		`TIMESLICE SHIP BY SHIPDATE`,
		`SNAPSHOT EMP AT 7`,
	} {
		e, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, n := Optimize(e); n != 0 {
			t.Errorf("query %q: unexpected rewrites (%d)", q, n)
		}
	}
}
