package hql

import (
	"fmt"
	"strconv"

	"repro/internal/hrdmerr"
	"repro/internal/value"
)

// Parse parses a complete query. Binary operators are left-associative
// and equal-precedence; parenthesize to group. Lex and parse failures
// are classified as hrdmerr.ErrParse, so callers (and the wire
// protocol) can branch on the class without matching message text.
func Parse(src string) (Expr, error) {
	e, err := parse(src)
	if err != nil {
		return nil, hrdmerr.Wrap(hrdmerr.CodeParse, err)
	}
	return e, nil
}

func parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("unexpected %s after complete query", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind) bool { return p.peek().kind == kind }

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("hql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

var binaryOps = map[string]bool{
	"UNION": true, "UNIONMERGE": true,
	"INTERSECT": true, "INTERSECTMERGE": true,
	"MINUS": true, "MINUSMERGE": true,
	"TIMES": true, "JOIN": true, "NATJOIN": true, "TIMEJOIN": true,
	"OUTERJOIN": true,
}

// parseExpr := unary (BINOP unary [ON ...])*
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && binaryOps[p.peek().text] {
		op := p.advance().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		be := &BinaryExpr{Op: op, Left: left, Right: right}
		switch op {
		case "JOIN", "OUTERJOIN":
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			a, err := p.expectIdent("join attribute")
			if err != nil {
				return nil, err
			}
			th, err := p.expectTheta()
			if err != nil {
				return nil, err
			}
			b, err := p.expectIdent("join attribute")
			if err != nil {
				return nil, err
			}
			be.AttrA, be.Theta, be.AttrB = a, th, b
		case "TIMEJOIN":
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			a, err := p.expectIdent("time-join attribute")
			if err != nil {
				return nil, err
			}
			be.AttrA = a
		}
		left = be
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.at(tokRParen) {
			return nil, p.errf("expected ), found %s", p.peek())
		}
		p.advance()
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		return &RelName{Name: t.text}, nil
	case t.kind == tokKeyword:
		switch t.text {
		case "SELECT":
			return p.parseSelect()
		case "PROJECT":
			return p.parseProject()
		case "TIMESLICE":
			return p.parseTimeslice()
		case "WHEN":
			p.advance()
			src, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &WhenExpr{Source: src}, nil
		case "SNAPSHOT":
			return p.parseSnapshot()
		case "RENAME":
			return p.parseRename()
		case "MATERIALIZE":
			p.advance()
			src, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &MaterializeExpr{Source: src}, nil
		}
	}
	return nil, p.errf("expected a query expression, found %s", t)
}

func (p *parser) parseSelect() (Expr, error) {
	p.advance() // SELECT
	var when bool
	switch {
	case p.eatKeyword("WHEN"):
		when = true
	case p.eatKeyword("IF"):
	default:
		return nil, p.errf("expected IF or WHEN after SELECT, found %s", p.peek())
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	e := &SelectExpr{When: when, Cond: cond}
	if !when {
		switch {
		case p.eatKeyword("FORALL"):
			e.ForAll = true
		case p.eatKeyword("EXISTS"):
		}
	}
	if p.atKeyword("DURING") {
		p.advance()
		ls, err := p.parseLS()
		if err != nil {
			return nil, err
		}
		e.During = ls
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	src, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	e.Source = src
	return e, nil
}

func (p *parser) parseProject() (Expr, error) {
	p.advance() // PROJECT
	var attrs []string
	for {
		a, err := p.expectIdent("attribute")
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	src, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &ProjectExpr{Attrs: attrs, Source: src}, nil
}

func (p *parser) parseTimeslice() (Expr, error) {
	p.advance() // TIMESLICE
	src, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.eatKeyword("AT"):
		ls, err := p.parseLS()
		if err != nil {
			return nil, err
		}
		return &TimesliceExpr{Source: src, At: ls}, nil
	case p.eatKeyword("BY"):
		a, err := p.expectIdent("time-valued attribute")
		if err != nil {
			return nil, err
		}
		return &TimesliceExpr{Source: src, By: a}, nil
	}
	return nil, p.errf("expected AT or BY after TIMESLICE operand, found %s", p.peek())
}

func (p *parser) parseSnapshot() (Expr, error) {
	p.advance() // SNAPSHOT
	src, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AT"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokInt && t.kind != tokTime {
		return nil, p.errf("expected a time, found %s", t)
	}
	p.advance()
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return nil, p.errf("bad time literal %q", t.text)
	}
	return &SnapshotExpr{Source: src, At: n}, nil
}

func (p *parser) parseRename() (Expr, error) {
	p.advance() // RENAME
	src, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	prefix, err := p.expectIdent("prefix")
	if err != nil {
		return nil, err
	}
	return &RenameExpr{Source: src, Prefix: prefix}, nil
}

// parseCond := andCond (OR andCond)*
// andCond   := notCond (AND notCond)*
// notCond   := NOT notCond | '(' parseCond ')' | pred
func (p *parser) parseCond() (CondExpr, error) {
	left, err := p.parseAndCond()
	if err != nil {
		return CondExpr{}, err
	}
	kids := []CondExpr{left}
	for p.eatKeyword("OR") {
		k, err := p.parseAndCond()
		if err != nil {
			return CondExpr{}, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return CondExpr{Op: "OR", Kids: kids}, nil
}

func (p *parser) parseAndCond() (CondExpr, error) {
	left, err := p.parseNotCond()
	if err != nil {
		return CondExpr{}, err
	}
	kids := []CondExpr{left}
	for p.eatKeyword("AND") {
		k, err := p.parseNotCond()
		if err != nil {
			return CondExpr{}, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return CondExpr{Op: "AND", Kids: kids}, nil
}

func (p *parser) parseNotCond() (CondExpr, error) {
	if p.eatKeyword("NOT") {
		k, err := p.parseNotCond()
		if err != nil {
			return CondExpr{}, err
		}
		return CondExpr{Op: "NOT", Kids: []CondExpr{k}}, nil
	}
	if p.at(tokLParen) {
		p.advance()
		c, err := p.parseCond()
		if err != nil {
			return CondExpr{}, err
		}
		if !p.at(tokRParen) {
			return CondExpr{}, p.errf("expected ) in condition, found %s", p.peek())
		}
		p.advance()
		return c, nil
	}
	pred, err := p.parsePred()
	if err != nil {
		return CondExpr{}, err
	}
	return CondExpr{Pred: &pred}, nil
}

// parsePred := IDENT theta (constant | IDENT)
func (p *parser) parsePred() (PredExpr, error) {
	attr, err := p.expectIdent("attribute")
	if err != nil {
		return PredExpr{}, err
	}
	th, err := p.expectTheta()
	if err != nil {
		return PredExpr{}, err
	}
	t := p.peek()
	pe := PredExpr{Attr: attr, Theta: th}
	switch t.kind {
	case tokIdent:
		p.advance()
		pe.OtherAttr = t.text
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return PredExpr{}, p.errf("bad integer %q", t.text)
		}
		pe.Const = value.Int(n)
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return PredExpr{}, p.errf("bad float %q", t.text)
		}
		pe.Const = value.Float(f)
	case tokString:
		p.advance()
		pe.Const = value.String_(t.text)
	case tokTime:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return PredExpr{}, p.errf("bad time %q", t.text)
		}
		pe.Const = value.TimeVal(chTime(n))
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			pe.Const = value.Bool(true)
		case "FALSE":
			p.advance()
			pe.Const = value.Bool(false)
		default:
			return PredExpr{}, p.errf("expected a value or attribute, found %s", t)
		}
	default:
		return PredExpr{}, p.errf("expected a value or attribute, found %s", t)
	}
	return pe, nil
}

// parseLS := lsPrimary ((UNION|INTERSECT|MINUS) lsPrimary)*
func (p *parser) parseLS() (*LSExpr, error) {
	left, err := p.parseLSPrimary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("UNION") || p.atKeyword("INTERSECT") || p.atKeyword("MINUS") {
		op := p.advance().text
		right, err := p.parseLSPrimary()
		if err != nil {
			return nil, err
		}
		left = &LSExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseLSPrimary() (*LSExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLifespan:
		p.advance()
		return &LSExpr{Literal: t.text}, nil
	case t.kind == tokKeyword && t.text == "WHEN":
		p.advance()
		src, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &LSExpr{When: src}, nil
	}
	return nil, p.errf("expected a lifespan literal or WHEN, found %s", t)
}

func (p *parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected %s, found %s", what, t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectTheta() (value.Theta, error) {
	t := p.peek()
	if t.kind != tokTheta {
		return 0, p.errf("expected a comparator, found %s", t)
	}
	p.advance()
	return value.ParseTheta(t.text)
}
