package hql

import (
	"fmt"

	"repro/internal/core"
)

// This file makes the naive evaluator snapshot-complete. EvalNaive used
// to read live relation state through env.Get per RelName reference: a
// query touching two relations could observe relation A before a
// writer's publication and relation B after it — the exact anomaly the
// engine's planned path already excludes by pinning. pinExprEnv closes
// the gap for the naive path (and with it the planner's fallback): it
// collects every base relation the expression references, captures one
// core.Pin cut of all of them, and wraps the frozen views in an Env,
// so the whole walk — including WHEN sub-queries in lifespan
// positions — reads one consistent database state.

// pinnedEnv resolves relation names to the frozen views of one pin.
// Lookups are strictly map-only: the name collector is exhaustive over
// the AST, so a miss is a bug surfaced as "unknown relation" rather
// than silently degrading to a live (torn-readable) lookup.
type pinnedEnv struct {
	rels map[string]*core.Relation
}

func (p *pinnedEnv) Get(name string) (*core.Relation, bool) {
	r, ok := p.rels[name]
	return r, ok
}

// pinExprEnv captures one consistent cut of every relation e
// references and returns an Env of frozen views. An expression
// referencing no relations returns env unchanged; an unknown name
// reports the same error evaluation would.
func pinExprEnv(e Expr, env Env) (Env, error) {
	seen := make(map[string]bool)
	var names []string
	collectRels(e, seen, &names)
	if len(names) == 0 {
		return env, nil
	}
	rels := make([]*core.Relation, len(names))
	for i, name := range names {
		r, ok := env.Get(name)
		if !ok {
			return nil, fmt.Errorf("hql: unknown relation %q", name)
		}
		rels[i] = r
	}
	_, vers := core.Pin(rels...)
	views := make(map[string]*core.Relation, len(names))
	for i, name := range names {
		views[name] = vers[i].View()
	}
	return &pinnedEnv{rels: views}, nil
}

// collectRels walks e and appends, in first-reference (evaluation)
// order, the name of every base relation it touches — including WHEN
// sub-queries in AT and DURING positions.
func collectRels(e Expr, seen map[string]bool, out *[]string) {
	switch n := e.(type) {
	case *RelName:
		if !seen[n.Name] {
			seen[n.Name] = true
			*out = append(*out, n.Name)
		}
	case *SelectExpr:
		collectRels(n.Source, seen, out)
		collectRelsLS(n.During, seen, out)
	case *ProjectExpr:
		collectRels(n.Source, seen, out)
	case *TimesliceExpr:
		collectRels(n.Source, seen, out)
		collectRelsLS(n.At, seen, out)
	case *RenameExpr:
		collectRels(n.Source, seen, out)
	case *MaterializeExpr:
		collectRels(n.Source, seen, out)
	case *BinaryExpr:
		collectRels(n.Left, seen, out)
		collectRels(n.Right, seen, out)
	case *WhenExpr:
		collectRels(n.Source, seen, out)
	case *SnapshotExpr:
		collectRels(n.Source, seen, out)
	}
}

// collectRelsLS walks a lifespan-valued expression for WHEN
// sub-queries.
func collectRelsLS(l *LSExpr, seen map[string]bool, out *[]string) {
	if l == nil {
		return
	}
	if l.When != nil {
		collectRels(l.When, seen, out)
	}
	collectRelsLS(l.Left, seen, out)
	collectRelsLS(l.Right, seen, out)
}
