// Package hrdmerr is the engine's structured error taxonomy: every
// error that crosses an API boundary — engine entry points, the
// session layer, the wire protocol — carries a stable numeric Code
// that clients can branch on and servers can put on the wire, while
// the underlying cause stays reachable through errors.Is / errors.As.
//
// The taxonomy replaces stringly errors at the boundaries only; deep
// internal errors remain plain and are classified where they surface
// (hql.Parse wraps parse failures, the session layer wraps commit
// conflicts, the engine wraps cancellation). Wrap never re-classifies
// an error that already carries a code, so the earliest classification
// wins no matter how many layers re-wrap on the way out.
//
// Wire codes are part of the protocol contract (docs/SERVER.md) and
// must never be renumbered; TestWireCodesStable pins them.
package hrdmerr

import (
	"context"
	"errors"
	"fmt"
)

// Code is a stable numeric error class. The zero value is reserved
// (absence of an error); new codes append, existing codes never move.
type Code int

const (
	// CodeInternal classifies unexpected failures that fit no other
	// class — the catch-all a client should treat as a server bug.
	CodeInternal Code = 1
	// CodeParse: the query text does not lex or parse as HQL.
	CodeParse Code = 2
	// CodePlan: the planner rejected an expression it was explicitly
	// asked to compile (EXPLAIN of an unplannable query); ordinary
	// execution falls back to the naive evaluator instead.
	CodePlan Code = 3
	// CodeSemantic: the query parsed but cannot be evaluated — unknown
	// relation, sort mismatch, malformed condition.
	CodeSemantic Code = 4
	// CodeConflict: a write-group commit failed validation — duplicate
	// key, contradicting merge — and nothing was applied.
	CodeConflict Code = 5
	// CodeState: the operation is illegal in the session's current
	// state (commit with no open group, begin while one is open).
	CodeState Code = 6
	// CodeOverloaded: admission control rejected the request — the
	// server is at its connection or in-flight-query limit. Retryable.
	CodeOverloaded Code = 7
	// CodeDeadline: the per-query deadline expired mid-execution.
	CodeDeadline Code = 8
	// CodeCanceled: the caller canceled the query's context.
	CodeCanceled Code = 9
	// CodeUnavailable: the server is draining and accepts no new work.
	CodeUnavailable Code = 10
	// CodeBadRequest: the wire request itself is malformed — not JSON,
	// unknown op, missing required field.
	CodeBadRequest Code = 11
)

// String names a code for rendering; the wire carries the number.
func (c Code) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeParse:
		return "parse"
	case CodePlan:
		return "plan"
	case CodeSemantic:
		return "semantic"
	case CodeConflict:
		return "conflict"
	case CodeState:
		return "state"
	case CodeOverloaded:
		return "overloaded"
	case CodeDeadline:
		return "deadline"
	case CodeCanceled:
		return "canceled"
	case CodeUnavailable:
		return "unavailable"
	case CodeBadRequest:
		return "bad_request"
	}
	return fmt.Sprintf("code(%d)", int(c))
}

// Error is a classified error: a code plus the message (or wrapped
// cause) it classifies. It supports errors.Is against the package
// sentinels — two *Errors match when their codes match — and
// errors.As for extracting the code from an arbitrary chain.
type Error struct {
	code  Code
	msg   string
	cause error
}

// New builds a classified error from a formatted message.
func New(code Code, format string, args ...any) *Error {
	return &Error{code: code, msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies err under code, preserving it as the cause. nil maps
// to nil. An error that already carries a code anywhere in its chain
// is returned unchanged — the earliest classification wins — and
// context cancellation/deadline errors classify as CodeCanceled /
// CodeDeadline regardless of the code requested, so a cancellation
// surfacing through a semantic-error path keeps its real class.
func Wrap(code Code, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadline
	case errors.Is(err, context.Canceled):
		code = CodeCanceled
	}
	return &Error{code: code, msg: err.Error(), cause: err}
}

// FromContext classifies a context error (ctx.Err()); nil maps to nil.
func FromContext(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{code: CodeDeadline, msg: "query deadline exceeded", cause: err}
	}
	return &Error{code: CodeCanceled, msg: "query canceled", cause: err}
}

// Error renders "class: message".
func (e *Error) Error() string {
	return e.code.String() + ": " + e.msg
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.cause }

// Code returns the error's class.
func (e *Error) Code() Code { return e.code }

// Is matches any *Error carrying the same code, which is what makes
// errors.Is(err, hrdmerr.ErrParse) work however deeply err is wrapped.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.code == e.code
}

// Sentinels for errors.Is matching: errors.Is(err, ErrConflict) is
// true exactly when err's chain contains a CodeConflict *Error.
var (
	ErrInternal    = &Error{code: CodeInternal, msg: "internal error"}
	ErrParse       = &Error{code: CodeParse, msg: "parse error"}
	ErrPlan        = &Error{code: CodePlan, msg: "plan error"}
	ErrSemantic    = &Error{code: CodeSemantic, msg: "semantic error"}
	ErrConflict    = &Error{code: CodeConflict, msg: "write conflict"}
	ErrState       = &Error{code: CodeState, msg: "invalid session state"}
	ErrOverloaded  = &Error{code: CodeOverloaded, msg: "overloaded"}
	ErrDeadline    = &Error{code: CodeDeadline, msg: "deadline exceeded"}
	ErrCanceled    = &Error{code: CodeCanceled, msg: "canceled"}
	ErrUnavailable = &Error{code: CodeUnavailable, msg: "unavailable"}
	ErrBadRequest  = &Error{code: CodeBadRequest, msg: "bad request"}
)

// CodeOf extracts the code carried anywhere in err's chain;
// unclassified errors report CodeInternal, nil reports 0.
func CodeOf(err error) Code {
	if err == nil {
		return 0
	}
	var e *Error
	if errors.As(err, &e) {
		return e.code
	}
	return CodeInternal
}

// Message returns the human half of the error, stripped of the code
// prefix a classified error renders — what the wire's msg field and
// the CLI's error[CODE] line carry next to the numeric code.
func Message(err error) string {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) {
		return e.msg
	}
	return err.Error()
}
