package hrdmerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWireCodesStable pins the numeric wire codes: these numbers are
// the protocol contract (docs/SERVER.md) and must never be renumbered.
// Appending new codes is fine; moving an existing one is a breaking
// wire change this test exists to catch.
func TestWireCodesStable(t *testing.T) {
	want := map[Code]int{
		CodeInternal:    1,
		CodeParse:       2,
		CodePlan:        3,
		CodeSemantic:    4,
		CodeConflict:    5,
		CodeState:       6,
		CodeOverloaded:  7,
		CodeDeadline:    8,
		CodeCanceled:    9,
		CodeUnavailable: 10,
		CodeBadRequest:  11,
	}
	for c, n := range want {
		if int(c) != n {
			t.Errorf("code %s = %d, want %d (wire codes are frozen)", c, int(c), n)
		}
	}
}

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		err      error
		sentinel *Error
	}{
		{New(CodeParse, "unexpected token %q", "FORM"), ErrParse},
		{Wrap(CodeSemantic, fmt.Errorf("hql: unknown relation %q", "EMPX")), ErrSemantic},
		{Wrap(CodeConflict, errors.New("duplicate key")), ErrConflict},
		{fmt.Errorf("outer: %w", New(CodeOverloaded, "too many in-flight queries")), ErrOverloaded},
		{fmt.Errorf("a: %w", fmt.Errorf("b: %w", New(CodeDeadline, "deadline"))), ErrDeadline},
	}
	all := []*Error{ErrInternal, ErrParse, ErrPlan, ErrSemantic, ErrConflict,
		ErrState, ErrOverloaded, ErrDeadline, ErrCanceled, ErrUnavailable, ErrBadRequest}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) = false, want true", c.err, c.sentinel)
		}
		for _, other := range all {
			if other != c.sentinel && errors.Is(c.err, other) {
				t.Errorf("errors.Is(%v, %v) = true, want false", c.err, other)
			}
		}
	}
}

func TestWrapSemantics(t *testing.T) {
	if Wrap(CodeParse, nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
	// Earliest classification wins: re-wrapping cannot re-classify.
	inner := New(CodeConflict, "duplicate key k1")
	rewrapped := Wrap(CodeInternal, fmt.Errorf("commit: %w", inner))
	if !errors.Is(rewrapped, ErrConflict) || errors.Is(rewrapped, ErrInternal) {
		t.Errorf("re-wrap re-classified: %v (code %v)", rewrapped, CodeOf(rewrapped))
	}
	// Context errors classify as deadline/canceled whatever code the
	// wrapping site asked for.
	if got := CodeOf(Wrap(CodeSemantic, fmt.Errorf("scan: %w", context.DeadlineExceeded))); got != CodeDeadline {
		t.Errorf("wrapped DeadlineExceeded classified %v, want CodeDeadline", got)
	}
	if got := CodeOf(Wrap(CodeSemantic, context.Canceled)); got != CodeCanceled {
		t.Errorf("wrapped Canceled classified %v, want CodeCanceled", got)
	}
	// The cause stays reachable.
	sentinel := errors.New("root cause")
	if !errors.Is(Wrap(CodeInternal, fmt.Errorf("x: %w", sentinel)), sentinel) {
		t.Error("Wrap hides the cause from errors.Is")
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !errors.Is(FromContext(ctx.Err()), ErrCanceled) {
		t.Error("canceled context did not classify as ErrCanceled")
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	<-dctx.Done()
	if !errors.Is(FromContext(dctx.Err()), ErrDeadline) {
		t.Error("expired context did not classify as ErrDeadline")
	}
}

// TestCodeNamesAndAccessor pins each code's rendered class name (the
// prefix of Error() and the CLI's error output) and the Code accessor.
func TestCodeNamesAndAccessor(t *testing.T) {
	names := map[Code]string{
		CodeInternal:    "internal",
		CodeParse:       "parse",
		CodePlan:        "plan",
		CodeSemantic:    "semantic",
		CodeConflict:    "conflict",
		CodeState:       "state",
		CodeOverloaded:  "overloaded",
		CodeDeadline:    "deadline",
		CodeCanceled:    "canceled",
		CodeUnavailable: "unavailable",
		CodeBadRequest:  "bad_request",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Code(%d).String() = %q, want %q", int(c), c.String(), want)
		}
		if got := New(c, "x").Code(); got != c {
			t.Errorf("New(%v).Code() = %v", c, got)
		}
	}
	if got := Code(99).String(); got != "code(99)" {
		t.Errorf("unknown code renders %q, want code(99)", got)
	}
}

func TestCodeOfAndMessage(t *testing.T) {
	if CodeOf(nil) != 0 {
		t.Error("CodeOf(nil) must be 0")
	}
	if CodeOf(errors.New("plain")) != CodeInternal {
		t.Error("unclassified errors must report CodeInternal")
	}
	err := New(CodeParse, "unexpected token")
	if Message(err) != "unexpected token" {
		t.Errorf("Message = %q, want the raw message without the class prefix", Message(err))
	}
	if err.Error() != "parse: unexpected token" {
		t.Errorf("Error() = %q", err.Error())
	}
	if Message(errors.New("plain")) != "plain" {
		t.Error("Message of unclassified error must be its Error()")
	}
}
