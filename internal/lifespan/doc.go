// Package lifespan implements the lifespan concept of Clifford & Croker's
// HRDM paper (Section 2).
//
// "A lifespan L is any subset of the set T."  Because T is isomorphic to
// the natural numbers, every lifespan arising in a finite database is a
// finite union of disjoint closed intervals; that is the canonical form
// maintained here.  The paper requires the usual set-theoretic operations
// over lifespans (L1 ∪ L2, L1 ∩ L2, L1 − L2, and complement), which this
// package provides together with membership, iteration and comparison.
package lifespan
