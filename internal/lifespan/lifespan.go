package lifespan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chronon"
)

// Lifespan is a subset of the time domain T, kept in canonical form: a
// sorted slice of non-empty, non-overlapping, non-adjacent closed
// intervals. The zero value is the empty lifespan. Lifespans are
// immutable; all operations return new values.
type Lifespan struct {
	ivs []chronon.Interval
}

// Empty returns the empty lifespan ∅.
func Empty() Lifespan { return Lifespan{} }

// All returns the lifespan covering the entire (machine-bounded) time
// universe T. It plays the role of T itself, e.g. as the default L
// parameter of SELECT-IF ("If L = T ... s ∈ (L ∩ t.l) is equivalent to
// s ∈ t.l").
func All() Lifespan {
	return Lifespan{ivs: []chronon.Interval{chronon.NewInterval(chronon.Min, chronon.Max)}}
}

// New builds a lifespan from any collection of intervals, canonicalizing
// overlaps, adjacency and empties.
func New(ivs ...chronon.Interval) Lifespan {
	return fromIntervals(ivs)
}

// Interval returns the single-interval lifespan [lo,hi].
func Interval(lo, hi chronon.Time) Lifespan {
	return New(chronon.NewInterval(lo, hi))
}

// Point returns the singleton lifespan {t}.
func Point(t chronon.Time) Lifespan { return New(chronon.Point(t)) }

// Points builds a lifespan from individual time points.
func Points(ts ...chronon.Time) Lifespan {
	ivs := make([]chronon.Interval, 0, len(ts))
	for _, t := range ts {
		ivs = append(ivs, chronon.Point(t))
	}
	return fromIntervals(ivs)
}

// fromIntervals canonicalizes an arbitrary interval collection.
func fromIntervals(in []chronon.Interval) Lifespan {
	ivs := make([]chronon.Interval, 0, len(in))
	for _, iv := range in {
		if !iv.IsEmpty() {
			ivs = append(ivs, iv)
		}
	}
	if len(ivs) == 0 {
		return Lifespan{}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Overlaps(*last) || iv.Adjacent(*last) {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return Lifespan{ivs: out}
}

// Intervals returns a copy of the canonical interval decomposition.
func (l Lifespan) Intervals() []chronon.Interval {
	out := make([]chronon.Interval, len(l.ivs))
	copy(out, l.ivs)
	return out
}

// NumIntervals returns the number of maximal intervals in the lifespan.
// For an object's lifespan this counts its incarnations: a re-hired
// employee's lifespan has one interval per employment period.
func (l Lifespan) NumIntervals() int { return len(l.ivs) }

// IsEmpty reports whether the lifespan is ∅.
func (l Lifespan) IsEmpty() bool { return len(l.ivs) == 0 }

// Contains reports t ∈ L.
func (l Lifespan) Contains(t chronon.Time) bool {
	// Binary search for the first interval with Hi >= t.
	i := sort.Search(len(l.ivs), func(i int) bool { return l.ivs[i].Hi >= t })
	return i < len(l.ivs) && l.ivs[i].Contains(t)
}

// Duration returns |L|, the number of chronons in the lifespan,
// saturating at the maximum int64.
func (l Lifespan) Duration() int64 {
	var sum int64
	for _, iv := range l.ivs {
		d := iv.Duration()
		sum += d
		if sum < 0 { // overflow
			return 1<<63 - 1
		}
	}
	return sum
}

// Min returns the earliest time point of the lifespan. It panics on the
// empty lifespan; callers must check IsEmpty first.
func (l Lifespan) Min() chronon.Time {
	if l.IsEmpty() {
		panic("lifespan: Min of empty lifespan")
	}
	return l.ivs[0].Lo
}

// Max returns the latest time point of the lifespan. It panics on the
// empty lifespan.
func (l Lifespan) Max() chronon.Time {
	if l.IsEmpty() {
		panic("lifespan: Max of empty lifespan")
	}
	return l.ivs[len(l.ivs)-1].Hi
}

// Span returns the smallest single interval covering the lifespan, i.e.
// [Min,Max], or the empty interval for ∅.
func (l Lifespan) Span() chronon.Interval {
	if l.IsEmpty() {
		return chronon.EmptyInterval()
	}
	return chronon.NewInterval(l.Min(), l.Max())
}

// Union returns L1 ∪ L2 (paper Section 2, derived lifespans, op 1).
func (l Lifespan) Union(m Lifespan) Lifespan {
	if l.IsEmpty() {
		return m
	}
	if m.IsEmpty() {
		return l
	}
	all := make([]chronon.Interval, 0, len(l.ivs)+len(m.ivs))
	all = append(all, l.ivs...)
	all = append(all, m.ivs...)
	return fromIntervals(all)
}

// Intersect returns L1 ∩ L2. This is the operation that defines the
// lifespan of an attribute value: vls(t,A,R) = t.l ∩ ALS(A,R).
func (l Lifespan) Intersect(m Lifespan) Lifespan {
	var out []chronon.Interval
	i, j := 0, 0
	for i < len(l.ivs) && j < len(m.ivs) {
		iv := l.ivs[i].Intersect(m.ivs[j])
		if !iv.IsEmpty() {
			out = append(out, iv)
		}
		if l.ivs[i].Hi < m.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	// Segments produced by pairwise interval intersection of canonical
	// operands are already disjoint, non-adjacent and sorted.
	return Lifespan{ivs: out}
}

// Minus returns the set difference L1 − L2, used by the object-based
// difference operator: (t1 −o t2).l = t1.l − t2.l.
func (l Lifespan) Minus(m Lifespan) Lifespan {
	if l.IsEmpty() || m.IsEmpty() {
		return l
	}
	var out []chronon.Interval
	j := 0
	for _, iv := range l.ivs {
		lo := iv.Lo
		exhausted := false // iv fully consumed by a cut reaching its end
		for j < len(m.ivs) && m.ivs[j].Hi < lo {
			j++
		}
		k := j
		for k < len(m.ivs) && m.ivs[k].Lo <= iv.Hi {
			cut := m.ivs[k]
			if cut.Lo > lo {
				out = append(out, chronon.NewInterval(lo, cut.Lo.Prev()))
			}
			if cut.Hi >= iv.Hi {
				exhausted = true
				break
			}
			lo = cut.Hi.Next()
			k++
		}
		if !exhausted && lo <= iv.Hi {
			out = append(out, chronon.NewInterval(lo, iv.Hi))
		}
	}
	return Lifespan{ivs: out}
}

// Complement returns T − L with respect to the machine-bounded universe.
func (l Lifespan) Complement() Lifespan { return All().Minus(l) }

// Equal reports set equality of the two lifespans.
func (l Lifespan) Equal(m Lifespan) bool {
	if len(l.ivs) != len(m.ivs) {
		return false
	}
	for i := range l.ivs {
		if !l.ivs[i].Equal(m.ivs[i]) {
			return false
		}
	}
	return true
}

// SubsetOf reports L ⊆ M.
func (l Lifespan) SubsetOf(m Lifespan) bool {
	return l.Intersect(m).Equal(l)
}

// Overlaps reports L ∩ M ≠ ∅ without materializing the intersection.
func (l Lifespan) Overlaps(m Lifespan) bool {
	i, j := 0, 0
	for i < len(l.ivs) && j < len(m.ivs) {
		if l.ivs[i].Overlaps(m.ivs[j]) {
			return true
		}
		if l.ivs[i].Hi < m.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Each calls f for every time point of the lifespan in ascending order,
// stopping early if f returns false. Iterating a lifespan touching
// Min/Max would not terminate in practice; callers iterate only over
// database-derived (finite, small) lifespans.
func (l Lifespan) Each(f func(chronon.Time) bool) {
	for _, iv := range l.ivs {
		for t := iv.Lo; ; t++ {
			if !f(t) {
				return
			}
			if t == iv.Hi {
				break
			}
		}
	}
}

// Times materializes every time point of the lifespan in ascending
// order. Intended for small lifespans (tests, examples, figure dumps).
func (l Lifespan) Times() []chronon.Time {
	out := make([]chronon.Time, 0, l.Duration())
	l.Each(func(t chronon.Time) bool {
		out = append(out, t)
		return true
	})
	return out
}

// String renders the lifespan in the paper's notation, e.g.
// "{[1,5],[9,12]}"; the empty lifespan renders as "{}".
func (l Lifespan) String() string {
	if l.IsEmpty() {
		return "{}"
	}
	parts := make([]string, len(l.ivs))
	for i, iv := range l.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Parse parses the notation produced by String: a brace-enclosed,
// comma-separated list of intervals "[lo,hi]" or bare points. Because a
// bare point and an interval both use commas, intervals must use the
// bracketed form inside braces; "{1,3,[5,9]}" parses as {1} ∪ {3} ∪ [5,9].
func Parse(s string) (Lifespan, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return Lifespan{}, fmt.Errorf("lifespan: parse %q: want {...}", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return Empty(), nil
	}
	var ivs []chronon.Interval
	for len(body) > 0 {
		var tok string
		if strings.HasPrefix(body, "[") {
			end := strings.IndexByte(body, ']')
			if end < 0 {
				return Lifespan{}, fmt.Errorf("lifespan: parse %q: unterminated interval", s)
			}
			tok, body = body[:end+1], body[end+1:]
		} else {
			end := strings.IndexByte(body, ',')
			if end < 0 {
				tok, body = body, ""
			} else {
				tok, body = body[:end], body[end:]
			}
		}
		body = strings.TrimPrefix(strings.TrimSpace(body), ",")
		body = strings.TrimSpace(body)
		iv, err := chronon.ParseInterval(strings.TrimSpace(tok))
		if err != nil {
			return Lifespan{}, err
		}
		ivs = append(ivs, iv)
	}
	return fromIntervals(ivs), nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(s string) Lifespan {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}
