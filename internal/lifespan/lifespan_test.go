package lifespan

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/chronon"
)

func TestCanonicalization(t *testing.T) {
	cases := []struct {
		name string
		in   Lifespan
		want string
	}{
		{"empty", New(), "{}"},
		{"single", Interval(1, 5), "{[1,5]}"},
		{"point", Point(3), "{3}"},
		{"merge overlap", New(chronon.NewInterval(1, 5), chronon.NewInterval(3, 9)), "{[1,9]}"},
		{"merge adjacent", New(chronon.NewInterval(1, 3), chronon.NewInterval(4, 7)), "{[1,7]}"},
		{"keep gap", New(chronon.NewInterval(1, 3), chronon.NewInterval(5, 7)), "{[1,3],[5,7]}"},
		{"unsorted input", New(chronon.NewInterval(8, 9), chronon.NewInterval(1, 2)), "{[1,2],[8,9]}"},
		{"drop empty", New(chronon.EmptyInterval(), chronon.NewInterval(1, 2)), "{[1,2]}"},
		{"contained", New(chronon.NewInterval(1, 9), chronon.NewInterval(3, 4)), "{[1,9]}"},
		{"points coalesce", Points(1, 2, 3, 7), "{[1,3],7}"},
		{"duplicate points", Points(4, 4, 4), "{4}"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	l := MustParse("{[1,3],[7,9],15}")
	for _, in := range []chronon.Time{1, 2, 3, 7, 8, 9, 15} {
		if !l.Contains(in) {
			t.Errorf("%v should contain %v", l, in)
		}
	}
	for _, out := range []chronon.Time{0, 4, 5, 6, 10, 14, 16, -3} {
		if l.Contains(out) {
			t.Errorf("%v should not contain %v", l, out)
		}
	}
	if Empty().Contains(0) {
		t.Error("empty lifespan contains nothing")
	}
}

func TestDurationMinMaxSpan(t *testing.T) {
	l := MustParse("{[1,3],[7,9],15}")
	if l.Duration() != 7 {
		t.Errorf("Duration = %d, want 7", l.Duration())
	}
	if l.Min() != 1 || l.Max() != 15 {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	if !l.Span().Equal(chronon.NewInterval(1, 15)) {
		t.Errorf("Span = %v", l.Span())
	}
	if l.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d, want 3", l.NumIntervals())
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty lifespan should panic")
		}
	}()
	Empty().Min()
}

func TestUnion(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"{[1,3]}", "{[5,7]}", "{[1,3],[5,7]}"},
		{"{[1,3]}", "{[4,7]}", "{[1,7]}"},
		{"{[1,5]}", "{[3,7]}", "{[1,7]}"},
		{"{}", "{[3,7]}", "{[3,7]}"},
		{"{[1,3],[9,12]}", "{[2,10]}", "{[1,12]}"},
		{"{1,3,5}", "{2,4}", "{[1,5]}"},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Union(b).String(); got != c.want {
			t.Errorf("%s ∪ %s = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := b.Union(a).String(); got != c.want {
			t.Errorf("union must commute: %s ∪ %s = %s, want %s", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"{[1,5]}", "{[3,9]}", "{[3,5]}"},
		{"{[1,5]}", "{[6,9]}", "{}"},
		{"{[1,10]}", "{[2,3],[5,6],[9,12]}", "{[2,3],[5,6],[9,10]}"},
		{"{[1,3],[7,9]}", "{[2,8]}", "{[2,3],[7,8]}"},
		{"{}", "{[1,5]}", "{}"},
		{"{[1,3],[5,7],[9,11]}", "{[3,5],[7,9]}", "{3,5,7,9}"},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Intersect(b).String(); got != MustParse(c.want).String() {
			t.Errorf("%s ∩ %s = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := b.Intersect(a); !got.Equal(a.Intersect(b)) {
			t.Errorf("intersection must commute for %s, %s", c.a, c.b)
		}
	}
}

func TestMinus(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"{[1,9]}", "{[3,5]}", "{[1,2],[6,9]}"},
		{"{[1,9]}", "{[1,9]}", "{}"},
		{"{[1,9]}", "{[0,20]}", "{}"},
		{"{[1,9]}", "{}", "{[1,9]}"},
		{"{[1,9]}", "{1}", "{[2,9]}"},
		{"{[1,9]}", "{9}", "{[1,8]}"},
		{"{[1,9]}", "{5}", "{[1,4],[6,9]}"},
		{"{[1,3],[7,9]}", "{[2,8]}", "{1,9}"},
		{"{[1,20]}", "{[2,3],[5,6],[9,12]}", "{1,4,[7,8],[13,20]}"},
		{"{}", "{[1,5]}", "{}"},
		{"{[1,3]}", "{[5,9]}", "{[1,3]}"},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Minus(b).String(); got != MustParse(c.want).String() {
			t.Errorf("%s − %s = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestComplement(t *testing.T) {
	l := MustParse("{[1,5]}")
	c := l.Complement()
	if c.Contains(3) {
		t.Error("complement must not contain member")
	}
	if !c.Contains(0) || !c.Contains(6) || !c.Contains(chronon.Min) || !c.Contains(chronon.Max) {
		t.Error("complement should contain non-members out to the universe bounds")
	}
	if !l.Complement().Complement().Equal(l) {
		t.Error("double complement is identity")
	}
	if !Empty().Complement().Equal(All()) {
		t.Error("∅ complement is T")
	}
}

func TestSubsetOverlaps(t *testing.T) {
	a := MustParse("{[2,4]}")
	b := MustParse("{[1,9]}")
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset misbehaves")
	}
	if !a.SubsetOf(a) {
		t.Error("subset is reflexive")
	}
	if !Empty().SubsetOf(a) {
		t.Error("∅ ⊆ anything")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlap misbehaves")
	}
	if a.Overlaps(MustParse("{[5,9]}")) {
		t.Error("[2,4] does not overlap [5,9]")
	}
	if Empty().Overlaps(a) {
		t.Error("∅ overlaps nothing")
	}
}

func TestEachAndTimes(t *testing.T) {
	l := MustParse("{[1,3],7}")
	want := []chronon.Time{1, 2, 3, 7}
	if got := l.Times(); !reflect.DeepEqual(got, want) {
		t.Errorf("Times = %v, want %v", got, want)
	}
	// Early termination.
	var seen []chronon.Time
	l.Each(func(t chronon.Time) bool {
		seen = append(seen, t)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []chronon.Time{1, 2}) {
		t.Errorf("Each early stop saw %v", seen)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "[1,2]", "{[1,2}", "{[a,b]}", "{1;2}"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	// Round-trip through String.
	for _, s := range []string{"{}", "{[1,5]}", "{[1,3],[7,9],15}", "{[-inf,3]}"} {
		l := MustParse(s)
		back := MustParse(l.String())
		if !back.Equal(l) {
			t.Errorf("round trip failed for %s: %s", s, back)
		}
	}
}

// genLifespan builds a random lifespan from a seed, for property tests.
func genLifespan(seed int64) Lifespan {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(5)
	ivs := make([]chronon.Interval, 0, n)
	for i := 0; i < n; i++ {
		lo := chronon.Time(rng.Intn(60) - 30)
		hi := lo + chronon.Time(rng.Intn(10))
		ivs = append(ivs, chronon.NewInterval(lo, hi))
	}
	return New(ivs...)
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	type prop struct {
		name string
		fn   any
	}
	props := []prop{
		{"union commutes", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Union(y).Equal(y.Union(x))
		}},
		{"union associates", func(a, b, c int64) bool {
			x, y, z := genLifespan(a), genLifespan(b), genLifespan(c)
			return x.Union(y).Union(z).Equal(x.Union(y.Union(z)))
		}},
		{"intersect associates", func(a, b, c int64) bool {
			x, y, z := genLifespan(a), genLifespan(b), genLifespan(c)
			return x.Intersect(y).Intersect(z).Equal(x.Intersect(y.Intersect(z)))
		}},
		{"intersect distributes over union", func(a, b, c int64) bool {
			x, y, z := genLifespan(a), genLifespan(b), genLifespan(c)
			return x.Intersect(y.Union(z)).Equal(x.Intersect(y).Union(x.Intersect(z)))
		}},
		{"union distributes over intersect", func(a, b, c int64) bool {
			x, y, z := genLifespan(a), genLifespan(b), genLifespan(c)
			return x.Union(y.Intersect(z)).Equal(x.Union(y).Intersect(x.Union(z)))
		}},
		{"de morgan", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Union(y).Complement().Equal(x.Complement().Intersect(y.Complement()))
		}},
		{"difference via intersection with complement", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Minus(y).Equal(x.Intersect(y.Complement()))
		}},
		{"minus then union restores subset", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Minus(y).Union(x.Intersect(y)).Equal(x)
		}},
		{"absorption", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Union(x.Intersect(y)).Equal(x) && x.Intersect(x.Union(y)).Equal(x)
		}},
		{"duration adds up", func(a, b int64) bool {
			x, y := genLifespan(a), genLifespan(b)
			return x.Union(y).Duration()+x.Intersect(y).Duration() == x.Duration()+y.Duration()
		}},
		{"membership agrees with ops", func(a, b int64, pt int8) bool {
			x, y := genLifespan(a), genLifespan(b)
			p := chronon.Time(pt)
			inU := x.Union(y).Contains(p) == (x.Contains(p) || y.Contains(p))
			inI := x.Intersect(y).Contains(p) == (x.Contains(p) && y.Contains(p))
			inM := x.Minus(y).Contains(p) == (x.Contains(p) && !y.Contains(p))
			return inU && inI && inM
		}},
		{"canonical form is stable", func(a int64) bool {
			x := genLifespan(a)
			y, err := Parse(x.String())
			return err == nil && y.Equal(x) && y.String() == x.String()
		}},
	}
	for _, p := range props {
		if err := quick.Check(p.fn, cfg); err != nil {
			t.Errorf("%s: %v", p.name, err)
		}
	}
}

func TestFigure6Scenario(t *testing.T) {
	// Figure 6 of the paper: the lifespan of attribute
	// DAILY-TRADING-VOLUME is [t1,t2] ∪ [t3,NOW] — recorded, dropped as
	// too expensive, then re-added from a cheap outside source.
	t1, t2, t3 := chronon.Time(10), chronon.Time(20), chronon.Time(30)
	now := chronon.Time(40)
	ls := Interval(t1, t2).Union(Interval(t3, now))
	if ls.NumIntervals() != 2 {
		t.Fatalf("Figure 6 lifespan should have two intervals, got %v", ls)
	}
	if ls.Contains(25) {
		t.Error("attribute was dropped during (t2,t3)")
	}
	if !ls.Contains(15) || !ls.Contains(35) {
		t.Error("attribute defined during both recording periods")
	}
}
