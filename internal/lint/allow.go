package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces an annotation that silences one analyzer on
// the annotated line:
//
//	//lint:allow <analyzer> <reason>
//
// Written on its own line, it covers the next line; written as a
// trailing comment, it covers its own line. The reason is mandatory —
// an exemption without a recorded justification is itself a lint
// error — and the analyzer name must be one the driver knows, so a
// typo cannot silently disable nothing.
const allowPrefix = "//lint:allow"

// allowMark is one parsed annotation.
type allowMark struct {
	pos      token.Position
	analyzer string
	reason   string
}

// allowIndex maps filename → line → the annotations covering findings
// on that line.
type allowIndex map[string]map[int][]allowMark

// indexAllows scans every comment of the package's files for allow
// annotations. Each annotation at line L covers findings at L (inline
// trailing form) and L+1 (own-line form above the flagged statement).
func indexAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				// A "//" inside the annotation starts a trailing comment
				// (fixtures hang // want expectations there); the reason
				// ends where it begins.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				mark := allowMark{pos: pos}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					mark.analyzer = fields[0]
					mark.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]allowMark)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], mark)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], mark)
			}
		}
	}
	return idx
}

// allowed reports whether a finding of analyzer at position is covered
// by a well-formed annotation. Malformed annotations never silence
// anything; the allow analyzer reports them instead.
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	for _, m := range p.allows[pos.Filename][pos.Line] {
		if m.analyzer == analyzer && m.reason != "" {
			return true
		}
	}
	return false
}

// AllowAnalyzer validates the annotations themselves: a missing
// reason, or an analyzer name the driver does not know, is an error —
// the escape hatch must document why it is open and must actually
// silence something that exists.
var AllowAnalyzer = &Analyzer{
	Name: "allow",
	Doc:  "//lint:allow annotations carry a known analyzer name and a non-empty reason",
	Run: func(pass *Pass) error {
		for _, byLine := range pass.Pkg.allows {
			seen := make(map[token.Position]bool)
			for _, marks := range byLine {
				for _, m := range marks {
					if seen[m.pos] {
						continue // each mark is indexed under two lines
					}
					seen[m.pos] = true
					switch {
					case m.analyzer == "":
						pass.reportAt(m.pos, "lint:allow annotation names no analyzer (want //lint:allow <analyzer> <reason>)")
					case !knownAnalyzers[m.analyzer]:
						pass.reportAt(m.pos, "lint:allow names unknown analyzer %q", m.analyzer)
					case m.reason == "":
						pass.reportAt(m.pos, "lint:allow %s carries no reason; exemptions must say why", m.analyzer)
					}
				}
			}
		}
		return nil
	},
}

// reportAt is Reportf for positions already resolved (annotation
// diagnostics cannot be silenced by annotations).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
