package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run is invoked once per
// loaded package whose import path falls inside Scope; it reports
// findings through the Pass. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers can migrate to the
// real framework wholesale if the module ever takes the dependency.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement the driver prints with
	// -list and LINTING.md elaborates.
	Doc string
	// Scope restricts the analyzer to packages whose import path has
	// one of these prefixes; empty means every analyzed package.
	// Fixture packages (under .../lint/testdata/) are always in scope,
	// so analysistest-style suites exercise scoped analyzers without
	// faking import paths.
	Scope []string
	Run   func(*Pass) error
}

// inScope reports whether the analyzer applies to a package path.
func (a *Analyzer) inScope(path string) bool {
	if strings.Contains(path, "/lint/testdata/") {
		return true
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if path == p || strings.HasPrefix(path, p+"/") || (strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) {
			return true
		}
	}
	return false
}

// Diagnostic is one position-anchored finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	sink     *[]Diagnostic
}

// Fset returns the position table of the loaded packages.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type-checking results.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos. Findings silenced by a
// //lint:allow annotation are dropped here, so analyzers never see the
// annotation layer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies every analyzer to every in-scope package and
// returns the surviving findings sorted by position. An analyzer
// returning an error aborts the run: a broken checker must fail the
// build loudly, not silently stop checking (the multichecker wiring
// the integration test pins).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.inScope(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, sink: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s failed on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---- shared type-query helpers ----

// calleeFunc resolves the called function or method of a call
// expression, or nil for indirect calls through variables and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// isMethodOn reports whether f is the method pkgPath.typeName.name
// (pointer or value receiver).
func isMethodOn(f *types.Func, pkgPath, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, typeName)
}

// isNamed reports whether t (after pointer stripping) is the named
// type pkgPath.typeName.
func isNamed(t types.Type, pkgPath, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// constString returns the compile-time constant string value of e, if
// it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
