package lint

// All returns the full analyzer suite in the order the driver runs it.
// The allow validator runs first so a malformed annotation is reported
// before any finding it failed to silence.
func All() []*Analyzer {
	return []*Analyzer{
		AllowAnalyzer,
		Pindiscipline,
		Lockorder,
		Spanonce,
		Rawkeyjoin,
		Metricname,
		Sessionapi,
	}
}

// knownAnalyzers is the set of names //lint:allow may cite. The allow
// validator rejects any other name, so a typo'd annotation fails the
// build instead of silently disabling nothing.
var knownAnalyzers = map[string]bool{
	Pindiscipline.Name: true,
	Lockorder.Name:     true,
	Spanonce.Name:      true,
	Rawkeyjoin.Name:    true,
	Metricname.Name:    true,
	Sessionapi.Name:    true,
}

// ByName resolves one analyzer, for the driver's -run flag.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
