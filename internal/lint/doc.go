// Package lint implements hrdm-lint: purpose-built static analyzers
// that mechanically enforce the engine's snapshot, locking, key
// encoding and observability invariants — the rules docs/ARCHITECTURE.md
// states in prose and the race suites catch only probabilistically.
// Each analyzer fails CI on the exact line that breaks its rule, the
// way go vet fails on a malformed printf verb.
//
// The package would normally build on golang.org/x/tools/go/analysis;
// this module carries no external dependencies, so it ships a small
// self-contained framework with the same shape: an Analyzer runs over
// one type-checked Package at a time and reports position-anchored
// Diagnostics. Packages are loaded through `go list -export`, whose
// export data feeds the standard library's gc importer — full go/types
// information without importing x/tools.
//
// The analyzers (see docs/LINTING.md for the invariant, a failing
// example and the fix, per analyzer):
//
//   - pindiscipline: engine/hql/cmd code reads relation tuple state
//     through a pinned snapshot, never raw *core.Relation accessors.
//   - lockorder: a function locking two or more Relation mutexes must
//     go through the canonical id-ordered helper WriteGroup.Commit uses.
//   - spanonce: an obs.Span begun on a path is closed (or handed off)
//     exactly once on every return path.
//   - rawkeyjoin: composite key strings are built by value.EncodeKey,
//     never by hand-joining parts with "|".
//   - metricname: registry metric names are compile-time constants
//     matching the layer.subsystem.name convention of
//     docs/OBSERVABILITY.md.
//
// A finding on a legitimately exempt line is silenced by the preceding
// comment `//lint:allow <analyzer> <reason>`; an annotation without a
// reason (or naming an unknown analyzer) is itself a lint error,
// enforced by the allow analyzer.
package lint
