package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over its fixture package under testdata/src; the
// // want annotations there pin both the positive cases (the violation
// is reported, at that line, with that message) and the negative ones
// (compliant code and annotated exemptions stay silent).

func TestPindiscipline(t *testing.T) {
	linttest.Run(t, lint.Pindiscipline, "./testdata/src/pindiscipline")
}

func TestLockorder(t *testing.T) {
	linttest.Run(t, lint.Lockorder, "./testdata/src/lockorder")
}

func TestSpanonce(t *testing.T) {
	linttest.Run(t, lint.Spanonce, "./testdata/src/spanonce")
}

func TestRawkeyjoin(t *testing.T) {
	linttest.Run(t, lint.Rawkeyjoin, "./testdata/src/rawkeyjoin")
}

func TestMetricname(t *testing.T) {
	linttest.Run(t, lint.Metricname, "./testdata/src/metricname")
}

func TestSessionapi(t *testing.T) {
	linttest.Run(t, lint.Sessionapi, "./testdata/src/sessionapi")
}

func TestAllowValidation(t *testing.T) {
	linttest.Run(t, lint.AllowAnalyzer, "./testdata/src/allow")
}

// TestSuiteCleanOnTree is the enforcement backstop: the full analyzer
// suite over the repository's own packages must be silent. Reverting
// any of the fixes this suite guards (the EncodeKey'd tuple keys, the
// ordered lock helper, the span accounting on error paths) turns this
// red at the offending line.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
