// Package linttest runs one analyzer over fixture packages and checks
// its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest: a comment
//
//	r.Tuples() // want `raw .*Tuples`
//
// asserts that the analyzer reports a diagnostic on that line whose
// message matches the back-quoted (or double-quoted) regular
// expression. Every expectation must be met by a diagnostic and every
// diagnostic must meet an expectation; anything unmatched on either
// side fails the test with its position.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRE extracts the back-quoted or double-quoted patterns following
// a "// want" marker.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// wantMarker introduces expectations inside a comment. It may trail
// other comment text (a //lint:allow annotation hangs its own
// expectation after a second "//").
const wantMarker = "// want"

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages (go list patterns relative to the
// test's working directory, conventionally ./testdata/src/<analyzer>),
// applies exactly one analyzer, and diffs its diagnostics against the
// // want expectations in the fixture sources.
func Run(t *testing.T, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cmt := range cg.List {
					i := strings.Index(cmt.Text, wantMarker)
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(cmt.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(cmt.Text[i+len(wantMarker):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, a.Name, w.re)
		}
	}
}
