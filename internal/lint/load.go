package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package: syntax with comments,
// full go/types information, and the //lint:allow annotation index its
// files carry.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	allows  allowIndex
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (relative to dir, "" = current directory) to
// type-checked packages. It shells out to `go list -deps -export`,
// which compiles every dependency and hands back gc export data; the
// standard library's gc importer then feeds go/types, so the loader
// needs nothing beyond the toolchain already required to build the
// module. Only non-test files of the matched packages are analyzed —
// dependencies contribute export data, not syntax.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
		"--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pc := p
			targets = append(targets, &pc)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, t *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath: t.ImportPath,
		Dir:     t.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tp,
		Info:    info,
		allows:  indexAllows(fset, files),
	}, nil
}
