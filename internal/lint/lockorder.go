package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockorder enforces the deadlock-freedom argument of
// docs/ARCHITECTURE.md: relation mutexes are only ever held two-at-a-
// time by write groups, and those acquisitions go through the one
// helper that sorts by Relation.id (creation order) first. A function
// that write-locks two Relation mutexes ad hoc — or locks them in a
// loop over an arbitrary slice — can deadlock against a concurrently
// committing group however carefully its own callers order things.
// The canonical helper itself carries the //lint:allow annotation that
// marks it as the one sanctioned acquisition site.
var Lockorder = &Analyzer{
	Name:  "lockorder",
	Doc:   "multiple Relation mutexes are acquired only through the canonical Relation.id-ordered helper",
	Scope: []string{"repro/internal/core"},
	Run: func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockSites(pass, fd.Body)
			}
		}
		return nil
	},
}

// relationLock matches the expression r.mu.Lock() where r is a
// (*)core.Relation, and returns the receiver expression.
func relationLock(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Lock" {
		return nil, false
	}
	mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return nil, false
	}
	tv, ok := info.Types[mu.X]
	if !ok || !isRelationLike(tv.Type) {
		return nil, false
	}
	return mu.X, true
}

// isRelationLike matches core.Relation, plus a fixture package's own
// Relation twin: testdata cannot reach core's unexported mu field, so
// the core-internal code this analyzer scopes to is modeled in fixtures
// by a local type of the same name.
func isRelationLike(t types.Type) bool {
	if isNamed(t, corePkg, "Relation") {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Relation" && obj.Pkg() != nil && strings.Contains(obj.Pkg().Path(), "/lint/testdata/")
}

// lockSite is one write-lock acquisition of a relation mutex.
type lockSite struct {
	call   *ast.CallExpr
	recv   string // receiver rendering, to tell distinct relations apart
	inLoop bool
}

// checkLockSites flags a function body that acquires two or more
// Relation write locks (distinct receivers, or any acquisition inside
// a loop, which locks arbitrarily many). Function literals are checked
// as their own bodies: a closure's acquisitions are its own.
func checkLockSites(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info()
	var sites []lockSite
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch e := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			checkLockSites(pass, e.Body)
			return
		case *ast.ForStmt, *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, loopDepth+1) })
			return
		case *ast.CallExpr:
			if recv, ok := relationLock(info, e); ok {
				sites = append(sites, lockSite{call: e, recv: types.ExprString(recv), inLoop: loopDepth > 0})
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, loopDepth) })
	}
	walk(body, 0)

	distinct := make(map[string]bool)
	multi := false
	for _, s := range sites {
		distinct[s.recv] = true
		if s.inLoop {
			multi = true // one syntactic site, arbitrarily many locks
		}
	}
	if !multi && len(distinct) < 2 {
		return
	}
	for _, s := range sites {
		if s.inLoop || len(distinct) >= 2 {
			pass.Reportf(s.call.Pos(),
				"function acquires multiple Relation mutexes ad hoc; go through the Relation.id-ordered helper (lockRelationsOrdered) so overlapping write groups cannot deadlock")
		}
	}
}
