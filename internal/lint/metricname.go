package lint

import (
	"go/ast"
	"regexp"
)

// metricNameRE is the layer.subsystem.name convention of
// docs/OBSERVABILITY.md: two to four lowercase dot-separated segments,
// each [a-z][a-z0-9_]*. Examples: core.epoch, engine.queries,
// engine.stage.parse_ns, core.publish.pin_wait_ns.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$`)

// registryMethods are the get-or-create accessors of obs.Registry
// whose first argument is a metric name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// Metricname pins the metric catalog: every name registered against an
// obs.Registry must be a compile-time constant matching the
// layer.subsystem.name convention. A name computed at runtime cannot
// be audited against docs/OBSERVABILITY.md's catalog by reading the
// code, which is how catalogs silently drift.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "obs.Registry metric names are compile-time constants matching layer.subsystem.name",
	Run: func(pass *Pass) error {
		info := pass.Info()
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !registryMethods[fn.Name()] || !isMethodOn(fn, obsPkg, "Registry", fn.Name()) {
					return true
				}
				name, isConst := constString(info, call.Args[0])
				if !isConst {
					pass.Reportf(call.Args[0].Pos(),
						"metric name passed to Registry.%s is not a compile-time constant; the catalog in docs/OBSERVABILITY.md cannot audit runtime-built names", fn.Name())
					return true
				}
				if !metricNameRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(),
						"metric name %q does not match the layer.subsystem.name convention (lowercase dot-separated segments, see docs/OBSERVABILITY.md)", name)
				}
				return true
			})
		}
		return nil
	},
}
