package lint

import (
	"go/ast"
	"go/types"
)

// corePkg is the package whose types the analyzers key on. Fixture
// packages under testdata import the real thing, so the type-based
// matching is identical in tests and in CI.
const (
	corePkg  = "repro/internal/core"
	obsPkg   = "repro/internal/obs"
	valuePkg = "repro/internal/value"
)

// rawReadMethods are the *core.Relation accessors that hand out tuple
// state from the live relation. Inside the query layers they bypass
// the epoch/pin snapshot protocol: a multi-relation expression reading
// relation A through a raw accessor and relation B through another can
// observe a writer's publication between the two — the exact torn read
// core.Pin exists to exclude. Version() and Cardinality() are not
// listed: they are fence/statistics reads that carry no tuple state.
var rawReadMethods = map[string]bool{
	"Tuples":          true,
	"SnapshotVersion": true,
	"Lookup":          true,
	"Lifespan":        true,
}

// Pindiscipline enforces the snapshot read discipline of
// docs/ARCHITECTURE.md on the layers that execute queries: engine and
// hql code (and the CLI/bench front ends) must read relation tuple
// state through a core.Pin — a RelVersion, a frozen View, or the
// engine's Snapshot accessors — never through the live relation's raw
// accessors. Plan-time statistics reads and index builders, which are
// deliberately unpinned, carry //lint:allow annotations stating why.
//
// Two shapes are flagged. A direct call (`r.Tuples()`) is the classic
// violation, wherever it sits — ast.Inspect descends into function
// literals, so a raw read inside a worker-goroutine closure is caught
// the same as one at top level. A method-value capture (`f :=
// r.Tuples`, or `pool.submit(r.Lifespan)`) is the parallel executor's
// failure mode: the accessor escapes the enclosing function — usually
// into a worker goroutine — and every later f() is a live read racing
// the publish path with no call expression left for the first shape to
// see. Worker kernels must capture a pinned RelVersion or Snapshot
// accessor instead.
var Pindiscipline = &Analyzer{
	Name:  "pindiscipline",
	Doc:   "query-layer reads of relation tuple state go through a pinned snapshot, not raw *core.Relation accessors",
	Scope: []string{"repro/internal/engine", "repro/internal/hql", "repro/internal/storage", "repro/cmd"},
	Run: func(pass *Pass) error {
		info := pass.Info()
		for _, f := range pass.Pkg.Files {
			// Selector expressions consumed as the Fun of a call are
			// handled by the direct-call shape; everything else resolving
			// to a raw read method is a capture.
			calledSel := make(map[*ast.SelectorExpr]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						calledSel[sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					fn := calleeFunc(info, x)
					if fn == nil || !rawReadMethods[fn.Name()] || !isMethodOn(fn, corePkg, "Relation", fn.Name()) {
						return true
					}
					pass.Reportf(x.Pos(),
						"raw (*core.Relation).%s read outside a pinned snapshot; read through core.Pin / RelVersion / View (or annotate a deliberate live read with //lint:allow pindiscipline <reason>)",
						fn.Name())
				case *ast.SelectorExpr:
					if calledSel[x] {
						return true
					}
					fn, _ := info.Uses[x.Sel].(*types.Func)
					if fn == nil || !rawReadMethods[fn.Name()] || !isMethodOn(fn, corePkg, "Relation", fn.Name()) {
						return true
					}
					pass.Reportf(x.Pos(),
						"raw (*core.Relation).%s captured as a method value; it escapes the pin discipline (e.g. into a worker goroutine) — capture a pinned RelVersion/Snapshot accessor instead (or annotate with //lint:allow pindiscipline <reason>)",
						fn.Name())
				}
				return true
			})
		}
		return nil
	},
}
