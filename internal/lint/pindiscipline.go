package lint

import (
	"go/ast"
)

// corePkg is the package whose types the analyzers key on. Fixture
// packages under testdata import the real thing, so the type-based
// matching is identical in tests and in CI.
const (
	corePkg  = "repro/internal/core"
	obsPkg   = "repro/internal/obs"
	valuePkg = "repro/internal/value"
)

// rawReadMethods are the *core.Relation accessors that hand out tuple
// state from the live relation. Inside the query layers they bypass
// the epoch/pin snapshot protocol: a multi-relation expression reading
// relation A through a raw accessor and relation B through another can
// observe a writer's publication between the two — the exact torn read
// core.Pin exists to exclude. Version() and Cardinality() are not
// listed: they are fence/statistics reads that carry no tuple state.
var rawReadMethods = map[string]bool{
	"Tuples":          true,
	"SnapshotVersion": true,
	"Lookup":          true,
	"Lifespan":        true,
}

// Pindiscipline enforces the snapshot read discipline of
// docs/ARCHITECTURE.md on the layers that execute queries: engine and
// hql code (and the CLI/bench front ends) must read relation tuple
// state through a core.Pin — a RelVersion, a frozen View, or the
// engine's Snapshot accessors — never through the live relation's raw
// accessors. Plan-time statistics reads and index builders, which are
// deliberately unpinned, carry //lint:allow annotations stating why.
var Pindiscipline = &Analyzer{
	Name:  "pindiscipline",
	Doc:   "query-layer reads of relation tuple state go through a pinned snapshot, not raw *core.Relation accessors",
	Scope: []string{"repro/internal/engine", "repro/internal/hql", "repro/internal/storage", "repro/cmd"},
	Run: func(pass *Pass) error {
		info := pass.Info()
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !rawReadMethods[fn.Name()] {
					return true
				}
				if !isMethodOn(fn, corePkg, "Relation", fn.Name()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"raw (*core.Relation).%s read outside a pinned snapshot; read through core.Pin / RelVersion / View (or annotate a deliberate live read with //lint:allow pindiscipline <reason>)",
					fn.Name())
				return true
			})
		}
		return nil
	},
}
