package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rawkeyjoin bans hand-built composite key strings. PR 2 fixed a real
// injectivity bug of this class: joining key parts with a bare "|"
// collides whenever a part contains the separator — ("a|b","c") and
// ("a","b|c") index the same slot — so every composite key string must
// go through value.EncodeKey, which escapes before joining. The
// analyzer flags the three ways the bug is written: strings.Join with
// a "|" separator, string concatenation mixing a "|" literal with
// dynamic parts, and fmt.Sprintf with "|" in the format. Pure display
// strings (diagnostic messages) that legitimately render keys with a
// bare separator carry //lint:allow annotations.
var Rawkeyjoin = &Analyzer{
	Name: "rawkeyjoin",
	Doc:  "composite key strings are built by value.EncodeKey, never by joining parts with \"|\" by hand",
	Run:  runRawkeyjoin,
}

func runRawkeyjoin(pass *Pass) error {
	if pass.Pkg.PkgPath == valuePkg {
		return nil // the encoder itself owns the separator
	}
	info := pass.Info()
	// walk tracks whether the node sits inside an already-checked
	// string-concatenation chain, so one chain yields one finding; the
	// flag resets inside call arguments, which start chains of their
	// own.
	var walk func(n ast.Node, inStringAdd bool)
	walk = func(n ast.Node, inStringAdd bool) {
		if n == nil {
			return
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			checkJoinCall(pass, info, e)
		case *ast.ParenExpr:
			walk(e.X, inStringAdd)
			return
		case *ast.BinaryExpr:
			if isStringAdd(info, e) {
				if !inStringAdd {
					checkConcat(pass, info, e)
				}
				walk(e.X, true)
				walk(e.Y, true)
				return
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, false) })
	}
	for _, f := range pass.Pkg.Files {
		walk(f, false)
	}
	return nil
}

// walkChildren visits the direct children of n.
func walkChildren(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		f(c)
		return false
	})
}

// checkJoinCall flags strings.Join(parts, "|") and fmt.Sprintf with a
// "|" in its format string.
func checkJoinCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	switch {
	case isPkgFunc(fn, "strings", "Join") && len(call.Args) == 2:
		if sep, ok := constString(info, call.Args[1]); ok && strings.Contains(sep, "|") {
			pass.Reportf(call.Pos(), "strings.Join with %q builds a non-injective key string; use value.EncodeKey (escapes separators) or annotate a display-only use", sep)
		}
	case isPkgFunc(fn, "fmt", "Sprintf") && len(call.Args) >= 2:
		if format, ok := constString(info, call.Args[0]); ok && strings.Contains(format, "|") {
			pass.Reportf(call.Pos(), "fmt.Sprintf format %q splices values around \"|\"; composite keys must go through value.EncodeKey", format)
		}
	}
}

// isStringAdd reports whether e is a + over operands of static string
// type.
func isStringAdd(info *types.Info, e *ast.BinaryExpr) bool {
	if e.Op.String() != "+" {
		return false
	}
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkConcat flags a string-concatenation chain that mixes a "|"
// literal with at least one non-constant part. A chain that is
// entirely constant is just a literal spelled in pieces, not a key
// built from runtime values.
func checkConcat(pass *Pass, info *types.Info, root *ast.BinaryExpr) {
	var hasSep, hasDynamic bool
	var flatten func(e ast.Expr)
	flatten = func(e ast.Expr) {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok && isStringAdd(info, b) {
			flatten(b.X)
			flatten(b.Y)
			return
		}
		if s, ok := constString(info, e); ok {
			if strings.Contains(s, "|") {
				hasSep = true
			}
			return
		}
		hasDynamic = true
	}
	flatten(root)
	if hasSep && hasDynamic {
		pass.Reportf(root.Pos(), "string concatenation splices dynamic parts around \"|\"; composite keys must go through value.EncodeKey")
	}
}
