package lint

import (
	"go/ast"
)

const (
	hqlPkg    = "repro/internal/hql"
	enginePkg = "repro/internal/engine"
)

// sessionBypass lists, per package, the query entry points that bypass
// the Session API: package-level functions that take a bare hql.Env
// (in practice a *storage.Store) and execute a query against it.
// Commands are supposed to open an engine.DB once and route every
// query through a Session — which owns the optimizer toggle, threads a
// context, and returns classified errors — so these stay legal inside
// the engine itself but not in cmd/.
var sessionBypass = map[string]map[string]bool{
	hqlPkg: {
		"Run": true, "RunContext": true,
		"RunOptimized": true, "RunOptimizedContext": true,
		"Eval": true, "EvalContext": true,
		"EvalNaive": true, "EvalNaiveContext": true,
	},
	enginePkg: {
		"Run": true, "RunContext": true,
		"Eval": true, "EvalContext": true,
		"Explain":        true,
		"ExplainAnalyze": true, "ExplainAnalyzeContext": true,
	},
}

// Sessionapi keeps commands on the Session API: code under cmd/ must
// not call the env-taking query entry points of hql or engine directly.
// A command that pokes a store into hql.Run sidesteps the session's
// optimizer setting, context threading and error classification, and
// regresses the cmd/ layer to the pre-server implicit-global idiom.
// Deliberate exceptions (a benchmark measuring the naive evaluator as
// its baseline) carry a //lint:allow sessionapi annotation.
var Sessionapi = &Analyzer{
	Name:  "sessionapi",
	Doc:   "cmd/ runs queries through engine.Session, not the env-taking hql/engine entry points",
	Scope: []string{"repro/cmd"},
	Run: func(pass *Pass) error {
		info := pass.Info()
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if names := sessionBypass[fn.Pkg().Path()]; names[fn.Name()] && isPkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
					pass.Reportf(call.Pos(),
						"%s.%s bypasses the Session API; open an engine.DB and call the Session method instead (see docs/SERVER.md)",
						fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
		return nil
	},
}
