package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanonce enforces exactly-once span accounting, modeled on vet's
// lostcancel: a function that starts an obs.Span (sp := obs.Begin())
// must, on every return path, either close it — pass it to a closer,
// by convention any function named finishQuery — or hand it off (pass
// the span or its address to any other call, store it, return it),
// after which the recipient owns the ending. A path that drops a live
// span loses a query from engine.queries and every histogram; a path
// that closes one twice double-counts it.
//
// The analysis is a conservative abstract interpretation over the
// function body with three states per span variable — live, closed,
// escaped — joined across branches and iterated to a fixpoint around
// loops. Anything it cannot model (goto, labeled break) makes the
// function unanalyzable and silent, never noisy: the analyzer's
// findings are all real under its closer/handoff convention.
var Spanonce = &Analyzer{
	Name: "spanonce",
	Doc:  "an obs.Span started on a path is closed (finishQuery) or handed off exactly once on every return path",
	Run: func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkSpans(pass, fn.Body)
					}
					return true
				case *ast.FuncLit:
					checkSpans(pass, fn.Body)
					return true
				}
				return true
			})
		}
		return nil
	},
}

// span states, used as a bitmask so branch joins are unions.
const (
	stUnborn  uint8 = 1 << iota // before the obs.Begin assignment
	stLive                      // begun, not yet closed or handed off
	stClosed                    // closed exactly once
	stEscaped                   // handed off; ownership transferred
)

// spanCheck interprets one function body for one span variable.
type spanCheck struct {
	pass     *Pass
	info     *types.Info
	obj      types.Object // the span variable
	beginPos token.Pos    // its obs.Begin assignment
	deferred bool         // a defer closes the span at every return
	bailed   bool         // body uses control flow the interpreter won't model
	breaks   []*uint8     // accumulators for break/continue targets
	reported map[token.Pos]bool
}

// report emits one finding per position: loop bodies are interpreted
// twice to reach a fixpoint, which must not double the diagnostics.
func (c *spanCheck) report(pos token.Pos, format string, args ...any) {
	if c.bailed || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkSpans finds each `v := obs.Begin()` in body (at any depth, but
// not inside nested function literals — those are their own functions)
// and interprets the body for each.
func checkSpans(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info()
	var walk func(n ast.Node)
	begins := map[types.Object]token.Pos{}
	walk = func(n ast.Node) {
		switch e := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.AssignStmt:
			if len(e.Lhs) == 1 && len(e.Rhs) == 1 {
				if call, ok := ast.Unparen(e.Rhs[0]).(*ast.CallExpr); ok && isPkgFunc(calleeFunc(info, call), obsPkg, "Begin") {
					if id, ok := e.Lhs[0].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							begins[obj] = call.Pos()
						} else if obj := info.Uses[id]; obj != nil {
							begins[obj] = call.Pos()
						}
					}
				}
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
	for obj, pos := range begins {
		c := &spanCheck{pass: pass, info: info, obj: obj, beginPos: pos, reported: map[token.Pos]bool{}}
		c.scanDefers(body)
		out, terminated := c.flowStmts(body.List, stUnborn)
		if !terminated && !c.bailed {
			// Implicit return at the closing brace.
			c.checkReturn(out, body.Rbrace)
		}
	}
}

// scanDefers records whether any defer statement closes the span; a
// deferred closer runs at every return.
func (c *spanCheck) scanDefers(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions defer on their own behalf
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if c.isCloser(d.Call) && c.mentions(d.Call) {
				c.deferred = true
			}
		}
		return true
	})
}

// isCloser reports whether call is a span closer: any function named
// finishQuery (the engine's registry sink; fixtures and future layers
// follow the naming convention).
func (c *spanCheck) isCloser(call *ast.CallExpr) bool {
	fn := calleeFunc(c.info, call)
	return fn != nil && fn.Name() == "finishQuery"
}

// mentions reports whether the node references the span variable
// outside of a plain obs.Span method-call receiver position (sp.Mark,
// sp.Total and friends neither close nor leak the span).
func (c *spanCheck) mentions(e ast.Node) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found || n == nil {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.info.ObjectOf(id) == c.obj {
					if fn := calleeFunc(c.info, call); fn != nil && isMethodOn(fn, obsPkg, "Span", fn.Name()) {
						// Receiver-only use: scan just the arguments.
						for _, a := range call.Args {
							walk(a)
						}
						return
					}
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && c.info.ObjectOf(id) == c.obj {
			found = true
			return
		}
		walkChildren(n, walk)
	}
	walk(e)
	return found
}

// evalExpr applies the span transitions an expression performs to the
// state set: a closer call closes (reporting a double close), any
// other call or context that sees the span escapes it.
func (c *spanCheck) evalExpr(e ast.Expr, states uint8) uint8 {
	if e == nil || !c.mentions(e) {
		return states
	}
	// Closer call with the span among its arguments?
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && c.isCloser(call) {
		argMentions := false
		for _, a := range call.Args {
			if c.mentions(a) {
				argMentions = true
			}
		}
		if argMentions {
			if states&stClosed != 0 {
				c.report(call.Pos(), "obs.Span may already be closed on a path reaching this finishQuery; spans are closed exactly once")
			}
			out := states &^ (stLive | stUnborn)
			out |= stClosed
			return out
		}
	}
	// Any other mention — handoff to a call, address taken, stored,
	// captured by a closure — transfers ownership.
	if states&(stLive|stClosed) != 0 {
		states = (states &^ stLive) | stEscaped
	}
	return states
}

// checkReturn validates the state set at a return point, applying a
// deferred closer first.
func (c *spanCheck) checkReturn(states uint8, pos token.Pos) {
	if c.bailed {
		return
	}
	if c.deferred {
		if states&stClosed != 0 {
			c.report(pos, "return path closes an obs.Span that a deferred finishQuery closes again")
		}
		states = (states &^ stLive) | stClosed
	}
	if states&stLive != 0 {
		c.report(pos, "this return path drops a live obs.Span begun at %s; close it with finishQuery or hand it off", c.pass.Fset().Position(c.beginPos))
	}
}

// flowStmts interprets a statement sequence. It returns the state set
// at the fall-through exit and whether the sequence always terminates
// (return / break / continue) before falling through.
func (c *spanCheck) flowStmts(stmts []ast.Stmt, in uint8) (uint8, bool) {
	states := in
	for _, s := range stmts {
		var terminated bool
		states, terminated = c.flowStmt(s, states)
		if terminated || c.bailed {
			return states, true
		}
	}
	return states, false
}

// flowStmt interprets one statement.
func (c *spanCheck) flowStmt(s ast.Stmt, in uint8) (uint8, bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		states := in
		for _, r := range st.Rhs {
			states = c.evalExpr(r, states)
		}
		// The begin assignment makes the span live; any other write to
		// the variable ends tracking.
		for i, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok && c.info.ObjectOf(id) == c.obj {
				if i < len(st.Rhs) {
					if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok && call.Pos() == c.beginPos {
						return stLive, false
					}
				}
				return stEscaped, false
			}
			states = c.evalExpr(l, states) // e.g. m[sp.Total()] = x
		}
		return states, false
	case *ast.ExprStmt:
		return c.evalExpr(st.X, in), false
	case *ast.DeclStmt:
		states := in
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						states = c.evalExpr(v, states)
					}
				}
			}
		}
		return states, false
	case *ast.ReturnStmt:
		states := in
		for _, r := range st.Results {
			states = c.evalExpr(r, states)
		}
		c.checkReturn(states, st.Pos())
		return states, true
	case *ast.IfStmt:
		states := in
		if st.Init != nil {
			states, _ = c.flowStmt(st.Init, states)
		}
		states = c.evalExpr(st.Cond, states)
		thenOut, thenTerm := c.flowStmts(st.Body.List, states)
		elseOut, elseTerm := states, false
		if st.Else != nil {
			elseOut, elseTerm = c.flowStmt(st.Else, states)
		}
		switch {
		case thenTerm && elseTerm:
			return 0, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return thenOut | elseOut, false
		}
	case *ast.BlockStmt:
		return c.flowStmts(st.List, in)
	case *ast.ForStmt:
		states := in
		if st.Init != nil {
			states, _ = c.flowStmt(st.Init, states)
		}
		states = c.evalExpr(st.Cond, states)
		if st.Post != nil && c.mentions(st.Post) {
			c.bailed = true // span transitions in a post statement: unmodeled
		}
		return c.flowLoop(st.Body, states, st.Cond == nil), false
	case *ast.RangeStmt:
		states := c.evalExpr(st.X, in)
		return c.flowLoop(st.Body, states, false), false
	case *ast.SwitchStmt:
		states := in
		if st.Init != nil {
			states, _ = c.flowStmt(st.Init, states)
		}
		states = c.evalExpr(st.Tag, states)
		return c.flowCases(st.Body, states)
	case *ast.TypeSwitchStmt:
		states := in
		if st.Init != nil {
			states, _ = c.flowStmt(st.Init, states)
		}
		return c.flowCases(st.Body, states)
	case *ast.SelectStmt:
		return c.flowCases(st.Body, in)
	case *ast.DeferStmt:
		// Deferred closers are handled by scanDefers/checkReturn; any
		// other deferred use is a handoff.
		if c.isCloser(st.Call) && c.mentions(st.Call) {
			return in, false
		}
		return c.evalExpr(st.Call, in), false
	case *ast.GoStmt:
		return c.evalExpr(st.Call, in), false
	case *ast.LabeledStmt:
		// Labels imply goto/labeled-break control flow the interpreter
		// does not model.
		c.bailed = true
		return in, false
	case *ast.BranchStmt:
		if st.Tok == token.GOTO || st.Label != nil {
			c.bailed = true
			return in, true
		}
		if st.Tok == token.FALLTHROUGH {
			// flowCases approximates fallthrough by joining case states.
			return in, false
		}
		// break/continue: the state joins the innermost breakable's exit.
		if len(c.breaks) > 0 {
			*c.breaks[len(c.breaks)-1] |= in
		}
		return in, true
	case *ast.IncDecStmt:
		return c.evalExpr(st.X, in), false
	case *ast.SendStmt:
		return c.evalExpr(st.Value, c.evalExpr(st.Chan, in)), false
	case *ast.EmptyStmt:
		return in, false
	default:
		// Anything unrecognized: stop making claims about this function.
		c.bailed = true
		return in, false
	}
}

// flowLoop interprets a loop body to a fixpoint: zero, one, or more
// iterations, with break/continue states joined into the exit.
// Infinite loops (for {}) only exit through break. When every path
// through the body terminates (break/return), the body cannot run a
// second iteration, so the second fixpoint pass — which exists to
// catch a close flowing around into another close — is skipped.
func (c *spanCheck) flowLoop(body *ast.BlockStmt, in uint8, infinite bool) uint8 {
	var acc uint8
	c.breaks = append(c.breaks, &acc)
	once, term := c.flowStmts(body.List, in)
	twice := once
	if !term {
		twice, _ = c.flowStmts(body.List, in|once)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	if infinite {
		return acc
	}
	return in | once | twice | acc
}

// flowCases interprets a switch/select body: the union over case
// clauses, plus the fall-past state when no default exists.
func (c *spanCheck) flowCases(body *ast.BlockStmt, in uint8) (uint8, bool) {
	var acc uint8
	c.breaks = append(c.breaks, &acc)
	var out uint8
	hasDefault := false
	allTerm := true
	for _, s := range body.List {
		var clause []ast.Stmt
		switch cc := s.(type) {
		case *ast.CaseClause:
			states := in
			for _, e := range cc.List {
				states = c.evalExpr(e, states)
			}
			if cc.List == nil {
				hasDefault = true
			}
			clause = cc.Body
			o, term := c.flowStmts(clause, states)
			if !term {
				out |= o
				allTerm = false
			}
		case *ast.CommClause:
			states := in
			if cc.Comm == nil {
				hasDefault = true
			} else {
				states, _ = c.flowStmt(cc.Comm, in)
			}
			o, term := c.flowStmts(cc.Body, states)
			if !term {
				out |= o
				allTerm = false
			}
		}
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	out |= acc
	if acc != 0 {
		allTerm = false
	}
	if !hasDefault {
		out |= in
		allTerm = false
	}
	if len(body.List) == 0 {
		return in, false
	}
	return out, allTerm
}
