// Fixture for the allow validator: //lint:allow annotations must name
// a known analyzer and carry a non-empty reason. A second "//" inside
// the annotation starts a trailing comment, which is where these
// expectations hang.
package allow

//lint:allow rawkeyjoin // want `carries no reason`
var missingReason = 1

//lint:allow nosuchanalyzer because reasons // want `unknown analyzer "nosuchanalyzer"`
var unknownName = 2

//lint:allow // want `names no analyzer`
var nameless = 3

//lint:allow metricname a well-formed exemption with its justification recorded
var wellFormed = 4
