// Fixture for the lockorder analyzer. core.Relation's mu field is
// unexported, so the fixture models core-internal code with a local
// Relation twin; the analyzer recognizes the type by name inside
// testdata packages.
package lockorder

import "sync"

type Relation struct {
	id uint64
	mu sync.Mutex
}

func lockTwoAdHoc(a, b *Relation) {
	a.mu.Lock() // want `multiple Relation mutexes ad hoc`
	b.mu.Lock() // want `multiple Relation mutexes ad hoc`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockInLoop(rels []*Relation) {
	for _, r := range rels {
		r.mu.Lock() // want `multiple Relation mutexes ad hoc`
	}
	for i := len(rels) - 1; i >= 0; i-- {
		rels[i].mu.Unlock()
	}
}

func lockOne(a *Relation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.id++
}

func relockSame(a *Relation) {
	a.mu.Lock()
	a.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

func canonicalHelper(rels []*Relation) {
	for _, r := range rels {
		//lint:allow lockorder fixture stands in for the id-ordered canonical helper
		r.mu.Lock()
	}
}
