// Fixture for the metricname analyzer: obs.Registry names must be
// compile-time constants matching the layer.subsystem.name convention.
// The fixture is type-checked, never executed, so registering against
// obs.Default is inert.
package metricname

import "repro/internal/obs"

const conventional = "fixture.metrics.good"

var (
	lit      = obs.Default.Counter("fixture.metrics.queries")
	konst    = obs.Default.Histogram(conventional)
	deep     = obs.Default.Gauge("fixture.metrics.depth.level")
	caps     = obs.Default.Counter("Fixture.Metrics.Bad") // want `does not match the layer\.subsystem\.name convention`
	flat     = obs.Default.Counter("justonesegment")      // want `does not match the layer\.subsystem\.name convention`
	computed = obs.Default.Gauge("fixture." + suffix())   // want `not a compile-time constant`
)

//lint:allow metricname fixture demonstrates the escape hatch
var allowed = obs.Default.Counter("LEGACY_NAME")

func suffix() string { return "x" }
