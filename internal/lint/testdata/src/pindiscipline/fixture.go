// Fixture for the pindiscipline analyzer: raw tuple-state reads on a
// live *core.Relation are flagged; reads through a pinned RelVersion,
// fence/statistics reads, and annotated deliberate live reads are not.
package pindiscipline

import "repro/internal/core"

func rawReads(r *core.Relation) {
	r.Tuples()          // want `raw \(\*core\.Relation\)\.Tuples read outside a pinned snapshot`
	r.Lookup("k")       // want `raw \(\*core\.Relation\)\.Lookup read outside a pinned snapshot`
	r.SnapshotVersion() // want `raw \(\*core\.Relation\)\.SnapshotVersion read outside a pinned snapshot`
	r.Lifespan()        // want `raw \(\*core\.Relation\)\.Lifespan read outside a pinned snapshot`
}

func pinnedReads(r *core.Relation) {
	_, vers := core.Pin(r)
	_ = vers[0].Tuples()
	if t, ok := vers[0].Lookup("k"); ok {
		_ = t
	}
}

func fenceReads(r *core.Relation) {
	_ = r.Cardinality()
	_ = r.Version()
}

func annotatedLiveRead(r *core.Relation) {
	//lint:allow pindiscipline fixture exercises the sanctioned escape hatch
	r.Tuples()
}

// Worker-goroutine shapes: a raw read called inside a spawned closure
// is the direct-call violation; a raw accessor captured as a method
// value escapes into the worker with no call site left to flag, so the
// capture itself is the violation.
func workerShapes(r *core.Relation) {
	go func() {
		r.Lookup("k") // want `raw \(\*core\.Relation\)\.Lookup read outside a pinned snapshot`
	}()
	read := r.Tuples // want `raw \(\*core\.Relation\)\.Tuples captured as a method value`
	go func() { _ = read() }()
	submit(r.Lifespan) // want `raw \(\*core\.Relation\)\.Lifespan captured as a method value`
}

func submit(task any) {}

func pinnedWorkerShapes(r *core.Relation) {
	_, vers := core.Pin(r)
	read := vers[0].Tuples // RelVersion accessors are the sanctioned capture
	go func() { _ = read() }()
	//lint:allow pindiscipline fixture exercises the capture escape hatch
	submit(r.Tuples)
}
