// Fixture for the rawkeyjoin analyzer: composite key strings built by
// splicing parts around a bare "|" are flagged in all three spellings;
// value.EncodeKey, other separators, constant-only literals, and
// annotated display-only joins are not.
package rawkeyjoin

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

func badJoins(parts []string, a, b string) []string {
	return []string{
		strings.Join(parts, "|"),   // want `strings\.Join with "\|" builds a non-injective key`
		a + "|" + b,                // want `concatenation splices dynamic parts around "\|"`
		fmt.Sprintf("%s|%s", a, b), // want `Sprintf format .* splices values around "\|"`
	}
}

func goodJoins(parts []string, a, b string) []string {
	return []string{
		value.EncodeKey(parts),
		strings.Join(parts, ","),
		a + "-" + b,
		"lo" + "|" + "hi",
		fmt.Sprintf("%s-%s", a, b),
	}
}

func displayOnly(parts []string) string {
	//lint:allow rawkeyjoin display-only rendering, never indexed
	return strings.Join(parts, "|")
}
