// Fixture for the sessionapi analyzer: commands must run queries
// through an engine.Session, not the env-taking entry points of hql or
// engine. The fixture is type-checked, never executed.
package sessionapi

import (
	"context"

	"repro/internal/engine"
	"repro/internal/hql"
	"repro/internal/storage"
)

func bypasses(st *storage.Store) {
	hql.Run("EMP", st)                                  // want `hql\.Run bypasses the Session API`
	hql.RunOptimized("EMP", st)                         // want `hql\.RunOptimized bypasses the Session API`
	hql.RunContext(context.Background(), "EMP", st)     // want `hql\.RunContext bypasses the Session API`
	engine.Run("EMP", st)                               // want `engine\.Run bypasses the Session API`
	engine.Eval(nil, st)                                // want `engine\.Eval bypasses the Session API`
	engine.Explain("EMP", st, true)                     // want `engine\.Explain bypasses the Session API`
	engine.ExplainAnalyzeContext(nil, "EMP", st, false) // want `engine\.ExplainAnalyzeContext bypasses the Session API`
	if e, err := hql.Parse("EMP"); err == nil {
		hql.EvalNaive(e, st) // want `hql\.EvalNaive bypasses the Session API`
	}
}

func throughSession(st *storage.Store) {
	db := engine.OpenDB(st)
	sess := db.NewSession()
	ctx := context.Background()
	sess.Query(ctx, "EMP")
	sess.Explain("EMP")
	sess.ExplainAnalyze(ctx, "EMP")
	if e, err := hql.Parse("EMP"); err == nil {
		sess.Eval(ctx, e)
	}
}

func annotatedBaseline(st *storage.Store) {
	e, err := hql.Parse("EMP")
	if err != nil {
		return
	}
	//lint:allow sessionapi fixture exercises the naive-baseline escape hatch
	hql.EvalNaive(e, st)
}
