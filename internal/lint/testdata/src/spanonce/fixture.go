// Fixture for the spanonce analyzer: every path out of a function that
// begins an obs.Span must close it (any function named finishQuery) or
// hand it off. The local finishQuery stands in for the engine's; the
// analyzer matches closers by name, by convention.
package spanonce

import (
	"errors"

	"repro/internal/obs"
)

var errBoom = errors.New("boom")

func finishQuery(sp *obs.Span) { _ = sp.Total() }

func closedOnAllPaths(fail bool) error {
	sp := obs.Begin()
	if fail {
		finishQuery(&sp)
		return errBoom
	}
	sp.Mark(obs.StageExecute)
	finishQuery(&sp)
	return nil
}

func dropsOnErrorPath(fail bool) error {
	sp := obs.Begin()
	if fail {
		return errBoom // want `drops a live obs\.Span`
	}
	finishQuery(&sp)
	return nil
}

func doubleClose() {
	sp := obs.Begin()
	finishQuery(&sp)
	finishQuery(&sp) // want `already be closed`
}

func handsOff() *obs.Span {
	sp := obs.Begin()
	return &sp
}

func handsOffToCall(sink func(*obs.Span)) {
	sp := obs.Begin()
	sink(&sp)
}

func deferredClose(fail bool) error {
	sp := obs.Begin()
	defer finishQuery(&sp)
	if fail {
		return errBoom
	}
	sp.Mark(obs.StageParse)
	return nil
}

func deferredDoubleClose(fail bool) {
	sp := obs.Begin()
	defer finishQuery(&sp)
	if fail {
		finishQuery(&sp)
		return // want `deferred finishQuery closes again`
	}
}

func closeInLoop(n int) {
	sp := obs.Begin()
	for i := 0; i < n; i++ {
		finishQuery(&sp) // want `already be closed`
	}
} // want `drops a live obs\.Span`

func marksInLoop(n int) {
	sp := obs.Begin()
	for i := 0; i < n; i++ {
		sp.Mark(obs.StageExecute)
	}
	finishQuery(&sp)
}
