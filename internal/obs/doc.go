// Package obs is the engine's observability substrate: a
// dependency-free, race-safe metrics registry (atomic counters, gauges,
// bounded exponential histograms with quantile estimation, and a
// ring-buffer slow-query log) plus a lightweight span type that times
// the stages of a query's lifecycle (parse → plan → pin → execute →
// materialize).
//
// The package deliberately imports nothing beyond the standard library
// and is imported by every other layer — core publishes lock-contention
// and write-group metrics, the engine publishes query/plan-cache/index
// metrics, the CLI and benchmark harness read them back — so it must
// never grow a dependency on any of those layers.
//
// Design constraints, in order:
//
//   - Hot-path cost. A counter increment is one atomic add; a histogram
//     observation is a bit-length computation plus three atomic adds; a
//     span mark is one monotonic clock read. Nothing on the per-query
//     path takes a lock or allocates. The registry's own lock guards
//     only metric registration (get-or-create), which callers do once
//     at package init and cache in a variable.
//   - Race safety. All metric types are safe for concurrent use, and
//     Snapshot may run while writers are mid-update (it reads each
//     atomic independently; cross-metric consistency is not promised,
//     per-metric monotonicity is).
//   - Bounded memory. Histograms are fixed-size bucket arrays; the slow
//     log is a fixed-capacity ring that overwrites its oldest entry.
//
// Registry.Snapshot returns a plain JSON-marshalable value — the
// expvar-style dump the CLI's \metrics command and the benchmark
// harness embed — and Snapshot.CounterDelta supports per-scenario
// accounting without resetting live metrics.
//
// See docs/OBSERVABILITY.md for the metric catalog and the span
// lifecycle.
package obs
