package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets bounds the histogram: bucket k holds values v with
// bits.Len64(v) == k, i.e. v ∈ [2^(k-1), 2^k). Bucket 0 holds exactly
// zero. 48 buckets cover nanosecond durations up to ~39 hours before
// the last bucket saturates — every latency this engine can produce.
const histBuckets = 48

// Histogram is a bounded exponential-bucket histogram over non-negative
// int64 values (by convention nanoseconds for metrics named *_ns).
// Observe is lock-free: one bit-length computation plus three atomic
// adds (plus a CAS loop only when a new maximum is set). Quantile
// estimates carry bucket resolution: the estimate always lands in the
// same power-of-two bucket as the true quantile, so it is within a
// factor of two — the property test in histogram_test.go locks this.
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	k := bits.Len64(uint64(v))
	if k >= histBuckets {
		return histBuckets - 1
	}
	return k
}

// bucketBounds returns the inclusive value range bucket k covers (the
// last bucket is open-ended and reports the int64 maximum).
func bucketBounds(k int) (lo, hi int64) {
	if k == 0 {
		return 0, 0
	}
	lo = int64(1) << (k - 1)
	if k == histBuckets-1 {
		return lo, 1<<63 - 1
	}
	return lo, int64(1)<<k - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed
// values: the bucket holding the ⌈q·count⌉-th smallest observation,
// linearly interpolated by rank within the bucket. Returns 0 when
// empty. Concurrent observations make the estimate approximate, never
// panic.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for k := 0; k < histBuckets; k++ {
		c := h.counts[k].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(k)
			if k == histBuckets-1 {
				// Open-ended overflow bucket: the max is the only honest
				// upper bound.
				if m := h.max.Load(); m > lo {
					hi = m
				} else {
					hi = lo
				}
			}
			// Interpolate by rank position within the bucket.
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.max.Load()
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	for k := range h.counts {
		h.counts[k].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistogramSnapshot is the JSON form of a histogram: observation count,
// sum and max, plus the estimated 50th/95th/99th percentiles.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// render writes the histogram's one-line human rendering, formatting
// values as durations for the *_ns naming convention.
func (s HistogramSnapshot) render(b *strings.Builder, name string) {
	if s.Count == 0 {
		fmt.Fprintf(b, "%-42s (no observations)\n", name)
		return
	}
	mean := s.Sum / int64(s.Count)
	if strings.HasSuffix(name, "_ns") {
		fmt.Fprintf(b, "%-42s n=%d mean=%s p50=%s p95=%s p99=%s max=%s\n", name,
			s.Count, time.Duration(mean), time.Duration(s.P50),
			time.Duration(s.P95), time.Duration(s.P99), time.Duration(s.Max))
		return
	}
	fmt.Fprintf(b, "%-42s n=%d mean=%d p50=%d p95=%d p99=%d max=%d\n", name,
		s.Count, mean, s.P50, s.P95, s.P99, s.Max)
}

// fmtMetricLine writes one counter/gauge line.
func fmtMetricLine(b *strings.Builder, name string, v int64) {
	fmt.Fprintf(b, "%-42s %d\n", name, v)
}
