package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// TestHistogramBuckets pins the bucket geometry: zero in bucket 0,
// powers of two at bucket boundaries, overflow clamped to the last
// bucket.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 50, histBuckets - 1}, {1<<63 - 1, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for k := 1; k < histBuckets-1; k++ {
		lo, hi := bucketBounds(k)
		if bucketOf(lo) != k || bucketOf(hi) != k {
			t.Errorf("bucket %d bounds [%d,%d] do not round-trip", k, lo, hi)
		}
		if bucketOf(lo-1) == k || bucketOf(hi+1) == k {
			t.Errorf("bucket %d bounds [%d,%d] not tight", k, lo, hi)
		}
	}
}

// TestQuantileProperty is the testing/quick property the issue asks
// for: for any non-empty observation set, the estimated quantile lands
// in the same power-of-two bucket as the exact quantile — the
// histogram's resolution guarantee (within 2× above bucket zero) —
// and estimates are monotone in q.
func TestQuantileProperty(t *testing.T) {
	prop := func(raw []uint32, q16 uint16) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(q16%1000+1) / 1000.0 // q ∈ (0, 1]
		h := &Histogram{}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		rank := int(q * float64(len(vals)))
		if rank == 0 {
			rank = 1
		}
		exact := vals[rank-1]
		est := h.Quantile(q)
		if bucketOf(est) != bucketOf(exact) {
			t.Logf("q=%v exact=%d (bucket %d) est=%d (bucket %d) vals=%v",
				q, exact, bucketOf(exact), est, bucketOf(est), vals)
			return false
		}
		// Monotonicity across a few probe points.
		prev := int64(-1)
		for _, qq := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			e := h.Quantile(qq)
			if e < prev {
				t.Logf("quantile not monotone at q=%v: %d < %d", qq, e, prev)
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileEmptyAndClamp covers the edges: empty histogram, q
// outside (0,1], overflow bucket interpolation bounded by the max.
func TestQuantileEmptyAndClamp(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(1 << 55) // overflow bucket
	h.Observe(1 << 56)
	if got := h.Quantile(1); got > 1<<56 || got < 1<<47 {
		t.Fatalf("overflow-bucket quantile %d out of [2^47, max]", got)
	}
	if h.Quantile(-1) != h.Quantile(0.0000001) {
		t.Fatal("q clamping broken")
	}
}

// TestHistogramConcurrent verifies lock-free observation under -race
// and that no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
				if i%1024 == 0 {
					_ = h.Quantile(0.95) // concurrent reads must be safe
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d != %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantile ordering violated: %+v", s)
	}
}
