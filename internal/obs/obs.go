package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; counters obtained from a Registry are additionally
// visible in its Snapshot.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter in place, so cached pointers stay valid.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; the get-or-create accessors return a stable pointer
// for a given name, so callers resolve each metric once and cache it.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	slow     *SlowLog
}

// New returns an empty registry with a slow-query log of the default
// capacity and threshold.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		slow:     NewSlowLog(DefaultSlowLogCap),
	}
}

// Default is the process-wide registry every engine layer publishes to.
var Default = New()

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed on demand at snapshot time —
// zero hot-path cost for values another subsystem already maintains
// (the database epoch, a cache's current size). Re-registering a name
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SlowLog returns the registry's slow-query log.
func (r *Registry) SlowLog() *SlowLog { return r.slow }

// Reset zeroes every registered metric in place and clears the slow
// log. Pointers previously returned by the accessors remain valid —
// callers that cached a *Counter keep counting into the same object —
// which is what makes Reset usable for test isolation and benchmark
// scenario boundaries.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.Reset()
	}
	r.slow.Clear()
}

// Snapshot is a point-in-time, JSON-marshalable dump of a registry —
// the expvar-style document the CLI's \metrics command prints and the
// benchmark harness embeds into BENCH_engine.json.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Writers may race the
// capture; each metric is read atomically, but the set is not a
// consistent cut across metrics (which monitoring does not need).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterDelta returns the counter increments since prev, omitting
// zero deltas and counters absent from the receiver. A counter that
// went backwards was Reset mid-interval (plan-cache counters at a
// benchmark boundary, say); following monitoring convention the delta
// then falls back to the count since the reset rather than wrapping.
// Benchmark scenarios use this for per-scenario accounting without
// resetting live metrics.
func (s Snapshot) CounterDelta(prev Snapshot) map[string]uint64 {
	d := make(map[string]uint64)
	for name, v := range s.Counters {
		dv := v - prev.Counters[name]
		if v < prev.Counters[name] {
			dv = v
		}
		if dv != 0 {
			d[name] = dv
		}
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(b *strings.Builder) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b.Write(data)
	b.WriteByte('\n')
	return nil
}

// String renders the snapshot as sorted human-readable lines — the
// CLI's \metrics format. Counters and gauges print name and value;
// histograms print count, mean and the estimated p50/p95/p99 (in
// time.Duration rendering for the conventional *_ns metrics, raw
// integers otherwise).
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmtMetricLine(&b, n, int64(s.Counters[n]))
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmtMetricLine(&b, n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Histograms[n].render(&b, n)
	}
	return b.String()
}
