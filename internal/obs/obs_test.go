package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate locks the pointer stability the hot paths
// rely on: resolving the same name twice returns the same object, so
// callers may cache the pointer at init and count into it forever.
func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1, c2 := r.Counter("a"), r.Counter("a")
	if c1 != c2 {
		t.Fatal("Counter(a) returned two distinct objects")
	}
	g1, g2 := r.Gauge("g"), r.Gauge("g")
	if g1 != g2 {
		t.Fatal("Gauge(g) returned two distinct objects")
	}
	h1, h2 := r.Histogram("h"), r.Histogram("h")
	if h1 != h2 {
		t.Fatal("Histogram(h) returned two distinct objects")
	}
}

// TestRegistryResetInPlace verifies that Reset zeroes metrics without
// replacing them: a pointer cached before the reset keeps publishing
// into the registry afterwards.
func TestRegistryResetInPlace(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(7)
	h.Observe(100)
	r.Reset()
	if got := r.Snapshot(); got.Counters["c"] != 0 || got.Histograms["h"].Count != 0 {
		t.Fatalf("Reset left values behind: %+v", got)
	}
	c.Inc()
	h.Observe(5)
	got := r.Snapshot()
	if got.Counters["c"] != 1 {
		t.Fatalf("cached counter detached after Reset: %d", got.Counters["c"])
	}
	if got.Histograms["h"].Count != 1 {
		t.Fatalf("cached histogram detached after Reset: %+v", got.Histograms["h"])
	}
}

// TestRegistryConcurrent hammers counters, gauges, histograms and
// snapshots from many goroutines — the -race suite for the registry.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat_ns")
			g := r.Gauge("level")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(seed*1000 + i))
				g.Set(int64(i))
				if i%512 == 0 {
					_ = r.Snapshot() // snapshot racing writers must be safe
					_ = r.Counter("shared")
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != workers*perWorker {
		t.Fatalf("lost counter increments: %d != %d", s.Counters["shared"], workers*perWorker)
	}
	if s.Histograms["lat_ns"].Count != workers*perWorker {
		t.Fatalf("lost histogram observations: %d", s.Histograms["lat_ns"].Count)
	}
}

// TestSnapshotJSONAndDelta exercises the expvar-style dump and the
// per-scenario counter-delta accounting the benchmark harness uses.
func TestSnapshotJSONAndDelta(t *testing.T) {
	r := New()
	r.Counter("queries").Add(3)
	r.Gauge("open").Set(2)
	r.GaugeFunc("derived", func() int64 { return 42 })
	r.Histogram("total_ns").Observe(1500)

	s := r.Snapshot()
	if s.Gauges["derived"] != 42 {
		t.Fatalf("GaugeFunc not evaluated at snapshot time: %+v", s.Gauges)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["queries"] != 3 || back.Histograms["total_ns"].Count != 1 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}

	prev := s
	r.Counter("queries").Add(2)
	r.Counter("untouched")
	d := r.Snapshot().CounterDelta(prev)
	if d["queries"] != 2 {
		t.Fatalf("CounterDelta = %v, want queries:2", d)
	}
	if _, ok := d["untouched"]; ok {
		t.Fatalf("CounterDelta kept a zero delta: %v", d)
	}

	// A counter reset inside the interval must not wrap the unsigned
	// subtraction: when the current value sits below prev, the delta
	// falls back to the count since the reset.
	r.Counter("queries").Reset()
	r.Counter("queries").Add(2)
	if d := r.Snapshot().CounterDelta(prev); d["queries"] != 2 {
		t.Fatalf("CounterDelta across a reset = %v, want queries:2", d)
	}

	if out := r.Snapshot().String(); !strings.Contains(out, "queries") || !strings.Contains(out, "total_ns") {
		t.Fatalf("String rendering missing metrics:\n%s", out)
	}
}
