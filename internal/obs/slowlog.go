package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowLogCap bounds the ring buffer: the most recent entries a
// \slowlog command can page through.
const DefaultSlowLogCap = 128

// DefaultSlowThreshold is the initial recording threshold: queries at
// or above it enter the log. Configurable at runtime (CLI:
// \set slowlog_ms N).
const DefaultSlowThreshold = 100 * time.Millisecond

// StageTiming is one named stage of a recorded query's lifecycle.
type StageTiming struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// SlowQuery is one slow-log record: the normalized query text, the
// plan's fingerprint (empty for unplannable queries), the snapshot
// epoch the execution pinned, total wall time, and the per-stage
// breakdown.
type SlowQuery struct {
	Query       string        `json:"query"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Epoch       uint64        `json:"epoch"`
	TotalNs     int64         `json:"total_ns"`
	Stages      []StageTiming `json:"stages"`
	At          time.Time     `json:"at"`
}

// SlowLog is a fixed-capacity ring buffer of the slowest recent
// queries. Qualifies is the hot-path gate — one atomic load and a
// comparison; Record takes the lock only for queries that passed it.
type SlowLog struct {
	threshold atomic.Int64 // ns; queries at or above it are recorded

	mu       sync.Mutex
	ring     []SlowQuery
	next     int    // ring slot the next record overwrites
	recorded uint64 // total entries ever recorded (≥ len of ring)
}

// NewSlowLog returns a slow log holding up to cap entries, at the
// default threshold.
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowQuery, 0, capacity)}
	l.threshold.Store(int64(DefaultSlowThreshold))
	return l
}

// SetThreshold sets the recording threshold. A zero or negative
// duration records every query — useful interactively, ruinous for a
// benchmark.
func (l *SlowLog) SetThreshold(d time.Duration) { l.threshold.Store(int64(d)) }

// Threshold returns the current recording threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// Qualifies reports whether a query of the given total duration should
// be recorded — the cheap gate callers check before building a record.
func (l *SlowLog) Qualifies(total time.Duration) bool {
	return int64(total) >= l.threshold.Load()
}

// Record appends one entry, overwriting the oldest when full. The
// caller is expected to have checked Qualifies; Record does not
// re-check, so forced records (tests, debugging) are possible.
func (l *SlowLog) Record(q SlowQuery) {
	if q.At.IsZero() {
		q.At = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, q)
	} else {
		l.ring[l.next] = q
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.recorded++
}

// Last returns up to n entries, newest first.
func (l *SlowLog) Last(n int) []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]SlowQuery, 0, n)
	// Newest entry is the one just before the overwrite cursor once the
	// ring is full, else the last appended.
	newest := len(l.ring) - 1
	if len(l.ring) == cap(l.ring) {
		newest = (l.next - 1 + cap(l.ring)) % cap(l.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(newest-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Recorded returns the total number of entries ever recorded,
// including those the ring has since overwritten.
func (l *SlowLog) Recorded() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Clear empties the ring (the threshold is preserved).
func (l *SlowLog) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = l.ring[:0]
	l.next = 0
	l.recorded = 0
}
