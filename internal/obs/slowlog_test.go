package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSlowLogThresholdAndRing covers the gate, ring wraparound and
// newest-first paging.
func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(4)
	l.SetThreshold(10 * time.Millisecond)
	if l.Qualifies(9 * time.Millisecond) {
		t.Fatal("below-threshold query qualified")
	}
	if !l.Qualifies(10 * time.Millisecond) {
		t.Fatal("at-threshold query must qualify")
	}
	for i := 0; i < 7; i++ {
		l.Record(SlowQuery{Query: fmt.Sprintf("q%d", i), TotalNs: int64(i)})
	}
	if l.Recorded() != 7 {
		t.Fatalf("Recorded = %d, want 7", l.Recorded())
	}
	got := l.Last(10)
	if len(got) != 4 {
		t.Fatalf("ring kept %d entries, want 4", len(got))
	}
	for i, want := range []string{"q6", "q5", "q4", "q3"} {
		if got[i].Query != want {
			t.Fatalf("Last()[%d] = %s, want %s (newest first)", i, got[i].Query, want)
		}
	}
	if two := l.Last(2); len(two) != 2 || two[0].Query != "q6" {
		t.Fatalf("Last(2) = %v", two)
	}
	l.Clear()
	if len(l.Last(10)) != 0 || l.Recorded() != 0 {
		t.Fatal("Clear left entries")
	}
	if l.Threshold() != 10*time.Millisecond {
		t.Fatal("Clear reset the threshold")
	}
}

// TestSlowLogConcurrent races recorders against readers under -race.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Record(SlowQuery{Query: fmt.Sprintf("w%d-%d", w, i), TotalNs: int64(i)})
				if i%256 == 0 {
					_ = l.Last(8)
					l.SetThreshold(time.Duration(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Recorded() != 8000 {
		t.Fatalf("Recorded = %d, want 8000", l.Recorded())
	}
}

// TestSpanStages verifies stage attribution and accumulation across
// repeated marks (the plan/pin retry pattern).
func TestSpanStages(t *testing.T) {
	sp := Begin()
	time.Sleep(time.Millisecond)
	sp.Mark(StageParse)
	time.Sleep(time.Millisecond)
	sp.Mark(StagePlan)
	time.Sleep(time.Millisecond)
	sp.Mark(StagePlan) // retry accumulates into the same stage
	if sp.StageDur(StageParse) <= 0 || sp.StageDur(StagePlan) <= sp.StageDur(StageParse)/2 {
		t.Fatalf("stage attribution off: parse=%v plan=%v", sp.StageDur(StageParse), sp.StageDur(StagePlan))
	}
	var sum time.Duration
	for _, st := range sp.Stages() {
		sum += time.Duration(st.Ns)
	}
	if sum != sp.Total() {
		t.Fatalf("stage sum %v != total %v", sum, sp.Total())
	}
	if sp.StageDur(StageExecute) != 0 {
		t.Fatal("unmarked stage must be zero")
	}
	for st := Stage(0); st < NumStages; st++ {
		if StageName(st) == "" {
			t.Fatalf("stage %d has no name", st)
		}
	}
}
