package obs

import "time"

// Stage identifies one phase of the query lifecycle. The order is the
// lifecycle order; rendering and stage histograms follow it.
type Stage uint8

const (
	StageParse Stage = iota
	StagePlan
	StagePin
	StageExecute
	StageMaterialize
	NumStages
)

// StageName returns the lifecycle stage's lowercase name.
func StageName(s Stage) string { return stageNames[s] }

var stageNames = [NumStages]string{"parse", "plan", "pin", "execute", "materialize"}

// Span times one query through its lifecycle stages. It is a value
// type living on the caller's stack — Begin performs the only clock
// read that is not a Mark, and Mark is a single monotonic clock read
// plus two additions, so a fully marked query costs a handful of
// nanosecond-scale reads. A span is single-goroutine state; queries on
// different goroutines each carry their own.
//
// Mark(stage) attributes all time since the previous mark (or Begin)
// to stage; marking the same stage again accumulates, which is how a
// plan-pin retry loop charges each attempt to the right stage. Total
// is the offset of the last mark — callers end with a final Mark, so
// finishing costs no extra clock read.
type Span struct {
	start time.Time
	last  time.Duration
	stage [NumStages]time.Duration
}

// Begin starts a span now.
func Begin() Span { return Span{start: time.Now()} }

// Mark attributes the time since the previous mark to stage.
func (s *Span) Mark(st Stage) {
	now := time.Since(s.start)
	s.stage[st] += now - s.last
	s.last = now
}

// Total returns the time from Begin to the last Mark.
func (s *Span) Total() time.Duration { return s.last }

// StageDur returns the accumulated duration of one stage.
func (s *Span) StageDur(st Stage) time.Duration { return s.stage[st] }

// Stages returns the non-zero stages in lifecycle order — the form the
// slow-query log records. It allocates; callers on the hot path use
// StageDur instead.
func (s *Span) Stages() []StageTiming {
	out := make([]StageTiming, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		if d := s.stage[st]; d > 0 {
			out = append(out, StageTiming{Name: stageNames[st], Ns: int64(d)})
		}
	}
	return out
}
