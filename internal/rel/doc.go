// Package rel implements a classical (snapshot) relational algebra.
//
// It serves two roles in the reproduction. First, it is the baseline for
// the paper's consistent-extension claim (Section 5): "each component C
// of the relational model has a corresponding component C_H in the
// historical relational model with the property that the definitions of C
// and C_H become equivalent in the absence of a temporal dimension."
// Property tests in internal/core machine-check this equivalence by
// comparing HRDM operators at T = {now} against these operators. Second,
// it is the snapshot target of core.Snapshot, the "what did the database
// look like at time t" query of experiment E11.
package rel
