package rel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Scheme is a classical relation scheme: named attributes with value
// domains, plus a key.
type Scheme struct {
	Name  string
	Attrs []string
	Doms  []value.Domain
	Key   []string
}

// NewScheme validates and builds a scheme.
func NewScheme(name string, key []string, attrs []string, doms []value.Domain) (*Scheme, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("rel: scheme %s has no attributes", name)
	}
	if len(attrs) != len(doms) {
		return nil, fmt.Errorf("rel: scheme %s: %d attributes but %d domains", name, len(attrs), len(doms))
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("rel: scheme %s: empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("rel: scheme %s: duplicate attribute %s", name, a)
		}
		seen[a] = true
	}
	for _, k := range key {
		if !seen[k] {
			return nil, fmt.Errorf("rel: scheme %s: key %s not in scheme", name, k)
		}
	}
	return &Scheme{Name: name, Attrs: append([]string(nil), attrs...),
		Doms: append([]value.Domain(nil), doms...), Key: append([]string(nil), key...)}, nil
}

// Index returns the position of attribute a, or -1.
func (s *Scheme) Index(a string) int {
	for i, n := range s.Attrs {
		if n == a {
			return i
		}
	}
	return -1
}

// Tuple is a classical flat tuple: one atomic value per attribute, in
// scheme order.
type Tuple []value.Value

// key renders the canonical duplicate-detection string for the whole
// tuple (classical relations are sets: full-tuple identity). The
// encoding escapes separators so tuples that differ only in where a
// "|" falls inside a string value do not collide.
func (t Tuple) key() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return value.EncodeKey(parts)
}

// Relation is a classical relation: a set of tuples on a scheme.
type Relation struct {
	scheme *Scheme
	tuples []Tuple
	index  map[string]bool
}

// NewRelation returns an empty relation on s.
func NewRelation(s *Scheme) *Relation {
	return &Relation{scheme: s, index: make(map[string]bool)}
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() *Scheme { return r.scheme }

// Cardinality returns |r|.
func (r *Relation) Cardinality() int { return len(r.tuples) }

// Tuples returns the tuples in insertion order; callers must not mutate.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert adds a tuple; duplicates are silently absorbed (set semantics).
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.scheme.Attrs) {
		return fmt.Errorf("rel: relation %s: tuple arity %d, want %d", r.scheme.Name, len(t), len(r.scheme.Attrs))
	}
	for i, v := range t {
		if !r.scheme.Doms[i].Contains(v) {
			return fmt.Errorf("rel: relation %s: attribute %s: value %s outside domain %s",
				r.scheme.Name, r.scheme.Attrs[i], v, r.scheme.Doms[i].Name)
		}
	}
	k := t.key()
	if r.index[k] {
		return nil
	}
	r.index[k] = true
	r.tuples = append(r.tuples, append(Tuple(nil), t...))
	return nil
}

// MustInsert is Insert that panics on error.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Contains reports membership of an identical tuple.
func (r *Relation) Contains(t Tuple) bool { return r.index[t.key()] }

// Equal reports set equality (schemes must have equal attribute lists).
func (r *Relation) Equal(o *Relation) bool {
	if len(r.tuples) != len(o.tuples) || len(r.scheme.Attrs) != len(o.scheme.Attrs) {
		return false
	}
	for i, a := range r.scheme.Attrs {
		if o.scheme.Attrs[i] != a {
			return false
		}
	}
	for _, t := range r.tuples {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// String renders the relation with a header row, in canonical order.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.scheme.Name + "(" + strings.Join(r.scheme.Attrs, ", ") + ")")
	sorted := append([]Tuple(nil), r.tuples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key() < sorted[j].key() })
	for _, t := range sorted {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		b.WriteString("\n  (" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

// Union returns r ∪ o for union-compatible relations.
func Union(r, o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.tuples {
		out.MustInsert(t)
	}
	for _, t := range o.tuples {
		out.MustInsert(t)
	}
	return out, nil
}

// Intersect returns r ∩ o.
func Intersect(r, o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.tuples {
		if o.Contains(t) {
			out.MustInsert(t)
		}
	}
	return out, nil
}

// Diff returns r − o.
func Diff(r, o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := NewRelation(r.scheme)
	for _, t := range r.tuples {
		if !o.Contains(t) {
			out.MustInsert(t)
		}
	}
	return out, nil
}

func compatible(r, o *Relation) error {
	if len(r.scheme.Attrs) != len(o.scheme.Attrs) {
		return fmt.Errorf("rel: %s and %s are not union-compatible", r.scheme.Name, o.scheme.Name)
	}
	for i, a := range r.scheme.Attrs {
		if o.scheme.Attrs[i] != a || o.scheme.Doms[i] != r.scheme.Doms[i] {
			return fmt.Errorf("rel: %s and %s are not union-compatible", r.scheme.Name, o.scheme.Name)
		}
	}
	return nil
}

// Project returns π_X(r) with duplicate elimination.
func Project(r *Relation, attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	doms := make([]value.Domain, len(attrs))
	for i, a := range attrs {
		j := r.scheme.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("rel: project: unknown attribute %s", a)
		}
		idx[i] = j
		doms[i] = r.scheme.Doms[j]
	}
	s, err := NewScheme(r.scheme.Name, nil, attrs, doms)
	if err != nil {
		return nil, err
	}
	out := NewRelation(s)
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		out.MustInsert(nt)
	}
	return out, nil
}

// Select returns σ_{A θ a}(r) (constant RHS) or σ_{A θ B} (attribute RHS
// when otherAttr is non-empty).
func Select(r *Relation, attr string, th value.Theta, constant value.Value, otherAttr string) (*Relation, error) {
	i := r.scheme.Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("rel: select: unknown attribute %s", attr)
	}
	j := -1
	if otherAttr != "" {
		j = r.scheme.Index(otherAttr)
		if j < 0 {
			return nil, fmt.Errorf("rel: select: unknown attribute %s", otherAttr)
		}
	}
	out := NewRelation(r.scheme)
	for _, t := range r.tuples {
		rhs := constant
		if j >= 0 {
			rhs = t[j]
		}
		ok, err := th.Apply(t[i], rhs)
		if err != nil {
			return nil, fmt.Errorf("rel: select: %w", err)
		}
		if ok {
			out.MustInsert(t)
		}
	}
	return out, nil
}

// Product returns r × o for attribute-disjoint schemes.
func Product(r, o *Relation) (*Relation, error) {
	for _, a := range o.scheme.Attrs {
		if r.scheme.Index(a) >= 0 {
			return nil, fmt.Errorf("rel: product: shared attribute %s", a)
		}
	}
	attrs := append(append([]string(nil), r.scheme.Attrs...), o.scheme.Attrs...)
	doms := append(append([]value.Domain(nil), r.scheme.Doms...), o.scheme.Doms...)
	s, err := NewScheme(r.scheme.Name+"x"+o.scheme.Name, nil, attrs, doms)
	if err != nil {
		return nil, err
	}
	out := NewRelation(s)
	for _, t1 := range r.tuples {
		for _, t2 := range o.tuples {
			out.MustInsert(append(append(Tuple(nil), t1...), t2...))
		}
	}
	return out, nil
}

// ThetaJoin returns r ⋈_{AθB} o, defined as σ_{AθB}(r × o).
func ThetaJoin(r, o *Relation, attrA string, th value.Theta, attrB string) (*Relation, error) {
	p, err := Product(r, o)
	if err != nil {
		return nil, err
	}
	return Select(p, attrA, th, value.Value{}, attrB)
}

// NaturalJoin returns r ⋈ o over the shared attributes.
func NaturalJoin(r, o *Relation) (*Relation, error) {
	var shared []string
	for _, a := range r.scheme.Attrs {
		if o.scheme.Index(a) >= 0 {
			shared = append(shared, a)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("rel: natural-join: no shared attributes")
	}
	// Result: r's attributes followed by o's non-shared attributes.
	var attrs []string
	var doms []value.Domain
	attrs = append(attrs, r.scheme.Attrs...)
	doms = append(doms, r.scheme.Doms...)
	var oKeep []int
	for i, a := range o.scheme.Attrs {
		if r.scheme.Index(a) < 0 {
			attrs = append(attrs, a)
			doms = append(doms, o.scheme.Doms[i])
			oKeep = append(oKeep, i)
		}
	}
	s, err := NewScheme(r.scheme.Name+"⋈"+o.scheme.Name, nil, attrs, doms)
	if err != nil {
		return nil, err
	}
	out := NewRelation(s)
	for _, t1 := range r.tuples {
		for _, t2 := range o.tuples {
			match := true
			for _, a := range shared {
				if !t1[r.scheme.Index(a)].Equal(t2[o.scheme.Index(a)]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			nt := append(Tuple(nil), t1...)
			for _, i := range oKeep {
				nt = append(nt, t2[i])
			}
			out.MustInsert(nt)
		}
	}
	return out, nil
}
