package rel

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mkScheme(t *testing.T, name string, attrs ...string) *Scheme {
	t.Helper()
	doms := make([]value.Domain, len(attrs))
	for i := range doms {
		doms[i] = value.Ints
	}
	s, err := NewScheme(name, nil, attrs, doms)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkRel(t *testing.T, s *Scheme, rows ...[]int64) *Relation {
	t.Helper()
	r := NewRelation(s)
	for _, row := range rows {
		tu := make(Tuple, len(row))
		for i, v := range row {
			tu[i] = value.Int(v)
		}
		r.MustInsert(tu)
	}
	return r
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme("R", nil, nil, nil); err == nil {
		t.Error("no attributes must fail")
	}
	if _, err := NewScheme("R", nil, []string{"A"}, nil); err == nil {
		t.Error("attr/domain count mismatch must fail")
	}
	if _, err := NewScheme("R", nil, []string{"A", "A"}, []value.Domain{value.Ints, value.Ints}); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewScheme("R", []string{"Z"}, []string{"A"}, []value.Domain{value.Ints}); err == nil {
		t.Error("key not in scheme must fail")
	}
	if _, err := NewScheme("R", nil, []string{""}, []value.Domain{value.Ints}); err == nil {
		t.Error("empty attribute name must fail")
	}
}

func TestInsertSemantics(t *testing.T) {
	s := mkScheme(t, "R", "A", "B")
	r := mkRel(t, s, []int64{1, 2}, []int64{1, 2}, []int64{3, 4})
	if r.Cardinality() != 2 {
		t.Errorf("duplicates must be absorbed, got %d", r.Cardinality())
	}
	if err := r.Insert(Tuple{value.Int(1)}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := r.Insert(Tuple{value.Int(1), value.String_("x")}); err == nil {
		t.Error("wrong domain must fail")
	}
	if !r.Contains(Tuple{value.Int(1), value.Int(2)}) {
		t.Error("Contains misses member")
	}
	if r.Contains(Tuple{value.Int(9), value.Int(9)}) {
		t.Error("Contains finds non-member")
	}
}

func TestSetOps(t *testing.T) {
	s := mkScheme(t, "R", "A", "B")
	r1 := mkRel(t, s, []int64{1, 1}, []int64{2, 2})
	r2 := mkRel(t, s, []int64{2, 2}, []int64{3, 3})
	u, err := Union(r1, r2)
	if err != nil || u.Cardinality() != 3 {
		t.Errorf("union = %v, %v", u, err)
	}
	i, err := Intersect(r1, r2)
	if err != nil || i.Cardinality() != 1 || !i.Contains(Tuple{value.Int(2), value.Int(2)}) {
		t.Errorf("intersect = %v, %v", i, err)
	}
	d, err := Diff(r1, r2)
	if err != nil || d.Cardinality() != 1 || !d.Contains(Tuple{value.Int(1), value.Int(1)}) {
		t.Errorf("diff = %v, %v", d, err)
	}
	other := mkScheme(t, "S", "X")
	if _, err := Union(r1, mkRel(t, other)); err == nil {
		t.Error("incompatible union must fail")
	}
}

func TestProjectSelect(t *testing.T) {
	s := mkScheme(t, "R", "A", "B")
	r := mkRel(t, s, []int64{1, 10}, []int64{2, 10}, []int64{3, 20})
	p, err := Project(r, "B")
	if err != nil || p.Cardinality() != 2 {
		t.Errorf("project dedup failed: %v, %v", p, err)
	}
	if _, err := Project(r, "Z"); err == nil {
		t.Error("unknown attribute must fail")
	}
	sel, err := Select(r, "B", value.EQ, value.Int(10), "")
	if err != nil || sel.Cardinality() != 2 {
		t.Errorf("select = %v, %v", sel, err)
	}
	selA, err := Select(r, "A", value.GE, value.Value{}, "B")
	if err != nil || selA.Cardinality() != 0 {
		t.Errorf("select A>=B = %v, %v", selA, err)
	}
	if _, err := Select(r, "Z", value.EQ, value.Int(0), ""); err == nil {
		t.Error("unknown attr must fail")
	}
}

func TestProductAndJoins(t *testing.T) {
	s1 := mkScheme(t, "R", "A", "B")
	s2 := mkScheme(t, "S", "C")
	r1 := mkRel(t, s1, []int64{1, 2}, []int64{3, 4})
	r2 := mkRel(t, s2, []int64{2}, []int64{9})
	p, err := Product(r1, r2)
	if err != nil || p.Cardinality() != 4 {
		t.Fatalf("product = %v, %v", p, err)
	}
	if _, err := Product(r1, r1); err == nil {
		t.Error("shared attrs must fail")
	}
	j, err := ThetaJoin(r1, r2, "B", value.EQ, "C")
	if err != nil || j.Cardinality() != 1 {
		t.Fatalf("theta join = %v, %v", j, err)
	}
	// Natural join over shared attribute.
	s3 := mkScheme(t, "T", "B", "D")
	r3 := mkRel(t, s3, []int64{2, 100}, []int64{5, 200})
	nj, err := NaturalJoin(r1, r3)
	if err != nil || nj.Cardinality() != 1 {
		t.Fatalf("natural join = %v, %v", nj, err)
	}
	nt := nj.Tuples()[0]
	if len(nt) != 3 {
		t.Errorf("natural join arity = %d, want 3", len(nt))
	}
	if _, err := NaturalJoin(r1, mkRel(t, s2)); err == nil {
		t.Error("no shared attrs must fail")
	}
}

func TestEqualAndString(t *testing.T) {
	s := mkScheme(t, "R", "A")
	a := mkRel(t, s, []int64{1}, []int64{2})
	b := mkRel(t, s, []int64{2}, []int64{1})
	if !a.Equal(b) {
		t.Error("set equality must ignore order")
	}
	c := mkRel(t, s, []int64{1})
	if a.Equal(c) {
		t.Error("different cardinality must differ")
	}
	out := a.String()
	if !strings.Contains(out, "R(A)") || !strings.Contains(out, "(1)") {
		t.Errorf("String = %q", out)
	}
}
