// Package schema implements HRDM relation schemes.
//
// Paper Section 3: "A relation scheme R = <A,K,ALS,DOM> is an ordered
// 4-tuple where A ⊆ U is the set of attributes of R, K ⊆ A is the set of
// key attributes, ALS: A → 2^T assigns a lifespan to each attribute, and
// DOM: A → HD assigns a domain to each attribute", with the restrictions
// that key attributes are constant-valued (DOM(Ai) ∈ CD) and each
// temporal function's domain lies within its attribute's lifespan.
//
// Assigning lifespans to attributes is what gives HRDM evolving schemas
// (paper Figure 6): dropping an attribute at t2 and re-adding it at t3 is
// recorded as ALS(A) = [t1,t2] ∪ [t3,NOW].
package schema
