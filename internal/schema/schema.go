package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lifespan"
	"repro/internal/value"
)

// Attribute describes one attribute of a relation scheme: its name, its
// value domain (the D_i its temporal functions map into, or T for
// time-valued attributes), the lifespan ALS(A,R) over which the schema
// defines it, and the interpolation discipline used to complete
// representation-level values (paper Figure 9; "discrete", "step" or
// "linear" — see tfunc.ByName).
type Attribute struct {
	Name string
	// Domain is the underlying value-domain VD(A). A Domain of kind
	// value.KindTime makes this a time-valued attribute (DOM(A) ⊆ TT),
	// eligible for dynamic TIME-SLICE and TIME-JOIN.
	Domain value.Domain
	// Lifespan is ALS(A,R). The zero lifespan is invalid in a scheme; use
	// lifespan.All() for attributes defined at all times.
	Lifespan lifespan.Lifespan
	// Interp names the interpolation function for the attribute's values
	// ("discrete", "step", "linear"); empty means "discrete".
	Interp string
}

// TimeValued reports whether the attribute draws its values from T, i.e.
// DOM(A) ⊆ TT.
func (a Attribute) TimeValued() bool { return a.Domain.Kind == value.KindTime }

// Scheme is a relation scheme R = ⟨A, K, ALS, DOM⟩. A and the ALS/DOM
// assignments are folded into the ordered Attrs slice; Key lists the
// names in K. Attribute order is definition order and is preserved by
// the algebra so printed relations are stable.
type Scheme struct {
	Name  string
	Attrs []Attribute
	Key   []string
}

// New validates and returns a scheme. It enforces the paper's structural
// conditions:
//
//  1. attribute names are unique and non-empty;
//  2. K ⊆ A;
//  3. K is non-empty (a relation is a set of tuples distinguished by key
//     values at every pair of times, so a key must exist);
//  4. no attribute lifespan is empty;
//  5. the key attributes' lifespans equal the scheme lifespan — the
//     paper's constraint "the lifespan of the key attributes must be the
//     same as the lifespan of the entire relation schema".
func New(name string, key []string, attrs ...Attribute) (*Scheme, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty scheme name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: scheme %s has no attributes", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: scheme %s has an unnamed attribute", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("schema: scheme %s: duplicate attribute %s", name, a.Name)
		}
		seen[a.Name] = true
		if a.Lifespan.IsEmpty() {
			return nil, fmt.Errorf("schema: scheme %s: attribute %s has empty lifespan", name, a.Name)
		}
		if a.Interp != "" && a.Interp != "discrete" && a.Interp != "step" && a.Interp != "linear" {
			return nil, fmt.Errorf("schema: scheme %s: attribute %s: unknown interpolation %q", name, a.Name, a.Interp)
		}
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("schema: scheme %s has no key", name)
	}
	for _, k := range key {
		if !seen[k] {
			return nil, fmt.Errorf("schema: scheme %s: key attribute %s not in scheme", name, k)
		}
	}
	s := &Scheme{Name: name, Attrs: attrs, Key: append([]string(nil), key...)}
	ls := s.Lifespan()
	for _, k := range key {
		ka, _ := s.Attr(k)
		if !ka.Lifespan.Equal(ls) {
			return nil, fmt.Errorf("schema: scheme %s: key attribute %s lifespan %v differs from scheme lifespan %v",
				name, k, ka.Lifespan, ls)
		}
	}
	return s, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(name string, key []string, attrs ...Attribute) *Scheme {
	s, err := New(name, key, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Attr returns the named attribute.
func (s *Scheme) Attr(name string) (Attribute, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// HasAttr reports whether the scheme defines the named attribute.
func (s *Scheme) HasAttr(name string) bool {
	_, ok := s.Attr(name)
	return ok
}

// AttrNames returns the attribute names in scheme order.
func (s *Scheme) AttrNames() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// IsKey reports whether the named attribute belongs to K.
func (s *Scheme) IsKey(name string) bool {
	for _, k := range s.Key {
		if k == name {
			return true
		}
	}
	return false
}

// ALS returns the attribute lifespan ALS(A,R). Unknown attributes yield
// the empty lifespan.
func (s *Scheme) ALS(name string) lifespan.Lifespan {
	a, ok := s.Attr(name)
	if !ok {
		return lifespan.Empty()
	}
	return a.Lifespan
}

// Lifespan returns the scheme lifespan: "the lifespan of the relation
// schema [is] the union of the lifespans of all of the attributes in the
// schema" (paper Section 2).
func (s *Scheme) Lifespan() lifespan.Lifespan {
	ls := lifespan.Empty()
	for _, a := range s.Attrs {
		ls = ls.Union(a.Lifespan)
	}
	return ls
}

// SameAttrs reports A1 = A2 with identical domains — the paper's
// union-compatibility ("they have the same attributes, with the same
// domains"). Attribute order is immaterial.
func (s *Scheme) SameAttrs(o *Scheme) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for _, a := range s.Attrs {
		b, ok := o.Attr(a.Name)
		if !ok || b.Domain != a.Domain {
			return false
		}
	}
	return true
}

// SameKey reports K1 = K2 as sets.
func (s *Scheme) SameKey(o *Scheme) bool {
	if len(s.Key) != len(o.Key) {
		return false
	}
	k1 := append([]string(nil), s.Key...)
	k2 := append([]string(nil), o.Key...)
	sort.Strings(k1)
	sort.Strings(k2)
	for i := range k1 {
		if k1[i] != k2[i] {
			return false
		}
	}
	return true
}

// UnionCompatible reports the paper's union-compatibility: same
// attributes with the same domains.
func (s *Scheme) UnionCompatible(o *Scheme) bool { return s.SameAttrs(o) }

// MergeCompatible reports the paper's merge-compatibility, "stricter than
// union-compatibility, by requiring the same key": A1 = A2, K1 = K2, and
// DOM1 = DOM2.
func (s *Scheme) MergeCompatible(o *Scheme) bool {
	return s.SameAttrs(o) && s.SameKey(o)
}

// DisjointAttrs reports whether the two schemes share no attribute names
// (the precondition of the Cartesian product).
func (s *Scheme) DisjointAttrs(o *Scheme) bool {
	for _, a := range s.Attrs {
		if o.HasAttr(a.Name) {
			return false
		}
	}
	return true
}

// CommonAttrs returns X = A1 ∩ A2 in s's attribute order (used by
// NATURAL-JOIN).
func (s *Scheme) CommonAttrs(o *Scheme) []string {
	var out []string
	for _, a := range s.Attrs {
		if o.HasAttr(a.Name) {
			out = append(out, a.Name)
		}
	}
	return out
}

// combineALS merges the ALS assignments of two schemes using f on
// attributes present in both; attributes present in only one keep their
// lifespan.
func combineALS(a, b *Scheme, f func(x, y lifespan.Lifespan) lifespan.Lifespan) map[string]lifespan.Lifespan {
	out := make(map[string]lifespan.Lifespan, len(a.Attrs)+len(b.Attrs))
	for _, at := range a.Attrs {
		out[at.Name] = at.Lifespan
	}
	for _, bt := range b.Attrs {
		if x, ok := out[bt.Name]; ok {
			out[bt.Name] = f(x, bt.Lifespan)
		} else {
			out[bt.Name] = bt.Lifespan
		}
	}
	return out
}

// UnionScheme builds the result scheme of the union operators: per the
// paper, R3 = <A1, K1, ALS1 ∪ ALS2, DOM1>.
func UnionScheme(a, b *Scheme, name string) (*Scheme, error) {
	if !a.UnionCompatible(b) {
		return nil, fmt.Errorf("schema: %s and %s are not union-compatible", a.Name, b.Name)
	}
	als := combineALS(a, b, lifespan.Lifespan.Union)
	attrs := make([]Attribute, len(a.Attrs))
	for i, at := range a.Attrs {
		at.Lifespan = als[at.Name]
		attrs[i] = at
	}
	return New(name, a.Key, attrs...)
}

// IntersectScheme builds the result scheme of the intersection operators:
// R3 = <A1, K1, ALS1 ∩ ALS2, DOM1>. The intersection of the ALS
// assignments can empty an attribute's lifespan, which the paper's
// structural conditions forbid; that case is an error reported to the
// caller ("the schemas never coexist").
func IntersectScheme(a, b *Scheme, name string) (*Scheme, error) {
	if !a.UnionCompatible(b) {
		return nil, fmt.Errorf("schema: %s and %s are not union-compatible", a.Name, b.Name)
	}
	als := combineALS(a, b, lifespan.Lifespan.Intersect)
	attrs := make([]Attribute, len(a.Attrs))
	for i, at := range a.Attrs {
		at.Lifespan = als[at.Name]
		attrs[i] = at
	}
	return New(name, a.Key, attrs...)
}

// ProjectScheme builds the scheme for π_X(r). Every name in x must be a
// scheme attribute. The projection keys on x itself: projection does not
// preserve the original key in general, and the paper's relation
// condition (key-disjointness of tuples) is then enforced with respect
// to all remaining attributes, mirroring duplicate elimination in the
// snapshot model.
func ProjectScheme(s *Scheme, x []string, name string) (*Scheme, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("schema: projection onto no attributes")
	}
	attrs := make([]Attribute, 0, len(x))
	for _, n := range x {
		a, ok := s.Attr(n)
		if !ok {
			return nil, fmt.Errorf("schema: projection attribute %s not in scheme %s", n, s.Name)
		}
		attrs = append(attrs, a)
	}
	// Keep original key attributes that survive the projection; if none
	// survive, key on all projected attributes.
	var key []string
	for _, k := range s.Key {
		for _, n := range x {
			if n == k {
				key = append(key, k)
			}
		}
	}
	if len(key) != len(s.Key) {
		key = append([]string(nil), x...)
	}
	// Key lifespans must equal the new scheme lifespan; widen key
	// attribute lifespans if the projection dropped wider attributes.
	ls := lifespan.Empty()
	for _, a := range attrs {
		ls = ls.Union(a.Lifespan)
	}
	for i := range attrs {
		for _, k := range key {
			if attrs[i].Name == k {
				attrs[i].Lifespan = ls
			}
		}
	}
	return New(name, key, attrs...)
}

// ConcatScheme builds the result scheme of the Cartesian product and the
// joins: "R3 = <A1 ∪ A2, K1 ∪ K2, ALS1 ∪ ALS2, DOM1 ∪ DOM2>". For the
// product and θ-join the attribute sets must be disjoint; NATURAL-JOIN
// passes shared = CommonAttrs, whose lifespans combine by union.
func ConcatScheme(a, b *Scheme, name string) (*Scheme, error) {
	attrs := make([]Attribute, 0, len(a.Attrs)+len(b.Attrs))
	attrs = append(attrs, a.Attrs...)
	for _, bt := range b.Attrs {
		if i := indexAttr(attrs, bt.Name); i >= 0 {
			if attrs[i].Domain != bt.Domain {
				return nil, fmt.Errorf("schema: shared attribute %s has conflicting domains", bt.Name)
			}
			attrs[i].Lifespan = attrs[i].Lifespan.Union(bt.Lifespan)
			continue
		}
		attrs = append(attrs, bt)
	}
	key := append([]string(nil), a.Key...)
	for _, k := range b.Key {
		dup := false
		for _, k1 := range key {
			if k1 == k {
				dup = true
				break
			}
		}
		if !dup {
			key = append(key, k)
		}
	}
	// The combined key lifespans must equal the combined scheme lifespan.
	ls := lifespan.Empty()
	for _, at := range attrs {
		ls = ls.Union(at.Lifespan)
	}
	for i := range attrs {
		for _, k := range key {
			if attrs[i].Name == k {
				attrs[i].Lifespan = ls
			}
		}
	}
	return New(name, key, attrs...)
}

func indexAttr(attrs []Attribute, name string) int {
	for i, a := range attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Rename returns a copy of the scheme with every attribute prefixed
// "prefix.", preserving key membership. Used to disambiguate before
// products/θ-joins of relations sharing attribute names.
func (s *Scheme) Rename(prefix, name string) (*Scheme, error) {
	attrs := make([]Attribute, len(s.Attrs))
	for i, a := range s.Attrs {
		a.Name = prefix + "." + a.Name
		attrs[i] = a
	}
	key := make([]string, len(s.Key))
	for i, k := range s.Key {
		key[i] = prefix + "." + k
	}
	return New(name, key, attrs...)
}

// String renders the scheme header, e.g.
// "EMP(NAME* strings {[0,49]}, SAL integers step {[0,49]})", where * marks
// key attributes.
func (s *Scheme) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		star := ""
		if s.IsKey(a.Name) {
			star = "*"
		}
		interp := a.Interp
		if interp == "" {
			interp = "discrete"
		}
		parts[i] = fmt.Sprintf("%s%s %s %s %s", a.Name, star, a.Domain.Name, interp, a.Lifespan)
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}
