package schema

import (
	"strings"
	"testing"

	"repro/internal/lifespan"
	"repro/internal/value"
)

func ls(s string) lifespan.Lifespan { return lifespan.MustParse(s) }

func empScheme(t *testing.T) *Scheme {
	t.Helper()
	s, err := New("EMP", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[0,49]}"), Interp: "step"},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[0,49]}"), Interp: "step"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	full := ls("{[0,9]}")
	okAttr := Attribute{Name: "K", Domain: value.Strings, Lifespan: full}
	cases := []struct {
		name  string
		mk    func() (*Scheme, error)
		subst string
	}{
		{"empty name", func() (*Scheme, error) {
			return New("", []string{"K"}, okAttr)
		}, "empty scheme name"},
		{"no attrs", func() (*Scheme, error) {
			return New("R", []string{"K"})
		}, "no attributes"},
		{"unnamed attr", func() (*Scheme, error) {
			return New("R", []string{"K"}, okAttr, Attribute{Domain: value.Ints, Lifespan: full})
		}, "unnamed attribute"},
		{"dup attr", func() (*Scheme, error) {
			return New("R", []string{"K"}, okAttr, okAttr)
		}, "duplicate attribute"},
		{"empty lifespan", func() (*Scheme, error) {
			return New("R", []string{"K"}, okAttr, Attribute{Name: "A", Domain: value.Ints})
		}, "empty lifespan"},
		{"no key", func() (*Scheme, error) {
			return New("R", nil, okAttr)
		}, "no key"},
		{"key not in scheme", func() (*Scheme, error) {
			return New("R", []string{"Z"}, okAttr)
		}, "not in scheme"},
		{"bad interp", func() (*Scheme, error) {
			return New("R", []string{"K"}, Attribute{Name: "K", Domain: value.Strings, Lifespan: full, Interp: "spline"})
		}, "unknown interpolation"},
		{"key lifespan mismatch", func() (*Scheme, error) {
			return New("R", []string{"K"},
				Attribute{Name: "K", Domain: value.Strings, Lifespan: ls("{[0,5]}")},
				Attribute{Name: "A", Domain: value.Ints, Lifespan: ls("{[0,9]}")})
		}, "differs from scheme lifespan"},
	}
	for _, c := range cases {
		_, err := c.mk()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.subst) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.subst)
		}
	}
	if _, err := New("R", []string{"K"}, okAttr); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	s := empScheme(t)
	if a, ok := s.Attr("SAL"); !ok || a.Interp != "step" {
		t.Error("Attr lookup failed")
	}
	if _, ok := s.Attr("NOPE"); ok {
		t.Error("Attr must miss unknown names")
	}
	if !s.HasAttr("DEPT") || s.HasAttr("X") {
		t.Error("HasAttr misbehaves")
	}
	if got := s.AttrNames(); len(got) != 3 || got[0] != "NAME" || got[2] != "DEPT" {
		t.Errorf("AttrNames = %v", got)
	}
	if !s.IsKey("NAME") || s.IsKey("SAL") {
		t.Error("IsKey misbehaves")
	}
	if !s.ALS("SAL").Equal(ls("{[0,49]}")) {
		t.Error("ALS lookup failed")
	}
	if !s.ALS("NOPE").IsEmpty() {
		t.Error("ALS of unknown attribute is empty")
	}
	if !s.Lifespan().Equal(ls("{[0,49]}")) {
		t.Errorf("scheme lifespan = %v", s.Lifespan())
	}
}

func TestSchemeLifespanIsUnionOfALS(t *testing.T) {
	// Fig 6: an attribute with a gap; another spanning the whole period.
	s := MustNew("STOCK", []string{"TICKER"},
		Attribute{Name: "TICKER", Domain: value.Strings, Lifespan: ls("{[0,40]}")},
		Attribute{Name: "PRICE", Domain: value.Floats, Lifespan: ls("{[0,40]}"), Interp: "linear"},
		Attribute{Name: "VOLUME", Domain: value.Ints, Lifespan: ls("{[10,20],[30,40]}")},
	)
	if !s.Lifespan().Equal(ls("{[0,40]}")) {
		t.Errorf("lifespan = %v", s.Lifespan())
	}
	if !s.ALS("VOLUME").Equal(ls("{[10,20],[30,40]}")) {
		t.Error("evolving attribute lifespan lost")
	}
}

func TestCompatibilityPredicates(t *testing.T) {
	a := empScheme(t)
	b := MustNew("EMP2", []string{"NAME"},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[50,99]}"), Interp: "step"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[50,99]}")},
		Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[50,99]}"), Interp: "step"},
	)
	if !a.UnionCompatible(b) {
		t.Error("same attrs+domains must be union-compatible (order-insensitive)")
	}
	if !a.MergeCompatible(b) {
		t.Error("same key too: merge-compatible")
	}
	c := MustNew("EMP3", []string{"SAL"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
	)
	if !a.UnionCompatible(c) {
		t.Error("different key does not break union-compatibility")
	}
	if a.MergeCompatible(c) {
		t.Error("different key breaks merge-compatibility")
	}
	d := MustNew("OTHER", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "SAL", Domain: value.Floats, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
	)
	if a.UnionCompatible(d) {
		t.Error("different domain for SAL breaks union-compatibility")
	}
}

func TestDisjointAndCommon(t *testing.T) {
	a := empScheme(t)
	b := MustNew("DEPTREL", []string{"DNAME"},
		Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: ls("{[0,49]}")},
	)
	if !a.DisjointAttrs(b) {
		t.Error("EMP and DEPTREL are disjoint")
	}
	c := MustNew("MGR", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[0,49]}")},
		Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: ls("{[0,49]}")},
	)
	if a.DisjointAttrs(c) {
		t.Error("EMP and MGR share NAME")
	}
	if got := a.CommonAttrs(c); len(got) != 1 || got[0] != "NAME" {
		t.Errorf("CommonAttrs = %v", got)
	}
}

func TestUnionIntersectScheme(t *testing.T) {
	a := empScheme(t) // [0,49]
	b := MustNew("EMPLATER", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[30,99]}")},
		Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[30,99]}"), Interp: "step"},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[30,99]}"), Interp: "step"},
	)
	u, err := UnionScheme(a, b, "U")
	if err != nil {
		t.Fatal(err)
	}
	if !u.ALS("SAL").Equal(ls("{[0,99]}")) {
		t.Errorf("union ALS = %v", u.ALS("SAL"))
	}
	i, err := IntersectScheme(a, b, "I")
	if err != nil {
		t.Fatal(err)
	}
	if !i.ALS("SAL").Equal(ls("{[30,49]}")) {
		t.Errorf("intersect ALS = %v", i.ALS("SAL"))
	}
	// Disjoint ALS: intersection scheme is invalid (attributes never coexist).
	far := MustNew("FAR", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[500,600]}")},
		Attribute{Name: "SAL", Domain: value.Ints, Lifespan: ls("{[500,600]}")},
		Attribute{Name: "DEPT", Domain: value.Strings, Lifespan: ls("{[500,600]}")},
	)
	if _, err := IntersectScheme(a, far, "X"); err == nil {
		t.Error("disjoint ALS intersection must fail")
	}
	// Incompatible schemes fail.
	other := MustNew("O", []string{"X"},
		Attribute{Name: "X", Domain: value.Ints, Lifespan: ls("{[0,9]}")})
	if _, err := UnionScheme(a, other, "U2"); err == nil {
		t.Error("union of incompatible schemes must fail")
	}
}

func TestProjectScheme(t *testing.T) {
	s := empScheme(t)
	p, err := ProjectScheme(s, []string{"NAME", "SAL"}, "P")
	if err != nil {
		t.Fatal(err)
	}
	if !p.SameKey(s) {
		t.Error("projection keeping the key keeps the key")
	}
	// Dropping the key: new key is all projected attributes.
	q, err := ProjectScheme(s, []string{"SAL", "DEPT"}, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Key) != 2 || !q.IsKey("SAL") || !q.IsKey("DEPT") {
		t.Errorf("key after dropping original key = %v", q.Key)
	}
	if _, err := ProjectScheme(s, []string{"NOPE"}, "X"); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := ProjectScheme(s, nil, "X"); err == nil {
		t.Error("empty projection must fail")
	}
}

func TestConcatScheme(t *testing.T) {
	a := empScheme(t)
	b := MustNew("DEPTREL", []string{"DNAME"},
		Attribute{Name: "DNAME", Domain: value.Strings, Lifespan: ls("{[20,79]}")},
		Attribute{Name: "FLOOR", Domain: value.Ints, Lifespan: ls("{[20,79]}")},
	)
	c, err := ConcatScheme(a, b, "X")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Attrs) != 5 {
		t.Errorf("concat attrs = %v", c.AttrNames())
	}
	if len(c.Key) != 2 || !c.IsKey("NAME") || !c.IsKey("DNAME") {
		t.Errorf("concat key = %v", c.Key)
	}
	// K1 ∪ K2 lifespans equal the combined scheme lifespan.
	if !c.ALS("NAME").Equal(ls("{[0,79]}")) || !c.ALS("DNAME").Equal(ls("{[0,79]}")) {
		t.Errorf("concat key lifespans: NAME %v DNAME %v", c.ALS("NAME"), c.ALS("DNAME"))
	}
	// Non-key shared attribute lifespans union (natural-join case).
	d := MustNew("MGR", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Strings, Lifespan: ls("{[50,99]}")},
		Attribute{Name: "BONUS", Domain: value.Ints, Lifespan: ls("{[50,99]}")},
	)
	e, err := ConcatScheme(a, d, "NJ")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Attrs) != 4 {
		t.Errorf("natural concat attrs = %v", e.AttrNames())
	}
	if !e.ALS("NAME").Equal(ls("{[0,99]}")) {
		t.Errorf("shared attr lifespan = %v", e.ALS("NAME"))
	}
	// Conflicting domains on a shared attribute fail.
	f := MustNew("BAD", []string{"NAME"},
		Attribute{Name: "NAME", Domain: value.Ints, Lifespan: ls("{[0,9]}")})
	if _, err := ConcatScheme(a, f, "Y"); err == nil {
		t.Error("conflicting shared domains must fail")
	}
}

func TestRename(t *testing.T) {
	s := empScheme(t)
	r, err := s.Rename("e", "E")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasAttr("e.NAME") || !r.IsKey("e.NAME") || r.HasAttr("NAME") {
		t.Errorf("rename produced %v (key %v)", r.AttrNames(), r.Key)
	}
}

func TestString(t *testing.T) {
	s := empScheme(t)
	got := s.String()
	for _, want := range []string{"EMP(", "NAME*", "SAL integers step", "{[0,49]}"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}
