// Package server exposes one engine.DB to many concurrent clients over
// a line-oriented JSON protocol on TCP: one request object per line in,
// one response object per line out, in order, per connection. Each
// connection owns an engine.Session — pinned-snapshot reads, a
// session-scoped optimizer toggle, and at most one staged write group —
// while the plan cache, metrics registry and store are shared across
// sessions, so two clients issuing the same query text share one
// compiled plan.
//
// The protocol (see docs/SERVER.md for the full spec):
//
//	{"op":"ping"}
//	{"op":"query","q":"SELECT WHEN SAL = 30000 FROM EMP"}
//	{"op":"explain","q":"EMP","analyze":true}
//	{"op":"begin_group"}
//	{"op":"stage","rel":"EMP","tuple":"tuple {[0,9]}; NAME = \"x\" @ {[0,9]}"}
//	{"op":"commit"}
//	{"op":"abort"}
//	{"op":"set","optimize":true}
//	{"op":"metrics"}
//
// Every response carries "ok"; failures carry an error envelope with
// the stable numeric code and class name of the hrdmerr taxonomy:
//
//	{"ok":false,"error":{"code":7,"class":"overloaded","msg":"..."}}
package server

import (
	"encoding/json"

	"repro/internal/hrdmerr"
)

// request is one client line. Fields beyond Op are op-specific; unknown
// fields are ignored so clients can be newer than the server.
type request struct {
	Op      string `json:"op"`
	Q       string `json:"q,omitempty"`
	Rel     string `json:"rel,omitempty"`
	Tuple   string `json:"tuple,omitempty"`
	Analyze bool   `json:"analyze,omitempty"`
	// Optimize is a pointer so `set` can distinguish "turn it off" from
	// "not mentioned".
	Optimize *bool `json:"optimize,omitempty"`
}

// response is one server line. Exactly one payload field is populated
// per op; Error is set instead when OK is false.
type response struct {
	OK        bool            `json:"ok"`
	Result    string          `json:"result,omitempty"`    // query: rendered result
	Rows      int             `json:"rows,omitempty"`      // query: result cardinality
	Text      string          `json:"text,omitempty"`      // explain: rendered plan
	Staged    int             `json:"staged,omitempty"`    // stage: tuples staged so far
	Committed int             `json:"committed,omitempty"` // commit: tuples published
	Metrics   json.RawMessage `json:"metrics,omitempty"`   // metrics: registry snapshot
	Error     *wireError      `json:"error,omitempty"`
}

// wireError is the frozen error envelope: code is the stable numeric
// wire code (hrdmerr.Code), class its name, msg the human message
// without the class prefix.
type wireError struct {
	Code  int    `json:"code"`
	Class string `json:"class"`
	Msg   string `json:"msg"`
}

// errResponse classifies err into the wire envelope.
func errResponse(err error) response {
	code := hrdmerr.CodeOf(err)
	return response{Error: &wireError{
		Code:  int(code),
		Class: code.String(),
		Msg:   hrdmerr.Message(err),
	}}
}
