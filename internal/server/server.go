package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/hrdmerr"
	"repro/internal/obs"
)

// Server metrics: connection lifecycle and the two admission-control
// rejection paths. Query execution itself is already counted by the
// engine (engine.queries etc.); these cover what only the serving layer
// sees — how many clients arrived, how many were turned away, and why.
var (
	mConns         = obs.Default.Gauge("server.connections")
	mConnsTotal    = obs.Default.Counter("server.conns_total")
	mConnsRejected = obs.Default.Counter("server.conns_rejected")
	mRequests      = obs.Default.Counter("server.requests")
	mOverloaded    = obs.Default.Counter("server.overload_rejected")
	mDrainedClean  = obs.Default.Counter("server.drains_clean")
	mDrainedForced = obs.Default.Counter("server.drains_forced")
)

// Config bounds the server. Zero values mean: listen on an ephemeral
// port, defaults for the limits, no per-query deadline, a 5s drain
// grace.
type Config struct {
	Addr          string        // listen address, e.g. ":7373"; "" = "127.0.0.1:0"
	MaxConns      int           // concurrent connections admitted (default 64)
	MaxInflight   int           // concurrently executing queries (default 16)
	QueryDeadline time.Duration // per-query deadline; 0 = none
	DrainTimeout  time.Duration // grace for in-flight work on Shutdown (default 5s)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Server accepts connections on one listener and serves the protocol
// over a shared engine.DB. Lifecycle: New → Start → Shutdown. Admission
// control is load-shedding, not queuing: a connection past MaxConns and
// a query past MaxInflight are rejected immediately with a typed
// overloaded error, so a saturated server answers fast instead of
// accumulating unbounded work it will time out on anyway.
type Server struct {
	cfg Config
	db  *engine.DB

	ln       net.Listener
	inflight chan struct{} // query-execution slots

	baseCtx    context.Context // canceled when a drain turns forceful
	cancelBase context.CancelFunc

	draining atomic.Bool
	acceptWG sync.WaitGroup // the accept loop
	connWG   sync.WaitGroup // one per live connection

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// testHold, when set (tests only), runs inside query execution while
	// the inflight slot is held — the seam admission and drain tests use
	// to keep a query deterministically in flight. It receives the
	// query's context so a forced drain or deadline can release it.
	testHold func(ctx context.Context, op string)
}

// New configures a server over db; call Start to begin serving.
func New(db *engine.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		db:         db,
		inflight:   make(chan struct{}, cfg.MaxInflight),
		baseCtx:    ctx,
		cancelBase: cancel,
		conns:      make(map[net.Conn]struct{}),
	}
}

// Start binds the listener and launches the accept loop. The bound
// address (useful with ":0") is available from Addr afterwards.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the listener's bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Listener closed: either Shutdown or a fatal accept error;
			// both end the loop. (net.ErrClosed is the drain path.)
			return
		}
		mConnsTotal.Inc()
		if s.draining.Load() {
			s.rejectConn(c, hrdmerr.New(hrdmerr.CodeUnavailable, "server is draining"))
			continue
		}
		if !s.tryRegister(c) {
			mConnsRejected.Inc()
			s.rejectConn(c, hrdmerr.New(hrdmerr.CodeOverloaded,
				"connection limit reached (%d)", s.cfg.MaxConns))
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(c)
	}
}

// tryRegister admits c under the connection limit; both the check and
// the insert happen under one lock so the limit cannot be oversubscribed.
func (s *Server) tryRegister(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[c] = struct{}{}
	mConns.Set(int64(len(s.conns)))
	return true
}

func (s *Server) unregister(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	mConns.Set(int64(len(s.conns)))
	s.mu.Unlock()
}

// rejectConn answers a connection the server will not serve with one
// typed error line, then closes it: the client learns why instead of
// seeing a bare RST.
func (s *Server) rejectConn(c net.Conn, err error) {
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	writeResponse(c, errResponse(err))
	c.Close()
}

// serveConn runs one connection's request/response loop over its own
// engine.Session until the client disconnects or a drain ends the
// conversation after the current request.
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.unregister(c)
	defer c.Close()
	sess := s.db.NewSession()
	defer sess.Abort() // discard a stray staged group on disconnect
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for !s.draining.Load() && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		mRequests.Inc()
		var req request
		var resp response
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = errResponse(hrdmerr.New(hrdmerr.CodeBadRequest, "malformed request: %v", err))
		} else {
			resp = s.handle(sess, req)
		}
		if err := writeResponse(c, resp); err != nil {
			return
		}
	}
	// Scanner errors (including the read deadline a drain sets to wake
	// idle readers) and client EOF both land here; the deferred close
	// finishes the conversation.
}

// handle executes one request against the connection's session.
// Engine-bound ops (query, explain, commit) pass admission control
// first: a free inflight slot or an immediate typed overloaded error.
func (s *Server) handle(sess *engine.Session, req request) response {
	switch req.Op {
	case "ping":
		return response{OK: true, Result: "pong"}
	case "set":
		if req.Optimize != nil {
			sess.SetOptimize(*req.Optimize)
		}
		return response{OK: true, Result: fmt.Sprintf("optimize=%v", sess.Optimize())}
	case "begin_group":
		if err := sess.BeginGroup(); err != nil {
			return errResponse(err)
		}
		return response{OK: true}
	case "stage":
		n, err := sess.Stage(req.Rel, req.Tuple)
		if err != nil {
			return errResponse(err)
		}
		return response{OK: true, Staged: n}
	case "abort":
		sess.Abort()
		return response{OK: true}
	case "metrics":
		var b strings.Builder
		if err := obs.Default.Snapshot().WriteJSON(&b); err != nil {
			return errResponse(hrdmerr.Wrap(hrdmerr.CodeInternal, err))
		}
		return response{OK: true, Metrics: json.RawMessage(b.String())}
	case "query", "explain", "commit":
		return s.handleEngine(sess, req)
	default:
		return errResponse(hrdmerr.New(hrdmerr.CodeBadRequest, "unknown op %q", req.Op))
	}
}

// handleEngine runs the ops that do real engine work under the
// inflight semaphore and the per-query deadline.
func (s *Server) handleEngine(sess *engine.Session, req request) response {
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		mOverloaded.Inc()
		return errResponse(hrdmerr.New(hrdmerr.CodeOverloaded,
			"server at capacity (%d queries in flight)", s.cfg.MaxInflight))
	}
	ctx := s.baseCtx
	if s.cfg.QueryDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryDeadline)
		defer cancel()
	}
	if hold := s.testHold; hold != nil {
		hold(ctx, req.Op)
	}
	switch req.Op {
	case "query":
		res, err := sess.Query(ctx, req.Q)
		if err != nil {
			return errResponse(err)
		}
		rows := 0
		switch {
		case res.Relation != nil:
			rows = res.Relation.Cardinality()
		case res.Snapshot != nil:
			rows = res.Snapshot.Cardinality()
		}
		return response{OK: true, Result: res.String(), Rows: rows}
	case "explain":
		var out string
		var err error
		if req.Analyze {
			out, err = sess.ExplainAnalyze(ctx, req.Q)
		} else {
			out, err = sess.Explain(req.Q)
		}
		if err != nil {
			return errResponse(err)
		}
		return response{OK: true, Text: out}
	default: // commit
		n, err := sess.Commit(ctx)
		if err != nil {
			return errResponse(err)
		}
		return response{OK: true, Committed: n}
	}
}

// writeResponse marshals one response line. A client that stopped
// reading gets a bounded write deadline, so a drain is never hostage to
// a dead peer's TCP window.
func writeResponse(c net.Conn, resp response) error {
	buf, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err = c.Write(append(buf, '\n'))
	return err
}

// Shutdown drains the server: stop accepting, wake idle connections,
// let in-flight requests finish within the drain grace (Config's
// DrainTimeout, tightened by ctx if it expires sooner), then — if work
// is still running — cancel it via the base context, which aborts
// executing queries with a typed error within one iterator batch.
// Finally the durable store is checkpointed, so a SIGTERM'd server
// restarts with an empty replay. Shutdown is idempotent; concurrent
// calls after the first return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.acceptWG.Wait()
	// Wake every connection blocked in a read: the handler loop sees
	// draining and exits after at most one more request/response.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		mDrainedClean.Inc()
	case <-drainCtx.Done():
		// Grace expired: abort in-flight queries and hard-close what's
		// left. Executing queries return ErrCanceled to their clients.
		mDrainedForced.Inc()
		s.cancelBase()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.cancelBase()
	if err := s.db.Checkpoint(); err != nil && !errors.Is(err, hrdmerr.ErrState) {
		return fmt.Errorf("server: drain checkpoint: %w", err)
	}
	return nil
}
