package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hrdmerr"
	"repro/internal/lifespan"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// startServer builds a demo-store server with cfg, starts it, and
// registers a best-effort shutdown for test exit.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := New(engine.OpenDB(workload.Demo()), cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// tclient is a minimal protocol client: one request line out, one
// response line back.
type tclient struct {
	c net.Conn
	r *bufio.Reader
}

func dialT(t *testing.T, addr string) *tclient {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return &tclient{c: c, r: bufio.NewReaderSize(c, 1<<20)}
}

func (tc *tclient) send(t *testing.T, req request) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Write(append(buf, '\n')); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func (tc *tclient) recv(t *testing.T) response {
	t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := tc.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("unmarshal %q: %v", line, err)
	}
	return resp
}

func (tc *tclient) do(t *testing.T, req request) response {
	t.Helper()
	tc.send(t, req)
	return tc.recv(t)
}

// TestServerProtocol drives every op over one connection: ping, query,
// explain, the session optimizer toggle, the write-group lifecycle
// (staged tuples visible after commit), metrics, and the typed error
// envelope for parse failures, bad requests and state violations.
func TestServerProtocol(t *testing.T) {
	srv := startServer(t, Config{})
	tc := dialT(t, srv.Addr())

	if resp := tc.do(t, request{Op: "ping"}); !resp.OK || resp.Result != "pong" {
		t.Fatalf("ping = %+v", resp)
	}
	resp := tc.do(t, request{Op: "query", Q: `SELECT WHEN NAME = 'John' FROM EMP`})
	if !resp.OK || resp.Rows != 1 || !strings.Contains(resp.Result, "John") {
		t.Fatalf("query = %+v", resp)
	}
	if resp := tc.do(t, request{Op: "explain", Q: `SELECT WHEN NAME = 'John' FROM EMP`}); !resp.OK || !strings.Contains(resp.Text, "plan-cache") {
		t.Fatalf("explain = %+v", resp)
	}
	if resp := tc.do(t, request{Op: "explain", Q: `EMP`, Analyze: true}); !resp.OK || !strings.Contains(resp.Text, "actual") {
		t.Fatalf("explain analyze = %+v", resp)
	}
	on := true
	if resp := tc.do(t, request{Op: "set", Optimize: &on}); !resp.OK || resp.Result != "optimize=true" {
		t.Fatalf("set = %+v", resp)
	}

	// Write-group lifecycle: begin → stage → commit → visible.
	if resp := tc.do(t, request{Op: "begin_group"}); !resp.OK {
		t.Fatalf("begin_group = %+v", resp)
	}
	resp = tc.do(t, request{Op: "stage", Rel: "EMP",
		Tuple: `tuple {[20,29]}; NAME = "Zoe" @ {[20,29]}; SAL = 50000 @ {[20,29]}; DEPT = "Books" @ {[20,29]}`})
	if !resp.OK || resp.Staged != 1 {
		t.Fatalf("stage = %+v", resp)
	}
	if resp := tc.do(t, request{Op: "commit"}); !resp.OK || resp.Committed != 1 {
		t.Fatalf("commit = %+v", resp)
	}
	if resp := tc.do(t, request{Op: "query", Q: `SELECT WHEN NAME = 'Zoe' FROM EMP`}); !resp.OK || resp.Rows != 1 {
		t.Fatalf("query committed tuple = %+v", resp)
	}

	if resp := tc.do(t, request{Op: "metrics"}); !resp.OK || !strings.Contains(string(resp.Metrics), "engine.queries") {
		t.Fatalf("metrics = %+v", resp)
	}

	// Error envelope: stable codes per class.
	cases := []struct {
		req  request
		code hrdmerr.Code
	}{
		{request{Op: "query", Q: `SELECT !! garbage`}, hrdmerr.CodeParse},
		{request{Op: "nope"}, hrdmerr.CodeBadRequest},
		{request{Op: "commit"}, hrdmerr.CodeState},
		{request{Op: "stage", Rel: "EMP", Tuple: "x"}, hrdmerr.CodeState},
	}
	for _, c := range cases {
		resp := tc.do(t, c.req)
		if resp.OK || resp.Error == nil || resp.Error.Code != int(c.code) {
			t.Fatalf("op %s: resp = %+v, want error code %d", c.req.Op, resp, c.code)
		}
		if resp.Error.Class != c.code.String() {
			t.Fatalf("op %s: class = %q, want %q", c.req.Op, resp.Error.Class, c.code)
		}
	}

	// Malformed JSON keeps the connection alive with a bad_request.
	if _, err := tc.c.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if resp := tc.recv(t); resp.OK || resp.Error == nil || resp.Error.Code != int(hrdmerr.CodeBadRequest) {
		t.Fatalf("malformed line = %+v", resp)
	}
	if resp := tc.do(t, request{Op: "ping"}); !resp.OK {
		t.Fatalf("connection dead after malformed line: %+v", resp)
	}
}

// TestAdmissionInflight: with one inflight slot held, the next query is
// rejected immediately with the typed overloaded error — and succeeds
// once the slot frees.
func TestAdmissionInflight(t *testing.T) {
	srv := startServer(t, Config{MaxInflight: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHold = func(ctx context.Context, op string) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	blocked := dialT(t, srv.Addr())
	blocked.send(t, request{Op: "query", Q: `EMP`})
	<-entered

	fast := dialT(t, srv.Addr())
	resp := fast.do(t, request{Op: "query", Q: `EMP`})
	if resp.OK || resp.Error == nil || resp.Error.Code != int(hrdmerr.CodeOverloaded) {
		t.Fatalf("over-limit query = %+v, want overloaded (code %d)", resp, hrdmerr.CodeOverloaded)
	}

	close(release)
	if resp := blocked.recv(t); !resp.OK {
		t.Fatalf("held query after release = %+v", resp)
	}
	if resp := fast.do(t, request{Op: "query", Q: `EMP`}); !resp.OK {
		t.Fatalf("query after slot freed = %+v", resp)
	}
}

// TestAdmissionMaxConns: a connection past the limit is answered with
// one typed overloaded line and closed, not left hanging.
func TestAdmissionMaxConns(t *testing.T) {
	srv := startServer(t, Config{MaxConns: 1})
	keeper := dialT(t, srv.Addr())
	if resp := keeper.do(t, request{Op: "ping"}); !resp.OK {
		t.Fatalf("first conn ping = %+v", resp)
	}
	over := dialT(t, srv.Addr())
	resp := over.recv(t)
	if resp.OK || resp.Error == nil || resp.Error.Code != int(hrdmerr.CodeOverloaded) {
		t.Fatalf("over-limit conn = %+v, want overloaded", resp)
	}
	if _, err := over.r.ReadByte(); err == nil {
		t.Fatal("rejected connection was not closed")
	}
	// The admitted connection is unaffected.
	if resp := keeper.do(t, request{Op: "ping"}); !resp.OK {
		t.Fatalf("keeper ping after rejection = %+v", resp)
	}
}

// TestQueryDeadline: a query that outlives the per-query deadline
// aborts with the typed deadline error instead of hanging the
// connection.
func TestQueryDeadline(t *testing.T) {
	srv := startServer(t, Config{QueryDeadline: 50 * time.Millisecond})
	srv.testHold = func(ctx context.Context, op string) { <-ctx.Done() }
	tc := dialT(t, srv.Addr())
	resp := tc.do(t, request{Op: "query", Q: `EMP`})
	if resp.OK || resp.Error == nil || resp.Error.Code != int(hrdmerr.CodeDeadline) {
		t.Fatalf("deadline query = %+v, want deadline (code %d)", resp, hrdmerr.CodeDeadline)
	}
}

// TestGracefulDrain: Shutdown lets an in-flight query finish and its
// client read the response, wakes idle connections, and stops
// accepting — all within the grace.
func TestGracefulDrain(t *testing.T) {
	srv := startServer(t, Config{DrainTimeout: 5 * time.Second})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHold = func(ctx context.Context, op string) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	idle := dialT(t, srv.Addr())
	if resp := idle.do(t, request{Op: "ping"}); !resp.OK {
		t.Fatalf("idle ping = %+v", resp)
	}
	busy := dialT(t, srv.Addr())
	busy.send(t, request{Op: "query", Q: `SELECT WHEN NAME = 'John' FROM EMP`})
	<-entered

	done := make(chan error, 1)
	go func() {
		done <- srv.Shutdown(context.Background())
	}()
	// Let the drain reach its waiting phase, then release the in-flight
	// query: the client must still receive its full response.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if resp := busy.recv(t); !resp.OK || resp.Rows != 1 {
		t.Fatalf("in-flight query during drain = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New connections are refused after drain.
	if c, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		c.Close()
		t.Fatal("post-drain dial succeeded")
	}
}

// TestDrainDeadlineForcesCancel: when in-flight work outlives the
// drain grace, Shutdown cancels it via the base context (queries see a
// typed abort) and still completes instead of hanging.
func TestDrainDeadlineForcesCancel(t *testing.T) {
	srv := startServer(t, Config{DrainTimeout: 100 * time.Millisecond})
	entered := make(chan struct{}, 1)
	var sawCancel atomic.Bool
	srv.testHold = func(ctx context.Context, op string) {
		entered <- struct{}{}
		<-ctx.Done() // only a forced drain (or deadline) releases this
		sawCancel.Store(true)
	}
	stuck := dialT(t, srv.Addr())
	stuck.send(t, request{Op: "query", Q: `EMP`})
	<-entered

	start := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	if !sawCancel.Load() {
		t.Fatal("in-flight query was never canceled")
	}
}

// TestConcurrentClientsConsistency is the acceptance race test: 64
// client connections issue a query spanning two relations while a
// writer commits cross-relation write groups through the session API.
// Every group inserts one tuple into each relation, so any consistent
// cut has equal cardinalities — a torn read (group half-visible)
// surfaces as an odd UNIONMERGE count. Run under -race in CI.
func TestConcurrentClientsConsistency(t *testing.T) {
	const (
		clients = 64
		queries = 20
		groups  = 200
	)
	full := lifespan.Interval(0, 999)
	mkRel := func(name string) *core.Relation {
		return core.NewRelation(schema.MustNew(name, []string{"ID"},
			schema.Attribute{Name: "ID", Domain: value.Ints, Lifespan: full},
		))
	}
	st := storage.NewStore()
	a, b := mkRel("A"), mkRel("B")
	st.Put(a)
	st.Put(b)
	db := engine.OpenDB(st)
	srv := New(db, Config{MaxConns: clients + 8, MaxInflight: clients + 8})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		sess := db.NewSession()
		for i := 0; i < groups; i++ {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			if err := sess.BeginGroup(); err != nil {
				writerDone <- err
				return
			}
			spec := fmt.Sprintf(`tuple {[0,9]}; ID = %d @ {[0,9]}`, i)
			if _, err := sess.Stage("A", spec); err != nil {
				writerDone <- err
				return
			}
			if _, err := sess.Stage("B", spec); err != nil {
				writerDone <- err
				return
			}
			if _, err := sess.Commit(context.Background()); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	var torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			tc := &tclient{c: c, r: bufio.NewReaderSize(c, 1<<20)}
			for q := 0; q < queries; q++ {
				buf, _ := json.Marshal(request{Op: "query", Q: `A UNIONMERGE B`})
				if _, err := c.Write(append(buf, '\n')); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				c.SetReadDeadline(time.Now().Add(30 * time.Second))
				line, err := tc.r.ReadString('\n')
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				var resp response
				if err := json.Unmarshal([]byte(line), &resp); err != nil {
					t.Errorf("unmarshal: %v", err)
					return
				}
				if !resp.OK {
					t.Errorf("query failed: %+v", resp.Error)
					return
				}
				if resp.Rows%2 != 0 {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn reads (odd cross-relation cardinality) — snapshot isolation violated", n)
	}
}
