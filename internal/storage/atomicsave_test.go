package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifespan"
	"repro/internal/value"
)

// failAfterWriter passes writes through until n bytes, then fails.
type failAfterWriter struct {
	w io.Writer
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	if len(p) > f.n {
		k, _ := f.w.Write(p[:f.n])
		f.n = 0
		return k, fmt.Errorf("injected write failure")
	}
	f.n -= len(p)
	return f.w.Write(p)
}

// TestSaveAtomicUnderWriteFailure: a save that fails at any byte
// offset must leave the previous good store file untouched and no temp
// litter behind.
func TestSaveAtomicUnderWriteFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hrdm")

	old := NewStore()
	old.Put(fixture(t))
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The new state the failing saves try (and fail) to write.
	bigger := NewStore()
	r := fixture(t)
	r.MustInsert(dTuple2(r, "Extra", 99))
	bigger.Put(r)

	defer func() { saveWrapWriter = nil }()
	for _, failAt := range []int{0, 1, 7, 64, 300} {
		saveWrapWriter = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, n: failAt} }
		if err := bigger.Save(path); err == nil {
			t.Fatalf("failAt %d: Save succeeded through a failing writer", failAt)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("failAt %d: previous store file gone: %v", failAt, err)
		}
		if !bytes.Equal(got, goodBytes) {
			t.Fatalf("failAt %d: previous store file modified by failed save", failAt)
		}
		if _, err := Load(path); err != nil {
			t.Fatalf("failAt %d: previous store no longer loads: %v", failAt, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".hrdm-save-") {
				t.Fatalf("failAt %d: temp file %s left behind", failAt, e.Name())
			}
		}
	}

	// And with the injection gone, the same save lands and replaces.
	saveWrapWriter = nil
	if err := bigger.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	br, _ := back.Get("EMP")
	if br.Cardinality() != 3 {
		t.Fatalf("reloaded store has %d EMP tuples, want 3", br.Cardinality())
	}
}

// dTuple2 builds a minimal extra tuple for the EMP fixture scheme.
func dTuple2(r *core.Relation, name string, sal int64) *core.Tuple {
	s := r.Scheme()
	return core.NewTupleBuilder(s, lifespan.MustParse("{[40,49]}")).
		Key("NAME", value.String_(name)).
		Set("SAL", 40, 49, value.Int(sal)).
		MustBuild()
}

// TestSaveRoundTripsVersion2: Save writes the v2 header (with an LSN
// slot) and Load reads it back; plain stores carry LSN 0.
func TestSaveRoundTripsVersion2(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hrdm")
	st := NewStore()
	st.Put(fixture(t))
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	back, lsn, err := loadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("plain store saved with LSN %d, want 0", lsn)
	}
	orig, _ := st.Get("EMP")
	got, _ := back.Get("EMP")
	if !got.Equal(orig) {
		t.Fatal("v2 round trip lost data")
	}
}

// limitWriter accepts up to n bytes, then fails.
type limitWriter struct {
	n int
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if len(p) > l.n {
		k := l.n
		l.n = 0
		return k, fmt.Errorf("injected: write past limit")
	}
	l.n -= len(p)
	return len(p), nil
}

// TestDumpTextPropagatesEveryWriteError: for every possible truncation
// point — including mid attr line and mid tuple header, the two spots
// that used to drop their errors — DumpText must report the failure
// rather than return a silently short dump.
func TestDumpTextPropagatesEveryWriteError(t *testing.T) {
	st := NewStore()
	st.Put(fixture(t))
	var full bytes.Buffer
	if err := DumpText(&full, st); err != nil {
		t.Fatal(err)
	}
	for cap := 0; cap < full.Len(); cap++ {
		if err := DumpText(&limitWriter{n: cap}, st); err == nil {
			t.Fatalf("cap %d of %d: DumpText swallowed the write failure", cap, full.Len())
		}
	}
	if err := DumpText(&limitWriter{n: full.Len()}, st); err != nil {
		t.Fatalf("exact-size writer must succeed: %v", err)
	}
}
